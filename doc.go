// Package speccat reproduces "Modular Composition and Verification of
// Transaction Processing Protocols Using Category Theory" (Janarthanan,
// 2003) as an executable Go library: a categorical specification framework
// (internal/core) with a Specware-like language and a resolution prover,
// the full 3PC protocol stack it reasons about (internal/tpc and the
// building-block packages), and the reproduction experiments E1..E10
// (internal/experiments, cmd/tpcverify, bench_test.go).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-claim vs. measured outcomes.
package speccat
