// Package speccat's root benchmarks regenerate every evaluation artifact
// of the paper (see DESIGN.md's experiment index): one benchmark per
// experiment E0..E10 plus the E14 sequential-versus-parallel proof
// pipeline, timing exactly the code paths cmd/tpcverify prints.
//
// The bodies live in internal/benchsuite, shared with the cmd/specbench
// regression driver, so `go test -bench` and `make bench` measure the
// same thing. The corpus environment is cached behind a sync.Once there —
// safe under -race at any parallelism.
package speccat_test

import (
	"testing"

	"speccat/internal/benchsuite"
)

func BenchmarkSuite(b *testing.B) {
	for _, bm := range benchsuite.Suite() {
		b.Run(bm.Name, bm.Fn)
	}
}
