// Package speccat's root benchmarks regenerate every evaluation artifact
// of the paper (see DESIGN.md's experiment index): one benchmark per
// experiment E1..E10, timing exactly the code path cmd/tpcverify prints.
package speccat_test

import (
	"testing"

	"speccat/internal/core/speclang"
	"speccat/internal/experiments"
	"speccat/internal/thesis"
	"speccat/internal/tpc"
)

// corpus is elaborated once (proofs skipped: benchmarks re-run them).
var corpus *speclang.Env

func corpusEnv(b *testing.B) *speclang.Env {
	b.Helper()
	if corpus == nil {
		env, err := thesis.CorpusWithoutProofs()
		if err != nil {
			b.Fatal(err)
		}
		corpus = env
	}
	return corpus
}

// BenchmarkE0_CorpusElaboration times the full pipeline: parse, elaborate,
// translate, build all ten colimits (no proofs).
func BenchmarkE0_CorpusElaboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := thesis.CorpusWithoutProofs(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_Table31_BuildingBlocks regenerates Table 3.1.
func BenchmarkE1_Table31_BuildingBlocks(b *testing.B) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E1Table31(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkE2_Fig34_SeqDivision1 re-verifies the Fig. 3.4 chain.
func BenchmarkE2_Fig34_SeqDivision1(b *testing.B) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2SeqDivision1(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Fig35_SeqDivision2 re-verifies the Fig. 3.5 chain.
func BenchmarkE3_Fig35_SeqDivision2(b *testing.B) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3SeqDivision2(env); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkProof times one global-property proof (Figs. 4.2/4.10/4.18).
func benchmarkProof(b *testing.B, property string) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := thesis.ProveProperty(env, property)
		if err != nil {
			b.Fatal(err)
		}
		if res.Proof.Stats.ProofLength == 0 {
			b.Fatal("empty proof")
		}
	}
}

// BenchmarkE4_Fig42_Serializability proves Serialize in PR2 (thesis p1).
func BenchmarkE4_Fig42_Serializability(b *testing.B) { benchmarkProof(b, "Serialize") }

// BenchmarkE5_Fig410_ConsistentState proves CSM in PR6 (thesis p2).
func BenchmarkE5_Fig410_ConsistentState(b *testing.B) { benchmarkProof(b, "CSM") }

// BenchmarkE6_Fig418_RollbackRecovery proves RBR in PR4 (thesis p3).
func BenchmarkE6_Fig418_RollbackRecovery(b *testing.B) { benchmarkProof(b, "RBR") }

// BenchmarkE7_Fig32_ModelCheck3PC explores the 3PC state space under the
// thesis assumptions and checks both non-blocking rules.
func BenchmarkE7_Fig32_ModelCheck3PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E7ModelCheck(2)
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Atomic || rows[0].Blocking != 0 {
			b.Fatal("3PC model-check failed")
		}
	}
}

// BenchmarkE8_Fig31_DistributedTxn_3PC runs the end-to-end transfer
// workload with a mid-run coordinator crash under 3PC.
func BenchmarkE8_Fig31_DistributedTxn_3PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8Distributed(int64(i)+1, 20, tpc.ThreePhase)
		if err != nil {
			b.Fatal(err)
		}
		if r.Committed == 0 {
			b.Fatal("nothing committed")
		}
	}
}

// BenchmarkE8_Fig31_DistributedTxn_2PC is the blocking baseline.
func BenchmarkE8_Fig31_DistributedTxn_2PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Distributed(int64(i)+1, 20, tpc.TwoPhase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_Ablation_ModularVsMonolithic contrasts compositional and
// flat verification of all four properties.
func BenchmarkE9_Ablation_Modular(b *testing.B) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prop := range thesis.GlobalProperties() {
			if _, err := thesis.ProveProperty(env, prop); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE9_Ablation_Monolithic is the flat-verification arm.
func BenchmarkE9_Ablation_Monolithic(b *testing.B) {
	env := corpusEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prop := range thesis.GlobalProperties() {
			if _, err := thesis.ProveMonolithic(env, prop); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE10_FailureInjection runs the assumption-violation matrix.
func BenchmarkE10_FailureInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10FailureInjection(); err != nil {
			b.Fatal(err)
		}
	}
}
