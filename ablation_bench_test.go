// Ablation benchmarks for the design choices DESIGN.md calls out: the
// prover's set-of-support strategy, colimit cost as composition chains
// deepen, model-checker state-space growth with cohort count, and the
// commit protocols' message/latency trade-off at increasing group sizes.
package speccat_test

import (
	"fmt"
	"testing"

	"speccat/internal/core/cat"
	"speccat/internal/core/logic"
	"speccat/internal/core/prover"
	"speccat/internal/core/spec"
	"speccat/internal/mc"
	"speccat/internal/tpc"
)

// hornChain builds a k-step Horn chain P0 => P1 => ... => Pk with goal Pk,
// plus k "distractor" axioms (an unrelated derivable chain) that an
// unrestricted saturation grinds through but set-of-support never touches.
func hornChain(k int) ([]prover.NamedFormula, prover.NamedFormula) {
	var axioms []prover.NamedFormula
	axioms = append(axioms, prover.NamedFormula{Name: "base", Formula: logic.Pred("P0")})
	for i := 0; i < k; i++ {
		axioms = append(axioms, prover.NamedFormula{
			Name:    fmt.Sprintf("step%d", i),
			Formula: logic.Implies(logic.Pred(fmt.Sprintf("P%d", i)), logic.Pred(fmt.Sprintf("P%d", i+1))),
		})
		axioms = append(axioms, prover.NamedFormula{
			Name:    fmt.Sprintf("noise%d", i),
			Formula: logic.Implies(logic.Pred(fmt.Sprintf("Q%d", i)), logic.Pred(fmt.Sprintf("Q%d", i+1))),
		})
	}
	axioms = append(axioms, prover.NamedFormula{Name: "noisebase", Formula: logic.Pred("Q0")})
	return axioms, prover.NamedFormula{Name: "goal", Formula: logic.Pred(fmt.Sprintf("P%d", k))}
}

// BenchmarkAblation_Prover_SOS measures the set-of-support strategy...
func BenchmarkAblation_Prover_SOS(b *testing.B) {
	axioms, goal := hornChain(24)
	p := prover.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Prove(axioms, goal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Prover_NoSOS ...against unrestricted saturation.
func BenchmarkAblation_Prover_NoSOS(b *testing.B) {
	axioms, goal := hornChain(24)
	p := prover.New()
	p.DisableSOS = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Prove(axioms, goal); err != nil {
			b.Fatal(err)
		}
	}
}

// towerSpecs builds an n-layer inclusion tower for colimit scaling.
func towerSpecs(b *testing.B, n int) *cat.Diagram {
	b.Helper()
	d := cat.NewDiagram()
	var prev *spec.Spec
	for i := 0; i < n; i++ {
		s := spec.New(fmt.Sprintf("L%d", i))
		if prev != nil {
			if err := s.Include(prev); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.AddSort(fmt.Sprintf("S%d", i), ""); err != nil {
			b.Fatal(err)
		}
		if err := s.AddOp(spec.Op{Name: fmt.Sprintf("Op%d", i), Args: []string{fmt.Sprintf("S%d", i)}, Result: spec.BoolSort}); err != nil {
			b.Fatal(err)
		}
		label := fmt.Sprintf("n%d", i)
		if err := d.AddNode(label, s); err != nil {
			b.Fatal(err)
		}
		if prev != nil {
			m := spec.NewMorphism(fmt.Sprintf("m%d", i), prev, s, nil, nil)
			if err := d.AddArc(fmt.Sprintf("a%d", i), fmt.Sprintf("n%d", i-1), label, m); err != nil {
				b.Fatal(err)
			}
		}
		prev = s
	}
	return d
}

// BenchmarkAblation_Colimit_Depth{4,16,64} measure shared-union colimit
// cost as the composition chain deepens.
func benchmarkColimitDepth(b *testing.B, depth int) {
	d := towerSpecs(b, depth)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc, err := cat.Colimit(d, "APEX")
		if err != nil {
			b.Fatal(err)
		}
		if len(cc.Apex.Sig.Ops) != depth {
			b.Fatalf("ops = %d", len(cc.Apex.Sig.Ops))
		}
	}
}

func BenchmarkAblation_Colimit_Depth4(b *testing.B)  { benchmarkColimitDepth(b, 4) }
func BenchmarkAblation_Colimit_Depth16(b *testing.B) { benchmarkColimitDepth(b, 16) }
func BenchmarkAblation_Colimit_Depth64(b *testing.B) { benchmarkColimitDepth(b, 64) }

// benchmarkMCCohorts measures state-space growth with cohort count.
func benchmarkMCCohorts(b *testing.B, n int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := mc.NewCommitModel(mc.Model3PC, n, 1, mc.ModelOptions{Lockstep: true, AllowRecovery: true})
		res, err := mc.Explore(sys, []mc.Invariant{mc.InvariantAtomicity(n)}, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatal("unexpected violation")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

func BenchmarkAblation_ModelCheck_1Cohort(b *testing.B)  { benchmarkMCCohorts(b, 1) }
func BenchmarkAblation_ModelCheck_2Cohorts(b *testing.B) { benchmarkMCCohorts(b, 2) }
func BenchmarkAblation_ModelCheck_3Cohorts(b *testing.B) { benchmarkMCCohorts(b, 3) }

// benchmarkCommitGroup measures a full no-failure commit round.
func benchmarkCommitGroup(b *testing.B, protocol tpc.Protocol, cohorts int) {
	for i := 0; i < b.N; i++ {
		g, err := tpc.NewGroup(int64(i)+1, cohorts, tpc.Config{Protocol: protocol})
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Coordinator.Begin("t"); err != nil {
			b.Fatal(err)
		}
		g.Net.Scheduler().Run(0)
		if g.Coordinator.Decision("t") != tpc.DecisionCommit {
			b.Fatal("commit failed")
		}
		sent, _, _ := g.Net.Stats()
		b.ReportMetric(float64(sent), "msgs")
	}
}

func BenchmarkAblation_Commit_3PC_3Cohorts(b *testing.B) { benchmarkCommitGroup(b, tpc.ThreePhase, 3) }
func BenchmarkAblation_Commit_2PC_3Cohorts(b *testing.B) { benchmarkCommitGroup(b, tpc.TwoPhase, 3) }
func BenchmarkAblation_Commit_3PC_9Cohorts(b *testing.B) { benchmarkCommitGroup(b, tpc.ThreePhase, 9) }
func BenchmarkAblation_Commit_2PC_9Cohorts(b *testing.B) { benchmarkCommitGroup(b, tpc.TwoPhase, 9) }
