// Command nonblocking demonstrates the property that gives the paper's
// case-study protocol its name: when the coordinator crashes mid-protocol,
// 3PC cohorts run the termination protocol and decide, while 2PC cohorts
// stay blocked holding their locks until the coordinator recovers. The
// program sweeps the crash point across the protocol's phases and prints
// the outcome for both protocols at each point.
package main

import (
	"fmt"
	"os"

	"speccat/internal/sim"
	"speccat/internal/simnet"
	"speccat/internal/tpc"
)

func main() {
	fmt.Println("coordinator-crash sweep: 3 cohorts, crash at time t, observe at t+1500")
	fmt.Println()
	fmt.Printf("%8s  %22s  %22s\n", "crash t", "3PC (decided/blocked)", "2PC (decided/blocked)")
	for t := sim.Time(0); t <= 60; t += 4 {
		d3, b3 := runOnce(tpc.ThreePhase, t)
		d2, b2 := runOnce(tpc.TwoPhase, t)
		fmt.Printf("%8d  %11d/%-10d  %11d/%-10d\n", t, d3, b3, d2, b2)
	}
	fmt.Println()
	fmt.Println("3PC: every operational cohort decides at every crash point (non-blocking).")
	fmt.Println("2PC: cohorts that voted yes before the crash stay blocked, holding locks.")
}

// runOnce returns (decided, blocked) cohort counts for one crash point.
func runOnce(p tpc.Protocol, crashAt sim.Time) (decided, blocked int) {
	g, err := tpc.NewGroup(42, 3, tpc.Config{Protocol: p})
	if err == nil {
		err = g.Coordinator.Begin("txn")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nonblocking:", err)
		os.Exit(1)
	}
	g.Net.Scheduler().RunUntil(crashAt)
	_ = g.Net.Crash(g.CoordID)
	g.Net.Scheduler().RunUntil(crashAt + 1500)

	for _, id := range g.CohortIDs {
		h := g.Cohorts[id]
		if h.Decision("txn") != tpc.DecisionNone {
			decided++
			continue
		}
		if isBlocked(g, id) {
			blocked++
		}
	}
	return decided, blocked
}

func isBlocked(g *tpc.Group, id simnet.NodeID) bool {
	h := g.Cohorts[id]
	if b, _ := h.Blocked("txn"); b {
		return true
	}
	// An undecided cohort past the crash horizon counts as blocked too.
	return h.Decision("txn") == tpc.DecisionNone && h.StateOf("txn") != tpc.StateInitial
}
