// Command verify3pc reruns the thesis's entire verification, end to end:
// it elaborates the clean corpus (eleven building blocks, the PR1..PR9
// composition chains of Figs. 3.4/3.5), proves the three global properties
// compositionally (Serialize, CSM, RBR — the thesis's p1/p2/p3), verifies
// every colimit commutes, and model-checks the non-blocking theorem on the
// abstract 3PC/2PC state spaces.
package main

import (
	"fmt"
	"os"

	"speccat/internal/mc"
	"speccat/internal/thesis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "verify3pc:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== elaborating corpus (building blocks + composition chains) ==")
	env, err := thesis.Corpus()
	if err != nil {
		return err
	}

	fmt.Println("\n== sequential division 1 (Fig. 3.4): recovery tower ==")
	d1, err := thesis.SequentialDivision1(env)
	if err != nil {
		return err
	}
	for _, step := range d1 {
		fmt.Printf("  %-10s = %s + %s  (%d sorts, %d ops, %d axioms, %d theorems)\n",
			step.Name, step.Parents[0], step.Parents[1], step.Sorts, step.Ops, step.Axioms, step.Theorems)
	}

	fmt.Println("\n== sequential division 2 (Fig. 3.5): election tower ==")
	d2, err := thesis.SequentialDivision2(env)
	if err != nil {
		return err
	}
	for _, step := range d2 {
		fmt.Printf("  %-10s = %s + %s  (%d sorts, %d ops, %d axioms, %d theorems)\n",
			step.Name, step.Parents[0], step.Parents[1], step.Sorts, step.Ops, step.Axioms, step.Theorems)
	}

	fmt.Println("\n== colimit commutation checks ==")
	reports, err := thesis.VerifyCommutations(env)
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Printf("  %-10s cocone commutes (%d nodes, %d arcs) ✓\n", r.Colimit, r.Nodes, r.Arcs)
	}

	fmt.Println("\n== global properties (thesis proofs p1..p3 + division-2 functionality) ==")
	for _, prop := range thesis.GlobalProperties() {
		res, err := thesis.ProveProperty(env, prop)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s in %-4s: proved in %d steps from %v (%.2fms, %d clauses)\n",
			res.Property, res.Composite, res.Proof.Stats.ProofLength, res.UsingAxioms,
			float64(res.Proof.Stats.Elapsed.Microseconds())/1000, res.Proof.Stats.Generated)
	}

	fmt.Println("\n== model checking the non-blocking theorem (2 cohorts, 1 crash) ==")
	type row struct {
		variant mc.Variant
		opts    mc.ModelOptions
		label   string
	}
	rows := []row{
		{mc.Model3PC, mc.ModelOptions{Lockstep: true, AllowRecovery: true}, "3PC, thesis assumptions"},
		{mc.Model3PCNaive, mc.ModelOptions{Lockstep: true, AllowRecovery: true}, "3PC naive timeouts, lockstep"},
		{mc.Model3PCNaive, mc.ModelOptions{}, "3PC naive timeouts, interleaved"},
		{mc.Model3PC, mc.ModelOptions{AllowRecovery: true}, "3PC, interleaved + indep. recovery"},
		{mc.Model2PC, mc.ModelOptions{Lockstep: true}, "2PC"},
	}
	for _, r := range rows {
		sys := mc.NewCommitModel(r.variant, 2, 1, r.opts)
		res, err := mc.Explore(sys, []mc.Invariant{mc.InvariantAtomicity(2)},
			mc.Options{TerminalOK: mc.TerminalAllDecided(2)})
		if err != nil {
			return err
		}
		status := "safe"
		if w, bad := res.Violations["atomicity"]; bad {
			status = "ATOMICITY VIOLATION (witness " + w + ")"
		}
		blocking := "non-blocking"
		if len(res.Deadlocks) > 0 {
			blocking = fmt.Sprintf("BLOCKING (%d stuck states)", len(res.Deadlocks))
		}
		fmt.Printf("  %-36s %6d states: %s, %s\n", r.label, res.States, status, blocking)
	}

	fmt.Println("\nAll thesis results reproduced.")
	return nil
}
