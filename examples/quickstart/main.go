// Command quickstart is the smallest end-to-end tour of the library: write
// two specifications in the Specware-like language, link them with a
// morphism, compose them with a colimit, and prove a theorem of the
// composite with the resolution prover — the paper's Chapter 2 workflow in
// thirty lines of specification text.
package main

import (
	"fmt"
	"os"

	"speccat/internal/core/speclang"
)

const source = `
% A tiny sender/receiver protocol stack.
CHANNEL = spec
sort Node
sort Msg
op Sent : Node*Msg -> Boolean
op Recv : Node*Msg -> Boolean
axiom Reliable is fa(n:Node, m:Msg) Sent(n, m) => Recv(n, m)
endspec

% A service that acknowledges everything it receives.
ACKER = spec
import CHANNEL
op Acked : Node*Msg -> Boolean
axiom Acks is fa(n:Node, m:Msg) Recv(n, m) => Acked(n, m)
theorem EndToEnd is fa(n:Node, m:Msg) Sent(n, m) => Acked(n, m)
endspec

% Compose them: the colimit is the shared union over the linking morphism.
D = diagram {
a ++> CHANNEL,
b ++> ACKER,
i: a->b ++> morphism CHANNEL -> ACKER {Sent ++> Sent, Recv ++> Recv}}

STACK = colimit D

% Prove the global property from the component axioms.
p = prove EndToEnd in STACK using Reliable Acks
`

func main() {
	env, err := speclang.Run(source, speclang.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	stack, err := env.Spec("STACK")
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Println("Composed specification:")
	fmt.Println(stack)
	fmt.Println()

	proof, _ := env.Lookup("p")
	fmt.Printf("Theorem EndToEnd proved in %d steps (%d clauses generated):\n",
		proof.Proof.Stats.ProofLength, proof.Proof.Stats.Generated)
	for _, step := range proof.Proof.Proof {
		fmt.Println(" ", step)
	}
}
