// Command banking runs the paper's motivating scenario — money transfers
// between accounts stored at different sites — on the full executable
// stack: strict two-phase locking and undo/redo logging at each site,
// distributed execution per Fig. 3.1, atomic commitment via non-blocking
// 3PC, and a mid-run site crash with roll-back recovery. The invariant
// printed at the end is conservation of the total balance.
package main

import (
	"fmt"
	"os"

	"speccat/internal/kvstore"
	"speccat/internal/tpc"
	"speccat/internal/txn"
	"speccat/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "banking:", err)
		os.Exit(1)
	}
}

func run() error {
	const sites = 4
	cluster, err := txn.NewCluster(2026, sites, tpc.Config{})
	if err != nil {
		return err
	}
	gen := workload.New(workload.Config{
		Kind:           workload.Transfers,
		Accounts:       12,
		InitialBalance: 100,
		Transactions:   40,
		Seed:           7,
	}, cluster.SiteFor)

	submit := func(name string, ops []txn.Op) (tpc.Decision, error) {
		var res *txn.Result
		if err := cluster.Master.Submit(name, ops, func(r *txn.Result) { res = r }); err != nil {
			return tpc.DecisionNone, err
		}
		cluster.Run()
		if res == nil {
			return tpc.DecisionNone, fmt.Errorf("transaction %s did not complete", name)
		}
		return res.Decision, nil
	}

	fmt.Printf("seeding %d accounts × %d across %d sites\n", 12, 100, sites)
	if d, err := submit("setup", gen.SetupOps()); err != nil || d != tpc.DecisionCommit {
		return fmt.Errorf("setup failed: %w (%s)", err, d)
	}

	ledger := workload.NewLedger(gen)
	committed, aborted := 0, 0
	crashPlanned := true
	victim := cluster.SiteIDs[1]

	for i, wt := range gen.Generate() {
		if !wt.IsTransfer {
			continue
		}
		// Crash one data site a third of the way in, recover it a few
		// transactions later.
		if crashPlanned && i == 13 {
			fmt.Printf("!! crashing site %d (volatile state lost, stable storage kept)\n", victim)
			if err := cluster.Net.Crash(victim); err != nil {
				return err
			}
			crashPlanned = false
		}
		if !crashPlanned && i == 17 {
			fmt.Printf("!! recovering site %d: rollback recovery from checkpoint + WAL replay\n", victim)
			if err := cluster.Net.Recover(victim); err != nil {
				return err
			}
			st, err := cluster.Net.Store(victim)
			if err != nil {
				return err
			}
			store, err := kvstore.Open(st) // reopen = recover
			if err != nil {
				return err
			}
			cluster.Sites[victim].Store = store
		}

		ops, undo := ledger.Fill(wt, 10)
		d, err := submit(wt.Name, ops)
		if err != nil {
			return err
		}
		if d == tpc.DecisionCommit {
			committed++
		} else {
			aborted++
			undo()
		}
	}

	total := cluster.TotalOf(gen.AccountKeys())
	fmt.Printf("\ntransfers: %d committed, %d aborted (aborts expected while the site was down)\n", committed, aborted)
	fmt.Printf("total balance: %d (invariant: %d)\n", total, gen.Total())
	if total != gen.Total() {
		return fmt.Errorf("CONSERVATION VIOLATED: %d != %d", total, gen.Total())
	}
	fmt.Println("conservation invariant holds ✓")

	sent, delivered, dropped := cluster.Net.Stats()
	fmt.Printf("network: %d sent, %d delivered, %d dropped\n", sent, delivered, dropped)
	return nil
}
