GO ?= go
# Benchmark knobs: BENCHTIME per testing -benchtime (1x = one iteration,
# CI smoke; 5x or 2s for real measurements), BENCHOUT the report path
# (empty = BENCH_<date>.json in the working directory).
BENCHTIME ?= 1x
BENCHOUT ?=

.PHONY: build test race lint fsm fsm-check explore verify bench bench-go bench-compare serve load fuzz-wire

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# All seven linting layers: go vet, then the Go design-rule analyzers plus
# the fsmcheck protocol extraction, the durcheck durability-ordering
# analysis, the portcheck runtime-boundary/state-confinement analysis,
# the commcheck commutativity lock-mode analysis and the lockcheck
# 2PL/lock-order analysis over the whole module, the spec linter over the
# thesis corpus and the commutativity spec, and the generated-FSM-docs
# staleness gate. speccatlint -only <layer> reruns any single layer in
# isolation.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/speccatlint -dur -port -comm -lock ./...
	$(GO) run ./cmd/speccatlint internal/core/speclang/testdata/thesis/*.sw internal/locking/comm.sw
	$(GO) run ./cmd/speccatlint -fsm-check docs/fsm ./internal/...

# Regenerate docs/fsm from the //fsm:* annotations in the sources. The
# output is deterministic; commit it, and CI fails when it drifts.
fsm:
	$(GO) run ./cmd/speccatlint -fsm docs/fsm ./internal/...

# Fail (without writing) when docs/fsm is stale relative to the sources.
fsm-check:
	$(GO) run ./cmd/speccatlint -fsm-check docs/fsm ./internal/...

# Deterministic fault-exploration smoke suite: the explorer must rediscover
# the naive-3PC atomicity violation and 2PC blocking end to end, full 3PC
# must run clean, and the checked-in shrunk counterexamples must replay
# byte-for-byte. Budget counts simulated runs, not wall time.
explore:
	$(GO) run ./cmd/tpcexplore -protocol 3pc-naive -seeds 40 -budget 400 -expect atomicity
	$(GO) run ./cmd/tpcexplore -protocol 2pc -seeds 40 -budget 400 -expect progress
	$(GO) run ./cmd/tpcexplore -protocol 3pc -seeds 80 -budget 400 -expect none
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/naive3pc_atomicity.json
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/2pc_blocking.json

# The full tier-1 gate: everything CI runs.
verify: build lint test race explore

# Benchmark regression harness: runs the E0..E10 + E14 suite via
# cmd/specbench and writes the machine-readable BENCH_<date>.json report
# (schema: internal/benchsuite.Report). bench-go runs the same bodies
# through `go test -bench` for interactive use.
bench:
	$(GO) run ./cmd/specbench -benchtime $(BENCHTIME) -out "$(BENCHOUT)"

bench-go:
	$(GO) test -bench . -benchtime $(BENCHTIME) -run ^$$ ./...

# Regression gate: rerun the suite and fail on any benchmark (or E14
# proof-pipeline arm) slower than the checked-in BASELINE report by more
# than TOLERANCE. The default 20% is meant for quiet machines and
# time-based BENCHTIMEs (100ms gives microbenchmarks thousands of
# iterations); CI calls this with a much looser tolerance as a
# gross-regression smoke gate, since shared runners jitter the
# single-iteration heavyweight arms by 1.5x or more.
BASELINE ?= BENCH_2026-08-09.json
TOLERANCE ?= 0.20
# The compare run writes its own report (never the default BENCH_<date>
# name, which could clobber a same-day baseline).
COMPAREOUT ?= BENCH_compare.json
bench-compare:
	$(GO) run ./cmd/specbench -benchtime $(BENCHTIME) -out "$(COMPAREOUT)" -compare "$(BASELINE)" -tolerance $(TOLERANCE)

# Serving-path knobs for the convenience targets below. A real deployment
# runs one `make serve NODE=n` per machine with the same CLUSTER map;
# node 1 is the coordinator.
NODE ?= 1
CLUSTER ?= 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103,4=127.0.0.1:7104
CLIENT ?= 127.0.0.1:720$(NODE)
DATA ?=
LOADADDR ?= 127.0.0.1:7201
TXNS ?= 500

# Run one cluster node (tpc/txn/kvstore over real TCP). Example 4-node
# local cluster: `make serve NODE=1 &`, ... `make serve NODE=4 &`.
serve:
	$(GO) run ./cmd/tpcserve -node $(NODE) -cluster "$(CLUSTER)" -client $(CLIENT) $(if $(DATA),-data $(DATA))

# Drive the load generator at a running cluster's coordinator.
load:
	$(GO) run ./cmd/tpcload -addr $(LOADADDR) -txns $(TXNS)

# Wire-layer fuzzers with a bounded budget (CI serve-smoke runs this; the
# checked-in seed corpus under internal/rt/tcp/testdata/fuzz replays on
# every plain `go test`).
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 10s ./internal/rt/tcp
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s ./internal/rt/tcp
