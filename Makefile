GO ?= go

.PHONY: build test race lint explore verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Both linting layers: go vet, the Go design-rule analyzers over the whole
# module, and the spec linter over the thesis corpus.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/speccatlint ./...
	$(GO) run ./cmd/speccatlint internal/core/speclang/testdata/thesis/*.sw

# Deterministic fault-exploration smoke suite: the explorer must rediscover
# the naive-3PC atomicity violation and 2PC blocking end to end, full 3PC
# must run clean, and the checked-in shrunk counterexamples must replay
# byte-for-byte. Budget counts simulated runs, not wall time.
explore:
	$(GO) run ./cmd/tpcexplore -protocol 3pc-naive -seeds 40 -budget 400 -expect atomicity
	$(GO) run ./cmd/tpcexplore -protocol 2pc -seeds 40 -budget 400 -expect progress
	$(GO) run ./cmd/tpcexplore -protocol 3pc -seeds 80 -budget 400 -expect none
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/naive3pc_atomicity.json
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/2pc_blocking.json

# The full tier-1 gate: everything CI runs.
verify: build lint test race explore

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...
