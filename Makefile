GO ?= go

.PHONY: build test race lint verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Both linting layers: go vet, the Go design-rule analyzers over the whole
# module, and the spec linter over the thesis corpus.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/speccatlint ./...
	$(GO) run ./cmd/speccatlint internal/core/speclang/testdata/thesis/*.sw

# The full tier-1 gate: everything CI runs.
verify: build lint test race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...
