GO ?= go

.PHONY: build test race lint fsm fsm-check explore verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# All three linting layers: go vet, the Go design-rule analyzers plus the
# fsmcheck protocol extraction over the whole module, the spec linter over
# the thesis corpus, and the generated-FSM-docs staleness gate.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/speccatlint ./...
	$(GO) run ./cmd/speccatlint internal/core/speclang/testdata/thesis/*.sw
	$(GO) run ./cmd/speccatlint -fsm-check docs/fsm ./internal/...

# Regenerate docs/fsm from the //fsm:* annotations in the sources. The
# output is deterministic; commit it, and CI fails when it drifts.
fsm:
	$(GO) run ./cmd/speccatlint -fsm docs/fsm ./internal/...

# Fail (without writing) when docs/fsm is stale relative to the sources.
fsm-check:
	$(GO) run ./cmd/speccatlint -fsm-check docs/fsm ./internal/...

# Deterministic fault-exploration smoke suite: the explorer must rediscover
# the naive-3PC atomicity violation and 2PC blocking end to end, full 3PC
# must run clean, and the checked-in shrunk counterexamples must replay
# byte-for-byte. Budget counts simulated runs, not wall time.
explore:
	$(GO) run ./cmd/tpcexplore -protocol 3pc-naive -seeds 40 -budget 400 -expect atomicity
	$(GO) run ./cmd/tpcexplore -protocol 2pc -seeds 40 -budget 400 -expect progress
	$(GO) run ./cmd/tpcexplore -protocol 3pc -seeds 80 -budget 400 -expect none
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/naive3pc_atomicity.json
	$(GO) run ./cmd/tpcexplore -replay internal/explore/testdata/2pc_blocking.json

# The full tier-1 gate: everything CI runs.
verify: build lint test race explore

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...
