module speccat

go 1.22
