// Package workload generates the synthetic transaction workloads the
// benchmarks run: bank transfers (the paper's canonical motivating example
// — "transfer of money from one account to another"), read-mostly mixes,
// and hotspot contention patterns. Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"

	"speccat/internal/kvstore"
	"speccat/internal/simnet"
	"speccat/internal/txn"
)

// Kind selects a workload shape.
type Kind int

// Workload kinds.
const (
	// Transfers moves amounts between random account pairs (2 reads +
	// 2 writes across up to two sites).
	Transfers Kind = iota + 1
	// ReadMostly issues 90% single-key reads, 10% transfers.
	ReadMostly
	// Hotspot concentrates half of all accesses on one account.
	Hotspot
	// Commutative issues increment-transfers (paired ±delta increments,
	// conserving the total under any interleaving) against zipfian-skewed
	// accounts, plus a read fraction. It is the workload the
	// commutativity-derived lock modes exist for: under Put-style
	// exclusive writes the hot accounts serialize, under IncMode they
	// share.
	Commutative
	// CrossPartition issues wide conserving increment-transactions over
	// Spread distinct zipfian-chosen accounts (plus a read fraction): the
	// first Spread−1 accounts each lose d, the last gains (Spread−1)·d, so
	// the total is invariant under any interleaving. Because the accounts
	// are drawn independently, each transaction deliberately straddles
	// sites — and, within a site, hash shards — making it the stress mix
	// for the multi-shard prepare fan-out and group-committed WAL path.
	CrossPartition
	// Opposed is the adversarial cross-shard lock-order mix: every
	// transaction blind-writes the same two accounts, chosen so both live
	// at one site but hash to different shards, with the two acquisition
	// orders alternating — transaction 1 takes (high shard, low shard),
	// transaction 2 (low, high), and so on. Transaction 0 is a warm-up
	// that writes both keys and so (under strict 2PL) holds both shards'
	// locks until its commit applies, forcing the opposed pair to suspend
	// mid-acquisition; when the warm-up releases, each of the pair grabs
	// its first key and then waits on the other's — a waits-for cycle
	// spanning two lock managers that neither manager's deadlock detector
	// can see. It exists for E20 and lockcheck's lock-order rule; it is
	// deterministic (no random draws).
	Opposed
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Transfers:
		return "transfers"
	case ReadMostly:
		return "read-mostly"
	case Hotspot:
		return "hotspot"
	case Commutative:
		return "commutative"
	case CrossPartition:
		return "cross-partition"
	case Opposed:
		return "opposed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config parameterizes generation.
type Config struct {
	Kind Kind
	// Accounts is the number of bank accounts.
	Accounts int
	// InitialBalance per account.
	InitialBalance int
	// Transactions to generate.
	Transactions int
	// Seed drives the deterministic generator when Rand is nil.
	Seed int64
	// Rand, when non-nil, is the random source the generator draws from
	// instead of constructing its own from Seed. Callers that compose the
	// workload with other randomized machinery (the fault explorer) pass a
	// child of one root-seeded source here, so a whole run replays from a
	// single seed.
	Rand *rand.Rand
	// ZipfTheta skews the Commutative kind's account choice
	// (0 = uniform; around 0.9 is the classic zipfian benchmark skew).
	ZipfTheta float64
	// ReadFraction is the share of single-key reads in the Commutative
	// mix (the rest are increment-transfers). Zero means all transfers.
	ReadFraction float64
	// Spread is how many distinct accounts a CrossPartition transaction
	// touches (default 4; clamped to Accounts).
	Spread int
	// Shards is the per-site hash-partition count the cluster under test
	// runs with. Only the Opposed kind reads it (to pick two same-site
	// accounts hashing to different shards); 0 defaults to 2.
	Shards int
	// WriteFraction is the share of blind absolute-write transactions in
	// the Commutative mix: paired overwrites of two zipfian-chosen
	// accounts with no preceding read. It exists for the underlock
	// ablation — a blind write racing concurrent increments is exactly
	// the lost-update anomaly the comm-underlock rule flags statically
	// and the serializability oracle must catch dynamically. (A
	// read-then-write transfer would not do: the lock manager escalates
	// the mixed read+write hold to exclusive, masking the ablation.)
	WriteFraction float64
}

// Account names account i.
func Account(i int) string { return fmt.Sprintf("acct%03d", i) }

// Generator produces transactions for a cluster.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *Zipf
	// SiteFor maps keys to sites (wired to the cluster's placement).
	SiteFor func(key string) simnet.NodeID
}

// New creates a generator.
func New(cfg Config, siteFor func(string) simnet.NodeID) *Generator {
	if cfg.Accounts == 0 {
		cfg.Accounts = 16
	}
	if cfg.InitialBalance == 0 {
		cfg.InitialBalance = 100
	}
	if cfg.Spread == 0 {
		cfg.Spread = 4
	}
	if cfg.Spread > cfg.Accounts {
		cfg.Spread = cfg.Accounts
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Generator{
		cfg: cfg, rng: rng, SiteFor: siteFor,
		zipf: NewZipf(rng, cfg.Accounts, cfg.ZipfTheta),
	}
}

// SetupOps returns the operations that seed every account with its
// initial balance (run as one bootstrap transaction).
func (g *Generator) SetupOps() []txn.Op {
	ops := make([]txn.Op, 0, g.cfg.Accounts)
	for i := 0; i < g.cfg.Accounts; i++ {
		key := Account(i)
		ops = append(ops, txn.Op{
			Site: g.SiteFor(key), Key: key,
			Value: fmt.Sprintf("%d", g.cfg.InitialBalance), IsWrite: true,
		})
	}
	return ops
}

// AccountKeys lists all account keys.
func (g *Generator) AccountKeys() []string {
	keys := make([]string, g.cfg.Accounts)
	for i := range keys {
		keys[i] = Account(i)
	}
	return keys
}

// Total returns the invariant total balance.
func (g *Generator) Total() int { return g.cfg.Accounts * g.cfg.InitialBalance }

// Txn is one generated transaction.
type Txn struct {
	Name string
	Ops  []txn.Op
	// IsTransfer marks balance-moving transactions.
	IsTransfer bool
}

// Generate produces the configured number of transactions.
func (g *Generator) Generate() []Txn {
	out := make([]Txn, 0, g.cfg.Transactions)
	for i := 0; i < g.cfg.Transactions; i++ {
		name := fmt.Sprintf("txn%05d", i)
		switch g.cfg.Kind {
		case ReadMostly:
			if g.rng.Intn(10) != 0 {
				out = append(out, g.readTxn(name))
				continue
			}
			out = append(out, g.transferTxn(name, g.pick(), g.pick()))
		case Hotspot:
			a := g.pick()
			if g.rng.Intn(2) == 0 {
				a = 0 // the hot account
			}
			out = append(out, g.transferTxn(name, a, g.pick()))
		case Commutative:
			u := g.rng.Float64()
			switch {
			case u < g.cfg.ReadFraction:
				out = append(out, g.zipfReadTxn(name))
			case u < g.cfg.ReadFraction+g.cfg.WriteFraction:
				out = append(out, g.blindWriteTxn(name))
			default:
				out = append(out, g.incTransferTxn(name))
			}
		case CrossPartition:
			if g.rng.Float64() < g.cfg.ReadFraction {
				out = append(out, g.zipfReadTxn(name))
				continue
			}
			out = append(out, g.crossPartitionTxn(name))
		case Opposed:
			out = append(out, g.opposedTxn(name, i))
		default:
			out = append(out, g.transferTxn(name, g.pick(), g.pick()))
		}
	}
	return out
}

// crossPartitionTxn drains d from each of Spread−1 zipfian-chosen distinct
// accounts into one sink account — a conserving wide write whose key set
// straddles sites (and shards) by construction of independent draws.
func (g *Generator) crossPartitionTxn(name string) Txn {
	chosen := map[int]bool{}
	var accts []int
	for len(accts) < g.cfg.Spread {
		a := g.zipf.Next()
		for chosen[a] {
			a = (a + 1) % g.cfg.Accounts
		}
		chosen[a] = true
		accts = append(accts, a)
	}
	d := 1 + g.rng.Intn(9)
	t := Txn{Name: name, IsTransfer: true}
	for i, a := range accts {
		k := Account(a)
		delta := fmt.Sprintf("-%d", d)
		if i == len(accts)-1 {
			delta = fmt.Sprintf("%d", d*(len(accts)-1))
		}
		t.Ops = append(t.Ops, txn.Op{Site: g.SiteFor(k), Key: k, Value: delta, Class: txn.ClassInc})
	}
	return t
}

// opposedPair finds the two accounts the Opposed mix contends on: the
// first pair that lives at one site (so one work message carries both
// operations and acquisition order is exactly op order) while hashing to
// different shards (so the two locks live in different managers). Returned
// in ascending shard-index order. The scan is deterministic; failure to
// find a pair (single-site clusters always succeed only if two accounts
// hash apart, true for any realistic account count) falls back to the
// first two accounts.
func (g *Generator) opposedPair() (lo, hi string) {
	n := g.cfg.Shards
	if n < 2 {
		n = 2
	}
	for a := 0; a < g.cfg.Accounts; a++ {
		for b := a + 1; b < g.cfg.Accounts; b++ {
			ka, kb := Account(a), Account(b)
			if g.SiteFor(ka) != g.SiteFor(kb) {
				continue
			}
			sa, sb := kvstore.ShardOf(ka, n), kvstore.ShardOf(kb, n)
			if sa == sb {
				continue
			}
			if sa < sb {
				return ka, kb
			}
			return kb, ka
		}
	}
	return Account(0), Account(1)
}

// opposedTxn builds transaction i of the Opposed mix (see the Kind doc):
// i=0 warms both keys; odd i acquires (hi, lo) — descending shard order —
// and even i (lo, hi).
func (g *Generator) opposedTxn(name string, i int) Txn {
	lo, hi := g.opposedPair()
	first, second := lo, hi
	if i%2 == 1 {
		first, second = hi, lo
	}
	return Txn{
		Name: name,
		Ops: []txn.Op{
			{Site: g.SiteFor(first), Key: first, Value: "0", IsWrite: true},
			{Site: g.SiteFor(second), Key: second, Value: "0", IsWrite: true},
		},
	}
}

func (g *Generator) pick() int { return g.rng.Intn(g.cfg.Accounts) }

func (g *Generator) zipfReadTxn(name string) Txn {
	key := Account(g.zipf.Next())
	return Txn{Name: name, Ops: []txn.Op{{Site: g.SiteFor(key), Key: key}}}
}

// incTransferTxn moves a small amount between two zipfian-chosen
// accounts as a pair of increments (−d on the source, +d on the
// destination). Unlike the absolute-write transfer it needs no mirror
// ledger and conserves the total under every interleaving — increments
// commute, which is exactly the property IncMode's Safeincinc proof
// licenses the lock manager to exploit.
func (g *Generator) incTransferTxn(name string) Txn {
	a := g.zipf.Next()
	b := g.zipf.Next()
	if a == b {
		b = (a + 1) % g.cfg.Accounts
	}
	d := 1 + g.rng.Intn(9)
	ka, kb := Account(a), Account(b)
	return Txn{
		Name:       name,
		IsTransfer: true,
		Ops: []txn.Op{
			{Site: g.SiteFor(ka), Key: ka, Value: fmt.Sprintf("-%d", d), Class: txn.ClassInc},
			{Site: g.SiteFor(kb), Key: kb, Value: fmt.Sprintf("%d", d), Class: txn.ClassInc},
		},
	}
}

// blindWriteTxn overwrites two zipfian-chosen accounts without reading
// them first (an audit-style reset). Callers fill in concrete values; the
// zero value resets the balance.
func (g *Generator) blindWriteTxn(name string) Txn {
	a := g.zipf.Next()
	b := g.zipf.Next()
	if a == b {
		b = (a + 1) % g.cfg.Accounts
	}
	ka, kb := Account(a), Account(b)
	return Txn{
		Name: name,
		Ops: []txn.Op{
			{Site: g.SiteFor(ka), Key: ka, Value: "0", IsWrite: true},
			{Site: g.SiteFor(kb), Key: kb, Value: "0", IsWrite: true},
		},
	}
}

func (g *Generator) readTxn(name string) Txn {
	key := Account(g.pick())
	return Txn{Name: name, Ops: []txn.Op{{Site: g.SiteFor(key), Key: key}}}
}

// transferTxn moves a fixed amount from account a to account b. The
// amounts are encoded in the write values by the *applier* — the workload
// layer cannot know balances in advance, so the benchmark harness applies
// transfers against a mirror ledger and emits concrete values. For
// simplicity in this simulated setting, transfers write precomputed
// balances from a deterministic mirror maintained by Apply.
func (g *Generator) transferTxn(name string, a, b int) Txn {
	if a == b {
		b = (a + 1) % g.cfg.Accounts
	}
	ka, kb := Account(a), Account(b)
	return Txn{
		Name:       name,
		IsTransfer: true,
		Ops: []txn.Op{
			{Site: g.SiteFor(ka), Key: ka},
			{Site: g.SiteFor(kb), Key: kb},
			{Site: g.SiteFor(ka), Key: ka, IsWrite: true},
			{Site: g.SiteFor(kb), Key: kb, IsWrite: true},
		},
	}
}

// Ledger mirrors account balances so sequentially-applied transfers can
// fill in concrete write values.
type Ledger struct {
	balances map[string]int
}

// NewLedger seeds a mirror ledger.
func NewLedger(g *Generator) *Ledger {
	l := &Ledger{balances: map[string]int{}}
	for _, k := range g.AccountKeys() {
		l.balances[k] = g.cfg.InitialBalance
	}
	return l
}

// Fill assigns concrete transfer values: move `amount` from the first
// written account to the second. It returns ops ready for submission and
// an undo function that reverts the mirror if the cluster aborts the
// transaction (keeping mirror and committed state consistent).
func (l *Ledger) Fill(t Txn, amount int) (ops []txn.Op, undo func()) {
	var writes []int
	for i, op := range t.Ops {
		if op.IsWrite {
			writes = append(writes, i)
		}
	}
	if len(writes) != 2 {
		return t.Ops, func() {}
	}
	src := t.Ops[writes[0]].Key
	dst := t.Ops[writes[1]].Key
	oldSrc, oldDst := l.balances[src], l.balances[dst]
	if l.balances[src] < amount {
		amount = l.balances[src]
	}
	l.balances[src] -= amount
	l.balances[dst] += amount
	ops = append([]txn.Op{}, t.Ops...)
	ops[writes[0]].Value = fmt.Sprintf("%d", l.balances[src])
	ops[writes[1]].Value = fmt.Sprintf("%d", l.balances[dst])
	return ops, func() {
		l.balances[src] = oldSrc
		l.balances[dst] = oldDst
	}
}

// Balance reports the mirror balance of a key.
func (l *Ledger) Balance(key string) int { return l.balances[key] }

// Total sums the mirror ledger.
func (l *Ledger) Total() int {
	t := 0
	for _, v := range l.balances {
		t += v
	}
	return t
}

func atoi(s string) int {
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int(ch-'0')
	}
	return n
}
