package workload

import (
	"fmt"
	"testing"

	"speccat/internal/simnet"
	"speccat/internal/tpc"
	"speccat/internal/txn"
)

// place is a trivial stub placement for generator-only tests.
func place(string) simnet.NodeID { return 2 }

func TestGenerateDeterministic(t *testing.T) {
	mk := func() []Txn {
		g := New(Config{Kind: Transfers, Accounts: 8, Transactions: 20, Seed: 9}, place)
		return g.Generate()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("generation nondeterministic at %d", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatalf("op mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	for _, kind := range []Kind{Transfers, ReadMostly, Hotspot} {
		g := New(Config{Kind: kind, Accounts: 10, Transactions: 100, Seed: 1}, place)
		txns := g.Generate()
		if len(txns) != 100 {
			t.Fatalf("%s: generated %d", kind, len(txns))
		}
		transfers := 0
		for _, x := range txns {
			if x.IsTransfer {
				transfers++
				if len(x.Ops) != 4 {
					t.Fatalf("%s: transfer with %d ops", kind, len(x.Ops))
				}
			}
		}
		switch kind {
		case Transfers, Hotspot:
			if transfers != 100 {
				t.Fatalf("%s: transfers = %d", kind, transfers)
			}
		case ReadMostly:
			if transfers == 0 || transfers > 40 {
				t.Fatalf("read-mostly: transfers = %d", transfers)
			}
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	g := New(Config{Kind: Hotspot, Accounts: 16, Transactions: 200, Seed: 3}, place)
	hot := 0
	for _, x := range g.Generate() {
		for _, op := range x.Ops {
			if op.Key == Account(0) {
				hot++
				break
			}
		}
	}
	if hot < 60 {
		t.Fatalf("hotspot touches hot account in only %d/200 txns", hot)
	}
}

func TestLedgerFillAndUndo(t *testing.T) {
	g := New(Config{Kind: Transfers, Accounts: 4, InitialBalance: 100, Transactions: 1, Seed: 5}, place)
	l := NewLedger(g)
	tx := g.Generate()[0]
	ops, undo := l.Fill(tx, 30)
	if l.Total() != g.Total() {
		t.Fatalf("fill broke conservation: %d", l.Total())
	}
	// Two write values present.
	writes := 0
	for _, op := range ops {
		if op.IsWrite && op.Value != "" {
			writes++
		}
	}
	if writes != 2 {
		t.Fatalf("writes filled = %d", writes)
	}
	undo()
	for _, k := range g.AccountKeys() {
		if l.Balance(k) != 100 {
			t.Fatalf("undo failed for %s: %d", k, l.Balance(k))
		}
	}
}

func TestLedgerCapsAtBalance(t *testing.T) {
	g := New(Config{Kind: Transfers, Accounts: 2, InitialBalance: 5, Transactions: 1, Seed: 7}, place)
	l := NewLedger(g)
	tx := g.Generate()[0]
	_, _ = l.Fill(tx, 1000) // cannot overdraw
	for _, k := range g.AccountKeys() {
		if l.Balance(k) < 0 {
			t.Fatalf("negative balance for %s", k)
		}
	}
	if l.Total() != g.Total() {
		t.Fatalf("conservation broken: %d", l.Total())
	}
}

// TestBankConservationEndToEnd runs the generated workload through the
// real cluster: committed state conserves the total and matches the
// mirror ledger (the Fig. 3.1 execution model end to end).
func TestBankConservationEndToEnd(t *testing.T) {
	c, err := txn.NewCluster(4, 3, tpc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := New(Config{Kind: Transfers, Accounts: 8, InitialBalance: 100, Transactions: 30, Seed: 4}, c.SiteFor)

	run := func(name string, ops []txn.Op) tpc.Decision {
		var got *txn.Result
		if err := c.Master.Submit(name, ops, func(r *txn.Result) { got = r }); err != nil {
			t.Fatal(err)
		}
		c.Run()
		if got == nil {
			t.Fatalf("transaction %s never completed", name)
		}
		return got.Decision
	}

	if run("setup", g.SetupOps()) != tpc.DecisionCommit {
		t.Fatal("setup aborted")
	}
	ledger := NewLedger(g)
	committed := 0
	for _, wtxn := range g.Generate() {
		if !wtxn.IsTransfer {
			continue
		}
		ops, undo := ledger.Fill(wtxn, 10)
		if run(wtxn.Name, ops) == tpc.DecisionCommit {
			committed++
		} else {
			undo()
		}
	}
	if committed == 0 {
		t.Fatal("no transfer committed")
	}
	if got := c.TotalOf(g.AccountKeys()); got != g.Total() {
		t.Fatalf("total = %d, want %d", got, g.Total())
	}
	for _, key := range g.AccountKeys() {
		got := c.Sites[c.SiteFor(key)].Store.Read(key)
		want := fmt.Sprintf("%d", ledger.Balance(key))
		if got != want {
			t.Fatalf("account %s = %q, mirror %q", key, got, want)
		}
	}
}
