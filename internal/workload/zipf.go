// The zipfian key chooser: skewed access is what makes
// commutativity-derived lock modes pay off, because a hot key under
// exclusive write locks serializes the whole mix while the same key
// under increment locks admits every concurrent increment.

package workload

import (
	"math"
	"sort"

	"speccat/internal/rt"
)

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta, from a precomputed CDF by binary search. theta = 0
// degenerates to uniform; larger theta concentrates mass on low ranks.
// Determinism comes from the rt.Rand source, so a whole run replays from
// one seed.
type Zipf struct {
	rng rt.Rand
	cdf []float64
}

// NewZipf builds a chooser over n ranks with skew theta.
func NewZipf(rng rt.Rand, n int, theta float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
