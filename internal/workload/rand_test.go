package workload

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestInjectedRandReproducible: generation from an injected *rand.Rand is
// a pure function of that source's seed, and matches Seed-based
// construction with the same seed — the property the fault explorer
// relies on to replay a whole run (network, faults, workload) from one
// root seed.
func TestInjectedRandReproducible(t *testing.T) {
	mk := func(cfg Config) []Txn {
		return New(cfg, place).Generate()
	}
	base := Config{Kind: Transfers, Accounts: 8, Transactions: 20}

	withRand := base
	withRand.Rand = rand.New(rand.NewSource(99))
	a := mk(withRand)
	withRand.Rand = rand.New(rand.NewSource(99))
	b := mk(withRand)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same injected source seed produced different workloads")
	}

	withSeed := base
	withSeed.Seed = 99
	c := mk(withSeed)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("injected rand.NewSource(99) and Seed:99 diverged")
	}
}

// TestInjectedRandOverridesSeed: when both are set, the injected source
// wins, so a composed root source can't be accidentally reseeded.
func TestInjectedRandOverridesSeed(t *testing.T) {
	mk := func(seed int64) []Txn {
		cfg := Config{
			Kind: Transfers, Accounts: 8, Transactions: 20,
			Seed: seed,
			Rand: rand.New(rand.NewSource(7)),
		}
		return New(cfg, place).Generate()
	}
	if !reflect.DeepEqual(mk(1), mk(2)) {
		t.Fatal("Seed influenced generation despite an injected Rand")
	}
}

// TestSharedRootSourceAdvances: drawing two generators from one shared
// source yields different (but jointly reproducible) workloads — the
// composition pattern the explorer uses.
func TestSharedRootSourceAdvances(t *testing.T) {
	mkPair := func() ([]Txn, []Txn) {
		root := rand.New(rand.NewSource(5))
		cfg := Config{Kind: Transfers, Accounts: 8, Transactions: 10, Rand: root}
		a := New(cfg, place).Generate()
		b := New(cfg, place).Generate()
		return a, b
	}
	a1, b1 := mkPair()
	a2, b2 := mkPair()
	if reflect.DeepEqual(a1, b1) {
		t.Fatal("second draw from the shared source repeated the first")
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("shared-source composition not reproducible")
	}
}
