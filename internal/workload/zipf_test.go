package workload

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"speccat/internal/simnet"
	"speccat/internal/txn"
)

// TestZipfShape pins the distribution: with theta around the classic
// benchmark skew, rank 0 dominates; rank frequencies are monotonically
// non-increasing in aggregate (hot ranks beat cold ranks by a wide
// margin); and theta = 0 degenerates to roughly uniform.
func TestZipfShape(t *testing.T) {
	const n, draws = 16, 20000
	counts := func(theta float64) []int {
		z := NewZipf(rand.New(rand.NewSource(7)), n, theta)
		out := make([]int, n)
		for i := 0; i < draws; i++ {
			out[z.Next()]++
		}
		return out
	}

	skewed := counts(0.99)
	if skewed[0] < draws/5 {
		t.Errorf("rank 0 drew %d of %d with theta=0.99; too flat", skewed[0], draws)
	}
	hot := skewed[0] + skewed[1] + skewed[2] + skewed[3]
	cold := skewed[n-4] + skewed[n-3] + skewed[n-2] + skewed[n-1]
	if hot < 3*cold {
		t.Errorf("hot 4 ranks drew %d vs cold 4 ranks %d; want strong skew", hot, cold)
	}

	uniform := counts(0)
	for r, c := range uniform {
		if c < draws/n/2 || c > draws/n*2 {
			t.Errorf("theta=0 rank %d drew %d, want near %d (uniform)", r, c, draws/n)
		}
	}
}

// TestZipfDeterministic pins replay: one seed, one sequence.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(3)), 32, 0.9)
	b := NewZipf(rand.New(rand.NewSource(3)), 32, 0.9)
	for i := 0; i < 200; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d vs %d", i, x, y)
		}
	}
}

// TestCommutativeMixShape pins the generated mix: increment-transfers
// carry paired ±delta ClassInc ops (conserving the total by
// construction), the read fraction is respected, and the skew shows up
// as repeated hot accounts.
func TestCommutativeMixShape(t *testing.T) {
	g := New(Config{
		Kind: Commutative, Accounts: 8, Transactions: 400, Seed: 5,
		ZipfTheta: 0.9, ReadFraction: 0.25,
	}, func(string) simnet.NodeID { return 2 })
	txns := g.Generate()
	if len(txns) != 400 {
		t.Fatalf("generated %d txns", len(txns))
	}
	reads, incs := 0, 0
	keyHits := map[string]int{}
	for _, tx := range txns {
		if !tx.IsTransfer {
			reads++
			if len(tx.Ops) != 1 || tx.Ops[0].Mutates() {
				t.Fatalf("read txn %s has ops %+v", tx.Name, tx.Ops)
			}
			continue
		}
		incs++
		if len(tx.Ops) != 2 {
			t.Fatalf("transfer %s has %d ops", tx.Name, len(tx.Ops))
		}
		var sum int
		for _, op := range tx.Ops {
			if op.Class != txn.ClassInc {
				t.Fatalf("transfer %s op class %q", tx.Name, op.Class)
			}
			d, err := strconv.Atoi(op.Value)
			if err != nil {
				t.Fatalf("transfer %s delta %q: %v", tx.Name, op.Value, err)
			}
			sum += d
			keyHits[op.Key]++
		}
		if sum != 0 {
			t.Fatalf("transfer %s deltas do not conserve: %+v", tx.Name, tx.Ops)
		}
		if tx.Ops[0].Key == tx.Ops[1].Key {
			t.Fatalf("transfer %s moves within one account", tx.Name)
		}
		if !strings.HasPrefix(tx.Ops[0].Value, "-") {
			t.Fatalf("transfer %s source delta %q not negative", tx.Name, tx.Ops[0].Value)
		}
	}
	if reads < 50 || reads > 150 {
		t.Errorf("reads = %d of 400, want near the 25%% fraction", reads)
	}
	if hot := keyHits[Account(0)]; hot < 2*keyHits[Account(7)] {
		t.Errorf("hot account hit %d vs cold %d; zipf skew missing", hot, keyHits[Account(7)])
	}
}

// TestCommutativeMixDeterministic pins seed replay at the mix level.
func TestCommutativeMixDeterministic(t *testing.T) {
	gen := func() []Txn {
		g := New(Config{Kind: Commutative, Accounts: 8, Transactions: 50, Seed: 9, ZipfTheta: 0.9},
			func(string) simnet.NodeID { return 2 })
		return g.Generate()
	}
	a, b := gen(), gen()
	for i := range a {
		if len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("txn %d op counts differ", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatalf("txn %d op %d: %+v vs %+v", i, j, a[i].Ops[j], b[i].Ops[j])
			}
		}
	}
}
