package mc

import (
	"strings"
	"testing"
)

// explore is a helper running the standard invariant set.
func explore(t *testing.T, v Variant, n, f int, opts ModelOptions) *Result {
	t.Helper()
	sys := NewCommitModel(v, n, f, opts)
	res, err := Explore(sys, []Invariant{
		InvariantAtomicity(n),
		InvariantNoCommitWithUncommittable(n),
	}, Options{TerminalOK: TerminalAllDecided(n)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The paper's claim, mechanized: under its assumption set (synchronous
// state transition = lockstep, independent recovery allowed), 3PC with the
// termination protocol is atomic and non-blocking for a single failure.
func TestThreePCLockstepSafeAndNonBlocking(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		res := explore(t, Model3PC, n, 1, ModelOptions{Lockstep: true, AllowRecovery: true})
		if len(res.Violations) != 0 {
			t.Fatalf("n=%d: violations: %v", n, res.Violations)
		}
		if len(res.Deadlocks) != 0 {
			t.Fatalf("n=%d: blocking terminal states: %v", n, res.Deadlocks)
		}
		if res.States < 10 {
			t.Fatalf("n=%d: suspiciously small state space: %d", n, res.States)
		}
	}
}

// The naive Fig. 3.2 timeout transitions alone are unsafe once a crash can
// land between two prepare sends: one cohort commits by p2-timeout while
// another aborts by w2-timeout.
func TestNaiveTimeoutsUnsafeInterleaved(t *testing.T) {
	res := explore(t, Model3PCNaive, 2, 1, ModelOptions{Lockstep: false, AllowRecovery: false})
	if _, found := res.Violations["atomicity"]; !found {
		t.Fatal("expected an atomicity violation for naive timeouts with interleaved sends")
	}
}

// Under the paper's lockstep assumption even the naive transitions are
// safe — assumption 3 is load-bearing.
func TestNaiveTimeoutsSafeLockstep(t *testing.T) {
	res := explore(t, Model3PCNaive, 2, 1, ModelOptions{Lockstep: true, AllowRecovery: true})
	if len(res.Violations) != 0 {
		t.Fatalf("violations under lockstep: %v", res.Violations)
	}
}

// Independent recovery (assumption 8) also depends on lockstep: with
// message-granularity interleaving, a coordinator that logged p1 before
// finishing its prepare fan-out recovers to commit while the termination
// protocol may already have aborted.
func TestIndependentRecoveryNeedsLockstep(t *testing.T) {
	res := explore(t, Model3PC, 2, 1, ModelOptions{Lockstep: false, AllowRecovery: true})
	if _, found := res.Violations["atomicity"]; !found {
		t.Fatal("expected atomicity violation: independent recovery without lockstep")
	}
	// Without recovery, the interleaved model is still safe (termination
	// decides consistently among operational sites).
	res = explore(t, Model3PC, 2, 1, ModelOptions{Lockstep: false, AllowRecovery: false})
	if len(res.Violations) != 0 {
		t.Fatalf("violations without recovery: %v", res.Violations)
	}
}

// 2PC is safe but blocking: a reachable terminal state leaves an
// operational, uncertain cohort with no enabled transition.
func TestTwoPCSafeButBlocking(t *testing.T) {
	res := explore(t, Model2PC, 2, 1, ModelOptions{Lockstep: true, AllowRecovery: false})
	if _, found := res.Violations["atomicity"]; found {
		t.Fatalf("2PC atomicity violation: %v", res.Violations)
	}
	if len(res.Deadlocks) == 0 {
		t.Fatal("expected blocking terminal states for 2PC")
	}
	// The witness must contain an operational cohort stuck in w.
	foundStuck := false
	for _, d := range res.Deadlocks {
		if strings.Contains(d, "w.") {
			foundStuck = true
		}
	}
	if !foundStuck {
		t.Fatalf("deadlock witnesses lack an uncertain cohort: %v", res.Deadlocks)
	}
}

// 3PC has no blocking states even without recovery: the termination
// protocol always lets operational sites decide.
func TestThreePCNoBlockingWithoutRecovery(t *testing.T) {
	res := explore(t, Model3PC, 2, 1, ModelOptions{Lockstep: true, AllowRecovery: false})
	if len(res.Deadlocks) != 0 {
		t.Fatalf("3PC blocking states: %v", res.Deadlocks)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("3PC violations: %v", res.Violations)
	}
}

// With a crash budget beyond the protocol's tolerance (f=2 failures with
// naive/termination races), the strict rule-2 invariant is expected to
// have counterexamples; this guards against the checker trivially passing
// everything.
func TestCheckerFindsViolationsBeyondTolerance(t *testing.T) {
	res := explore(t, Model3PCNaive, 2, 2, ModelOptions{Lockstep: false, AllowRecovery: true})
	if len(res.Violations) == 0 {
		t.Fatal("checker found nothing beyond the fault tolerance — suspicious")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &model{variant: Model3PC, n: 3, f: 1}
	s := m.initial()
	s.cohort[1] = stP
	s.down[2] = true
	s.votedNo[0] = true
	s.prep[1] = chConsumed
	s.crashes = 1
	dec := decode(s.encode(), 3)
	if dec.encode() != s.encode() {
		t.Fatalf("round trip: %s vs %s", dec.encode(), s.encode())
	}
	if dec.cohort[1] != stP || !dec.down[2] || !dec.votedNo[0] || dec.crashes != 1 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestStateSpaceDeterministic(t *testing.T) {
	a := explore(t, Model3PC, 2, 1, ModelOptions{Lockstep: true, AllowRecovery: true})
	b := explore(t, Model3PC, 2, 1, ModelOptions{Lockstep: true, AllowRecovery: true})
	if a.States != b.States || a.Transitions != b.Transitions {
		t.Fatalf("nondeterministic exploration: %+v vs %+v", a, b)
	}
}

func TestNoFailuresCommitReachable(t *testing.T) {
	// Sanity: with f=0 and all-yes paths the protocol must be able to
	// commit — check that a state with everyone committed is reachable.
	sys := NewCommitModel(Model3PC, 2, 0, ModelOptions{Lockstep: true})
	committed := Invariant{
		Name: "not-yet-committed",
		Holds: func(enc string) bool {
			s := decode(enc, 2)
			return !(s.coord == stC && s.cohort[0] == stC && s.cohort[1] == stC)
		},
	}
	res, err := Explore(sys, []Invariant{committed}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, found := res.Violations["not-yet-committed"]; !found {
		t.Fatal("all-committed state unreachable — protocol cannot commit")
	}
}

func TestVariantStrings(t *testing.T) {
	if Model3PC.String() != "3PC" || Model2PC.String() != "2PC" || Model3PCNaive.String() != "3PC-naive" {
		t.Fatal("variant strings wrong")
	}
}
