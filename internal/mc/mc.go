// Package mc is an explicit-state model checker used to mechanize the
// paper's non-blocking theorem (Section 3.3): it enumerates every
// reachable global state of an abstract commit-protocol model — coordinator
// and cohort FSM states, per-cohort channel contents, crash budget — and
// checks safety invariants over the whole space.
//
// Unlike the executable engine in internal/tpc (where a site's fan-out of
// messages is a single atomic event), the abstract model lets the
// coordinator crash *between* individual sends. That finer interleaving is
// exactly what distinguishes the three protocol variants:
//
//   - 3PC with the termination protocol: atomic and non-blocking under a
//     single failure (the paper's claim);
//   - 3PC with naive Fig. 3.2 timeout transitions only: an atomicity
//     violation is reachable (one cohort commits by p2-timeout while
//     another aborts by w2-timeout after a mid-prepare coordinator crash);
//   - 2PC: atomic, but a blocking state is reachable (an operational,
//     uncertain cohort with a dead coordinator and no enabled transition).
package mc

import (
	"fmt"
	"sort"
	"strings"
)

// System is a transition system over opaque encoded states.
type System interface {
	// Initial returns the initial states.
	Initial() []string
	// Next returns all successor states of s.
	Next(s string) []string
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct reachable states.
	States int
	// Transitions is the number of explored edges.
	Transitions int
	// Violations maps invariant name to one witness state (first found).
	Violations map[string]string
	// Deadlocks lists terminal states failing the terminal predicate.
	Deadlocks []string
}

// Invariant is a named predicate that must hold in every reachable state.
type Invariant struct {
	Name  string
	Holds func(s string) bool
}

// Options bounds the exploration.
type Options struct {
	// MaxStates aborts exploration beyond this many states (0 = 1<<22).
	MaxStates int
	// TerminalOK, when non-nil, classifies acceptable terminal states;
	// terminal states failing it are reported as deadlocks.
	TerminalOK func(s string) bool
}

// Explore runs a BFS over the reachable state space checking invariants.
func Explore(sys System, invs []Invariant, opts Options) (*Result, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 22
	}
	res := &Result{Violations: map[string]string{}}
	seen := map[string]bool{}
	var queue []string
	for _, s := range sys.Initial() {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > maxStates {
			return nil, fmt.Errorf("mc: state space exceeds %d states", maxStates)
		}
		for _, inv := range invs {
			if _, found := res.Violations[inv.Name]; found {
				continue
			}
			if !inv.Holds(s) {
				res.Violations[inv.Name] = s
			}
		}
		succs := sys.Next(s)
		res.Transitions += len(succs)
		if len(succs) == 0 && opts.TerminalOK != nil && !opts.TerminalOK(s) {
			res.Deadlocks = append(res.Deadlocks, s)
		}
		for _, n := range succs {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return res, nil
}

// --- commit-protocol model ---

// Variant selects which protocol the model encodes.
type Variant int

// Variants.
const (
	Model3PC      Variant = iota + 1 // termination protocol on coordinator failure
	Model3PCNaive                    // bare Fig. 3.2 timeout transitions
	Model2PC                         // two-phase commit baseline
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Model3PC:
		return "3PC"
	case Model3PCNaive:
		return "3PC-naive"
	case Model2PC:
		return "2PC"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// site states in the abstract model.
const (
	stQ = 'q'
	stW = 'w'
	stP = 'p'
	stA = 'a'
	stC = 'c'
)

// channel message status.
const (
	chNone     = '0' // not sent
	chSent     = '1' // in channel
	chConsumed = '2' // delivered
)

// ModelOptions tune the abstract model's fidelity to the paper's
// assumption set.
type ModelOptions struct {
	// Lockstep models the paper's assumption 3 (synchronous state
	// transition): a site's message fan-out is one atomic step, so a
	// crash can never land between two sends of the same round. With
	// Lockstep off, sends interleave with crashes at message granularity.
	Lockstep bool
	// AllowRecovery adds recovery transitions applying the Fig. 3.2
	// failure transitions (assumption 8, independent recovery).
	AllowRecovery bool
}

// model is the abstract commit-protocol transition system.
type model struct {
	variant Variant
	n       int // cohorts
	f       int // crash budget
	opts    ModelOptions
}

// state is the decoded global state.
type state struct {
	coord     byte // q,w,p,a,c
	coordDown bool
	cohort    []byte // q,w,p,a,c
	down      []bool
	votedNo   []bool
	// channels, per cohort: commit-request, prepare, commit, abort
	creq, prep, comm, abrt []byte
	crashes                int
}

// NewCommitModel builds the abstract model with n cohorts and a crash
// budget of f sites.
func NewCommitModel(variant Variant, n, f int, opts ModelOptions) System {
	return &model{variant: variant, n: n, f: f, opts: opts}
}

func (m *model) initial() state {
	s := state{
		coord:   stQ,
		cohort:  bytesOf(stQ, m.n),
		down:    make([]bool, m.n),
		votedNo: make([]bool, m.n),
		creq:    bytesOf(chNone, m.n),
		prep:    bytesOf(chNone, m.n),
		comm:    bytesOf(chNone, m.n),
		abrt:    bytesOf(chNone, m.n),
	}
	return s
}

func bytesOf(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Encode renders a state canonically.
func (s state) encode() string {
	var b strings.Builder
	b.WriteByte(s.coord)
	if s.coordDown {
		b.WriteByte('!')
	} else {
		b.WriteByte('.')
	}
	for i := range s.cohort {
		b.WriteByte(s.cohort[i])
		if s.down[i] {
			b.WriteByte('!')
		} else {
			b.WriteByte('.')
		}
		if s.votedNo[i] {
			b.WriteByte('n')
		} else {
			b.WriteByte('-')
		}
		b.WriteByte(s.creq[i])
		b.WriteByte(s.prep[i])
		b.WriteByte(s.comm[i])
		b.WriteByte(s.abrt[i])
	}
	b.WriteByte('0' + byte(s.crashes))
	return b.String()
}

// decode parses an encoded state (n cohorts).
func decode(enc string, n int) state {
	s := state{
		cohort: make([]byte, n), down: make([]bool, n), votedNo: make([]bool, n),
		creq: make([]byte, n), prep: make([]byte, n), comm: make([]byte, n), abrt: make([]byte, n),
	}
	s.coord = enc[0]
	s.coordDown = enc[1] == '!'
	pos := 2
	for i := 0; i < n; i++ {
		s.cohort[i] = enc[pos]
		s.down[i] = enc[pos+1] == '!'
		s.votedNo[i] = enc[pos+2] == 'n'
		s.creq[i] = enc[pos+3]
		s.prep[i] = enc[pos+4]
		s.comm[i] = enc[pos+5]
		s.abrt[i] = enc[pos+6]
		pos += 7
	}
	s.crashes = int(enc[pos] - '0')
	return s
}

func (s state) clone() state {
	c := s
	c.cohort = append([]byte{}, s.cohort...)
	c.down = append([]bool{}, s.down...)
	c.votedNo = append([]bool{}, s.votedNo...)
	c.creq = append([]byte{}, s.creq...)
	c.prep = append([]byte{}, s.prep...)
	c.comm = append([]byte{}, s.comm...)
	c.abrt = append([]byte{}, s.abrt...)
	return c
}

// Initial implements System.
func (m *model) Initial() []string { return []string{m.initial().encode()} }

// Next implements System.
func (m *model) Next(enc string) []string {
	s := decode(enc, m.n)
	var out []string
	add := func(n state) { out = append(out, n.encode()) }

	m.coordinatorMoves(s, add)
	m.cohortMoves(s, add)
	m.failureMoves(s, add)

	// Deduplicate successor encodings for a stable transition count.
	sort.Strings(out)
	dedup := out[:0]
	for i, x := range out {
		if i == 0 || out[i-1] != x {
			dedup = append(dedup, x)
		}
	}
	return dedup
}

// coordinatorMoves emits the coordinator's enabled transitions.
func (m *model) coordinatorMoves(s state, add func(state)) {
	if s.coordDown {
		return
	}
	switch s.coord {
	case stQ:
		if m.opts.Lockstep {
			n := s.clone()
			for i := 0; i < m.n; i++ {
				n.creq[i] = chSent
			}
			n.coord = stW
			add(n)
			return
		}
		// Send commit requests one at a time; after the last, enter w1.
		for i := 0; i < m.n; i++ {
			if s.creq[i] == chNone {
				n := s.clone()
				n.creq[i] = chSent
				if allSent(n.creq) {
					n.coord = stW
				}
				add(n)
				return // sends are ordered: lowest pending cohort first
			}
		}
	case stW:
		// Abort on any no-vote.
		for i := 0; i < m.n; i++ {
			if s.votedNo[i] {
				m.coordAbortStart(s, add)
				break
			}
		}
		// All yes (cohorts in w2 or beyond): start prepare fan-out (3PC)
		// or commit directly (2PC). In lockstep the state change and the
		// fan-out are one atomic step (assumption 3).
		if allVotedYes(s) {
			if m.variant == Model2PC {
				n := s.clone()
				n.coord = stC
				if m.opts.Lockstep {
					markAll(n.comm)
				}
				add(n)
			} else {
				n := s.clone()
				n.coord = stP
				if m.opts.Lockstep {
					markAll(n.prep)
				}
				add(n)
			}
		}
		// Timeout: some cohort will never vote yes — it is down before
		// voting, or it aborted unilaterally (crash recovery) without a
		// no-vote reaching us.
		for i := 0; i < m.n; i++ {
			if (s.down[i] && s.cohort[i] == stQ) || (s.cohort[i] == stA && !s.votedNo[i]) {
				m.coordAbortStart(s, add)
				break
			}
		}
	case stP: // 3PC only: prepare fan-out then wait for acks
		if !m.opts.Lockstep {
			for i := 0; i < m.n; i++ {
				if s.prep[i] == chNone {
					n := s.clone()
					n.prep[i] = chSent
					add(n)
					return
				}
			}
		}
		// All acks = all cohorts prepared (or beyond).
		allAcked := true
		for i := 0; i < m.n; i++ {
			if s.cohort[i] != stP && s.cohort[i] != stC {
				allAcked = false
			}
		}
		if allAcked {
			n := s.clone()
			n.coord = stC
			if m.opts.Lockstep {
				markAll(n.comm)
			}
			add(n)
		}
		// Timeout: a cohort died (or recovered into abort) before acking —
		// abort (Fig. 3.2 p1 timeout transition).
		for i := 0; i < m.n; i++ {
			if (s.down[i] || s.cohort[i] == stA) && s.cohort[i] != stP && s.cohort[i] != stC {
				m.coordAbortStart(s, add)
				break
			}
		}
	case stC:
		if m.opts.Lockstep {
			if !allSent(s.comm) {
				n := s.clone()
				for i := 0; i < m.n; i++ {
					n.comm[i] = chSent
				}
				add(n)
			}
			return
		}
		// Commit fan-out, one message at a time.
		for i := 0; i < m.n; i++ {
			if s.comm[i] == chNone {
				n := s.clone()
				n.comm[i] = chSent
				add(n)
				return
			}
		}
	case stA:
		if m.opts.Lockstep {
			pending := false
			n := s.clone()
			for i := 0; i < m.n; i++ {
				if s.abrt[i] == chNone && s.cohort[i] != stA && s.cohort[i] != stC {
					n.abrt[i] = chSent
					pending = true
				}
			}
			if pending {
				add(n)
			}
			return
		}
		// Abort fan-out.
		for i := 0; i < m.n; i++ {
			if s.abrt[i] == chNone && s.cohort[i] != stA && s.cohort[i] != stC {
				n := s.clone()
				n.abrt[i] = chSent
				add(n)
				return
			}
		}
	}
}

func (m *model) coordAbortStart(s state, add func(state)) {
	n := s.clone()
	n.coord = stA
	if m.opts.Lockstep {
		for i := 0; i < m.n; i++ {
			if n.cohort[i] != stA && n.cohort[i] != stC {
				n.abrt[i] = chSent
			}
		}
	}
	add(n)
}

// markAll marks every unsent channel entry as sent.
func markAll(ch []byte) {
	for i := range ch {
		if ch[i] == chNone {
			ch[i] = chSent
		}
	}
}

func allSent(ch []byte) bool {
	for _, c := range ch {
		if c == chNone {
			return false
		}
	}
	return true
}

func allVotedYes(s state) bool {
	for i := range s.cohort {
		if s.votedNo[i] {
			return false
		}
		// A cohort has voted yes once it left q2 upward (w, p, c).
		if s.cohort[i] != stW && s.cohort[i] != stP && s.cohort[i] != stC {
			return false
		}
	}
	return true
}

// cohortMoves emits each cohort's enabled transitions.
func (m *model) cohortMoves(s state, add func(state)) {
	for i := 0; i < m.n; i++ {
		if s.down[i] {
			continue
		}
		switch s.cohort[i] {
		case stQ:
			if s.creq[i] == chSent {
				// Vote yes…
				n := s.clone()
				n.creq[i] = chConsumed
				n.cohort[i] = stW
				add(n)
				// …or vote no.
				n2 := s.clone()
				n2.creq[i] = chConsumed
				n2.cohort[i] = stA
				n2.votedNo[i] = true
				add(n2)
			}
			if s.abrt[i] == chSent {
				n := s.clone()
				n.abrt[i] = chConsumed
				n.cohort[i] = stA
				add(n)
			}
			// q2 timeout: never received the request and the coordinator
			// is dead — unilateral abort.
			if s.coordDown && s.creq[i] == chNone {
				n := s.clone()
				n.cohort[i] = stA
				add(n)
			}
		case stW:
			if s.prep[i] == chSent {
				n := s.clone()
				n.prep[i] = chConsumed
				n.cohort[i] = stP
				add(n)
			}
			if s.abrt[i] == chSent {
				n := s.clone()
				n.abrt[i] = chConsumed
				n.cohort[i] = stA
				add(n)
			}
			// w2 timeout: the coordinator is dead and no prepare can ever
			// arrive (synchrony: in-flight messages are chSent).
			if s.coordDown && s.prep[i] == chNone {
				m.cohortTimeout(s, i, false, add)
			}
		case stP:
			if s.comm[i] == chSent {
				n := s.clone()
				n.comm[i] = chConsumed
				n.cohort[i] = stC
				add(n)
			}
			if s.abrt[i] == chSent {
				n := s.clone()
				n.abrt[i] = chConsumed
				n.cohort[i] = stA
				add(n)
			}
			// p2 timeout: coordinator dead, no commit in flight.
			if s.coordDown && s.comm[i] == chNone && s.abrt[i] == chNone {
				m.cohortTimeout(s, i, true, add)
			}
		}
	}
}

// cohortTimeout models the site's reaction to a dead coordinator:
// termination protocol (3PC), naive transitions (3PC-naive), or blocking
// (2PC: no transition at all — the blocked state is terminal).
func (m *model) cohortTimeout(s state, i int, prepared bool, add func(state)) {
	switch m.variant {
	case Model2PC:
		// Blocked: uncertain cohort cannot act. No transition.
	case Model3PCNaive:
		n := s.clone()
		if prepared {
			n.cohort[i] = stC
		} else {
			n.cohort[i] = stA
		}
		add(n)
	default:
		// Termination protocol: one atomic step moves every operational
		// undecided cohort to the rule's decision.
		anyCommittable := false
		anyAborted := s.coord == stA && !s.coordDown // a live aborted coordinator would have sent aborts
		for j := 0; j < m.n; j++ {
			if s.down[j] {
				continue
			}
			if s.cohort[j] == stP || s.cohort[j] == stC {
				anyCommittable = true
			}
			if s.cohort[j] == stA {
				anyAborted = true
			}
		}
		decision := byte(stA)
		if anyCommittable && !anyAborted {
			decision = stC
		}
		n := s.clone()
		for j := 0; j < m.n; j++ {
			if !n.down[j] && (n.cohort[j] == stW || n.cohort[j] == stP || n.cohort[j] == stQ) {
				n.cohort[j] = decision
			}
		}
		add(n)
	}
}

// failureMoves emits crash and (optionally) recovery transitions.
func (m *model) failureMoves(s state, add func(state)) {
	if s.crashes < m.f {
		if !s.coordDown {
			n := s.clone()
			n.coordDown = true
			n.crashes++
			add(n)
		}
		for i := 0; i < m.n; i++ {
			if !s.down[i] {
				n := s.clone()
				n.down[i] = true
				n.crashes++
				add(n)
			}
		}
	}
	if !m.opts.AllowRecovery {
		return
	}
	// Recovery applies the failure transitions of Fig. 3.2 from the
	// persisted state.
	if s.coordDown {
		n := s.clone()
		n.coordDown = false
		switch n.coord {
		case stQ, stW:
			n.coord = stA
			if m.opts.Lockstep {
				for i := 0; i < m.n; i++ {
					if n.cohort[i] != stA && n.cohort[i] != stC {
						n.abrt[i] = chSent
					}
				}
			}
		case stP:
			n.coord = stC
			if m.opts.Lockstep {
				markAll(n.comm)
			}
		}
		add(n)
	}
	for i := 0; i < m.n; i++ {
		if s.down[i] {
			n := s.clone()
			n.down[i] = false
			switch n.cohort[i] {
			case stQ, stW:
				n.cohort[i] = stA
			case stP:
				n.cohort[i] = stC
			}
			add(n)
		}
	}
}

// --- invariants over encoded states ---

// InvariantAtomicity: no reachable global state contains both a committed
// and an aborted *yes-voting* site (a no-voting cohort aborts unilaterally
// by design and the coordinator is then bound to abort; the paper's rule 5
// concerns commit/abort co-existence).
func InvariantAtomicity(n int) Invariant {
	return Invariant{
		Name: "atomicity",
		Holds: func(enc string) bool {
			s := decode(enc, n)
			commit := s.coord == stC
			abort := s.coord == stA
			for i := 0; i < n; i++ {
				switch s.cohort[i] {
				case stC:
					commit = true
				case stA:
					if !s.votedNo[i] {
						abort = true
					}
				}
			}
			return !(commit && abort)
		},
	}
}

// InvariantNoCommitWithUncommittable encodes the paper's second
// non-blocking rule: no global state may contain a committed site together
// with an operational site in a non-committable (q/w) state.
func InvariantNoCommitWithUncommittable(n int) Invariant {
	return Invariant{
		Name: "no-commit-with-uncommittable",
		Holds: func(enc string) bool {
			s := decode(enc, n)
			committed := s.coord == stC
			for i := 0; i < n; i++ {
				if s.cohort[i] == stC {
					committed = true
				}
			}
			if !committed {
				return true
			}
			for i := 0; i < n; i++ {
				if !s.down[i] && !s.votedNo[i] && (s.cohort[i] == stQ || s.cohort[i] == stW) {
					// A committed site coexists with an operational,
					// yes-path cohort that is non-committable…
					// permitted only if a decision message is already in
					// flight to it (it will decide without blocking).
					if s.comm[i] == chNone && s.abrt[i] == chNone && s.prep[i] == chNone {
						return false
					}
				}
			}
			return true
		},
	}
}

// TerminalAllDecided accepts terminal states where every operational site
// has decided — the non-blocking liveness condition. 2PC fails it: its
// blocked states are terminal with an undecided operational cohort.
func TerminalAllDecided(n int) func(string) bool {
	return func(enc string) bool {
		s := decode(enc, n)
		if !s.coordDown && s.coord != stA && s.coord != stC {
			return false
		}
		for i := 0; i < n; i++ {
			if !s.down[i] && s.cohort[i] != stA && s.cohort[i] != stC {
				return false
			}
		}
		return true
	}
}
