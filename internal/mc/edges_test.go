package mc

import "testing"

// edgeSet is a lookup helper over an Edges result.
func edgeSet(t *testing.T, v Variant, opts ModelOptions) map[Edge]bool {
	t.Helper()
	edges, err := Edges(v, 2, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	set := map[Edge]bool{}
	for _, e := range edges {
		set[e] = true
	}
	return set
}

// The 3PC model must contain the happy-path edges of Fig. 3.2 for both
// roles, and must not contain transitions the protocol forbids (an aborted
// site can never commit, a committed site never aborts).
func TestEdgesThreePC(t *testing.T) {
	set := edgeSet(t, Model3PC, ModelOptions{AllowRecovery: true})
	want := []Edge{
		{EdgeRoleCoordinator, 'q', 'w'},
		{EdgeRoleCoordinator, 'w', 'p'},
		{EdgeRoleCoordinator, 'w', 'a'},
		{EdgeRoleCoordinator, 'p', 'c'},
		{EdgeRoleCoordinator, 'p', 'a'},
		{EdgeRoleCohort, 'q', 'w'},
		{EdgeRoleCohort, 'q', 'a'},
		{EdgeRoleCohort, 'w', 'p'},
		{EdgeRoleCohort, 'w', 'a'},
		{EdgeRoleCohort, 'w', 'c'}, // termination-protocol commit
		{EdgeRoleCohort, 'p', 'c'},
		{EdgeRoleCohort, 'p', 'a'},
	}
	for _, e := range want {
		if !set[e] {
			t.Errorf("3PC model is missing edge %s", e)
		}
	}
	forbidden := []Edge{
		{EdgeRoleCoordinator, 'a', 'c'},
		{EdgeRoleCoordinator, 'c', 'a'},
		{EdgeRoleCohort, 'a', 'c'},
		{EdgeRoleCohort, 'c', 'a'},
	}
	for _, e := range forbidden {
		if set[e] {
			t.Errorf("3PC model contains forbidden edge %s", e)
		}
	}
}

// 2PC has no prepared phase on the coordinator's commit path: the w->c
// edge exists (direct commit) and w->p does not.
func TestEdgesTwoPC(t *testing.T) {
	set := edgeSet(t, Model2PC, ModelOptions{AllowRecovery: true})
	if !set[Edge{EdgeRoleCoordinator, 'w', 'c'}] {
		t.Error("2PC model is missing the direct coordinator w->c commit edge")
	}
	if set[Edge{EdgeRoleCoordinator, 'w', 'p'}] {
		t.Error("2PC model unexpectedly contains a coordinator prepare edge w->p")
	}
}

// Lockstep and interleaved enumerations agree on the site-local relation
// for 3PC: interleaving refines *when* crashes land, not which per-site
// edges exist.
func TestEdgesLockstepSubset(t *testing.T) {
	interleaved := edgeSet(t, Model3PC, ModelOptions{AllowRecovery: true})
	lockstep := edgeSet(t, Model3PC, ModelOptions{Lockstep: true, AllowRecovery: true})
	for e := range lockstep {
		if !interleaved[e] {
			t.Errorf("lockstep edge %s missing from interleaved relation", e)
		}
	}
}

// The enumeration is deterministic and sorted — it is an API other
// packages diff against, so ordering is part of the contract.
func TestEdgesDeterministic(t *testing.T) {
	a, err := Edges(Model3PC, 2, 1, ModelOptions{AllowRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Edges(Model3PC, 2, 1, ModelOptions{AllowRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic edge count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic edge order at %d: %s vs %s", i, a[i], b[i])
		}
		if i > 0 && !less(a[i-1], a[i]) {
			t.Fatalf("edges not strictly sorted at %d: %s, %s", i, a[i-1], a[i])
		}
	}
}

func less(a, b Edge) bool {
	if a.Role != b.Role {
		return a.Role < b.Role
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
