package mc

import (
	"fmt"
	"sort"
)

// This file exports the abstract commit model's *site-local* transition
// relation as data. Each global step of the model changes the FSM state of
// zero or more sites; projecting those changes per site yields the edge
// set of the coordinator and cohort automata actually reachable in the
// model. internal/analysis/fsmcheck cross-validates the machines it
// extracts from the Go engines against this relation, so the executable
// implementation and the model-checked abstraction cannot drift
// independently: an implementation transition absent from the model (or a
// model transition silently removed) becomes a lint finding.

// Edge role names.
const (
	EdgeRoleCoordinator = "coordinator"
	EdgeRoleCohort      = "cohort"
)

// Edge is one site-local transition of the abstract commit model. From and
// To use the model's state letters: 'q', 'w', 'p', 'a', 'c'.
type Edge struct {
	Role string
	From byte
	To   byte
}

// String renders the edge as "role: f->t".
func (e Edge) String() string {
	return fmt.Sprintf("%s: %c->%c", e.Role, e.From, e.To)
}

// Edges enumerates the site-local transitions reachable in the model with
// the given variant, cohort count, crash budget and options, by exploring
// the global state space and projecting every step onto the sites whose
// FSM state it changes. The result is sorted and duplicate-free; it is the
// stable edge-enumeration API fsmcheck's cross-validation consumes.
func Edges(v Variant, n, f int, opts ModelOptions) ([]Edge, error) {
	m := &model{variant: v, n: n, f: f, opts: opts}
	const maxStates = 1 << 22
	set := map[Edge]bool{}
	seen := map[string]bool{}
	init := m.initial().encode()
	seen[init] = true
	queue := []string{init}
	states := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		states++
		if states > maxStates {
			return nil, fmt.Errorf("mc: edge enumeration exceeds %d states", maxStates)
		}
		s := decode(cur, n)
		for _, nxEnc := range m.Next(cur) {
			t := decode(nxEnc, n)
			if t.coord != s.coord {
				set[Edge{Role: EdgeRoleCoordinator, From: s.coord, To: t.coord}] = true
			}
			for i := 0; i < n; i++ {
				if t.cohort[i] != s.cohort[i] {
					set[Edge{Role: EdgeRoleCohort, From: s.cohort[i], To: t.cohort[i]}] = true
				}
			}
			if !seen[nxEnc] {
				seen[nxEnc] = true
				queue = append(queue, nxEnc)
			}
		}
	}
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out, nil
}
