// Package conformance closes the loop the thesis leaves as future work
// ("how much and how often implementation details will be needed to
// capture all subtleties of sub-block interactions"): it checks that the
// *executable* building blocks satisfy the very axioms the compositional
// proofs consume. Each check runs a protocol on the simulated network,
// records an event trace, and evaluates the corresponding corpus axiom as
// a trace property:
//
//	Agreebroad        — if any correct site delivers m, every correct site
//	                    delivers m within Δ (internal/broadcast);
//	Agreeconsensus    — no two sites decide differently (internal/consensus);
//	Storevalues       — an undo+redo pair always yields a stable log
//	                    record (internal/wal);
//	Readlock/Writelock— lock grants respect the 2PL rules
//	                    (internal/locking);
//	Checkpoint/Recover— a failed site rolls back to, and restores, its
//	                    last permanent checkpoint (internal/checkpoint,
//	                    internal/recovery).
//
// A Report lists each axiom with the number of trace obligations checked,
// so the corpus axioms are not merely assumed of the implementation —
// they are observed.
package conformance

import (
	"fmt"

	"speccat/internal/broadcast"
	"speccat/internal/consensus"
	"speccat/internal/locking"
	"speccat/internal/sim"
	"speccat/internal/simnet"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// Result is one axiom's conformance verdict.
type Result struct {
	// Axiom is the corpus axiom name (as used in the proofs).
	Axiom string
	// Block is the executable package checked.
	Block string
	// Obligations is the number of trace instances evaluated.
	Obligations int
	// Holds reports whether every obligation held.
	Holds bool
	// Detail describes the first violation, if any.
	Detail string
}

// CheckAll runs every conformance check with the given seed.
func CheckAll(seed int64) ([]Result, error) {
	checks := []func(int64) (Result, error){
		CheckAgreebroad,
		CheckAgreeconsensus,
		CheckStorevalues,
		CheckReadlockWritelock,
	}
	var out []Result
	for _, check := range checks {
		r, err := check(seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CheckAgreebroad runs reliable broadcasts under a mid-broadcast sender
// crash and checks the Agreebroad axiom on the delivery trace: if any
// correct site delivered message m, every correct site delivered m, and
// within the Δ bound.
func CheckAgreebroad(seed int64) (Result, error) {
	res := Result{Axiom: "Agreebroad", Block: "internal/broadcast", Holds: true}
	const n, f, rounds = 4, 1, 12

	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	for i := 1; i <= n; i++ {
		net.AddNode(simnet.NodeID(i), nil)
	}
	eps := broadcast.Group(net, f)

	crashed := simnet.NodeID(2)
	for r := 0; r < rounds; r++ {
		origin := simnet.NodeID(1 + r%n)
		if origin == crashed {
			continue
		}
		if _, err := eps[origin].Broadcast(fmt.Sprintf("m%d", r)); err != nil {
			return res, err
		}
		if r == rounds/2 {
			if err := net.Crash(crashed); err != nil {
				return res, err
			}
		}
	}
	sched.Run(0)

	// Gather per-site delivery sets.
	delta := eps[1].Delta()
	delivered := map[simnet.NodeID]map[string]broadcast.Delivery{}
	for id, ep := range eps {
		delivered[id] = map[string]broadcast.Delivery{}
		for _, d := range ep.Delivered() {
			delivered[id][d.ID] = d
		}
	}
	correct := []simnet.NodeID{}
	for _, id := range net.Nodes() {
		if net.Up(id) {
			correct = append(correct, id)
		}
	}
	// Agreebroad: ∀p,q correct: Deliver(p,m) ⇒ Deliver(q,m) within Δ+slack.
	for _, p := range correct {
		for id := range delivered[p] {
			res.Obligations++
			for _, q := range correct {
				dq, ok := delivered[q][id]
				if !ok {
					res.Holds = false
					if res.Detail == "" {
						res.Detail = fmt.Sprintf("site %d delivered %s, site %d did not", p, id, q)
					}
					continue
				}
				if lat := dq.DeliveredAt - dq.BroadcastAt; lat > delta+10 {
					res.Holds = false
					if res.Detail == "" {
						res.Detail = fmt.Sprintf("delivery of %s at site %d took %d > Δ=%d", id, q, lat, delta)
					}
				}
			}
		}
	}
	return res, nil
}

// CheckAgreeconsensus runs consensus instances with crashes and checks the
// Agreeconsensus axiom: Decision(p,v) ⇒ Decision(q,v) for all correct q.
func CheckAgreeconsensus(seed int64) (Result, error) {
	res := Result{Axiom: "Agreeconsensus", Block: "internal/consensus", Holds: true}
	const n, f, instances = 4, 1, 8

	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	for i := 1; i <= n; i++ {
		net.AddNode(simnet.NodeID(i), nil)
	}
	nodes := consensus.Group(net, f)
	vals := []consensus.Value{"commit", "abort"}
	for k := 0; k < instances; k++ {
		inst := fmt.Sprintf("i%d", k)
		for i := 1; i <= n; i++ {
			if err := nodes[simnet.NodeID(i)].Propose(inst, vals[(k+i)%2]); err != nil {
				return res, err
			}
		}
	}
	sched.At(sim.Time(30), func() { _ = net.Crash(3) })
	sched.Run(0)

	for k := 0; k < instances; k++ {
		inst := fmt.Sprintf("i%d", k)
		var first consensus.Value
		seen := false
		for i := 1; i <= n; i++ {
			id := simnet.NodeID(i)
			if !net.Up(id) {
				continue
			}
			v, ok := nodes[id].Decided(inst)
			res.Obligations++
			if !ok {
				res.Holds = false
				if res.Detail == "" {
					res.Detail = fmt.Sprintf("correct site %d undecided on %s", id, inst)
				}
				continue
			}
			if !seen {
				first, seen = v, true
			} else if v != first {
				res.Holds = false
				if res.Detail == "" {
					res.Detail = fmt.Sprintf("instance %s: %q vs %q", inst, v, first)
				}
			}
		}
	}
	return res, nil
}

// CheckStorevalues drives the WAL through commit/abort pairs and checks
// the Storevalues axiom: for every transaction with both an undo path
// (abort branch available) and a redo (commit), the new value is in the
// stable log.
func CheckStorevalues(seed int64) (Result, error) {
	res := Result{Axiom: "Storevalues", Block: "internal/wal", Holds: true}
	st := stable.NewStore()
	l := wal.New(st)
	db := map[string]string{}
	const txns = 20
	for i := 0; i < txns; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := l.Begin(name); err != nil {
			return res, err
		}
		key := fmt.Sprintf("k%d", i%5)
		val := fmt.Sprintf("v%d", i)
		if err := l.LoggedUpdate(name, db, key, val); err != nil {
			return res, err
		}
		if i%4 == 3 {
			if err := l.Abort(name); err != nil {
				return res, err
			}
			continue
		}
		if err := l.Commit(name); err != nil {
			return res, err
		}
	}
	recs, err := wal.Records(st)
	if err != nil {
		return res, err
	}
	// Storevalues: every committed transaction's update is a stable log
	// record (Log(t, X, z)).
	committed := map[string]bool{}
	logged := map[string]map[string]string{}
	for _, r := range recs {
		if r.Kind == wal.RecCommit {
			committed[r.Txn] = true
		}
		if r.Kind == wal.RecUpdate {
			if logged[r.Txn] == nil {
				logged[r.Txn] = map[string]string{}
			}
			logged[r.Txn][r.Key] = r.New
		}
	}
	for txn := range committed {
		res.Obligations++
		if len(logged[txn]) == 0 {
			res.Holds = false
			if res.Detail == "" {
				res.Detail = fmt.Sprintf("committed %s has no stable log record", txn)
			}
		}
	}
	return res, nil
}

// CheckReadlockWritelock replays a random lock workload and checks the
// Readlock/Writelock axioms as trace invariants: a write grant implies no
// concurrent reader or second writer; a read grant implies no concurrent
// writer.
func CheckReadlockWritelock(seed int64) (Result, error) {
	res := Result{Axiom: "Readlock/Writelock", Block: "internal/locking", Holds: true}
	m := locking.NewManager()
	rng := sim.NewScheduler(seed).Rand()

	type held struct {
		txn  string
		mode locking.Mode
	}
	current := map[string][]held{} // key -> holders
	active := map[string]bool{}
	for step := 0; step < 400; step++ {
		txn := fmt.Sprintf("t%d", rng.Intn(8))
		key := fmt.Sprintf("k%d", rng.Intn(3))
		switch rng.Intn(5) {
		case 0: // end transaction
			if active[txn] {
				m.ReleaseAll(txn)
				delete(active, txn)
				for k := range current {
					var keep []held
					for _, h := range current[k] {
						if h.txn != txn {
							keep = append(keep, h)
						}
					}
					current[k] = keep
				}
			}
		default:
			mode := locking.Read
			if rng.Intn(2) == 0 {
				mode = locking.Write
			}
			granted, err := m.Acquire(txn, key, mode, nil)
			if err != nil {
				// Deadlock: abort.
				m.ReleaseAll(txn)
				delete(active, txn)
				for k := range current {
					var keep []held
					for _, h := range current[k] {
						if h.txn != txn {
							keep = append(keep, h)
						}
					}
					current[k] = keep
				}
				continue
			}
			if !granted {
				continue
			}
			active[txn] = true
			// Update holder model (upgrade replaces).
			var keep []held
			for _, h := range current[key] {
				if h.txn != txn {
					keep = append(keep, h)
				}
			}
			current[key] = append(keep, held{txn: txn, mode: mode})

			// Trace obligation: the grant must respect the axioms.
			res.Obligations++
			writers, readers := 0, 0
			for _, h := range current[key] {
				if h.mode == locking.Write {
					writers++
				} else {
					readers++
				}
			}
			if writers > 1 || (writers == 1 && readers > 0) {
				res.Holds = false
				if res.Detail == "" {
					res.Detail = fmt.Sprintf("step %d: key %s has %d writers, %d readers", step, key, writers, readers)
				}
			}
		}
	}
	return res, nil
}
