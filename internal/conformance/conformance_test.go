package conformance

import "testing"

func TestCheckAllAxiomsConform(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		results, err := CheckAll(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(results) != 4 {
			t.Fatalf("checks = %d", len(results))
		}
		for _, r := range results {
			if !r.Holds {
				t.Errorf("seed %d: axiom %s violated by %s: %s", seed, r.Axiom, r.Block, r.Detail)
			}
			if r.Obligations == 0 {
				t.Errorf("seed %d: axiom %s checked zero obligations", seed, r.Axiom)
			}
		}
	}
}

func TestAgreebroadObligationCountScales(t *testing.T) {
	r, err := CheckAgreebroad(3)
	if err != nil {
		t.Fatal(err)
	}
	// 12 rounds minus skipped origin rounds, times correct sites.
	if r.Obligations < 20 {
		t.Fatalf("obligations = %d, suspiciously few", r.Obligations)
	}
}

func TestStorevaluesCountsCommittedOnly(t *testing.T) {
	r, err := CheckStorevalues(5)
	if err != nil {
		t.Fatal(err)
	}
	// 20 transactions, every 4th aborted: 15 committed.
	if r.Obligations != 15 {
		t.Fatalf("obligations = %d, want 15", r.Obligations)
	}
}
