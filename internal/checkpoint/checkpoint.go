// Package checkpoint implements the checkpointing protocol of
// Section 3.5.1 (building block 5): coordinated checkpoints taken in two
// phases — every site first saves a *tentative* checkpoint to stable
// storage and acknowledges; once the coordinator has every ack it orders
// promotion to *permanent*. A failure before promotion leaves the previous
// permanent checkpoint in force, so the set of permanent checkpoints
// always forms a consistent system state and recovery of one site never
// forces others back (no domino effect). Sites checkpoint periodically
// with a common period Π.
//
//rt:engine
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"speccat/internal/rt"
	"speccat/internal/stable"
)

// Stable-storage keys.
const (
	keyTentative = "ckpt/tentative"
	keyPermanent = "ckpt/permanent"
)

// Wire kinds. An ack announces "my tentative checkpoint is on stable
// storage", so it must be write-ahead of that save (//dur:requires);
// take and commit only order work and carry no durability claim.
const (
	kindTake   = "checkpoint.take"
	kindAck    = "checkpoint.ack" //dur:requires checkpoint
	kindCommit = "checkpoint.commit"
)

// Sentinel errors.
var (
	// ErrNoCheckpoint is returned when no permanent checkpoint exists.
	ErrNoCheckpoint = errors.New("checkpoint: no permanent checkpoint")
	// ErrEncode is wrapped when a checkpoint fails to serialize.
	ErrEncode = errors.New("checkpoint: encode checkpoint")
	// ErrNoStore is wrapped when the node's own stable store is missing.
	ErrNoStore = errors.New("checkpoint: own store missing")
)

// saved is the stable-storage encoding of one checkpoint.
type saved struct {
	Seq   int    `json:"seq"`
	State []byte `json:"state"`
}

// takeMsg orders a tentative checkpoint.
type takeMsg struct{ Seq int }

// ackMsg acknowledges a tentative checkpoint.
type ackMsg struct{ Seq int }

// commitMsg promotes tentative to permanent.
type commitMsg struct{ Seq int }

// Node is one site's checkpointing engine.
type Node struct {
	net rt.Transport
	id  rt.NodeID
	// Capture returns the site's current volatile state for saving.
	Capture func() []byte
	// OnPermanent fires when a checkpoint becomes permanent.
	OnPermanent func(seq int)

	// coordinator state
	isCoord bool
	period  rt.Time
	seq     int
	acked   map[int]map[rt.NodeID]bool
}

// New creates a checkpointing node.
func New(net rt.Transport, id rt.NodeID, capture func() []byte) *Node {
	return &Node{net: net, id: id, Capture: capture, acked: map[int]map[rt.NodeID]bool{}}
}

// StartCoordinator makes this node the checkpoint coordinator with the
// given period Π (the paper requires Π > β+δ; callers pass a period well
// above the network delay bound).
func (n *Node) StartCoordinator(period rt.Time) {
	n.isCoord = true
	n.period = period
	n.net.After(n.id, period, n.round)
}

// round runs one coordinated checkpoint.
func (n *Node) round() {
	n.seq++
	seq := n.seq
	n.acked[seq] = map[rt.NodeID]bool{}
	_ = n.net.Broadcast(n.id, kindTake, takeMsg{Seq: seq})
	if n.period > 0 {
		n.net.After(n.id, n.period, n.round)
	}
}

// TakeNow triggers an immediate checkpoint round (coordinator only).
func (n *Node) TakeNow() {
	if n.isCoord {
		n.round()
	}
}

func (n *Node) store() (*stable.Store, error) {
	st, err := n.net.Store(n.id)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNoStore, err)
	}
	return st, nil
}

// HandleMessage consumes checkpoint traffic; it reports whether the
// message was consumed, plus any stable-storage failure (the site should
// treat one as a crash: a checkpoint it cannot persist must not be acked).
//
//dur:handler
func (n *Node) HandleMessage(m rt.Message) (bool, error) {
	switch m.Kind {
	case kindTake:
		tm, ok := m.Payload.(takeMsg)
		if !ok {
			return false, nil
		}
		if err := n.saveTentative(tm.Seq); err != nil {
			return true, err
		}
		_ = n.net.Send(n.id, m.From, kindAck, ackMsg{Seq: tm.Seq})
		return true, nil
	case kindAck:
		am, ok := m.Payload.(ackMsg)
		if !ok {
			return false, nil
		}
		if !n.isCoord || n.acked[am.Seq] == nil {
			return true, nil
		}
		n.acked[am.Seq][m.From] = true
		// All *operational* sites must ack before promotion.
		for _, peer := range n.net.Nodes() {
			if n.net.Up(peer) && !n.acked[am.Seq][peer] {
				return true, nil
			}
		}
		delete(n.acked, am.Seq)
		_ = n.net.Broadcast(n.id, kindCommit, commitMsg{Seq: am.Seq})
		return true, nil
	case kindCommit:
		cm, ok := m.Payload.(commitMsg)
		if !ok {
			return false, nil
		}
		return true, n.promote(cm.Seq)
	default:
		return false, nil
	}
}

// saveTentative writes the tentative checkpoint to stable storage.
//
//dur:writes checkpoint
func (n *Node) saveTentative(seq int) error {
	data, err := json.Marshal(saved{Seq: seq, State: n.Capture()})
	if err != nil {
		return fmt.Errorf("%w: %w", ErrEncode, err)
	}
	st, err := n.store()
	if err != nil {
		return err
	}
	st.Put(keyTentative, data)
	return nil
}

// promote turns the matching tentative checkpoint permanent.
//
//dur:writes checkpoint
func (n *Node) promote(seq int) error {
	st, err := n.store()
	if err != nil {
		return err
	}
	data, ok := st.Get(keyTentative)
	if !ok {
		return nil
	}
	var s saved
	if err := json.Unmarshal(data, &s); err != nil || s.Seq != seq {
		return nil
	}
	st.Put(keyPermanent, data)
	st.Put("ckpt/lastseq", []byte(strconv.Itoa(seq)))
	if n.OnPermanent != nil {
		n.OnPermanent(seq)
	}
	return nil
}

// Permanent reads a site's last permanent checkpoint from its stable store
// (usable while the site is down — stable storage survives crashes).
func Permanent(st *stable.Store) (seq int, state []byte, err error) {
	data, ok := st.Get(keyPermanent)
	if !ok {
		return 0, nil, ErrNoCheckpoint
	}
	var s saved
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, nil, fmt.Errorf("checkpoint: corrupt permanent checkpoint: %w", err)
	}
	return s.Seq, s.State, nil
}

// Tentative reads a site's tentative checkpoint, if any.
func Tentative(st *stable.Store) (seq int, state []byte, err error) {
	data, ok := st.Get(keyTentative)
	if !ok {
		return 0, nil, ErrNoCheckpoint
	}
	var s saved
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, nil, fmt.Errorf("checkpoint: corrupt tentative checkpoint: %w", err)
	}
	return s.Seq, s.State, nil
}

// DiscardTentative removes an unpromoted tentative checkpoint (crash
// recovery: tentative checkpoints that never committed are dropped).
func DiscardTentative(st *stable.Store) {
	st.Delete(keyTentative)
}
