package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

// site pairs a volatile state with its checkpointing node.
type site struct {
	state string
	node  *Node
}

func setup(seed int64, n int) (*simnet.Network, map[simnet.NodeID]*site) {
	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	sites := map[simnet.NodeID]*site{}
	for i := 1; i <= n; i++ {
		id := simnet.NodeID(i)
		s := &site{state: fmt.Sprintf("s%d-v0", i)}
		sites[id] = s
		net.AddNode(id, nil)
	}
	for id, s := range sites {
		s.node = New(net, id, func() []byte { return []byte(s.state) })
		s := s
		if err := net.SetHandler(id, func(m simnet.Message) { s.node.HandleMessage(m) }); err != nil {
			panic(err)
		}
	}
	return net, sites
}

func TestCoordinatedCheckpointBecomesPermanent(t *testing.T) {
	net, sites := setup(1, 3)
	sites[1].node.StartCoordinator(100)
	net.Scheduler().RunUntil(300)
	for id := range sites {
		st, err := net.Store(id)
		if err != nil {
			t.Fatal(err)
		}
		seq, state, err := Permanent(st)
		if err != nil {
			t.Fatalf("site %d: %v", id, err)
		}
		if seq == 0 || len(state) == 0 {
			t.Fatalf("site %d: seq=%d state=%q", id, seq, state)
		}
	}
}

func TestPeriodicRounds(t *testing.T) {
	net, sites := setup(2, 2)
	var promoted []int
	sites[2].node.OnPermanent = func(seq int) { promoted = append(promoted, seq) }
	sites[1].node.StartCoordinator(100)
	net.Scheduler().RunUntil(450)
	if len(promoted) < 3 {
		t.Fatalf("promotions = %v, want >= 3 rounds", promoted)
	}
	for i := 1; i < len(promoted); i++ {
		if promoted[i] != promoted[i-1]+1 {
			t.Fatalf("non-sequential promotions: %v", promoted)
		}
	}
}

func TestCrashBeforeAckBlocksPromotion(t *testing.T) {
	// One participant crashes before the take message arrives; the
	// coordinator never gets its ack in this round, but promotion still
	// proceeds for operational sites once the crash is observable — our
	// engine requires acks only from operational sites at ack time.
	net, sites := setup(3, 3)
	if err := net.Crash(3); err != nil {
		t.Fatal(err)
	}
	sites[1].node.StartCoordinator(100)
	net.Scheduler().RunUntil(400)
	for _, id := range []simnet.NodeID{1, 2} {
		st, _ := net.Store(id)
		if _, _, err := Permanent(st); err != nil {
			t.Fatalf("operational site %d has no permanent checkpoint: %v", id, err)
		}
	}
	st3, _ := net.Store(3)
	if _, _, err := Permanent(st3); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("crashed site has a checkpoint: %v", err)
	}
}

func TestTentativeNotPermanentWithoutCommit(t *testing.T) {
	// Coordinator crashes right after broadcasting "take": tentative
	// checkpoints exist but must never be promoted.
	net, sites := setup(4, 3)
	sites[1].node.StartCoordinator(0) // no periodic rounds
	sites[1].node.TakeNow()
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	for _, id := range []simnet.NodeID{2, 3} {
		st, _ := net.Store(id)
		if _, _, err := Tentative(st); err != nil {
			t.Fatalf("site %d lacks tentative checkpoint: %v", id, err)
		}
		if _, _, err := Permanent(st); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("site %d promoted without commit: %v", id, err)
		}
	}
}

func TestCheckpointCapturesCurrentState(t *testing.T) {
	net, sites := setup(5, 2)
	sites[2].state = "before"
	sites[1].node.StartCoordinator(0)
	sites[1].node.TakeNow()
	// Mutate after the take is in flight but before the next round; the
	// captured state is whatever was current at save time.
	net.Scheduler().Run(0)
	st, _ := net.Store(2)
	_, state, err := Permanent(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "before" {
		t.Fatalf("captured %q", state)
	}
}

func TestDiscardTentative(t *testing.T) {
	net, sites := setup(6, 2)
	sites[1].node.StartCoordinator(0)
	sites[1].node.TakeNow()
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	st, _ := net.Store(2)
	if _, _, err := Tentative(st); err != nil {
		t.Fatal("no tentative to discard")
	}
	DiscardTentative(st)
	if _, _, err := Tentative(st); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("tentative survived discard")
	}
}
