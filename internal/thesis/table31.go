package thesis

// BuildingBlock is one row of the paper's Table 3.1, extended with the
// requirements stated in Section 3.5.1 and the Go package that implements
// the block executably.
type BuildingBlock struct {
	// ID is the table row (1, 1.1, 1.2, 2, ...).
	ID string
	// Name is the protocol name.
	Name string
	// SpecName is the corpus specification encoding its properties.
	SpecName string
	// Package is the executable implementation.
	Package string
	// Requirements are the stated requirements from Section 3.5.1.
	Requirements []string
}

// Table31 reproduces Table 3.1 ("Various Building Blocks of 3PC") with the
// requirement lists of Section 3.5.1.
func Table31() []BuildingBlock {
	return []BuildingBlock{
		{
			ID: "1", Name: "Controller Protocol", SpecName: "CONTROLLER", Package: "internal/tpc",
			Requirements: []string{
				"recognize participant failures",
				"allow recovery from mid-commitment failure",
				"reliable broadcasting between participants",
				"uniform agreement procedure among participants",
				"commitment executed at end of transaction and made permanent",
				"collect local states into global state vectors",
			},
		},
		{
			ID: "1.1", Name: "Broadcast Protocol", SpecName: "BROADCAST", Package: "internal/broadcast",
			Requirements: []string{
				"termination: some correct process eventually delivers",
				"validity: delivered messages were multicast",
				"integrity: at-most-once delivery, no duplication",
				"uniform agreement: delivery by one implies delivery by all correct",
				"timeliness: delivery within (f+1)*delta",
			},
		},
		{
			ID: "1.2", Name: "Consensus Protocol", SpecName: "CONSENSUS", Package: "internal/consensus",
			Requirements: []string{
				"termination: every correct site eventually decides",
				"integrity: a site decides at most once",
				"validity: decided values were proposed",
				"uniform agreement: no two sites decide differently",
			},
		},
		{
			ID: "2", Name: "Snapshot Protocol", SpecName: "SNAPSHOT", Package: "internal/snapshot",
			Requirements: []string{
				"global state never holds both a commit and an abort state",
				"global transition on every local transition",
				"local transitions instantaneous and mutually exclusive",
				"exactly one local transition per global transition",
			},
		},
		{
			ID: "3", Name: "Undo/Redo Logging Protocol", SpecName: "UNDOREDO", Package: "internal/wal",
			Requirements: []string{
				"log kept in stable storage",
				"undo entry in stable log before writing",
				"redo entry in stable log before committing",
				"write-ahead: actions logged before taken",
				"undo and redo idempotent across repeated crashes",
			},
		},
		{
			ID: "4", Name: "Two Phase Locking Protocol", SpecName: "TWOPHASELOCK", Package: "internal/locking",
			Requirements: []string{
				"at most one transaction write-locks an object",
				"write lock enforces complete mutual exclusion",
				"multiple concurrent read locks allowed",
				"no read locks while write-locked",
				"all objects unlocked before the transaction finishes",
			},
		},
		{
			ID: "5", Name: "Checkpointing Protocol", SpecName: "CHECKPOINTING", Package: "internal/checkpoint",
			Requirements: []string{
				"no domino effect",
				"checkpoint sets form a consistent system state",
				"no message from after the k-th checkpoint consumed before it",
				"periodic checkpointing with common period",
				"tentative checkpoints promoted to permanent",
			},
		},
		{
			ID: "6", Name: "Recovery Protocol", SpecName: "RECOVERY", Package: "internal/recovery",
			Requirements: []string{
				"restore an earlier state from a stable checkpoint and replay the log",
				"roll back processes whose states depend on lost states",
				"externalize messages only when their states cannot be undone",
				"recovered site rejoins the active transaction",
			},
		},
		{
			ID: "7", Name: "Decision Making Protocol", SpecName: "DECISIONMAKING", Package: "internal/tpc",
			Requirements: []string{
				"no local state's concurrency set contains both abort and commit",
				"no non-committable state concurrent with a commit state",
				"terminate the transaction when either rule fails",
			},
		},
		{
			ID: "8", Name: "Termination Protocol", SpecName: "TERMINATION", Package: "internal/tpc",
			Requirements: []string{
				"terminate temporarily when the non-blocking theorem holds at some operational site",
				"terminate permanently when no operational site satisfies the rules",
				"assist electing a backup coordinator on coordinator failure",
			},
		},
		{
			ID: "9", Name: "Voting (Election) Protocol", SpecName: "VOTING", Package: "internal/election",
			Requirements: []string{
				"invoked by the termination protocol on coordinator failure",
				"backup bases the commit decision on its local state",
				"commit when the backup's concurrency set contains a commit state",
				"backup instructs all sites to transition to its local state",
			},
		},
		{
			ID: "10", Name: "Failure/Time-out Management Protocol", SpecName: "FAILUREMGMT", Package: "internal/detector",
			Requirements: []string{
				"specify the failure model for the network",
				"compensate clock drift: delta replaced by (1+rho)*delta",
				"no response within 2*delta implies the peer crashed",
				"all pre-crash messages delivered before failure notification",
			},
		},
	}
}
