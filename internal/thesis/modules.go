package thesis

import (
	"fmt"

	"speccat/internal/core/module"
	"speccat/internal/core/spec"
	"speccat/internal/core/speclang"
)

// This file reproduces the paper's Chapter 4 at the *module* level
// (Figs. 4.3–4.8): each building block becomes an algebraic module
// specification MOD = (PAR, EXP, IMP, BOD, f, g, h, k) whose export
// interface carries the properties the block guarantees and whose import
// interface names the properties it assumes from the layer below; modules
// compose pairwise through the import=export interface morphism, and the
// composed module's commuting square is re-verified at every step — the
// paper's "the final composed module also commutes ... which proves the
// correctness of the composition".

// moduleLayer describes one building block's interface carving: which of
// its ops are exported guarantees and which are imported assumptions.
type moduleLayer struct {
	name string
	// spec is the corpus spec the ops and axioms are drawn from.
	spec string
	// exports are op names offered to the next layer.
	exports []string
	// imports are op names assumed from the layer below.
	imports []string
	// own are auxiliary ops of the body only (the paper: "the body may
	// contain auxiliary sorts and operations which do not belong to any
	// other part of the module").
	own []string
	// axioms are the block's own axioms, stated in the body.
	axioms []string
	// paramSorts are the shared parameter sorts.
	paramSorts []string
}

// serializabilityTower is the module chain of Figs. 4.3–4.8: broadcast →
// consensus (composing to the controller) → undo/redo → two-phase locking,
// the tower that establishes the Serializability property.
var serializabilityTower = []moduleLayer{ //lint:allow noglobalstate immutable transcription of Figs. 4.3-4.8
	{
		name: "BROADCAST", spec: "BROADCAST",
		exports:    []string{"Deliver", "Broadcast"},
		imports:    []string{"Correct"},
		own:        []string{"Clockbound"},
		axioms:     []string{"Termbroad", "Agreebroad"},
		paramSorts: []string{"Processors", "Clockvalues", "Messages"},
	},
	{
		name: "CONSENSUS", spec: "CONSENSUS",
		exports:    []string{"Decision", "Proposal"},
		imports:    []string{"Deliver", "Broadcast"},
		axioms:     []string{"Valiconsensus", "Agreeconsensus"},
		paramSorts: []string{"Processors", "Clockvalues", "Messages"},
	},
	{
		name: "UNDOREDO", spec: "UNDOREDO",
		exports:    []string{"Log", "Undo", "Redo"},
		imports:    []string{"Decision", "Proposal"},
		own:        []string{"commitD", "abortD"},
		axioms:     []string{"Storevalues"},
		paramSorts: []string{"Processors", "Clockvalues", "Messages"},
	},
	{
		name: "TWOPHASELOCK", spec: "TWOPHASELOCK",
		exports:    []string{"Read", "Write", "Locking", "Unlock"},
		imports:    []string{"Log", "Undo", "Redo"},
		axioms:     []string{"Readlock", "Writelock"},
		paramSorts: []string{"Processors", "Clockvalues", "Messages"},
	},
}

// BuildModule carves an algebraic module out of a corpus spec: PAR holds
// the shared sorts, EXP the exported ops (with their profile sorts), IMP
// the imported assumptions, and BOD is the layer-local construction —
// imports + exports + auxiliary ops + the block's own axioms. The four
// morphisms are inclusions, so the square commutes by construction and
// Verify re-checks it.
func BuildModule(env *speclang.Env, layer moduleLayer) (*module.Module, error) {
	src, err := env.Spec(layer.spec)
	if err != nil {
		return nil, err
	}

	par := spec.New(layer.name + "_PAR")
	for _, s := range layer.paramSorts {
		if err := addSortFrom(par, src, s); err != nil {
			return nil, err
		}
	}
	exp, err := interfaceSpec(layer.name+"_EXP", src, layer.paramSorts, layer.exports)
	if err != nil {
		return nil, err
	}
	imp, err := interfaceSpec(layer.name+"_IMP", src, layer.paramSorts, layer.imports)
	if err != nil {
		return nil, err
	}

	allOps := append(append(append([]string{}, layer.imports...), layer.exports...), layer.own...)
	bod, err := interfaceSpec(layer.name+"_BOD", src, layer.paramSorts, allOps)
	if err != nil {
		return nil, err
	}
	for _, axName := range layer.axioms {
		ax, ok := src.FindAxiom(axName)
		if !ok {
			return nil, fmt.Errorf("%w: axiom %s not in %s", ErrCorpus, axName, src.Name)
		}
		if err := bod.AddAxiom(ax.Name, ax.Formula); err != nil {
			return nil, err
		}
	}
	if err := bod.WellFormed(); err != nil {
		return nil, fmt.Errorf("module %s body: %w", layer.name, err)
	}

	f := spec.NewMorphism(layer.name+"_f", par, exp, nil, nil)
	g := spec.NewMorphism(layer.name+"_g", par, imp, nil, nil)
	h := spec.NewMorphism(layer.name+"_h", exp, bod, nil, nil)
	k := spec.NewMorphism(layer.name+"_k", imp, bod, nil, nil)
	m, err := module.New(layer.name+"_MOD", par, exp, imp, bod, f, g, h, k)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}

// interfaceSpec builds an interface (EXP or IMP) containing the parameter
// sorts, the named ops, and every sort those ops mention.
func interfaceSpec(name string, bod *spec.Spec, paramSorts, ops []string) (*spec.Spec, error) {
	out := spec.New(name)
	for _, s := range paramSorts {
		if err := addSortFrom(out, bod, s); err != nil {
			return nil, err
		}
	}
	for _, opName := range ops {
		op, ok := bod.FindOp(opName)
		if !ok {
			return nil, fmt.Errorf("%w: interface op %s not in %s", ErrCorpus, opName, bod.Name)
		}
		for _, s := range op.Args {
			if err := addSortFrom(out, bod, s); err != nil {
				return nil, err
			}
		}
		if op.Result != spec.BoolSort {
			if err := addSortFrom(out, bod, op.Result); err != nil {
				return nil, err
			}
		}
		if err := out.AddOp(op); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func addSortFrom(dst, src *spec.Spec, name string) error {
	if name == "Nat" || name == spec.BoolSort || name == "" {
		return nil
	}
	def := ""
	for _, s := range src.Sig.Sorts {
		if s.Name == name {
			def = s.Def
		}
	}
	return dst.AddSort(name, def)
}

// ModuleCompositionStep records one Fig. 4.x composition.
type ModuleCompositionStep struct {
	Name      string
	Left      string
	Right     string
	BodyOps   int
	BodySorts int
	Verified  bool
}

// ComposeSerializabilityTower composes the four modules of the
// serializability tower pairwise (Figs. 4.3, 4.5, 4.7), re-verifying the
// commuting square at every step, and returns the step log plus the final
// composed module (the module-level PR2).
func ComposeSerializabilityTower(env *speclang.Env) ([]ModuleCompositionStep, *module.Module, error) {
	mods := make([]*module.Module, len(serializabilityTower))
	for i, layer := range serializabilityTower {
		m, err := BuildModule(env, layer)
		if err != nil {
			return nil, nil, fmt.Errorf("layer %s: %w", layer.name, err)
		}
		mods[i] = m
	}

	var steps []ModuleCompositionStep
	// Compose top-down: each upper module imports what the next lower
	// module exports (module 1 imports via B1 what module 2 exports via
	// A2 — Fig. 2.4). The tower's top is TWOPHASELOCK; we fold from the
	// top: ((2PL ∘ UNDOREDO) ∘ CONSENSUS) ∘ BROADCAST.
	current := mods[len(mods)-1]
	for i := len(mods) - 2; i >= 0; i-- {
		lower := mods[i]
		s := spec.NewMorphism("s", current.Imp, lower.Exp, nil, nil)
		t := spec.NewMorphism("t", current.Par, lower.Par, nil, nil)
		name := fmt.Sprintf("PRmod%d", len(mods)-1-i)
		comp, err := module.Compose(name, current, lower, s, t)
		if err != nil {
			return nil, nil, fmt.Errorf("compose %s with %s: %w", current.Name, lower.Name, err)
		}
		verified := comp.Module.Verify() == nil
		steps = append(steps, ModuleCompositionStep{
			Name: name, Left: current.Name, Right: lower.Name,
			BodyOps: len(comp.Module.Bod.Sig.Ops), BodySorts: len(comp.Module.Bod.Sig.Sorts),
			Verified: verified,
		})
		if !verified {
			return steps, nil, fmt.Errorf("%w: composed module %s does not commute", ErrCorpus, name)
		}
		current = comp.Module
	}
	return steps, current, nil
}
