package thesis

import (
	"strings"
	"testing"

	"speccat/internal/core/prover"
	"speccat/internal/core/speclang"
)

func renderResult(r *prover.Result) string {
	var b strings.Builder
	for _, s := range r.Proof {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// corpusProofRenderings collects the rendered refutations of p1..p5 from an
// elaborated environment, keyed by statement name.
func corpusProofRenderings(t *testing.T, e *speclang.Env) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, p := range []string{"p1", "p2", "p3", "p4", "p5"} {
		v, ok := e.Lookup(p)
		if !ok || v.Kind != speclang.KindProof || v.Proof == nil {
			t.Fatalf("%s: proof missing (kind=%v)", p, v.Kind)
		}
		out[p] = renderResult(v.Proof)
	}
	return out
}

// TestCorpusParallelMatchesSequential runs the corpus through the parallel
// scheduler at 1, 4, and 8 workers and requires verdicts, rendered proofs,
// and environment name order to be bit-identical to the sequential
// elaborator at every pool size.
func TestCorpusParallelMatchesSequential(t *testing.T) {
	seq := env(t)
	seqNames := strings.Join(seq.Names(), " ")
	seqProofs := corpusProofRenderings(t, seq)

	for _, workers := range []int{1, 4, 8} {
		par, results, err := CorpusParallel(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := strings.Join(par.Names(), " "); got != seqNames {
			t.Errorf("workers=%d: env name order differs\nseq: %s\npar: %s", workers, seqNames, got)
		}
		if len(results) != 5 {
			t.Fatalf("workers=%d: results = %d, want 5", workers, len(results))
		}
		// Results must come back in corpus source order (the corpus states
		// p3 before p2), regardless of completion interleaving.
		for i, r := range results {
			want := []string{"p1", "p3", "p2", "p4", "p5"}[i]
			if r.Obligation.Name != want {
				t.Errorf("workers=%d: result %d is %s, want %s", workers, i, r.Obligation.Name, want)
			}
			if r.Err != nil {
				t.Errorf("workers=%d: %s failed: %v", workers, r.Obligation.Name, r.Err)
			}
		}
		for p, want := range seqProofs {
			got := corpusProofRenderings(t, par)[p]
			if got != want {
				t.Errorf("workers=%d: %s proof differs from sequential elaborator", workers, p)
			}
		}
	}
}

// TestCorpusParallelExperimentArtifacts runs the E4/E5/E6 property proofs
// against a parallel-scheduled environment and requires the rendered
// artifacts to match the sequential environment's exactly (timing fields
// excluded — they are clock readings, not verdicts).
func TestCorpusParallelExperimentArtifacts(t *testing.T) {
	seq := env(t)
	par, _, err := CorpusParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range GlobalProperties() {
		sres, err := ProveProperty(seq, prop)
		if err != nil {
			t.Fatalf("sequential %s: %v", prop, err)
		}
		pres, err := ProveProperty(par, prop)
		if err != nil {
			t.Fatalf("parallel %s: %v", prop, err)
		}
		if sres.Composite != pres.Composite {
			t.Errorf("%s: composite %s vs %s", prop, sres.Composite, pres.Composite)
		}
		if renderResult(sres.Proof) != renderResult(pres.Proof) {
			t.Errorf("%s: proof artifact differs between sequential and parallel env", prop)
		}
		ss, ps := sres.Proof.Stats, pres.Proof.Stats
		if ss.InputClauses != ps.InputClauses || ss.Generated != ps.Generated ||
			ss.Retained != ps.Retained || ss.ProofLength != ps.ProofLength {
			t.Errorf("%s: proof stats differ: %+v vs %+v", prop, ss, ps)
		}
	}
}

// TestObligationsMatchCorpus pins the DAG annotation of the corpus's five
// prove statements.
func TestObligationsMatchCorpus(t *testing.T) {
	obs, err := Obligations()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5 {
		t.Fatalf("obligations = %d, want 5", len(obs))
	}
	wantNames := []string{"p1", "p3", "p2", "p4", "p5"} // corpus source order
	for i, ob := range obs {
		if ob.Name != wantNames[i] {
			t.Errorf("obligation %d = %s, want %s", i, ob.Name, wantNames[i])
		}
		if ob.Depth == 0 {
			t.Errorf("%s: depth 0 — composites should sit above the DAG roots", ob.Name)
		}
		if len(ob.Deps) == 0 {
			t.Errorf("%s: empty dependency closure", ob.Name)
		}
	}
}
