package thesis

import (
	"testing"
)

func TestBuildModulesFromCorpus(t *testing.T) {
	e := env(t)
	for _, layer := range serializabilityTower {
		m, err := BuildModule(e, layer)
		if err != nil {
			t.Fatalf("layer %s: %v", layer.name, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("layer %s does not verify: %v", layer.name, err)
		}
		// The body must carry the layer's own axioms.
		if len(m.Bod.Axioms) != len(layer.axioms) {
			t.Fatalf("layer %s body axioms = %d, want %d", layer.name, len(m.Bod.Axioms), len(layer.axioms))
		}
	}
}

func TestComposeSerializabilityTower(t *testing.T) {
	e := env(t)
	steps, final, err := ComposeSerializabilityTower(e)
	if err != nil {
		t.Fatal(err)
	}
	// Three compositions: 2PL∘UNDOREDO, ∘CONSENSUS, ∘BROADCAST.
	if len(steps) != 3 {
		t.Fatalf("steps = %d: %+v", len(steps), steps)
	}
	for _, s := range steps {
		if !s.Verified {
			t.Fatalf("step %s did not verify", s.Name)
		}
	}
	// Body growth is monotone: each pushout adds the lower layer's ops.
	for i := 1; i < len(steps); i++ {
		if steps[i].BodyOps < steps[i-1].BodyOps {
			t.Fatalf("body shrank at %s", steps[i].Name)
		}
	}
	// The final module exports the locking interface and imports the
	// broadcast layer's assumptions.
	if _, ok := final.Exp.FindOp("Read"); !ok {
		t.Error("final module lost the 2PL export interface")
	}
	if _, ok := final.Imp.FindOp("Correct"); !ok {
		t.Error("final module's import is not the base layer's assumption")
	}
	// The composed body contains every tower axiom — the module-level
	// restatement of "PR2 satisfies the properties of all its parents".
	for _, ax := range []string{"Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"} {
		if _, ok := final.Bod.FindAxiom(ax); !ok {
			t.Errorf("composed body missing axiom %s", ax)
		}
	}
	// No spurious symbol duplication: exactly one Deliver/Log in the body.
	counts := map[string]int{}
	for _, op := range final.Bod.Sig.Ops {
		counts[op.Name]++
	}
	for name, n := range counts {
		if n != 1 {
			t.Errorf("op %s duplicated %d times in composed body", name, n)
		}
	}
	if err := final.Bod.WellFormed(); err != nil {
		t.Errorf("composed body ill-formed: %v", err)
	}
}
