// Package thesis encodes the paper's case study: the eleven building blocks
// of the non-blocking three-phase commit protocol (Table 3.1), the two
// sequential-division composition chains PR1..PR4 and PR5..PR9
// (Figs. 3.4/3.5), and the three global properties — Serializability of
// Transactions, Consistent State Maintenance, and Roll-Back Recovery —
// proved compositionally from sub-protocol axioms (Ch. 4–5).
//
// The corpus is written in the project's Specware-like language
// (corpus.sw, embedded) and elaborated in strict mode, so every composition
// step and every proof in the thesis is mechanically re-checked by this
// package's tests and by cmd/tpcverify.
package thesis

import (
	_ "embed"
	"errors"
	"fmt"
	"time"

	"speccat/internal/core/prover"
	"speccat/internal/core/provesched"
	"speccat/internal/core/spec"
	"speccat/internal/core/speclang"
)

//go:embed corpus.sw
var corpusSrc string

// ErrCorpus is wrapped when the embedded corpus fails to elaborate.
var ErrCorpus = errors.New("thesis: corpus error")

// Corpus elaborates the embedded clean corpus in strict mode, running all
// composition steps and the four prove statements (p1..p4).
func Corpus() (*speclang.Env, error) {
	env, err := speclang.Run(corpusSrc, speclang.Options{})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorpus, err)
	}
	return env, nil
}

// CorpusWithoutProofs elaborates the corpus but skips the prover, for
// callers that only need the specification pipeline (compositions/chains).
func CorpusWithoutProofs() (*speclang.Env, error) {
	env, err := speclang.Run(corpusSrc, speclang.Options{SkipProofs: true})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorpus, err)
	}
	return env, nil
}

// Obligations extracts the corpus's prove statements (p1..p5) annotated
// with their spec-dependency closure and DAG depth, in source order.
func Obligations() ([]provesched.Obligation, error) {
	obs, err := provesched.Extract(corpusSrc)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorpus, err)
	}
	return obs, nil
}

// CorpusParallel elaborates the corpus with proofs skipped, then
// discharges the prove statements on a pool of the given number of
// workers (<= 0 means GOMAXPROCS) and binds each proof back into the
// environment under its statement name. The returned environment is
// interchangeable with Corpus()'s — same names, same order, bit-identical
// proofs at any worker count — and the results are in corpus source
// order.
func CorpusParallel(workers int) (*speclang.Env, []provesched.Result, error) {
	env, err := CorpusWithoutProofs()
	if err != nil {
		return nil, nil, err
	}
	obs, err := Obligations()
	if err != nil {
		return nil, nil, err
	}
	results := (&provesched.Scheduler{Workers: workers}).Run(env, obs)
	if err := provesched.Bind(env, results); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrCorpus, err)
	}
	return env, results, nil
}

// PropertyResult is the outcome of establishing one global property.
type PropertyResult struct {
	// Property is the global property name (theorem name).
	Property string
	// Composite is the PRn spec that satisfies the property.
	Composite string
	// UsingAxioms are the sub-protocol properties the proof used.
	UsingAxioms []string
	// Proof is the resolution refutation.
	Proof *prover.Result
}

// property descriptors, mirroring the thesis's p1/p2/p3 prove statements
// (plus p4 for the sequential-division-2 functionality).
var properties = []struct { //lint:allow noglobalstate immutable transcription of the thesis prove statements
	theorem   string
	composite string
	using     []string
}{
	{"Serialize", "PR2", []string{"Agreebroad", "Agreeconsensus", "Storevalues", "Readlock"}},
	{"CSM", "PR6", []string{"Agreebroad", "Agreeconsensus", "Globprocstateinfo", "Constateinfo"}},
	{"RBR", "PR4", []string{"Agreebroad", "Agreeconsensus", "Storevalues", "Writelock", "Checkpoint", "Recover", "RestoreAx"}},
	{"BackupElection", "PR9", []string{"Timeout", "DeclareFailed", "CoordFailure", "Elect", "Installed"}},
}

// GlobalProperties names the three thesis global properties plus the
// sequential-division-2 functionality, in thesis order.
func GlobalProperties() []string {
	out := make([]string, len(properties))
	for i, p := range properties {
		out[i] = p.theorem
	}
	return out
}

// ProveProperty builds the composite protocol for the named global property
// from the corpus and proves its theorem from the sub-protocol axioms
// listed in the thesis (the modular proof).
func ProveProperty(env *speclang.Env, theorem string) (*PropertyResult, error) {
	for _, p := range properties {
		if p.theorem != theorem {
			continue
		}
		return proveIn(env, p.composite, p.theorem, p.using)
	}
	return nil, fmt.Errorf("%w: unknown property %s", ErrCorpus, theorem)
}

// ProveMonolithic proves the named property from the full axiom set of its
// composite spec — the "flat" verification a non-modular approach would
// run. Used by the E9 ablation.
func ProveMonolithic(env *speclang.Env, theorem string) (*PropertyResult, error) {
	for _, p := range properties {
		if p.theorem != theorem {
			continue
		}
		return proveIn(env, p.composite, p.theorem, nil)
	}
	return nil, fmt.Errorf("%w: unknown property %s", ErrCorpus, theorem)
}

func proveIn(env *speclang.Env, composite, theorem string, using []string) (*PropertyResult, error) {
	s, err := env.Spec(composite)
	if err != nil {
		return nil, err
	}
	th, ok := s.FindTheorem(theorem)
	if !ok {
		return nil, fmt.Errorf("%w: theorem %s not in %s", ErrCorpus, theorem, composite)
	}
	var premises []prover.NamedFormula
	if len(using) == 0 {
		for _, ax := range s.Axioms {
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
		using = nil
	} else {
		for _, name := range using {
			ax, ok := s.FindAxiom(name)
			if !ok {
				return nil, fmt.Errorf("%w: axiom %s not in %s", ErrCorpus, name, composite)
			}
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
	}
	pr := prover.New()
	pr.Limits.Timeout = 60 * time.Second
	res, err := pr.Prove(premises, prover.NamedFormula{Name: th.Name, Formula: th.Formula})
	if err != nil {
		return nil, fmt.Errorf("prove %s in %s: %w", theorem, composite, err)
	}
	return &PropertyResult{Property: theorem, Composite: composite, UsingAxioms: using, Proof: res}, nil
}

// ChainStep describes one composition step in a sequential division.
type ChainStep struct {
	// Name is the resulting composite (PRn or CONTROLLER).
	Name string
	// Parents are the two composed sub-protocols.
	Parents [2]string
	// Sorts, Ops, Axioms, Theorems count the apex contents.
	Sorts, Ops, Axioms, Theorems int
}

// chain definitions matching Figs. 3.4 and 3.5.
var (
	division1 = [][3]string{ //lint:allow noglobalstate immutable transcription of Fig. 3.4
		{"CONTROLLER", "BROADCAST", "CONSENSUS"},
		{"PR1", "CONTROLLER", "UNDOREDO"},
		{"PR2", "PR1", "TWOPHASELOCK"},
		{"PR3", "PR2", "CHECKPOINTING"},
		{"PR4", "PR3", "RECOVERY"},
	}
	division2 = [][3]string{ //lint:allow noglobalstate immutable transcription of Fig. 3.5
		{"CONTROLLER", "BROADCAST", "CONSENSUS"},
		{"PR5", "CONTROLLER", "SNAPSHOT"},
		{"PR6", "PR5", "DECISIONMAKING"},
		{"PR7", "PR6", "TERMINATION"},
		{"PR8", "PR7", "VOTING"},
		{"PR9", "PR8", "FAILUREMGMT"},
	}
)

// SequentialDivision1 reports the composition chain of Fig. 3.4:
// controller → undo/redo logging → two-phase locking → checkpointing →
// recovery, yielding PR1..PR4.
func SequentialDivision1(env *speclang.Env) ([]ChainStep, error) {
	return chainSteps(env, division1)
}

// SequentialDivision2 reports the composition chain of Fig. 3.5:
// controller → snapshot → decision making → termination → voting →
// failure management, yielding PR5..PR9.
func SequentialDivision2(env *speclang.Env) ([]ChainStep, error) {
	return chainSteps(env, division2)
}

func chainSteps(env *speclang.Env, defs [][3]string) ([]ChainStep, error) {
	out := make([]ChainStep, 0, len(defs))
	for _, d := range defs {
		s, err := env.Spec(d[0])
		if err != nil {
			return nil, err
		}
		// Both parents must exist and be subsumed by the composite: every
		// parent axiom appears in the child (the thesis's "child satisfies
		// the properties of both parents").
		for _, parent := range d[1:] {
			ps, err := env.Spec(parent)
			if err != nil {
				return nil, err
			}
			for _, ax := range ps.Axioms {
				if _, ok := s.FindAxiom(ax.Name); !ok {
					return nil, fmt.Errorf("%w: %s lost parent %s axiom %s", ErrCorpus, d[0], parent, ax.Name)
				}
			}
		}
		out = append(out, ChainStep{
			Name:     d[0],
			Parents:  [2]string{d[1], d[2]},
			Sorts:    len(s.Sig.Sorts),
			Ops:      len(s.Sig.Ops),
			Axioms:   len(s.Axioms),
			Theorems: len(s.Theorems),
		})
	}
	return out, nil
}

// BlockSpecNames maps Table 3.1 building blocks to corpus spec names.
func BlockSpecNames() []string {
	return []string{
		"BROADCAST", "CONSENSUS", "CONTROLLER", "UNDOREDO", "TWOPHASELOCK",
		"CHECKPOINTING", "RECOVERY", "SNAPSHOT", "DECISIONMAKING",
		"TERMINATION", "VOTING", "FAILUREMGMT",
	}
}

// CommutationReport verifies, for every colimit in the corpus, that the
// cocone commutes with its diagram (the correctness condition the thesis
// states for each composed module).
type CommutationReport struct {
	Colimit string
	Nodes   int
	Arcs    int
}

// VerifyCommutations re-checks every colimit's commuting property.
func VerifyCommutations(env *speclang.Env) ([]CommutationReport, error) {
	var out []CommutationReport
	for _, name := range env.Names() {
		v, _ := env.Lookup(name)
		if v.Kind != speclang.KindColimit {
			continue
		}
		// Find the source diagram: by corpus convention it is <name>DIAG,
		// except the thesis-style aliases; fall back to scanning.
		diag := findDiagramFor(env, name)
		if diag == nil {
			return nil, fmt.Errorf("%w: no diagram found for colimit %s", ErrCorpus, name)
		}
		if err := v.Cocone.VerifyCommutes(diag.Diagram); err != nil {
			return nil, fmt.Errorf("colimit %s: %w", name, err)
		}
		out = append(out, CommutationReport{
			Colimit: name,
			Nodes:   len(diag.Diagram.Nodes()),
			Arcs:    len(diag.Diagram.Arcs()),
		})
	}
	return out, nil
}

func findDiagramFor(env *speclang.Env, colimitName string) *speclang.Value {
	if v, ok := env.Lookup(colimitName + "DIAG"); ok && v.Kind == speclang.KindDiagram {
		return v
	}
	return nil
}

// SubsumesTheorem reports whether the named composite carries the theorem,
// i.e. the colimit propagated the property statement (traceability).
func SubsumesTheorem(env *speclang.Env, composite, theorem string) (bool, error) {
	s, err := env.Spec(composite)
	if err != nil {
		return false, err
	}
	_, ok := s.FindTheorem(theorem)
	return ok, nil
}

// SpecOf returns a spec from the env (convenience for callers outside the
// package).
func SpecOf(env *speclang.Env, name string) (*spec.Spec, error) { return env.Spec(name) }
