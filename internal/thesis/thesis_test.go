package thesis

import (
	"sync"
	"testing"

	"speccat/internal/core/speclang"
)

// corpusEnv elaborates the corpus once per test binary (proofs included).
// sync.Once keeps the lazy initialization safe under t.Parallel and -race.
var (
	corpusOnce sync.Once
	corpusEnv  *speclang.Env
	corpusErr  error
)

func env(t *testing.T) *speclang.Env {
	t.Helper()
	corpusOnce.Do(func() { corpusEnv, corpusErr = Corpus() })
	if corpusErr != nil {
		t.Fatalf("corpus failed to elaborate: %v", corpusErr)
	}
	return corpusEnv
}

func TestCorpusElaborates(t *testing.T) {
	e := env(t)
	for _, name := range BlockSpecNames() {
		if _, err := e.Spec(name); err != nil {
			t.Errorf("block spec %s: %v", name, err)
		}
	}
	for _, name := range []string{"PR1", "PR2", "PR3", "PR4", "PR5", "PR6", "PR7", "PR8", "PR9"} {
		if _, err := e.Spec(name); err != nil {
			t.Errorf("composite %s: %v", name, err)
		}
	}
}

func TestCorpusProofsRan(t *testing.T) {
	e := env(t)
	for _, p := range []string{"p1", "p2", "p3", "p4", "p5"} {
		v, ok := e.Lookup(p)
		if !ok {
			t.Fatalf("proof %s missing", p)
		}
		if v.Kind != speclang.KindProof {
			t.Fatalf("%s is not a proof (kind %d)", p, v.Kind)
		}
		if v.Proof.Stats.ProofLength < 3 {
			t.Errorf("%s suspiciously short: %d steps", p, v.Proof.Stats.ProofLength)
		}
	}
}

func TestProveAllGlobalProperties(t *testing.T) {
	e := env(t)
	for _, prop := range GlobalProperties() {
		res, err := ProveProperty(e, prop)
		if err != nil {
			t.Errorf("property %s: %v", prop, err)
			continue
		}
		if res.Proof == nil || res.Proof.Stats.ProofLength == 0 {
			t.Errorf("property %s: empty proof", prop)
		}
		// Every proof must end in the empty clause.
		last := res.Proof.Proof[len(res.Proof.Proof)-1]
		if !last.Clause.IsEmpty() {
			t.Errorf("property %s: proof does not end in empty clause", prop)
		}
	}
}

func TestModularProofUsesOnlyListedAxioms(t *testing.T) {
	e := env(t)
	res, err := ProveProperty(e, "Serialize")
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{"~Serialize": true}
	for _, ax := range res.UsingAxioms {
		allowed[ax] = true
	}
	for _, step := range res.Proof.Proof {
		if step.Rule == "input" && !allowed[step.Origin] {
			t.Errorf("proof used unlisted input %s", step.Origin)
		}
	}
}

func TestMonolithicProofAlsoSucceeds(t *testing.T) {
	e := env(t)
	res, err := ProveMonolithic(e, "Serialize")
	if err != nil {
		t.Fatal(err)
	}
	if res.Proof.Stats.InputClauses == 0 {
		t.Fatal("no input clauses")
	}
	// The monolithic run sees at least as many input clauses as the
	// modular run — that gap is the E9 ablation's measurement.
	mod, err := ProveProperty(e, "Serialize")
	if err != nil {
		t.Fatal(err)
	}
	if res.Proof.Stats.InputClauses < mod.Proof.Stats.InputClauses {
		t.Errorf("monolithic input clauses %d < modular %d",
			res.Proof.Stats.InputClauses, mod.Proof.Stats.InputClauses)
	}
}

func TestSequentialDivisions(t *testing.T) {
	e := env(t)
	d1, err := SequentialDivision1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 5 || d1[len(d1)-1].Name != "PR4" {
		t.Fatalf("division 1 = %+v", d1)
	}
	d2, err := SequentialDivision2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 6 || d2[len(d2)-1].Name != "PR9" {
		t.Fatalf("division 2 = %+v", d2)
	}
	// Composite growth is monotone along each chain: every step carries
	// all parent axioms plus the new block's.
	for i := 1; i < len(d1); i++ {
		if d1[i].Axioms < d1[i-1].Axioms {
			t.Errorf("division 1 axiom count shrank at %s", d1[i].Name)
		}
	}
	for i := 1; i < len(d2); i++ {
		if d2[i].Axioms < d2[i-1].Axioms {
			t.Errorf("division 2 axiom count shrank at %s", d2[i].Name)
		}
	}
}

func TestVerifyCommutations(t *testing.T) {
	e := env(t)
	reports, err := VerifyCommutations(e)
	if err != nil {
		t.Fatal(err)
	}
	// CONTROLLER + PR1..PR9 + GM (the reuse demo) = 11 corpus colimits.
	if len(reports) != 11 {
		t.Fatalf("commutation reports = %d, want 11 (%v)", len(reports), reports)
	}
}

func TestTheoremTraceability(t *testing.T) {
	e := env(t)
	// The theorems must propagate up the chains (backward traceability):
	// Serialize lives in PR2 and stays visible in PR3, PR4.
	cases := []struct {
		composite, theorem string
		want               bool
	}{
		{"PR2", "Serialize", true},
		{"PR3", "Serialize", true},
		{"PR4", "Serialize", true},
		{"PR4", "RBR", true},
		{"PR6", "CSM", true},
		{"PR9", "BackupElection", true},
		{"PR1", "Serialize", false}, // not yet composed with 2PL
		{"PR5", "CSM", false},       // not yet composed with decision making
	}
	for _, tc := range cases {
		got, err := SubsumesTheorem(e, tc.composite, tc.theorem)
		if err != nil {
			t.Errorf("%s/%s: %v", tc.composite, tc.theorem, err)
			continue
		}
		if got != tc.want {
			t.Errorf("SubsumesTheorem(%s, %s) = %v, want %v", tc.composite, tc.theorem, got, tc.want)
		}
	}
}

func TestTable31Complete(t *testing.T) {
	rows := Table31()
	// Eleven building blocks; broadcast and consensus appear as sub-rows
	// 1.1/1.2 of the controller, as in the paper's table.
	if len(rows) != 12 {
		t.Fatalf("Table 3.1 rows = %d, want 12", len(rows))
	}
	e := env(t)
	for _, row := range rows {
		if len(row.Requirements) == 0 {
			t.Errorf("block %s has no requirements", row.Name)
		}
		if _, err := e.Spec(row.SpecName); err != nil {
			t.Errorf("block %s: spec %s: %v", row.Name, row.SpecName, err)
		}
	}
}

func TestReuseGroupMembership(t *testing.T) {
	// The thesis's reusability claim: the pretested controller module
	// composes into a different protocol (group membership), and its
	// view-agreement property proves from the same broadcast/consensus
	// axioms the 3PC proofs used.
	e := env(t)
	gm, err := e.Spec("GM")
	if err != nil {
		t.Fatal(err)
	}
	for _, ax := range []string{"Agreebroad", "Agreeconsensus", "InstallFromDecision", "ProposalShared"} {
		if _, ok := gm.FindAxiom(ax); !ok {
			t.Errorf("GM missing axiom %s", ax)
		}
	}
	if _, ok := gm.FindTheorem("ViewAgreement"); !ok {
		t.Fatal("GM missing ViewAgreement")
	}
	v, ok := e.Lookup("p5")
	if !ok || v.Kind != speclang.KindProof {
		t.Fatal("p5 proof missing")
	}
}

func TestCorpusWithoutProofs(t *testing.T) {
	e, err := CorpusWithoutProofs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Spec("PR9"); err != nil {
		t.Fatal(err)
	}
}
