package benchsuite

import (
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

func validReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Date:          "2026-08-05",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        4,
		BenchTime:     "1x",
		Benchmarks: []BenchResult{
			{Name: "E0_CorpusElaboration", Iterations: 1, NsPerOp: 2e6, AllocsPerOp: 100, BytesPerOp: 4096},
			{Name: "E14_CorpusProve_Parallel", Iterations: 1, NsPerOp: 9e7},
		},
		CorpusProve: CorpusProve{SequentialNs: 1.8e8, ParallelNs: 9e7, Workers: 4, Speedup: 2.0},
	}
}

func TestReportSchemaRoundTrip(t *testing.T) {
	r := validReport()
	if err := r.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-05.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Date != r.Date || len(got.Benchmarks) != 2 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.CorpusProve != r.CorpusProve {
		t.Errorf("corpus_prove round trip: %+v != %+v", got.CorpusProve, r.CorpusProve)
	}
}

func TestReportValidateRejections(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*Report)
	}{
		{"wrong schema version", func(r *Report) { r.SchemaVersion = 99 }},
		{"bad date", func(r *Report) { r.Date = "05/08/2026" }},
		{"missing go version", func(r *Report) { r.GoVersion = "" }},
		{"zero cpus", func(r *Report) { r.NumCPU = 0 }},
		{"missing bench time", func(r *Report) { r.BenchTime = "" }},
		{"no benchmarks", func(r *Report) { r.Benchmarks = nil }},
		{"unnamed benchmark", func(r *Report) { r.Benchmarks[0].Name = "" }},
		{"duplicate benchmark", func(r *Report) { r.Benchmarks[1].Name = r.Benchmarks[0].Name }},
		{"nonpositive ns", func(r *Report) { r.Benchmarks[0].NsPerOp = 0 }},
		{"zero workers", func(r *Report) { r.CorpusProve.Workers = 0 }},
		{"nonpositive speedup", func(r *Report) { r.CorpusProve.Speedup = 0 }},
	}
	for _, tc := range cases {
		r := validReport()
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !errors.Is(err, ErrReport) {
			t.Errorf("%s: error does not wrap ErrReport: %v", tc.label, err)
		}
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if _, err := ReadReport(path); !errors.Is(err, ErrReport) {
		t.Errorf("missing file: %v", err)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 14 {
		t.Fatalf("suite has %d benchmarks", len(suite))
	}
	seen := map[string]bool{}
	for _, bm := range suite {
		if bm.Name == "" || bm.Fn == nil {
			t.Errorf("degenerate entry: %+v", bm)
		}
		if seen[bm.Name] {
			t.Errorf("duplicate benchmark %s", bm.Name)
		}
		seen[bm.Name] = true
		if strings.HasPrefix(bm.Name, "Benchmark") {
			t.Errorf("%s: names must not carry the Benchmark prefix", bm.Name)
		}
	}
	for _, want := range []string{"E14_CorpusProve_Sequential", "E14_CorpusProve_Parallel"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("suite missing %s", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a benchmark that does not exist")
	}
}

// TestCorpusProveBenchRuns smoke-tests both E14 arms through the testing
// package for one iteration each, the same way cmd/specbench drives them.
func TestCorpusProveBenchRuns(t *testing.T) {
	prev := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := flag.Set("test.benchtime", prev); err != nil {
			t.Errorf("restoring test.benchtime: %v", err)
		}
	}()
	for _, workers := range []int{1, 0} {
		r := testing.Benchmark(CorpusProveBench(workers))
		if r.N == 0 {
			t.Fatalf("workers=%d: benchmark did not run", workers)
		}
		if r.T <= 0 {
			t.Fatalf("workers=%d: no time measured", workers)
		}
	}
}
