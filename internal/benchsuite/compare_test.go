package benchsuite

import (
	"errors"
	"testing"
)

// compareReport builds a minimal valid report with the given ns/op per
// benchmark name and proof-arm timings.
func compareReport(bench map[string]float64, seqNs, parNs float64) *Report {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Date:          "2026-08-09",
		GoVersion:     "go-test",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        4,
		BenchTime:     "1x",
		CorpusProve:   CorpusProve{SequentialNs: seqNs, ParallelNs: parNs, Workers: 4, Speedup: seqNs / parNs},
	}
	for name, ns := range bench {
		r.Benchmarks = append(r.Benchmarks, BenchResult{Name: name, Iterations: 1, NsPerOp: ns})
	}
	return r
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	baseline := compareReport(map[string]float64{
		"E1": 100, "E2": 100, "E3": 100, "retired": 100,
	}, 1000, 500)
	current := compareReport(map[string]float64{
		"E1":  119, // within the 20% tolerance
		"E2":  121, // beyond it
		"E3":  50,  // an improvement
		"new": 1e9,
	}, 1000, 500)

	regs, err := Compare(baseline, current, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "E2" {
		t.Fatalf("regressions = %v, want exactly E2", regs)
	}
	if regs[0].Ratio < 1.20 || regs[0].Ratio > 1.22 {
		t.Errorf("E2 ratio = %g, want ~1.21", regs[0].Ratio)
	}
}

func TestCompareCoversProofArms(t *testing.T) {
	bench := map[string]float64{"E1": 100}
	baseline := compareReport(bench, 1000, 500)
	current := compareReport(bench, 1300, 500)
	regs, err := Compare(baseline, current, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "corpus_prove/sequential" {
		t.Fatalf("regressions = %v, want the sequential proof arm", regs)
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	good := compareReport(map[string]float64{"E1": 100}, 1000, 500)
	if _, err := Compare(good, good, -0.1); !errors.Is(err, ErrReport) {
		t.Errorf("negative tolerance: err = %v, want ErrReport", err)
	}
	stale := compareReport(map[string]float64{"E1": 100}, 1000, 500)
	stale.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(stale, good, 0.2); !errors.Is(err, ErrReport) {
		t.Errorf("schema mismatch: err = %v, want ErrReport", err)
	}
}
