package benchsuite

import "fmt"

// Regression is one measurement of the current report that slowed beyond
// the comparison tolerance relative to the baseline.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	// Ratio is CurrentNs / BaselineNs (1.25 = 25% slower).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.2fx)", r.Name, r.BaselineNs, r.CurrentNs, r.Ratio)
}

// Compare checks the current report against a baseline and returns every
// regression: a benchmark present in both reports whose ns/op grew by
// more than tolerance (a fraction: 0.20 allows a 20% slowdown), plus the
// E14 proof-pipeline headline arms, compared as the pseudo-benchmarks
// corpus_prove/sequential and corpus_prove/parallel. Benchmarks that
// appear in only one report are additions or retirements, not
// regressions. Both reports must validate, which pins them to the same
// schema version; mixed-schema comparisons fail instead of mismeasuring.
func Compare(baseline, current *Report, tolerance float64) ([]Regression, error) {
	if tolerance < 0 {
		return nil, fmt.Errorf("%w: negative tolerance %g", ErrReport, tolerance)
	}
	if err := baseline.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := current.Validate(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	base := make(map[string]float64, len(baseline.Benchmarks))
	for _, bm := range baseline.Benchmarks {
		base[bm.Name] = bm.NsPerOp
	}
	var out []Regression
	check := func(name string, b, c float64) {
		if ratio := c / b; ratio > 1+tolerance {
			out = append(out, Regression{Name: name, BaselineNs: b, CurrentNs: c, Ratio: ratio})
		}
	}
	for _, bm := range current.Benchmarks {
		if b, ok := base[bm.Name]; ok {
			check(bm.Name, b, bm.NsPerOp)
		}
	}
	check("corpus_prove/sequential", baseline.CorpusProve.SequentialNs, current.CorpusProve.SequentialNs)
	check("corpus_prove/parallel", baseline.CorpusProve.ParallelNs, current.CorpusProve.ParallelNs)
	return out, nil
}
