package benchsuite

import (
	"math/bits"
	"time"
)

// Hist is a log-linear latency histogram: 64 power-of-two major buckets,
// each split into 32 linear minor buckets, covering 1ns to ~9.2s-per-op
// scales with bounded (<~3.2%) relative quantile error and constant
// memory. The load generator records per-operation latencies into it and
// reads p50/p99/p999 out; it is deliberately not mergeable-with-decay or
// windowed — tpcload reports whole-run quantiles.
type Hist struct {
	counts [64 * 32]uint64
	total  uint64
	min    int64
	max    int64
}

// histBucket maps a nanosecond latency to its bucket index.
func histBucket(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	major := bits.Len64(uint64(ns)) - 1 // floor(log2)
	if major < 5 {
		// Values below 32ns land in the linear prefix.
		return int(ns)
	}
	minor := int((uint64(ns) >> (uint(major) - 5)) & 31)
	return major*32 + minor
}

// histValue returns the representative (lower-bound) latency of a bucket.
func histValue(idx int) int64 {
	major := idx / 32
	minor := idx % 32
	if major < 1 {
		return int64(idx)
	}
	return (1 << uint(major)) + int64(minor)<<(uint(major)-5)
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.counts[histBucket(ns)]++
	h.total++
	if h.total == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Merge folds another histogram's samples into this one (exact: the
// bucket layout is shared, so counts add; extremes take the wider span).
// Per-worker histograms merge into the run-wide one this way.
func (h *Hist) Merge(o *Hist) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
}

// Min and Max return the exact extremes of the recorded samples.
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q in [0, 1] (0.5 = p50). The
// answer is the lower bound of the bucket holding the q-th sample,
// clamped to the exact observed extremes; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := histValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
