package benchsuite

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
)

// SchemaVersion is the current BENCH_<date>.json schema version; bump it
// on any incompatible field change so regression tooling can refuse
// mixed-schema comparisons.
const SchemaVersion = 1

// ErrReport is wrapped by every report validation or IO failure.
var ErrReport = errors.New("benchsuite: bad report")

// BenchResult is one benchmark's measurement. Metrics carries any
// custom units the benchmark body reported (testing.B.ReportMetric) —
// e.g. the E18 zipfian-mix benches track conflict-rate and commits/ktick
// per locking regime — so domain numbers ride in the same report as the
// timings. Metrics are recorded, not regression-gated: only ns/op feeds
// the Compare tolerance check.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// CorpusProve is the E14 sequential-versus-parallel headline: total time
// to discharge all five corpus proof obligations at one worker and at
// Workers workers, and the resulting speedup.
type CorpusProve struct {
	SequentialNs float64 `json:"sequential_ns"`
	ParallelNs   float64 `json:"parallel_ns"`
	Workers      int     `json:"workers"`
	Speedup      float64 `json:"speedup"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	Date          string        `json:"date"` // YYYY-MM-DD (UTC)
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	NumCPU        int           `json:"num_cpu"`
	BenchTime     string        `json:"bench_time"`
	Benchmarks    []BenchResult `json:"benchmarks"`
	CorpusProve   CorpusProve   `json:"corpus_prove"`
}

var datePattern = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`) //lint:allow noglobalstate compiled constant

// Validate checks the report against the schema regression tooling relies
// on: version pinned, date machine-sortable, every measurement positive.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: schema_version %d, want %d", ErrReport, r.SchemaVersion, SchemaVersion)
	}
	if !datePattern.MatchString(r.Date) {
		return fmt.Errorf("%w: date %q not YYYY-MM-DD", ErrReport, r.Date)
	}
	if r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("%w: missing toolchain/platform fields", ErrReport)
	}
	if r.NumCPU < 1 {
		return fmt.Errorf("%w: num_cpu %d", ErrReport, r.NumCPU)
	}
	if r.BenchTime == "" {
		return fmt.Errorf("%w: missing bench_time", ErrReport)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("%w: no benchmarks", ErrReport)
	}
	seen := map[string]bool{}
	for _, bm := range r.Benchmarks {
		if bm.Name == "" {
			return fmt.Errorf("%w: unnamed benchmark", ErrReport)
		}
		if seen[bm.Name] {
			return fmt.Errorf("%w: duplicate benchmark %s", ErrReport, bm.Name)
		}
		seen[bm.Name] = true
		if bm.Iterations < 1 || bm.NsPerOp <= 0 {
			return fmt.Errorf("%w: %s: iterations=%d ns_per_op=%g", ErrReport, bm.Name, bm.Iterations, bm.NsPerOp)
		}
	}
	// corpus_prove is the proof-pipeline headline; reports from other
	// producers (the tpcload serving-path generator) legitimately have no
	// proof phase and leave it zero. Present-but-partial is still a bug.
	cp := r.CorpusProve
	if cp != (CorpusProve{}) {
		if cp.SequentialNs <= 0 || cp.ParallelNs <= 0 || cp.Workers < 1 || cp.Speedup <= 0 {
			return fmt.Errorf("%w: corpus_prove %+v", ErrReport, cp)
		}
	}
	return nil
}

// WriteFile validates the report and writes it as indented JSON.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("%w: %w", ErrReport, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("%w: %w", ErrReport, err)
	}
	return nil
}

// ReadReport loads and validates a BENCH_<date>.json file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrReport, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrReport, path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
