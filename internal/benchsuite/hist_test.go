package benchsuite

import (
	"testing"
	"time"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty hist: count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
}

func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Record(250 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if got != 250*time.Microsecond {
			t.Errorf("q%.3f = %v, want 250µs exactly (clamped to observed extremes)", q, got)
		}
	}
}

// TestHistQuantileAccuracy records a known uniform ramp and checks every
// quantile lands within the structure's ~3.2% relative error bound.
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	const n = 100_000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := time.Duration(q*n) * time.Microsecond
		got := h.Quantile(q)
		lo := time.Duration(float64(want) * 0.93)
		hi := time.Duration(float64(want) * 1.01)
		if got < lo || got > hi {
			t.Errorf("q%.3f = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
	if h.Min() != time.Microsecond || h.Max() != n*time.Microsecond {
		t.Errorf("extremes = [%v, %v], want [1µs, %v]", h.Min(), h.Max(), n*time.Microsecond)
	}
}

// TestHistMonotone pins that quantiles never decrease as q rises.
func TestHistMonotone(t *testing.T) {
	var h Hist
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(1+(i*i)%977) * time.Millisecond / 10)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%.2f gives %v after %v", q, v, prev)
		}
		prev = v
	}
}

// TestReportWithoutCorpusProve pins the schema relaxation: a serving-path
// report with no proof phase validates with a zero corpus_prove, while a
// partially-filled corpus_prove still fails.
func TestReportWithoutCorpusProve(t *testing.T) {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Date:          "2026-08-09",
		GoVersion:     "go1.22",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        4,
		BenchTime:     "500 txns",
		Benchmarks: []BenchResult{
			{Name: "tpcload/p50", Iterations: 500, NsPerOp: 1e6},
		},
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("zero corpus_prove should validate: %v", err)
	}
	r.CorpusProve = CorpusProve{SequentialNs: 5, Workers: 0}
	if err := r.Validate(); err == nil {
		t.Fatal("partial corpus_prove validated; want error")
	}
}
