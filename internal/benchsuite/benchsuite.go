// Package benchsuite holds the benchmark bodies shared by the root
// `go test -bench` harness and the cmd/specbench regression driver, plus
// the machine-readable report schema both emit (BENCH_<date>.json).
//
// Keeping the bodies here means the two entry points time exactly the same
// code paths: one benchmark per evaluation experiment E0..E10 (DESIGN.md's
// index) and a sequential-vs-parallel pair over the corpus's five proof
// obligations (E14).
package benchsuite

import (
	"sync"
	"testing"

	"speccat/internal/core/provesched"
	"speccat/internal/core/speclang"
	"speccat/internal/experiments"
	"speccat/internal/thesis"
	"speccat/internal/tpc"
)

// corpus is elaborated once per process (proofs skipped: benchmarks re-run
// them); sync.Once keeps the lazy initialization safe under b.RunParallel
// and -race.
var (
	corpusOnce sync.Once               //lint:allow noglobalstate once-guard for the corpus cache
	corpusEnv  *speclang.Env           //lint:allow noglobalstate written once under corpusOnce, immutable after
	corpusObs  []provesched.Obligation //lint:allow noglobalstate written once under corpusOnce, immutable after
	corpusErr  error                   //lint:allow noglobalstate written once under corpusOnce, immutable after
)

func corpus(b *testing.B) (*speclang.Env, []provesched.Obligation) {
	b.Helper()
	corpusOnce.Do(func() {
		corpusEnv, corpusErr = thesis.CorpusWithoutProofs()
		if corpusErr == nil {
			corpusObs, corpusErr = thesis.Obligations()
		}
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpusEnv, corpusObs
}

// Bench is one named benchmark body.
type Bench struct {
	// Name is the benchmark name without the "Benchmark" prefix.
	Name string
	// Fn is the body; it must call b.ReportAllocs itself if it wants
	// allocation figures (all suite bodies do).
	Fn func(b *testing.B)
}

// Suite returns the full benchmark list in experiment order. The two
// CorpusProve entries are the E14 measurement: same obligations, worker
// pool of one versus GOMAXPROCS.
func Suite() []Bench {
	return []Bench{
		{"E0_CorpusElaboration", benchCorpusElaboration},
		{"E1_Table31_BuildingBlocks", benchTable31},
		{"E2_Fig34_SeqDivision1", benchSeqDivision1},
		{"E3_Fig35_SeqDivision2", benchSeqDivision2},
		{"E4_Fig42_Serializability", proofBench("Serialize")},
		{"E5_Fig410_ConsistentState", proofBench("CSM")},
		{"E6_Fig418_RollbackRecovery", proofBench("RBR")},
		{"E7_Fig32_ModelCheck3PC", benchModelCheck},
		{"E8_Fig31_DistributedTxn_3PC", distributedBench(tpc.ThreePhase)},
		{"E8_Fig31_DistributedTxn_2PC", distributedBench(tpc.TwoPhase)},
		{"E9_Ablation_Modular", benchAblationModular},
		{"E9_Ablation_Monolithic", benchAblationMonolithic},
		{"E10_FailureInjection", benchFailureInjection},
		{"E18_ZipfMix_ExclusiveWrites", zipfMixBench(1.0)},
		{"E18_ZipfMix_IncTransfers", zipfMixBench(0)},
		{"E19_CommitPath_Unsharded", commitPathBench(1, false)},
		{"E19_CommitPath_ShardedGroup", commitPathBench(4, true)},
		{"E14_CorpusProve_Sequential", CorpusProveBench(1)},
		{"E14_CorpusProve_Parallel", CorpusProveBench(0)},
	}
}

// Lookup returns the named suite benchmark.
func Lookup(name string) (Bench, bool) {
	for _, bm := range Suite() {
		if bm.Name == name {
			return bm, true
		}
	}
	return Bench{}, false
}

func benchCorpusElaboration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := thesis.CorpusWithoutProofs(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable31(b *testing.B) {
	env, _ := corpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E1Table31(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func benchSeqDivision1(b *testing.B) {
	env, _ := corpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2SeqDivision1(env); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeqDivision2(b *testing.B) {
	env, _ := corpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3SeqDivision2(env); err != nil {
			b.Fatal(err)
		}
	}
}

// proofBench times one global-property proof (Figs. 4.2/4.10/4.18).
func proofBench(property string) func(*testing.B) {
	return func(b *testing.B) {
		env, _ := corpus(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := thesis.ProveProperty(env, property)
			if err != nil {
				b.Fatal(err)
			}
			if res.Proof.Stats.ProofLength == 0 {
				b.Fatal("empty proof")
			}
		}
	}
}

func benchModelCheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E7ModelCheck(2)
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Atomic || rows[0].Blocking != 0 {
			b.Fatal("3PC model-check failed")
		}
	}
}

func distributedBench(kind tpc.Protocol) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := experiments.E8Distributed(int64(i)+1, 20, kind)
			if err != nil {
				b.Fatal(err)
			}
			if r.Committed == 0 {
				b.Fatal("nothing committed")
			}
		}
	}
}

func benchAblationModular(b *testing.B) {
	env, _ := corpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prop := range thesis.GlobalProperties() {
			if _, err := thesis.ProveProperty(env, prop); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchAblationMonolithic(b *testing.B) {
	env, _ := corpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, prop := range thesis.GlobalProperties() {
			if _, err := thesis.ProveMonolithic(env, prop); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// zipfMixBench runs the E18 zipfian update shape under one locking
// regime per iteration — writeFraction 1.0 is blind exclusive writes,
// 0 the equivalent commutative increment-transfers — and reports the
// regime's conflict rate and commit throughput as custom metrics next to
// ns/op, so the commutativity win (and any mode-matrix regression that
// erodes it) is tracked by the same BENCH_<date>.json tooling as the
// timing numbers.
func zipfMixBench(writeFraction float64) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var committed, aborted int
		var ticks float64
		for i := 0; i < b.N; i++ {
			row, err := experiments.E18Sweep("bench", []int64{int64(i) + 1}, writeFraction)
			if err != nil {
				b.Fatal(err)
			}
			if len(row.Violated) != 0 {
				b.Fatalf("oracle violations: %v", row.Violated)
			}
			if row.Committed == 0 {
				b.Fatal("nothing committed")
			}
			committed += row.Committed
			aborted += row.Aborted
			ticks += row.Ticks
		}
		if n := committed + aborted; n > 0 {
			b.ReportMetric(float64(aborted)/float64(n), "conflict-rate")
		}
		if ticks > 0 {
			b.ReportMetric(float64(committed)/ticks*1000, "commits/ktick")
		}
	}
}

// commitPathBench runs the E19 cross-partition shape through one commit-path
// configuration per iteration — unsharded monolithic store versus 4-way
// hash shards with group-committed journal syncs — and reports commit
// throughput and the per-commit fsync bill as custom metrics next to
// ns/op, so a regression in either the sharded routing layer or the
// divergence-rule sync points shows up in the same BENCH_<date>.json
// tooling as the timing numbers.
func commitPathBench(shards int, group bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var committed, syncs int
		var ticks float64
		for i := 0; i < b.N; i++ {
			row, err := experiments.E19Sweep("bench", []int64{int64(i) + 1}, shards, group)
			if err != nil {
				b.Fatal(err)
			}
			if len(row.Violated) != 0 {
				b.Fatalf("oracle violations: %v", row.Violated)
			}
			if row.Committed == 0 {
				b.Fatal("nothing committed")
			}
			committed += row.Committed
			syncs += row.Syncs
			ticks += row.Ticks
		}
		if ticks > 0 {
			b.ReportMetric(float64(committed)/ticks*1000, "commits/ktick")
		}
		if group && committed > 0 {
			b.ReportMetric(float64(syncs)/float64(committed), "syncs/commit")
		}
	}
}

func benchFailureInjection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10FailureInjection(); err != nil {
			b.Fatal(err)
		}
	}
}

// CorpusProveBench times discharging all five corpus proof obligations on
// a pool of the given size (<= 0 means GOMAXPROCS). Each iteration uses a
// fresh clause cache so sequential and parallel arms do identical total
// work — the measured difference is pure scheduling.
func CorpusProveBench(workers int) func(*testing.B) {
	return func(b *testing.B) {
		env, obs := corpus(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := &provesched.Scheduler{Workers: workers}
			for _, r := range s.Run(env, obs) {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Obligation.Name, r.Err)
				}
			}
		}
	}
}
