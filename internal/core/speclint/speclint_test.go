package speclint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedFixture pins the full diagnostic set for the malformed
// fixture: every lint rule should fire exactly where expected.
func TestMalformedFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "malformed.sw"))
	if err != nil {
		t.Fatal(err)
	}
	diags := LintSource("malformed.sw", string(data))

	want := []string{
		"9: warning: unused-sort",
		"12: warning: unused-op",
		"15: error: duplicate-axiom",
		"24: error: undeclared-sort",
		"24: warning: unused-op",
		"25: error: undeclared-symbol",
		"25: warning: unused-axiom",
		"27: error: arity-mismatch",
		"27: warning: unused-axiom",
		"38: warning: unused-op",
		"41: error: rename-unknown-symbol",
		"44: error: morphism-not-total",
		"47: error: diagram-disconnected",
		"52: error: diagram-unknown-node",
		"53: error: diagram-arc-mismatch",
		"53: error: diagram-arc-mismatch",
		"58: error: wrong-kind",
		"60: error: prove-unknown-axiom",
		"61: error: prove-unknown-theorem",
		"62: error: unbound-name",
		"64: error: unbound-name",
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s: %s", d.Line, d.Severity, d.Rule))
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostic count = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !HasErrors(diags) {
		t.Error("malformed fixture should contain errors")
	}
}

// TestThesisCorpusClean is the acceptance gate: the three thesis
// transcriptions must lint completely clean. The handful of genuine
// thesis quirks (axioms whose names case-mismatch the ops they
// constrain, one never-used sort) carry reasoned `% lint:allow`
// comments in the corpus itself.
func TestThesisCorpusClean(t *testing.T) {
	corpus := filepath.Join("..", "speclang", "testdata", "thesis")
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sw") {
			continue
		}
		seen++
		data, err := os.ReadFile(filepath.Join(corpus, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range LintSource(e.Name(), string(data)) {
			t.Errorf("%s: unexpected finding: %s", e.Name(), d)
		}
	}
	if seen != 3 {
		t.Fatalf("expected 3 thesis corpus files, found %d", seen)
	}
}

// TestParseErrorDiagnostic checks that an unparseable file becomes a
// parse-error diagnostic instead of an error return.
func TestParseErrorDiagnostic(t *testing.T) {
	diags := LintSource("bad.sw", "X = spec\nsort\n")
	if len(diags) != 1 || diags[0].Rule != "parse-error" || diags[0].Severity != SevError {
		t.Fatalf("got %v, want a single parse-error", diags)
	}
	if !strings.Contains(diags[0].String(), "bad.sw:1: error: parse-error") {
		t.Errorf("rendered diagnostic %q missing standard prefix", diags[0])
	}
}

// TestCleanSpecNoFindings sanity-checks that a minimal well-formed file
// produces no diagnostics at all.
func TestCleanSpecNoFindings(t *testing.T) {
	src := `A = spec
sort S = Nat
op P : S -> Boolean
axiom p is
fa(x:S) P(x)
theorem q is
fa(x:S) P(x)
endspec
pr = prove q in A using p
`
	if diags := LintSource("clean.sw", src); len(diags) != 0 {
		t.Fatalf("clean spec produced diagnostics: %v", diags)
	}
	if HasErrors(nil) {
		t.Error("HasErrors(nil) should be false")
	}
}

// TestColimitApexChecks verifies prove statements resolve against the
// colimit apex (union of node signatures, with node-qualified names).
func TestColimitApexChecks(t *testing.T) {
	src := `A = spec
sort S = Nat
op P : S -> Boolean
axiom base is
fa(x:S) P(x)
theorem goal is
fa(x:S) P(x)
endspec
B = spec
sort S = Nat
op P : S -> Boolean
axiom base is
fa(x:S) P(x)
endspec
M = morphism A -> B {}
D = diagram {
a ++> A,
b ++> B,
i: a->b ++> M
}
C = colimit D
ok = prove goal in C using base a_base b_base
bad = prove goal in C using nothere
`
	diags := LintSource("colimit.sw", src)
	if len(diags) != 1 {
		t.Fatalf("got %v, want exactly one finding", diags)
	}
	if diags[0].Rule != "prove-unknown-axiom" || !strings.Contains(diags[0].Message, "nothere") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

// TestUnusedAxiomWarning pins both sides of the axiom-usage rule: an
// axiom cited by a prove's using list or sharing its name with an op
// (the thesis convention) is used; an axiom nothing can ever cite —
// typically a misspelling of that op name — warns.
func TestUnusedAxiomWarning(t *testing.T) {
	src := `A = spec
sort S = Nat
op Tick : S -> S
axiom Tick is
fa(x:S) Tick(x) = Tick(x)
axiom cited is
fa(x:S) Tick(x) = Tick(x)
axiom Tock is
fa(x:S) Tick(x) = Tick(x)
theorem goal is
fa(x:S) Tick(x) = Tick(x)
endspec
pr = prove goal in A using cited
`
	diags := LintSource("axioms.sw", src)
	if len(diags) != 1 {
		t.Fatalf("got %v, want exactly the Tock finding", diags)
	}
	d := diags[0]
	if d.Rule != "unused-axiom" || d.Severity != SevWarning || d.Line != 8 || !strings.Contains(d.Message, "Tock") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestLintAllow pins the suppression comment: a trailing allow covers
// its own line, a stand-alone allow covers the line below, an allow for
// a different rule suppresses nothing, and an allow without a reason is
// itself a finding.
func TestLintAllow(t *testing.T) {
	src := `A = spec
sort S = Nat
sort Dead % lint:allow unused-sort kept for the morphism exercise
% lint:allow unused-axiom the listing never cites it
axiom orphan is
fa(x:S) x = x
sort Doomed % lint:allow unused-op wrong rule, suppresses nothing
endspec
`
	diags := LintSource("allow.sw", src)
	if len(diags) != 1 || diags[0].Rule != "unused-sort" || diags[0].Line != 7 {
		t.Fatalf("got %v, want only the wrong-rule unused-sort at line 7", diags)
	}

	diags = LintSource("bare.sw", "B = spec\nsort S = Nat\nsort Dead % lint:allow unused-sort\nendspec\n")
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 3 || diags[1].Rule != "unused-sort" || diags[1].Line != 3 || diags[2].Rule != "malformed-allow" {
		t.Fatalf("got rules %v, want a reasonless allow that suppresses nothing plus its own finding", rules)
	}
	if diags[2].Severity != SevWarning || diags[2].Line != 3 {
		t.Errorf("malformed-allow = %s, want a warning on line 3", diags[2])
	}
}
