package speclint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedFixture pins the full diagnostic set for the malformed
// fixture: every lint rule should fire exactly where expected.
func TestMalformedFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "malformed.sw"))
	if err != nil {
		t.Fatal(err)
	}
	diags := LintSource("malformed.sw", string(data))

	want := []string{
		"9: warning: unused-sort",
		"12: warning: unused-op",
		"15: error: duplicate-axiom",
		"24: error: undeclared-sort",
		"24: warning: unused-op",
		"25: error: undeclared-symbol",
		"27: error: arity-mismatch",
		"38: warning: unused-op",
		"41: error: rename-unknown-symbol",
		"44: error: morphism-not-total",
		"47: error: diagram-disconnected",
		"52: error: diagram-unknown-node",
		"53: error: diagram-arc-mismatch",
		"53: error: diagram-arc-mismatch",
		"58: error: wrong-kind",
		"60: error: prove-unknown-axiom",
		"61: error: prove-unknown-theorem",
		"62: error: unbound-name",
		"64: error: unbound-name",
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s: %s", d.Line, d.Severity, d.Rule))
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostic count = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !HasErrors(diags) {
		t.Error("malformed fixture should contain errors")
	}
}

// TestThesisCorpusClean is the acceptance gate: the three thesis
// transcriptions must lint with zero errors (warnings are allowed — the
// corpus genuinely declares one unused sort).
func TestThesisCorpusClean(t *testing.T) {
	corpus := filepath.Join("..", "speclang", "testdata", "thesis")
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sw") {
			continue
		}
		seen++
		data, err := os.ReadFile(filepath.Join(corpus, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		diags := LintSource(e.Name(), string(data))
		for _, d := range diags {
			if d.Severity == SevError {
				t.Errorf("%s: unexpected error: %s", e.Name(), d)
			} else {
				t.Logf("%s: %s", e.Name(), d)
			}
		}
	}
	if seen != 3 {
		t.Fatalf("expected 3 thesis corpus files, found %d", seen)
	}
}

// TestParseErrorDiagnostic checks that an unparseable file becomes a
// parse-error diagnostic instead of an error return.
func TestParseErrorDiagnostic(t *testing.T) {
	diags := LintSource("bad.sw", "X = spec\nsort\n")
	if len(diags) != 1 || diags[0].Rule != "parse-error" || diags[0].Severity != SevError {
		t.Fatalf("got %v, want a single parse-error", diags)
	}
	if !strings.Contains(diags[0].String(), "bad.sw:1: error: parse-error") {
		t.Errorf("rendered diagnostic %q missing standard prefix", diags[0])
	}
}

// TestCleanSpecNoFindings sanity-checks that a minimal well-formed file
// produces no diagnostics at all.
func TestCleanSpecNoFindings(t *testing.T) {
	src := `A = spec
sort S = Nat
op P : S -> Boolean
axiom p is
fa(x:S) P(x)
theorem q is
fa(x:S) P(x)
endspec
pr = prove q in A using p
`
	if diags := LintSource("clean.sw", src); len(diags) != 0 {
		t.Fatalf("clean spec produced diagnostics: %v", diags)
	}
	if HasErrors(nil) {
		t.Error("HasErrors(nil) should be false")
	}
}

// TestColimitApexChecks verifies prove statements resolve against the
// colimit apex (union of node signatures, with node-qualified names).
func TestColimitApexChecks(t *testing.T) {
	src := `A = spec
sort S = Nat
op P : S -> Boolean
axiom base is
fa(x:S) P(x)
theorem goal is
fa(x:S) P(x)
endspec
B = spec
sort S = Nat
op P : S -> Boolean
axiom base is
fa(x:S) P(x)
endspec
M = morphism A -> B {}
D = diagram {
a ++> A,
b ++> B,
i: a->b ++> M
}
C = colimit D
ok = prove goal in C using base a_base b_base
bad = prove goal in C using nothere
`
	diags := LintSource("colimit.sw", src)
	if len(diags) != 1 {
		t.Fatalf("got %v, want exactly one finding", diags)
	}
	if diags[0].Rule != "prove-unknown-axiom" || !strings.Contains(diags[0].Message, "nothere") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}
