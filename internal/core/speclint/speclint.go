// Package speclint statically checks well-formedness of specification
// files written in the project's Specware-like language (internal/core/
// speclang) — the domain-level counterpart of the Go design-rule
// analyzers in internal/analysis. It works purely at the name level over
// the parsed AST, so it runs before (and much faster than) elaboration
// or any prover: the same discipline the paper applies to composition,
// where cheap static checks on signatures and diagrams catch most errors
// before proof obligations are ever generated.
//
// Checks: axioms/theorems referencing undeclared symbols, arity
// mismatches, duplicate axiom/theorem names, unused sorts, ops and
// axioms (warning), morphism totality pre-checks (every source symbol
// needs an image in the target), `prove ... using` lists naming axioms
// absent from the spec, and ill-shaped or disconnected colimit
// diagrams.
//
// Individual findings can be suppressed with a
// `% lint:allow <rule> <reason>` comment, either trailing on the
// flagged line or stand-alone on the line above it; the reason is
// mandatory.
package speclint

import (
	"fmt"
	"sort"
	"strings"

	"speccat/internal/core/speclang"
)

// Severity grades a finding.
type Severity int

// Severities.
const (
	// SevWarning findings are advisory: the file still elaborates.
	SevWarning Severity = iota + 1
	// SevError findings mean elaboration or composition will misbehave.
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one spec-lint finding.
type Diagnostic struct {
	File     string
	Line     int
	Rule     string
	Severity Severity
	Message  string
}

// String renders the diagnostic in file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s: %s", d.File, d.Line, d.Severity, d.Rule, d.Message)
}

// LintSource parses and lints one source file. Parse failures are
// reported as a single parse-error diagnostic rather than an error: a
// file that does not parse is the ultimate well-formedness finding.
//
// Because the lexer discards % comments, suppression is handled here
// over the raw source: a `% lint:allow <rule> <reason>` comment
// suppresses findings of that rule on its own line (trailing comment)
// or on the line below (stand-alone comment line). The reason is
// mandatory — an allow that cannot say why is itself a finding.
func LintSource(file, src string) []Diagnostic {
	f, err := speclang.Parse(src)
	if err != nil {
		return []Diagnostic{{
			File:     file,
			Line:     1,
			Rule:     "parse-error",
			Severity: SevError,
			Message:  err.Error(),
		}}
	}
	return applyAllows(file, src, Lint(file, f))
}

// applyAllows filters diags through the file's `% lint:allow` comments
// and appends findings for malformed allows.
func applyAllows(file, src string, diags []Diagnostic) []Diagnostic {
	allowed := map[int]map[string]bool{} // line -> rules suppressed there
	var extra []Diagnostic
	for i, ln := range strings.Split(src, "\n") {
		pos := strings.Index(ln, "%")
		if pos < 0 {
			continue
		}
		rest, ok := strings.CutPrefix(strings.TrimSpace(ln[pos+1:]), "lint:allow")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		lineNo := i + 1
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			extra = append(extra, Diagnostic{
				File:     file,
				Line:     lineNo,
				Rule:     "malformed-allow",
				Severity: SevWarning,
				Message:  "% lint:allow needs a rule name and a reason",
			})
			continue
		}
		target := lineNo
		if strings.TrimSpace(ln[:pos]) == "" {
			target = lineNo + 1 // a stand-alone comment covers the next line
		}
		if allowed[target] == nil {
			allowed[target] = map[string]bool{}
		}
		allowed[target][fields[0]] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if !allowed[d.Line][d.Rule] {
			out = append(out, d)
		}
	}
	out = append(out, extra...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Lint checks a parsed file.
func Lint(file string, f *speclang.File) []Diagnostic {
	l := &linter{file: file, env: map[string]*binding{}, used: map[string]bool{}}
	for _, stmt := range f.Stmts {
		l.stmt(stmt)
	}
	l.reportUnused()
	sort.SliceStable(l.diags, func(i, j int) bool { return l.diags[i].Line < l.diags[j].Line })
	return l.diags
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// symSpec is the name-level view of a specification: its symbols and
// named properties. Ops map to their arity.
type symSpec struct {
	sorts    map[string]bool
	ops      map[string]int
	predOps  map[string]bool // ops with Boolean result
	axioms   map[string]bool
	theorems map[string]bool
}

func newSymSpec() *symSpec {
	return &symSpec{
		sorts:    map[string]bool{},
		ops:      map[string]int{},
		predOps:  map[string]bool{},
		axioms:   map[string]bool{},
		theorems: map[string]bool{},
	}
}

func (s *symSpec) clone() *symSpec {
	c := newSymSpec()
	for k := range s.sorts {
		c.sorts[k] = true
	}
	for k, v := range s.ops {
		c.ops[k] = v
	}
	for k := range s.predOps {
		c.predOps[k] = true
	}
	for k := range s.axioms {
		c.axioms[k] = true
	}
	for k := range s.theorems {
		c.theorems[k] = true
	}
	return c
}

func (s *symSpec) include(o *symSpec) {
	for k := range o.sorts {
		s.sorts[k] = true
	}
	for k, v := range o.ops {
		s.ops[k] = v
	}
	for k := range o.predOps {
		s.predOps[k] = true
	}
	for k := range o.axioms {
		s.axioms[k] = true
	}
	for k := range o.theorems {
		s.theorems[k] = true
	}
}

// binding is one named value in the lint-time environment.
type binding struct {
	kind speclang.ValueKind
	spec *symSpec // specs, translates, colimits
	// morphisms: declared endpoint spec names.
	morphSrc, morphDst string
	// diagrams: node label -> spec binding name, plus arc endpoints.
	nodes map[string]string
	arcs  [][2]string
}

// declSite records where a sort/op was first declared, for unused checks.
type declSite struct {
	name string
	line int
	in   string
}

type linter struct {
	file      string
	env       map[string]*binding
	used       map[string]bool // symbol names referenced anywhere
	sortDecls  []declSite
	opDecls    []declSite
	axiomDecls []declSite
	diags      []Diagnostic
}

func (l *linter) report(line int, rule string, sev Severity, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{
		File:     l.file,
		Line:     line,
		Rule:     rule,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

func isBaseSort(name string) bool { return name == "Nat" || name == "Boolean" || name == "" }

func (l *linter) lookupSpec(name string, line int) *symSpec {
	b, ok := l.env[name]
	if !ok {
		l.report(line, "unbound-name", SevError, "%s is not defined", name)
		return nil
	}
	if b.spec == nil {
		l.report(line, "wrong-kind", SevError, "%s is not a specification", name)
		return nil
	}
	return b.spec
}

func (l *linter) stmt(stmt speclang.Stmt) {
	name := stmt.Name
	switch e := stmt.Expr.(type) {
	case *speclang.SpecExpr:
		l.bind(name, &binding{kind: speclang.KindSpec, spec: l.checkSpec(name, e, stmt.Line)})
	case *speclang.TranslateExpr:
		l.bind(name, &binding{kind: speclang.KindSpec, spec: l.checkTranslate(e, stmt.Line)})
	case *speclang.MorphismExpr:
		l.checkMorphism(e, stmt.Line)
		l.bind(name, &binding{kind: speclang.KindMorphism, morphSrc: e.Source, morphDst: e.Target})
	case *speclang.DiagramExpr:
		l.bind(name, l.checkDiagram(e, stmt.Line))
	case *speclang.ColimitExpr:
		l.bind(name, l.checkColimit(e, stmt.Line))
	case *speclang.ProveExpr:
		l.checkProve(e, stmt.Line)
		l.bind(name, &binding{kind: speclang.KindProof})
	case *speclang.PrintExpr:
		if _, ok := l.env[e.Name]; !ok {
			l.report(stmt.Line, "unbound-name", SevError, "print %s: not defined", e.Name)
		}
		l.bind(name, &binding{kind: speclang.KindText})
	}
}

func (l *linter) bind(name string, b *binding) {
	if name == "" {
		return
	}
	l.env[name] = b
}

// checkSpec builds the name-level table of a spec block while checking
// declarations and formulas.
func (l *linter) checkSpec(name string, e *speclang.SpecExpr, line int) *symSpec {
	s := newSymSpec()
	for _, imp := range e.Imports {
		if imported := l.lookupSpec(imp, line); imported != nil {
			s.include(imported)
		}
	}
	for _, sd := range e.Sorts {
		if !s.sorts[sd.Name] {
			l.sortDecls = append(l.sortDecls, declSite{name: sd.Name, line: sd.Line, in: name})
		}
		s.sorts[sd.Name] = true
		for _, ref := range defSortRefs(sd.Def) {
			l.used[ref] = true
			if !s.sorts[ref] && !isBaseSort(ref) {
				l.report(sd.Line, "undeclared-sort", SevWarning,
					"sort %s definition references undeclared sort %s", sd.Name, ref)
			}
		}
	}
	for _, od := range e.Ops {
		if prev, dup := s.ops[od.Name]; dup && prev != len(od.Args) {
			l.report(od.Line, "op-redeclared", SevError,
				"op %s redeclared with arity %d (was %d)", od.Name, len(od.Args), prev)
		}
		if _, dup := s.ops[od.Name]; !dup {
			l.opDecls = append(l.opDecls, declSite{name: od.Name, line: od.Line, in: name})
		}
		s.ops[od.Name] = len(od.Args)
		if od.Result == "Boolean" {
			s.predOps[od.Name] = true
		}
		for _, a := range od.Args {
			l.used[a] = true
			if !s.sorts[a] && !isBaseSort(a) {
				l.report(od.Line, "undeclared-sort", SevError,
					"op %s argument sort %s is not declared", od.Name, a)
			}
		}
		l.used[od.Result] = true
		if !s.sorts[od.Result] && !isBaseSort(od.Result) {
			l.report(od.Line, "undeclared-sort", SevError,
				"op %s result sort %s is not declared", od.Name, od.Result)
		}
	}
	own := map[string]bool{}
	for _, ax := range e.Axioms {
		if own["a:"+ax.Name] {
			l.report(ax.Line, "duplicate-axiom", SevError, "duplicate axiom name %s", ax.Name)
		}
		own["a:"+ax.Name] = true
		if !s.axioms[ax.Name] {
			l.axiomDecls = append(l.axiomDecls, declSite{name: ax.Name, line: ax.Line, in: name})
		}
		s.axioms[ax.Name] = true
		l.checkFormula(s, ax.Formula, map[string]bool{}, ax.Line)
	}
	for _, th := range e.Theorems {
		if own["t:"+th.Name] {
			l.report(th.Line, "duplicate-axiom", SevError, "duplicate theorem name %s", th.Name)
		}
		own["t:"+th.Name] = true
		s.theorems[th.Name] = true
		l.checkFormula(s, th.Formula, map[string]bool{}, th.Line)
	}
	return s
}

// defSortRefs extracts sort names referenced by a sort definition, which
// is either an alias ("Clockvalues") or a record ("{p:Processors, ...}").
func defSortRefs(def string) []string {
	if def == "" {
		return nil
	}
	if !strings.HasPrefix(def, "{") {
		return []string{def}
	}
	var refs []string
	for _, field := range strings.Split(strings.Trim(def, "{}"), ",") {
		if _, sortName, ok := strings.Cut(field, ":"); ok {
			refs = append(refs, strings.TrimSpace(sortName))
		}
	}
	return refs
}

// checkFormula walks a surface formula checking symbol references
// against the spec's signature, with bound variables in scope.
func (l *linter) checkFormula(s *symSpec, f speclang.FormulaNode, bound map[string]bool, line int) {
	switch x := f.(type) {
	case *speclang.FQuant:
		inner := map[string]bool{}
		for k := range bound {
			inner[k] = true
		}
		for _, b := range x.Binders {
			inner[b.Name] = true
			if b.Sort != "" {
				l.used[b.Sort] = true
				if !s.sorts[b.Sort] && !isBaseSort(b.Sort) {
					l.report(line, "undeclared-sort", SevWarning,
						"binder %s has undeclared sort %s", b.Name, b.Sort)
				}
			}
		}
		l.checkFormula(s, x.Body, inner, line)
	case *speclang.FBinary:
		l.checkFormula(s, x.L, bound, line)
		l.checkFormula(s, x.R, bound, line)
	case *speclang.FNot:
		l.checkFormula(s, x.Sub, bound, line)
	case *speclang.FIfThenElse:
		l.checkFormula(s, x.Cond, bound, line)
		l.checkFormula(s, x.Then, bound, line)
		if x.Else != nil {
			l.checkFormula(s, x.Else, bound, line)
		}
	case *speclang.FAtom:
		l.used[x.Name] = true
		arity, declared := s.ops[x.Name]
		switch {
		case !declared:
			l.report(line, "undeclared-symbol", SevError,
				"predicate %s is not declared", x.Name)
		case arity != len(x.Args):
			l.report(line, "arity-mismatch", SevError,
				"predicate %s declared with arity %d, applied to %d args", x.Name, arity, len(x.Args))
		case !s.predOps[x.Name]:
			l.report(line, "non-predicate-atom", SevError,
				"%s used as a predicate but its result sort is not Boolean", x.Name)
		}
		for _, a := range x.Args {
			l.checkTerm(s, a, bound, line)
		}
	case *speclang.FCompare:
		l.checkTerm(s, x.L, bound, line)
		l.checkTerm(s, x.R, bound, line)
	}
}

// checkTerm checks one surface term.
func (l *linter) checkTerm(s *symSpec, t speclang.TermNode, bound map[string]bool, line int) {
	switch x := t.(type) {
	case *speclang.TName:
		if bound[x.Name] {
			return
		}
		l.used[x.Name] = true
		arity, declared := s.ops[x.Name]
		if !declared {
			l.report(line, "undeclared-symbol", SevError,
				"identifier %s is neither a bound variable nor a declared op", x.Name)
			return
		}
		if arity != 0 {
			l.report(line, "arity-mismatch", SevError,
				"%s used as a constant but declared with arity %d", x.Name, arity)
		}
	case *speclang.TApply:
		if x.Name == "not" && len(x.Args) == 1 {
			// `~(term)` parses to the built-in term function "not".
			l.checkTerm(s, x.Args[0], bound, line)
			return
		}
		l.used[x.Name] = true
		arity, declared := s.ops[x.Name]
		switch {
		case !declared:
			l.report(line, "undeclared-symbol", SevError,
				"function %s is not declared", x.Name)
		case arity != len(x.Args):
			l.report(line, "arity-mismatch", SevError,
				"function %s declared with arity %d, applied to %d args", x.Name, arity, len(x.Args))
		}
		for _, a := range x.Args {
			l.checkTerm(s, a, bound, line)
		}
	case *speclang.TArith:
		l.checkTerm(s, x.L, bound, line)
		l.checkTerm(s, x.R, bound, line)
	case *speclang.TNumber:
		// Numerals are always well-formed.
	}
}

// checkTranslate builds the renamed copy of the source table.
func (l *linter) checkTranslate(e *speclang.TranslateExpr, line int) *symSpec {
	src := l.lookupSpec(e.Source, line)
	if src == nil {
		return nil
	}
	rename := map[string]string{}
	for _, rp := range e.Renames {
		l.used[rp.From] = true
		l.used[rp.To] = true
		if _, dup := rename[rp.From]; dup {
			l.report(line, "duplicate-rename", SevError,
				"translate renames %s twice", rp.From)
			continue
		}
		rename[rp.From] = rp.To
		if !src.sorts[rp.From] {
			if _, isOp := src.ops[rp.From]; !isOp {
				l.report(line, "rename-unknown-symbol", SevError,
					"translate of %s renames %s, which it does not declare", e.Source, rp.From)
			}
		}
	}
	out := newSymSpec()
	ren := func(n string) string {
		if to, ok := rename[n]; ok {
			return to
		}
		return n
	}
	for k := range src.sorts {
		out.sorts[ren(k)] = true
	}
	for k, v := range src.ops {
		out.ops[ren(k)] = v
	}
	for k := range src.predOps {
		out.predOps[ren(k)] = true
	}
	for k := range src.axioms {
		out.axioms[k] = true
	}
	for k := range src.theorems {
		out.theorems[k] = true
	}
	return out
}

// checkMorphism runs the totality pre-checks of a morphism expression:
// every rename source must exist, and every source symbol must have an
// image (mapped or identity) in the target with matching arity.
func (l *linter) checkMorphism(e *speclang.MorphismExpr, line int) {
	src := l.lookupSpec(e.Source, line)
	dst := l.lookupSpec(e.Target, line)
	rename := map[string]string{}
	for _, rp := range e.Renames {
		l.used[rp.From] = true
		l.used[rp.To] = true
		if _, dup := rename[rp.From]; dup {
			l.report(line, "duplicate-rename", SevError,
				"morphism %s -> %s maps %s twice", e.Source, e.Target, rp.From)
			continue
		}
		rename[rp.From] = rp.To
		if src != nil && !src.sorts[rp.From] {
			if _, isOp := src.ops[rp.From]; !isOp {
				l.report(line, "morphism-unknown-symbol", SevError,
					"morphism maps %s, which source %s does not declare", rp.From, e.Source)
			}
		}
	}
	if src == nil || dst == nil {
		return
	}
	image := func(n string) string {
		if to, ok := rename[n]; ok {
			return to
		}
		return n
	}
	for srt := range src.sorts {
		img := image(srt)
		if !dst.sorts[img] && !isBaseSort(img) {
			l.report(line, "morphism-not-total", SevError,
				"sort %s has no image in target %s (maps to %s)", srt, e.Target, img)
		}
	}
	for op, arity := range src.ops {
		img := image(op)
		dstArity, ok := dst.ops[img]
		if !ok {
			l.report(line, "morphism-not-total", SevError,
				"op %s has no image in target %s (maps to %s)", op, e.Target, img)
			continue
		}
		if dstArity != arity {
			l.report(line, "morphism-arity-mismatch", SevError,
				"op %s (arity %d) maps to %s (arity %d) in %s", op, arity, img, dstArity, e.Target)
		}
	}
}

// checkDiagram validates shape: unique labeled nodes bound to specs,
// arcs between declared nodes with endpoint-consistent morphisms, and a
// connected underlying graph (a disconnected diagram's colimit is a
// disjoint union — never what the composition chains intend).
func (l *linter) checkDiagram(e *speclang.DiagramExpr, line int) *binding {
	b := &binding{kind: speclang.KindDiagram, nodes: map[string]string{}}
	for _, n := range e.Nodes {
		if _, dup := b.nodes[n.Label]; dup {
			l.report(n.Line, "diagram-duplicate-node", SevError, "duplicate node label %s", n.Label)
			continue
		}
		l.lookupSpec(n.Spec, n.Line)
		b.nodes[n.Label] = n.Spec
	}
	for _, a := range e.Arcs {
		fromSpec, okFrom := b.nodes[a.From]
		toSpec, okTo := b.nodes[a.To]
		if !okFrom {
			l.report(a.Line, "diagram-unknown-node", SevError, "arc %s references unknown node %s", a.Label, a.From)
		}
		if !okTo {
			l.report(a.Line, "diagram-unknown-node", SevError, "arc %s references unknown node %s", a.Label, a.To)
		}
		var mSrc, mDst string
		switch m := a.M.(type) {
		case *speclang.MorphismExpr:
			l.checkMorphism(m, a.Line)
			mSrc, mDst = m.Source, m.Target
		case *speclang.MorphismRef:
			mb, ok := l.env[m.Name]
			if !ok {
				l.report(a.Line, "unbound-name", SevError, "arc %s references undefined morphism %s", a.Label, m.Name)
				continue
			}
			if mb.kind != speclang.KindMorphism {
				l.report(a.Line, "wrong-kind", SevError, "arc %s: %s is not a morphism", a.Label, m.Name)
				continue
			}
			mSrc, mDst = mb.morphSrc, mb.morphDst
		}
		if okFrom && mSrc != "" && mSrc != fromSpec {
			l.report(a.Line, "diagram-arc-mismatch", SevError,
				"arc %s: morphism source %s but node %s is %s", a.Label, mSrc, a.From, fromSpec)
		}
		if okTo && mDst != "" && mDst != toSpec {
			l.report(a.Line, "diagram-arc-mismatch", SevError,
				"arc %s: morphism target %s but node %s is %s", a.Label, mDst, a.To, toSpec)
		}
		if okFrom && okTo {
			b.arcs = append(b.arcs, [2]string{a.From, a.To})
		}
	}
	if len(b.nodes) >= 2 {
		if n := componentCount(b.nodes, b.arcs); n > 1 {
			l.report(line, "diagram-disconnected", SevError,
				"diagram has %d disconnected components; its colimit is a disjoint union, not a composition", n)
		}
	}
	return b
}

// componentCount counts connected components of the underlying
// undirected node graph.
func componentCount(nodes map[string]string, arcs [][2]string) int {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for n := range nodes {
		parent[n] = n
	}
	for _, a := range arcs {
		parent[find(a[0])] = find(a[1])
	}
	roots := map[string]bool{}
	for n := range nodes {
		roots[find(n)] = true
	}
	return len(roots)
}

// checkColimit resolves the diagram and produces the apex's name-level
// table: the union of the node tables (colimit identification can only
// merge classes, so the union over-approximates — which is the safe
// direction for presence checks).
func (l *linter) checkColimit(e *speclang.ColimitExpr, line int) *binding {
	db, ok := l.env[e.Diagram]
	if !ok {
		l.report(line, "unbound-name", SevError, "colimit of undefined diagram %s", e.Diagram)
		return &binding{kind: speclang.KindColimit, spec: newSymSpec()}
	}
	if db.kind != speclang.KindDiagram {
		l.report(line, "wrong-kind", SevError, "colimit of %s, which is not a diagram", e.Diagram)
		return &binding{kind: speclang.KindColimit, spec: newSymSpec()}
	}
	apex := newSymSpec()
	for label, specName := range db.nodes {
		nb, ok := l.env[specName]
		if !ok || nb.spec == nil {
			continue
		}
		apex.include(nb.spec)
		// The colimit qualifies clashing axiom/theorem names with the
		// node label; make both spellings findable for prove checks.
		for ax := range nb.spec.axioms {
			apex.axioms[label+"_"+ax] = true
		}
		for th := range nb.spec.theorems {
			apex.theorems[label+"_"+th] = true
		}
	}
	return &binding{kind: speclang.KindColimit, spec: apex}
}

// checkProve verifies the theorem and every axiom in the using list
// exist in the named spec.
func (l *linter) checkProve(e *speclang.ProveExpr, line int) {
	s := l.lookupSpec(e.In, line)
	if s == nil {
		return
	}
	if !s.theorems[e.Theorem] {
		l.report(line, "prove-unknown-theorem", SevError,
			"prove %s in %s: no such theorem", e.Theorem, e.In)
	}
	for _, ax := range e.Using {
		// Axiom names share the listings' namespace with ops (the thesis
		// names axioms after the op they constrain), so a `using` mention
		// counts as use for the unused-symbol pass.
		l.used[ax] = true
		if !s.axioms[ax] {
			l.report(line, "prove-unknown-axiom", SevError,
				"prove %s in %s: using names axiom %s, which %s does not contain", e.Theorem, e.In, ax, e.In)
		}
	}
}

// reportUnused emits warnings for sorts and ops that are declared but
// never referenced anywhere in the file (op profiles, sort definitions,
// formulas, rename lists). Unused symbols are dead weight that every
// downstream colimit drags along.
func (l *linter) reportUnused() {
	for _, d := range l.sortDecls {
		if !l.used[d.name] {
			l.report(d.line, "unused-sort", SevWarning,
				"sort %s declared in %s is never referenced", d.name, d.in)
		}
	}
	for _, d := range l.opDecls {
		if !l.used[d.name] {
			l.report(d.line, "unused-op", SevWarning,
				"op %s declared in %s is never referenced", d.name, d.in)
		}
	}
	// An axiom is "used" when its name appears anywhere — typically a
	// `prove ... using` list, or (thesis convention) when it shares its
	// name with the op it constrains. An axiom nothing can ever cite is
	// usually a misspelling of that op name.
	for _, d := range l.axiomDecls {
		if !l.used[d.name] {
			l.report(d.line, "unused-axiom", SevWarning,
				"axiom %s declared in %s is never cited by a proof or op name", d.name, d.in)
		}
	}
}
