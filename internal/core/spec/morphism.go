package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"speccat/internal/core/logic"
	"speccat/internal/core/prover"
)

// ErrObligation is wrapped when a morphism's proof obligation (axiom must
// translate to a theorem of the target) cannot be discharged.
var ErrObligation = errors.New("spec: morphism proof obligation failed")

// Morphism is a specification morphism m : Source -> Target: a map from the
// sorts and operations of Source to those of Target such that (a) source
// operations are translated compatibly (profiles map consistently) and
// (b) axioms are translated to theorems of the target.
type Morphism struct {
	Name   string
	Source *Spec
	Target *Spec
	// SortMap maps source sort names to target sort names. Unmapped sorts
	// are mapped identically when the target declares the same name.
	SortMap map[string]string
	// OpMap maps source op names to target op names; same identity default.
	OpMap map[string]string
}

// NewMorphism builds a morphism with the given (possibly partial) maps.
// Nil maps are treated as empty.
func NewMorphism(name string, src, dst *Spec, sortMap, opMap map[string]string) *Morphism {
	if sortMap == nil {
		sortMap = map[string]string{}
	}
	if opMap == nil {
		opMap = map[string]string{}
	}
	return &Morphism{Name: name, Source: src, Target: dst, SortMap: sortMap, OpMap: opMap}
}

// MapSort returns the image of a source sort (identity by default).
func (m *Morphism) MapSort(name string) string {
	if to, ok := m.SortMap[name]; ok {
		return to
	}
	return name
}

// MapOp returns the image of a source op (identity by default).
func (m *Morphism) MapOp(name string) string {
	if to, ok := m.OpMap[name]; ok {
		return to
	}
	return name
}

// renameMap builds the combined symbol-rename map used on formulas.
func (m *Morphism) renameMap() map[string]string {
	r := make(map[string]string, len(m.SortMap)+len(m.OpMap))
	for k, v := range m.OpMap {
		r[k] = v
	}
	for k, v := range m.SortMap {
		r["sort:"+k] = v
	}
	return r
}

// TranslateFormula applies the morphism's symbol mapping to a formula.
func (m *Morphism) TranslateFormula(f *logic.Formula) *logic.Formula {
	return f.Rename(m.renameMap())
}

// CheckSignature verifies requirement (b) of the definition: every source
// sort maps to a target sort and every source op maps to a target op with a
// compatible profile (same arity, argument/result sorts map pointwise).
func (m *Morphism) CheckSignature() error {
	for _, s := range m.Source.Sig.Sorts {
		to := m.MapSort(s.Name)
		if !m.Target.HasSort(to) && !isBaseSort(to) {
			return fmt.Errorf("%w: morphism %s: sort %s ↦ %s not in target %s",
				ErrUnknownSymbol, m.Name, s.Name, to, m.Target.Name)
		}
	}
	for _, o := range m.Source.Sig.Ops {
		to := m.MapOp(o.Name)
		dst, ok := m.Target.FindOp(to)
		if !ok {
			return fmt.Errorf("%w: morphism %s: op %s ↦ %s not in target %s",
				ErrUnknownSymbol, m.Name, o.Name, to, m.Target.Name)
		}
		if dst.Arity() != o.Arity() {
			return fmt.Errorf("%w: morphism %s: op %s ↦ %s arity %d ≠ %d",
				ErrIllFormed, m.Name, o.Name, to, o.Arity(), dst.Arity())
		}
		for i, a := range o.Args {
			if m.MapSort(a) != dst.Args[i] {
				return fmt.Errorf("%w: morphism %s: op %s arg %d sort %s ↦ %s, target declares %s",
					ErrIllFormed, m.Name, o.Name, i, a, m.MapSort(a), dst.Args[i])
			}
		}
		if m.MapSort(o.Result) != dst.Result {
			return fmt.Errorf("%w: morphism %s: op %s result sort %s ↦ %s, target declares %s",
				ErrIllFormed, m.Name, o.Name, o.Result, m.MapSort(o.Result), dst.Result)
		}
	}
	return nil
}

func isBaseSort(name string) bool { return name == "Nat" || name == BoolSort }

// ObligationMode selects how axiom-to-theorem obligations are discharged.
type ObligationMode int

const (
	// BySyntax accepts an obligation when the translated axiom is
	// syntactically an axiom or theorem of the target (the common case for
	// inclusion-style morphisms).
	BySyntax ObligationMode = iota + 1
	// ByProof additionally runs the resolution prover on obligations that
	// fail the syntactic check, with the target's axioms as premises.
	ByProof
)

// CheckObligations verifies requirement (a): each source axiom, translated
// along the morphism, must be a theorem of the target.
func (m *Morphism) CheckObligations(mode ObligationMode, pr *prover.Prover) error {
	for _, ax := range m.Source.Axioms {
		translated := m.TranslateFormula(ax.Formula)
		if m.targetStates(translated) {
			continue
		}
		if mode == BySyntax {
			return fmt.Errorf("%w: morphism %s: axiom %s does not translate to a target statement",
				ErrObligation, m.Name, ax.Name)
		}
		if pr == nil {
			pr = prover.New()
		}
		premises := make([]prover.NamedFormula, 0, len(m.Target.Axioms))
		for _, ta := range m.Target.Axioms {
			premises = append(premises, prover.NamedFormula{Name: ta.Name, Formula: ta.Formula})
		}
		if _, err := pr.Prove(premises, prover.NamedFormula{Name: ax.Name, Formula: translated}); err != nil {
			return fmt.Errorf("%w: morphism %s: axiom %s: %w", ErrObligation, m.Name, ax.Name, err)
		}
	}
	return nil
}

// targetStates reports whether f is syntactically among the target's axioms
// or theorems (up to formula equality).
func (m *Morphism) targetStates(f *logic.Formula) bool {
	for _, a := range m.Target.Axioms {
		if a.Formula.Equal(f) {
			return true
		}
	}
	for _, t := range m.Target.Theorems {
		if t.Formula.Equal(f) {
			return true
		}
	}
	return false
}

// Verify checks the signature condition and then the obligations.
func (m *Morphism) Verify(mode ObligationMode, pr *prover.Prover) error {
	if err := m.CheckSignature(); err != nil {
		return err
	}
	return m.CheckObligations(mode, pr)
}

// Compose returns the composite morphism n∘m : m.Source -> n.Target
// (apply m first, then n). It fails when the middle specs differ.
func Compose(m, n *Morphism) (*Morphism, error) {
	if m.Target != n.Source {
		return nil, fmt.Errorf("%w: compose %s;%s: middle specs differ (%s vs %s)",
			ErrIllFormed, m.Name, n.Name, m.Target.Name, n.Source.Name)
	}
	out := NewMorphism(m.Name+";"+n.Name, m.Source, n.Target, map[string]string{}, map[string]string{})
	for _, s := range m.Source.Sig.Sorts {
		out.SortMap[s.Name] = n.MapSort(m.MapSort(s.Name))
	}
	for _, o := range m.Source.Sig.Ops {
		out.OpMap[o.Name] = n.MapOp(m.MapOp(o.Name))
	}
	return out, nil
}

// Identity returns the identity morphism on s.
func Identity(s *Spec) *Morphism {
	return NewMorphism("id_"+s.Name, s, s, map[string]string{}, map[string]string{})
}

// Equal reports whether two morphisms agree pointwise on their common
// source signature (and share source/target specs).
func (m *Morphism) Equal(n *Morphism) bool {
	if m.Source != n.Source || m.Target != n.Target {
		return false
	}
	for _, s := range m.Source.Sig.Sorts {
		if m.MapSort(s.Name) != n.MapSort(s.Name) {
			return false
		}
	}
	for _, o := range m.Source.Sig.Ops {
		if m.MapOp(o.Name) != n.MapOp(o.Name) {
			return false
		}
	}
	return true
}

// String renders the morphism mapping pairs in deterministic order.
func (m *Morphism) String() string {
	var pairs []string
	for _, s := range m.Source.Sig.Sorts {
		pairs = append(pairs, s.Name+" ↦ "+m.MapSort(s.Name))
	}
	for _, o := range m.Source.Sig.Ops {
		pairs = append(pairs, o.Name+" ↦ "+m.MapOp(o.Name))
	}
	sort.Strings(pairs)
	return fmt.Sprintf("morphism %s : %s -> %s {%s}", m.Name, m.Source.Name, m.Target.Name, strings.Join(pairs, ", "))
}

// Translate builds a new specification by renaming symbols of s (the
// Specware `translate ... by {...}` operation). The rename map uses plain
// names for both sorts and ops; a name that is both a sort and an op is
// renamed in both roles.
func Translate(s *Spec, newName string, rename map[string]string) (*Spec, error) {
	out := New(newName)
	ren := func(n string) string {
		if to, ok := rename[n]; ok {
			return to
		}
		return n
	}
	for _, x := range s.Sig.Sorts {
		if err := out.AddSort(ren(x.Name), x.Def); err != nil {
			return nil, err
		}
	}
	for _, o := range s.Sig.Ops {
		args := make([]string, len(o.Args))
		for i, a := range o.Args {
			args[i] = ren(a)
		}
		res := o.Result
		if res != BoolSort {
			res = ren(res)
		}
		if err := out.AddOp(Op{Name: ren(o.Name), Args: args, Result: res}); err != nil {
			return nil, err
		}
	}
	fr := make(map[string]string, 2*len(rename))
	for k, v := range rename {
		fr[k] = v
		fr["sort:"+k] = v
	}
	for _, a := range s.Axioms {
		if err := out.AddAxiom(a.Name, a.Formula.Rename(fr)); err != nil {
			return nil, err
		}
	}
	for _, t := range s.Theorems {
		if err := out.AddTheorem(t.Name, t.Formula.Rename(fr), t.Using); err != nil {
			return nil, err
		}
	}
	return out, nil
}
