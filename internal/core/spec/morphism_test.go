package spec

import (
	"errors"
	"testing"

	"speccat/internal/core/logic"
	"speccat/internal/core/prover"
)

// tiny spec builders for morphism tests.
func specPQ(t *testing.T, name string) *Spec {
	t.Helper()
	s := New(name)
	mustOK(t, s.AddSort("S", ""))
	mustOK(t, s.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, s.AddOp(Op{Name: "Q", Args: []string{"S"}, Result: BoolSort}))
	x := logic.Var("x", "S")
	mustOK(t, s.AddAxiom("pq", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("Q", x)))))
	return s
}

func TestMorphismSignatureOK(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	mustOK(t, b.AddOp(Op{Name: "P2", Args: []string{"T"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q2", Args: []string{"T"}, Result: BoolSort}))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})
	mustOK(t, m.CheckSignature())
}

func TestMorphismSignatureUnknownTarget(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "Nope", "Q": "Nope"})
	if err := m.CheckSignature(); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("want ErrUnknownSymbol, got %v", err)
	}
}

func TestMorphismSignatureProfileMismatch(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	mustOK(t, b.AddOp(Op{Name: "P2", Args: []string{"T", "T"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q2", Args: []string{"T"}, Result: BoolSort}))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})
	if err := m.CheckSignature(); !errors.Is(err, ErrIllFormed) {
		t.Fatalf("want ErrIllFormed, got %v", err)
	}
}

func TestMorphismObligationsBySyntax(t *testing.T) {
	a := specPQ(t, "A")
	b := specPQ(t, "B") // same axiom, identity mapping
	m := NewMorphism("m", a, b, nil, nil)
	mustOK(t, m.Verify(BySyntax, nil))
}

func TestMorphismObligationsBySyntaxFails(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("S", ""))
	mustOK(t, b.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q", Args: []string{"S"}, Result: BoolSort}))
	// b lacks the pq axiom.
	m := NewMorphism("m", a, b, nil, nil)
	if err := m.Verify(BySyntax, nil); !errors.Is(err, ErrObligation) {
		t.Fatalf("want ErrObligation, got %v", err)
	}
}

func TestMorphismObligationsByProof(t *testing.T) {
	// Source axiom: P => Q. Target axioms: P => R, R => Q. The translated
	// obligation P => Q is provable but not syntactically present.
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("S", ""))
	mustOK(t, b.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "R", Args: []string{"S"}, Result: BoolSort}))
	x := logic.Var("x", "S")
	mustOK(t, b.AddAxiom("pr", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("R", x)))))
	mustOK(t, b.AddAxiom("rq", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("R", x), logic.Pred("Q", x)))))
	m := NewMorphism("m", a, b, nil, nil)
	if err := m.Verify(BySyntax, nil); !errors.Is(err, ErrObligation) {
		t.Fatal("syntactic check should fail here")
	}
	mustOK(t, m.Verify(ByProof, prover.New()))
}

func TestMorphismCompose(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	mustOK(t, b.AddOp(Op{Name: "P2", Args: []string{"T"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q2", Args: []string{"T"}, Result: BoolSort}))
	c := New("C")
	mustOK(t, c.AddSort("U", ""))
	mustOK(t, c.AddOp(Op{Name: "P3", Args: []string{"U"}, Result: BoolSort}))
	mustOK(t, c.AddOp(Op{Name: "Q3", Args: []string{"U"}, Result: BoolSort}))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})
	n := NewMorphism("n", b, c, map[string]string{"T": "U"}, map[string]string{"P2": "P3", "Q2": "Q3"})
	mn, err := Compose(m, n)
	mustOK(t, err)
	if mn.MapSort("S") != "U" || mn.MapOp("P") != "P3" {
		t.Fatalf("composition wrong: %s", mn)
	}
	mustOK(t, mn.CheckSignature())

	if _, err := Compose(n, m); err == nil {
		t.Fatal("composing mismatched morphisms should fail")
	}
}

func TestMorphismIdentityLaws(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	mustOK(t, b.AddOp(Op{Name: "P2", Args: []string{"T"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q2", Args: []string{"T"}, Result: BoolSort}))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})

	idA, idB := Identity(a), Identity(b)
	left, err := Compose(idA, m)
	mustOK(t, err)
	right, err := Compose(m, idB)
	mustOK(t, err)
	if !left.Equal(m) || !right.Equal(m) {
		t.Fatal("identity laws violated")
	}
}

func TestMorphismAssociativity(t *testing.T) {
	a := specPQ(t, "A")
	mk := func(name, srt, p, q string) *Spec {
		s := New(name)
		mustOK(t, s.AddSort(srt, ""))
		mustOK(t, s.AddOp(Op{Name: p, Args: []string{srt}, Result: BoolSort}))
		mustOK(t, s.AddOp(Op{Name: q, Args: []string{srt}, Result: BoolSort}))
		return s
	}
	b := mk("B", "T", "P2", "Q2")
	c := mk("C", "U", "P3", "Q3")
	d := mk("D", "V", "P4", "Q4")
	m1 := NewMorphism("m1", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})
	m2 := NewMorphism("m2", b, c, map[string]string{"T": "U"}, map[string]string{"P2": "P3", "Q2": "Q3"})
	m3 := NewMorphism("m3", c, d, map[string]string{"U": "V"}, map[string]string{"P3": "P4", "Q3": "Q4"})

	m12, err := Compose(m1, m2)
	mustOK(t, err)
	left, err := Compose(m12, m3)
	mustOK(t, err)
	m23, err := Compose(m2, m3)
	mustOK(t, err)
	right, err := Compose(m1, m23)
	mustOK(t, err)
	if !left.Equal(right) {
		t.Fatal("composition is not associative")
	}
}

func TestTranslateFormula(t *testing.T) {
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("T", ""))
	mustOK(t, b.AddOp(Op{Name: "P2", Args: []string{"T"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q2", Args: []string{"T"}, Result: BoolSort}))
	m := NewMorphism("m", a, b, map[string]string{"S": "T"}, map[string]string{"P": "P2", "Q": "Q2"})
	got := m.TranslateFormula(logic.Pred("P", logic.Var("x", "S")))
	if got.Name != "P2" || got.Args[0].Sort != "T" {
		t.Fatalf("translated = %s (sort %s)", got, got.Args[0].Sort)
	}
}
