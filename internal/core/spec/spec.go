// Package spec implements algebraic specifications in the sense of the
// paper's Chapter 2: a specification SPEC = (SIG, AX) consists of a
// signature SIG = (S, OP) — a set of sorts and a set of constant/operation
// symbols — together with a set of axioms over that signature. Morphisms
// between specifications map sorts to sorts and operations to operations
// such that axioms translate to theorems.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"speccat/internal/core/logic"
)

// Sentinel errors.
var (
	// ErrIllFormed is wrapped by well-formedness failures.
	ErrIllFormed = errors.New("spec: ill-formed")
	// ErrUnknownSymbol is wrapped when a referenced sort/op does not exist.
	ErrUnknownSymbol = errors.New("spec: unknown symbol")
)

// BoolSort is the distinguished result sort of predicates. Operations with
// this result sort are treated as predicate symbols in axioms.
const BoolSort = "Boolean"

// Sort is a named sort. Def optionally records a definitional alias (for
// `sort S = T`) or a record-sort structure, both of which are documentation
// for composition purposes: colimits identify sorts by name equivalence.
type Sort struct {
	Name string
	// Def is the right-hand side of a sort definition, empty when the sort
	// is abstract. Examples: "Nat", "Clockvalues", "{p:Processors, T:Clockvalues}".
	Def string
}

// Op is an operation (or constant, when Args is empty) symbol declaration,
// e.g. op Deliver : Processors*Messages*Clockvalues -> Boolean.
type Op struct {
	Name   string
	Args   []string
	Result string
}

// Arity returns the number of arguments.
func (o Op) Arity() int { return len(o.Args) }

// IsPredicate reports whether the op's result sort is Boolean.
func (o Op) IsPredicate() bool { return o.Result == BoolSort }

// String renders the declaration in Specware style.
func (o Op) String() string {
	if len(o.Args) == 0 {
		return fmt.Sprintf("op %s : %s", o.Name, o.Result)
	}
	return fmt.Sprintf("op %s : %s -> %s", o.Name, strings.Join(o.Args, "*"), o.Result)
}

// Axiom is a named formula assumed true in a specification.
type Axiom struct {
	Name    string
	Formula *logic.Formula
}

// Theorem is a named formula expected to be provable from the axioms,
// optionally with a hint list of axiom names (the `using` clause).
type Theorem struct {
	Name    string
	Formula *logic.Formula
	Using   []string
}

// Signature is the sorts and operations of a specification.
type Signature struct {
	Sorts []Sort
	Ops   []Op
}

// Spec is a specification: a named signature plus axioms and theorems.
type Spec struct {
	Name     string
	Sig      Signature
	Axioms   []Axiom
	Theorems []Theorem
}

// New returns an empty specification with the given name.
func New(name string) *Spec { return &Spec{Name: name} }

// Clone deep-copies the specification.
func (s *Spec) Clone() *Spec {
	c := &Spec{Name: s.Name}
	c.Sig.Sorts = append([]Sort{}, s.Sig.Sorts...)
	c.Sig.Ops = make([]Op, len(s.Sig.Ops))
	for i, o := range s.Sig.Ops {
		c.Sig.Ops[i] = Op{Name: o.Name, Args: append([]string{}, o.Args...), Result: o.Result}
	}
	c.Axioms = make([]Axiom, len(s.Axioms))
	for i, a := range s.Axioms {
		c.Axioms[i] = Axiom{Name: a.Name, Formula: a.Formula.Clone()}
	}
	c.Theorems = make([]Theorem, len(s.Theorems))
	for i, t := range s.Theorems {
		c.Theorems[i] = Theorem{Name: t.Name, Formula: t.Formula.Clone(), Using: append([]string{}, t.Using...)}
	}
	return c
}

// AddSort declares a sort; redeclaring an existing name is a no-op when the
// definition matches and an error otherwise.
func (s *Spec) AddSort(name, def string) error {
	for _, x := range s.Sig.Sorts {
		if x.Name == name {
			if x.Def == def {
				return nil
			}
			return fmt.Errorf("%w: sort %s redeclared with different definition", ErrIllFormed, name)
		}
	}
	s.Sig.Sorts = append(s.Sig.Sorts, Sort{Name: name, Def: def})
	return nil
}

// AddOp declares an operation; redeclaring with an identical profile is a
// no-op, a conflicting profile is an error.
func (s *Spec) AddOp(op Op) error {
	for _, x := range s.Sig.Ops {
		if x.Name == op.Name {
			if opEqual(x, op) {
				return nil
			}
			return fmt.Errorf("%w: op %s redeclared with different profile", ErrIllFormed, op.Name)
		}
	}
	s.Sig.Ops = append(s.Sig.Ops, op)
	return nil
}

func opEqual(a, b Op) bool {
	if a.Name != b.Name || a.Result != b.Result || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// AddAxiom appends a named axiom. Duplicate axiom names are an error.
func (s *Spec) AddAxiom(name string, f *logic.Formula) error {
	for _, a := range s.Axioms {
		if a.Name == name {
			return fmt.Errorf("%w: duplicate axiom %s", ErrIllFormed, name)
		}
	}
	s.Axioms = append(s.Axioms, Axiom{Name: name, Formula: f})
	return nil
}

// AddTheorem appends a named theorem.
func (s *Spec) AddTheorem(name string, f *logic.Formula, using []string) error {
	for _, t := range s.Theorems {
		if t.Name == name {
			return fmt.Errorf("%w: duplicate theorem %s", ErrIllFormed, name)
		}
	}
	s.Theorems = append(s.Theorems, Theorem{Name: name, Formula: f, Using: using})
	return nil
}

// HasSort reports whether the signature declares the sort.
func (s *Spec) HasSort(name string) bool {
	for _, x := range s.Sig.Sorts {
		if x.Name == name {
			return true
		}
	}
	return false
}

// FindOp returns the op declaration by name.
func (s *Spec) FindOp(name string) (Op, bool) {
	for _, x := range s.Sig.Ops {
		if x.Name == name {
			return x, true
		}
	}
	return Op{}, false
}

// FindAxiom returns the axiom by name.
func (s *Spec) FindAxiom(name string) (Axiom, bool) {
	for _, a := range s.Axioms {
		if a.Name == name {
			return a, true
		}
	}
	return Axiom{}, false
}

// FindTheorem returns the theorem by name.
func (s *Spec) FindTheorem(name string) (Theorem, bool) {
	for _, t := range s.Theorems {
		if t.Name == name {
			return t, true
		}
	}
	return Theorem{}, false
}

// Include merges other's sorts, ops, axioms and theorems into s (the
// Specware `import` of a translated spec). Name collisions must agree.
func (s *Spec) Include(other *Spec) error {
	for _, x := range other.Sig.Sorts {
		if err := s.AddSort(x.Name, x.Def); err != nil {
			return fmt.Errorf("including %s into %s: %w", other.Name, s.Name, err)
		}
	}
	for _, o := range other.Sig.Ops {
		if err := s.AddOp(o); err != nil {
			return fmt.Errorf("including %s into %s: %w", other.Name, s.Name, err)
		}
	}
	for _, a := range other.Axioms {
		if existing, ok := s.FindAxiom(a.Name); ok {
			if !existing.Formula.Equal(a.Formula) {
				return fmt.Errorf("%w: axiom %s conflicts during include", ErrIllFormed, a.Name)
			}
			continue
		}
		s.Axioms = append(s.Axioms, a)
	}
	for _, t := range other.Theorems {
		if existing, ok := s.FindTheorem(t.Name); ok {
			if !existing.Formula.Equal(t.Formula) {
				return fmt.Errorf("%w: theorem %s conflicts during include", ErrIllFormed, t.Name)
			}
			continue
		}
		s.Theorems = append(s.Theorems, t)
	}
	return nil
}

// String renders the spec in a Specware-like layout.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s\n", s.Name)
	for _, x := range s.Sig.Sorts {
		if x.Def != "" {
			fmt.Fprintf(&b, "  sort %s = %s\n", x.Name, x.Def)
		} else {
			fmt.Fprintf(&b, "  sort %s\n", x.Name)
		}
	}
	for _, o := range s.Sig.Ops {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	for _, a := range s.Axioms {
		fmt.Fprintf(&b, "  axiom %s is %s\n", a.Name, a.Formula)
	}
	for _, t := range s.Theorems {
		fmt.Fprintf(&b, "  theorem %s is %s\n", t.Name, t.Formula)
	}
	b.WriteString("endspec")
	return b.String()
}

// SortNames returns the declared sort names, sorted.
func (s *Spec) SortNames() []string {
	out := make([]string, len(s.Sig.Sorts))
	for i, x := range s.Sig.Sorts {
		out[i] = x.Name
	}
	sort.Strings(out)
	return out
}

// OpNames returns the declared op names, sorted.
func (s *Spec) OpNames() []string {
	out := make([]string, len(s.Sig.Ops))
	for i, x := range s.Sig.Ops {
		out[i] = x.Name
	}
	sort.Strings(out)
	return out
}

// WellFormed checks that every axiom and theorem only uses declared
// operation symbols with correct arities, and that op profiles reference
// declared sorts (or the built-in base sorts).
func (s *Spec) WellFormed() error {
	baseSorts := map[string]bool{"Nat": true, BoolSort: true}
	declared := map[string]bool{}
	for _, x := range s.Sig.Sorts {
		declared[x.Name] = true
	}
	sortKnown := func(name string) bool {
		return name == "" || declared[name] || baseSorts[name]
	}
	for _, o := range s.Sig.Ops {
		for _, a := range o.Args {
			if !sortKnown(a) {
				return fmt.Errorf("%w: op %s argument sort %s undeclared in %s", ErrUnknownSymbol, o.Name, a, s.Name)
			}
		}
		if !sortKnown(o.Result) {
			return fmt.Errorf("%w: op %s result sort %s undeclared in %s", ErrUnknownSymbol, o.Name, o.Result, s.Name)
		}
	}
	for _, a := range s.Axioms {
		if err := s.checkFormula(a.Formula); err != nil {
			return fmt.Errorf("axiom %s in %s: %w", a.Name, s.Name, err)
		}
	}
	for _, t := range s.Theorems {
		if err := s.checkFormula(t.Formula); err != nil {
			return fmt.Errorf("theorem %s in %s: %w", t.Name, s.Name, err)
		}
	}
	return nil
}

func (s *Spec) checkFormula(f *logic.Formula) error {
	if f == nil {
		return fmt.Errorf("%w: nil formula", ErrIllFormed)
	}
	switch f.Kind {
	case logic.KindPred:
		op, ok := s.FindOp(f.Name)
		if !ok {
			return fmt.Errorf("%w: predicate %s", ErrUnknownSymbol, f.Name)
		}
		if !op.IsPredicate() {
			return fmt.Errorf("%w: %s used as predicate but has result sort %s", ErrIllFormed, f.Name, op.Result)
		}
		if len(f.Args) != op.Arity() {
			return fmt.Errorf("%w: %s applied to %d args, declared %d", ErrIllFormed, f.Name, len(f.Args), op.Arity())
		}
		for _, a := range f.Args {
			if err := s.checkTerm(a); err != nil {
				return err
			}
		}
		return nil
	case logic.KindEq:
		for _, a := range f.Args {
			if err := s.checkTerm(a); err != nil {
				return err
			}
		}
		return nil
	default:
		for _, sub := range f.Sub {
			if err := s.checkFormula(sub); err != nil {
				return err
			}
		}
		return nil
	}
}

func (s *Spec) checkTerm(t *logic.Term) error {
	if t == nil {
		return fmt.Errorf("%w: nil term", ErrIllFormed)
	}
	switch t.Kind {
	case logic.KindVar:
		return nil
	case logic.KindConst:
		// Constants may be declared ops of arity 0 or literal values
		// (numerals, fresh skolems); both are accepted.
		if op, ok := s.FindOp(t.Name); ok && op.Arity() != 0 {
			return fmt.Errorf("%w: constant %s declared with arity %d", ErrIllFormed, t.Name, op.Arity())
		}
		return nil
	case logic.KindApp:
		op, ok := s.FindOp(t.Name)
		if !ok {
			return fmt.Errorf("%w: function %s", ErrUnknownSymbol, t.Name)
		}
		if len(t.Args) != op.Arity() {
			return fmt.Errorf("%w: %s applied to %d args, declared %d", ErrIllFormed, t.Name, len(t.Args), op.Arity())
		}
		for _, a := range t.Args {
			if err := s.checkTerm(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: bad term kind", ErrIllFormed)
	}
}
