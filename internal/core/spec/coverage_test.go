package spec

import (
	"errors"
	"strings"
	"testing"

	"speccat/internal/core/logic"
)

func TestOpString(t *testing.T) {
	c := Op{Name: "zero", Result: "Nat"}
	if c.String() != "op zero : Nat" {
		t.Errorf("const String = %q", c.String())
	}
	f := Op{Name: "F", Args: []string{"A", "B"}, Result: BoolSort}
	if f.String() != "op F : A*B -> Boolean" {
		t.Errorf("op String = %q", f.String())
	}
	if !f.IsPredicate() || c.IsPredicate() {
		t.Error("IsPredicate wrong")
	}
	if f.Arity() != 2 {
		t.Error("Arity wrong")
	}
}

func TestFindersMissing(t *testing.T) {
	s := New("X")
	if _, ok := s.FindOp("nope"); ok {
		t.Error("FindOp found ghost")
	}
	if _, ok := s.FindAxiom("nope"); ok {
		t.Error("FindAxiom found ghost")
	}
	if _, ok := s.FindTheorem("nope"); ok {
		t.Error("FindTheorem found ghost")
	}
	if s.HasSort("nope") {
		t.Error("HasSort found ghost")
	}
}

func TestDuplicateTheorem(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, s.AddTheorem("th", logic.Pred("P"), nil))
	if err := s.AddTheorem("th", logic.Pred("P"), nil); err == nil {
		t.Error("duplicate theorem accepted")
	}
}

func TestIncludeConflictingAxiom(t *testing.T) {
	a := New("A")
	mustOK(t, a.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, a.AddAxiom("ax", logic.Pred("P")))
	b := New("B")
	mustOK(t, b.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, b.AddAxiom("ax", logic.Not(logic.Pred("P"))))
	if err := a.Include(b); !errors.Is(err, ErrIllFormed) {
		t.Errorf("conflicting include: %v", err)
	}
}

func TestIncludeConflictingTheorem(t *testing.T) {
	a := New("A")
	mustOK(t, a.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, a.AddTheorem("th", logic.Pred("P"), nil))
	b := New("B")
	mustOK(t, b.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, b.AddTheorem("th", logic.Not(logic.Pred("P")), nil))
	if err := a.Include(b); !errors.Is(err, ErrIllFormed) {
		t.Errorf("conflicting theorem include: %v", err)
	}
}

func TestWellFormedEqAndConstants(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddSort("S", ""))
	mustOK(t, s.AddOp(Op{Name: "c", Result: "S"}))
	mustOK(t, s.AddOp(Op{Name: "f", Args: []string{"S"}, Result: "S"}))
	mustOK(t, s.AddAxiom("eq", logic.Eq(
		logic.App("f", "S", logic.Const("c", "S")),
		logic.Const("c", "S"))))
	mustOK(t, s.WellFormed())

	// A declared op with arity > 0 used as a constant is ill-formed.
	mustOK(t, s.AddAxiom("bad", logic.Eq(logic.Const("f", "S"), logic.Const("c", "S"))))
	if err := s.WellFormed(); !errors.Is(err, ErrIllFormed) {
		t.Errorf("arity-misuse: %v", err)
	}
}

func TestWellFormedFunctionArity(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddSort("S", ""))
	mustOK(t, s.AddOp(Op{Name: "f", Args: []string{"S"}, Result: "S"}))
	mustOK(t, s.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, s.AddAxiom("bad", logic.Pred("P", logic.App("f", "S",
		logic.Var("x", "S"), logic.Var("y", "S")))))
	if err := s.WellFormed(); err == nil || !strings.Contains(err.Error(), "applied to 2") {
		t.Errorf("function arity: %v", err)
	}
}

func TestWellFormedUnknownFunction(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddSort("S", ""))
	mustOK(t, s.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, s.AddAxiom("bad", logic.Pred("P", logic.App("ghost", "S", logic.Var("x", "S")))))
	if err := s.WellFormed(); !errors.Is(err, ErrUnknownSymbol) {
		t.Errorf("unknown function: %v", err)
	}
}

func TestWellFormedNonPredicateUsedAsPredicate(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddSort("S", ""))
	mustOK(t, s.AddOp(Op{Name: "f", Args: []string{"S"}, Result: "S"}))
	mustOK(t, s.AddAxiom("bad", logic.Pred("f", logic.Var("x", "S"))))
	if err := s.WellFormed(); !errors.Is(err, ErrIllFormed) {
		t.Errorf("non-predicate atom: %v", err)
	}
}

func TestMorphismStringAndEqual(t *testing.T) {
	a := specPQ(t, "A")
	b := specPQ(t, "B")
	m := NewMorphism("m", a, b, nil, nil)
	out := m.String()
	if !strings.Contains(out, "A -> B") || !strings.Contains(out, "P ↦ P") {
		t.Errorf("String = %q", out)
	}
	n := NewMorphism("n", a, b, nil, nil)
	if !m.Equal(n) {
		t.Error("identical morphisms unequal")
	}
	n2 := NewMorphism("n2", a, b, nil, map[string]string{"P": "Q"})
	if m.Equal(n2) {
		t.Error("different morphisms equal")
	}
	other := specPQ(t, "C")
	if m.Equal(NewMorphism("x", a, other, nil, nil)) {
		t.Error("different targets equal")
	}
}

func TestIdentityVerifies(t *testing.T) {
	a := specPQ(t, "A")
	id := Identity(a)
	mustOK(t, id.Verify(BySyntax, nil))
}

func TestTranslateConflict(t *testing.T) {
	a := New("A")
	mustOK(t, a.AddSort("S", ""))
	mustOK(t, a.AddSort("T", ""))
	// Renaming both sorts to the same name with different defs is fine
	// (identical empty defs merge), but ops with clashing profiles fail.
	mustOK(t, a.AddOp(Op{Name: "f", Args: []string{"S"}, Result: "S"}))
	mustOK(t, a.AddOp(Op{Name: "g", Args: []string{"T", "T"}, Result: "T"}))
	if _, err := Translate(a, "B", map[string]string{"f": "h", "g": "h"}); err == nil {
		t.Error("profile-clashing translation accepted")
	}
}

func TestTheoremCountsAsTargetStatement(t *testing.T) {
	// BySyntax obligations accept translations landing on target theorems.
	a := specPQ(t, "A")
	b := New("B")
	mustOK(t, b.AddSort("S", ""))
	mustOK(t, b.AddOp(Op{Name: "P", Args: []string{"S"}, Result: BoolSort}))
	mustOK(t, b.AddOp(Op{Name: "Q", Args: []string{"S"}, Result: BoolSort}))
	ax, _ := a.FindAxiom("pq")
	mustOK(t, b.AddTheorem("pq-as-theorem", ax.Formula.Clone(), nil))
	m := NewMorphism("m", a, b, nil, nil)
	mustOK(t, m.Verify(BySyntax, nil))
}
