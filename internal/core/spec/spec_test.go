package spec

import (
	"errors"
	"strings"
	"testing"

	"speccat/internal/core/logic"
)

// broadcastSpec builds a miniature RELIABLEBROADCAST-style spec used
// throughout the package tests.
func broadcastSpec(t *testing.T) *Spec {
	t.Helper()
	s := New("RELIABLEBROADCAST")
	mustOK(t, s.AddSort("Processors", ""))
	mustOK(t, s.AddSort("Messages", ""))
	mustOK(t, s.AddSort("Clockvalues", "Nat"))
	mustOK(t, s.AddOp(Op{Name: "Correct", Args: []string{"Processors"}, Result: BoolSort}))
	mustOK(t, s.AddOp(Op{Name: "Broadcast", Args: []string{"Processors", "Messages", "Clockvalues"}, Result: BoolSort}))
	mustOK(t, s.AddOp(Op{Name: "Deliver", Args: []string{"Processors", "Messages", "Clockvalues"}, Result: BoolSort}))

	p := logic.Var("p", "Processors")
	q := logic.Var("q", "Processors")
	m := logic.Var("m", "Messages")
	tv := logic.Var("T", "Clockvalues")
	agree := logic.Forall([]*logic.Term{p, q, m, tv},
		logic.Implies(
			logic.And(logic.Pred("Correct", p), logic.Pred("Deliver", p, m, tv)),
			logic.Pred("Deliver", q, m, tv)))
	mustOK(t, s.AddAxiom("Agreebroad", agree))
	return s
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpecWellFormed(t *testing.T) {
	s := broadcastSpec(t)
	if err := s.WellFormed(); err != nil {
		t.Fatalf("WellFormed: %v", err)
	}
}

func TestSpecWellFormedCatchesUnknownPredicate(t *testing.T) {
	s := broadcastSpec(t)
	mustOK(t, s.AddAxiom("bad", logic.Pred("NoSuchOp", logic.Var("x", ""))))
	err := s.WellFormed()
	if !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("want ErrUnknownSymbol, got %v", err)
	}
}

func TestSpecWellFormedCatchesArity(t *testing.T) {
	s := broadcastSpec(t)
	mustOK(t, s.AddAxiom("bad", logic.Pred("Correct", logic.Var("p", "Processors"), logic.Var("q", "Processors"))))
	err := s.WellFormed()
	if err == nil || !strings.Contains(err.Error(), "applied to 2 args") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestSpecWellFormedCatchesUndeclaredSortInOp(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddOp(Op{Name: "F", Args: []string{"Mystery"}, Result: BoolSort}))
	if err := s.WellFormed(); !errors.Is(err, ErrUnknownSymbol) {
		t.Fatalf("want ErrUnknownSymbol, got %v", err)
	}
}

func TestAddSortConflicts(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddSort("A", "Nat"))
	mustOK(t, s.AddSort("A", "Nat")) // identical redeclaration ok
	if err := s.AddSort("A", "Boolean"); err == nil {
		t.Fatal("conflicting sort redeclaration accepted")
	}
}

func TestAddOpConflicts(t *testing.T) {
	s := New("X")
	op := Op{Name: "F", Args: []string{"Nat"}, Result: BoolSort}
	mustOK(t, s.AddOp(op))
	mustOK(t, s.AddOp(op))
	if err := s.AddOp(Op{Name: "F", Args: []string{"Nat", "Nat"}, Result: BoolSort}); err == nil {
		t.Fatal("conflicting op redeclaration accepted")
	}
}

func TestDuplicateAxiomName(t *testing.T) {
	s := New("X")
	mustOK(t, s.AddOp(Op{Name: "P", Result: BoolSort}))
	mustOK(t, s.AddAxiom("a", logic.Pred("P")))
	if err := s.AddAxiom("a", logic.Pred("P")); err == nil {
		t.Fatal("duplicate axiom name accepted")
	}
}

func TestInclude(t *testing.T) {
	a := broadcastSpec(t)
	b := New("CONSENSUS")
	mustOK(t, b.AddSort("ProcDeci", "Boolean"))
	mustOK(t, b.AddOp(Op{Name: "Decision", Args: []string{"ProcDeci"}, Result: BoolSort}))
	mustOK(t, b.Include(a))
	if !b.HasSort("Processors") || !b.HasSort("ProcDeci") {
		t.Fatal("include dropped sorts")
	}
	if _, ok := b.FindOp("Deliver"); !ok {
		t.Fatal("include dropped ops")
	}
	if _, ok := b.FindAxiom("Agreebroad"); !ok {
		t.Fatal("include dropped axioms")
	}
	// Including twice is idempotent.
	mustOK(t, b.Include(a))
	if got := len(b.Axioms); got != 1 {
		t.Fatalf("double include duplicated axioms: %d", got)
	}
}

func TestClone(t *testing.T) {
	a := broadcastSpec(t)
	c := a.Clone()
	c.Sig.Sorts[0].Name = "Mutated"
	c.Axioms[0].Formula.Sub[0] = logic.True()
	if a.Sig.Sorts[0].Name == "Mutated" {
		t.Fatal("clone shares sort storage")
	}
	if a.Axioms[0].Formula.Sub[0].Kind == logic.KindTrue {
		t.Fatal("clone shares formula storage")
	}
}

func TestTranslate(t *testing.T) {
	a := broadcastSpec(t)
	b, err := Translate(a, "RB2", map[string]string{
		"Deliver":     "Deliver2",
		"Processors":  "Nodes",
		"Clockvalues": "Clockvalues",
	})
	mustOK(t, err)
	if b.Name != "RB2" {
		t.Errorf("name = %s", b.Name)
	}
	if !b.HasSort("Nodes") || b.HasSort("Processors") {
		t.Error("sort not renamed")
	}
	if _, ok := b.FindOp("Deliver2"); !ok {
		t.Error("op not renamed")
	}
	ax, ok := b.FindAxiom("Agreebroad")
	if !ok {
		t.Fatal("axiom lost in translation")
	}
	if !strings.Contains(ax.Formula.String(), "Deliver2") {
		t.Errorf("axiom body not renamed: %s", ax.Formula)
	}
	if err := b.WellFormed(); err != nil {
		t.Errorf("translated spec ill-formed: %v", err)
	}
	// Op profiles must follow the sort rename.
	op, _ := b.FindOp("Deliver2")
	if op.Args[0] != "Nodes" {
		t.Errorf("op profile arg = %s, want Nodes", op.Args[0])
	}
}

func TestSpecString(t *testing.T) {
	s := broadcastSpec(t)
	out := s.String()
	for _, want := range []string{"spec RELIABLEBROADCAST", "sort Processors", "op Deliver", "axiom Agreebroad", "endspec"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
