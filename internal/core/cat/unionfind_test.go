package cat

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := newUnionFind()
	u.add("a")
	u.add("b")
	u.add("c")
	if u.same("a", "b") {
		t.Fatal("fresh keys should be separate")
	}
	u.union("a", "b")
	if !u.same("a", "b") {
		t.Fatal("union did not merge")
	}
	if u.same("a", "c") {
		t.Fatal("c merged unexpectedly")
	}
	u.union("b", "c")
	if !u.same("a", "c") {
		t.Fatal("transitive merge failed")
	}
}

func TestUnionFindClasses(t *testing.T) {
	u := newUnionFind()
	for _, k := range []string{"a", "b", "c", "d"} {
		u.add(k)
	}
	u.union("a", "b")
	u.union("c", "d")
	cls := u.classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %d, want 2", len(cls))
	}
	total := 0
	for _, members := range cls {
		total += len(members)
		for i := 1; i < len(members); i++ {
			if members[i-1] > members[i] {
				t.Fatal("class members not sorted")
			}
		}
	}
	if total != 4 {
		t.Fatalf("total members = %d, want 4", total)
	}
}

func TestUnionFindIdempotent(t *testing.T) {
	u := newUnionFind()
	u.union("a", "b")
	r1 := u.find("a")
	u.union("a", "b")
	u.union("b", "a")
	if u.find("a") != r1 || !u.same("a", "b") {
		t.Fatal("repeated unions changed structure")
	}
}

// Property: after an arbitrary union script, same() is an equivalence
// relation consistent with the transitive closure of the script (checked
// against a naive implementation).
func TestUnionFindMatchesNaiveProperty(t *testing.T) {
	type script struct {
		Pairs []struct{ A, B uint8 }
	}
	prop := func(sc script) bool {
		u := newUnionFind()
		naive := map[string]string{} // naive: map to class label via repeated relabel
		label := func(k string) string {
			if v, ok := naive[k]; ok {
				return v
			}
			naive[k] = k
			return k
		}
		merge := func(a, b string) {
			la, lb := label(a), label(b)
			if la == lb {
				return
			}
			for k, v := range naive {
				if v == lb {
					naive[k] = la
				}
			}
		}
		keys := map[string]bool{}
		for _, p := range sc.Pairs {
			a := fmt.Sprintf("k%d", p.A%16)
			b := fmt.Sprintf("k%d", p.B%16)
			u.union(a, b)
			merge(a, b)
			keys[a], keys[b] = true, true
		}
		for a := range keys {
			for b := range keys {
				if u.same(a, b) != (naive[a] == naive[b]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
