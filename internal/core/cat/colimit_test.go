package cat

import (
	"errors"
	"testing"

	"speccat/internal/core/logic"
	"speccat/internal/core/spec"
)

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// mkSpec builds a one-sort spec with unary predicates over it.
func mkSpec(t *testing.T, name, srt string, preds ...string) *spec.Spec {
	t.Helper()
	s := spec.New(name)
	mustOK(t, s.AddSort(srt, ""))
	for _, p := range preds {
		mustOK(t, s.AddOp(spec.Op{Name: p, Args: []string{srt}, Result: spec.BoolSort}))
	}
	return s
}

func TestPushoutSharedUnion(t *testing.T) {
	// A = {S; P}, B = {S; P, Q}, C = {S; P, R}; f, g inclusions.
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Q")
	c := mkSpec(t, "C", "S", "P", "R")
	f := spec.NewMorphism("f", a, b, nil, nil)
	g := spec.NewMorphism("g", a, c, nil, nil)
	cc, p, q, err := Pushout(f, g, "D")
	mustOK(t, err)

	// D must have exactly one S, one P, plus Q and R.
	if got := len(cc.Apex.Sig.Sorts); got != 1 {
		t.Fatalf("apex sorts = %d, want 1 (%v)", got, cc.Apex.SortNames())
	}
	if got := len(cc.Apex.Sig.Ops); got != 3 {
		t.Fatalf("apex ops = %d, want 3 (%v)", got, cc.Apex.OpNames())
	}
	if p.MapOp("P") != q.MapOp("P") {
		t.Fatal("shared P was not identified")
	}
	mustOK(t, cc.Apex.WellFormed())
}

func TestPushoutRenamingIdentification(t *testing.T) {
	// B calls the shared predicate Pb; C calls it Pc; both are images of
	// A's P, so the pushout must identify Pb = Pc into one symbol.
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "Pb", "Q")
	c := mkSpec(t, "C", "S", "Pc")
	f := spec.NewMorphism("f", a, b, nil, map[string]string{"P": "Pb"})
	g := spec.NewMorphism("g", a, c, nil, map[string]string{"P": "Pc"})
	cc, p, q, err := Pushout(f, g, "D")
	mustOK(t, err)
	if p.MapOp("Pb") != q.MapOp("Pc") {
		t.Fatalf("Pb and Pc not identified: %s vs %s", p.MapOp("Pb"), q.MapOp("Pc"))
	}
	if got := len(cc.Apex.Sig.Ops); got != 2 {
		t.Fatalf("apex ops = %d, want 2 (%v)", got, cc.Apex.OpNames())
	}
}

func TestPushoutKeepsUnlinkedSymbolsApart(t *testing.T) {
	// B and C both declare a predicate named "Local" that is NOT in the
	// image of A: the colimit must keep two distinct symbols.
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Local")
	c := mkSpec(t, "C", "S", "P", "Local")
	f := spec.NewMorphism("f", a, b, nil, nil)
	g := spec.NewMorphism("g", a, c, nil, nil)
	cc, p, q, err := Pushout(f, g, "D")
	mustOK(t, err)
	if p.MapOp("Local") == q.MapOp("Local") {
		t.Fatal("unlinked same-named symbols were wrongly identified")
	}
	if got := len(cc.Apex.Sig.Ops); got != 3 {
		t.Fatalf("apex ops = %d, want 3 (%v)", got, cc.Apex.OpNames())
	}
}

func TestPushoutCommutes(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Q")
	c := mkSpec(t, "C", "S", "P", "R")
	f := spec.NewMorphism("f", a, b, nil, nil)
	g := spec.NewMorphism("g", a, c, nil, nil)
	cc, p, q, err := Pushout(f, g, "D")
	mustOK(t, err)
	// p∘f = q∘g (the paper's commuting square).
	pf, err := spec.Compose(f, p)
	mustOK(t, err)
	qg, err := spec.Compose(g, q)
	mustOK(t, err)
	if !pf.Equal(qg) {
		t.Fatal("pushout square does not commute")
	}
	_ = cc
}

func TestPushoutRequiresCommonSource(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	a2 := mkSpec(t, "A2", "S", "P")
	b := mkSpec(t, "B", "S", "P")
	f := spec.NewMorphism("f", a, b, nil, nil)
	g := spec.NewMorphism("g", a2, b, nil, nil)
	if _, _, _, err := Pushout(f, g, "D"); !errors.Is(err, ErrBadDiagram) {
		t.Fatalf("want ErrBadDiagram, got %v", err)
	}
}

func TestColimitAxiomsTranslate(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "Pb", "Q")
	x := logic.Var("x", "S")
	mustOK(t, b.AddAxiom("pbq", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("Pb", x), logic.Pred("Q", x)))))
	c := mkSpec(t, "C", "S", "Pc")
	mustOK(t, c.AddAxiom("pc", logic.Forall([]*logic.Term{x}, logic.Pred("Pc", x))))

	f := spec.NewMorphism("f", a, b, nil, map[string]string{"P": "Pb"})
	g := spec.NewMorphism("g", a, c, nil, map[string]string{"P": "Pc"})
	cc, p, _, err := Pushout(f, g, "D")
	mustOK(t, err)

	shared := p.MapOp("Pb")
	ax, ok := cc.Apex.FindAxiom("pbq")
	if !ok {
		t.Fatal("axiom pbq missing from colimit")
	}
	// Axiom body must now mention the shared symbol.
	found := false
	for _, name := range []string{shared} {
		if containsPred(ax.Formula, name) {
			found = true
		}
	}
	if !found {
		t.Errorf("axiom %s does not mention shared symbol %s", ax.Formula, shared)
	}
	mustOK(t, cc.Apex.WellFormed())
}

func containsPred(f *logic.Formula, name string) bool {
	if f == nil {
		return false
	}
	if f.Kind == logic.KindPred && f.Name == name {
		return true
	}
	for _, s := range f.Sub {
		if containsPred(s, name) {
			return true
		}
	}
	return false
}

func TestColimitChain(t *testing.T) {
	// A -> B -> C chain: colimit identifies along the path A->B->C.
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Q")
	c := mkSpec(t, "C", "S", "P", "Q", "R")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	mustOK(t, d.AddNode("c", c))
	mustOK(t, d.AddArc("i", "a", "b", spec.NewMorphism("i", a, b, nil, nil)))
	mustOK(t, d.AddArc("j", "b", "c", spec.NewMorphism("j", b, c, nil, nil)))
	cc, err := Colimit(d, "L")
	mustOK(t, err)
	if got := len(cc.Apex.Sig.Ops); got != 3 {
		t.Fatalf("ops = %d, want 3 (%v)", got, cc.Apex.OpNames())
	}
	if cc.Cones["a"].MapOp("P") != cc.Cones["c"].MapOp("P") {
		t.Fatal("chain identification failed")
	}
	mustOK(t, cc.VerifyCommutes(d))
}

func TestColimitIncompatibleProfiles(t *testing.T) {
	// Identify two ops whose arities differ: must fail.
	a := spec.New("A")
	mustOK(t, a.AddSort("S", ""))
	mustOK(t, a.AddOp(spec.Op{Name: "P", Args: []string{"S"}, Result: spec.BoolSort}))
	b := spec.New("B")
	mustOK(t, b.AddSort("S", ""))
	mustOK(t, b.AddOp(spec.Op{Name: "P2", Args: []string{"S", "S"}, Result: spec.BoolSort}))

	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	m := spec.NewMorphism("m", a, b, nil, map[string]string{"P": "P2"})
	mustOK(t, d.AddArc("m", "a", "b", m))
	if _, err := Colimit(d, "L"); err == nil {
		t.Fatal("incompatible identification accepted")
	}
}

func TestColimitEmptyDiagram(t *testing.T) {
	if _, err := Colimit(NewDiagram(), "L"); !errors.Is(err, ErrBadDiagram) {
		t.Fatalf("want ErrBadDiagram, got %v", err)
	}
}

func TestMediatingUniversalProperty(t *testing.T) {
	// Build pushout D of span B <- A -> C, then a bigger candidate cocone
	// D' (D plus an extra op). The mediating morphism u: D -> D' must exist
	// and commute with the cones.
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Q")
	c := mkSpec(t, "C", "S", "P", "R")
	f := spec.NewMorphism("f", a, b, nil, nil)
	g := spec.NewMorphism("g", a, c, nil, nil)

	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	mustOK(t, d.AddNode("c", c))
	mustOK(t, d.AddArc("f", "a", "b", f))
	mustOK(t, d.AddArc("g", "a", "c", g))
	colim, err := Colimit(d, "D")
	mustOK(t, err)

	// Candidate: a flat spec containing everything plus Extra.
	dPrime := mkSpec(t, "Dprime", "S", "P", "Q", "R", "Extra")
	cand := &Cocone{Apex: dPrime, Cones: map[string]*spec.Morphism{
		"a": spec.NewMorphism("ca", a, dPrime, nil, nil),
		"b": spec.NewMorphism("cb", b, dPrime, nil, nil),
		"c": spec.NewMorphism("cc", c, dPrime, nil, nil),
	}}
	mustOK(t, cand.VerifyCommutes(d))

	u, err := Mediating(d, colim, cand)
	mustOK(t, err)
	mustOK(t, u.CheckSignature())
	// u ∘ cone_n must equal candidate cone_n for every node.
	for _, n := range d.Nodes() {
		comp, err := spec.Compose(colim.Cones[n], u)
		mustOK(t, err)
		if !comp.Equal(cand.Cones[n]) {
			t.Fatalf("mediating morphism does not factor cone %s", n)
		}
	}
}

func TestMediatingDetectsNonCocone(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	mustOK(t, d.AddArc("m", "a", "b", spec.NewMorphism("m", a, b, nil, nil)))
	colim, err := Colimit(d, "L")
	mustOK(t, err)

	// Candidate maps a's P and b's P to different symbols: not a cocone.
	bad := mkSpec(t, "Bad", "S", "P1", "P2")
	cand := &Cocone{Apex: bad, Cones: map[string]*spec.Morphism{
		"a": spec.NewMorphism("ca", a, bad, nil, map[string]string{"P": "P1"}),
		"b": spec.NewMorphism("cb", b, bad, nil, map[string]string{"P": "P2"}),
	}}
	if _, err := Mediating(d, colim, cand); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
}

func TestDiagramValidation(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	if err := d.AddNode("a", b); !errors.Is(err, ErrBadDiagram) {
		t.Fatal("duplicate node accepted")
	}
	if err := d.AddArc("x", "a", "zz", spec.NewMorphism("m", a, b, nil, nil)); !errors.Is(err, ErrBadDiagram) {
		t.Fatal("arc to unknown node accepted")
	}
	mustOK(t, d.AddNode("b", b))
	wrong := spec.NewMorphism("m", b, a, nil, nil)
	if err := d.AddArc("x", "a", "b", wrong); !errors.Is(err, ErrBadDiagram) {
		t.Fatal("arc with mismatched morphism accepted")
	}
}
