package cat

import (
	"testing"

	"speccat/internal/core/spec"
)

// TestColimitOfSingletonIsIsomorphic: the colimit of a one-node diagram is
// the node itself up to renaming — same sorts, ops, axioms, and an
// identity-shaped cone.
func TestColimitOfSingletonIsIsomorphic(t *testing.T) {
	a := mkSpec(t, "A", "S", "P", "Q")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	cc, err := Colimit(d, "L")
	mustOK(t, err)
	if len(cc.Apex.Sig.Sorts) != len(a.Sig.Sorts) || len(cc.Apex.Sig.Ops) != len(a.Sig.Ops) {
		t.Fatalf("apex shape differs: %v vs %v", cc.Apex.OpNames(), a.OpNames())
	}
	cone := cc.Cones["a"]
	for _, op := range a.Sig.Ops {
		if cone.MapOp(op.Name) != op.Name {
			t.Fatalf("singleton colimit renamed %s to %s", op.Name, cone.MapOp(op.Name))
		}
	}
}

// TestColimitIdempotent: colimiting the colimit (as a singleton diagram)
// changes nothing.
func TestColimitIdempotent(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	b := mkSpec(t, "B", "S", "P", "Q")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	mustOK(t, d.AddArc("m", "a", "b", spec.NewMorphism("m", a, b, nil, nil)))
	cc1, err := Colimit(d, "L1")
	mustOK(t, err)

	d2 := NewDiagram()
	mustOK(t, d2.AddNode("l", cc1.Apex))
	cc2, err := Colimit(d2, "L2")
	mustOK(t, err)
	if len(cc2.Apex.Sig.Ops) != len(cc1.Apex.Sig.Ops) ||
		len(cc2.Apex.Axioms) != len(cc1.Apex.Axioms) {
		t.Fatalf("re-colimit changed the spec: %v vs %v", cc2.Apex.OpNames(), cc1.Apex.OpNames())
	}
}
