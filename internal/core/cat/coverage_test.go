package cat

import (
	"strings"
	"testing"

	"speccat/internal/core/logic"
	"speccat/internal/core/spec"
)

func TestColimitCarriesTheoremsAndDedupes(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	x := logic.Var("x", "S")
	mustOK(t, a.AddTheorem("th", logic.Forall([]*logic.Term{x}, logic.Pred("P", x)), []string{"hint"}))
	b := mkSpec(t, "B", "S", "P")
	mustOK(t, b.AddTheorem("th", logic.Forall([]*logic.Term{x}, logic.Pred("P", x)), nil))

	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	mustOK(t, d.AddArc("m", "a", "b", spec.NewMorphism("m", a, b, nil, nil)))
	cc, err := Colimit(d, "L")
	mustOK(t, err)
	if got := len(cc.Apex.Theorems); got != 1 {
		t.Fatalf("theorems = %d, want 1 (deduped)", got)
	}
}

func TestColimitQualifiesClashingAxioms(t *testing.T) {
	// Two nodes declare same-named axioms with *different* bodies over
	// unlinked symbols: the colimit must keep both, one under a
	// node-qualified name.
	x := logic.Var("x", "S")
	d2 := NewDiagram()
	a2 := mkSpec(t, "A2", "S", "P", "OnlyA")
	mustOK(t, a2.AddAxiom("local", logic.Forall([]*logic.Term{x}, logic.Pred("OnlyA", x))))
	b2 := mkSpec(t, "B2", "S", "P", "OnlyB")
	mustOK(t, b2.AddAxiom("local", logic.Forall([]*logic.Term{x}, logic.Pred("OnlyB", x))))
	base := mkSpec(t, "BASE", "S", "P")
	mustOK(t, d2.AddNode("base", base))
	mustOK(t, d2.AddNode("a", a2))
	mustOK(t, d2.AddNode("b", b2))
	mustOK(t, d2.AddArc("f", "base", "a", spec.NewMorphism("f", base, a2, nil, nil)))
	mustOK(t, d2.AddArc("g", "base", "b", spec.NewMorphism("g", base, b2, nil, nil)))
	cc, err := Colimit(d2, "L")
	mustOK(t, err)
	if len(cc.Apex.Axioms) != 2 {
		t.Fatalf("axioms = %d, want 2 (qualified)", len(cc.Apex.Axioms))
	}
	qualified := false
	for _, ax := range cc.Apex.Axioms {
		if strings.Contains(ax.Name, "_local") {
			qualified = true
		}
	}
	if !qualified {
		t.Fatalf("no node-qualified axiom name: %v", cc.Apex.Axioms)
	}
}

func TestColimitTranslatesRecordDefs(t *testing.T) {
	a := spec.New("A")
	mustOK(t, a.AddSort("Proc", ""))
	mustOK(t, a.AddSort("Msg", "{p:Proc, n:Nat}"))
	b := spec.New("B")
	mustOK(t, b.AddSort("Node", ""))
	mustOK(t, b.AddSort("Msg", "{p:Node, n:Nat}"))
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddNode("b", b))
	m := spec.NewMorphism("m", a, b, map[string]string{"Proc": "Node"}, nil)
	mustOK(t, d.AddArc("m", "a", "b", m))
	cc, err := Colimit(d, "L")
	mustOK(t, err)
	// The record def must reference the identified sort name.
	found := false
	for _, s := range cc.Apex.Sig.Sorts {
		if s.Name == "Msg" {
			found = true
			if !strings.Contains(s.Def, "Node") && !strings.Contains(s.Def, "Proc") {
				t.Fatalf("record def lost its field sort: %q", s.Def)
			}
		}
	}
	if !found {
		t.Fatal("Msg sort missing")
	}
}

func TestReplaceWord(t *testing.T) {
	tests := []struct{ in, from, to, want string }{
		{"{p:Proc, q:Proc}", "Proc", "Node", "{p:Node, q:Node}"},
		{"Procs and Proc", "Proc", "Node", "Procs and Node"},
		{"Proc", "Proc", "Node", "Node"},
		{"xProc", "Proc", "Node", "xProc"},
	}
	for _, tt := range tests {
		if got := replaceWord(tt.in, tt.from, tt.to); got != tt.want {
			t.Errorf("replaceWord(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestColimitSelfLoop(t *testing.T) {
	// An endomorphism arc that permutes two ops forces them into one
	// class.
	a := mkSpec(t, "A", "S", "P", "Q")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	m := spec.NewMorphism("swap", a, a, nil, map[string]string{"P": "Q", "Q": "P"})
	mustOK(t, d.AddArc("m", "a", "a", m))
	cc, err := Colimit(d, "L")
	mustOK(t, err)
	if got := len(cc.Apex.Sig.Ops); got != 1 {
		t.Fatalf("ops = %d, want 1 (P and Q identified)", got)
	}
}

func TestCoconeVerifyMissingCone(t *testing.T) {
	a := mkSpec(t, "A", "S", "P")
	d := NewDiagram()
	mustOK(t, d.AddNode("a", a))
	mustOK(t, d.AddArc("id", "a", "a", spec.Identity(a)))
	cc := &Cocone{Apex: a, Cones: map[string]*spec.Morphism{}}
	if err := cc.VerifyCommutes(d); err == nil {
		t.Fatal("missing cone accepted")
	}
}
