// Package cat implements the categorical operations of the paper's
// Chapter 2 over the category of specifications: diagrams (directed
// multigraphs of specs and morphisms), the pushout of a pair of morphisms
// with common source, and the colimit of an arbitrary diagram, computed as
// the "shared union" of the specifications with symbols identified along
// the morphism arcs.
package cat

// unionFind is a classic disjoint-set forest over string keys with path
// compression and union by size.
type unionFind struct {
	parent map[string]string
	size   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}, size: map[string]int{}}
}

// add registers a key as its own singleton class (no-op if present).
func (u *unionFind) add(key string) {
	if _, ok := u.parent[key]; !ok {
		u.parent[key] = key
		u.size[key] = 1
	}
}

// find returns the class representative of key, adding it if unknown.
func (u *unionFind) find(key string) string {
	u.add(key)
	root := key
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[key] != root {
		key, u.parent[key] = u.parent[key], root
	}
	return root
}

// union merges the classes of a and b and returns the new representative.
func (u *unionFind) union(a, b string) string {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}

// same reports whether a and b are in one class.
func (u *unionFind) same(a, b string) bool { return u.find(a) == u.find(b) }

// classes returns all classes as representative -> sorted member list.
func (u *unionFind) classes() map[string][]string {
	out := map[string][]string{}
	for k := range u.parent {
		r := u.find(k)
		out[r] = append(out[r], k)
	}
	for _, members := range out {
		sortStrings(members)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
