package cat

import (
	"errors"
	"fmt"
	"sort"

	"speccat/internal/core/spec"
)

// Sentinel errors.
var (
	// ErrBadDiagram is wrapped for structurally invalid diagrams.
	ErrBadDiagram = errors.New("cat: invalid diagram")
	// ErrNotCommuting is returned when a diagram fails a commutation check.
	ErrNotCommuting = errors.New("cat: diagram does not commute")
	// ErrIncompatible is wrapped when identified symbols have clashing profiles.
	ErrIncompatible = errors.New("cat: incompatible identification")
)

// Arc is a labeled morphism between two named diagram nodes.
type Arc struct {
	Label string
	From  string
	To    string
	M     *spec.Morphism
}

// Diagram is a directed multigraph whose nodes are labeled with
// specifications and whose arcs are labeled with morphisms (the paper's
// "diagram of specifications").
type Diagram struct {
	nodeOrder []string
	nodes     map[string]*spec.Spec
	arcs      []Arc
}

// NewDiagram returns an empty diagram.
func NewDiagram() *Diagram {
	return &Diagram{nodes: map[string]*spec.Spec{}}
}

// AddNode labels a node with a specification.
func (d *Diagram) AddNode(label string, s *spec.Spec) error {
	if s == nil {
		return fmt.Errorf("%w: nil spec for node %s", ErrBadDiagram, label)
	}
	if _, dup := d.nodes[label]; dup {
		return fmt.Errorf("%w: duplicate node %s", ErrBadDiagram, label)
	}
	d.nodes[label] = s
	d.nodeOrder = append(d.nodeOrder, label)
	return nil
}

// Node returns the spec at a label.
func (d *Diagram) Node(label string) (*spec.Spec, bool) {
	s, ok := d.nodes[label]
	return s, ok
}

// Nodes returns node labels in insertion order.
func (d *Diagram) Nodes() []string { return append([]string{}, d.nodeOrder...) }

// Arcs returns the arcs in insertion order.
func (d *Diagram) Arcs() []Arc { return append([]Arc{}, d.arcs...) }

// AddArc adds a morphism arc. The morphism's source/target must be the
// specs at the from/to labels.
func (d *Diagram) AddArc(label, from, to string, m *spec.Morphism) error {
	src, ok := d.nodes[from]
	if !ok {
		return fmt.Errorf("%w: arc %s: unknown node %s", ErrBadDiagram, label, from)
	}
	dst, ok := d.nodes[to]
	if !ok {
		return fmt.Errorf("%w: arc %s: unknown node %s", ErrBadDiagram, label, to)
	}
	if m == nil {
		return fmt.Errorf("%w: arc %s: nil morphism", ErrBadDiagram, label)
	}
	if m.Source != src {
		return fmt.Errorf("%w: arc %s: morphism source %s is not node %s", ErrBadDiagram, label, m.Source.Name, from)
	}
	if m.Target != dst {
		return fmt.Errorf("%w: arc %s: morphism target %s is not node %s", ErrBadDiagram, label, m.Target.Name, to)
	}
	d.arcs = append(d.arcs, Arc{Label: label, From: from, To: to, M: m})
	return nil
}

// Validate checks every arc's signature condition.
func (d *Diagram) Validate() error {
	for _, a := range d.arcs {
		if err := a.M.CheckSignature(); err != nil {
			return fmt.Errorf("arc %s: %w", a.Label, err)
		}
	}
	return nil
}

// Cocone is the result of a colimit: the apex specification and one cone
// morphism per diagram node, satisfying cone[to] ∘ arc = cone[from] for
// every arc.
type Cocone struct {
	Apex *spec.Spec
	// Cones maps node label to the morphism node -> apex.
	Cones map[string]*spec.Morphism
}

// VerifyCommutes checks the defining property of the cocone against the
// diagram: for every arc a: X -> Y, cone_Y ∘ a equals cone_X.
func (c *Cocone) VerifyCommutes(d *Diagram) error {
	for _, a := range d.arcs {
		coneFrom, ok := c.Cones[a.From]
		if !ok {
			return fmt.Errorf("%w: missing cone for node %s", ErrBadDiagram, a.From)
		}
		coneTo, ok := c.Cones[a.To]
		if !ok {
			return fmt.Errorf("%w: missing cone for node %s", ErrBadDiagram, a.To)
		}
		composed, err := spec.Compose(a.M, coneTo)
		if err != nil {
			return err
		}
		if !composed.Equal(coneFrom) {
			return fmt.Errorf("%w: arc %s: cone_%s ∘ %s ≠ cone_%s",
				ErrNotCommuting, a.Label, a.To, a.Label, a.From)
		}
	}
	return nil
}

// sortedKeys returns map keys sorted for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
