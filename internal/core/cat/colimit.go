package cat

import (
	"fmt"
	"strings"

	"speccat/internal/core/spec"
)

// elemKey identifies one symbol occurrence in the diagram: node|kind|name.
func elemKey(node, kind, name string) string { return node + "|" + kind + "|" + name }

func splitKey(key string) (node, kind, name string) {
	parts := strings.SplitN(key, "|", 3)
	return parts[0], parts[1], parts[2]
}

// Colimit computes the colimit of the diagram: the "shared union" of the
// node specifications in which exactly the symbols linked by arcs are
// identified (the paper's Figure 2.2). It returns the apex specification
// (named apexName) and the cone morphisms from each node.
func Colimit(d *Diagram, apexName string) (*Cocone, error) {
	if len(d.nodeOrder) == 0 {
		return nil, fmt.Errorf("%w: empty diagram", ErrBadDiagram)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}

	// 1. Register every symbol occurrence.
	uf := newUnionFind()
	for _, n := range d.nodeOrder {
		s := d.nodes[n]
		for _, srt := range s.Sig.Sorts {
			uf.add(elemKey(n, "sort", srt.Name))
		}
		for _, op := range s.Sig.Ops {
			uf.add(elemKey(n, "op", op.Name))
		}
	}

	// 2. Identify along arcs.
	for _, a := range d.arcs {
		for _, srt := range a.M.Source.Sig.Sorts {
			uf.union(elemKey(a.From, "sort", srt.Name), elemKey(a.To, "sort", a.M.MapSort(srt.Name)))
		}
		for _, op := range a.M.Source.Sig.Ops {
			uf.union(elemKey(a.From, "op", op.Name), elemKey(a.To, "op", a.M.MapOp(op.Name)))
		}
	}

	// 3. Name each equivalence class.
	classNames, err := nameClasses(uf)
	if err != nil {
		return nil, err
	}

	// 4. Cone morphisms (symbol maps only; specs wired below).
	apex := spec.New(apexName)
	cones := map[string]*spec.Morphism{}
	for _, n := range d.nodeOrder {
		s := d.nodes[n]
		sortMap := map[string]string{}
		opMap := map[string]string{}
		for _, srt := range s.Sig.Sorts {
			sortMap[srt.Name] = classNames[uf.find(elemKey(n, "sort", srt.Name))]
		}
		for _, op := range s.Sig.Ops {
			opMap[op.Name] = classNames[uf.find(elemKey(n, "op", op.Name))]
		}
		cones[n] = spec.NewMorphism("cone_"+n, s, apex, sortMap, opMap)
	}

	// 5. Apex sorts: one per sort class; keep the first non-empty definition.
	sortDef := map[string]string{}
	for _, n := range d.nodeOrder {
		for _, srt := range d.nodes[n].Sig.Sorts {
			cls := classNames[uf.find(elemKey(n, "sort", srt.Name))]
			if srt.Def != "" && sortDef[cls] == "" {
				sortDef[cls] = translateDef(srt.Def, cones[n])
			}
		}
	}
	added := map[string]bool{}
	for _, n := range d.nodeOrder {
		for _, srt := range d.nodes[n].Sig.Sorts {
			cls := classNames[uf.find(elemKey(n, "sort", srt.Name))]
			if !added[cls] {
				added[cls] = true
				if err := apex.AddSort(cls, sortDef[cls]); err != nil {
					return nil, err
				}
			}
		}
	}

	// 6. Apex ops: one per op class; all members must translate to the
	// same profile.
	opSeen := map[string]spec.Op{}
	for _, n := range d.nodeOrder {
		cone := cones[n]
		for _, op := range d.nodes[n].Sig.Ops {
			cls := classNames[uf.find(elemKey(n, "op", op.Name))]
			prof := spec.Op{Name: cls, Args: make([]string, len(op.Args)), Result: op.Result}
			for i, a := range op.Args {
				prof.Args[i] = cone.MapSort(a)
			}
			if op.Result != spec.BoolSort {
				prof.Result = cone.MapSort(op.Result)
			}
			if prev, ok := opSeen[cls]; ok {
				if !profilesEqual(prev, prof) {
					return nil, fmt.Errorf("%w: op class %s: %v vs %v (node %s op %s)",
						ErrIncompatible, cls, prev, prof, n, op.Name)
				}
				continue
			}
			opSeen[cls] = prof
			if err := apex.AddOp(prof); err != nil {
				return nil, err
			}
		}
	}

	// 7. Axioms and theorems, translated along the cones. Axioms whose
	// translations coincide are shared; same-named axioms with different
	// translations get node-qualified names.
	for _, n := range d.nodeOrder {
		cone := cones[n]
		s := d.nodes[n]
		for _, ax := range s.Axioms {
			f := cone.TranslateFormula(ax.Formula)
			if existing, ok := apex.FindAxiom(ax.Name); ok {
				if existing.Formula.Equal(f) {
					continue
				}
				if err := apex.AddAxiom(n+"_"+ax.Name, f); err != nil {
					return nil, err
				}
				continue
			}
			if err := apex.AddAxiom(ax.Name, f); err != nil {
				return nil, err
			}
		}
		for _, th := range s.Theorems {
			f := cone.TranslateFormula(th.Formula)
			if existing, ok := apex.FindTheorem(th.Name); ok {
				if existing.Formula.Equal(f) {
					continue
				}
				if err := apex.AddTheorem(n+"_"+th.Name, f, th.Using); err != nil {
					return nil, err
				}
				continue
			}
			if err := apex.AddTheorem(th.Name, f, th.Using); err != nil {
				return nil, err
			}
		}
	}

	cc := &Cocone{Apex: apex, Cones: cones}
	if err := cc.VerifyCommutes(d); err != nil {
		return nil, err
	}
	return cc, nil
}

// nameClasses picks a canonical symbol name per equivalence class: the
// name shared by all members when unique, otherwise the lexicographically
// smallest member name. Distinct classes colliding on the same name are
// disambiguated with the owning node label.
func nameClasses(uf *unionFind) (map[string]string, error) {
	classes := uf.classes()
	names := map[string]string{}
	used := map[string]string{} // name -> representative that claimed it
	for _, rep := range sortedKeys(classes) {
		members := classes[rep]
		name := ""
		for _, m := range members {
			_, _, symName := splitKey(m)
			if name == "" || symName < name {
				name = symName
			}
		}
		// Prefer a name shared by every member (the normal case).
		common := true
		for _, m := range members {
			_, _, symName := splitKey(m)
			if symName != nameOf(members[0]) {
				common = false
				break
			}
		}
		if common {
			name = nameOf(members[0])
		}
		base := name
		for i := 0; ; i++ {
			candidate := base
			if i > 0 {
				node, _, _ := splitKey(members[0])
				candidate = fmt.Sprintf("%s_%s%d", base, node, i)
			}
			if owner, taken := used[candidate]; !taken || owner == rep {
				used[candidate] = rep
				names[rep] = candidate
				break
			}
		}
	}
	return names, nil
}

func nameOf(key string) string {
	_, _, n := splitKey(key)
	return n
}

func profilesEqual(a, b spec.Op) bool {
	if a.Name != b.Name || a.Result != b.Result || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// translateDef rewrites sort names inside a record/alias definition along a
// cone. Definitions are opaque strings; we conservatively rewrite only
// whole-word occurrences of source sort names.
func translateDef(def string, cone *spec.Morphism) string {
	out := def
	for _, srt := range cone.Source.Sig.Sorts {
		to := cone.MapSort(srt.Name)
		if to == srt.Name {
			continue
		}
		out = replaceWord(out, srt.Name, to)
	}
	return out
}

func replaceWord(s, from, to string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], from) && wordBoundary(s, i, len(from)) {
			b.WriteString(to)
			i += len(from)
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func wordBoundary(s string, start, length int) bool {
	before := start == 0 || !isWordChar(s[start-1])
	after := start+length >= len(s) || !isWordChar(s[start+length])
	return before && after
}

func isWordChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// Pushout computes the pushout of two morphisms f: A -> B and g: A -> C
// with common source (the paper's Figure 2.1): the colimit of the span.
// It returns the apex D and the morphisms p: B -> D and q: C -> D, plus the
// full cocone (which also carries A's diagonal cone).
func Pushout(f, g *spec.Morphism, apexName string) (*Cocone, *spec.Morphism, *spec.Morphism, error) {
	if f.Source != g.Source {
		return nil, nil, nil, fmt.Errorf("%w: pushout requires a common source (%s vs %s)",
			ErrBadDiagram, f.Source.Name, g.Source.Name)
	}
	d := NewDiagram()
	if err := d.AddNode("a", f.Source); err != nil {
		return nil, nil, nil, err
	}
	if err := d.AddNode("b", f.Target); err != nil {
		return nil, nil, nil, err
	}
	if err := d.AddNode("c", g.Target); err != nil {
		return nil, nil, nil, err
	}
	if err := d.AddArc("f", "a", "b", f); err != nil {
		return nil, nil, nil, err
	}
	if err := d.AddArc("g", "a", "c", g); err != nil {
		return nil, nil, nil, err
	}
	cc, err := Colimit(d, apexName)
	if err != nil {
		return nil, nil, nil, err
	}
	return cc, cc.Cones["b"], cc.Cones["c"], nil
}

// Mediating computes the unique morphism u : colimit.Apex -> candidate.Apex
// required by the universal property, given a candidate cocone over the
// same diagram. It fails when the candidate cones disagree on an identified
// symbol (i.e. the candidate is not actually a cocone).
func Mediating(d *Diagram, colimit, candidate *Cocone) (*spec.Morphism, error) {
	sortMap := map[string]string{}
	opMap := map[string]string{}
	for _, n := range d.nodeOrder {
		colCone, ok := colimit.Cones[n]
		if !ok {
			return nil, fmt.Errorf("%w: colimit misses cone %s", ErrBadDiagram, n)
		}
		candCone, ok := candidate.Cones[n]
		if !ok {
			return nil, fmt.Errorf("%w: candidate misses cone %s", ErrBadDiagram, n)
		}
		for _, srt := range d.nodes[n].Sig.Sorts {
			from := colCone.MapSort(srt.Name)
			to := candCone.MapSort(srt.Name)
			if prev, seen := sortMap[from]; seen && prev != to {
				return nil, fmt.Errorf("%w: candidate cones disagree on sort class %s (%s vs %s)",
					ErrIncompatible, from, prev, to)
			}
			sortMap[from] = to
		}
		for _, op := range d.nodes[n].Sig.Ops {
			from := colCone.MapOp(op.Name)
			to := candCone.MapOp(op.Name)
			if prev, seen := opMap[from]; seen && prev != to {
				return nil, fmt.Errorf("%w: candidate cones disagree on op class %s (%s vs %s)",
					ErrIncompatible, from, prev, to)
			}
			opMap[from] = to
		}
	}
	return spec.NewMorphism("mediating", colimit.Apex, candidate.Apex, sortMap, opMap), nil
}
