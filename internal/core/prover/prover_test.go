package prover

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"speccat/internal/core/logic"
)

func nf(name string, f *logic.Formula) NamedFormula { return NamedFormula{Name: name, Formula: f} }

func mustProve(t *testing.T, axioms []NamedFormula, goal NamedFormula) *Result {
	t.Helper()
	res, err := New().Prove(axioms, goal)
	if err != nil {
		t.Fatalf("Prove(%s) failed: %v", goal.Name, err)
	}
	if len(res.Proof) == 0 || !res.Proof[len(res.Proof)-1].Clause.IsEmpty() {
		t.Fatalf("proof does not end in empty clause: %v", res.Proof)
	}
	return res
}

func mustFail(t *testing.T, axioms []NamedFormula, goal NamedFormula) {
	t.Helper()
	if _, err := New().Prove(axioms, goal); err == nil {
		t.Fatalf("Prove(%s) unexpectedly succeeded", goal.Name)
	}
}

func TestProveModusPonens(t *testing.T) {
	p, q := logic.Pred("P"), logic.Pred("Q")
	mustProve(t,
		[]NamedFormula{nf("p", p), nf("pq", logic.Implies(p, q))},
		nf("q", q))
}

func TestProveChain(t *testing.T) {
	p, q, r, s := logic.Pred("P"), logic.Pred("Q"), logic.Pred("R"), logic.Pred("S")
	mustProve(t,
		[]NamedFormula{
			nf("p", p),
			nf("pq", logic.Implies(p, q)),
			nf("qr", logic.Implies(q, r)),
			nf("rs", logic.Implies(r, s)),
		},
		nf("s", s))
}

func TestProveNonTheorem(t *testing.T) {
	p, q := logic.Pred("P"), logic.Pred("Q")
	mustFail(t, []NamedFormula{nf("p", p)}, nf("q", q))
}

func TestProveUniversalInstantiation(t *testing.T) {
	x := logic.Var("x", "S")
	c := logic.Const("c", "S")
	all := logic.Forall([]*logic.Term{x}, logic.Pred("P", x))
	mustProve(t, []NamedFormula{nf("all", all)}, nf("inst", logic.Pred("P", c)))
}

func TestProveSyllogism(t *testing.T) {
	// All men are mortal; Socrates is a man; therefore Socrates is mortal.
	x := logic.Var("x", "")
	socrates := logic.Const("socrates", "")
	axioms := []NamedFormula{
		nf("mortality", logic.Forall([]*logic.Term{x},
			logic.Implies(logic.Pred("Man", x), logic.Pred("Mortal", x)))),
		nf("socrates-man", logic.Pred("Man", socrates)),
	}
	res := mustProve(t, axioms, nf("socrates-mortal", logic.Pred("Mortal", socrates)))
	if res.Stats.ProofLength < 3 {
		t.Errorf("suspiciously short proof: %d steps", res.Stats.ProofLength)
	}
}

func TestProveExistentialGoal(t *testing.T) {
	// P(c) |- ex(x) P(x)
	c := logic.Const("c", "")
	x := logic.Var("x", "")
	mustProve(t,
		[]NamedFormula{nf("pc", logic.Pred("P", c))},
		nf("exists", logic.Exists([]*logic.Term{x}, logic.Pred("P", x))))
}

func TestProveTransitivityInstance(t *testing.T) {
	// Transitive R, R(a,b), R(b,c) |- R(a,c)
	x, y, z := logic.Var("x", ""), logic.Var("y", ""), logic.Var("z", "")
	a, b, c := logic.Const("a", ""), logic.Const("b", ""), logic.Const("c", "")
	trans := logic.Forall([]*logic.Term{x, y, z},
		logic.Implies(logic.And(logic.Pred("R", x, y), logic.Pred("R", y, z)), logic.Pred("R", x, z)))
	mustProve(t,
		[]NamedFormula{
			nf("trans", trans),
			nf("rab", logic.Pred("R", a, b)),
			nf("rbc", logic.Pred("R", b, c)),
		},
		nf("rac", logic.Pred("R", a, c)))
}

func TestProveNeedsFactoring(t *testing.T) {
	// (P(x) | P(y)) with goal ex(z) P(z) — requires factoring or double use.
	x, y, z := logic.Var("x", ""), logic.Var("y", ""), logic.Var("z", "")
	mustProve(t,
		[]NamedFormula{nf("pp", logic.Forall([]*logic.Term{x, y},
			logic.Or(logic.Pred("P", x), logic.Pred("P", y))))},
		nf("goal", logic.Exists([]*logic.Term{z}, logic.Pred("P", z))))
}

func TestProveContradictoryAxioms(t *testing.T) {
	// From P & ~P anything follows.
	p := logic.Pred("P")
	mustProve(t,
		[]NamedFormula{nf("p", p), nf("np", logic.Not(p))},
		nf("anything", logic.Pred("Q")))
}

func TestProveSortedMismatchFails(t *testing.T) {
	// fa(x:S) P(x) does not prove P(c:T): sorts block unification.
	x := logic.Var("x", "S")
	cT := logic.Const("c", "T")
	mustFail(t,
		[]NamedFormula{nf("all", logic.Forall([]*logic.Term{x}, logic.Pred("P", x)))},
		nf("inst", logic.Pred("P", cT)))
}

func TestProveConjunctionGoal(t *testing.T) {
	p, q := logic.Pred("P"), logic.Pred("Q")
	mustProve(t,
		[]NamedFormula{nf("p", p), nf("q", q)},
		nf("pq", logic.And(p, q)))
}

func TestProveIfThenElseGoal(t *testing.T) {
	c, p, q := logic.Pred("C"), logic.Pred("P"), logic.Pred("Q")
	axioms := []NamedFormula{
		nf("cp", logic.Implies(c, p)),
		nf("ncq", logic.Implies(logic.Not(c), q)),
	}
	mustProve(t, axioms, nf("ite", logic.IfThenElse(c, p, q)))
}

func TestProveTimeout(t *testing.T) {
	// An unprovable goal over a recursive axiom set: the search must stop.
	x := logic.Var("x", "")
	grow := logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("P", logic.App("s", "", x))))
	p := &Prover{Limits: Limits{
		MaxClauses:        2000,
		MaxIterations:     500,
		MaxClauseLiterals: 8,
		MaxTermSize:       50,
		Timeout:           2 * time.Second,
	}}
	_, err := p.Prove(
		[]NamedFormula{nf("grow", grow), nf("base", logic.Pred("P", logic.Const("z", "")))},
		nf("goal", logic.Pred("Q")))
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, ErrLimit) && !errors.Is(err, ErrExhausted) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestProofStepsAreConnected(t *testing.T) {
	p, q := logic.Pred("P"), logic.Pred("Q")
	res := mustProve(t,
		[]NamedFormula{nf("p", p), nf("pq", logic.Implies(p, q))},
		nf("q", q))
	for i, s := range res.Proof {
		if s.Index != i {
			t.Errorf("step %d has index %d", i, s.Index)
		}
		for _, par := range s.Parents {
			if par >= i {
				t.Errorf("step %d references later parent %d", i, par)
			}
		}
		if s.Rule == "input" && s.Origin == "" {
			t.Errorf("input step %d has no origin", i)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	p, q := logic.Pred("P"), logic.Pred("Q")
	res := mustProve(t,
		[]NamedFormula{nf("p", p), nf("pq", logic.Implies(p, q))},
		nf("q", q))
	if res.Stats.InputClauses != 3 {
		t.Errorf("InputClauses = %d, want 3", res.Stats.InputClauses)
	}
	if res.Stats.Retained == 0 || res.Stats.ProofLength == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

// TestInjectedClockDeadline drives the timeout deterministically: a fake
// clock that jumps past the deadline must abort the search with ErrLimit
// regardless of real elapsed time, and Elapsed must come from the same
// clock.
func TestInjectedClockDeadline(t *testing.T) {
	x := logic.Var("x", "")
	grow := logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("P", logic.App("s", "", x))))
	base := time.Unix(0, 0)
	calls := 0
	p := &Prover{
		Limits: Limits{
			MaxClauses:        5000,
			MaxIterations:     100000,
			MaxClauseLiterals: 8,
			MaxTermSize:       50,
			Timeout:           time.Minute,
		},
		Now: func() time.Time {
			calls++
			if calls == 1 {
				return base
			}
			return base.Add(time.Hour) // every later read is past the deadline
		},
	}
	_, err := p.Prove(
		[]NamedFormula{nf("grow", grow), nf("base", logic.Pred("P", logic.Const("z", "")))},
		nf("goal", logic.Pred("Q")))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("expected ErrLimit from injected deadline, got %v", err)
	}
	if calls < 2 {
		t.Fatalf("injected clock was read %d times, want at least 2", calls)
	}
}

// TestInjectedClockElapsed checks Stats.Elapsed is measured on the
// injected clock, not the wall clock.
func TestInjectedClockElapsed(t *testing.T) {
	pf, q := logic.Pred("P"), logic.Pred("Q")
	base := time.Unix(100, 0)
	tick := 0
	p := New()
	p.Now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick-1) * 7 * time.Second)
	}
	res, err := p.Prove([]NamedFormula{nf("p", pf), nf("pq", logic.Implies(pf, q))}, nf("q", q))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Elapsed <= 0 || res.Stats.Elapsed%(7*time.Second) != 0 {
		t.Errorf("Elapsed = %v, want a positive multiple of the injected 7s tick", res.Stats.Elapsed)
	}
}

// saturationInputs builds n mutually irresolvable unit facts P0..P(n-2)
// plus the unprovable goal Q: the search saturates after exactly n
// given-clause iterations (one per input clause, no resolvents).
func saturationInputs(n int) ([]NamedFormula, NamedFormula) {
	axioms := make([]NamedFormula, 0, n-1)
	for i := 0; i < n-1; i++ {
		axioms = append(axioms, nf(fmt.Sprintf("fact%d", i), logic.Pred(fmt.Sprintf("P%d", i))))
	}
	return axioms, nf("goal", logic.Pred("Q"))
}

// expiredClock returns a clock whose first reading is the start time and
// every later reading is far past any deadline.
func expiredClock() func() time.Time {
	base := time.Unix(0, 0)
	calls := 0
	return func() time.Time {
		calls++
		if calls == 1 {
			return base
		}
		return base.Add(time.Hour)
	}
}

// TestTimeoutAtSaturationBoundary pins the result classification when the
// wall-clock timeout fires on the same iteration the clause set saturates:
// the search must still report the definitive ErrExhausted (the goal is
// not entailed), never the inconclusive ErrLimit. The input count is sized
// so the queue drains exactly on a deadline-check iteration.
func TestTimeoutAtSaturationBoundary(t *testing.T) {
	axioms, goal := saturationInputs(deadlineCheckInterval)
	p := &Prover{
		Limits: Limits{
			MaxClauses:        5000,
			MaxIterations:     100000,
			MaxClauseLiterals: 8,
			MaxTermSize:       50,
			Timeout:           time.Millisecond,
		},
		Now: expiredClock(),
	}
	_, err := p.Prove(axioms, goal)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("saturation on the deadline iteration: got %v, want ErrExhausted", err)
	}
}

// TestTimeoutWithWorkRemaining pins the companion sentinel: when the
// deadline fires while unprocessed clauses remain, the verdict is the
// inconclusive ErrLimit.
func TestTimeoutWithWorkRemaining(t *testing.T) {
	axioms, goal := saturationInputs(2 * deadlineCheckInterval)
	p := &Prover{
		Limits: Limits{
			MaxClauses:        5000,
			MaxIterations:     100000,
			MaxClauseLiterals: 8,
			MaxTermSize:       50,
			Timeout:           time.Millisecond,
		},
		Now: expiredClock(),
	}
	_, err := p.Prove(axioms, goal)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("deadline with work remaining: got %v, want ErrLimit", err)
	}
}

// TestDefaultLimitsHaveTimeout guards the CI-hang backstop: the default
// limits (used by zero-value provers and the corpus elaborator) must carry
// a non-zero wall-clock timeout.
func TestDefaultLimitsHaveTimeout(t *testing.T) {
	if DefaultLimits().Timeout <= 0 {
		t.Fatal("DefaultLimits().Timeout must be non-zero")
	}
}

func renderProof(res *Result) string {
	var b []byte
	for _, s := range res.Proof {
		b = append(b, s.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// TestClauseCacheBitIdentical pins memoization soundness: with skolem
// names namespaced per formula, proofs derived through a shared cache are
// byte-identical to proofs that re-clausify everything.
func TestClauseCacheBitIdentical(t *testing.T) {
	x, y := logic.Var("x", ""), logic.Var("y", "")
	// The negated universal goal skolemizes, exercising skolem naming.
	ax := nf("imp", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("Q", x))))
	base := nf("base", logic.Forall([]*logic.Term{y}, logic.Pred("P", y)))
	goal := nf("allq", logic.Forall([]*logic.Term{y}, logic.Pred("Q", y)))

	plain := mustProve(t, []NamedFormula{ax, base}, goal)

	cache := NewClauseCache()
	first, second := New(), New()
	first.Cache, second.Cache = cache, cache
	res1, err := first.Prove([]NamedFormula{ax, base}, goal)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Prove([]NamedFormula{ax, base}, goal)
	if err != nil {
		t.Fatal(err)
	}
	if renderProof(res1) != renderProof(plain) || renderProof(res2) != renderProof(plain) {
		t.Errorf("cached proof differs from uncached:\ncached:\n%s\nuncached:\n%s", renderProof(res1), renderProof(plain))
	}
	hits, misses := cache.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("cache not exercised: hits=%d misses=%d", hits, misses)
	}
}

// TestClauseCacheConcurrent drives one cache from many provers at once;
// run under -race this pins the cache's thread safety, and every proof
// must match the sequential rendering.
func TestClauseCacheConcurrent(t *testing.T) {
	x := logic.Var("x", "")
	ax := nf("imp", logic.Forall([]*logic.Term{x},
		logic.Implies(logic.Pred("P", x), logic.Pred("Q", x))))
	base := nf("base", logic.Pred("P", logic.Const("c", "")))
	goal := nf("qc", logic.Pred("Q", logic.Const("c", "")))
	want := renderProof(mustProve(t, []NamedFormula{ax, base}, goal))

	cache := NewClauseCache()
	const n = 8
	got := make([]string, n)
	errs := make([]error, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			p := New()
			p.Cache = cache
			res, err := p.Prove([]NamedFormula{ax, base}, goal)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = renderProof(res)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("worker %d proof differs from sequential", i)
		}
	}
}
