package prover

import (
	"sync"

	"speccat/internal/core/logic"
)

// ClauseCache memoizes clausification across Prove calls. The same
// building-block axioms (Agreebroad, Agreeconsensus, ...) appear in the
// premise sets of every downstream theorem; without a cache each proof
// re-runs NNF conversion, skolemization and CNF distribution on them.
//
// A cache entry is keyed by the formula's name and body, and Prove
// namespaces skolem symbols per formula (see Prover.clausify), so the
// cached clause set is a pure function of the key: searches that hit the
// cache derive bit-identical proofs to searches that rebuild the clauses.
//
// The cache is safe for concurrent use by multiple provers; the clause
// sets it hands out are shared and must be treated as immutable (the
// prover never mutates clauses — resolution and factoring build fresh
// ones).
type ClauseCache struct {
	mu     sync.Mutex
	m      map[string][]*logic.Clause
	hits   int
	misses int
}

// NewClauseCache returns an empty clause cache.
func NewClauseCache() *ClauseCache {
	return &ClauseCache{m: map[string][]*logic.Clause{}}
}

// clauses returns the clause set for key, building and storing it on first
// use. Concurrent callers may race to build the same entry; both builds
// are identical (clausification is deterministic), so whichever result is
// stored or returned is safe to share.
func (c *ClauseCache) clauses(key string, build func() []*logic.Clause) []*logic.Clause {
	c.mu.Lock()
	if cs, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return cs
	}
	c.mu.Unlock()
	cs := build()
	c.mu.Lock()
	c.m[key] = cs
	c.misses++
	c.mu.Unlock()
	return cs
}

// Stats reports cache effectiveness: hits are clausifications avoided,
// misses are formulas actually clausified (one per distinct entry, plus
// any lost build races).
func (c *ClauseCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
