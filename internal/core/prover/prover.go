// Package prover implements a saturation-based resolution theorem prover for
// sorted first-order logic. It is the stand-in for the Snark prover used
// through Specware in the paper: given a set of axioms and a conjecture, it
// negates the conjecture, clausifies everything, and searches for the empty
// clause by binary resolution with factoring.
//
// The search uses the given-clause algorithm with a set-of-support strategy
// (clauses descending from the negated conjecture are preferred), unit
// preference, and subsumption by canonical identity. Limits bound the search
// so a failed proof attempt terminates.
package prover

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"speccat/internal/core/logic"
)

// Sentinel errors returned by Prove.
var (
	// ErrExhausted means the clause space was saturated without refutation:
	// the conjecture does not follow from the axioms (by resolution).
	ErrExhausted = errors.New("prover: saturated without refutation; goal not entailed")
	// ErrLimit means a resource limit stopped the search inconclusively.
	ErrLimit = errors.New("prover: resource limit reached before refutation")
)

// Limits bounds a proof search.
type Limits struct {
	// MaxClauses caps the number of retained clauses.
	MaxClauses int
	// MaxIterations caps given-clause loop iterations.
	MaxIterations int
	// MaxClauseLiterals discards derived clauses longer than this.
	MaxClauseLiterals int
	// MaxTermSize discards derived clauses containing literals bigger than this.
	MaxTermSize int
	// Timeout caps wall-clock search time; zero means no timeout.
	Timeout time.Duration
}

// DefaultLimits are generous enough for every proof in the thesis corpus.
func DefaultLimits() Limits {
	return Limits{
		MaxClauses:        200000,
		MaxIterations:     50000,
		MaxClauseLiterals: 24,
		MaxTermSize:       120,
		Timeout:           30 * time.Second,
	}
}

// Stats reports what a proof search did.
type Stats struct {
	// InputClauses is the number of clauses after clausification.
	InputClauses int
	// Generated counts derived clauses, including discarded ones.
	Generated int
	// Retained counts clauses kept after subsumption/limits.
	Retained int
	// Iterations counts given-clause loop rounds.
	Iterations int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// ProofLength is the number of resolution steps in the found proof.
	ProofLength int
}

// Result is the outcome of a successful proof.
type Result struct {
	Stats Stats
	// Proof lists the derivation steps that end in the empty clause.
	Proof []ProofStep
}

// ProofStep records one clause in the refutation: either an input clause or
// a resolvent/factor of earlier steps.
type ProofStep struct {
	// Index is the step's position in the proof.
	Index int
	// Clause is the derived clause.
	Clause *logic.Clause
	// Rule is "input", "resolve", or "factor".
	Rule string
	// Parents are indices of parent steps (empty for inputs).
	Parents []int
	// Origin names the axiom or conjecture an input clause came from.
	Origin string
}

// String renders a proof step as a single line.
func (p ProofStep) String() string {
	switch p.Rule {
	case "input":
		return fmt.Sprintf("[%d] %s  (input: %s)", p.Index, p.Clause, p.Origin)
	default:
		parents := make([]string, len(p.Parents))
		for i, q := range p.Parents {
			parents[i] = fmt.Sprintf("%d", q)
		}
		return fmt.Sprintf("[%d] %s  (%s %s)", p.Index, p.Clause, p.Rule, strings.Join(parents, ","))
	}
}

// NamedFormula pairs a formula with a provenance label for proof reporting.
type NamedFormula struct {
	Name    string
	Formula *logic.Formula
}

// Prover holds search configuration. The zero value uses DefaultLimits.
type Prover struct {
	Limits Limits
	// DisableSOS turns off the set-of-support restriction, saturating the
	// full clause set from the start (used by the ablation benchmarks).
	DisableSOS bool
	// Now supplies the clock used for Limits.Timeout and Stats.Elapsed.
	// Nil means the wall clock; tests and simulations inject their own so
	// proof search stays deterministic under a controlled clock.
	Now func() time.Time
	// Cache, when non-nil, memoizes clausification of premises and goals
	// across Prove calls. Skolem symbols are namespaced per formula, so
	// cached and uncached searches derive bit-identical proofs. The cache
	// may be shared by provers running concurrently.
	Cache *ClauseCache
}

// deadlineCheckInterval is how often, in given-clause iterations, the
// saturation loop samples the clock against the wall-clock deadline.
const deadlineCheckInterval = 64

// New returns a Prover with default limits.
func New() *Prover { return &Prover{Limits: DefaultLimits()} }

// Prove attempts to show that axioms entail goal. On success it returns the
// refutation; otherwise it returns ErrExhausted or ErrLimit.
func (p *Prover) Prove(axioms []NamedFormula, goal NamedFormula) (*Result, error) {
	lim := p.Limits
	if lim.MaxClauses == 0 {
		lim = DefaultLimits()
	}
	now := p.Now
	if now == nil {
		now = time.Now //lint:allow nowallclock the CLI default; tests and sims inject Prover.Now
	}
	start := now()

	type tagged struct {
		clause *logic.Clause
		sos    bool // descends from the negated conjecture
		origin string
	}
	var inputs []tagged
	for _, ax := range axioms {
		for _, c := range p.clausify(ax.Name, ax.Formula) {
			inputs = append(inputs, tagged{clause: c, origin: ax.Name})
		}
	}
	negGoal := logic.Not(logic.Closure(goal.Formula))
	for _, c := range p.clausify("~"+goal.Name, negGoal) {
		inputs = append(inputs, tagged{clause: c, sos: true, origin: "~" + goal.Name})
	}

	run := func(restrictSOS bool) (*Result, error) {
		st := &searchState{
			limits:      lim,
			now:         now,
			start:       start,
			seen:        map[string]int{},
			deadline:    start.Add(lim.Timeout),
			hasDeadline: lim.Timeout > 0,
			restrictSOS: restrictSOS,
		}
		for _, in := range inputs {
			st.addClause(in.clause, "input", nil, in.origin, in.sos)
		}
		st.stats.InputClauses = len(inputs)

		if idx := st.emptyClause(); idx >= 0 {
			return st.result(idx)
		}
		return st.saturate()
	}

	if p.DisableSOS {
		return run(false)
	}
	res, err := run(true)
	if errors.Is(err, ErrExhausted) {
		// Set-of-support is complete only when the axioms alone are
		// satisfiable; retry unrestricted so inconsistent axiom sets are
		// still refuted.
		return run(false)
	}
	return res, err
}

// clausify converts one named formula to clauses. Skolem symbols are
// namespaced by the formula's name (premise names are unique within a
// spec; the goal is keyed under "~name"), so the clause set is a pure
// function of (name, formula) — the property that makes memoization sound
// and keeps cached and uncached searches bit-identical.
func (p *Prover) clausify(name string, f *logic.Formula) []*logic.Clause {
	build := func() []*logic.Clause {
		n := 0
		fresh := func() string { n++; return fmt.Sprintf("sk_%s_%d", name, n) }
		return logic.ClausifyWith(f, fresh)
	}
	if p.Cache == nil {
		return build()
	}
	return p.Cache.clauses(name+"\x00"+f.String(), build)
}

// searchState is the mutable state of one proof search.
type searchState struct {
	limits      Limits
	now         func() time.Time
	start       time.Time
	deadline    time.Time
	hasDeadline bool
	restrictSOS bool
	steps       []ProofStep
	sos         []bool
	active      []int // indices of processed clauses
	queue       []int // indices of unprocessed clauses
	seen        map[string]int
	stats       Stats
	emptyIdx    int
}

func (st *searchState) emptyClause() int {
	for i, s := range st.steps {
		if s.Clause.IsEmpty() {
			return i
		}
	}
	return -1
}

// addClause records a clause unless it is a duplicate, too large, or over
// limits; it returns the step index or -1.
func (st *searchState) addClause(c *logic.Clause, rule string, parents []int, origin string, sos bool) int {
	if c == nil {
		return -1
	}
	if len(c.Literals) > st.limits.MaxClauseLiterals {
		return -1
	}
	for _, l := range c.Literals {
		sz := 0
		for _, a := range l.Atom.Args {
			sz += a.Size()
		}
		if sz > st.limits.MaxTermSize {
			return -1
		}
	}
	key := c.Canonical()
	if _, dup := st.seen[key]; dup {
		return -1
	}
	if len(st.steps) >= st.limits.MaxClauses {
		return -1
	}
	idx := len(st.steps)
	st.seen[key] = idx
	st.steps = append(st.steps, ProofStep{Index: idx, Clause: c, Rule: rule, Parents: parents, Origin: origin})
	st.sos = append(st.sos, sos)
	st.queue = append(st.queue, idx)
	st.stats.Retained++
	return idx
}

func (st *searchState) saturate() (*Result, error) {
	for len(st.queue) > 0 {
		st.stats.Iterations++
		if st.stats.Iterations > st.limits.MaxIterations {
			return nil, fmt.Errorf("%w (iterations > %d)", ErrLimit, st.limits.MaxIterations)
		}
		given := st.pickGiven()
		st.active = append(st.active, given)

		// Factors of the given clause.
		for _, f := range factors(st.steps[given].Clause) {
			if idx := st.addClause(f, "factor", []int{given}, "", st.sos[given]); idx >= 0 {
				st.stats.Generated++
				if st.steps[idx].Clause.IsEmpty() {
					return st.result(idx)
				}
			}
		}
		// Binary resolution against all active clauses. Set of support:
		// at least one parent must be a SOS clause.
		for _, other := range st.active {
			if st.restrictSOS && !st.sos[given] && !st.sos[other] {
				continue
			}
			for _, r := range resolvents(st.steps[given].Clause, st.steps[other].Clause) {
				st.stats.Generated++
				idx := st.addClause(r, "resolve", []int{given, other}, "", true)
				if idx >= 0 && st.steps[idx].Clause.IsEmpty() {
					return st.result(idx)
				}
			}
			if len(st.steps) >= st.limits.MaxClauses {
				return nil, fmt.Errorf("%w (clauses >= %d)", ErrLimit, st.limits.MaxClauses)
			}
		}
		// The deadline is sampled after the given clause is processed and
		// only while unprocessed clauses remain: when the timeout fires on
		// the same iteration the clause set saturates, the search still
		// reports the definitive ErrExhausted (non-entailment), never the
		// inconclusive ErrLimit.
		if len(st.queue) > 0 && st.hasDeadline &&
			st.stats.Iterations%deadlineCheckInterval == 0 && st.now().After(st.deadline) {
			return nil, fmt.Errorf("%w (timeout %v)", ErrLimit, st.limits.Timeout)
		}
	}
	return nil, ErrExhausted
}

// pickGiven removes and returns the best clause index from the queue:
// fewest literals first (unit preference), then smallest term size, then
// oldest. The queue is small in our corpus, so a linear scan is fine.
func (st *searchState) pickGiven() int {
	best := 0
	for i := 1; i < len(st.queue); i++ {
		if st.better(st.queue[i], st.queue[best]) {
			best = i
		}
	}
	idx := st.queue[best]
	st.queue = append(st.queue[:best], st.queue[best+1:]...)
	return idx
}

func (st *searchState) better(a, b int) bool {
	ca, cb := st.steps[a].Clause, st.steps[b].Clause
	if len(ca.Literals) != len(cb.Literals) {
		return len(ca.Literals) < len(cb.Literals)
	}
	sa, sb := clauseSize(ca), clauseSize(cb)
	if sa != sb {
		return sa < sb
	}
	return a < b
}

func clauseSize(c *logic.Clause) int {
	n := 0
	for _, l := range c.Literals {
		for _, a := range l.Atom.Args {
			n += a.Size()
		}
	}
	return n
}

func (st *searchState) result(emptyIdx int) (*Result, error) {
	st.stats.Elapsed = st.now().Sub(st.start)
	proof := extractProof(st.steps, emptyIdx)
	st.stats.ProofLength = len(proof)
	return &Result{Stats: st.stats, Proof: proof}, nil
}

// extractProof walks parents back from the empty clause and renumbers the
// used steps in topological order.
func extractProof(steps []ProofStep, emptyIdx int) []ProofStep {
	needed := map[int]bool{}
	var mark func(int)
	mark = func(i int) {
		if needed[i] {
			return
		}
		needed[i] = true
		for _, p := range steps[i].Parents {
			mark(p)
		}
	}
	mark(emptyIdx)
	idxs := make([]int, 0, len(needed))
	for i := range needed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	renum := map[int]int{}
	out := make([]ProofStep, 0, len(idxs))
	for newIdx, old := range idxs {
		renum[old] = newIdx
		s := steps[old]
		np := make([]int, len(s.Parents))
		for i, p := range s.Parents {
			np[i] = renum[p]
		}
		out = append(out, ProofStep{Index: newIdx, Clause: s.Clause, Rule: s.Rule, Parents: np, Origin: s.Origin})
	}
	return out
}

// resolvents returns all binary resolvents of clauses a and b.
func resolvents(a, b *logic.Clause) []*logic.Clause {
	// Standardize apart.
	a2 := a.RenameVars("_l")
	b2 := b.RenameVars("_r")
	var out []*logic.Clause
	for i, la := range a2.Literals {
		for j, lb := range b2.Literals {
			if la.Negated == lb.Negated {
				continue
			}
			s, ok := logic.UnifyAtoms(la.Atom, lb.Atom, nil)
			if !ok {
				continue
			}
			var lits []logic.Literal
			for k, l := range a2.Literals {
				if k != i {
					lits = append(lits, l.Apply(s))
				}
			}
			for k, l := range b2.Literals {
				if k != j {
					lits = append(lits, l.Apply(s))
				}
			}
			if c := simplify(&logic.Clause{Literals: lits}); c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// factors returns the binary factors of a clause: for each unifiable pair of
// same-polarity literals, the clause with the pair merged.
func factors(c *logic.Clause) []*logic.Clause {
	var out []*logic.Clause
	for i := 0; i < len(c.Literals); i++ {
		for j := i + 1; j < len(c.Literals); j++ {
			li, lj := c.Literals[i], c.Literals[j]
			if li.Negated != lj.Negated {
				continue
			}
			s, ok := logic.UnifyAtoms(li.Atom, lj.Atom, nil)
			if !ok {
				continue
			}
			var lits []logic.Literal
			for k, l := range c.Literals {
				if k == j {
					continue
				}
				lits = append(lits, l.Apply(s))
			}
			if f := simplify(&logic.Clause{Literals: lits}); f != nil {
				out = append(out, f)
			}
		}
	}
	return out
}

// simplify removes duplicate literals; returns nil for tautologies.
func simplify(c *logic.Clause) *logic.Clause {
	var out []logic.Literal
	for _, l := range c.Literals {
		dup := false
		for _, m := range out {
			if l.Negated == m.Negated && l.Atom.Equal(m.Atom) {
				dup = true
				break
			}
			if l.Complementary(m) {
				return nil
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return &logic.Clause{Literals: out}
}
