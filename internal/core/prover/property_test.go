package prover

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"speccat/internal/core/logic"
)

// randomHornKB builds a random propositional Horn knowledge base over
// `atoms` symbols and returns the axioms plus the set of derivable atoms
// (computed by forward chaining, the semantic ground truth).
func randomHornKB(r *rand.Rand, atoms, rules, facts int) ([]NamedFormula, map[string]bool) {
	name := func(i int) string { return fmt.Sprintf("A%d", i) }
	var axioms []NamedFormula

	factSet := map[string]bool{}
	for i := 0; i < facts; i++ {
		a := name(r.Intn(atoms))
		if factSet[a] {
			continue
		}
		factSet[a] = true
		axioms = append(axioms, NamedFormula{Name: "fact-" + a, Formula: logic.Pred(a)})
	}

	type rule struct {
		body []string
		head string
	}
	var ruleSet []rule
	for i := 0; i < rules; i++ {
		nBody := 1 + r.Intn(2)
		body := make([]string, nBody)
		var bodyF []*logic.Formula
		for j := range body {
			body[j] = name(r.Intn(atoms))
			bodyF = append(bodyF, logic.Pred(body[j]))
		}
		head := name(r.Intn(atoms))
		ruleSet = append(ruleSet, rule{body: body, head: head})
		axioms = append(axioms, NamedFormula{
			Name:    fmt.Sprintf("rule%d", i),
			Formula: logic.Implies(logic.And(bodyF...), logic.Pred(head)),
		})
	}

	// Forward chain to a fixpoint.
	derivable := map[string]bool{}
	for a := range factSet {
		derivable[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, rl := range ruleSet {
			if derivable[rl.head] {
				continue
			}
			all := true
			for _, b := range rl.body {
				if !derivable[b] {
					all = false
					break
				}
			}
			if all {
				derivable[rl.head] = true
				changed = true
			}
		}
	}
	return axioms, derivable
}

// TestProverMatchesForwardChaining checks soundness and (refutation)
// completeness against ground truth on random Horn KBs: derivable atoms
// must be proved, underivable atoms must exhaust.
func TestProverMatchesForwardChaining(t *testing.T) {
	p := New()
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		atoms := 4 + r.Intn(6)
		axioms, derivable := randomHornKB(r, atoms, 2+r.Intn(8), 1+r.Intn(3))
		for i := 0; i < atoms; i++ {
			goalName := fmt.Sprintf("A%d", i)
			goal := NamedFormula{Name: goalName, Formula: logic.Pred(goalName)}
			_, err := p.Prove(axioms, goal)
			if derivable[goalName] && err != nil {
				t.Fatalf("seed %d: derivable %s not proved: %v", seed, goalName, err)
			}
			if !derivable[goalName] {
				if err == nil {
					t.Fatalf("seed %d: underivable %s proved (unsound!)", seed, goalName)
				}
				if !errors.Is(err, ErrExhausted) {
					t.Fatalf("seed %d: %s failed with %v, want exhaustion", seed, goalName, err)
				}
			}
		}
	}
}

// TestDisableSOSSameVerdicts: turning the set-of-support strategy off
// must not change provability, only cost.
func TestDisableSOSSameVerdicts(t *testing.T) {
	withSOS := New()
	noSOS := New()
	noSOS.DisableSOS = true
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		axioms, derivable := randomHornKB(r, 6, 6, 2)
		for i := 0; i < 6; i++ {
			goalName := fmt.Sprintf("A%d", i)
			goal := NamedFormula{Name: goalName, Formula: logic.Pred(goalName)}
			_, err1 := withSOS.Prove(axioms, goal)
			_, err2 := noSOS.Prove(axioms, goal)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d goal %s: SOS=%v, noSOS=%v (derivable=%v)",
					seed, goalName, err1, err2, derivable[goalName])
			}
		}
	}
}

// TestFirstOrderDepthChain exercises nested function terms: a unary
// successor chain s(s(...s(z))) must be provable to moderate depth.
func TestFirstOrderDepthChain(t *testing.T) {
	x := logic.Var("x", "")
	axioms := []NamedFormula{
		{Name: "base", Formula: logic.Pred("P", logic.Const("z", ""))},
		{Name: "step", Formula: logic.Forall([]*logic.Term{x},
			logic.Implies(logic.Pred("P", x), logic.Pred("P", logic.App("s", "", x))))},
	}
	deep := logic.Const("z", "")
	for i := 0; i < 12; i++ {
		deep = logic.App("s", "", deep)
	}
	if _, err := New().Prove(axioms, NamedFormula{Name: "deep", Formula: logic.Pred("P", deep)}); err != nil {
		t.Fatalf("depth-12 chain: %v", err)
	}
}
