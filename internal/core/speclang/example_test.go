package speclang_test

import (
	"fmt"

	"speccat/internal/core/speclang"
)

// ExampleRun shows the complete workflow: define two specifications,
// compose them with a colimit, and prove a theorem of the composite.
func ExampleRun() {
	env, err := speclang.Run(`
A = spec
sort S
op P : S -> Boolean
op Q : S -> Boolean
axiom pq is fa(x:S) P(x) => Q(x)
endspec
B = spec
import A
op R : S -> Boolean
axiom qr is fa(x:S) Q(x) => R(x)
theorem pr is fa(x:S) P(x) => R(x)
endspec
D = diagram {a ++> A, b ++> B, i: a->b ++> morphism A -> B {}}
C = colimit D
proof = prove pr in C using pq qr
`, speclang.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c, _ := env.Spec("C")
	v, _ := env.Lookup("proof")
	fmt.Printf("composite %s has %d axioms; theorem proved in %d steps\n",
		c.Name, len(c.Axioms), v.Proof.Stats.ProofLength)
	// Output: composite C has 2 axioms; theorem proved in 7 steps
}
