package speclang

import (
	"errors"
	"strings"
	"testing"
)

func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated spec", "A = spec\nsort S", "unterminated"},
		{"bad item", "A = spec\nfrobnicate\nendspec", "unexpected"},
		{"missing is", "A = spec\naxiom a P\nendspec", "expected 'is'"},
		{"const with product", "A = spec\nop c : S*T\nendspec", "product sort"},
		{"bad statement", "A = frobnicate", "unknown statement"},
		{"empty using", "A = spec\nop P : Boolean\ntheorem g is P\nendspec\nr = prove g in A using", "at least one"},
		{"prove missing in", "A = spec\nop P : Boolean\ntheorem g is P\nendspec\nr = prove g A", "expected 'in'"},
		{"translate missing by", "B = translate(A) {x ++> y}", "expected 'by'"},
		{"bad rename arrow", "B = translate(A) by {x => y}", "expected ++>"},
		{"diagram bad arc", "D = diagram {i: a=>b ++> m}", "expected arrow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEvalErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unbound import", "A = spec\nimport GHOST\nendspec"},
		{"unbound translate", "B = translate(GHOST) by {a ++> b}"},
		{"unbound morphism source", "M = morphism GHOST -> GHOST2 {}"},
		{"unbound diagram node", "D = diagram {a ++> GHOST}"},
		{"colimit of non-diagram", "A = spec\nsort S\nendspec\nC = colimit A"},
		{"unbound colimit", "C = colimit GHOST"},
		{"prove unknown theorem", "A = spec\nop P : Boolean\nendspec\nr = prove Ghost in A"},
		{"prove unknown axiom", "A = spec\nop P : Boolean\ntheorem g is P\nendspec\nr = prove g in A using ghost"},
		{"print unbound", "x = print GHOST"},
		{"morphism ref wrong kind", "A = spec\nsort S\nendspec\nD = diagram {a ++> A, i: a->a ++> A}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.src, Options{}); err == nil {
				t.Fatalf("eval accepted %q", tc.src)
			}
		})
	}
}

func TestEnvSpecWrongKind(t *testing.T) {
	env, err := Run("A = spec\nsort S\nop P : S -> Boolean\nendspec\nM = morphism A -> A {}", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Spec("M"); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("Spec on morphism: %v", err)
	}
	if _, err := env.Spec("GHOST"); !errors.Is(err, ErrUnbound) {
		t.Fatalf("Spec on ghost: %v", err)
	}
}

func TestPrintStatementForms(t *testing.T) {
	env, err := Run(`A = spec
sort S
op P : S -> Boolean
axiom a is fa(x:S) P(x)
theorem g is fa(x:S) P(x)
endspec
M = morphism A -> A {}
D = diagram {a ++> A}
C = colimit D
r = prove g in A using a
p1 = print A
p2 = print M
p3 = print D
p4 = print C
p5 = print r`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{
		"p1": "spec A",
		"p2": "morphism",
		"p3": "diagram with 1 nodes",
		"p4": "spec C",
		"p5": "proved in",
	} {
		v, ok := env.Lookup(name)
		if !ok || v.Kind != KindText {
			t.Fatalf("%s missing or wrong kind", name)
		}
		if !strings.Contains(v.Text, want) {
			t.Errorf("%s text %q lacks %q", name, v.Text, want)
		}
	}
}

func TestAnonymousStatements(t *testing.T) {
	env, err := Run("spec\nsort S\nendspec", Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := env.Names()
	if len(names) != 1 || !strings.HasPrefix(names[0], "_anon") {
		t.Fatalf("names = %v", names)
	}
}

func TestStrictArityChecks(t *testing.T) {
	_, err := Run(`A = spec
sort S
op P : S*S -> Boolean
axiom a is fa(x:S) P(x)
endspec`, Options{})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("predicate arity: %v", err)
	}
	_, err = Run(`A = spec
sort S
op f : S -> S
op P : S -> Boolean
axiom a is fa(x:S) P(f(x, x))
endspec`, Options{})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("function arity: %v", err)
	}
}

func TestStrictUnboundIdentifier(t *testing.T) {
	_, err := Run(`A = spec
sort S
op P : S -> Boolean
axiom a is P(loose)
endspec`, Options{})
	if !errors.Is(err, ErrUnboundIdent) {
		t.Fatalf("unbound identifier: %v", err)
	}
}

func TestLenientTermNegation(t *testing.T) {
	// Term-level negation from the thesis corpus: adjacent(~(commit), commit).
	env, err := Run(`A = spec
sort D
op adjacent : D*D -> Boolean
axiom a is fa(commit:D) adjacent(~(commit), commit)
endspec`, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("a")
	if !strings.Contains(ax.Formula.String(), "not(commit)") {
		t.Fatalf("negated term: %s", ax.Formula)
	}
}

func TestIfWithoutElse(t *testing.T) {
	env, err := Run(`A = spec
op C : Boolean
op P : Boolean
axiom a is if C then P
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("a")
	if ax.Formula.String() != "(C => P)" {
		t.Fatalf("if-then = %s", ax.Formula)
	}
}

func TestBareVariableAtomRejectedStrict(t *testing.T) {
	// A quantified variable used as a bare atom is not a predicate.
	_, err := Run(`A = spec
sort Flag
op holds : Flag -> Boolean
axiom a is fa(b:Flag) holds(b) => b
endspec`, Options{})
	if err == nil {
		t.Fatal("bare variable atom accepted in strict mode")
	}
}

func TestMorphismByName(t *testing.T) {
	env, err := Run(`A = spec
sort S
op P : S -> Boolean
endspec
B = spec
import A
op Q : S -> Boolean
endspec
M = morphism A -> B {P ++> P}
D = diagram {a ++> A, b ++> B, i: a->b ++> M}
C = colimit D`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Spec("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sig.Ops) != 2 {
		t.Fatalf("ops = %v", c.OpNames())
	}
}
