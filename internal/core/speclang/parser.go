package speclang

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser with single-token backtracking via
// saved positions (needed to disambiguate parenthesized terms from
// parenthesized formulas).
type parser struct {
	toks []token
	pos  int
}

// Parse parses a source file into an AST.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.atEOF() {
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Stmts = append(f.Stmts, stmt)
	}
	return f, nil
}

func (p *parser) atEOF() bool { return p.toks[p.pos].kind == tokEOF }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(offset int) token {
	i := p.pos + offset
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[i]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("speclang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return p.errf(t, "expected %q, got %s", sym, t)
	}
	return nil
}

// expectIdent consumes an identifier or fails.
func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected identifier, got %s", t)
	}
	return t.text, nil
}

// acceptSymbol consumes sym if present.
func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

// acceptKeyword consumes an identifier with exactly the given text.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

// arrow accepts "->" or "-->".
func (p *parser) expectArrow() error {
	t := p.next()
	if t.kind != tokSymbol || (t.text != "->" && t.text != "-->") {
		return p.errf(t, "expected arrow, got %s", t)
	}
	return nil
}

// mapsTo accepts "++>" (and tolerates "<->" and "-->" which the listings
// occasionally use for the same purpose).
func (p *parser) expectMapsTo() error {
	t := p.next()
	if t.kind != tokSymbol || (t.text != "++>" && t.text != "<->" && t.text != "-->") {
		return p.errf(t, "expected ++>, got %s", t)
	}
	return nil
}

func (p *parser) parseStmt() (Stmt, error) {
	start := p.peek()
	name := ""
	if start.kind == tokIdent && !isExprKeyword(start.text) &&
		p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "=" {
		name = p.next().text
		p.next() // '='
	}
	e, err := p.parseExpr()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Name: name, Expr: e, Line: start.line}, nil
}

func isExprKeyword(s string) bool {
	switch s {
	case "spec", "translate", "morphism", "diagram", "colimit", "prove", "print":
		return true
	}
	return false
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected statement, got %s", t)
	}
	switch t.text {
	case "spec":
		return p.parseSpec()
	case "translate":
		return p.parseTranslate()
	case "morphism":
		return p.parseMorphism()
	case "diagram":
		return p.parseDiagram()
	case "colimit":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColimitExpr{Diagram: name}, nil
	case "prove":
		return p.parseProve()
	case "print":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &PrintExpr{Name: name}, nil
	default:
		return nil, p.errf(t, "unknown statement keyword %q", t.text)
	}
}

func (p *parser) parseSpec() (Expr, error) {
	p.next() // 'spec'
	s := &SpecExpr{}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, p.errf(t, "unterminated spec (missing endspec)")
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected spec item, got %s", t)
		}
		switch t.text {
		case "endspec":
			p.next()
			return s, nil
		case "import":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			s.Imports = append(s.Imports, name)
		case "sort":
			p.next()
			decl, err := p.parseSortDecl()
			if err != nil {
				return nil, err
			}
			decl.Line = t.line
			s.Sorts = append(s.Sorts, decl)
		case "op":
			p.next()
			decl, err := p.parseOpDecl()
			if err != nil {
				return nil, err
			}
			decl.Line = t.line
			s.Ops = append(s.Ops, decl)
		case "axiom", "theorem":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("is") {
				return nil, p.errf(p.peek(), "expected 'is' after %s %s", t.text, name)
			}
			f, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			decl := PropDecl{Name: name, Formula: f, Line: t.line}
			if t.text == "axiom" {
				s.Axioms = append(s.Axioms, decl)
			} else {
				s.Theorems = append(s.Theorems, decl)
			}
		default:
			return nil, p.errf(t, "unexpected %q inside spec", t.text)
		}
	}
}

func (p *parser) parseSortDecl() (SortDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return SortDecl{}, err
	}
	d := SortDecl{Name: name}
	if p.acceptSymbol("=") {
		def, err := p.parseSortDef()
		if err != nil {
			return SortDecl{}, err
		}
		d.Def = def
	}
	return d, nil
}

// parseSortDef handles `Nat`, `Clockvalues`, and record sorts like
// `{p:Processors, Tm:Clockvalues, Km:Index, No:Nat}`.
func (p *parser) parseSortDef() (string, error) {
	if p.acceptSymbol("{") {
		var fields []string
		for {
			fname, err := p.expectIdent()
			if err != nil {
				return "", err
			}
			if err := p.expectSymbol(":"); err != nil {
				return "", err
			}
			fsort, err := p.expectIdent()
			if err != nil {
				return "", err
			}
			fields = append(fields, fname+":"+fsort)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol("}"); err != nil {
				return "", err
			}
			return "{" + strings.Join(fields, ", ") + "}", nil
		}
	}
	return p.expectIdent()
}

func (p *parser) parseOpDecl() (OpDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return OpDecl{}, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return OpDecl{}, err
	}
	var sorts []string
	for {
		s, err := p.expectIdent()
		if err != nil {
			return OpDecl{}, err
		}
		sorts = append(sorts, s)
		if p.acceptSymbol("*") {
			continue
		}
		break
	}
	d := OpDecl{Name: name}
	if p.acceptSymbol("->") || p.acceptSymbol("-->") {
		res, err := p.expectIdent()
		if err != nil {
			return OpDecl{}, err
		}
		d.Args = sorts
		d.Result = res
	} else {
		if len(sorts) != 1 {
			return OpDecl{}, fmt.Errorf("speclang: constant %s cannot have a product sort", name)
		}
		d.Result = sorts[0]
	}
	return d, nil
}

func (p *parser) parseTranslate() (Expr, error) {
	p.next() // 'translate'
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if !p.acceptKeyword("by") {
		return nil, p.errf(p.peek(), "expected 'by'")
	}
	renames, err := p.parseRenameBlock()
	if err != nil {
		return nil, err
	}
	return &TranslateExpr{Source: src, Renames: renames}, nil
}

func (p *parser) parseRenameBlock() ([]RenamePair, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	var pairs []RenamePair
	if p.acceptSymbol("}") {
		return pairs, nil
	}
	for {
		from, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectMapsTo(); err != nil {
			return nil, err
		}
		to, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, RenamePair{From: from, To: to})
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		return pairs, nil
	}
}

func (p *parser) parseMorphism() (Expr, error) {
	p.next() // 'morphism'
	src, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectArrow(); err != nil {
		return nil, err
	}
	dst, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	renames, err := p.parseRenameBlock()
	if err != nil {
		return nil, err
	}
	return &MorphismExpr{Source: src, Target: dst, Renames: renames}, nil
}

func (p *parser) parseDiagram() (Expr, error) {
	p.next() // 'diagram'
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	d := &DiagramExpr{}
	for {
		labelTok := p.peek()
		label, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.acceptSymbol(":") {
			// Arc: label: from -> to ++> morphism...
			from, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectArrow(); err != nil {
				return nil, err
			}
			to, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectMapsTo(); err != nil {
				return nil, err
			}
			var m Expr
			if p.peekKeyword("morphism") {
				m, err = p.parseMorphism()
				if err != nil {
					return nil, err
				}
			} else {
				ref, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				m = &MorphismRef{Name: ref}
			}
			d.Arcs = append(d.Arcs, DiagramArc{Label: label, From: from, To: to, M: m, Line: labelTok.line})
		} else {
			if err := p.expectMapsTo(); err != nil {
				return nil, err
			}
			specName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Nodes = append(d.Nodes, DiagramNode{Label: label, Spec: specName, Line: labelTok.line})
		}
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		return d, nil
	}
}

func (p *parser) parseProve() (Expr, error) {
	p.next() // 'prove'
	thm, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("in") {
		return nil, p.errf(p.peek(), "expected 'in'")
	}
	in, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	e := &ProveExpr{Theorem: thm, In: in}
	if p.acceptKeyword("using") {
		for {
			t := p.peek()
			if t.kind != tokIdent {
				break
			}
			// Stop when the identifier begins the next `name = ...` stmt
			// or is itself a statement keyword.
			if isExprKeyword(t.text) {
				break
			}
			if p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "=" {
				break
			}
			e.Using = append(e.Using, p.next().text)
		}
		if len(e.Using) == 0 {
			return nil, p.errf(p.peek(), "'using' requires at least one axiom name")
		}
	}
	return e, nil
}
