package speclang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"speccat/internal/core/logic"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("spec A % comment\n op F : S*T -> Boolean ++> <=> ~(x)")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"spec", "A", "op", "F", ":", "S", "*", "T", "->", "Boolean", "++>", "<=>", "~", "(", "x", ")"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("lex = %v\nwant %v", texts, want)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("%full line\nfoo % trailing\nbar")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].text != "foo" || toks[1].text != "bar" {
		t.Fatalf("lex = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[1].line != 2 || toks[1].col != 3 {
		t.Fatalf("positions wrong: %+v", toks)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := lex("a # b"); err == nil {
		t.Fatal("lexer accepted '#'")
	}
}

func TestParseMinimalSpec(t *testing.T) {
	f, err := Parse(`A = spec
sort S
op P : S -> Boolean
axiom ax is fa(x:S) P(x)
endspec`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stmts) != 1 || f.Stmts[0].Name != "A" {
		t.Fatalf("stmts = %+v", f.Stmts)
	}
	se, ok := f.Stmts[0].Expr.(*SpecExpr)
	if !ok {
		t.Fatalf("expr type %T", f.Stmts[0].Expr)
	}
	if len(se.Sorts) != 1 || len(se.Ops) != 1 || len(se.Axioms) != 1 {
		t.Fatalf("spec = %+v", se)
	}
}

func TestParseRecordSort(t *testing.T) {
	f, err := Parse(`A = spec
sort Messages = {p:Processors, Tm:Clockvalues}
endspec`)
	if err != nil {
		t.Fatal(err)
	}
	se := f.Stmts[0].Expr.(*SpecExpr)
	if se.Sorts[0].Def != "{p:Processors, Tm:Clockvalues}" {
		t.Fatalf("record def = %q", se.Sorts[0].Def)
	}
}

func TestParseConstantOp(t *testing.T) {
	f, err := Parse("A = spec\nop c : Nat\nendspec")
	if err != nil {
		t.Fatal(err)
	}
	se := f.Stmts[0].Expr.(*SpecExpr)
	if len(se.Ops[0].Args) != 0 || se.Ops[0].Result != "Nat" {
		t.Fatalf("const = %+v", se.Ops[0])
	}
}

func TestParseFormulaPrecedence(t *testing.T) {
	env, err := Run(`A = spec
op P : Boolean
op Q : Boolean
op R : Boolean
axiom ax is P & Q => R | P
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := env.Spec("A")
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := s.FindAxiom("ax")
	// (P & Q) => (R | P)
	if ax.Formula.Kind != logic.KindImplies {
		t.Fatalf("precedence wrong: %s", ax.Formula)
	}
	if ax.Formula.Sub[0].Kind != logic.KindAnd || ax.Formula.Sub[1].Kind != logic.KindOr {
		t.Fatalf("precedence wrong: %s", ax.Formula)
	}
}

func TestParseQuantifierGroups(t *testing.T) {
	env, err := Run(`A = spec
sort S
sort T
op P : S*S*T -> Boolean
axiom ax is fa(x,y:S, z:T) P(x, y, z)
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("ax")
	if ax.Formula.Kind != logic.KindForall || len(ax.Formula.Bound) != 3 {
		t.Fatalf("binders: %s", ax.Formula)
	}
	if ax.Formula.Bound[0].Sort != "S" || ax.Formula.Bound[2].Sort != "T" {
		t.Fatalf("binder sorts: %v %v", ax.Formula.Bound[0], ax.Formula.Bound[2])
	}
}

func TestParseIfThenElse(t *testing.T) {
	env, err := Run(`A = spec
op C : Boolean
op P : Boolean
op Q : Boolean
axiom ax is if C then P else Q
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("ax")
	want := logic.IfThenElse(logic.Pred("C"), logic.Pred("P"), logic.Pred("Q"))
	if !ax.Formula.Equal(want) {
		t.Fatalf("ite = %s, want %s", ax.Formula, want)
	}
}

func TestParseComparisonAtoms(t *testing.T) {
	env, err := Run(`A = spec
sort S
op f : S -> Nat
axiom ax is fa(x:S, n:Nat) (f(x) < n) & (f(x) = n) => (n <= f(x))
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("ax")
	str := ax.Formula.String()
	for _, want := range []string{"<(f(x), n)", "(f(x) = n)", "<=(n, f(x))"} {
		if !strings.Contains(str, want) {
			t.Errorf("formula %s missing %q", str, want)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	env, err := Run(`A = spec
sort S
op f : S -> Nat
axiom ax is fa(x:S, n:Nat) f(x) = n + 1
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := env.Spec("A")
	ax, _ := s.FindAxiom("ax")
	if !strings.Contains(ax.Formula.String(), "+(n, 1)") {
		t.Fatalf("arith missing: %s", ax.Formula)
	}
}

func TestStrictModeRejectsUnknownSymbols(t *testing.T) {
	_, err := Run(`A = spec
sort S
axiom ax is fa(x:S) Mystery(x)
endspec`, Options{})
	if err == nil {
		t.Fatal("strict mode accepted unknown predicate")
	}
	if _, err := Run(`A = spec
sort S
axiom ax is fa(x:S) Mystery(x)
endspec`, Options{Lenient: true}); err != nil {
		t.Fatalf("lenient mode rejected: %v", err)
	}
}

func TestTranslateStatement(t *testing.T) {
	env, err := Run(`A = spec
sort S
op P : S -> Boolean
axiom ax is fa(x:S) P(x)
endspec
B = translate(A) by {P ++> P2, S ++> S2}`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Spec("B")
	if err != nil {
		t.Fatal(err)
	}
	if !b.HasSort("S2") {
		t.Error("sort not renamed")
	}
	if _, ok := b.FindOp("P2"); !ok {
		t.Error("op not renamed")
	}
}

func TestImportStatement(t *testing.T) {
	env, err := Run(`A = spec
sort S
op P : S -> Boolean
endspec
B = spec
import A
op Q : S -> Boolean
endspec`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := env.Spec("B")
	if _, ok := b.FindOp("P"); !ok {
		t.Error("import lost P")
	}
}

func TestMorphismDiagramColimitPipeline(t *testing.T) {
	env, err := Run(`A = spec
sort S
op P : S -> Boolean
endspec
B = spec
import A
op Q : S -> Boolean
endspec
D = diagram {
a ++> A,
b ++> B,
i: a->b ++> morphism A -> B {P ++> P}}
C = colimit D`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := env.Spec("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sig.Ops) != 2 {
		t.Fatalf("colimit ops = %v", c.OpNames())
	}
	v, _ := env.Lookup("C")
	if v.Kind != KindColimit || v.Cocone == nil {
		t.Fatal("colimit value malformed")
	}
}

func TestProveStatement(t *testing.T) {
	env, err := Run(`A = spec
op P : Boolean
op Q : Boolean
axiom p is P
axiom pq is P => Q
theorem goal is Q
endspec
r = prove goal in A using p pq`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := env.Lookup("r")
	if !ok || v.Kind != KindProof {
		t.Fatalf("proof value missing: %+v", v)
	}
	if v.Proof.Stats.ProofLength == 0 {
		t.Fatal("empty proof")
	}
}

func TestProveFailsForNonTheorem(t *testing.T) {
	_, err := Run(`A = spec
op P : Boolean
op Q : Boolean
axiom p is P
theorem goal is Q
endspec
r = prove goal in A using p`, Options{})
	if err == nil {
		t.Fatal("unprovable goal accepted")
	}
}

func TestThesisSources(t *testing.T) {
	// The three Chapter 5 listings must parse and elaborate end to end
	// (lenient mode: the printed sources contain minor inconsistencies, and
	// the verbatim axiom encodings are not first-order coherent enough for
	// the resolution prover — the cleaned corpus in internal/thesis is).
	files := []struct {
		name       string
		wantValues []string
	}{
		{"serializability.sw", []string{"BBB", "RELIABLEBROADCAST", "CONSENSUS", "CONSENT", "UNREDO", "TWOPHASELOCK", "TPL", "p1"}},
		{"consistentstate.sw", []string{"BBB", "SNAPSHOT", "DECISIONMAKING", "SNAP", "DECISION", "p2"}},
		{"rollbackrecovery.sw", []string{"BBB", "CHECKPOINTING", "ROLLBACKRECOVERY", "CKPT", "RECO", "p3"}},
	}
	for _, tc := range files {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "thesis", tc.name))
			if err != nil {
				t.Fatal(err)
			}
			env, err := Run(string(src), Options{Lenient: true, SkipProofs: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range tc.wantValues {
				if _, ok := env.Lookup(want); !ok {
					t.Errorf("value %s missing from env (have %v)", want, env.Names())
				}
			}
		})
	}
}

func TestThesisSerializabilityColimitShape(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "thesis", "serializability.sw"))
	if err != nil {
		t.Fatal(err)
	}
	env, err := Run(string(src), Options{Lenient: true, SkipProofs: true})
	if err != nil {
		t.Fatal(err)
	}
	// TPL (= PR2 in the thesis figures) must carry the properties of every
	// building block below it: broadcast, consensus, logging, locking.
	tpl, err := env.Spec("TPL")
	if err != nil {
		t.Fatal(err)
	}
	for _, ax := range []string{"Agreebroad", "Agreeconsensus", "Storevalues", "Readlock", "Writelock"} {
		if _, ok := tpl.FindAxiom(ax); !ok {
			t.Errorf("TPL colimit missing axiom %s", ax)
		}
	}
	if _, ok := tpl.FindTheorem("Serialize"); !ok {
		t.Error("TPL colimit missing theorem Serialize")
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("A = spec\nsort 123\nendspec")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks position: %v", err)
	}
}
