package speclang

// Formula grammar (low to high precedence):
//
//	formula := iff
//	iff     := impl ('<=>' impl)*
//	impl    := disj ('=>' formula)?            (right associative)
//	disj    := conj (('|' | 'or') conj)*
//	conj    := unary ('&' unary)*
//	unary   := '~' unary
//	        | ('fa'|'ex') '(' binders ')' formula      (greedy body)
//	        | 'if' formula 'then' formula ('else' formula)?
//	        | atom
//	atom    := term cmpOp term | predicate | '(' formula ')'
//
// A parenthesized token sequence can open either a term (as in
// `(S-i-e) < C(p,T)`) or a sub-formula; the parser first attempts a
// term-comparison with backtracking, then falls back to formula.

func (p *parser) parseFormula() (FormulaNode, error) {
	return p.parseIff()
}

func (p *parser) parseIff() (FormulaNode, error) {
	l, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("<=>") {
		r, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		l = &FBinary{Op: "<=>", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseImpl() (FormulaNode, error) {
	l, err := p.parseDisj()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol("=>") {
		r, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		return &FBinary{Op: "=>", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseDisj() (FormulaNode, error) {
	l, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("|") || p.acceptKeyword("or") {
		r, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		l = &FBinary{Op: "|", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseConj() (FormulaNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &FBinary{Op: "&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (FormulaNode, error) {
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "~":
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &FNot{Sub: sub}, nil
	case t.kind == tokIdent && (t.text == "fa" || t.text == "ex"):
		// Only a quantifier when followed by '('; "fa" could otherwise be
		// an ordinary identifier.
		if p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "(" {
			return p.parseQuant()
		}
		return p.parseAtom()
	case t.kind == tokIdent && t.text == "if":
		return p.parseIfThenElse()
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseQuant() (FormulaNode, error) {
	kw := p.next() // fa | ex
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	binders, err := p.parseBinders()
	if err != nil {
		return nil, err
	}
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	return &FQuant{Universal: kw.text == "fa", Binders: binders, Body: body}, nil
}

// parseBinders reads `p,q:Processors, T,i,j:Clockvalues, m:Messages)` —
// names grouped by a trailing sort; a group without ':' is unsorted.
// The closing ')' is consumed.
func (p *parser) parseBinders() ([]Binder, error) {
	var out []Binder
	var pending []string
	flush := func(sortName string) {
		for _, n := range pending {
			out = append(out, Binder{Name: n, Sort: sortName})
		}
		pending = nil
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pending = append(pending, name)
		switch {
		case p.acceptSymbol(":"):
			sortName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			flush(sortName)
			if p.acceptSymbol(",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return out, nil
		case p.acceptSymbol(","):
			continue
		default:
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			flush("")
			return out, nil
		}
	}
}

func (p *parser) parseIfThenElse() (FormulaNode, error) {
	p.next() // 'if'
	cond, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("then") {
		return nil, p.errf(p.peek(), "expected 'then'")
	}
	thenF, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	ite := &FIfThenElse{Cond: cond, Then: thenF}
	if p.acceptKeyword("else") {
		elseF, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		ite.Else = elseF
	}
	return ite, nil
}

var cmpOps = map[string]bool{"=": true, "<": true, "<=": true, ">": true, ">=": true} //lint:allow noglobalstate immutable operator table

func (p *parser) peekCmpOp() (string, bool) {
	t := p.peek()
	if t.kind == tokSymbol && cmpOps[t.text] {
		return t.text, true
	}
	return "", false
}

func (p *parser) parseAtom() (FormulaNode, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "(" {
		// Try term-comparison first, with backtracking.
		save := p.pos
		if l, err := p.parseTerm(); err == nil {
			if op, ok := p.peekCmpOp(); ok {
				p.next()
				r, err := p.parseTerm()
				if err != nil {
					return nil, err
				}
				return &FCompare{Op: op, L: l, R: r}, nil
			}
		}
		p.pos = save
		p.next() // '('
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		// `(formula) cmp term` never occurs; done.
		return f, nil
	}

	// Identifier- or number-led: parse a term, then either a comparison or
	// a predicate reading of the term.
	term, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if op, ok := p.peekCmpOp(); ok {
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return &FCompare{Op: op, L: term, R: r}, nil
	}
	return termToAtom(term, p)
}

// termToAtom reinterprets a parsed term as a predicate atom.
func termToAtom(t TermNode, p *parser) (FormulaNode, error) {
	switch x := t.(type) {
	case *TApply:
		return &FAtom{Name: x.Name, Args: x.Args}, nil
	case *TName:
		return &FAtom{Name: x.Name}, nil
	default:
		return nil, p.errf(p.peek(), "expected a predicate, got arithmetic term")
	}
}

func (p *parser) parseTerm() (TermNode, error) {
	l, err := p.parsePrimaryTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parsePrimaryTerm()
			if err != nil {
				return nil, err
			}
			l = &TArith{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parsePrimaryTerm() (TermNode, error) {
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "~":
		// Term-level boolean negation, e.g. adjacent(~(commit), commit)
		// in the listings; elaborated as the function "not".
		sub, err := p.parsePrimaryTerm()
		if err != nil {
			return nil, err
		}
		return &TApply{Name: "not", Args: []TermNode{sub}}, nil
	case t.kind == tokNumber:
		return &TNumber{Text: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		if p.acceptSymbol("(") {
			var args []TermNode
			if !p.acceptSymbol(")") {
				for {
					a, err := p.parseTerm()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptSymbol(",") {
						continue
					}
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return &TApply{Name: t.text, Args: args}, nil
		}
		return &TName{Name: t.text}, nil
	default:
		return nil, p.errf(t, "expected term, got %s", t)
	}
}
