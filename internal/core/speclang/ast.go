package speclang

// The AST mirrors the statement forms that appear in the thesis listings:
//
//	BBB = spec ... endspec
//	T   = translate(BBB) by {a ++> b, ...}
//	M   = morphism A -> B {x ++> y, ...}
//	D   = diagram {a ++> A, b ++> B, i: a->b ++> morphism A -> B {...}}
//	C   = colimit D
//	p1  = prove Thm in Spec using Ax1 Ax2 ...
//	foo = print C

// File is a parsed source file.
type File struct {
	Stmts []Stmt
}

// Stmt is one `name = expr` binding (name may be empty for bare exprs).
type Stmt struct {
	Name string
	Expr Expr
	Line int
}

// Expr is a parsed right-hand side.
type Expr interface{ exprNode() }

// SpecExpr is a spec ... endspec block.
type SpecExpr struct {
	Imports  []string
	Sorts    []SortDecl
	Ops      []OpDecl
	Axioms   []PropDecl
	Theorems []PropDecl
}

// SortDecl declares a sort, optionally with a definition.
type SortDecl struct {
	Name string
	Def  string
	Line int
}

// OpDecl declares an operation: name : args -> result. A declaration
// without "->" is a constant of the given sort.
type OpDecl struct {
	Name   string
	Args   []string
	Result string
	Line   int
}

// PropDecl is an axiom or theorem with its formula AST and optional
// `using` hints (theorems get them from prove statements).
type PropDecl struct {
	Name    string
	Formula FormulaNode
	Line    int
}

// TranslateExpr is translate(Source) by {renames}.
type TranslateExpr struct {
	Source  string
	Renames []RenamePair
}

// RenamePair is one `from ++> to` mapping.
type RenamePair struct {
	From string
	To   string
}

// MorphismExpr is morphism Source -> Target {renames}.
type MorphismExpr struct {
	Source  string
	Target  string
	Renames []RenamePair
}

// MorphismRef references a previously bound morphism by name.
type MorphismRef struct {
	Name string
}

// DiagramExpr is diagram { nodes and arcs }.
type DiagramExpr struct {
	Nodes []DiagramNode
	Arcs  []DiagramArc
}

// DiagramNode labels a node with a spec name: `a ++> SPECNAME`.
type DiagramNode struct {
	Label string
	Spec  string
	Line  int
}

// DiagramArc is `i: a->b ++> <morphism>`.
type DiagramArc struct {
	Label string
	From  string
	To    string
	M     Expr // MorphismExpr or MorphismRef
	Line  int
}

// ColimitExpr is colimit D.
type ColimitExpr struct {
	Diagram string
}

// ProveExpr is prove Thm in Spec using Ax...
type ProveExpr struct {
	Theorem string
	In      string
	Using   []string
}

// PrintExpr is print Name.
type PrintExpr struct {
	Name string
}

func (*SpecExpr) exprNode()      {}
func (*TranslateExpr) exprNode() {}
func (*MorphismExpr) exprNode()  {}
func (*MorphismRef) exprNode()   {}
func (*DiagramExpr) exprNode()   {}
func (*ColimitExpr) exprNode()   {}
func (*ProveExpr) exprNode()     {}
func (*PrintExpr) exprNode()     {}

// FormulaNode is the surface-syntax formula AST, elaborated into
// logic.Formula once the enclosing spec's signature is known.
type FormulaNode interface{ formulaNode() }

// FQuant is fa(binders) body or ex(binders) body.
type FQuant struct {
	Universal bool
	Binders   []Binder
	Body      FormulaNode
}

// Binder is one bound variable with an optional sort.
type Binder struct {
	Name string
	Sort string
}

// FBinary is a binary connective: "&", "|", "=>", "<=>".
type FBinary struct {
	Op   string
	L, R FormulaNode
}

// FNot is negation.
type FNot struct{ Sub FormulaNode }

// FIfThenElse is the listings' `if c then p else q` sugar.
type FIfThenElse struct {
	Cond FormulaNode
	Then FormulaNode
	Else FormulaNode // nil means `if-then` only: c => p
}

// FAtom is a predicate application (possibly 0-ary).
type FAtom struct {
	Name string
	Args []TermNode
}

// FCompare is an infix comparison atom: "=", "<", "<=", ">", ">=".
type FCompare struct {
	Op   string
	L, R TermNode
}

func (*FQuant) formulaNode()      {}
func (*FBinary) formulaNode()     {}
func (*FNot) formulaNode()        {}
func (*FIfThenElse) formulaNode() {}
func (*FAtom) formulaNode()       {}
func (*FCompare) formulaNode()    {}

// TermNode is the surface-syntax term AST.
type TermNode interface{ termNode() }

// TName is an identifier: variable, constant, or 0-ary op.
type TName struct{ Name string }

// TApply is name(args).
type TApply struct {
	Name string
	Args []TermNode
}

// TNumber is a numeric literal.
type TNumber struct{ Text string }

// TArith is infix arithmetic: "+" or "-".
type TArith struct {
	Op   string
	L, R TermNode
}

func (*TName) termNode()   {}
func (*TApply) termNode()  {}
func (*TNumber) termNode() {}
func (*TArith) termNode()  {}
