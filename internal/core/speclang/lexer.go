// Package speclang implements a small specification language modeled on the
// Specware (MetaSlang) surface syntax used throughout the paper's Chapter 5:
// spec/endspec blocks with sorts, ops, axioms and theorems; translate-by
// renamings; morphisms; diagrams; colimits; and prove statements. Parsing a
// source file yields an environment of named values built on top of
// internal/core/spec, internal/core/cat and internal/core/prover, so the
// thesis's own specification sources execute against this library.
package speclang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokSymbol // punctuation and operators
	tokEOF
)

// token is one lexeme with its position for error reporting.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return fmt.Sprintf("%q", t.text)
}

// multi-character operators, longest first.
var operators = []string{ //lint:allow noglobalstate immutable operator table
	"++>", "<->", "-->", "<=>", "=>", "->", "<=", ">=", "~(", "(", ")", "{", "}",
	",", ":", ";", "*", "=", "~", "&", "|", "<", ">", "+", "-", ".",
}

// lexError reports a lexing failure with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("speclang: %d:%d: %s", e.line, e.col, e.msg)
}

// lex splits source text into tokens. Comments run from '%' to end of line
// (the style used in the thesis listings).
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if i < len(src) && src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case unicode.IsLetter(rune(c)) || c == '_':
			start, startLine, startCol := i, line, col
			for i < len(src) && isIdentChar(src[i]) {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: startLine, col: startCol})
		case unicode.IsDigit(rune(c)):
			start, startLine, startCol := i, line, col
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], line: startLine, col: startCol})
		default:
			matched := false
			for _, op := range operators {
				if op == "~(" {
					continue // handled as two tokens below
				}
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokSymbol, text: op, line: line, col: col})
					advance(len(op))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &lexError{line: line, col: col, msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '\'' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
