package speclang

import (
	"errors"
	"fmt"

	"speccat/internal/core/cat"
	"speccat/internal/core/logic"
	"speccat/internal/core/prover"
	"speccat/internal/core/spec"
)

// Sentinel errors.
var (
	// ErrUnbound is wrapped when a statement references an undefined name.
	ErrUnbound = errors.New("speclang: unbound name")
	// ErrWrongKind is wrapped when a name is bound to the wrong kind of value.
	ErrWrongKind = errors.New("speclang: wrong value kind")
	// ErrUnboundIdent is wrapped for identifiers in formulas that are
	// neither bound variables nor declared operations (strict mode only).
	ErrUnboundIdent = errors.New("speclang: unbound identifier in formula")
)

// ValueKind tags environment values.
type ValueKind int

// Value kinds.
const (
	KindSpec ValueKind = iota + 1
	KindMorphism
	KindDiagram
	KindColimit
	KindProof
	KindText
)

// Value is one named result of elaborating a statement.
type Value struct {
	Kind     ValueKind
	Spec     *spec.Spec
	Morphism *spec.Morphism
	Diagram  *cat.Diagram
	Cocone   *cat.Cocone
	Proof    *prover.Result
	Text     string
}

// Env is the result of running a file: named values in definition order.
type Env struct {
	order  []string
	values map[string]*Value
}

// Names returns bound names in definition order.
func (e *Env) Names() []string { return append([]string{}, e.order...) }

// Lookup returns the value bound to name.
func (e *Env) Lookup(name string) (*Value, bool) {
	v, ok := e.values[name]
	return v, ok
}

// Spec returns the specification bound to name (colimits count as specs).
func (e *Env) Spec(name string) (*spec.Spec, error) {
	v, ok := e.values[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnbound, name)
	}
	switch v.Kind {
	case KindSpec, KindColimit:
		return v.Spec, nil
	default:
		return nil, fmt.Errorf("%w: %s is not a spec", ErrWrongKind, name)
	}
}

// Bind binds name to v. When name is already bound, its original
// definition position is preserved — proof schedulers use this to attach
// proof results discharged outside the elaborator in place of the skipped
// prove statements, keeping Names() order identical to a sequential run.
func (e *Env) Bind(name string, v *Value) { e.bind(name, v) }

func (e *Env) bind(name string, v *Value) {
	if name == "" {
		name = fmt.Sprintf("_anon%d", len(e.order))
	}
	if _, exists := e.values[name]; !exists {
		e.order = append(e.order, name)
	}
	e.values[name] = v
}

// Options configures elaboration.
type Options struct {
	// Lenient auto-declares operations and tolerates unbound identifiers
	// (treated as free variables), allowing the thesis's printed sources —
	// which contain minor inconsistencies — to elaborate.
	Lenient bool
	// SkipProofs records prove statements without running the prover.
	SkipProofs bool
	// Prover overrides the default prover used for prove statements.
	Prover *prover.Prover
}

// Run parses and elaborates source text.
func Run(src string, opts Options) (*Env, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(f, opts)
}

// Eval elaborates a parsed file.
func Eval(f *File, opts Options) (*Env, error) {
	env := &Env{values: map[string]*Value{}}
	el := &elaborator{env: env, opts: opts}
	for _, stmt := range f.Stmts {
		v, err := el.evalStmt(stmt)
		if err != nil {
			return nil, fmt.Errorf("line %d (%s): %w", stmt.Line, stmtName(stmt), err)
		}
		env.bind(stmt.Name, v)
	}
	return env, nil
}

func stmtName(s Stmt) string {
	if s.Name != "" {
		return s.Name
	}
	return "<anonymous>"
}

type elaborator struct {
	env  *Env
	opts Options
}

func (el *elaborator) evalStmt(stmt Stmt) (*Value, error) {
	switch e := stmt.Expr.(type) {
	case *SpecExpr:
		s, err := el.evalSpec(stmt.Name, e)
		if err != nil {
			return nil, err
		}
		return &Value{Kind: KindSpec, Spec: s}, nil
	case *TranslateExpr:
		src, err := el.env.Spec(e.Source)
		if err != nil {
			return nil, err
		}
		rename := map[string]string{}
		for _, rp := range e.Renames {
			rename[rp.From] = rp.To
		}
		out, err := spec.Translate(src, stmt.Name, rename)
		if err != nil {
			return nil, err
		}
		return &Value{Kind: KindSpec, Spec: out}, nil
	case *MorphismExpr:
		m, err := el.evalMorphism(stmt.Name, e)
		if err != nil {
			return nil, err
		}
		return &Value{Kind: KindMorphism, Morphism: m}, nil
	case *DiagramExpr:
		d, err := el.evalDiagram(e)
		if err != nil {
			return nil, err
		}
		return &Value{Kind: KindDiagram, Diagram: d}, nil
	case *ColimitExpr:
		v, ok := el.env.Lookup(e.Diagram)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnbound, e.Diagram)
		}
		if v.Kind != KindDiagram {
			return nil, fmt.Errorf("%w: %s is not a diagram", ErrWrongKind, e.Diagram)
		}
		cc, err := cat.Colimit(v.Diagram, stmt.Name)
		if err != nil {
			return nil, err
		}
		return &Value{Kind: KindColimit, Spec: cc.Apex, Cocone: cc}, nil
	case *ProveExpr:
		return el.evalProve(e)
	case *PrintExpr:
		v, ok := el.env.Lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnbound, e.Name)
		}
		return &Value{Kind: KindText, Text: renderValue(v)}, nil
	default:
		return nil, fmt.Errorf("speclang: unsupported expression %T", stmt.Expr)
	}
}

func renderValue(v *Value) string {
	switch v.Kind {
	case KindSpec, KindColimit:
		return v.Spec.String()
	case KindMorphism:
		return v.Morphism.String()
	case KindDiagram:
		return fmt.Sprintf("diagram with %d nodes, %d arcs", len(v.Diagram.Nodes()), len(v.Diagram.Arcs()))
	case KindProof:
		return fmt.Sprintf("proved in %d steps", v.Proof.Stats.ProofLength)
	default:
		return v.Text
	}
}

func (el *elaborator) evalSpec(name string, e *SpecExpr) (*spec.Spec, error) {
	if name == "" {
		name = "SPEC"
	}
	s := spec.New(name)
	for _, imp := range e.Imports {
		src, err := el.env.Spec(imp)
		if err != nil {
			return nil, err
		}
		if err := s.Include(src); err != nil {
			return nil, err
		}
	}
	for _, sd := range e.Sorts {
		if err := s.AddSort(sd.Name, sd.Def); err != nil {
			return nil, err
		}
	}
	for _, od := range e.Ops {
		if err := s.AddOp(spec.Op{Name: od.Name, Args: od.Args, Result: od.Result}); err != nil {
			return nil, err
		}
	}
	for _, ax := range e.Axioms {
		f, err := el.elabFormula(s, ax.Formula, map[string]string{})
		if err != nil {
			return nil, fmt.Errorf("axiom %s: %w", ax.Name, err)
		}
		if err := s.AddAxiom(ax.Name, f); err != nil {
			return nil, err
		}
	}
	for _, th := range e.Theorems {
		f, err := el.elabFormula(s, th.Formula, map[string]string{})
		if err != nil {
			return nil, fmt.Errorf("theorem %s: %w", th.Name, err)
		}
		if err := s.AddTheorem(th.Name, f, nil); err != nil {
			return nil, err
		}
	}
	if !el.opts.Lenient {
		if err := s.WellFormed(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (el *elaborator) evalMorphism(name string, e *MorphismExpr) (*spec.Morphism, error) {
	src, err := el.env.Spec(e.Source)
	if err != nil {
		return nil, err
	}
	dst, err := el.env.Spec(e.Target)
	if err != nil {
		return nil, err
	}
	sortMap := map[string]string{}
	opMap := map[string]string{}
	for _, rp := range e.Renames {
		if src.HasSort(rp.From) {
			sortMap[rp.From] = rp.To
		} else {
			opMap[rp.From] = rp.To
		}
	}
	if name == "" {
		name = e.Source + "_to_" + e.Target
	}
	m := spec.NewMorphism(name, src, dst, sortMap, opMap)
	if !el.opts.Lenient {
		if err := m.CheckSignature(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (el *elaborator) evalDiagram(e *DiagramExpr) (*cat.Diagram, error) {
	d := cat.NewDiagram()
	for _, n := range e.Nodes {
		s, err := el.env.Spec(n.Spec)
		if err != nil {
			return nil, err
		}
		if err := d.AddNode(n.Label, s); err != nil {
			return nil, err
		}
	}
	for _, a := range e.Arcs {
		var m *spec.Morphism
		switch me := a.M.(type) {
		case *MorphismExpr:
			var err error
			if m, err = el.evalMorphism(a.Label, me); err != nil {
				return nil, err
			}
		case *MorphismRef:
			v, ok := el.env.Lookup(me.Name)
			if !ok {
				return nil, fmt.Errorf("%w: %s", ErrUnbound, me.Name)
			}
			if v.Kind != KindMorphism {
				return nil, fmt.Errorf("%w: %s is not a morphism", ErrWrongKind, me.Name)
			}
			m = v.Morphism
		default:
			return nil, fmt.Errorf("speclang: bad arc expression %T", a.M)
		}
		if err := d.AddArc(a.Label, a.From, a.To, m); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (el *elaborator) evalProve(e *ProveExpr) (*Value, error) {
	s, err := el.env.Spec(e.In)
	if err != nil {
		return nil, err
	}
	th, ok := s.FindTheorem(e.Theorem)
	if !ok {
		return nil, fmt.Errorf("%w: theorem %s in %s", ErrUnbound, e.Theorem, e.In)
	}
	if el.opts.SkipProofs {
		return &Value{Kind: KindText, Text: fmt.Sprintf("prove %s in %s (skipped)", e.Theorem, e.In)}, nil
	}
	var premises []prover.NamedFormula
	if len(e.Using) > 0 {
		for _, axName := range e.Using {
			ax, ok := s.FindAxiom(axName)
			if !ok {
				return nil, fmt.Errorf("%w: axiom %s in %s", ErrUnbound, axName, e.In)
			}
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
	} else {
		for _, ax := range s.Axioms {
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
	}
	pr := el.opts.Prover
	if pr == nil {
		pr = prover.New()
	}
	res, err := pr.Prove(premises, prover.NamedFormula{Name: th.Name, Formula: th.Formula})
	if err != nil {
		return nil, fmt.Errorf("prove %s in %s: %w", e.Theorem, e.In, err)
	}
	return &Value{Kind: KindProof, Proof: res}, nil
}

// --- formula elaboration ---

// elabFormula converts surface formulas to logic formulas against the
// signature of s, with binders carrying variable sorts.
func (el *elaborator) elabFormula(s *spec.Spec, f FormulaNode, binders map[string]string) (*logic.Formula, error) {
	switch x := f.(type) {
	case *FQuant:
		inner := make(map[string]string, len(binders)+len(x.Binders))
		for k, v := range binders {
			inner[k] = v
		}
		vars := make([]*logic.Term, len(x.Binders))
		for i, b := range x.Binders {
			inner[b.Name] = b.Sort
			vars[i] = logic.Var(b.Name, b.Sort)
		}
		body, err := el.elabFormula(s, x.Body, inner)
		if err != nil {
			return nil, err
		}
		if x.Universal {
			return logic.Forall(vars, body), nil
		}
		return logic.Exists(vars, body), nil
	case *FBinary:
		l, err := el.elabFormula(s, x.L, binders)
		if err != nil {
			return nil, err
		}
		r, err := el.elabFormula(s, x.R, binders)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "&":
			return logic.And(l, r), nil
		case "|":
			return logic.Or(l, r), nil
		case "=>":
			return logic.Implies(l, r), nil
		case "<=>":
			return logic.Iff(l, r), nil
		default:
			return nil, fmt.Errorf("speclang: bad connective %q", x.Op)
		}
	case *FNot:
		sub, err := el.elabFormula(s, x.Sub, binders)
		if err != nil {
			return nil, err
		}
		return logic.Not(sub), nil
	case *FIfThenElse:
		c, err := el.elabFormula(s, x.Cond, binders)
		if err != nil {
			return nil, err
		}
		thenF, err := el.elabFormula(s, x.Then, binders)
		if err != nil {
			return nil, err
		}
		if x.Else == nil {
			return logic.Implies(c, thenF), nil
		}
		elseF, err := el.elabFormula(s, x.Else, binders)
		if err != nil {
			return nil, err
		}
		return logic.IfThenElse(c, thenF, elseF), nil
	case *FAtom:
		args := make([]*logic.Term, len(x.Args))
		for i, a := range x.Args {
			t, err := el.elabTerm(s, a, binders)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		op, declared := s.FindOp(x.Name)
		switch {
		case declared:
			if !el.opts.Lenient && len(args) != op.Arity() {
				return nil, fmt.Errorf("%w: predicate %s arity %d used with %d args",
					spec.ErrIllFormed, x.Name, op.Arity(), len(args))
			}
		case el.opts.Lenient:
			profile := spec.Op{Name: x.Name, Args: make([]string, len(args)), Result: spec.BoolSort}
			for i, a := range args {
				profile.Args[i] = a.Sort
			}
			if err := s.AddOp(profile); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: predicate %s", spec.ErrUnknownSymbol, x.Name)
		}
		return logic.Pred(x.Name, args...), nil
	case *FCompare:
		l, err := el.elabTerm(s, x.L, binders)
		if err != nil {
			return nil, err
		}
		r, err := el.elabTerm(s, x.R, binders)
		if err != nil {
			return nil, err
		}
		if x.Op == "=" {
			return logic.Eq(l, r), nil
		}
		// Comparisons become built-in predicates (declared on demand).
		if _, ok := s.FindOp(x.Op); !ok {
			if err := s.AddOp(spec.Op{Name: x.Op, Args: []string{"", ""}, Result: spec.BoolSort}); err != nil {
				return nil, err
			}
		}
		return logic.Pred(x.Op, l, r), nil
	default:
		return nil, fmt.Errorf("speclang: bad formula node %T", f)
	}
}

func (el *elaborator) elabTerm(s *spec.Spec, t TermNode, binders map[string]string) (*logic.Term, error) {
	switch x := t.(type) {
	case *TNumber:
		return logic.Const(x.Text, "Nat"), nil
	case *TName:
		if sortName, bound := binders[x.Name]; bound {
			return logic.Var(x.Name, sortName), nil
		}
		if op, ok := s.FindOp(x.Name); ok {
			if op.Arity() != 0 && !el.opts.Lenient {
				return nil, fmt.Errorf("%w: %s used as constant but has arity %d",
					spec.ErrIllFormed, x.Name, op.Arity())
			}
			return logic.Const(x.Name, op.Result), nil
		}
		if el.opts.Lenient {
			return logic.Var(x.Name, ""), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrUnboundIdent, x.Name)
	case *TApply:
		args := make([]*logic.Term, len(x.Args))
		for i, a := range x.Args {
			arg, err := el.elabTerm(s, a, binders)
			if err != nil {
				return nil, err
			}
			args[i] = arg
		}
		op, ok := s.FindOp(x.Name)
		if !ok {
			if !el.opts.Lenient {
				return nil, fmt.Errorf("%w: function %s", spec.ErrUnknownSymbol, x.Name)
			}
			profile := spec.Op{Name: x.Name, Args: make([]string, len(args)), Result: ""}
			for i, a := range args {
				profile.Args[i] = a.Sort
			}
			if err := s.AddOp(profile); err != nil {
				return nil, err
			}
			op = profile
		}
		if !el.opts.Lenient && len(args) != op.Arity() {
			return nil, fmt.Errorf("%w: function %s arity %d used with %d args",
				spec.ErrIllFormed, x.Name, op.Arity(), len(args))
		}
		return logic.App(x.Name, op.Result, args...), nil
	case *TArith:
		l, err := el.elabTerm(s, x.L, binders)
		if err != nil {
			return nil, err
		}
		r, err := el.elabTerm(s, x.R, binders)
		if err != nil {
			return nil, err
		}
		if _, ok := s.FindOp(x.Op); !ok {
			if err := s.AddOp(spec.Op{Name: x.Op, Args: []string{"", ""}, Result: ""}); err != nil {
				return nil, err
			}
		}
		return logic.App(x.Op, "", l, r), nil
	default:
		return nil, fmt.Errorf("speclang: bad term node %T", t)
	}
}
