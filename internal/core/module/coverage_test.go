package module

import (
	"errors"
	"strings"
	"testing"

	"speccat/internal/core/spec"
)

func TestModuleString(t *testing.T) {
	m := buildModule(t, "M1", "Broadcast", "Network")
	out := m.String()
	for _, want := range []string{"module M1", "PAR=M1_PAR", "BOD=M1_BOD"} {
		if !strings.Contains(out, want) {
			t.Errorf("String %q missing %q", out, want)
		}
	}
}

func TestNewRejectsNilMorphism(t *testing.T) {
	m := buildModule(t, "M1", "Broadcast", "Network")
	if _, err := New("bad", m.Par, m.Exp, m.Imp, m.Bod, nil, m.G, m.H, m.K); !errors.Is(err, ErrInterface) {
		t.Fatalf("nil morphism: %v", err)
	}
}

// buildParamlessModule builds a module whose parameter part is empty, the
// legal case for composing without a parameter morphism t.
func buildParamlessModule(t *testing.T, name, provided, needed string) *Module {
	t.Helper()
	par := spec.New(name + "_PAR")
	exp := spec.New(name + "_EXP")
	mustOK(t, exp.AddSort("S", ""))
	mustOK(t, exp.AddOp(spec.Op{Name: provided, Args: []string{"S"}, Result: spec.BoolSort}))
	imp := spec.New(name + "_IMP")
	mustOK(t, imp.AddSort("S", ""))
	mustOK(t, imp.AddOp(spec.Op{Name: needed, Args: []string{"S"}, Result: spec.BoolSort}))
	bod := spec.New(name + "_BOD")
	mustOK(t, bod.Include(exp))
	mustOK(t, bod.Include(imp))
	f := spec.NewMorphism(name+"_f", par, exp, nil, nil)
	g := spec.NewMorphism(name+"_g", par, imp, nil, nil)
	h := spec.NewMorphism(name+"_h", exp, bod, nil, nil)
	k := spec.NewMorphism(name+"_k", imp, bod, nil, nil)
	m, err := New(name, par, exp, imp, bod, f, g, h, k)
	mustOK(t, err)
	return m
}

func TestComposeWithoutParameterMorphism(t *testing.T) {
	m1 := buildParamlessModule(t, "M1", "High", "Mid")
	m2 := buildParamlessModule(t, "M2", "Mid", "Low")
	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil)
	comp, err := Compose("M12", m1, m2, s, nil)
	mustOK(t, err)
	mustOK(t, comp.Module.Verify())
	if comp.Module.Par != m1.Par {
		t.Error("composed parameter is not module 1's")
	}
	if _, ok := comp.Module.Bod.FindOp("Low"); !ok {
		t.Error("composed body missing lower layer's import")
	}
}

func TestComposeBadInterfaceSignature(t *testing.T) {
	m1 := buildParamlessModule(t, "M1", "High", "Mid")
	m2 := buildParamlessModule(t, "M2", "NotMid", "Low")
	// Identity s cannot map Mid to anything in m2's export.
	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil)
	if _, err := Compose("M12", m1, m2, s, nil); err == nil {
		t.Fatal("mismatched interface accepted")
	}
}

func TestCompositionConeMorphisms(t *testing.T) {
	m1 := buildParamlessModule(t, "M1", "High", "Mid")
	m2 := buildParamlessModule(t, "M2", "Mid", "Low")
	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil)
	comp, err := Compose("M12", m1, m2, s, nil)
	mustOK(t, err)
	// The returned cone morphisms embed each body into the composed body.
	if comp.M1.Source != m1.Bod || comp.M2.Source != m2.Bod {
		t.Error("cone morphism sources wrong")
	}
	if comp.M1.Target != comp.Module.Bod || comp.M2.Target != comp.Module.Bod {
		t.Error("cone morphism targets wrong")
	}
	mustOK(t, comp.M1.CheckSignature())
	mustOK(t, comp.M2.CheckSignature())
}
