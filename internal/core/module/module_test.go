package module

import (
	"errors"
	"testing"

	"speccat/internal/core/spec"
)

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// buildModule constructs a module in the shape of the paper's Fig. 2.3:
//
//	PAR  = {Proc}                         (shared parameter)
//	EXP  = {Proc; Provided}               (what we offer)
//	IMP  = {Proc; Needed}                 (what we require)
//	BOD  = {Proc; Provided, Needed, Aux}  (the construction)
func buildModule(t *testing.T, name, provided, needed string) *Module {
	t.Helper()
	par := spec.New(name + "_PAR")
	mustOK(t, par.AddSort("Proc", ""))

	exp := spec.New(name + "_EXP")
	mustOK(t, exp.AddSort("Proc", ""))
	mustOK(t, exp.AddOp(spec.Op{Name: provided, Args: []string{"Proc"}, Result: spec.BoolSort}))

	imp := spec.New(name + "_IMP")
	mustOK(t, imp.AddSort("Proc", ""))
	mustOK(t, imp.AddOp(spec.Op{Name: needed, Args: []string{"Proc"}, Result: spec.BoolSort}))

	bod := spec.New(name + "_BOD")
	mustOK(t, bod.AddSort("Proc", ""))
	mustOK(t, bod.AddOp(spec.Op{Name: provided, Args: []string{"Proc"}, Result: spec.BoolSort}))
	mustOK(t, bod.AddOp(spec.Op{Name: needed, Args: []string{"Proc"}, Result: spec.BoolSort}))
	mustOK(t, bod.AddOp(spec.Op{Name: name + "Aux", Args: []string{"Proc"}, Result: spec.BoolSort}))

	f := spec.NewMorphism(name+"_f", par, exp, nil, nil)
	g := spec.NewMorphism(name+"_g", par, imp, nil, nil)
	h := spec.NewMorphism(name+"_h", exp, bod, nil, nil)
	k := spec.NewMorphism(name+"_k", imp, bod, nil, nil)
	m, err := New(name, par, exp, imp, bod, f, g, h, k)
	mustOK(t, err)
	return m
}

func TestModuleVerify(t *testing.T) {
	m := buildModule(t, "M1", "Broadcast", "Network")
	mustOK(t, m.Verify())
}

func TestModuleVerifyDetectsNonCommutingSquare(t *testing.T) {
	m := buildModule(t, "M1", "Broadcast", "Network")
	// Break the square: send PAR's Proc to a different sort in BOD via H
	// than via K by remapping H's sort map.
	mustOK(t, m.Bod.AddSort("Other", ""))
	m.H = spec.NewMorphism("h_broken", m.Exp, m.Bod, map[string]string{"Proc": "Other"}, nil)
	err := m.Verify()
	if err == nil {
		t.Fatal("broken square accepted")
	}
	if !errors.Is(err, ErrSquare) && !errors.Is(err, spec.ErrIllFormed) {
		// Either the square check or the op-profile signature check may
		// trip first; both reject the module.
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestModuleNewChecksEndpoints(t *testing.T) {
	m := buildModule(t, "M1", "Broadcast", "Network")
	_, err := New("bad", m.Par, m.Exp, m.Imp, m.Bod, m.F, m.G, m.K, m.H) // h and k swapped
	if !errors.Is(err, ErrInterface) {
		t.Fatalf("want ErrInterface, got %v", err)
	}
}

// composeModules wires module 1's import to module 2's export: module 2
// exports exactly what module 1 needs.
func TestComposeModules(t *testing.T) {
	// Module 2 provides "Network"; module 1 needs "Network" and provides
	// "Broadcast". Composition should yield a module exporting Broadcast
	// with module 2's import as its own.
	m1 := buildModule(t, "M1", "Broadcast", "Network")
	m2 := buildModule(t, "M2", "Network", "Hardware")

	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil) // Network ↦ Network
	tt := spec.NewMorphism("t", m1.Par, m2.Par, nil, nil)
	comp, err := Compose("M12", m1, m2, s, tt)
	mustOK(t, err)
	mod := comp.Module

	if mod.Par != m1.Par || mod.Exp != m1.Exp || mod.Imp != m2.Imp {
		t.Fatal("composed module has wrong interfaces")
	}
	// Composed body = shared union of both bodies over IMP1=EXP2 link:
	// Broadcast, Network (identified), Hardware, M1Aux, M2Aux, Proc.
	ops := mod.Bod.OpNames()
	want := map[string]bool{"Broadcast": true, "Network": true, "Hardware": true, "M1Aux": true, "M2Aux": true}
	if len(ops) != len(want) {
		t.Fatalf("composed body ops = %v, want %v", ops, want)
	}
	for _, o := range ops {
		if !want[o] {
			t.Fatalf("unexpected op %s in composed body", o)
		}
	}
	// The composed module must itself verify (the paper's claim that the
	// composed diagram commutes, guaranteeing reusability).
	mustOK(t, mod.Verify())
}

func TestComposeRejectsWrongInterface(t *testing.T) {
	m1 := buildModule(t, "M1", "Broadcast", "Network")
	m2 := buildModule(t, "M2", "Network", "Hardware")
	// s maps EXP2 -> IMP1, i.e. the wrong direction.
	s := spec.NewMorphism("s", m2.Exp, m1.Imp, nil, nil)
	if _, err := Compose("M12", m1, m2, s, nil); !errors.Is(err, ErrInterface) {
		t.Fatalf("want ErrInterface, got %v", err)
	}
}

func TestComposeRequiresParameterMorphism(t *testing.T) {
	m1 := buildModule(t, "M1", "Broadcast", "Network")
	m2 := buildModule(t, "M2", "Network", "Hardware")
	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil)
	if _, err := Compose("M12", m1, m2, s, nil); !errors.Is(err, ErrInterface) {
		t.Fatalf("want ErrInterface for missing t, got %v", err)
	}
}

func TestComposeParameterCompatibility(t *testing.T) {
	// Violate s∘g1 = f2∘t by mapping the parameter sort somewhere else.
	m1 := buildModule(t, "M1", "Broadcast", "Network")
	m2 := buildModule(t, "M2", "Network", "Hardware")
	mustOK(t, m2.Par.AddSort("Clock", ""))
	mustOK(t, m2.Exp.AddSort("Clock", ""))
	mustOK(t, m2.Imp.AddSort("Clock", ""))
	mustOK(t, m2.Bod.AddSort("Clock", ""))
	s := spec.NewMorphism("s", m1.Imp, m2.Exp, nil, nil)
	tBad := spec.NewMorphism("t", m1.Par, m2.Par, map[string]string{"Proc": "Clock"}, nil)
	if _, err := Compose("M12", m1, m2, s, tBad); !errors.Is(err, ErrInterface) {
		t.Fatalf("want ErrInterface for incompatible t, got %v", err)
	}
}

func TestComposeChain(t *testing.T) {
	// Three-module chain mirrors the thesis's PR1, PR2 build-up.
	m1 := buildModule(t, "L1", "TopService", "MidService")
	m2 := buildModule(t, "L2", "MidService", "BaseService")
	m3 := buildModule(t, "L3", "BaseService", "Bedrock")

	s12 := spec.NewMorphism("s12", m1.Imp, m2.Exp, nil, nil)
	t12 := spec.NewMorphism("t12", m1.Par, m2.Par, nil, nil)
	c12, err := Compose("PR1", m1, m2, s12, t12)
	mustOK(t, err)
	mustOK(t, c12.Module.Verify())

	s23 := spec.NewMorphism("s23", c12.Module.Imp, m3.Exp, nil, nil)
	t23 := spec.NewMorphism("t23", c12.Module.Par, m3.Par, nil, nil)
	c123, err := Compose("PR2", c12.Module, m3, s23, t23)
	mustOK(t, err)
	mustOK(t, c123.Module.Verify())

	// The final body accumulates every service plus all aux ops.
	ops := c123.Module.Bod.OpNames()
	for _, want := range []string{"TopService", "MidService", "BaseService", "Bedrock", "L1Aux", "L2Aux", "L3Aux"} {
		found := false
		for _, o := range ops {
			if o == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("composed chain body missing %s: %v", want, ops)
		}
	}
}
