// Package module implements algebraic module specifications in the sense of
// the paper's Section 2.2 (Fig. 2.3): a module MOD = (PAR, EXP, IMP, BOD,
// f, h, g, k) consists of a parameter specification, an export interface, an
// import interface, and a body, connected by four morphisms
//
//	f : PAR -> EXP      h : EXP -> BOD
//	g : PAR -> IMP      k : IMP -> BOD
//
// forming a commuting square h∘f = k∘g. Two modules compose (Fig. 2.4) when
// module 1 imports, via an interface morphism s : IMP1 -> EXP2, what
// module 2 exports; the composed body is the pushout of the two bodies over
// IMP1, and the composed module is (PAR1, EXP1, IMP2, BOD12).
package module

import (
	"errors"
	"fmt"

	"speccat/internal/core/cat"
	"speccat/internal/core/spec"
)

// Sentinel errors.
var (
	// ErrSquare is returned when a module's interface square fails to commute.
	ErrSquare = errors.New("module: interface square does not commute")
	// ErrInterface is wrapped for invalid composition interfaces.
	ErrInterface = errors.New("module: invalid composition interface")
)

// Module is an algebraic module specification.
type Module struct {
	Name string
	// Par, Exp, Imp, Bod are the four component specifications.
	Par, Exp, Imp, Bod *spec.Spec
	// F: Par->Exp, G: Par->Imp, H: Exp->Bod, K: Imp->Bod.
	F, G, H, K *spec.Morphism
}

// New assembles a module and checks morphism endpoints.
func New(name string, par, exp, imp, bod *spec.Spec, f, g, h, k *spec.Morphism) (*Module, error) {
	m := &Module{Name: name, Par: par, Exp: exp, Imp: imp, Bod: bod, F: f, G: g, H: h, K: k}
	if err := m.checkEndpoints(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Module) checkEndpoints() error {
	checks := []struct {
		mor      *spec.Morphism
		src, dst *spec.Spec
		name     string
	}{
		{m.F, m.Par, m.Exp, "f: PAR->EXP"},
		{m.G, m.Par, m.Imp, "g: PAR->IMP"},
		{m.H, m.Exp, m.Bod, "h: EXP->BOD"},
		{m.K, m.Imp, m.Bod, "k: IMP->BOD"},
	}
	for _, c := range checks {
		if c.mor == nil {
			return fmt.Errorf("%w: module %s missing morphism %s", ErrInterface, m.Name, c.name)
		}
		if c.mor.Source != c.src || c.mor.Target != c.dst {
			return fmt.Errorf("%w: module %s morphism %s has wrong endpoints", ErrInterface, m.Name, c.name)
		}
	}
	return nil
}

// Verify checks the four morphisms' signature conditions and the commuting
// square h∘f = k∘g required by the paper's module definition.
func (m *Module) Verify() error {
	for _, mor := range []*spec.Morphism{m.F, m.G, m.H, m.K} {
		if err := mor.CheckSignature(); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
	}
	hf, err := spec.Compose(m.F, m.H)
	if err != nil {
		return fmt.Errorf("module %s: %w", m.Name, err)
	}
	kg, err := spec.Compose(m.G, m.K)
	if err != nil {
		return fmt.Errorf("module %s: %w", m.Name, err)
	}
	if !hf.Equal(kg) {
		return fmt.Errorf("%w: module %s: h∘f ≠ k∘g", ErrSquare, m.Name)
	}
	return nil
}

// Composition is the result of composing two modules: the composed module
// together with the pushout cone morphisms m1 (BOD1 -> BOD12) and
// m2 (BOD2 -> BOD12), named after the colimit morphisms in the paper's
// figures 4.3–4.27.
type Composition struct {
	Module *Module
	// M1 embeds module 1's body into the composed body.
	M1 *spec.Morphism
	// M2 embeds module 2's body into the composed body.
	M2 *spec.Morphism
}

// Compose composes mod1 with mod2 along the interface morphism
// s : IMP1 -> EXP2 ("module 1 imports what module 2 exports") and the
// parameter-compatibility morphism t : PAR1 -> PAR2, which must satisfy
// s∘g1 = f2∘t. The composed module is (PAR1, EXP1, IMP2, BOD12) where BOD12
// is the pushout of BOD1 <-k1- IMP1 -(h2∘s)-> BOD2 over IMP1.
//
// t may be nil when PAR1 is empty (no parameter compatibility to check).
func Compose(name string, mod1, mod2 *Module, s, t *spec.Morphism) (*Composition, error) {
	if s == nil || s.Source != mod1.Imp || s.Target != mod2.Exp {
		return nil, fmt.Errorf("%w: s must map %s's import to %s's export", ErrInterface, mod1.Name, mod2.Name)
	}
	if err := s.CheckSignature(); err != nil {
		return nil, fmt.Errorf("compose %s: interface morphism s: %w", name, err)
	}
	if t != nil {
		if t.Source != mod1.Par || t.Target != mod2.Par {
			return nil, fmt.Errorf("%w: t must map %s's parameter to %s's parameter", ErrInterface, mod1.Name, mod2.Name)
		}
		if err := t.CheckSignature(); err != nil {
			return nil, fmt.Errorf("compose %s: parameter morphism t: %w", name, err)
		}
		// Parameter compatibility: s∘g1 = f2∘t.
		sg1, err := spec.Compose(mod1.G, s)
		if err != nil {
			return nil, err
		}
		f2t, err := spec.Compose(t, mod2.F)
		if err != nil {
			return nil, err
		}
		if !sg1.Equal(f2t) {
			return nil, fmt.Errorf("%w: parameter compatibility s∘g1 = f2∘t violated", ErrInterface)
		}
	} else if len(mod1.Par.Sig.Sorts) > 0 || len(mod1.Par.Sig.Ops) > 0 {
		return nil, fmt.Errorf("%w: t required for non-empty parameter of %s", ErrInterface, mod1.Name)
	}

	// BOD12 = pushout of k1 : IMP1 -> BOD1 and h2∘s : IMP1 -> BOD2.
	sh2, err := spec.Compose(s, mod2.H)
	if err != nil {
		return nil, err
	}
	_, m1, m2, err := cat.Pushout(mod1.K, sh2, name+"_BOD")
	if err != nil {
		return nil, fmt.Errorf("compose %s: body pushout: %w", name, err)
	}
	bod12 := m1.Target

	// Composed interface morphisms.
	h12, err := spec.Compose(mod1.H, m1) // EXP1 -> BOD12
	if err != nil {
		return nil, err
	}
	k12, err := spec.Compose(mod2.K, m2) // IMP2 -> BOD12
	if err != nil {
		return nil, err
	}
	g12 := mod1.G
	if t != nil {
		// PAR1 -> IMP2 via module 2's parameter.
		if g12, err = spec.Compose(t, mod2.G); err != nil {
			return nil, err
		}
	} else {
		g12 = spec.NewMorphism("g12", mod1.Par, mod2.Imp, nil, nil)
	}

	composed, err := New(name, mod1.Par, mod1.Exp, mod2.Imp, bod12, mod1.F, g12, h12, k12)
	if err != nil {
		return nil, err
	}
	return &Composition{Module: composed, M1: m1, M2: m2}, nil
}

// String identifies the module and its four components.
func (m *Module) String() string {
	return fmt.Sprintf("module %s (PAR=%s, EXP=%s, IMP=%s, BOD=%s)",
		m.Name, m.Par.Name, m.Exp.Name, m.Imp.Name, m.Bod.Name)
}
