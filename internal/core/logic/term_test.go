package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		name string
		term *Term
		want string
	}{
		{"var", Var("x", "Nat"), "x"},
		{"const", Const("c", "Nat"), "c"},
		{"app", App("f", "Nat", Var("x", "Nat"), Const("c", "Nat")), "f(x, c)"},
		{"nested", App("g", "", App("f", "", Var("x", ""))), "g(f(x))"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestTermEqual(t *testing.T) {
	a := App("f", "S", Var("x", "S"), Const("c", "S"))
	b := App("f", "S", Var("x", "S"), Const("c", "S"))
	if !a.Equal(b) {
		t.Error("identical terms compare unequal")
	}
	if a.Equal(App("f", "S", Var("x", "S"))) {
		t.Error("different arity compares equal")
	}
	if a.Equal(App("f", "T", Var("x", "S"), Const("c", "S"))) {
		t.Error("different sort compares equal")
	}
	if a.Equal(nil) {
		t.Error("non-nil equals nil")
	}
}

func TestTermCloneIndependence(t *testing.T) {
	a := App("f", "S", Var("x", "S"))
	c := a.Clone()
	c.Args[0].Name = "y"
	if a.Args[0].Name != "x" {
		t.Error("mutating clone mutated original")
	}
}

func TestTermVars(t *testing.T) {
	term := App("f", "", Var("z", ""), App("g", "", Var("a", ""), Var("z", "")), Const("c", ""))
	vars := term.Vars()
	if len(vars) != 2 || vars[0].Name != "a" || vars[1].Name != "z" {
		t.Fatalf("Vars() = %v, want [a z]", vars)
	}
}

func TestTermContainsVar(t *testing.T) {
	term := App("f", "", App("g", "", Var("x", "")))
	if !term.ContainsVar("x") {
		t.Error("ContainsVar(x) = false, want true")
	}
	if term.ContainsVar("y") {
		t.Error("ContainsVar(y) = true, want false")
	}
}

func TestTermRename(t *testing.T) {
	term := App("f", "S", Var("x", "S"), Const("c", "T"))
	got := term.Rename(map[string]string{"f": "F", "c": "C", "sort:S": "S2"})
	if got.Name != "F" || got.Sort != "S2" {
		t.Errorf("renamed head = %s:%s, want F:S2", got.Name, got.Sort)
	}
	if got.Args[0].Name != "x" {
		t.Error("variable name was renamed; only symbols should be")
	}
	if got.Args[0].Sort != "S2" {
		t.Error("variable sort was not renamed")
	}
	if got.Args[1].Name != "C" {
		t.Error("constant was not renamed")
	}
	if term.Name != "f" {
		t.Error("Rename mutated its receiver")
	}
}

// symbolSort fixes one sort per symbol name, mirroring a well-sorted
// signature: soundness of unification w.r.t. sort-sensitive Equal only
// holds for sort-consistent corpora.
var symbolSort = map[string]string{
	"x": "S", "y": "T", "z": "",
	"a": "S", "b": "T", "c": "",
	"f": "S", "g": "T",
}

// genTerm builds a random well-sorted term of bounded depth for property tests.
func genTerm(r *rand.Rand, depth int) *Term {
	switch {
	case depth <= 0 || r.Intn(3) == 0:
		if r.Intn(2) == 0 {
			n := []string{"x", "y", "z"}[r.Intn(3)]
			return Var(n, symbolSort[n])
		}
		n := []string{"a", "b", "c"}[r.Intn(3)]
		return Const(n, symbolSort[n])
	default:
		n := r.Intn(3)
		args := make([]*Term, n)
		for i := range args {
			args[i] = genTerm(r, depth-1)
		}
		if n == 0 {
			return Const("a", symbolSort["a"])
		}
		f := []string{"f", "g"}[r.Intn(2)]
		return App(f, symbolSort[f], args...)
	}
}

// termGen adapts genTerm for testing/quick.
type termGen struct{ T *Term }

// Generate implements quick.Generator.
func (termGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(termGen{T: genTerm(r, 3)})
}

func TestTermCloneEqualProperty(t *testing.T) {
	prop := func(g termGen) bool {
		return g.T.Equal(g.T.Clone())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTermSizePositiveProperty(t *testing.T) {
	prop := func(g termGen) bool {
		return g.T.Size() >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
