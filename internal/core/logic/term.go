// Package logic implements sorted first-order logic: terms, formulas,
// substitution, unification, and clausal-form conversion. It is the logical
// substrate for the specification framework (internal/core/spec) and the
// resolution prover (internal/core/prover), standing in for the MetaSlang
// logic used by Specware in the paper.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the three term constructors.
type TermKind int

// Term kinds. Enums start at one so the zero value is detectably invalid.
const (
	KindVar TermKind = iota + 1
	KindConst
	KindApp
)

// Term is a sorted first-order term: a variable, a constant, or an
// application of a function symbol to argument terms. Terms are immutable
// once built; all transformation functions return fresh terms.
type Term struct {
	Kind TermKind
	// Name is the variable, constant, or function symbol name.
	Name string
	// Sort is the sort (type) of the term. May be empty for unsorted use.
	Sort string
	// Args are the arguments of an application (Kind == KindApp only).
	Args []*Term
}

// Var returns a variable term of the given sort.
func Var(name, sortName string) *Term {
	return &Term{Kind: KindVar, Name: name, Sort: sortName}
}

// Const returns a constant term of the given sort.
func Const(name, sortName string) *Term {
	return &Term{Kind: KindConst, Name: name, Sort: sortName}
}

// App returns a function application term of the given result sort.
func App(name, sortName string, args ...*Term) *Term {
	return &Term{Kind: KindApp, Name: name, Sort: sortName, Args: args}
}

// IsVar reports whether t is a variable.
func (t *Term) IsVar() bool { return t != nil && t.Kind == KindVar }

// Equal reports structural equality of two terms. Sorts participate in
// equality: two syntactically identical terms of different sorts differ.
func (t *Term) Equal(u *Term) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind || t.Name != u.Name || t.Sort != u.Sort || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the term in conventional syntax, e.g. f(x, c).
func (t *Term) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVar, KindConst:
		return t.Name
	case KindApp:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.String()
		}
		return t.Name + "(" + strings.Join(parts, ", ") + ")"
	default:
		return fmt.Sprintf("<bad term kind %d>", t.Kind)
	}
}

// Clone returns a deep copy of the term.
func (t *Term) Clone() *Term {
	if t == nil {
		return nil
	}
	c := &Term{Kind: t.Kind, Name: t.Name, Sort: t.Sort}
	if len(t.Args) > 0 {
		c.Args = make([]*Term, len(t.Args))
		for i, a := range t.Args {
			c.Args[i] = a.Clone()
		}
	}
	return c
}

// Vars returns the free variables of the term, sorted by name for
// determinism. Each distinct name appears once.
func (t *Term) Vars() []*Term {
	seen := map[string]*Term{}
	t.collectVars(seen)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Term, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

func (t *Term) collectVars(seen map[string]*Term) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KindVar:
		if _, ok := seen[t.Name]; !ok {
			seen[t.Name] = t
		}
	case KindApp:
		for _, a := range t.Args {
			a.collectVars(seen)
		}
	}
}

// ContainsVar reports whether the variable named name occurs in t.
func (t *Term) ContainsVar(name string) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case KindVar:
		return t.Name == name
	case KindApp:
		for _, a := range t.Args {
			if a.ContainsVar(name) {
				return true
			}
		}
	}
	return false
}

// Size returns the number of symbol occurrences in the term.
func (t *Term) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}

// Rename returns a copy of t with every symbol occurrence renamed through
// rename; symbols absent from the map keep their name. Variable names are
// never renamed (they are bound occurrences, not signature symbols).
func (t *Term) Rename(rename map[string]string) *Term {
	if t == nil {
		return nil
	}
	c := t.Clone()
	c.renameInPlace(rename)
	return c
}

func (t *Term) renameInPlace(rename map[string]string) {
	if t.Kind != KindVar {
		if to, ok := rename[t.Name]; ok {
			t.Name = to
		}
	}
	if to, ok := rename["sort:"+t.Sort]; ok {
		t.Sort = to
	}
	for _, a := range t.Args {
		a.renameInPlace(rename)
	}
}
