package logic

import (
	"strings"
	"testing"
)

func TestToNNF(t *testing.T) {
	p, q := Pred("P"), Pred("Q")
	tests := []struct {
		name string
		in   *Formula
		want string
	}{
		{"double negation", Not(Not(p)), "P"},
		{"de morgan and", Not(And(p, q)), "(~P | ~Q)"},
		{"de morgan or", Not(Or(p, q)), "(~P & ~Q)"},
		{"implies", Implies(p, q), "(~P | Q)"},
		{"neg implies", Not(Implies(p, q)), "(P & ~Q)"},
		{"neg forall", Not(Forall([]*Term{Var("x", "")}, p)), "ex(x) ~P"},
		{"neg exists", Not(Exists([]*Term{Var("x", "")}, p)), "fa(x) ~P"},
		{"neg true", Not(True()), "false"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := toNNF(tt.in, false).String(); got != tt.want {
				t.Errorf("toNNF(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestClausifyPropositional(t *testing.T) {
	p, q, r := Pred("P"), Pred("Q"), Pred("R")
	tests := []struct {
		name       string
		in         *Formula
		wantCount  int
		wantClause string // substring that must appear in some clause
	}{
		{"atom", p, 1, "P"},
		{"conjunction", And(p, q), 2, "Q"},
		{"disjunction", Or(p, q), 1, "P | Q"},
		{"implication", Implies(p, q), 1, "~P | Q"},
		{"distribute", Or(p, And(q, r)), 2, "P | R"},
		{"iff", Iff(p, q), 2, "~Q | P"},
		{"false", False(), 1, "⊥"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cs := Clausify(tt.in)
			if len(cs) != tt.wantCount {
				t.Fatalf("Clausify(%s) yields %d clauses (%v), want %d", tt.in, len(cs), cs, tt.wantCount)
			}
			found := false
			for _, c := range cs {
				if strings.Contains(c.String(), tt.wantClause) {
					found = true
				}
			}
			if !found {
				t.Errorf("no clause of %v contains %q", cs, tt.wantClause)
			}
		})
	}
}

func TestClausifyTautologyIsEmpty(t *testing.T) {
	p := Pred("P", Var("x", ""))
	if cs := Clausify(Or(p, Not(p))); len(cs) != 0 {
		t.Errorf("tautology produced clauses: %v", cs)
	}
	if cs := Clausify(True()); len(cs) != 0 {
		t.Errorf("true produced clauses: %v", cs)
	}
}

func TestClausifySkolemization(t *testing.T) {
	x, y := Var("x", "S"), Var("y", "S")
	// fa(x) ex(y) P(x, y): y becomes sk(x).
	f := Forall([]*Term{x}, Exists([]*Term{y}, Pred("P", x, y)))
	cs := Clausify(f)
	if len(cs) != 1 || len(cs[0].Literals) != 1 {
		t.Fatalf("unexpected clauses %v", cs)
	}
	atom := cs[0].Literals[0].Atom
	if atom.Args[1].Kind != KindApp || len(atom.Args[1].Args) != 1 {
		t.Errorf("existential was not skolemized over the universal: %s", atom)
	}

	// ex(y) P(y): y becomes a skolem constant.
	cs = Clausify(Exists([]*Term{y}, Pred("P", y)))
	if len(cs) != 1 {
		t.Fatalf("unexpected clauses %v", cs)
	}
	if got := cs[0].Literals[0].Atom.Args[0]; got.Kind != KindConst {
		t.Errorf("existential without universals should become a constant, got %s", got)
	}
}

func TestClausifyFreeVarsAreUniversal(t *testing.T) {
	// P(x) => Q(x) with x free: one clause ~P(x) | Q(x).
	f := Implies(Pred("P", Var("x", "")), Pred("Q", Var("x", "")))
	cs := Clausify(f)
	if len(cs) != 1 || len(cs[0].Literals) != 2 {
		t.Fatalf("unexpected clauses %v", cs)
	}
}

func TestClausifyScopeCollision(t *testing.T) {
	x := Var("x", "")
	// (fa(x) P(x)) & (fa(x) Q(x)) must not confuse the two x's, and both
	// clauses must remain universally valid independently.
	f := And(Forall([]*Term{x}, Pred("P", x)), Forall([]*Term{x}, Pred("Q", x)))
	cs := Clausify(f)
	if len(cs) != 2 {
		t.Fatalf("want 2 clauses, got %v", cs)
	}
}

func TestClauseCanonicalStableUnderRenaming(t *testing.T) {
	c1 := &Clause{Literals: []Literal{
		{Atom: Pred("P", Var("x", ""), Var("y", ""))},
		{Negated: true, Atom: Pred("Q", Var("x", ""))},
	}}
	c2 := c1.RenameVars("_99")
	if c1.Canonical() != c2.Canonical() {
		t.Errorf("canonical forms differ:\n%s\n%s", c1.Canonical(), c2.Canonical())
	}
}

func TestSimplifyClause(t *testing.T) {
	p := Pred("P", Const("c", ""))
	dup := &Clause{Literals: []Literal{{Atom: p}, {Atom: p.Clone()}}}
	if got := simplifyClause(dup); len(got.Literals) != 1 {
		t.Errorf("duplicate literal not removed: %v", got)
	}
	taut := &Clause{Literals: []Literal{{Atom: p}, {Negated: true, Atom: p.Clone()}}}
	if got := simplifyClause(taut); got != nil {
		t.Errorf("tautology not removed: %v", got)
	}
}

func TestIfThenElse(t *testing.T) {
	c, p, q := Pred("C"), Pred("P"), Pred("Q")
	f := IfThenElse(c, p, q)
	want := And(Implies(c, p), Implies(Not(c), q))
	if !f.Equal(want) {
		t.Errorf("IfThenElse = %s, want %s", f, want)
	}
}

func TestFormulaFreeVars(t *testing.T) {
	x, y, z := Var("x", ""), Var("y", ""), Var("z", "")
	f := Forall([]*Term{x}, And(Pred("P", x, y), Exists([]*Term{z}, Pred("Q", z, y))))
	fv := f.FreeVars()
	if len(fv) != 1 || fv[0].Name != "y" {
		t.Errorf("FreeVars = %v, want [y]", fv)
	}
}

func TestClosure(t *testing.T) {
	f := Pred("P", Var("x", ""), Var("y", ""))
	g := Closure(f)
	if g.Kind != KindForall || len(g.Bound) != 2 {
		t.Errorf("Closure did not quantify both free vars: %s", g)
	}
	if got := Closure(Pred("P", Const("c", ""))); got.Kind == KindForall {
		t.Error("Closure quantified a closed formula")
	}
}
