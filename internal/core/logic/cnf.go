package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is an atom or its negation inside a clause.
type Literal struct {
	// Negated marks a negative literal.
	Negated bool
	// Atom is the underlying atomic formula (KindPred or KindEq).
	Atom *Formula
}

// String renders the literal, prefixing ~ when negated.
func (l Literal) String() string {
	if l.Negated {
		return "~" + l.Atom.String()
	}
	return l.Atom.String()
}

// Complementary reports whether l and m are an atom and its negation with
// syntactically identical atoms (no unification).
func (l Literal) Complementary(m Literal) bool {
	return l.Negated != m.Negated && l.Atom.Equal(m.Atom)
}

// Apply returns the literal with substitution s applied to its atom.
func (l Literal) Apply(s Subst) Literal {
	return Literal{Negated: l.Negated, Atom: s.ApplyFormula(l.Atom)}
}

// Clause is a disjunction of literals. The empty clause is falsity.
type Clause struct {
	Literals []Literal
}

// IsEmpty reports whether the clause has no literals (i.e. is false).
func (c *Clause) IsEmpty() bool { return len(c.Literals) == 0 }

// String renders the clause as "l1 | l2 | ..." or "⊥" when empty.
func (c *Clause) String() string {
	if c.IsEmpty() {
		return "⊥"
	}
	parts := make([]string, len(c.Literals))
	for i, l := range c.Literals {
		parts[i] = l.String()
	}
	return strings.Join(parts, " | ")
}

// Canonical returns a normalized string key for the clause under variable
// renaming: variables are numbered in order of first occurrence and literals
// are sorted. Used for subsumption-by-identity and duplicate elimination.
func (c *Clause) Canonical() string {
	next := 0
	names := map[string]string{}
	lits := make([]string, len(c.Literals))
	for i, l := range c.Literals {
		lits[i] = canonLiteral(l, names, &next)
	}
	sort.Strings(lits)
	return strings.Join(lits, " | ")
}

func canonLiteral(l Literal, names map[string]string, next *int) string {
	var b strings.Builder
	if l.Negated {
		b.WriteByte('~')
	}
	b.WriteString(l.Atom.Name)
	b.WriteByte('(')
	for i, a := range l.Atom.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		canonTerm(a, names, next, &b)
	}
	b.WriteByte(')')
	return b.String()
}

func canonTerm(t *Term, names map[string]string, next *int, b *strings.Builder) {
	switch t.Kind {
	case KindVar:
		n, ok := names[t.Name]
		if !ok {
			n = fmt.Sprintf("V%d", *next)
			*next++
			names[t.Name] = n
		}
		b.WriteString(n)
	case KindConst:
		b.WriteString(t.Name)
	case KindApp:
		b.WriteString(t.Name)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			canonTerm(a, names, next, b)
		}
		b.WriteByte(')')
	}
}

// RenameVars returns a copy of the clause with every variable renamed using
// the given suffix, standardizing clauses apart before resolution.
func (c *Clause) RenameVars(suffix string) *Clause {
	m := Subst{}
	for _, l := range c.Literals {
		for _, a := range l.Atom.Args {
			for _, v := range a.Vars() {
				if _, ok := m[v.Name]; !ok {
					m[v.Name] = Var(v.Name+suffix, v.Sort)
				}
			}
		}
	}
	out := &Clause{Literals: make([]Literal, len(c.Literals))}
	for i, l := range c.Literals {
		out.Literals[i] = l.Apply(m)
	}
	return out
}

// skolemCounter names fresh skolem symbols within one clausification run.
type skolemCounter struct{ n int }

func (sc *skolemCounter) fresh() string {
	sc.n++
	return fmt.Sprintf("sk%d", sc.n)
}

// Clausify converts a closed formula into an equisatisfiable set of clauses:
// NNF, quantifier handling with Skolemization, then distribution into CNF.
// Free variables are treated as universally quantified.
func Clausify(f *Formula) []*Clause {
	sc := &skolemCounter{}
	return ClausifyWith(f, sc.fresh)
}

// ClausifyWith is Clausify with a caller-supplied fresh-skolem-name source,
// letting a prover keep skolem names unique across several formulas.
func ClausifyWith(f *Formula, freshSkolem func() string) []*Clause {
	f = Closure(f)
	nnf := toNNF(f, false)
	renumber := &varRenamer{taken: map[string]int{}}
	matrix := skolemize(nnf, nil, Subst{}, freshSkolem, renumber)
	return distribute(matrix)
}

// toNNF pushes negations to atoms. neg tracks whether the current context is
// under an odd number of negations.
func toNNF(f *Formula, neg bool) *Formula {
	switch f.Kind {
	case KindPred, KindEq:
		if neg {
			return Not(f)
		}
		return f
	case KindTrue:
		if neg {
			return False()
		}
		return True()
	case KindFalse:
		if neg {
			return True()
		}
		return False()
	case KindNot:
		return toNNF(f.Sub[0], !neg)
	case KindAnd, KindOr:
		kind := f.Kind
		if neg {
			if kind == KindAnd {
				kind = KindOr
			} else {
				kind = KindAnd
			}
		}
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = toNNF(s, neg)
		}
		return &Formula{Kind: kind, Sub: sub}
	case KindImplies:
		// p => q  ≡  ~p | q
		return toNNF(Or(Not(f.Sub[0]), f.Sub[1]), neg)
	case KindIff:
		p, q := f.Sub[0], f.Sub[1]
		return toNNF(And(Implies(p, q), Implies(q, p)), neg)
	case KindForall, KindExists:
		kind := f.Kind
		if neg {
			if kind == KindForall {
				kind = KindExists
			} else {
				kind = KindForall
			}
		}
		return &Formula{Kind: kind, Bound: f.Bound, Sub: []*Formula{toNNF(f.Sub[0], neg)}}
	default:
		return f
	}
}

// varRenamer produces globally unique variable names so that distinct
// quantifier scopes never collide after the quantifiers are dropped.
type varRenamer struct{ taken map[string]int }

func (r *varRenamer) fresh(base string) string {
	n := r.taken[base]
	r.taken[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s_%d", base, n)
}

// skolemize removes quantifiers from an NNF formula. universals is the list
// of universally bound variables in scope (after renaming); s carries the
// renaming/skolem substitution.
func skolemize(f *Formula, universals []*Term, s Subst, freshSkolem func() string, r *varRenamer) *Formula {
	switch f.Kind {
	case KindPred, KindEq:
		return s.ApplyFormula(f)
	case KindNot:
		return Not(skolemize(f.Sub[0], universals, s, freshSkolem, r))
	case KindAnd, KindOr:
		sub := make([]*Formula, len(f.Sub))
		for i, g := range f.Sub {
			sub[i] = skolemize(g, universals, s, freshSkolem, r)
		}
		return &Formula{Kind: f.Kind, Sub: sub}
	case KindForall:
		inner := cloneSubst(s)
		// Copy before extending: sibling branches must not share growth of
		// the same backing array.
		scope := make([]*Term, len(universals), len(universals)+len(f.Bound))
		copy(scope, universals)
		for _, v := range f.Bound {
			nv := Var(r.fresh(v.Name), v.Sort)
			inner[v.Name] = nv
			scope = append(scope, nv)
		}
		return skolemize(f.Sub[0], scope, inner, freshSkolem, r)
	case KindExists:
		inner := cloneSubst(s)
		for _, v := range f.Bound {
			name := freshSkolem()
			if len(universals) == 0 {
				inner[v.Name] = Const(name, v.Sort)
			} else {
				args := make([]*Term, len(universals))
				copy(args, universals)
				inner[v.Name] = App(name, v.Sort, args...)
			}
		}
		return skolemize(f.Sub[0], universals, inner, freshSkolem, r)
	case KindTrue, KindFalse:
		return f
	default:
		return f
	}
}

func cloneSubst(s Subst) Subst {
	c := make(Subst, len(s)+2)
	for k, v := range s {
		c[k] = v
	}
	return c
}

// distribute converts a quantifier-free NNF formula to clauses.
func distribute(f *Formula) []*Clause {
	switch f.Kind {
	case KindTrue:
		return nil
	case KindFalse:
		return []*Clause{{}}
	case KindPred, KindEq:
		return []*Clause{{Literals: []Literal{{Atom: f}}}}
	case KindNot:
		return []*Clause{{Literals: []Literal{{Negated: true, Atom: f.Sub[0]}}}}
	case KindAnd:
		var out []*Clause
		for _, s := range f.Sub {
			out = append(out, distribute(s)...)
		}
		return dedupeClauses(out)
	case KindOr:
		// Cross-product of the clause sets of each disjunct.
		acc := []*Clause{{}}
		for _, s := range f.Sub {
			cs := distribute(s)
			var next []*Clause
			for _, a := range acc {
				for _, c := range cs {
					merged := &Clause{Literals: append(append([]Literal{}, a.Literals...), c.Literals...)}
					next = append(next, simplifyClause(merged))
				}
			}
			acc = compactNil(next)
			if len(acc) == 0 {
				// Every branch was a tautology: the disjunction is valid.
				return nil
			}
		}
		return dedupeClauses(acc)
	default:
		// Implies/Iff/quantifiers were eliminated earlier; treat defensively
		// as an opaque true formula contributing no clauses.
		return nil
	}
}

// simplifyClause removes duplicate literals and returns nil for tautologies.
func simplifyClause(c *Clause) *Clause {
	var out []Literal
	for _, l := range c.Literals {
		dup := false
		for _, m := range out {
			if l.Negated == m.Negated && l.Atom.Equal(m.Atom) {
				dup = true
				break
			}
			if l.Complementary(m) {
				return nil // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return &Clause{Literals: out}
}

func compactNil(cs []*Clause) []*Clause {
	out := cs[:0]
	for _, c := range cs {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

func dedupeClauses(cs []*Clause) []*Clause {
	seen := map[string]bool{}
	var out []*Clause
	for _, c := range cs {
		if c == nil {
			continue
		}
		k := c.Canonical()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
