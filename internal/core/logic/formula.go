package logic

import (
	"fmt"
	"sort"
	"strings"
)

// FormulaKind discriminates formula constructors.
type FormulaKind int

// Formula kinds.
const (
	KindPred FormulaKind = iota + 1
	KindNot
	KindAnd
	KindOr
	KindImplies
	KindIff
	KindForall
	KindExists
	KindTrue
	KindFalse
	KindEq
)

// Formula is a first-order formula over sorted terms.
//
// The constructor in use determines which fields are meaningful:
//
//	KindPred:            Name, Args
//	KindEq:              Args (exactly two)
//	KindNot:             Sub (exactly one)
//	KindAnd/Or/Implies/Iff: Sub (two or more; Implies/Iff exactly two)
//	KindForall/Exists:   Bound (variables), Sub (exactly one)
//	KindTrue/KindFalse:  nothing
type Formula struct {
	Kind  FormulaKind
	Name  string
	Args  []*Term
	Sub   []*Formula
	Bound []*Term
}

// Pred builds an atomic predicate formula.
func Pred(name string, args ...*Term) *Formula {
	return &Formula{Kind: KindPred, Name: name, Args: args}
}

// Eq builds an equality atom between two terms.
func Eq(a, b *Term) *Formula { return &Formula{Kind: KindEq, Args: []*Term{a, b}} }

// Not negates a formula.
func Not(f *Formula) *Formula { return &Formula{Kind: KindNot, Sub: []*Formula{f}} }

// And conjoins formulas. And() is True; And(f) is f.
func And(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return True()
	case 1:
		return fs[0]
	}
	return &Formula{Kind: KindAnd, Sub: fs}
}

// Or disjoins formulas. Or() is False; Or(f) is f.
func Or(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return False()
	case 1:
		return fs[0]
	}
	return &Formula{Kind: KindOr, Sub: fs}
}

// Implies builds p => q.
func Implies(p, q *Formula) *Formula {
	return &Formula{Kind: KindImplies, Sub: []*Formula{p, q}}
}

// Iff builds p <=> q.
func Iff(p, q *Formula) *Formula {
	return &Formula{Kind: KindIff, Sub: []*Formula{p, q}}
}

// Forall universally quantifies vars over body.
func Forall(vars []*Term, body *Formula) *Formula {
	if len(vars) == 0 {
		return body
	}
	return &Formula{Kind: KindForall, Bound: vars, Sub: []*Formula{body}}
}

// Exists existentially quantifies vars over body.
func Exists(vars []*Term, body *Formula) *Formula {
	if len(vars) == 0 {
		return body
	}
	return &Formula{Kind: KindExists, Bound: vars, Sub: []*Formula{body}}
}

// True returns the true constant formula.
func True() *Formula { return &Formula{Kind: KindTrue} }

// False returns the false constant formula.
func False() *Formula { return &Formula{Kind: KindFalse} }

// IfThenElse desugars "if c then p else q" into (c => p) & (~c => q),
// matching the conditional sugar in the paper's Specware sources.
func IfThenElse(c, p, q *Formula) *Formula {
	return And(Implies(c, p), Implies(Not(c), q))
}

// Clone deep-copies the formula.
func (f *Formula) Clone() *Formula {
	if f == nil {
		return nil
	}
	c := &Formula{Kind: f.Kind, Name: f.Name}
	if len(f.Args) > 0 {
		c.Args = make([]*Term, len(f.Args))
		for i, a := range f.Args {
			c.Args[i] = a.Clone()
		}
	}
	if len(f.Sub) > 0 {
		c.Sub = make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			c.Sub[i] = s.Clone()
		}
	}
	if len(f.Bound) > 0 {
		c.Bound = make([]*Term, len(f.Bound))
		for i, v := range f.Bound {
			c.Bound[i] = v.Clone()
		}
	}
	return c
}

// Equal reports structural equality.
func (f *Formula) Equal(g *Formula) bool {
	if f == nil || g == nil {
		return f == g
	}
	if f.Kind != g.Kind || f.Name != g.Name ||
		len(f.Args) != len(g.Args) || len(f.Sub) != len(g.Sub) || len(f.Bound) != len(g.Bound) {
		return false
	}
	for i := range f.Args {
		if !f.Args[i].Equal(g.Args[i]) {
			return false
		}
	}
	for i := range f.Bound {
		if !f.Bound[i].Equal(g.Bound[i]) {
			return false
		}
	}
	for i := range f.Sub {
		if !f.Sub[i].Equal(g.Sub[i]) {
			return false
		}
	}
	return true
}

// String renders the formula with conventional connective syntax.
func (f *Formula) String() string {
	if f == nil {
		return "<nil>"
	}
	switch f.Kind {
	case KindPred:
		if len(f.Args) == 0 {
			return f.Name
		}
		parts := make([]string, len(f.Args))
		for i, a := range f.Args {
			parts[i] = a.String()
		}
		return f.Name + "(" + strings.Join(parts, ", ") + ")"
	case KindEq:
		return "(" + f.Args[0].String() + " = " + f.Args[1].String() + ")"
	case KindNot:
		return "~" + f.Sub[0].String()
	case KindAnd:
		return f.joinSub(" & ")
	case KindOr:
		return f.joinSub(" | ")
	case KindImplies:
		return "(" + f.Sub[0].String() + " => " + f.Sub[1].String() + ")"
	case KindIff:
		return "(" + f.Sub[0].String() + " <=> " + f.Sub[1].String() + ")"
	case KindForall:
		return "fa(" + boundString(f.Bound) + ") " + f.Sub[0].String()
	case KindExists:
		return "ex(" + boundString(f.Bound) + ") " + f.Sub[0].String()
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	default:
		return fmt.Sprintf("<bad formula kind %d>", f.Kind)
	}
}

func (f *Formula) joinSub(sep string) string {
	parts := make([]string, len(f.Sub))
	for i, s := range f.Sub {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func boundString(vars []*Term) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if v.Sort != "" {
			parts[i] = v.Name + ":" + v.Sort
		} else {
			parts[i] = v.Name
		}
	}
	return strings.Join(parts, ", ")
}

// FreeVars returns the free variables of the formula, sorted by name.
func (f *Formula) FreeVars() []*Term {
	seen := map[string]*Term{}
	f.collectFree(map[string]bool{}, seen)
	return sortedVarValues(seen)
}

func (f *Formula) collectFree(bound map[string]bool, seen map[string]*Term) {
	if f == nil {
		return
	}
	switch f.Kind {
	case KindPred, KindEq:
		for _, a := range f.Args {
			collectFreeTerm(a, bound, seen)
		}
	case KindForall, KindExists:
		inner := make(map[string]bool, len(bound)+len(f.Bound))
		for k := range bound {
			inner[k] = true
		}
		for _, v := range f.Bound {
			inner[v.Name] = true
		}
		f.Sub[0].collectFree(inner, seen)
	default:
		for _, s := range f.Sub {
			s.collectFree(bound, seen)
		}
	}
}

func collectFreeTerm(t *Term, bound map[string]bool, seen map[string]*Term) {
	if t == nil {
		return
	}
	if t.Kind == KindVar {
		if !bound[t.Name] {
			if _, ok := seen[t.Name]; !ok {
				seen[t.Name] = t
			}
		}
		return
	}
	for _, a := range t.Args {
		collectFreeTerm(a, bound, seen)
	}
}

func sortedVarValues(seen map[string]*Term) []*Term {
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Term, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

// Closure universally quantifies all free variables of f.
func Closure(f *Formula) *Formula {
	fv := f.FreeVars()
	if len(fv) == 0 {
		return f
	}
	return Forall(fv, f)
}

// Rename returns a copy of f with predicate, function, constant, and sort
// symbols renamed through rename (sorts keyed as "sort:<name>").
func (f *Formula) Rename(rename map[string]string) *Formula {
	if f == nil {
		return nil
	}
	c := f.Clone()
	c.renameInPlace(rename)
	return c
}

func (f *Formula) renameInPlace(rename map[string]string) {
	if f.Kind == KindPred {
		if to, ok := rename[f.Name]; ok {
			f.Name = to
		}
	}
	for _, a := range f.Args {
		a.renameInPlace(rename)
	}
	for _, v := range f.Bound {
		v.renameInPlace(rename)
	}
	for _, s := range f.Sub {
		s.renameInPlace(rename)
	}
}
