package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution mapping variable names to terms.
type Subst map[string]*Term

// Apply applies the substitution to a term, returning a fresh term.
func (s Subst) Apply(t *Term) *Term {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case KindVar:
		// Chase chains v -> u -> ... created by incremental unification.
		// A seen-set guards against identity or cyclic bindings so Apply
		// terminates on any map, not just ones produced by Unify.
		seen := map[string]bool{t.Name: true}
		cur := t
		for {
			r, ok := s[cur.Name]
			if !ok {
				return cur
			}
			if r.Kind != KindVar {
				return s.Apply(r)
			}
			if seen[r.Name] {
				return r
			}
			seen[r.Name] = true
			cur = r
		}
	case KindConst:
		return t
	case KindApp:
		args := make([]*Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = s.Apply(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return &Term{Kind: KindApp, Name: t.Name, Sort: t.Sort, Args: args}
	default:
		return t
	}
}

// ApplyFormula applies the substitution to every term in the formula.
// Quantified formulas are not handled (panic-free: bound variables are
// simply shadowed by deleting them from a copy of s), but in practice the
// prover only substitutes into quantifier-free formulas.
func (s Subst) ApplyFormula(f *Formula) *Formula {
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindPred, KindEq:
		c := &Formula{Kind: f.Kind, Name: f.Name, Args: make([]*Term, len(f.Args))}
		for i, a := range f.Args {
			c.Args[i] = s.Apply(a)
		}
		return c
	case KindForall, KindExists:
		inner := make(Subst, len(s))
		for k, v := range s {
			inner[k] = v
		}
		for _, b := range f.Bound {
			delete(inner, b.Name)
		}
		return &Formula{Kind: f.Kind, Bound: f.Bound, Sub: []*Formula{inner.ApplyFormula(f.Sub[0])}}
	default:
		c := &Formula{Kind: f.Kind, Name: f.Name, Bound: f.Bound}
		c.Sub = make([]*Formula, len(f.Sub))
		for i, sub := range f.Sub {
			c.Sub[i] = s.ApplyFormula(sub)
		}
		return c
	}
}

// String renders the substitution deterministically, e.g. {x↦c, y↦f(z)}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s↦%s", k, s[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Unify computes a most general unifier of terms a and b, extending base
// (which may be nil). It returns the extended substitution, or ok=false if
// the terms do not unify. Sorts must agree on variables bindings: a variable
// of sort S only binds to a term of sort S or of the empty sort (and vice
// versa), which lets partially sorted corpora unify with fully sorted ones.
func Unify(a, b *Term, base Subst) (Subst, bool) {
	s := make(Subst, len(base)+4)
	for k, v := range base {
		s[k] = v
	}
	if unify(a, b, s) {
		return s, true
	}
	return nil, false
}

func unify(a, b *Term, s Subst) bool {
	a = walk(a, s)
	b = walk(b, s)
	switch {
	case a.Kind == KindVar && b.Kind == KindVar && a.Name == b.Name:
		return true
	case a.Kind == KindVar:
		return bindVar(a, b, s)
	case b.Kind == KindVar:
		return bindVar(b, a, s)
	case a.Kind == KindConst && b.Kind == KindConst:
		return a.Name == b.Name && sortsCompatible(a.Sort, b.Sort)
	case a.Kind == KindApp && b.Kind == KindApp:
		if a.Name != b.Name || len(a.Args) != len(b.Args) || !sortsCompatible(a.Sort, b.Sort) {
			return false
		}
		for i := range a.Args {
			if !unify(a.Args[i], b.Args[i], s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// walk dereferences a variable through the substitution one step at a time
// until it reaches a non-variable or an unbound variable.
func walk(t *Term, s Subst) *Term {
	for t.Kind == KindVar {
		r, ok := s[t.Name]
		if !ok {
			return t
		}
		t = r
	}
	return t
}

func bindVar(v, t *Term, s Subst) bool {
	if !sortsCompatible(v.Sort, t.Sort) {
		return false
	}
	if occurs(v.Name, t, s) {
		return false
	}
	s[v.Name] = t
	return true
}

func occurs(name string, t *Term, s Subst) bool {
	t = walk(t, s)
	if t.Kind == KindVar {
		return t.Name == name
	}
	for _, a := range t.Args {
		if occurs(name, a, s) {
			return true
		}
	}
	return false
}

func sortsCompatible(a, b string) bool {
	return a == "" || b == "" || a == b
}

// UnifyAtoms unifies two atomic formulas (predicates or equalities),
// extending base. Returns ok=false when the predicates differ or any
// argument pair fails to unify.
func UnifyAtoms(a, b *Formula, base Subst) (Subst, bool) {
	if a.Kind != b.Kind || a.Name != b.Name || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := make(Subst, len(base)+4)
	for k, v := range base {
		s[k] = v
	}
	for i := range a.Args {
		if !unify(a.Args[i], b.Args[i], s) {
			return nil, false
		}
	}
	return s, true
}
