package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnifyBasic(t *testing.T) {
	tests := []struct {
		name   string
		a, b   *Term
		wantOK bool
	}{
		{"var-const", Var("x", ""), Const("c", ""), true},
		{"const-const same", Const("c", ""), Const("c", ""), true},
		{"const-const diff", Const("c", ""), Const("d", ""), false},
		{"app-app", App("f", "", Var("x", "")), App("f", "", Const("c", "")), true},
		{"app arity mismatch", App("f", "", Var("x", "")), App("f", "", Var("x", ""), Var("y", "")), false},
		{"app name mismatch", App("f", "", Var("x", "")), App("g", "", Var("x", "")), false},
		{"occurs check", Var("x", ""), App("f", "", Var("x", "")), false},
		{"sorted var ok", Var("x", "S"), Const("c", "S"), true},
		{"sorted var mismatch", Var("x", "S"), Const("c", "T"), false},
		{"unsorted meets sorted", Var("x", ""), Const("c", "T"), true},
		{"same var", Var("x", "S"), Var("x", "S"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, ok := Unify(tt.a, tt.b, nil)
			if ok != tt.wantOK {
				t.Errorf("Unify(%s, %s) ok = %v, want %v", tt.a, tt.b, ok, tt.wantOK)
			}
		})
	}
}

func TestUnifyProducesUnifier(t *testing.T) {
	a := App("f", "", Var("x", ""), App("g", "", Var("y", "")))
	b := App("f", "", Const("c", ""), App("g", "", Const("d", "")))
	s, ok := Unify(a, b, nil)
	if !ok {
		t.Fatal("Unify failed")
	}
	if !s.Apply(a).Equal(s.Apply(b)) {
		t.Errorf("substitution does not unify: %s vs %s", s.Apply(a), s.Apply(b))
	}
}

func TestUnifyChained(t *testing.T) {
	// x ~ y, then y ~ c: applying to x must yield c.
	s, ok := Unify(Var("x", ""), Var("y", ""), nil)
	if !ok {
		t.Fatal("var-var unify failed")
	}
	s, ok = Unify(Var("y", ""), Const("c", ""), s)
	if !ok {
		t.Fatal("chained unify failed")
	}
	if got := s.Apply(Var("x", "")); got.Name != "c" {
		t.Errorf("x resolves to %s, want c", got)
	}
}

func TestUnifyAtoms(t *testing.T) {
	p := Pred("P", Var("x", ""), Const("c", ""))
	q := Pred("P", Const("d", ""), Const("c", ""))
	s, ok := UnifyAtoms(p, q, nil)
	if !ok {
		t.Fatal("UnifyAtoms failed")
	}
	if !s.ApplyFormula(p).Equal(s.ApplyFormula(q)) {
		t.Error("substitution does not unify atoms")
	}
	if _, ok := UnifyAtoms(p, Pred("Q", Var("x", ""), Const("c", "")), nil); ok {
		t.Error("different predicates unified")
	}
}

func TestApplyFormulaQuantifierShadowing(t *testing.T) {
	// Substituting x under fa(x) must not touch the bound occurrences.
	f := Forall([]*Term{Var("x", "")}, Pred("P", Var("x", ""), Var("y", "")))
	s := Subst{"x": Const("c", ""), "y": Const("d", "")}
	got := s.ApplyFormula(f)
	atom := got.Sub[0]
	if atom.Args[0].Name != "x" {
		t.Errorf("bound x was substituted: %s", got)
	}
	if atom.Args[1].Name != "d" {
		t.Errorf("free y was not substituted: %s", got)
	}
}

// Property: whenever Unify succeeds, the result is a genuine unifier.
func TestUnifySoundProperty(t *testing.T) {
	prop := func(ga, gb termGen) bool {
		s, ok := Unify(ga.T, gb.T, nil)
		if !ok {
			return true
		}
		return s.Apply(ga.T).Equal(s.Apply(gb.T))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: unification is symmetric in success.
func TestUnifySymmetricProperty(t *testing.T) {
	prop := func(ga, gb termGen) bool {
		_, ok1 := Unify(ga.T, gb.T, nil)
		_, ok2 := Unify(gb.T, ga.T, nil)
		return ok1 == ok2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a term always unifies with itself, and with a fresh variable.
func TestUnifyReflexiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		term := genTerm(r, 3)
		if _, ok := Unify(term, term.Clone(), nil); !ok {
			t.Fatalf("term %s does not unify with itself", term)
		}
		fresh := Var("fresh_w", term.Sort)
		if term.ContainsVar("fresh_w") {
			continue
		}
		if _, ok := Unify(fresh, term, nil); !ok {
			t.Fatalf("fresh variable does not unify with %s", term)
		}
	}
}
