// Package provesched extracts the proof obligations of a speclang file
// and discharges them on a worker pool.
//
// A prove statement only reads the spec it names, so once elaboration has
// built every spec the obligations are mutually independent and can run
// concurrently. The scheduler still computes the spec-dependency DAG
// (imports, translations, morphisms, diagram nodes, colimits): the DAG
// fixes the deterministic result order (source order, which is a
// topological order of the DAG), and its depth drives the start order —
// obligations over the deepest composites carry the largest premise sets
// and are dispatched first, shrinking the tail of the schedule.
//
// Results are deterministic and bit-identical to the sequential
// elaborator path at any worker count: each Prove call is a pure function
// of its premise set, and the shared clause cache memoizes a pure
// function of each named formula (see prover.ClauseCache).
package provesched

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"speccat/internal/core/prover"
	"speccat/internal/core/speclang"
)

// ErrObligation is wrapped when an obligation references a spec, theorem,
// or axiom the environment does not carry.
var ErrObligation = errors.New("provesched: bad obligation")

// Obligation is one prove statement, annotated with its position in the
// spec-dependency DAG.
type Obligation struct {
	// Name is the statement's binding name (p1..p5 in the corpus).
	Name string
	// Index is the statement's position in the source file; results are
	// emitted in Index order.
	Index int
	// Line is the statement's source line.
	Line int
	// In is the spec carrying the theorem.
	In string
	// Theorem is the goal to prove.
	Theorem string
	// Using lists the premise axioms; empty means every axiom of In (the
	// monolithic proof).
	Using []string
	// Deps are the names in In's spec-dependency closure, sorted — the
	// DAG ancestry the premises descend along.
	Deps []string
	// Depth is the longest reference path from In down to a DAG root;
	// deeper composites accumulate larger premise sets.
	Depth int
}

// Extract parses src and returns its prove obligations in source order,
// each annotated with the spec-dependency closure and depth of the spec
// it proves in. References that do not resolve within the file are
// ignored here; elaboration reports them.
func Extract(src string) ([]Obligation, error) {
	f, err := speclang.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromFile(f), nil
}

// FromFile computes the obligations of an already-parsed file.
func FromFile(f *speclang.File) []Obligation {
	n := len(f.Stmts)
	// Resolve each statement's references to the latest earlier binding of
	// that name (re-binding shadows), making the graph acyclic by
	// construction.
	bound := map[string]int{}
	refs := make([][]int, n)
	for i, stmt := range f.Stmts {
		for _, name := range exprRefs(stmt.Expr) {
			if j, ok := bound[name]; ok {
				refs[i] = append(refs[i], j)
			}
		}
		if stmt.Name != "" {
			bound[stmt.Name] = i
		}
	}
	// Depth and transitive closure, in order (references point backwards).
	depth := make([]int, n)
	closure := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		closure[i] = map[int]bool{}
		for _, j := range refs[i] {
			if d := depth[j] + 1; d > depth[i] {
				depth[i] = d
			}
			closure[i][j] = true
			for k := range closure[j] {
				closure[i][k] = true
			}
		}
	}
	var out []Obligation
	for i, stmt := range f.Stmts {
		pe, ok := stmt.Expr.(*speclang.ProveExpr)
		if !ok {
			continue
		}
		ob := Obligation{
			Name:    stmt.Name,
			Index:   i,
			Line:    stmt.Line,
			In:      pe.In,
			Theorem: pe.Theorem,
			Using:   append([]string{}, pe.Using...),
		}
		if j, resolved := latestBefore(f, pe.In, i); resolved {
			ob.Depth = depth[j]
			seen := map[string]bool{}
			for k := range closure[j] {
				if name := f.Stmts[k].Name; name != "" && !seen[name] {
					seen[name] = true
					ob.Deps = append(ob.Deps, name)
				}
			}
			sort.Strings(ob.Deps)
		}
		out = append(out, ob)
	}
	return out
}

// latestBefore resolves name to the latest statement before index i.
func latestBefore(f *speclang.File, name string, i int) (int, bool) {
	for j := i - 1; j >= 0; j-- {
		if f.Stmts[j].Name == name {
			return j, true
		}
	}
	return 0, false
}

// exprRefs lists the names an expression references.
func exprRefs(e speclang.Expr) []string {
	switch x := e.(type) {
	case *speclang.SpecExpr:
		return x.Imports
	case *speclang.TranslateExpr:
		return []string{x.Source}
	case *speclang.MorphismExpr:
		return []string{x.Source, x.Target}
	case *speclang.MorphismRef:
		return []string{x.Name}
	case *speclang.DiagramExpr:
		var out []string
		for _, node := range x.Nodes {
			out = append(out, node.Spec)
		}
		for _, arc := range x.Arcs {
			out = append(out, exprRefs(arc.M)...)
		}
		return out
	case *speclang.ColimitExpr:
		return []string{x.Diagram}
	case *speclang.ProveExpr:
		return []string{x.In}
	case *speclang.PrintExpr:
		return []string{x.Name}
	default:
		return nil
	}
}

// Result is the outcome of one scheduled obligation.
type Result struct {
	Obligation Obligation
	// Proof is the refutation; nil when Err is set.
	Proof *prover.Result
	// Err carries a failed verdict (wrapping prover.ErrExhausted or
	// prover.ErrLimit) or an ErrObligation lookup failure.
	Err error
}

// Scheduler runs proof obligations on a worker pool.
type Scheduler struct {
	// Workers is the pool size; values <= 0 mean GOMAXPROCS.
	Workers int
	// Limits bounds each proof search. The zero value means
	// prover.DefaultLimits — the same limits the sequential elaborator
	// uses, so verdicts match it exactly.
	Limits prover.Limits
	// Cache memoizes clausification across obligations; nil means a
	// fresh cache private to each Run call.
	Cache *prover.ClauseCache
}

// Run discharges the obligations against env. Results are indexed like
// obs (source order) regardless of worker count or completion
// interleaving, and each proof is bit-identical to what the sequential
// elaborator derives for the same statement.
func (s *Scheduler) Run(env *speclang.Env, obs []Obligation) []Result {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := s.Cache
	if cache == nil {
		cache = prover.NewClauseCache()
	}
	// Dispatch deepest-first (largest premise sets first), ties in source
	// order: starting the long searches early shortens the schedule tail.
	order := make([]int, len(obs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if obs[order[a]].Depth != obs[order[b]].Depth {
			return obs[order[a]].Depth > obs[order[b]].Depth
		}
		return obs[order[a]].Index < obs[order[b]].Index
	})

	results := make([]Result, len(obs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = s.proveOne(env, cache, obs[i])
			}
		}()
	}
	for _, i := range order {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// proveOne discharges a single obligation, mirroring the premise
// construction of the sequential elaborator's prove statement exactly.
func (s *Scheduler) proveOne(env *speclang.Env, cache *prover.ClauseCache, ob Obligation) Result {
	sp, err := env.Spec(ob.In)
	if err != nil {
		return Result{Obligation: ob, Err: fmt.Errorf("%w: %w", ErrObligation, err)}
	}
	th, ok := sp.FindTheorem(ob.Theorem)
	if !ok {
		return Result{Obligation: ob, Err: fmt.Errorf("%w: theorem %s not in %s", ErrObligation, ob.Theorem, ob.In)}
	}
	var premises []prover.NamedFormula
	if len(ob.Using) > 0 {
		for _, name := range ob.Using {
			ax, ok := sp.FindAxiom(name)
			if !ok {
				return Result{Obligation: ob, Err: fmt.Errorf("%w: axiom %s not in %s", ErrObligation, name, ob.In)}
			}
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
	} else {
		for _, ax := range sp.Axioms {
			premises = append(premises, prover.NamedFormula{Name: ax.Name, Formula: ax.Formula})
		}
	}
	lim := s.Limits
	if lim == (prover.Limits{}) {
		lim = prover.DefaultLimits()
	}
	pr := &prover.Prover{Limits: lim, Cache: cache}
	res, err := pr.Prove(premises, prover.NamedFormula{Name: th.Name, Formula: th.Formula})
	if err != nil {
		return Result{Obligation: ob, Err: fmt.Errorf("prove %s in %s: %w", ob.Theorem, ob.In, err)}
	}
	return Result{Obligation: ob, Proof: res}
}

// Bind attaches successful results to env under their statement names
// (replacing the "skipped" markers a SkipProofs elaboration left), making
// the environment interchangeable with a sequential proofs-included run.
// It returns the first failed result's error, in source order, if any.
func Bind(env *speclang.Env, results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s (line %d): %w", r.Obligation.Name, r.Obligation.Line, r.Err)
		}
	}
	for _, r := range results {
		env.Bind(r.Obligation.Name, &speclang.Value{Kind: speclang.KindProof, Proof: r.Proof})
	}
	return nil
}
