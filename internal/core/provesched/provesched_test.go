package provesched

import (
	"errors"
	"strings"
	"testing"

	"speccat/internal/core/prover"
	"speccat/internal/core/speclang"
)

// testSrc is a miniature corpus: a root spec, an importing spec, and a
// colimit, each carrying a provable theorem.
const testSrc = `
A = spec
sort S
op P : S -> Boolean
op Q : S -> Boolean
axiom PA is fa(x:S) P(x)
axiom PQ is fa(x:S) P(x) => Q(x)
theorem QA is fa(x:S) Q(x)
endspec

B = spec
import A
op R : S -> Boolean
axiom QR is fa(x:S) Q(x) => R(x)
theorem RA is fa(x:S) R(x)
endspec

BDIAG = diagram {
a ++> A,
b ++> B,
i: a->b ++> morphism A -> B {}}

C = colimit BDIAG

pa = prove QA in A using PA PQ
pb = prove RA in B
pc = prove RA in C using PA PQ QR
`

func testEnv(t *testing.T) (*speclang.Env, []Obligation) {
	t.Helper()
	env, err := speclang.Run(testSrc, speclang.Options{SkipProofs: true})
	if err != nil {
		t.Fatalf("elaboration failed: %v", err)
	}
	obs, err := Extract(testSrc)
	if err != nil {
		t.Fatalf("Extract failed: %v", err)
	}
	return env, obs
}

func TestExtractObligationsAndDAG(t *testing.T) {
	_, obs := testEnv(t)
	if len(obs) != 3 {
		t.Fatalf("obligations = %d, want 3", len(obs))
	}
	want := []struct {
		name, in, theorem string
		using             int
		depth             int
		deps              string
	}{
		{"pa", "A", "QA", 2, 0, ""},
		{"pb", "B", "RA", 0, 1, "A"},
		{"pc", "C", "RA", 3, 3, "A B BDIAG"},
	}
	for i, w := range want {
		ob := obs[i]
		if ob.Name != w.name || ob.In != w.in || ob.Theorem != w.theorem {
			t.Errorf("obligation %d = %s (%s in %s), want %s (%s in %s)",
				i, ob.Name, ob.Theorem, ob.In, w.name, w.theorem, w.in)
		}
		if len(ob.Using) != w.using {
			t.Errorf("%s: using = %v, want %d premises", ob.Name, ob.Using, w.using)
		}
		if ob.Depth != w.depth {
			t.Errorf("%s: depth = %d, want %d", ob.Name, ob.Depth, w.depth)
		}
		if got := strings.Join(ob.Deps, " "); got != w.deps {
			t.Errorf("%s: deps = %q, want %q", ob.Name, got, w.deps)
		}
		if ob.Index <= 0 || ob.Line <= 0 {
			t.Errorf("%s: index/line not populated: %+v", ob.Name, ob)
		}
	}
	if !(obs[0].Index < obs[1].Index && obs[1].Index < obs[2].Index) {
		t.Errorf("obligations out of source order: %v %v %v", obs[0].Index, obs[1].Index, obs[2].Index)
	}
}

func render(r Result) string {
	var b strings.Builder
	for _, s := range r.Proof.Proof {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSchedulerDeterministicAcrossWorkerCounts proves the same
// obligations at several pool sizes and requires bit-identical proofs in
// stable source order every time.
func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	env, obs := testEnv(t)
	var baseline []string
	for _, workers := range []int{1, 2, 4, 8} {
		s := &Scheduler{Workers: workers}
		results := s.Run(env, obs)
		if len(results) != len(obs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(obs))
		}
		var rendered []string
		for i, r := range results {
			if r.Obligation.Name != obs[i].Name {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, r.Obligation.Name, obs[i].Name)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: %s failed: %v", workers, r.Obligation.Name, r.Err)
			}
			rendered = append(rendered, render(r))
		}
		if baseline == nil {
			baseline = rendered
			continue
		}
		for i := range rendered {
			if rendered[i] != baseline[i] {
				t.Errorf("workers=%d: proof %s differs from workers=1 run", workers, obs[i].Name)
			}
		}
	}
}

// TestSchedulerMatchesSequentialElaborator requires scheduler proofs to
// be bit-identical to the ones the elaborator derives inline.
func TestSchedulerMatchesSequentialElaborator(t *testing.T) {
	seqEnv, err := speclang.Run(testSrc, speclang.Options{})
	if err != nil {
		t.Fatalf("sequential elaboration failed: %v", err)
	}
	env, obs := testEnv(t)
	results := (&Scheduler{Workers: 4}).Run(env, obs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.Obligation.Name, r.Err)
		}
		v, ok := seqEnv.Lookup(r.Obligation.Name)
		if !ok || v.Kind != speclang.KindProof {
			t.Fatalf("sequential env has no proof for %s", r.Obligation.Name)
		}
		if want := render(Result{Proof: v.Proof}); render(r) != want {
			t.Errorf("%s: scheduled proof differs from elaborator proof", r.Obligation.Name)
		}
	}
}

func TestSchedulerReportsBadObligations(t *testing.T) {
	env, obs := testEnv(t)
	bad := []Obligation{
		{Name: "missing-spec", In: "NOSUCH", Theorem: "QA"},
		{Name: "missing-theorem", In: "A", Theorem: "NOPE"},
		{Name: "missing-axiom", In: "A", Theorem: "QA", Using: []string{"NOAX"}},
	}
	results := (&Scheduler{Workers: 2}).Run(env, append(bad, obs[0]))
	for i := 0; i < 3; i++ {
		if results[i].Err == nil {
			t.Errorf("%s: expected an error", results[i].Obligation.Name)
		}
	}
	if !errors.Is(results[1].Err, ErrObligation) || !errors.Is(results[2].Err, ErrObligation) {
		t.Errorf("lookup failures should wrap ErrObligation: %v / %v", results[1].Err, results[2].Err)
	}
	if results[3].Err != nil {
		t.Errorf("valid obligation failed alongside bad ones: %v", results[3].Err)
	}
	if err := Bind(env, results); err == nil {
		t.Error("Bind should surface the first failed result")
	}
}

func TestBindAttachesProofs(t *testing.T) {
	env, obs := testEnv(t)
	before := strings.Join(env.Names(), " ")
	results := (&Scheduler{Workers: 2}).Run(env, obs)
	if err := Bind(env, results); err != nil {
		t.Fatalf("Bind failed: %v", err)
	}
	if after := strings.Join(env.Names(), " "); after != before {
		t.Errorf("Bind changed name order:\nbefore: %s\nafter:  %s", before, after)
	}
	for _, ob := range obs {
		v, ok := env.Lookup(ob.Name)
		if !ok || v.Kind != speclang.KindProof || v.Proof == nil {
			t.Errorf("%s: proof not bound (kind=%v)", ob.Name, v.Kind)
		}
	}
}

// TestSchedulerSharedCache pins that a caller-provided cache is actually
// used across obligations: the shared premise axioms hit.
func TestSchedulerSharedCache(t *testing.T) {
	env, obs := testEnv(t)
	cache := prover.NewClauseCache()
	results := (&Scheduler{Workers: 1, Cache: cache}).Run(env, obs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.Obligation.Name, r.Err)
		}
	}
	hits, misses := cache.Stats()
	if misses == 0 || hits == 0 {
		t.Errorf("shared cache unused: hits=%d misses=%d", hits, misses)
	}
}
