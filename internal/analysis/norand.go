package analysis

import (
	"go/ast"
)

// globalRandFuncs are the math/rand package-level functions that draw
// from the global, non-reproducible source. Constructors (New,
// NewSource, NewZipf) and methods on an explicit *rand.Rand are fine.
var globalRandFuncs = map[string]bool{ //lint:allow noglobalstate immutable lookup table
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// NoRand flags uses of the global math/rand source in non-test code
// (DESIGN.md: deterministic seeded RNG). Randomness must flow from an
// explicitly seeded *rand.Rand threaded through the code, as
// internal/sim's Scheduler does.
var NoRand = &Analyzer{ //lint:allow noglobalstate analyzer singleton, assigned once and never mutated
	Name: "norand",
	Doc:  "no global math/rand source in non-test code; thread a seeded *rand.Rand",
	Run:  runNoRand,
}

func runNoRand(pass *Pass) {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		forEachStdlibSelector(pass, path, func(sel *ast.SelectorExpr) {
			if globalRandFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global math/rand source rand.%s; thread a seeded *rand.Rand", sel.Sel.Name)
			}
		})
	}
}
