package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrLoad is wrapped for package-loading and type-checking failures.
var ErrLoad = errors.New("analysis: load failed")

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path within the module (or its
	// directory path when no module root is known).
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files of the load.
	Fset *token.FileSet
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolution tables.
	Info *types.Info
}

// Loader parses and type-checks packages of a single module without any
// dependency on the go command: module-internal imports are resolved from
// source, standard-library imports through go/importer.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader prepares a loader rooted at the module containing dir. It
// walks upward from dir until it finds a go.mod; without one, the loader
// still works but treats every import as external.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrLoad, err)
	}
	l := &Loader{
		ModuleRoot: abs,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	for root := abs; ; root = filepath.Dir(root) {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			l.ModuleRoot = root
			l.ModulePath = modulePath(string(data))
			break
		}
		if filepath.Dir(root) == root {
			break
		}
	}
	l.std = importer.Default()
	return l, nil
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Load resolves the patterns to package directories and loads each. A
// pattern is either a directory (absolute, or relative to the loader's
// module root), or a directory followed by "/..." meaning the whole
// subtree; subtree expansion skips testdata, hidden and version-control
// directories, while an explicit directory pattern is always honored.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModuleRoot, dir)
		}
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("%w: no such directory %s", ErrLoad, pat)
		}
		if !recursive {
			addDir(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				addDir(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrLoad, err)
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	if l.ModulePath == "" {
		return filepath.ToSlash(rel)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks the package in dir (non-test files).
func (l *Loader) loadDir(dir string) (*Package, error) {
	ip := l.importPathFor(dir)
	if pkg, ok := l.pkgs[ip]; ok {
		return pkg, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("%w: import cycle through %s", ErrLoad, ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrLoad, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrLoad, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: no Go files in %s", ErrLoad, dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(ip, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%w: typecheck %s: %w", ErrLoad, ip, err)
	}
	pkg := &Package{
		ImportPath: ip,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[ip] = pkg
	return pkg, nil
}

// loaderImporter resolves module-internal imports from source and
// everything else through the standard importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
