package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClockFuncs are the package time functions that read or depend on
// the wall clock. Pure constructors and conversions (Duration, Unix,
// Date, Parse, ...) are fine.
var wallClockFuncs = map[string]bool{ //lint:allow noglobalstate immutable lookup table
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock flags wall-clock time access outside the simulator
// (DESIGN.md: deterministic tests, simulated time). The simulated-time
// packages internal/sim is the one place allowed to own a clock; every
// other site must take an injected clock or run on simulated time, or
// carry a //lint:allow nowallclock annotation with a reason.
var NoWallClock = &Analyzer{ //lint:allow noglobalstate analyzer singleton, assigned once and never mutated
	Name: "nowallclock",
	Doc:  "no time.Now/Sleep/After outside internal/sim without an annotation",
	Run:  runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "internal/sim") {
		return
	}
	forEachStdlibSelector(pass, "time", func(sel *ast.SelectorExpr) {
		if wallClockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "wall-clock time.%s; inject a clock or use simulated time (internal/sim)", sel.Sel.Name)
		}
	})
}

// forEachStdlibSelector calls fn for every selector expression whose base
// identifier resolves to an import of the given standard-library path.
func forEachStdlibSelector(pass *Pass, path string, fn func(*ast.SelectorExpr)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[base].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != path {
				return true
			}
			fn(sel)
			return true
		})
	}
}
