package portcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"speccat/internal/analysis"
)

// checkBoundary enforces rt-boundary on one engine package: no simulator
// imports (suppressible per import line for harness files that own the
// simulator wiring), and no type assertion from an rt interface back to
// a concrete simulator type (assert rt.Quiescer instead).
func (x *extractor) checkBoundary(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if simulatorPaths[path] {
				x.reportf(pkg, imp.Pos(), RuleBoundary,
					"engine package imports the simulator package %s; engines speak rt.Transport / rt.Timer only", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var target ast.Expr
			switch v := n.(type) {
			case *ast.TypeAssertExpr:
				target = v.Type // nil for x.(type) in a type switch
			case *ast.CaseClause:
				for _, e := range v.List {
					if x.simulatorType(pkg, e) {
						x.reportf(pkg, e.Pos(), RuleBoundary,
							"type switch reaches around the rt boundary to the concrete simulator type %s; assert an rt interface (e.g. rt.Quiescer) instead", typeDisplay(pkg, e))
					}
				}
				return true
			default:
				return true
			}
			if target != nil && x.simulatorType(pkg, target) {
				x.reportf(pkg, target.Pos(), RuleBoundary,
					"type assertion reaches around the rt boundary to the concrete simulator type %s; assert an rt interface (e.g. rt.Quiescer) instead", typeDisplay(pkg, target))
			}
			return true
		})
	}
}

// simulatorType reports whether expr names a type declared in one of the
// walled-off simulator packages. Aliases re-exported through internal/rt
// (rt.Message = simnet.Message and friends) resolve to rt's named types
// and are not simulator types.
func (x *extractor) simulatorType(pkg *analysis.Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	named := receiverNamed(t)
	if named == nil || named.Pkg() == nil {
		return false
	}
	for path := range simulatorPaths {
		if named.Pkg().Path() == path || strings.HasSuffix(named.Pkg().Path(), strings.TrimPrefix(path, "speccat/")) {
			return true
		}
	}
	return false
}

func typeDisplay(pkg *analysis.Package, expr ast.Expr) string {
	if named := receiverNamed(pkg.Info.TypeOf(expr)); named != nil {
		return named.Pkg().Name() + "." + named.Name()
	}
	return "?"
}

// checkConfine enforces rt-confine on one reachable function: the
// receiver's mutable state (and any pointer into package-local protocol
// structs) must stay on the node's event loop. Escapes are goroutines
// spawned from handler context, closures stored into package-level
// variables, and interior pointers returned from confined methods —
// unless every touched field carries a //rt:guard annotation.
func (x *extractor) checkConfine(fi *funcInfo) {
	pkg := fi.pkg
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if ref := x.confinedRefIn(fi, v.Call); ref != "" {
				x.reportf(pkg, v.Pos(), RuleConfine,
					"handler state (%s) escapes to a spawned goroutine; confined state may only be touched on the node's event loop (annotate the field //rt:guard if externally synchronized)", ref)
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					obj = pkg.Info.Defs[id]
				}
				if obj == nil || obj.Parent() != pkg.Types.Scope() {
					continue
				}
				if lit, ok := unparen(v.Rhs[i]).(*ast.FuncLit); ok {
					if ref := x.confinedRefIn(fi, lit); ref != "" {
						x.reportf(pkg, v.Pos(), RuleConfine,
							"closure capturing handler state (%s) is stored in package-level %s; confined state must not outlive its event-loop turn", ref, obj.Name())
					}
				}
			}
		case *ast.ReturnStmt:
			if fi.recv == nil || !x.confined[fi.recv] {
				return true
			}
			for _, res := range v.Results {
				x.checkReturnedInterior(fi, res)
			}
		}
		return true
	})
}

// checkReturnedInterior flags a confined method returning an interior
// pointer to its receiver's state: &recv.f, or a bare reference-typed
// field recv.f (map, slice, pointer, chan).
func (x *extractor) checkReturnedInterior(fi *funcInfo, res ast.Expr) {
	pkg := fi.pkg
	e := unparen(res)
	addr := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
		addr = true
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base, ok := unparen(sel.X).(*ast.Ident)
	if !ok || !x.isReceiverIdent(fi, base) {
		return
	}
	fobj := pkg.Info.Uses[sel.Sel]
	if fobj == nil {
		return
	}
	if _, isVar := fobj.(*types.Var); !isVar {
		return
	}
	if x.guards[fobj] != "" {
		return
	}
	if !addr {
		switch fobj.Type().Underlying().(type) {
		case *types.Map, *types.Slice, *types.Pointer, *types.Chan:
		default:
			return
		}
	}
	x.reportf(pkg, res.Pos(), RuleConfine,
		"confined method returns an interior pointer to handler state (%s.%s); return a copy, or annotate the field //rt:guard", base.Name, sel.Sel.Name)
}

// isReceiverIdent reports whether id is the function's receiver variable.
func (x *extractor) isReceiverIdent(fi *funcInfo, id *ast.Ident) bool {
	if fi.decl.Recv == nil || len(fi.decl.Recv.List) == 0 || len(fi.decl.Recv.List[0].Names) == 0 {
		return false
	}
	robj := fi.pkg.Info.Defs[fi.decl.Recv.List[0].Names[0]]
	obj := fi.pkg.Info.Uses[id]
	return robj != nil && obj == robj
}

// confinedRefIn scans a subtree for references that alias confined
// state: the receiver itself, or any variable whose type points into a
// struct declared in this engine package (the role struct or its
// satellite per-transaction records). Selectors onto //rt:guard-annotated
// fields are exempt, including everything reached through them.
func (x *extractor) confinedRefIn(fi *funcInfo, root ast.Node) string {
	pkg := fi.pkg
	found := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if fobj := pkg.Info.Uses[sel.Sel]; fobj != nil && x.guards[fobj] != "" {
				// A guarded field is safe off-loop by annotation; do not
				// descend into its base.
				return false
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if x.isReceiverIdent(fi, id) {
			found = id.Name
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		if p, ok := v.Type().(*types.Pointer); ok {
			if named := receiverNamed(p.Elem()); named != nil && named.Pkg() == pkg.Types {
				found = id.Name
				return false
			}
		}
		return true
	}
	ast.Inspect(root, walk)
	return found
}

// checkSendOrder enforces rt-sendorder on one reachable function: a send
// whose kind carries //dur:requires advertises a durable protocol step,
// so the in-memory state transition it announces must precede it. The
// check is per statement list: a requiring send is flagged when control
// can flow past its statement and a later statement in the same list
// performs the first state transition (directly, or via a call to a
// same-load function that assigns state).
func (x *extractor) checkSendOrder(fi *funcInfo) {
	sends := x.requiringSends(fi)
	if len(sends) == 0 {
		return
	}
	transitions := x.transitionPositions(fi)
	if len(transitions) == 0 {
		return
	}
	reported := map[token.Pos]bool{}
	x.walkBlocks(fi.decl.Body, func(list []ast.Stmt) {
		for i, si := range list {
			if isCaseClause(si) {
				// A switch body's statement list is its case clauses; the
				// cases are mutually exclusive alternatives, not sequential
				// statements, and each case body is walked as its own list.
				continue
			}
			for pos, kind := range sends {
				if !within(si, pos) || reported[pos] || !escapes(si, pos) {
					continue
				}
				for _, sj := range list[i+1:] {
					if containsAny(sj, transitions) {
						reported[pos] = true
						x.reportf(fi.pkg, pos, RuleSendOrder,
							"send of %s races ahead of the in-memory state transition it advertises (transition at %s); transition, persist, then send", kind, x.shortPos(fi.pkg, firstWithin(sj, transitions)))
						break
					}
					if _, isRet := sj.(*ast.ReturnStmt); isRet {
						break
					}
				}
			}
		}
	})
}

// requiringSends maps the positions of this function's requiring send
// call sites to the kind-constant names they send.
func (x *extractor) requiringSends(fi *funcInfo) map[token.Pos]string {
	pkg := fi.pkg
	varKinds := x.collectVarKinds(fi)
	out := map[token.Pos]string{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		// A send inside a closure (an After callback, typically) does not
		// execute at the statement that creates the closure; it is ordered
		// by when the runtime fires it, not where it is written.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pkg, call.Fun)
		if obj == nil {
			return true
		}
		idx := -1
		if i, isSend := transportSendKindIdx(obj); isSend {
			idx = i
		} else if ci, isWrap := x.funcs[obj]; isWrap && ci.sendWrapKindIdx >= 0 {
			idx = ci.sendWrapKindIdx
		}
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		for _, kobj := range x.kindObjs(fi, varKinds, call.Args[idx]) {
			if _, requiring := x.requires[kobj]; requiring {
				out[call.Pos()] = x.kindName[kobj]
				break
			}
		}
		return true
	})
	return out
}

// kindObjs resolves a send's kind expression to the constant(s) it may
// hold: a constant directly, or every constant assigned to a local
// variable (flow-insensitively). Parameters resolve to nothing — the
// wrapper's call sites carry the actual kind.
func (x *extractor) kindObjs(fi *funcInfo, varKinds map[types.Object][]types.Object, e ast.Expr) []types.Object {
	pkg := fi.pkg
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[v]
		if obj == nil {
			return nil
		}
		if _, isParam := fi.paramIdx[obj]; isParam {
			return nil
		}
		if _, isConst := obj.(*types.Const); isConst {
			return []types.Object{obj}
		}
		return varKinds[obj]
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[v.Sel].(*types.Const); ok {
			return []types.Object{obj}
		}
	}
	return nil
}

// collectVarKinds records every string constant assigned to a local
// variable in this function, so sends of variable kinds are checked
// against everything the variable may hold.
func (x *extractor) collectVarKinds(fi *funcInfo) map[types.Object][]types.Object {
	pkg := fi.pkg
	out := map[types.Object][]types.Object{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lobj := pkg.Info.Defs[id]
		if lobj == nil {
			lobj = pkg.Info.Uses[id]
		}
		if lobj == nil {
			return
		}
		var cobj types.Object
		switch v := unparen(rhs).(type) {
		case *ast.Ident:
			cobj = pkg.Info.Uses[v]
		case *ast.SelectorExpr:
			cobj = pkg.Info.Uses[v.Sel]
		}
		if c, ok := cobj.(*types.Const); ok && c.Val().Kind() == constant.String {
			out[lobj] = append(out[lobj], c)
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					record(v.Lhs[i], v.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) == len(v.Values) {
				for i := range v.Names {
					record(v.Names[i], v.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// transitionPositions collects the positions of this function's in-memory
// state transitions: direct assignments to state-typed fields, plus calls
// to same-load functions that directly assign state (one level of call
// summaries, enough for the decide()/commit() helpers of the engines).
func (x *extractor) transitionPositions(fi *funcInfo) map[token.Pos]bool {
	pkg := fi.pkg
	out := map[token.Pos]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A transition inside a closure happens when the closure runs
			// (on the event loop, later), not at the statement installing
			// it — it must not order against sends in the enclosing list.
			return false
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if x.isStateField(pkg, lhs) {
					out[v.Pos()] = true
				}
			}
		case *ast.CallExpr:
			if obj := calleeObj(pkg, v.Fun); obj != nil {
				if ci, ok := x.funcs[obj]; ok && ci.assignsState {
					out[v.Pos()] = true
				}
			}
		}
		return true
	})
	return out
}

// walkBlocks invokes fn on every statement list of the function body.
func (x *extractor) walkBlocks(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			fn(v.List)
		case *ast.CaseClause:
			fn(v.Body)
		case *ast.CommClause:
			fn(v.Body)
		}
		return true
	})
}

// isCaseClause reports whether s is a switch or select clause.
func isCaseClause(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}

// within reports whether pos falls inside the statement's extent.
func within(s ast.Stmt, pos token.Pos) bool {
	return s.Pos() <= pos && pos < s.End()
}

// containsAny reports whether any of the positions fall inside the
// statement.
func containsAny(s ast.Stmt, positions map[token.Pos]bool) bool {
	for p := range positions {
		if within(s, p) {
			return true
		}
	}
	return false
}

// firstWithin returns the earliest of the positions inside the statement.
func firstWithin(s ast.Stmt, positions map[token.Pos]bool) token.Pos {
	best := token.NoPos
	for p := range positions {
		if within(s, p) && (best == token.NoPos || p < best) {
			best = p
		}
	}
	return best
}

// escapes reports whether control can flow past stmt after executing the
// send at pos: walking up from the innermost statement list containing
// the send, a trailing return terminates the path (so the send cannot
// race a transition in an outer list).
func escapes(stmt ast.Stmt, pos token.Pos) bool {
	terminated := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var list []ast.Stmt
		switch v := n.(type) {
		case *ast.BlockStmt:
			list = v.List
		case *ast.CaseClause:
			list = v.Body
		case *ast.CommClause:
			list = v.Body
		default:
			return true
		}
		after := false
		for _, s := range list {
			if within(s, pos) {
				after = true
				continue
			}
			if !after {
				continue
			}
			if _, isRet := s.(*ast.ReturnStmt); isRet {
				terminated = true
				return false
			}
		}
		return true
	}
	ast.Inspect(stmt, visit)
	return !terminated
}

// shortPos renders a position as file:line relative to the package dir.
func (x *extractor) shortPos(pkg *analysis.Package, pos token.Pos) string {
	if pos == token.NoPos {
		return "?"
	}
	p := pkg.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
