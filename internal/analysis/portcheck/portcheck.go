// Package portcheck is the fifth static-analysis layer of speccatlint: a
// runtime-boundary and state-confinement analysis that mechanically gates
// the port of the protocol engines off the deterministic simulator. The
// engines were written against internal/sim + internal/simnet, where a
// single-threaded scheduler makes every interleaving safe by construction;
// the rt runtime boundary (internal/rt) re-hosts the same handler code on
// real goroutines (internal/rt/live). portcheck proves the two properties
// that make that re-hosting sound:
//
//   - the engines speak only the rt interfaces (never the simulator's
//     concrete types), so swapping the runtime cannot change behaviour;
//   - each handler's mutable state stays confined to its node's event
//     loop, so the per-node serialization the rt contract guarantees is
//     the only synchronization the engines need.
//
// Scope: packages whose package doc carries //rt:engine. Within them the
// confined role types are the receiver types of //fsm:handler and
// //dur:handler methods, and the analysis walks the static call graph
// rooted at those handlers.
//
// Annotation grammar:
//
//	//rt:engine                  in the package doc comment: this package
//	                             is a protocol engine; portcheck applies
//	//rt:guard <kind> <reason>   trailing a struct field: the field is
//	                             safe to touch off the event loop because
//	                             of <kind> (mutex | channel | loop);
//	                             reason mandatory
//
// Rules reported:
//
//	rt-boundary   an //rt:engine package imports internal/sim or
//	              internal/simnet (suppressible per import line for
//	              simulator-harness files), or type-asserts an rt
//	              interface value back to a concrete simulator type
//	              (never suppressible in spirit: assert rt.Quiescer
//	              instead)
//	rt-confine    confined handler state escapes its event loop: a
//	              reachable function spawns a goroutine referencing the
//	              receiver or protocol state, stores a closure capturing
//	              it into a package-level variable, or returns an
//	              interior pointer (a reference-typed field) of a
//	              confined struct — unless every touched field carries
//	              //rt:guard
//	rt-sendorder  a send whose kind carries //dur:requires (it advertises
//	              a durable protocol step) appears before the in-memory
//	              state transition in the same function: on a real
//	              runtime the receiver could act on the message and
//	              re-enter this node before the transition lands.
//	              durcheck orders sends against stable storage; this rule
//	              orders them against the volatile state machine
//	rt-extract    malformed or unattached //rt:* annotations
//
// Findings are suppressed with the repository-wide convention
// //lint:allow <rule> <reason> on the offending or preceding line;
// reasonless allows are reported by the base design-rule layer, not
// re-reported here.
//
// The dynamic halves of this layer live elsewhere: experiment E16 runs
// the ported tpc stack on the live adapter and replays the recorded
// trace deterministically, and internal/rt/live's race probe seeds the
// exact goroutine-escape mutation the portbad fixture pins and shows the
// race detector reports it at runtime.
package portcheck

import (
	"go/token"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// Rule names reported by this layer.
const (
	RuleBoundary  = "rt-boundary"
	RuleConfine   = "rt-confine"
	RuleSendOrder = "rt-sendorder"
	RuleExtract   = "rt-extract"
)

// guardKinds are the accepted //rt:guard mechanisms.
var guardKinds = map[string]bool{"mutex": true, "channel": true, "loop": true} //lint:allow noglobalstate immutable lookup table

// Report describes what the analysis covered, so tests can pin coverage
// (a clean run that saw zero engines would be vacuous, not clean).
type Report struct {
	// Engines are the //rt:engine package import paths, sorted.
	Engines []string
	// Confined are the confined role types as "pkg.Type", sorted.
	Confined []string
	// Roots are the handler analysis roots as "Type.Func", sorted.
	Roots []string
	// Analyzed counts the functions reachable from the roots.
	Analyzed int
	// Guards maps //rt:guard-annotated fields ("Type.field") to their
	// guard kind.
	Guards map[string]string
}

// directive is one parsed //rt:<verb> annotation.
type directive struct {
	verb string
	args []string
	rest string
	pos  token.Position
}

// parseDirectives extracts the rt: directives of one comment. The comment
// must begin with a directive, but the leading directive may belong to
// another layer (//fsm:..., //dur:...) with //rt: segments appended; each
// layer reads its own segments and skips the others'.
func parseDirectives(text string, pos token.Position) []directive {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "rt:") && !strings.HasPrefix(body, "fsm:") && !strings.HasPrefix(body, "dur:") {
		return nil
	}
	var out []directive
	for _, seg := range strings.Split(body, "//") {
		seg = strings.TrimSpace(seg)
		rest, ok := strings.CutPrefix(seg, "rt:")
		if !ok {
			continue
		}
		verb, args, _ := strings.Cut(rest, " ")
		args = strings.TrimSpace(args)
		out = append(out, directive{
			verb: verb,
			args: strings.Fields(args),
			rest: args,
			pos:  pos,
		})
	}
	return out
}

// Run analyzes the loaded packages and returns the coverage report and
// the surviving diagnostics (reasoned //lint:allow suppressions applied),
// sorted by position.
func Run(pkgs []*analysis.Package) (*Report, []analysis.Diagnostic) {
	x := newExtractor(pkgs)
	rep := x.extract()
	diags := x.suppress(x.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep, diags
}

// suppress drops diagnostics covered by a reasoned //lint:allow for the
// same rule on the same or preceding line. Malformed allows (missing rule
// or reason) are the base design-rule layer's finding, not re-reported
// here; they simply never suppress.
func (x *extractor) suppress(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if lines := x.allowed[d.Pos.Filename][d.Rule]; lines[d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
