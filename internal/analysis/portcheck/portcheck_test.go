package portcheck

import (
	"strings"
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// loadRepo loads this repository's internal tree.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoIsPortClean is the acceptance criterion: the repository's own
// engines respect the rt runtime boundary and keep their handler state
// confined, and the analysis demonstrably covered them (engines, roles,
// roots and a real call graph — a clean run over nothing would prove
// nothing).
func TestRepoIsPortClean(t *testing.T) {
	rep, diags := Run(loadRepo(t))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	engines := strings.Join(rep.Engines, " ")
	for _, want := range []string{
		"internal/tpc", "internal/txn", "internal/kvstore",
		"internal/election", "internal/broadcast", "internal/consensus",
		"internal/detector", "internal/recovery", "internal/checkpoint",
	} {
		if !strings.Contains(engines, want) {
			t.Errorf("engine packages missing %s (got %s)", want, engines)
		}
	}
	confined := strings.Join(rep.Confined, " ")
	for _, want := range []string{
		"tpc.Coordinator", "tpc.Cohort", "txn.Master", "txn.Site",
		"election.Node", "broadcast.Endpoint", "consensus.Node",
		"detector.Detector", "checkpoint.Node",
	} {
		if !strings.Contains(confined, want) {
			t.Errorf("confined role types missing %s (got %s)", want, confined)
		}
	}
	roots := strings.Join(rep.Roots, " ")
	for _, want := range []string{"Coordinator.HandleMessage", "Cohort.HandleMessage", "Master.handle"} {
		if !strings.Contains(roots, want) {
			t.Errorf("analysis roots missing %s (got %s)", want, roots)
		}
	}
	if rep.Analyzed < 30 {
		t.Errorf("confinement analysis covered only %d functions; coverage collapsed", rep.Analyzed)
	}
}

// TestPortCleanFixture pins that a well-ported engine produces zero
// findings: rt-only imports, event-loop timers, a guarded field touched
// from a goroutine, transition-then-persist-then-send ordering, and a
// reasoned rt-boundary suppression on a harness import.
func TestPortCleanFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "portclean")
	rep, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if len(rep.Engines) != 1 {
		t.Errorf("Engines = %v, want exactly the fixture package", rep.Engines)
	}
	if len(rep.Roots) == 0 {
		t.Error("no analysis roots extracted; fixture coverage collapsed")
	}
	if rep.Guards["Node.stats"] != "mutex" {
		t.Errorf("Guards = %v, want Node.stats guarded by mutex", rep.Guards)
	}
}

// TestPortBadFixture pins one finding per mutation class: simulator
// import, type assertion to a simulator concretion, goroutine field
// escape, stored-closure escape, returned interior pointer,
// send-before-transition, and malformed/unattached annotations.
func TestPortBadFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "portbad")
	_, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)

	// Each mutation class yields exactly one finding.
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	if counts[RuleBoundary] != 2 {
		t.Errorf("rt-boundary findings = %d, want 2 (one import, one type assertion)", counts[RuleBoundary])
	}
	if counts[RuleConfine] != 3 {
		t.Errorf("rt-confine findings = %d, want 3 (goroutine escape, stored closure, interior pointer)", counts[RuleConfine])
	}
	if counts[RuleSendOrder] != 1 {
		t.Errorf("rt-sendorder findings = %d, want 1 (send hoisted above the transition)", counts[RuleSendOrder])
	}
	if counts[RuleExtract] != 3 {
		t.Errorf("rt-extract findings = %d, want 3 (unknown verb, misplaced engine, malformed guard)", counts[RuleExtract])
	}
}
