package portcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// simulatorPaths are the packages the rt boundary walls off: engines must
// reach time, randomness and the network only through internal/rt.
var simulatorPaths = map[string]bool{ //lint:allow noglobalstate immutable lookup table
	"speccat/internal/sim":    true,
	"speccat/internal/simnet": true,
}

// extractor accumulates the cross-package facts of one Run.
type extractor struct {
	pkgs  []*analysis.Package
	rep   *Report
	diags []analysis.Diagnostic

	// allowed: file -> rule -> lines covered by a reasoned //lint:allow.
	allowed map[string]map[string]map[int]bool
	// engines are the //rt:engine packages.
	engines map[*analysis.Package]bool
	// funcs indexes every function declaration of the load.
	funcs map[types.Object]*funcInfo
	// confined are the role types (receivers of handler roots).
	confined map[*types.TypeName]bool
	// guards maps //rt:guard-annotated field objects to their kind.
	guards map[types.Object]string
	// requires maps //dur:requires-annotated kind constants to classes.
	requires map[types.Object]string
	// kindName maps those constants to their declared names.
	kindName map[types.Object]string
	// stateTypes are the named types whose constants carry //fsm:state:
	// assigning a field of such a type is an in-memory state transition.
	stateTypes map[*types.TypeName]bool
}

// funcInfo is the per-function view.
type funcInfo struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
	obj  types.Object
	name string
	// recv is the receiver's type name, nil for plain functions.
	recv *types.TypeName
	// isRoot marks handler analysis roots (//fsm:handler, //dur:handler).
	isRoot bool
	// paramIdx maps parameter objects to their flat index.
	paramIdx map[types.Object]int
	// sendWrapKindIdx is the parameter index this function forwards as a
	// send kind, or -1.
	sendWrapKindIdx int
	// assignsState reports a direct assignment to a state-typed field.
	assignsState bool
	// calls are the same-load callees, for reachability and summaries.
	calls []types.Object
	// reachable marks membership in the handler call graph.
	reachable bool
}

func newExtractor(pkgs []*analysis.Package) *extractor {
	return &extractor{
		pkgs:       pkgs,
		rep:        &Report{Guards: map[string]string{}},
		allowed:    map[string]map[string]map[int]bool{},
		engines:    map[*analysis.Package]bool{},
		funcs:      map[types.Object]*funcInfo{},
		confined:   map[*types.TypeName]bool{},
		guards:     map[types.Object]string{},
		requires:   map[types.Object]string{},
		kindName:   map[types.Object]string{},
		stateTypes: map[*types.TypeName]bool{},
	}
}

func (x *extractor) reportf(pkg *analysis.Package, pos token.Pos, rule, format string, args ...any) {
	x.diags = append(x.diags, analysis.Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// extract runs every pass and assembles the report.
func (x *extractor) extract() *Report {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanAllows(pkg, f)
		}
		x.scanDirectives(pkg)
	}
	for _, pkg := range x.pkgs {
		if !x.engines[pkg] {
			continue
		}
		for _, f := range pkg.Files {
			x.scanConsts(pkg, f)
			x.scanFuncs(pkg, f)
		}
	}
	for _, fi := range x.funcs {
		x.computeFuncFacts(fi)
	}
	x.markConfined()
	x.markReachable()
	for _, pkg := range x.pkgs {
		if x.engines[pkg] {
			x.checkBoundary(pkg)
		}
	}
	for _, fi := range x.funcs {
		if !fi.reachable {
			continue
		}
		x.checkConfine(fi)
		x.checkSendOrder(fi)
	}
	sort.Strings(x.rep.Engines)
	sort.Strings(x.rep.Confined)
	sort.Strings(x.rep.Roots)
	return x.rep
}

// scanAllows collects the reasoned //lint:allow directives of one file.
// Malformed directives never suppress; reporting them is the base
// design-rule layer's job.
func (x *extractor) scanAllows(pkg *analysis.Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:allow")
			if !ok {
				continue
			}
			rule, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if rule == "" || strings.TrimSpace(reason) == "" {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			byRule := x.allowed[pos.Filename]
			if byRule == nil {
				byRule = map[string]map[int]bool{}
				x.allowed[pos.Filename] = byRule
			}
			lines := byRule[rule]
			if lines == nil {
				lines = map[int]bool{}
				byRule[rule] = lines
			}
			lines[pos.Line] = true
			lines[pos.Line+1] = true
		}
	}
}

// scanDirectives parses every //rt:* directive of one package, binds the
// well-placed ones (//rt:engine in the package doc, //rt:guard trailing a
// struct field) and reports the rest as rt-extract findings.
func (x *extractor) scanDirectives(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		// Positions at which each directive verb may legally appear.
		docPos := map[token.Pos]bool{}
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				docPos[c.Pos()] = true
			}
		}
		fieldAt := map[token.Pos]types.Object{}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue
				}
				obj := pkg.Info.Defs[field.Names[0]]
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						fieldAt[c.Pos()] = obj
					}
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, d := range parseDirectives(c.Text, pos) {
					x.bindDirective(pkg, f, c, d, docPos, fieldAt)
				}
			}
		}
	}
}

func (x *extractor) bindDirective(pkg *analysis.Package, f *ast.File, c *ast.Comment, d directive, docPos map[token.Pos]bool, fieldAt map[token.Pos]types.Object) {
	switch d.verb {
	case "engine":
		if !docPos[c.Pos()] {
			x.reportf(pkg, c.Pos(), RuleExtract, "//rt:engine must appear in the package doc comment")
			return
		}
		if len(d.args) != 0 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //rt:engine: takes no arguments, got %q", d.rest)
			return
		}
		if !x.engines[pkg] {
			x.engines[pkg] = true
			x.rep.Engines = append(x.rep.Engines, pkg.ImportPath)
		}
	case "guard":
		obj, attached := fieldAt[c.Pos()]
		if !attached {
			x.reportf(pkg, c.Pos(), RuleExtract, "//rt:guard must trail a struct field declaration")
			return
		}
		if len(d.args) < 2 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //rt:guard: want //rt:guard <mutex|channel|loop> <reason>")
			return
		}
		if !guardKinds[d.args[0]] {
			x.reportf(pkg, c.Pos(), RuleExtract, "unknown //rt:guard kind %q: want mutex, channel or loop", d.args[0])
			return
		}
		if obj != nil {
			x.guards[obj] = d.args[0]
			x.rep.Guards[guardDisplayName(pkg, obj)] = d.args[0]
		}
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "unknown directive //rt:%s", d.verb)
	}
}

// guardDisplayName renders a guarded field as "Type.field" (falling back
// to the bare field name for fields of unnamed types).
func guardDisplayName(pkg *analysis.Package, obj types.Object) string {
	// The owning struct is found by scanning the package scope for a named
	// type whose struct fields include obj.
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == obj {
				return tn.Name() + "." + obj.Name()
			}
		}
	}
	return obj.Name()
}

// scanConsts binds //dur:requires and //fsm:state trailing annotations to
// their constants: the former mark the kinds whose sends advertise a
// durable protocol step, the latter identify the state-machine types.
func (x *extractor) scanConsts(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || vs.Comment == nil || len(vs.Names) == 0 {
				continue
			}
			text := vs.Comment.List[0].Text
			obj := pkg.Info.Defs[vs.Names[0]]
			if obj == nil {
				continue
			}
			if class, ok := trailingDirectiveArg(text, "dur:requires"); ok && class != "" {
				x.requires[obj] = class
				x.kindName[obj] = obj.Name()
			}
			if _, ok := trailingDirectiveArg(text, "fsm:state"); ok {
				if named, ok := obj.Type().(*types.Named); ok {
					x.stateTypes[named.Obj()] = true
				}
			}
		}
	}
}

// trailingDirectiveArg finds a "//<verb> <args>" segment in a trailing
// comment shared between layers and returns its first argument.
func trailingDirectiveArg(text, verb string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	for _, seg := range strings.Split(body, "//") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(seg), verb)
		if !ok || (rest != "" && rest[0] != ' ') {
			continue
		}
		args := strings.Fields(rest)
		if len(args) == 0 {
			return "", true
		}
		return args[0], true
	}
	return "", false
}

// scanFuncs indexes the function declarations of one engine file and
// marks the handler analysis roots.
func (x *extractor) scanFuncs(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		obj := pkg.Info.Defs[fn.Name]
		if obj == nil {
			continue
		}
		fi := &funcInfo{
			pkg:             pkg,
			decl:            fn,
			obj:             obj,
			name:            funcDisplayName(fn),
			sendWrapKindIdx: -1,
			paramIdx:        map[types.Object]int{},
		}
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			fi.recv = receiverNamed(pkg.Info.TypeOf(fn.Recv.List[0].Type))
		}
		idx := 0
		if fn.Type.Params != nil {
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					if po := pkg.Info.Defs[name]; po != nil {
						fi.paramIdx[po] = idx
					}
					idx++
				}
			}
		}
		if fn.Doc != nil {
			for _, c := range fn.Doc.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(body, "fsm:handler") || strings.HasPrefix(body, "dur:handler") {
					fi.isRoot = true
				}
			}
		}
		x.funcs[obj] = fi
		if fi.isRoot {
			x.rep.Roots = append(x.rep.Roots, fi.name)
		}
	}
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// receiverNamed unwraps a (possibly pointer) type to its type name.
func receiverNamed(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// computeFuncFacts fills the per-function classification: send-wrapper
// kind forwarding, direct state-transition assignments, and the static
// callee list.
func (x *extractor) computeFuncFacts(fi *funcInfo) {
	pkg := fi.pkg
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pkg, v.Fun)
			if obj == nil {
				return true
			}
			if idx, isSend := transportSendKindIdx(obj); isSend && idx < len(v.Args) {
				if id, ok := unparen(v.Args[idx]).(*ast.Ident); ok {
					if po := pkg.Info.Uses[id]; po != nil {
						if pidx, isParam := fi.paramIdx[po]; isParam {
							fi.sendWrapKindIdx = pidx
						}
					}
				}
			}
			fi.calls = append(fi.calls, obj)
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if x.isStateField(pkg, lhs) {
					fi.assignsState = true
				}
			}
		}
		return true
	})
}

// isStateField reports whether expr is a selector onto a field of a
// state-machine type (one whose constants carry //fsm:state).
func (x *extractor) isStateField(pkg *analysis.Package, expr ast.Expr) bool {
	sel, ok := unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	return ok && x.stateTypes[named.Obj()]
}

// calleeObj resolves a call expression's static callee.
func calleeObj(pkg *analysis.Package, fun ast.Expr) types.Object {
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// transportSendKindIdx reports whether obj is a runtime-boundary send
// primitive and, if so, which argument carries the message kind. The
// simulator's concrete methods are included so suppressed harness files
// inside engine packages are still checked for send ordering.
func transportSendKindIdx(obj types.Object) (int, bool) {
	if isMethodOn(obj, "internal/rt", "Transport", "Send") ||
		isMethodOn(obj, "internal/simnet", "Network", "Send") {
		return 2, true
	}
	if isMethodOn(obj, "internal/rt", "Transport", "Broadcast") ||
		isMethodOn(obj, "internal/simnet", "Network", "Broadcast") {
		return 1, true
	}
	return 0, false
}

// isMethodOn reports whether obj is the named method on pkgSuffix.typeName.
func isMethodOn(obj types.Object, pkgSuffix, typeName string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := receiverNamed(sig.Recv().Type())
	if named == nil || named.Name() != typeName || named.Pkg() == nil || !strings.HasSuffix(named.Pkg().Path(), pkgSuffix) {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// markConfined records the receiver types of the handler roots.
func (x *extractor) markConfined() {
	for _, fi := range x.funcs {
		if fi.isRoot && fi.recv != nil {
			if !x.confined[fi.recv] {
				x.confined[fi.recv] = true
				x.rep.Confined = append(x.rep.Confined, fi.pkg.Types.Name()+"."+fi.recv.Name())
			}
		}
	}
}

// markReachable walks the static call graph from the handler roots; only
// reachable functions are subject to confinement and send-order checks
// (constructor and harness wiring runs before the event loops exist).
func (x *extractor) markReachable() {
	var queue []*funcInfo
	for _, fi := range x.funcs {
		if fi.isRoot {
			fi.reachable = true
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		x.rep.Analyzed++
		for _, callee := range fi.calls {
			if ci, ok := x.funcs[callee]; ok && !ci.reachable {
				ci.reachable = true
				queue = append(queue, ci)
			}
		}
	}
}
