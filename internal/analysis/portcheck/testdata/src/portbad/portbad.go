// Package portbad seeds one violation of every portcheck rule class: a
// bare simulator import, a type assertion reaching around the rt
// boundary, the three confinement escapes (spawned goroutine, stored
// closure, returned interior pointer), a requiring send hoisted above
// the state transition it advertises, and the malformed-annotation
// variants of rt-extract.
//
//rt:engine
package portbad

import (
	"speccat/internal/rt"
	"speccat/internal/simnet" // want `rt-boundary: engine package imports the simulator package speccat/internal/simnet`
)

// State is the toy engine's state machine.
type State string

// States of the toy engine.
const (
	StateIdle State = "idle" //fsm:state
	StateDone State = "done" //fsm:state
)

// Wire kinds of the toy engine.
const (
	kindGo     = "bad.go"
	kindCommit = "bad.commit" //dur:requires decision
)

//rt:bogus an unknown verb // want `rt-extract: unknown directive .*rt:bogus`

// Node is the toy engine's confined role struct.
type Node struct {
	net   rt.Transport
	id    rt.NodeID
	state State
	count int
	// cache is per-node volatile bookkeeping.
	cache map[string]int //rt:guard mutex // want `rt-extract: malformed .*rt:guard: want`
}

//rt:engine // want `rt-extract: .*rt:engine must appear in the package doc comment`

// leaked is the package-level home of the stored-closure escape.
var leaked func()

// send forwards to the transport.
func (n *Node) send(to rt.NodeID, kind string, payload any) {
	_ = n.net.Send(n.id, to, kind, payload)
}

// HandleMessage dispatches the toy engine.
//
//fsm:handler toy node
func (n *Node) HandleMessage(m rt.Message) bool {
	switch m.Kind {
	case kindGo:
		// The send advertises the decision before the in-memory
		// transition lands: on a real runtime the receiver can act on it
		// and re-enter this node in the stale state.
		n.send(m.From, kindCommit, nil) // want `rt-sendorder: send of kindCommit races ahead of the in-memory state transition`
		n.state = StateDone
		n.offload()
		n.stash()
		_ = n.snapshot()
		n.drain()
	}
	return true
}

// offload ships the counter update to a goroutine — the exact mutation
// the live race probe seeds, and a data race once real goroutines
// replace the simulator's single thread.
func (n *Node) offload() {
	go func() { // want `rt-confine: handler state \(n\) escapes to a spawned goroutine`
		n.count++
	}()
}

// stash parks a closure over the receiver in a package-level variable,
// letting confined state outlive its event-loop turn.
func (n *Node) stash() {
	leaked = func() { n.count++ } // want `rt-confine: closure capturing handler state \(n\) is stored in package-level leaked`
}

// snapshot hands out the live map instead of a copy.
func (n *Node) snapshot() map[string]int {
	return n.cache // want `rt-confine: confined method returns an interior pointer to handler state \(n\.cache\)`
}

// drain reaches around the rt boundary for the simulator's concrete
// network to drive it synchronously.
func (n *Node) drain() {
	if sn, ok := n.net.(*simnet.Network); ok { // want `rt-boundary: type assertion reaches around the rt boundary to the concrete simulator type simnet\.Network`
		sn.RunToQuiescence()
	}
}
