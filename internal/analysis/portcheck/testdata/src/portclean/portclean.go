// Package portclean is a zero-finding portcheck fixture: a miniature
// engine exercising every annotation and every no-false-positive case —
// rt-only imports with a reasoned //lint:allow on the harness's simulator
// import, an event-loop timer closure capturing the receiver (safe: After
// callbacks run on the node's loop), a //rt:guard-annotated metrics pair
// touched from a spawned goroutine, a send wrapper resolved to its call
// sites, a branch that sends-then-returns before an unrelated later
// transition, and transition-persist-send ordering on the commit path.
//
//rt:engine
package portclean

import (
	"sync"

	"speccat/internal/rt"
	"speccat/internal/simnet" //lint:allow rt-boundary harness constructor owns the simulator wiring
)

// State is the toy engine's state machine.
type State string

// States of the toy engine.
const (
	StateIdle State = "idle" //fsm:state
	StateWait State = "wait" //fsm:state
	StateDone State = "done" //fsm:state
)

// Wire kinds of the toy engine.
const (
	kindPing   = "clean.ping"
	kindVote   = "clean.vote"   //dur:requires state
	kindCommit = "clean.commit" //dur:requires decision
	kindAbort  = "clean.abort"  //dur:requires decision
)

// Node is the toy engine's confined role struct.
type Node struct {
	net   rt.Transport
	id    rt.NodeID
	state State
	timer rt.Timer
	mu    sync.Mutex //rt:guard mutex the mutex itself is the off-loop synchronization point
	stats int        //rt:guard mutex metrics counter scraped off-loop under mu
}

// New builds a node on any rt runtime.
func New(net rt.Transport, id rt.NodeID) *Node {
	return &Node{net: net, id: id, state: StateIdle}
}

// NewOnSim is the simulator harness constructor; the suppressed import
// above exists for its signature only — the engine proper sees rt.Transport.
func NewOnSim(net *simnet.Network, id rt.NodeID) *Node {
	return New(net, id)
}

// send forwards to the transport; portcheck resolves its call sites
// against the forwarded kind parameter.
func (n *Node) send(to rt.NodeID, kind string, payload any) {
	_ = n.net.Send(n.id, to, kind, payload)
}

// HandleMessage dispatches the toy engine.
//
//fsm:handler toy node
func (n *Node) HandleMessage(m rt.Message) bool {
	switch m.Kind {
	case kindPing:
		if m.Payload == nil {
			// Reject-and-return: this requiring send precedes the commit
			// transition below in source order, but the trailing return
			// terminates the path, so rt-sendorder stays quiet.
			n.send(m.From, kindAbort, nil)
			return true
		}
		n.state = StateWait
		n.send(m.From, kindVote, nil)
		n.timer = n.net.After(n.id, n.net.Delta(), func() { n.onTimeout() })
	case kindVote:
		kind := kindCommit
		if m.Payload == nil {
			kind = kindAbort
		}
		n.state = StateDone
		n.bump()
		for _, p := range n.net.Nodes() {
			n.send(p, kind, nil)
		}
	}
	return true
}

// onTimeout runs on the node's event loop (the rt.Transport contract for
// After callbacks), so touching n.state here is confined.
func (n *Node) onTimeout() {
	if n.state == StateWait {
		n.state = StateDone
		n.send(n.id, kindAbort, nil)
	}
}

// bump publishes a metrics tick to an off-loop scraper goroutine; both
// fields it touches carry //rt:guard mutex, which is what makes the
// spawned goroutine legal.
func (n *Node) bump() {
	go func() {
		n.mu.Lock()
		n.stats++
		n.mu.Unlock()
	}()
}

// Stats is the off-loop scraper's read face: the guard annotation on
// stats exempts it from the interior-pointer rule too.
func (n *Node) Stats() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
