package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// expectation is one `// want `-style annotation in a fixture file.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var chunkRE = regexp.MustCompile("`([^`]+)`")

// collectExpectations scans a fixture package directory for want comments.
func collectExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var out []expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			chunks := chunkRE.FindAllStringSubmatch(m[1], -1)
			if len(chunks) == 0 {
				t.Fatalf("%s:%d: malformed want comment (use backquoted regexps)", path, i+1)
			}
			for _, c := range chunks {
				re, err := regexp.Compile(c[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				out = append(out, expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return out
}

// runFixture loads one fixture package and runs all analyzers over it.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkgs, Analyzers())
}

// checkFixture asserts the diagnostics match the want comments exactly.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	dir, _ := filepath.Abs(filepath.Join("testdata", "src", name))
	diags := runFixture(t, name)
	wants := collectExpectations(t, dir)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Rule + ": " + d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestNoPanicFixture(t *testing.T)       { checkFixture(t, "panicfix") }
func TestNoWallClockFixture(t *testing.T)   { checkFixture(t, "wallclock") }
func TestNoRandFixture(t *testing.T)        { checkFixture(t, "randfix") }
func TestNoGlobalStateFixture(t *testing.T) { checkFixture(t, "globalstate") }
func TestErrWrapFixture(t *testing.T)       { checkFixture(t, "errwrapfix") }

// TestFixturesHaveFindings guards the acceptance criterion that the
// injected-violation fixtures actually trip the linter (non-zero exit).
func TestFixturesHaveFindings(t *testing.T) {
	for _, name := range []string{"panicfix", "wallclock", "randfix", "globalstate", "errwrapfix"} {
		if len(runFixture(t, name)) == 0 {
			t.Errorf("fixture %s produced no diagnostics", name)
		}
	}
}

// TestSuppressionRequiresReason checks that a bare //lint:allow is
// reported as malformed rather than silently honored.
func TestSuppressionRequiresReason(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

import "time"

// T reads the clock with a reasonless suppression.
func T() time.Time {
	return time.Now() //lint:allow nowallclock
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := fmt.Sprintf("%v", rules)
	if !strings.Contains(got, "lint-allow") {
		t.Errorf("expected a lint-allow malformed-suppression finding, got %v", diags)
	}
	// The reasonless directive must not suppress the underlying finding.
	if !strings.Contains(got, "nowallclock") {
		t.Errorf("expected the nowallclock finding to survive, got %v", diags)
	}
}

// TestModuleSelfLoad loads this repository's own module tree, proving the
// loader handles module-internal imports.
func TestModuleSelfLoad(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "speccat" {
		t.Fatalf("module path = %q, want speccat", l.ModulePath)
	}
	pkgs, err := l.Load([]string{"./internal/core/logic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Name() != "logic" {
		t.Fatalf("unexpected load result: %+v", pkgs)
	}
}
