package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// runFixture loads one fixture package and runs all analyzers over it.
func runFixture(t *testing.T, name string) []analysis.Diagnostic {
	t.Helper()
	dir := analysistest.FixtureDir(t, name)
	return analysis.Run(analysistest.Load(t, dir), analysis.Analyzers())
}

// checkFixture asserts the diagnostics match the want comments exactly.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	dir := analysistest.FixtureDir(t, name)
	analysistest.Check(t, dir, runFixture(t, name))
}

func TestNoPanicFixture(t *testing.T)       { checkFixture(t, "panicfix") }
func TestNoWallClockFixture(t *testing.T)   { checkFixture(t, "wallclock") }
func TestNoRandFixture(t *testing.T)        { checkFixture(t, "randfix") }
func TestNoGlobalStateFixture(t *testing.T) { checkFixture(t, "globalstate") }
func TestErrWrapFixture(t *testing.T)       { checkFixture(t, "errwrapfix") }

// TestFixturesHaveFindings guards the acceptance criterion that the
// injected-violation fixtures actually trip the linter (non-zero exit).
func TestFixturesHaveFindings(t *testing.T) {
	for _, name := range []string{"panicfix", "wallclock", "randfix", "globalstate", "errwrapfix"} {
		if len(runFixture(t, name)) == 0 {
			t.Errorf("fixture %s produced no diagnostics", name)
		}
	}
}

// loadSource type-checks one in-memory file as its own package.
func loadSource(t *testing.T, src string) []*analysis.Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return analysistest.Load(t, dir)
}

// TestSuppressionRequiresReason checks that a bare //lint:allow is
// reported as malformed rather than silently honored.
func TestSuppressionRequiresReason(t *testing.T) {
	diags := analysis.Run(loadSource(t, `package broken

import "time"

// T reads the clock with a reasonless suppression.
func T() time.Time {
	return time.Now() //lint:allow nowallclock
}
`), analysis.Analyzers())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := fmt.Sprintf("%v", rules)
	if !strings.Contains(got, "lint-allow") {
		t.Errorf("expected a lint-allow malformed-suppression finding, got %v", diags)
	}
	// The reasonless directive must not suppress the underlying finding.
	if !strings.Contains(got, "nowallclock") {
		t.Errorf("expected the nowallclock finding to survive, got %v", diags)
	}
}

// TestSuppressionIsRuleScoped pins the driver semantics the fsmcheck layer
// relies on: when one line trips two analyzers, a //lint:allow naming one
// rule suppresses only that rule and the other finding survives.
func TestSuppressionIsRuleScoped(t *testing.T) {
	diags := analysis.Run(loadSource(t, `package broken

import (
	"math/rand"
	"time"
)

// Seed mixes the wall clock into a global PRNG draw; the same line trips
// both nowallclock and norand, but only nowallclock is allowed.
func Seed() int64 {
	//lint:allow nowallclock fixture exercises rule-scoped suppression
	return time.Now().UnixNano() + rand.Int63()
}
`), analysis.Analyzers())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := fmt.Sprintf("%v", rules)
	if strings.Contains(got, "nowallclock") {
		t.Errorf("nowallclock finding should be suppressed by the directive, got %v", diags)
	}
	if !strings.Contains(got, "norand") {
		t.Errorf("norand finding on the same line must survive a nowallclock allow, got %v", diags)
	}
	if strings.Contains(got, "lint-allow") {
		t.Errorf("the reasoned directive must not be reported as malformed, got %v", diags)
	}
}

// TestModuleSelfLoad loads this repository's own module tree, proving the
// loader handles module-internal imports.
func TestModuleSelfLoad(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "speccat" {
		t.Fatalf("module path = %q, want speccat", l.ModulePath)
	}
	pkgs, err := l.Load([]string{"./internal/core/logic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Name() != "logic" {
		t.Fatalf("unexpected load result: %+v", pkgs)
	}
}
