// Package randfix is a norand analyzer fixture.
package randfix

import "math/rand"

// Roll draws from the global source.
func Roll() int {
	return rand.Intn(6) // want `global math/rand source rand.Intn`
}

// Jitter draws a float from the global source.
func Jitter() float64 {
	return rand.Float64() // want `global math/rand source rand.Float64`
}

// Seeded is the endorsed pattern: an explicit seeded source.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Threaded uses an injected generator.
func Threaded(rng *rand.Rand) int {
	return rng.Intn(6)
}
