// Package errwrapfix is an errwrap analyzer fixture.
package errwrapfix

import (
	"errors"
	"fmt"
)

// ErrBase is a sentinel.
var ErrBase = errors.New("errwrapfix: base")

// BadV forwards the error with %v.
func BadV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want `error argument formatted with %v`
}

// BadS forwards the error with %s.
func BadS(err error) error {
	return fmt.Errorf("load failed: %s", err) // want `error argument formatted with %s`
}

// BadMixed wraps one error properly and leaks another through %v.
func BadMixed(cause error) error {
	return fmt.Errorf("%w: detail %v", ErrBase, cause) // want `error argument formatted with %v`
}

// GoodW wraps with %w.
func GoodW(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

// GoodValue formats a non-error with %v.
func GoodValue(n int) error {
	return fmt.Errorf("bad count %v", n)
}
