// Package globalstate is a noglobalstate analyzer fixture.
package globalstate

import (
	"errors"
	"fmt"
)

// Sentinel errors are the endorsed idiom and are not findings.
var (
	// ErrPlain is a plain sentinel.
	ErrPlain = errors.New("globalstate: plain")
	// ErrFmt is a formatted sentinel.
	ErrFmt = fmt.Errorf("globalstate: fmt %d", 1)
)

var counter int // want `package-level mutable var counter`

var cache = map[string]int{} // want `package-level mutable var cache`

var names, ages = []string{"a"}, []int{1} // want `package-level mutable var names, ages`

// table is read-only by convention; the annotation records that.
var table = map[string]bool{"x": true} //lint:allow noglobalstate immutable lookup table, never written after init

// Touch mutates the counter so the vars are used.
func Touch(key string) int {
	counter++
	cache[key] = counter
	_ = names
	_ = ages
	_ = table
	return counter
}
