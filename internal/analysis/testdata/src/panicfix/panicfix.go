// Package panicfix is a nopanic analyzer fixture.
package panicfix

import "errors"

// ErrBad is a sentinel.
var ErrBad = errors.New("panicfix: bad")

// Exported panics directly.
func Exported() {
	panic("direct") // want `panic reachable from exported Exported`
}

// Indirect reaches a panic through an unexported helper.
func Indirect(n int) int {
	return helper(n)
}

func helper(n int) int {
	if n < 0 {
		panic("negative") // want `panic reachable from exported Indirect`
	}
	return n * 2
}

// Registered hands a panicking callback to a registry, so the panic is
// reachable via the function-value reference.
func Registered(register func(func())) {
	register(callback)
}

func callback() {
	panic("callback") // want `panic reachable from exported Registered`
}

// unreachable is never referenced from any exported root: its panic is
// not a finding.
func unreachable() {
	panic("dead code")
}

// Allowed documents a deliberate panic with a suppression.
func Allowed() {
	panic("invariant") //lint:allow nopanic fixture demonstrates suppression
}
