// Package wallclock is a nowallclock analyzer fixture.
package wallclock

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `wall-clock time.Now`
}

// Nap sleeps for real.
func Nap() {
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep`
}

// Deadline builds a timer channel.
func Deadline() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock time.After`
}

// Span is fine: time.Duration arithmetic does not read the clock.
func Span(d time.Duration) time.Duration {
	return 2 * d
}

// AllowedNow documents a deliberate wall-clock read.
func AllowedNow() time.Time {
	//lint:allow nowallclock fixture demonstrates suppression above the line
	return time.Now()
}
