package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoGlobalState flags package-level var declarations that hold mutable
// state (DESIGN.md: "no package-level mutable state"). Allowed without
// annotation are the two idioms the design doc endorses:
//
//   - sentinel errors: var ErrX = errors.New(...) / fmt.Errorf(...)
//   - //go:embed file data
//
// Anything else — lookup tables included — must either move into a
// struct, become a constant, or carry a //lint:allow noglobalstate
// annotation stating why it is safe (e.g. written once, never mutated).
var NoGlobalState = &Analyzer{ //lint:allow noglobalstate analyzer singleton, assigned once and never mutated
	Name: "noglobalstate",
	Doc:  "no mutable package-level vars (sentinel errors and //go:embed excepted)",
	Run:  runNoGlobalState,
}

func runNoGlobalState(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if isEmbedSpec(gd, vs) || allBlank(vs.Names) {
					continue
				}
				if isSentinelSpec(pass, vs) {
					continue
				}
				pass.Reportf(vs.Pos(), "package-level mutable var %s; move it into a struct, make it a constant, or annotate why it is immutable", nameList(vs.Names))
			}
		}
	}
}

func nameList(ids []*ast.Ident) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.Name
	}
	return strings.Join(names, ", ")
}

func allBlank(ids []*ast.Ident) bool {
	for _, id := range ids {
		if id.Name != "_" {
			return false
		}
	}
	return true
}

// isEmbedSpec reports whether the declaration carries a //go:embed
// directive (on the spec or on a single-spec decl).
func isEmbedSpec(gd *ast.GenDecl, vs *ast.ValueSpec) bool {
	for _, doc := range []*ast.CommentGroup{gd.Doc, vs.Doc, vs.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, "//go:embed") {
				return true
			}
		}
	}
	return false
}

// isSentinelSpec reports whether every initializer is an errors.New or
// fmt.Errorf call — the sentinel-error idiom.
func isSentinelSpec(pass *Pass, vs *ast.ValueSpec) bool {
	if len(vs.Values) == 0 || len(vs.Values) != len(vs.Names) {
		return false
	}
	for _, v := range vs.Values {
		call, ok := v.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkgName, ok := pass.Pkg.Info.Uses[base].(*types.PkgName)
		if !ok {
			return false
		}
		switch {
		case pkgName.Imported().Path() == "errors" && sel.Sel.Name == "New":
		case pkgName.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		default:
			return false
		}
	}
	return true
}
