package fsmcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// extractor accumulates machines and diagnostics across packages.
type extractor struct {
	pkgs  []*analysis.Package
	diags []analysis.Diagnostic

	machines map[string]*Machine
	// ignored maps file -> lines covered by a reasoned //fsm:ignore (the
	// directive's own line and the next).
	ignored map[string]map[int]bool
	// lineDirs maps file -> line -> directives starting on that line, for
	// the call-trailing //fsm:from and //fsm:to annotations.
	lineDirs map[string]map[int][]directive
	// bindable tracks declaration-bound directives ("file:line") so ones
	// that never attach to a declaration can be reported.
	bindable map[string]directive
	bound    map[string]bool

	stateByObj map[types.Object]*stateRef
	kindByObj  map[types.Object]*kindRef
	emitByObj  map[types.Object]*emitSpec
	// stateTypes maps machine name -> the Go type of its state constants.
	stateTypes map[string]types.Type

	handlers []*handlerWork
	encodes  []*codecHalf
	decodes  []*codecHalf
	rawEdges map[string][]Edge // machine -> undeduplicated edges
}

type stateRef struct {
	machine string
	decl    *StateDecl
}

type kindRef struct {
	machine string
	decl    *KindDecl
}

type emitSpec struct {
	machine string
	role    string
	fromIdx int
	toIdx   int
}

// handlerWork carries one handler's AST through the per-body checks.
type handlerWork struct {
	h       *Handler
	decl    *ast.FuncDecl
	pkg     *analysis.Package
	handled map[*kindRef]bool
}

// codecHalf is one //fsm:encode or //fsm:decode function before pairing.
type codecHalf struct {
	machine string
	typ     types.Type
	pkg     *analysis.Package
	pos     token.Position
	name    string
	// mapping is const->string for encoders, string->const for decoders.
	mapping map[string]string
	// order lists the mapping keys in source order.
	order []string
	// defaultErr reports whether the decoder's default returns a non-nil
	// error (rather than silently yielding a constant).
	defaultErr bool
	hasDefault bool
}

func newExtractor(pkgs []*analysis.Package) *extractor {
	return &extractor{
		pkgs:       pkgs,
		machines:   map[string]*Machine{},
		ignored:    map[string]map[int]bool{},
		lineDirs:   map[string]map[int][]directive{},
		bindable:   map[string]directive{},
		bound:      map[string]bool{},
		stateByObj: map[types.Object]*stateRef{},
		kindByObj:  map[types.Object]*kindRef{},
		emitByObj:  map[types.Object]*emitSpec{},
		stateTypes: map[string]types.Type{},
		rawEdges:   map[string][]Edge{},
	}
}

func (x *extractor) reportf(pkg *analysis.Package, pos token.Pos, rule, format string, args ...any) {
	x.diags = append(x.diags, analysis.Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func (x *extractor) machine(name string) *Machine {
	m, ok := x.machines[name]
	if !ok {
		m = &Machine{Name: name}
		x.machines[name] = m
	}
	return m
}

func posKey(p token.Position) string { return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column) }

// extract runs all extraction passes over the loaded packages.
func (x *extractor) extract() *Report {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanComments(pkg, f)
		}
	}
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanConsts(pkg, f)
		}
	}
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanFuncs(pkg, f)
		}
	}
	for _, w := range x.handlers {
		x.analyzeHandler(w)
	}
	x.checkExhaustive()
	x.extractCalls()
	x.finalizeEdges()
	x.pairCodecs()
	x.reportUnbound()
	return &Report{Machines: x.machines}
}

// scanComments validates every fsm directive in the file and records the
// position-keyed ones (ignore, from/to, model-extra).
func (x *extractor) scanComments(pkg *analysis.Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.scanDirective(pkg, c, d)
			}
		}
	}
}

func (x *extractor) scanDirective(pkg *analysis.Package, c *ast.Comment, d directive) {
	switch d.verb {
	case "state", "msg", "handler", "emit":
		if len(d.args) != 2 {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:%s wants <machine> <%s>", d.verb, map[string]string{"state": "alias", "msg": "role", "handler": "role", "emit": "role"}[d.verb])
			return
		}
		x.bindable[posKey(d.pos)] = d
	case "encode", "decode":
		if len(d.args) != 1 {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:%s wants <machine>", d.verb)
			return
		}
		x.bindable[posKey(d.pos)] = d
	case "from", "to":
		if len(d.args) != 1 {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:%s wants a comma-separated alias list", d.verb)
			return
		}
		byLine := x.lineDirs[d.pos.Filename]
		if byLine == nil {
			byLine = map[int][]directive{}
			x.lineDirs[d.pos.Filename] = byLine
		}
		byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
	case "ignore":
		if d.rest == "" {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:ignore needs a reason")
			return
		}
		lines := x.ignored[d.pos.Filename]
		if lines == nil {
			lines = map[int]bool{}
			x.ignored[d.pos.Filename] = lines
		}
		lines[d.pos.Line] = true
		lines[d.pos.Line+1] = true
	case "model-extra":
		if len(d.args) < 4 {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:model-extra wants <machine> <role> <from>-><to> <reason>")
			return
		}
		from, to, ok := strings.Cut(d.args[2], "->")
		if !ok || from == "" || to == "" {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:model-extra edge %q is not <from>-><to>", d.args[2])
			return
		}
		reason := strings.Join(d.args[3:], " ")
		m := x.machine(d.args[0])
		m.Extras = append(m.Extras, &ModelExtra{
			Machine: d.args[0], Role: d.args[1], From: from, To: to,
			Reason: reason, Pos: d.pos,
		})
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "unknown directive //fsm:%s", d.verb)
	}
}

// scanConsts binds //fsm:state and //fsm:msg trailing annotations to their
// constant declarations.
func (x *extractor) scanConsts(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, s := range gd.Specs {
			spec, ok := s.(*ast.ValueSpec)
			if !ok || spec.Comment == nil {
				continue
			}
			for _, c := range spec.Comment.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, d := range parseDirectives(c.Text, pos) {
					x.bindConstDirective(pkg, spec, c, d)
				}
			}
		}
	}
}

func (x *extractor) bindConstDirective(pkg *analysis.Package, spec *ast.ValueSpec, c *ast.Comment, d directive) {
	if d.verb != "state" && d.verb != "msg" {
		return
	}
	if len(d.args) != 2 {
		return // arity already reported by scanComments
	}
	if len(spec.Names) != 1 {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:%s must annotate a single-name constant", d.verb)
		return
	}
	obj := pkg.Info.Defs[spec.Names[0]]
	cnst, ok := obj.(*types.Const)
	if !ok {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:%s must annotate a constant", d.verb)
		return
	}
	x.bound[posKey(d.pos)] = true
	m := x.machine(d.args[0])
	pos := pkg.Fset.Position(spec.Names[0].Pos())
	switch d.verb {
	case "state":
		sd := &StateDecl{Name: cnst.Name(), Alias: d.args[1], Pos: pos}
		m.States = append(m.States, sd)
		x.stateByObj[cnst] = &stateRef{machine: m.Name, decl: sd}
		if _, ok := x.stateTypes[m.Name]; !ok {
			x.stateTypes[m.Name] = cnst.Type()
		}
	case "msg":
		if cnst.Val().Kind() != constant.String {
			x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:msg must annotate a string constant")
			return
		}
		kd := &KindDecl{Name: cnst.Name(), Value: constant.StringVal(cnst.Val()), Role: d.args[1], Pos: pos}
		m.Kinds = append(m.Kinds, kd)
		x.kindByObj[cnst] = &kindRef{machine: m.Name, decl: kd}
	}
}

// scanFuncs binds //fsm:handler, //fsm:emit, //fsm:encode and //fsm:decode
// doc annotations to their functions.
func (x *extractor) scanFuncs(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.bindFuncDirective(pkg, fn, c, d)
			}
		}
	}
}

func (x *extractor) bindFuncDirective(pkg *analysis.Package, fn *ast.FuncDecl, c *ast.Comment, d directive) {
	switch d.verb {
	case "handler":
		if len(d.args) != 2 {
			return
		}
		x.bound[posKey(d.pos)] = true
		m := x.machine(d.args[0])
		h := &Handler{
			Machine:  d.args[0],
			Role:     d.args[1],
			FuncName: fn.Name.Name,
			Pos:      pkg.Fset.Position(fn.Name.Pos()),
			Terminal: fn.Type.Results == nil || len(fn.Type.Results.List) == 0,
		}
		m.Handlers = append(m.Handlers, h)
		x.handlers = append(x.handlers, &handlerWork{h: h, decl: fn, pkg: pkg, handled: map[*kindRef]bool{}})
	case "emit":
		if len(d.args) != 2 {
			return
		}
		x.bound[posKey(d.pos)] = true
		x.bindEmit(pkg, fn, c, d)
	case "encode", "decode":
		if len(d.args) != 1 {
			return
		}
		x.bound[posKey(d.pos)] = true
		if d.verb == "encode" {
			x.bindEncode(pkg, fn, c, d)
		} else {
			x.bindDecode(pkg, fn, c, d)
		}
	}
}

// bindEmit registers an emit function: its call sites become transitions.
// The from and to arguments are located by type — the function must take
// exactly two parameters of the machine's state type, in (from, to) order.
func (x *extractor) bindEmit(pkg *analysis.Package, fn *ast.FuncDecl, c *ast.Comment, d directive) {
	machine := d.args[0]
	stateType, ok := x.stateTypes[machine]
	if !ok {
		x.reportf(pkg, c.Pos(), RuleExtract, "machine %s has an //fsm:emit but no //fsm:state constants", machine)
		return
	}
	var idx []int
	pos := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		ft := pkg.Info.TypeOf(field.Type)
		for i := 0; i < n; i++ {
			if ft != nil && types.Identical(ft, stateType) {
				idx = append(idx, pos)
			}
			pos++
		}
	}
	if len(idx) != 2 {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:emit function %s must take exactly two %s parameters (from, to), has %d", fn.Name.Name, stateType, len(idx))
		return
	}
	obj := pkg.Info.Defs[fn.Name]
	if obj == nil {
		return
	}
	x.emitByObj[obj] = &emitSpec{machine: machine, role: d.args[1], fromIdx: idx[0], toIdx: idx[1]}
}

// reportUnbound flags declaration directives that never attached to a
// declaration (e.g. an //fsm:state floating in a stray comment).
func (x *extractor) reportUnbound() {
	var keys []string
	for k := range x.bindable {
		if !x.bound[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := x.bindable[k]
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     d.pos,
			Rule:    RuleExtract,
			Message: fmt.Sprintf("//fsm:%s is not attached to a declaration (use a const line comment or a function doc comment)", d.verb),
		})
	}
}

// ---- handler body analysis ----

// analyzeHandler checks one handler's dispatch for exhaustiveness-relevant
// structure and silent drops.
func (x *extractor) analyzeHandler(w *handlerWork) {
	pkg := w.pkg
	var paramObj types.Object
	if fl := w.decl.Type.Params; fl != nil && len(fl.List) > 0 && len(fl.List[0].Names) > 0 {
		paramObj = pkg.Info.Defs[fl.List[0].Names[0]]
	}
	if paramObj == nil {
		x.reportf(pkg, w.decl.Pos(), RuleExtract, "handler %s has no named message parameter", w.h.FuncName)
		return
	}
	if w.decl.Body == nil {
		return
	}
	// okObjs collects the ok results of <param>.Payload.(T) assertions so
	// their !ok branches can be checked for silent drops.
	okObjs := map[types.Object]bool{}
	ast.Inspect(w.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			recordPayloadAssert(pkg, st, paramObj, okObjs)
		case *ast.SwitchStmt:
			if isKindSelector(pkg, st.Tag, paramObj) {
				x.analyzeDispatchSwitch(w, st)
			}
		case *ast.IfStmt:
			x.analyzeHandlerIf(w, st, paramObj, okObjs)
		}
		return true
	})
}

// recordPayloadAssert notes `v, ok := <param>.Payload.(T)` assertions.
func recordPayloadAssert(pkg *analysis.Package, st *ast.AssignStmt, paramObj types.Object, okObjs map[types.Object]bool) {
	if st.Tok != token.DEFINE || len(st.Lhs) != 2 || len(st.Rhs) != 1 {
		return
	}
	ta, ok := st.Rhs[0].(*ast.TypeAssertExpr)
	if !ok || ta.Type == nil {
		return
	}
	sel, ok := ta.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Payload" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != paramObj {
		return
	}
	okIdent, ok := st.Lhs[1].(*ast.Ident)
	if !ok {
		return
	}
	if obj := pkg.Info.Defs[okIdent]; obj != nil {
		okObjs[obj] = true
	}
}

// isKindSelector reports whether e is `<param>.Kind`.
func isKindSelector(pkg *analysis.Package, e ast.Expr, paramObj types.Object) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Kind" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pkg.Info.Uses[id] == paramObj
}

// analyzeDispatchSwitch records the kinds a dispatch switch consumes and
// checks its default clause.
func (x *extractor) analyzeDispatchSwitch(w *handlerWork, st *ast.SwitchStmt) {
	pkg := w.pkg
	var defaultClause *ast.CaseClause
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			kr := x.kindOf(pkg, e)
			if kr == nil {
				continue
			}
			x.consume(w, kr, e.Pos())
		}
	}
	if !w.h.Terminal {
		return
	}
	if defaultClause == nil {
		x.reportf(pkg, st.Pos(), RuleSilentDrop, "terminal handler %s dispatches without a default: unknown kinds are silently dropped", w.h.FuncName)
		return
	}
	if inert(defaultClause.Body) {
		pos := defaultClause.Pos()
		if len(defaultClause.Body) > 0 {
			pos = defaultClause.Body[0].Pos()
		}
		x.reportf(pkg, pos, RuleSilentDrop, "terminal handler %s drops unknown kinds without accounting in its default", w.h.FuncName)
	}
}

// analyzeHandlerIf checks kind guards (`if m.Kind != K`) and payload
// assertion failures (`if !ok`) for silent drops, and records guarded
// kinds as consumed.
func (x *extractor) analyzeHandlerIf(w *handlerWork, st *ast.IfStmt, paramObj types.Object, okObjs map[types.Object]bool) {
	pkg := w.pkg
	exits := endsInReturn(st.Body)
	for _, d := range disjuncts(st.Cond) {
		switch c := d.(type) {
		case *ast.BinaryExpr:
			if c.Op != token.NEQ && c.Op != token.EQL {
				continue
			}
			var kindExpr ast.Expr
			if isKindSelector(pkg, c.X, paramObj) {
				kindExpr = c.Y
			} else if isKindSelector(pkg, c.Y, paramObj) {
				kindExpr = c.X
			} else {
				continue
			}
			kr := x.kindOf(pkg, kindExpr)
			if kr == nil {
				continue
			}
			x.consume(w, kr, kindExpr.Pos())
			// `if m.Kind != K { ...drop... }` in a terminal handler must
			// account for the traffic it turns away.
			if c.Op == token.NEQ && exits && w.h.Terminal && inert(st.Body.List) {
				x.reportf(pkg, dropPos(st), RuleSilentDrop, "terminal handler %s drops non-%s kinds without accounting", w.h.FuncName, kr.decl.Name)
			}
		case *ast.UnaryExpr:
			if c.Op != token.NOT {
				continue
			}
			id, ok := c.X.(*ast.Ident)
			if !ok || !okObjs[pkg.Info.Uses[id]] {
				continue
			}
			// Only the first !ok check after the assertion is the decode
			// failure branch; later tests of the same variable (e.g. reused
			// by a map lookup) are ordinary protocol logic.
			delete(okObjs, pkg.Info.Uses[id])
			if inert(st.Body.List) {
				x.reportf(pkg, dropPos(st), RuleSilentDrop, "handler %s drops a message with an undecodable payload without accounting", w.h.FuncName)
			}
		}
	}
}

// consume records a handler consuming a kind and flags cross-role overlap.
func (x *extractor) consume(w *handlerWork, kr *kindRef, pos token.Pos) {
	if kr.machine == w.h.Machine && kr.decl.Role != w.h.Role {
		x.reportf(w.pkg, pos, RuleDeterminism, "kind %s is declared for role %q but consumed by %q handler %s", kr.decl.Name, kr.decl.Role, w.h.Role, w.h.FuncName)
		return
	}
	if !w.handled[kr] {
		w.handled[kr] = true
		kr.decl.ConsumedBy = append(kr.decl.ConsumedBy, w.h.FuncName)
	}
}

// dropPos anchors a silent-drop finding on the dropping branch's first
// statement (so an //fsm:ignore above that line covers it), falling back
// to the if statement itself.
func dropPos(st *ast.IfStmt) token.Pos {
	if len(st.Body.List) > 0 {
		return st.Body.List[0].Pos()
	}
	return st.Pos()
}

// inert reports whether a branch body does nothing but return values free
// of calls — the shape of a silent drop.
func inert(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		r, ok := s.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		for _, e := range r.Results {
			if containsCall(e) {
				return false
			}
		}
	}
	return true
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func endsInReturn(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// disjuncts flattens a || chain.
func disjuncts(e ast.Expr) []ast.Expr {
	switch v := e.(type) {
	case *ast.BinaryExpr:
		if v.Op == token.LOR {
			return append(disjuncts(v.X), disjuncts(v.Y)...)
		}
	case *ast.ParenExpr:
		return disjuncts(v.X)
	}
	return []ast.Expr{e}
}

// checkExhaustive verifies every declared kind is consumed by exactly the
// handler of its role.
func (x *extractor) checkExhaustive() {
	byRole := map[string][]*handlerWork{}
	for _, w := range x.handlers {
		key := w.h.Machine + "\x00" + w.h.Role
		byRole[key] = append(byRole[key], w)
		if n := len(byRole[key]); n > 1 {
			x.reportf(w.pkg, w.decl.Name.Pos(), RuleDeterminism, "role %q of machine %s has %d handlers; dispatch is ambiguous", w.h.Role, w.h.Machine, n)
		}
	}
	for _, name := range sortedMachineNames(x.machines) {
		m := x.machines[name]
		for _, kd := range m.Kinds {
			ws := byRole[m.Name+"\x00"+kd.Role]
			if len(ws) == 0 {
				x.diags = append(x.diags, analysis.Diagnostic{
					Pos:     kd.Pos,
					Rule:    RuleExhaustive,
					Message: fmt.Sprintf("kind %s: no //fsm:handler for role %q of machine %s consumes it", kd.Name, kd.Role, m.Name),
				})
				continue
			}
			if len(kd.ConsumedBy) == 0 {
				w := ws[0]
				x.reportf(w.pkg, w.decl.Name.Pos(), RuleExhaustive, "handler %s does not handle declared kind %s (machine %s, role %q)", w.h.FuncName, kd.Name, m.Name, kd.Role)
			}
		}
	}
}

func sortedMachineNames(ms map[string]*Machine) []string {
	names := make([]string, 0, len(ms))
	for n := range ms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- emit call extraction and kind production ----

// extractCalls walks every function body, marking produced kinds and
// turning emit call sites into transitions.
func (x *extractor) extractCalls() {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, a := range call.Args {
						if kr := x.kindOf(pkg, a); kr != nil {
							kr.decl.Produced = true
						}
					}
					if spec := x.emitSpecOf(pkg, call.Fun); spec != nil {
						x.extractEdges(pkg, fn, call, spec)
					}
					return true
				})
			}
		}
	}
}

// kindOf resolves an expression to an annotated kind constant.
func (x *extractor) kindOf(pkg *analysis.Package, e ast.Expr) *kindRef {
	if obj := constObjOf(pkg, e); obj != nil {
		return x.kindByObj[obj]
	}
	return nil
}

// stateOf resolves an expression to an annotated state constant.
func (x *extractor) stateOf(pkg *analysis.Package, e ast.Expr) *stateRef {
	if obj := constObjOf(pkg, e); obj != nil {
		return x.stateByObj[obj]
	}
	return nil
}

func constObjOf(pkg *analysis.Package, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	case *ast.ParenExpr:
		return constObjOf(pkg, v.X)
	}
	return nil
}

func (x *extractor) emitSpecOf(pkg *analysis.Package, fun ast.Expr) *emitSpec {
	var obj types.Object
	switch v := fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[v.Sel]
	}
	if obj == nil {
		return nil
	}
	return x.emitByObj[obj]
}

// extractEdges resolves the from and to argument of one emit call into
// alias sets and records their cross product.
func (x *extractor) extractEdges(pkg *analysis.Package, fn *ast.FuncDecl, call *ast.CallExpr, spec *emitSpec) {
	if len(call.Args) <= spec.toIdx {
		return
	}
	m := x.machine(spec.machine)
	from, fsrc := x.resolveStates(pkg, fn, call, call.Args[spec.fromIdx], m, "from")
	to, tsrc := x.resolveStates(pkg, fn, call, call.Args[spec.toIdx], m, "to")
	if from == nil || to == nil {
		return
	}
	src := fsrc
	if tsrc != fsrc {
		src = fsrc + "," + tsrc
	}
	pos := pkg.Fset.Position(call.Pos())
	for _, f := range from {
		for _, t := range to {
			if f == t {
				continue // runtime emit suppresses self-loops too
			}
			x.rawEdges[m.Name] = append(x.rawEdges[m.Name], Edge{
				Role: spec.role, From: f, To: t, Pos: pos, Source: src,
			})
		}
	}
}

// resolveStates determines the alias set of one emit argument: a state
// constant directly, a trailing //fsm:from or //fsm:to annotation, or a
// dominating state guard in the enclosing function.
func (x *extractor) resolveStates(pkg *analysis.Package, fn *ast.FuncDecl, call *ast.CallExpr, arg ast.Expr, m *Machine, which string) ([]string, string) {
	if sr := x.stateOf(pkg, arg); sr != nil && sr.machine == m.Name {
		return []string{sr.decl.Alias}, "const"
	}
	callPos := pkg.Fset.Position(call.Pos())
	for _, d := range x.lineDirs[callPos.Filename][callPos.Line] {
		if d.verb != which {
			continue
		}
		var aliases []string
		for _, a := range strings.Split(d.args[0], ",") {
			a = strings.TrimSpace(a)
			if m.stateByAlias(a) == nil {
				x.reportf(pkg, call.Pos(), RuleExtract, "//fsm:%s names unknown state %q of machine %s", which, a, m.Name)
				return nil, ""
			}
			aliases = append(aliases, a)
		}
		return aliases, "annotated"
	}
	if aliases := x.inferGuard(pkg, fn, call, arg, m); aliases != nil {
		return aliases, "guard"
	}
	x.reportf(pkg, call.Pos(), RuleExtract, "cannot determine the %s-states of this %s transition; annotate the call with //fsm:%s <aliases>", which, m.Name, which)
	return nil, ""
}

// inferGuard derives the possible states of arg from the early-return
// guards preceding the call at the top level of fn: passing
// `if arg != K { return }` forces arg == K, and each
// `if arg == K1 || arg == K2 { return }` excludes K1, K2.
func (x *extractor) inferGuard(pkg *analysis.Package, fn *ast.FuncDecl, call *ast.CallExpr, arg ast.Expr, m *Machine) []string {
	want := exprString(arg)
	if want == "" {
		return nil
	}
	allowed := map[string]bool{}
	for _, sd := range m.States {
		allowed[sd.Alias] = true
	}
	constrained := false
	for _, st := range fn.Body.List {
		if st.Pos() >= call.Pos() {
			break
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || ifs.Else != nil || !endsInReturn(ifs.Body) {
			continue
		}
		for _, d := range disjuncts(ifs.Cond) {
			be, ok := d.(*ast.BinaryExpr)
			if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
				continue
			}
			var constExpr ast.Expr
			if exprString(be.X) == want {
				constExpr = be.Y
			} else if exprString(be.Y) == want {
				constExpr = be.X
			} else {
				continue
			}
			sr := x.stateOf(pkg, constExpr)
			if sr == nil || sr.machine != m.Name {
				continue
			}
			constrained = true
			if be.Op == token.NEQ {
				// Surviving the guard means arg == const.
				for a := range allowed {
					if a != sr.decl.Alias {
						delete(allowed, a)
					}
				}
			} else {
				// Surviving the guard means arg != const.
				delete(allowed, sr.decl.Alias)
			}
		}
	}
	if !constrained || len(allowed) == 0 {
		return nil
	}
	var out []string
	for _, sd := range m.States {
		if allowed[sd.Alias] {
			out = append(out, sd.Alias)
		}
	}
	return out
}

// exprString renders simple ident/selector chains for structural equality.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if x := exprString(v.X); x != "" {
			return x + "." + v.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(v.X)
	}
	return ""
}

// stateByAlias finds a machine state by its model letter.
func (m *Machine) stateByAlias(alias string) *StateDecl {
	for _, sd := range m.States {
		if sd.Alias == alias {
			return sd
		}
	}
	return nil
}

// aliasIndex orders aliases by state declaration order (unknowns last).
func (m *Machine) aliasIndex(alias string) int {
	for i, sd := range m.States {
		if sd.Alias == alias {
			return i
		}
	}
	return len(m.States)
}

// finalizeEdges deduplicates and orders each machine's edge set by role,
// then by state declaration order.
func (x *extractor) finalizeEdges() {
	for name, raw := range x.rawEdges {
		m := x.machines[name]
		sort.Slice(raw, func(i, j int) bool {
			a, b := raw[i], raw[j]
			if a.Role != b.Role {
				return a.Role < b.Role
			}
			if a.From != b.From {
				return m.aliasIndex(a.From) < m.aliasIndex(b.From)
			}
			if a.To != b.To {
				return m.aliasIndex(a.To) < m.aliasIndex(b.To)
			}
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			return a.Pos.Line < b.Pos.Line
		})
		seen := map[[3]string]bool{}
		for _, e := range raw {
			if seen[e.key()] {
				continue
			}
			seen[e.key()] = true
			m.Edges = append(m.Edges, e)
		}
	}
}
