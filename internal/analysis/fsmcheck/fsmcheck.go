// Package fsmcheck is the third static-analysis layer of speccatlint: it
// extracts protocol state machines from the Go engines and checks them for
// the composition errors the paper's methodology targets — unhandled
// (state, message) pairs, nondeterministic dispatch, dead states and
// message kinds, partial stable-storage codecs — and cross-validates the
// extracted commit machines against the abstract transition relation of
// internal/mc, so the executable implementation and the model-checked
// abstraction cannot drift apart silently.
//
// Extraction is guided by lightweight comment annotations:
//
//	//fsm:state <machine> <alias>      on a state constant; alias is the
//	                                   abstract model's letter (q, w, ...)
//	//fsm:msg <machine> <role>         on a wire-kind constant; role names
//	                                   the handler that must consume it
//	//fsm:handler <machine> <role>     in the doc of the role's handler
//	//fsm:emit <machine> <role>        in the doc of the transition-trace
//	                                   method whose call sites are edges
//	//fsm:from <a1,a2,...>             trailing an emit call whose from
//	//fsm:to <a1,a2,...>               (or to) argument is dynamic
//	//fsm:encode <machine>             in the doc of a constant->string
//	                                   stable-storage encoder
//	//fsm:decode <machine>             in the doc of its inverse
//	//fsm:model-extra <machine> <role> <f>-><t> <reason>
//	                                   justifies an extracted edge outside
//	                                   the abstract model's relation
//	//fsm:ignore <reason>              suppresses fsm findings on its own
//	                                   and the next line; reason mandatory
//
// Rules reported: fsm-exhaustive (declared kind not consumed), fsm-silent-drop
// (message dropped without accounting), fsm-determinism (overlapping
// dispatch), fsm-dead (state or kind declared but unreachable), fsm-codec
// (encode/decode pair not total over the constant set), fsm-extract
// (malformed annotation or unresolvable edge), fsm-model (extracted edge
// outside the model relation, or a stale justification).
package fsmcheck

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// Rule names reported by this layer.
const (
	RuleExhaustive  = "fsm-exhaustive"
	RuleSilentDrop  = "fsm-silent-drop"
	RuleDeterminism = "fsm-determinism"
	RuleDead        = "fsm-dead"
	RuleCodec       = "fsm-codec"
	RuleExtract     = "fsm-extract"
	RuleModel       = "fsm-model"
)

// Report is the extracted machine set.
type Report struct {
	// Machines indexes the extracted machines by name.
	Machines map[string]*Machine
}

// MachineNames returns the machine names in sorted order.
func (r *Report) MachineNames() []string {
	names := make([]string, 0, len(r.Machines))
	for n := range r.Machines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Machine is one extracted protocol machine.
type Machine struct {
	Name string
	// States are the //fsm:state constants in declaration order.
	States []*StateDecl
	// Kinds are the //fsm:msg constants in declaration order.
	Kinds []*KindDecl
	// Handlers are the //fsm:handler functions.
	Handlers []*Handler
	// Edges is the deduplicated, sorted transition set per role.
	Edges []Edge
	// Extras are the checked-in //fsm:model-extra justifications.
	Extras []*ModelExtra
	// Codecs are the matched //fsm:encode + //fsm:decode pairs.
	Codecs []*Codec
	// ModelEdges, when non-nil, is the abstract relation the machine was
	// cross-validated against (populated by CrossValidate).
	ModelEdges []Edge
}

// StateDecl is one annotated state constant.
type StateDecl struct {
	// Name is the Go constant name.
	Name string
	// Alias is the abstract model's state letter.
	Alias string
	Pos   token.Position
}

// KindDecl is one annotated wire-kind constant.
type KindDecl struct {
	// Name is the Go constant name.
	Name string
	// Value is the wire string.
	Value string
	// Role names the handler that must consume the kind.
	Role string
	Pos  token.Position
	// Produced records whether any call site sends the kind.
	Produced bool
	// ConsumedBy lists the handler functions casing the kind.
	ConsumedBy []string
}

// Handler is one annotated message handler.
type Handler struct {
	Machine  string
	Role     string
	FuncName string
	Pos      token.Position
	// Terminal marks a handler with no results: it is the last consumer on
	// its node, so unknown traffic must be accounted, not declined.
	Terminal bool
}

// Edge is one extracted or model transition, in alias letters.
type Edge struct {
	Role string
	From string
	To   string
	// Pos is the emit call site the edge was extracted from (zero for
	// model edges).
	Pos token.Position
	// Source describes how the edge was resolved: "const", "annotated" or
	// "guard".
	Source string
}

// key identifies the edge ignoring provenance.
func (e Edge) key() [3]string { return [3]string{e.Role, e.From, e.To} }

// String renders the edge as "role: f->t".
func (e Edge) String() string { return fmt.Sprintf("%s: %s->%s", e.Role, e.From, e.To) }

// ModelExtra is one checked-in justification for an extracted edge outside
// the abstract model's relation.
type ModelExtra struct {
	Machine string
	Role    string
	From    string
	To      string
	Reason  string
	Pos     token.Position
	// used is set during cross-validation when the justified edge was
	// actually extracted and actually absent from the model.
	used bool
}

// Codec is one encode/decode pair over a constant set.
type Codec struct {
	Machine string
	// TypeName is the Go type whose constants the pair encodes.
	TypeName  string
	EncodePos token.Position
	DecodePos token.Position
	// Consts are the constant names of the type, in declaration order.
	Consts []string
	// Encodes maps constant name -> wire string.
	Encodes map[string]string
	// Decodes maps wire string -> constant name.
	Decodes map[string]string
}

// directive is one parsed //fsm:<verb> annotation.
type directive struct {
	verb string
	args []string
	// rest is the raw argument text (reason-bearing verbs keep spaces).
	rest string
	pos  token.Position
}

// parseDirectives extracts the fsm: directives of one comment. The comment
// must BEGIN with a directive — prose that merely mentions "//fsm:..." is
// not one. A single directive comment may carry several directives
// separated by "//", e.g. "//fsm:from q,w //fsm:to a,c".
func parseDirectives(text string, pos token.Position) []directive {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "fsm:") {
		return nil
	}
	var out []directive
	for _, seg := range strings.Split(body, "//") {
		seg = strings.TrimSpace(seg)
		rest, ok := strings.CutPrefix(seg, "fsm:")
		if !ok {
			continue
		}
		verb, args, _ := strings.Cut(rest, " ")
		args = strings.TrimSpace(args)
		out = append(out, directive{
			verb: verb,
			args: strings.Fields(args),
			rest: args,
			pos:  pos,
		})
	}
	return out
}

// Run extracts the machines from the loaded packages and checks them,
// returning the report and the surviving diagnostics (with //fsm:ignore
// suppressions applied), sorted by position.
func Run(pkgs []*analysis.Package) (*Report, []analysis.Diagnostic) {
	x := newExtractor(pkgs)
	rep := x.extract()
	x.check(rep)
	for _, name := range rep.MachineNames() {
		x.crossValidate(rep.Machines[name])
	}
	diags := x.suppress(x.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep, diags
}

// suppress drops diagnostics covered by a reasoned //fsm:ignore on the
// same or the preceding line; reasonless ignores are themselves findings
// (already reported during extraction).
func (x *extractor) suppress(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if lines := x.ignored[d.Pos.Filename]; lines[d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
