package fsmcheck

import (
	"fmt"

	"speccat/internal/analysis"
)

// check runs the cross-declaration checks that need the fully extracted
// report: duplicate wire values, dead states and dead kinds.
func (x *extractor) check(rep *Report) {
	for _, name := range rep.MachineNames() {
		m := rep.Machines[name]
		x.checkDuplicateWires(m)
		x.checkDeadStates(m)
		x.checkDeadKinds(m)
	}
}

// checkDuplicateWires flags two kind constants of one machine sharing a
// wire string: dispatch on the kind becomes ambiguous even though the Go
// compiler accepts the constants.
func (x *extractor) checkDuplicateWires(m *Machine) {
	byValue := map[string]*KindDecl{}
	for _, kd := range m.Kinds {
		if prev, ok := byValue[kd.Value]; ok {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     kd.Pos,
				Rule:    RuleDeterminism,
				Message: fmt.Sprintf("kind %s shares wire value %q with %s; dispatch on the kind is ambiguous", kd.Name, kd.Value, prev.Name),
			})
			continue
		}
		byValue[kd.Value] = kd
	}
}

// checkDeadStates flags declared states that appear in no extracted
// transition. The check only fires once the machine has transitions —
// a machine annotated with states but no //fsm:emit function is reported
// as an extraction gap instead.
func (x *extractor) checkDeadStates(m *Machine) {
	if len(m.States) > 0 && len(m.Edges) == 0 {
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     m.States[0].Pos,
			Rule:    RuleExtract,
			Message: fmt.Sprintf("machine %s declares states but no transitions were extracted; annotate its transition method with //fsm:emit", m.Name),
		})
		return
	}
	used := map[string]bool{}
	for _, e := range m.Edges {
		used[e.From] = true
		used[e.To] = true
	}
	for _, sd := range m.States {
		if !used[sd.Alias] {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     sd.Pos,
				Rule:    RuleDead,
				Message: fmt.Sprintf("state %s (%s) of machine %s appears in no extracted transition", sd.Name, sd.Alias, m.Name),
			})
		}
	}
}

// checkDeadKinds flags declared kinds no call site ever produces: the
// handler arm waiting for them is dead code.
func (x *extractor) checkDeadKinds(m *Machine) {
	for _, kd := range m.Kinds {
		if !kd.Produced {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     kd.Pos,
				Rule:    RuleDead,
				Message: fmt.Sprintf("kind %s of machine %s is consumed but never produced (no call site sends it)", kd.Name, m.Name),
			})
		}
	}
}
