package fsmcheck

import (
	"strings"
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// loadRepo loads this repository's internal tree.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoIsFSMClean is the acceptance criterion: extracting and checking
// the repository's own protocol engines yields no findings, and the tpc
// machines verify against the abstract model.
func TestRepoIsFSMClean(t *testing.T) {
	rep, diags := Run(loadRepo(t))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	tpc, ok := rep.Machines["tpc"]
	if !ok {
		t.Fatal("no tpc machine extracted")
	}
	if len(tpc.States) != 5 {
		t.Errorf("tpc states = %d, want 5", len(tpc.States))
	}
	if tpc.ModelEdges == nil {
		t.Error("tpc machine was not cross-validated against internal/mc")
	}
	want := []string{
		"coordinator: q->w", "coordinator: w->p", "coordinator: w->c",
		"coordinator: p->c", "coordinator: q->a", "coordinator: w->a", "coordinator: p->a",
		"cohort: q->w", "cohort: w->p",
		"cohort: q->a", "cohort: w->a", "cohort: p->a",
		"cohort: q->c", "cohort: w->c", "cohort: p->c",
	}
	got := map[string]bool{}
	for _, e := range tpc.Edges {
		got[e.String()] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("edge %s not extracted; have %v", w, tpc.Edges)
		}
	}
	if len(got) != len(want) {
		t.Errorf("extracted %d distinct edges, want %d: %v", len(got), len(want), tpc.Edges)
	}
	for _, name := range []string{"txn", "election", "broadcast", "consensus", "detector"} {
		if _, ok := rep.Machines[name]; !ok {
			t.Errorf("machine %s not extracted", name)
		}
	}
}

// TestFSMCleanFixture pins that a fully annotated, fully handled toy
// protocol produces zero findings.
func TestFSMCleanFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "fsmclean")
	rep, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	toy, ok := rep.Machines["toy"]
	if !ok {
		t.Fatal("no toy machine extracted")
	}
	if len(toy.Edges) != 2 {
		t.Errorf("toy edges = %v, want i->b and b->i", toy.Edges)
	}
}

// TestFSMBadFixture pins that every seeded mutation class — deleted
// handler arm, silent drops, duplicate wire value, cross-role case, dead
// state and kind, unresolvable emit argument, malformed directives, and a
// non-total codec — is caught, each exactly where its want comment says.
func TestFSMBadFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "fsmbad")
	_, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if len(diags) == 0 {
		t.Fatal("fsmbad fixture produced no diagnostics")
	}
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	for _, r := range []string{RuleExhaustive, RuleSilentDrop, RuleDeterminism, RuleDead, RuleCodec, RuleExtract} {
		if !rules[r] {
			t.Errorf("fixture does not exercise rule %s", r)
		}
	}
}

// TestCrossValidateRejectsNonModelEdge drives crossValidate directly with
// a machine whose edge set contains a transition no model variant allows,
// one justified divergence, and one stale justification.
func TestCrossValidateRejectsNonModelEdge(t *testing.T) {
	x := newExtractor(nil)
	m := x.machine("tpc")
	m.Edges = []Edge{
		{Role: "coordinator", From: "a", To: "c"}, // abort->commit: never in any model
		{Role: "cohort", From: "q", To: "c"},      // justified below
	}
	m.Extras = []*ModelExtra{
		{Machine: "tpc", Role: "cohort", From: "q", To: "c", Reason: "test"},
		{Machine: "tpc", Role: "cohort", From: "q", To: "w", Reason: "stale: model has it"},
	}
	x.crossValidate(m)
	if m.ModelEdges == nil {
		t.Fatal("model relation was not attached")
	}
	var bogus, stale int
	for _, d := range x.diags {
		if d.Rule != RuleModel {
			t.Errorf("unexpected rule %s: %s", d.Rule, d)
		}
		switch {
		case strings.Contains(d.Message, "coordinator: a->c"):
			bogus++
		case strings.Contains(d.Message, "stale") && strings.Contains(d.Message, "q->w"):
			stale++
		default:
			t.Errorf("unexpected fsm-model finding: %s", d)
		}
	}
	if bogus != 1 {
		t.Errorf("expected exactly one non-model-edge finding, got %d (%v)", bogus, x.diags)
	}
	if stale != 1 {
		t.Errorf("expected exactly one stale-justification finding, got %d (%v)", stale, x.diags)
	}
}
