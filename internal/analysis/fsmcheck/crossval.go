package fsmcheck

import (
	"fmt"
	"go/token"
	"sort"

	"speccat/internal/analysis"
	"speccat/internal/mc"
)

// This file cross-validates extracted machines against the abstract
// transition relations of internal/mc. The invariant is sub-relation
// inclusion: every transition the implementation can emit must exist in
// the model (so the model checker's guarantees cover the code), except for
// edges carrying a checked-in //fsm:model-extra justification. Stale
// justifications — for edges the model does contain, or the sources no
// longer produce — are findings too, so the alias map cannot rot.

// modelRelation returns the abstract per-site relation for a machine, or
// ok=false when no model is registered for it.
func modelRelation(machine string) ([]Edge, bool, error) {
	if machine != "tpc" {
		return nil, false, nil
	}
	// Union over the commit-protocol variants and scheduling modes the
	// model checker explores: the implementation multiplexes 3PC, the
	// naive-timeout ablation and the 2PC baseline behind one engine, so
	// its static edge set is compared against everything the abstraction
	// allows under any of them. Recovery is on — the failure transitions
	// (w->a, p->c on restart) are part of the protocol.
	set := map[[3]string]bool{}
	for _, v := range []mc.Variant{mc.Model3PC, mc.Model3PCNaive, mc.Model2PC} {
		for _, lockstep := range []bool{false, true} {
			edges, err := mc.Edges(v, 2, 2, mc.ModelOptions{Lockstep: lockstep, AllowRecovery: true})
			if err != nil {
				return nil, true, fmt.Errorf("fsmcheck: model relation for %s: %w", machine, err)
			}
			for _, e := range edges {
				set[[3]string{e.Role, string(e.From), string(e.To)}] = true
			}
		}
	}
	out := make([]Edge, 0, len(set))
	for k := range set {
		out = append(out, Edge{Role: k[0], From: k[1], To: k[2]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out, true, nil
}

// crossValidate checks one machine's extracted edges for sub-relation
// inclusion in its abstract model, modulo the //fsm:model-extra set.
func (x *extractor) crossValidate(m *Machine) {
	rel, ok, err := modelRelation(m.Name)
	if err != nil {
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     firstPos(m),
			Rule:    RuleModel,
			Message: err.Error(),
		})
		return
	}
	if !ok {
		return
	}
	m.ModelEdges = rel
	relSet := map[[3]string]bool{}
	for _, e := range rel {
		relSet[e.key()] = true
	}
	extras := map[[3]string]*ModelExtra{}
	for _, ex := range m.Extras {
		extras[[3]string{ex.Role, ex.From, ex.To}] = ex
	}
	for _, e := range m.Edges {
		if relSet[e.key()] {
			continue
		}
		if ex, justified := extras[e.key()]; justified {
			ex.used = true
			continue
		}
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     e.Pos,
			Rule:    RuleModel,
			Message: fmt.Sprintf("extracted edge %s is not in the abstract model's relation; a legitimate divergence needs a //fsm:model-extra justification", e),
		})
	}
	for _, ex := range m.Extras {
		if ex.used {
			continue
		}
		key := [3]string{ex.Role, ex.From, ex.To}
		reason := "the sources no longer produce that edge"
		if relSet[key] {
			reason = "the model's relation now contains that edge"
		}
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     ex.Pos,
			Rule:    RuleModel,
			Message: fmt.Sprintf("stale //fsm:model-extra for %s: %s->%s: %s; remove the justification", ex.Role, ex.From, ex.To, reason),
		})
	}
}

// firstPos anchors machine-level findings on the first declared state or
// kind.
func firstPos(m *Machine) token.Position {
	if len(m.States) > 0 {
		return m.States[0].Pos
	}
	if len(m.Kinds) > 0 {
		return m.Kinds[0].Pos
	}
	return token.Position{}
}
