// Package fsmbad seeds one instance of every fsmcheck mutation class the
// analyzer must catch: a deleted handler arm, a silently dropping default
// and payload assert, a duplicated wire value, a cross-role case, dead
// states and kinds, an unresolvable emit argument, malformed directives,
// and a codec that is not total. The want comments pin the findings.
package fsmbad

// Msg is the toy wire message.
type Msg struct {
	Kind    string
	Payload any
}

// State is the toy protocol state.
type State int

// Toy protocol states. StateGone appears in no transition.
const (
	StateIdle State = iota + 1 //fsm:state bad i
	StateBusy                  //fsm:state bad b
	StateGone                  //fsm:state bad g // want `fsm-dead: state StateGone \(g\) of machine bad appears in no extracted transition`
)

// Wire kinds. kindPing lost its handler arm, kindEcho duplicates
// kindPing's wire value, kindLost is never produced, and the peer role has
// no handler at all.
const (
	kindPing  = "bad.ping" //fsm:msg bad node
	kindEcho  = "bad.ping" //fsm:msg bad node // want `fsm-determinism: kind kindEcho shares wire value "bad.ping" with kindPing`
	kindLost  = "bad.lost" //fsm:msg bad node // want `fsm-dead: kind kindLost of machine bad is consumed but never produced`
	kindPeer  = "bad.peer" //fsm:msg bad peer // want `fsm-exhaustive: kind kindPeer: no ..fsm:handler for role "peer" of machine bad consumes it`
	kindOther = "bad.meta" //fsm:msg bad watcher
)

type echoMsg struct{}

// Node is the toy engine.
type Node struct {
	state State
}

//fsm:frobnicate all the things // want `fsm-extract: unknown directive ..fsm:frobnicate`

//fsm:ignore // want `fsm-extract: ..fsm:ignore needs a reason`

//fsm:state bad z // want `fsm-extract: ..fsm:state is not attached to a declaration`

// emit records one transition.
//
//fsm:emit bad node
func (n *Node) emit(from, to State) { n.state = to }

// Handle is the node role's terminal handler: its kindPing arm was
// deleted, its default drops silently, and a failed payload assert
// returns bare.
//
//fsm:handler bad node
func (n *Node) Handle(m Msg) { // want `fsm-exhaustive: handler Handle does not handle declared kind kindPing`
	switch m.Kind {
	case kindEcho:
		e, ok := m.Payload.(echoMsg)
		if !ok {
			return // want `fsm-silent-drop: handler Handle drops a message with an undecodable payload without accounting`
		}
		n.onEcho(e)
	case kindLost:
		n.onLost()
	case kindOther: // want `fsm-determinism: kind kindOther is declared for role "watcher" but consumed by "node" handler Handle`
		n.onLost()
	default:
		return // want `fsm-silent-drop: terminal handler Handle drops unknown kinds without accounting in its default`
	}
}

// Watch is the watcher role's demux handler; declining is fine here.
//
//fsm:handler bad watcher
func (n *Node) Watch(m Msg) bool {
	switch m.Kind {
	case kindOther:
		return true
	}
	return false
}

// onEcho transitions with an unconstrained dynamic from-state.
func (n *Node) onEcho(echoMsg) {
	n.emit(n.state, StateBusy) // want `fsm-extract: cannot determine the from-states of this bad transition`
}

// onLost enters the busy state from idle.
func (n *Node) onLost() {
	if n.state != StateIdle {
		return
	}
	n.emit(StateIdle, StateBusy)
}

// send builds an outbound message.
func send(kind string, payload any) Msg { return Msg{Kind: kind, Payload: payload} }

// Probe produces every kind except kindLost.
func Probe() []Msg {
	return []Msg{
		send(kindPing, nil),
		send(kindEcho, echoMsg{}),
		send(kindPeer, nil),
		send(kindOther, nil),
	}
}

// String encodes the state; StateGone's case is deliberately missing.
//
//fsm:encode bad
func (s State) String() string { // want `fsm-codec: constant StateGone of .*State has no case in encoder String`
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	}
	return "unknown"
}

// ParseState decodes a state; "busy" is not decoded and unknown bytes
// silently alias to StateIdle.
//
//fsm:decode bad
func ParseState(v string) (State, error) { // want `fsm-codec: encoding "busy" \(for StateBusy\) has no case in decoder ParseState` `fsm-codec: decoder ParseState maps unknown input to a constant instead of returning an error`
	switch v {
	case "idle":
		return StateIdle, nil
	default:
		return StateIdle, nil
	}
}
