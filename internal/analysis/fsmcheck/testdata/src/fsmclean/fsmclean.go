// Package fsmclean is a zero-finding fsmcheck fixture: a complete
// two-state toy protocol exercising every annotation — state and msg
// constants, a terminal handler with full dispatch and accounted drops, an
// emit function resolved through constants, a trailing alias annotation
// and a dominating guard, and a total encode/decode pair whose decoder
// errors on unknown input.
package fsmclean

import "errors"

// Msg is the toy wire message.
type Msg struct {
	Kind    string
	Payload any
}

// State is the toy protocol state.
type State int

// Toy protocol states.
const (
	StateIdle State = iota + 1 //fsm:state toy i
	StateBusy                  //fsm:state toy b
)

// Wire kinds of the toy protocol.
const (
	kindGo   = "toy.go"   //fsm:msg toy server
	kindStop = "toy.stop" //fsm:msg toy server
)

type goMsg struct{}

// ErrState is returned for undecodable stored states.
var ErrState = errors.New("fsmclean: unknown state")

// Server runs the toy machine.
type Server struct {
	state State
	trace []string
	drops int
}

// emit records one transition.
//
//fsm:emit toy server
func (s *Server) emit(from, to State) {
	s.trace = append(s.trace, from.String()+"->"+to.String())
	s.state = to
}

// Handle applies one message; unknown traffic and undecodable payloads are
// counted, never silently dropped.
//
//fsm:handler toy server
func (s *Server) Handle(m Msg) {
	switch m.Kind {
	case kindGo:
		g, ok := m.Payload.(goMsg)
		if !ok {
			s.drops++
			return
		}
		s.onGo(g)
	case kindStop:
		s.onStop()
	default:
		s.drops++
	}
}

// onGo starts work from the idle state.
func (s *Server) onGo(goMsg) {
	if s.state != StateIdle {
		return
	}
	s.emit(StateIdle, StateBusy)
}

// onStop returns to idle; the dynamic from-state is pinned both by the
// guard and by the trailing annotation.
func (s *Server) onStop() {
	if s.state == StateIdle {
		return
	}
	s.emit(s.state, StateIdle) //fsm:from b
}

// Go builds the start message.
func (s *Server) Go() Msg { return s.send(kindGo, goMsg{}) }

// Stop builds the stop message.
func (s *Server) Stop() Msg { return s.send(kindStop, nil) }

// send builds an outbound message.
func (s *Server) send(kind string, payload any) Msg {
	return Msg{Kind: kind, Payload: payload}
}

// String encodes the state for stable storage.
//
//fsm:encode toy
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	}
	return "unknown"
}

// ParseState decodes a stored state, erroring on corrupt bytes.
//
//fsm:decode toy
func ParseState(v string) (State, error) {
	switch v {
	case "idle":
		return StateIdle, nil
	case "busy":
		return StateBusy, nil
	default:
		return 0, ErrState
	}
}
