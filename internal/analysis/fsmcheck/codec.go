package fsmcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"

	"speccat/internal/analysis"
)

// This file implements the codec-totality half of fsmcheck: every
// //fsm:encode switch must cover every constant of its type, every string
// it produces must round-trip through the matching //fsm:decode, and the
// decoder's default must surface an error instead of aliasing unknown
// bytes to a constant (the silent-corruption bug class the tpc sentinel
// errors removed).

// bindEncode registers a constant->string encoder. It must be a method;
// the constant set checked for totality is the receiver type's.
func (x *extractor) bindEncode(pkg *analysis.Package, fn *ast.FuncDecl, c *ast.Comment, d directive) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:encode must annotate a method on the encoded type")
		return
	}
	typ := pkg.Info.TypeOf(fn.Recv.List[0].Type)
	if typ == nil {
		return
	}
	half := &codecHalf{
		machine: d.args[0], typ: typ, pkg: pkg,
		pos: pkg.Fset.Position(fn.Name.Pos()), name: fn.Name.Name,
		mapping: map[string]string{},
	}
	sw := firstSwitch(fn)
	if sw == nil {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:encode function %s has no switch to extract", fn.Name.Name)
		return
	}
	for _, s := range sw.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue
		}
		lit, ok := returnedString(pkg, cc.Body)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			obj := constObjOf(pkg, e)
			if cnst, isConst := obj.(*types.Const); isConst {
				if _, dup := half.mapping[cnst.Name()]; !dup {
					half.mapping[cnst.Name()] = lit
					half.order = append(half.order, cnst.Name())
				}
			}
		}
	}
	x.encodes = append(x.encodes, half)
}

// bindDecode registers a string->constant decoder. Its result type pairs
// it with the encoder.
func (x *extractor) bindDecode(pkg *analysis.Package, fn *ast.FuncDecl, c *ast.Comment, d directive) {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:decode must annotate a function returning the decoded type")
		return
	}
	typ := pkg.Info.TypeOf(fn.Type.Results.List[0].Type)
	if typ == nil {
		return
	}
	half := &codecHalf{
		machine: d.args[0], typ: typ, pkg: pkg,
		pos: pkg.Fset.Position(fn.Name.Pos()), name: fn.Name.Name,
		mapping: map[string]string{},
	}
	sw := firstSwitch(fn)
	if sw == nil {
		x.reportf(pkg, c.Pos(), RuleExtract, "//fsm:decode function %s has no switch to extract", fn.Name.Name)
		return
	}
	for _, s := range sw.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			half.hasDefault = true
			half.defaultErr = returnsError(pkg, cc.Body)
			continue
		}
		name, ok := returnedConst(pkg, cc.Body, typ)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if tv, isTV := pkg.Info.Types[e]; isTV && tv.Value != nil && tv.Value.Kind() == constant.String {
				lit := constant.StringVal(tv.Value)
				if _, dup := half.mapping[lit]; !dup {
					half.mapping[lit] = name
					half.order = append(half.order, lit)
				}
			}
		}
	}
	x.decodes = append(x.decodes, half)
}

// firstSwitch finds the function's top-level tagged switch.
func firstSwitch(fn *ast.FuncDecl) *ast.SwitchStmt {
	if fn.Body == nil {
		return nil
	}
	for _, s := range fn.Body.List {
		if sw, ok := s.(*ast.SwitchStmt); ok && sw.Tag != nil {
			return sw
		}
	}
	return nil
}

// returnedString extracts the string constant a case body returns.
func returnedString(pkg *analysis.Package, body []ast.Stmt) (string, bool) {
	for _, s := range body {
		r, ok := s.(*ast.ReturnStmt)
		if !ok || len(r.Results) == 0 {
			continue
		}
		if tv, ok := pkg.Info.Types[r.Results[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}

// returnedConst extracts the name of the typ-typed constant a case body
// returns as its first result.
func returnedConst(pkg *analysis.Package, body []ast.Stmt, typ types.Type) (string, bool) {
	for _, s := range body {
		r, ok := s.(*ast.ReturnStmt)
		if !ok || len(r.Results) == 0 {
			continue
		}
		obj := constObjOf(pkg, r.Results[0])
		if cnst, ok := obj.(*types.Const); ok && types.Identical(cnst.Type(), typ) {
			return cnst.Name(), true
		}
	}
	return "", false
}

// returnsError reports whether a default clause returns a non-nil error as
// its last result (as opposed to silently yielding a constant).
func returnsError(pkg *analysis.Package, body []ast.Stmt) bool {
	for _, s := range body {
		r, ok := s.(*ast.ReturnStmt)
		if !ok || len(r.Results) == 0 {
			continue
		}
		last := r.Results[len(r.Results)-1]
		if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	}
	return false
}

// pairCodecs matches encoders to decoders by Go type and runs the
// totality checks.
func (x *extractor) pairCodecs() {
	usedDecode := make([]bool, len(x.decodes))
	for _, enc := range x.encodes {
		var dec *codecHalf
		for i, d := range x.decodes {
			if !usedDecode[i] && types.Identical(d.typ, enc.typ) {
				dec = d
				usedDecode[i] = true
				break
			}
		}
		m := x.machine(enc.machine)
		codec := &Codec{
			Machine:   enc.machine,
			TypeName:  enc.typ.String(),
			EncodePos: enc.pos,
			Encodes:   enc.mapping,
			Decodes:   map[string]string{},
			Consts:    constsOfType(enc.pkg, enc.typ),
		}
		m.Codecs = append(m.Codecs, codec)
		if dec == nil {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     enc.pos,
				Rule:    RuleCodec,
				Message: "encoder " + enc.name + " has no matching //fsm:decode for type " + codec.TypeName,
			})
			continue
		}
		codec.DecodePos = dec.pos
		codec.Decodes = dec.mapping
		x.checkCodec(codec, enc, dec)
	}
	for i, d := range x.decodes {
		if !usedDecode[i] {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     d.pos,
				Rule:    RuleCodec,
				Message: "decoder " + d.name + " has no matching //fsm:encode for type " + d.typ.String(),
			})
		}
	}
}

// checkCodec enforces totality and round-trip consistency on one pair.
func (x *extractor) checkCodec(codec *Codec, enc, dec *codecHalf) {
	for _, name := range codec.Consts {
		if _, ok := enc.mapping[name]; !ok {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     enc.pos,
				Rule:    RuleCodec,
				Message: "constant " + name + " of " + codec.TypeName + " has no case in encoder " + enc.name,
			})
		}
	}
	for _, name := range enc.order {
		lit := enc.mapping[name]
		back, ok := dec.mapping[lit]
		if !ok {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     dec.pos,
				Rule:    RuleCodec,
				Message: "encoding " + strconvQuote(lit) + " (for " + name + ") has no case in decoder " + dec.name,
			})
			continue
		}
		if back != name {
			x.diags = append(x.diags, analysis.Diagnostic{
				Pos:     dec.pos,
				Rule:    RuleCodec,
				Message: "encoding " + strconvQuote(lit) + " of " + name + " decodes to " + back + "; the pair does not round-trip",
			})
		}
	}
	if !dec.hasDefault || !dec.defaultErr {
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     dec.pos,
			Rule:    RuleCodec,
			Message: "decoder " + dec.name + " maps unknown input to a constant instead of returning an error",
		})
	}
}

func strconvQuote(s string) string { return `"` + s + `"` }

// constsOfType lists the constants of typ declared in the package, in
// source order.
func constsOfType(pkg *analysis.Package, typ types.Type) []string {
	type entry struct {
		name string
		pos  int
	}
	var entries []entry
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if cnst, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(cnst.Type(), typ) {
			entries = append(entries, entry{name: name, pos: int(cnst.Pos())})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.name
	}
	return out
}
