package commcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// directive is one parsed //comm:<verb> annotation.
type directive struct {
	verb string
	args []string
	// rest is the raw argument text (reason-bearing verbs keep spaces).
	rest string
	pos  token.Position
}

// parseLine extracts the comm: directives of one comment line. Like the
// other layers, the comment must BEGIN with a directive; segments split
// on "//" so one trailing comment can carry directives of several layers.
func parseLine(text string, pos token.Position) []directive {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "comm:") {
		return nil
	}
	var out []directive
	for _, seg := range strings.Split(body, "//") {
		seg = strings.TrimSpace(seg)
		rest, ok := strings.CutPrefix(seg, "comm:")
		if !ok {
			continue
		}
		verb, args, _ := strings.Cut(rest, " ")
		args = strings.TrimSpace(args)
		out = append(out, directive{
			verb: verb,
			args: strings.Fields(args),
			rest: args,
			pos:  pos,
		})
	}
	return out
}

// opDecl is one //comm:op-annotated function.
type opDecl struct {
	pkg   *analysis.Package
	fn    *ast.FuncDecl
	class string
	name  string
	pos   token.Position
}

// matrixDecl is one //comm:matrix-annotated compatibility matrix.
type matrixDecl struct {
	pkg  *analysis.Package
	file string
	lit  *ast.CompositeLit
	pos  token.Position
}

type extractor struct {
	pkgs    []*analysis.Package
	diags   []analysis.Diagnostic
	ignored map[string]map[int]bool

	// classVal maps each //comm:mode-bound class to its mode constant's
	// value; classConst to the constant's name; modeClass inverts classVal.
	classVal   map[string]int64
	classConst map[string]string
	modeClass  map[int64]string

	ops      []opDecl
	matrices []matrixDecl
}

func newExtractor(pkgs []*analysis.Package) *extractor {
	return &extractor{
		pkgs:       pkgs,
		ignored:    map[string]map[int]bool{},
		classVal:   map[string]int64{},
		classConst: map[string]string{},
		modeClass:  map[int64]string{},
	}
}

func (x *extractor) extract() *Report {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.extractFile(pkg, f)
		}
	}
	rep := &Report{
		Classes: map[string]string{},
		Ops:     map[string]string{},
	}
	for c, name := range x.classConst {
		rep.Classes[c] = name
	}
	// Validate op classes now that every //comm:mode is collected.
	classes := x.classes()
	for _, op := range x.ops {
		if _, ok := x.classVal[op.class]; !ok {
			x.reportf(op.pos, RuleExtract,
				"//comm:op names unknown class %q (no //comm:mode binds it; known: %s)",
				op.class, strings.Join(classes, ", "))
			continue
		}
		rep.Ops[op.name] = op.class
	}
	// Derive the reference matrix from each annotated spec and compare.
	var derived *DerivedMatrix
	for _, md := range x.matrices {
		rep.Matrices = append(rep.Matrices, md.file)
		d := x.checkMatrix(md, classes, rep)
		if d != nil {
			rep.Proofs += d.Proofs
			derived = d
		}
	}
	// Check every Acquire site of every annotated op against its class.
	for _, op := range x.ops {
		if _, ok := x.classVal[op.class]; !ok {
			continue // already reported above
		}
		x.checkOp(op, derived, classes, rep)
	}
	return rep
}

// extractFile collects the directives of one file: attachment points
// first (function docs, constant trailing comments, var docs), then a
// sweep over all comment groups that registers ignores and reports
// unattached or malformed directives.
func (x *extractor) extractFile(pkg *analysis.Package, f *ast.File) {
	claimed := map[*ast.CommentGroup]bool{}
	claim := func(cg *ast.CommentGroup) []directive {
		if cg == nil || claimed[cg] {
			return nil
		}
		claimed[cg] = true
		var out []directive
		for _, c := range cg.List {
			out = append(out, parseLine(c.Text, pkg.Fset.Position(c.Pos()))...)
		}
		return out
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			for _, dir := range claim(d.Doc) {
				x.attachFunc(pkg, d, dir)
			}
		case *ast.GenDecl:
			for _, dir := range claim(d.Doc) {
				x.attachGen(pkg, d, dir)
			}
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, dir := range claim(vs.Doc) {
					x.attachSpec(pkg, d, vs, dir)
				}
				for _, dir := range claim(vs.Comment) {
					x.attachSpec(pkg, d, vs, dir)
				}
			}
		}
	}

	for _, cg := range f.Comments {
		if claimed[cg] {
			continue
		}
		for _, c := range cg.List {
			for _, dir := range parseLine(c.Text, pkg.Fset.Position(c.Pos())) {
				switch dir.verb {
				case "ignore":
					x.registerIgnore(dir)
				case "op", "mode", "matrix":
					x.reportf(dir.pos, RuleExtract,
						"unattached //comm:%s directive (op goes in a function doc, mode trails a Mode constant, matrix goes in the matrix var's doc)", dir.verb)
				default:
					x.reportf(dir.pos, RuleExtract, "unknown directive //comm:%s", dir.verb)
				}
			}
		}
	}
}

// attachFunc handles directives in a function's doc comment.
func (x *extractor) attachFunc(pkg *analysis.Package, fn *ast.FuncDecl, dir directive) {
	switch dir.verb {
	case "op":
		if len(dir.args) != 1 {
			x.reportf(dir.pos, RuleExtract, "//comm:op wants exactly one class argument")
			return
		}
		name := fn.Name.Name
		if fn.Recv != nil && len(fn.Recv.List) == 1 {
			t := fn.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		x.ops = append(x.ops, opDecl{
			pkg: pkg, fn: fn, class: dir.args[0], name: name,
			pos: pkg.Fset.Position(fn.Pos()),
		})
	case "ignore":
		x.registerIgnore(dir)
	default:
		x.reportf(dir.pos, RuleExtract, "//comm:%s does not belong in a function doc (want //comm:op)", dir.verb)
	}
}

// attachGen handles directives in a GenDecl's doc comment (the var form
// of the matrix declaration).
func (x *extractor) attachGen(pkg *analysis.Package, d *ast.GenDecl, dir directive) {
	if d.Tok == token.VAR && len(d.Specs) == 1 {
		if vs, ok := d.Specs[0].(*ast.ValueSpec); ok {
			x.attachSpec(pkg, d, vs, dir)
			return
		}
	}
	if dir.verb == "ignore" {
		x.registerIgnore(dir)
		return
	}
	x.reportf(dir.pos, RuleExtract, "//comm:%s directive on an unsupported declaration", dir.verb)
}

// attachSpec handles directives attached to one const/var spec.
func (x *extractor) attachSpec(pkg *analysis.Package, d *ast.GenDecl, vs *ast.ValueSpec, dir directive) {
	switch dir.verb {
	case "mode":
		if d.Tok != token.CONST {
			x.reportf(dir.pos, RuleExtract, "//comm:mode must trail a Mode constant declaration")
			return
		}
		if len(dir.args) != 1 {
			x.reportf(dir.pos, RuleExtract, "//comm:mode wants exactly one class argument")
			return
		}
		if len(vs.Names) != 1 {
			x.reportf(dir.pos, RuleExtract, "//comm:mode must trail a single-constant declaration")
			return
		}
		obj, ok := pkg.Info.Defs[vs.Names[0]].(*types.Const)
		if !ok {
			x.reportf(dir.pos, RuleExtract, "//comm:mode on %s: not a constant", vs.Names[0].Name)
			return
		}
		val, ok := constant.Int64Val(obj.Val())
		if !ok {
			x.reportf(dir.pos, RuleExtract, "//comm:mode on %s: not an integer mode", vs.Names[0].Name)
			return
		}
		class := dir.args[0]
		if prev, dup := x.classVal[class]; dup && prev != val {
			x.reportf(dir.pos, RuleExtract,
				"class %s bound to conflicting modes (%s=%d vs %s=%d)",
				class, x.classConst[class], prev, vs.Names[0].Name, val)
			return
		}
		if prevClass, dup := x.modeClass[val]; dup && prevClass != class {
			x.reportf(dir.pos, RuleExtract,
				"mode %s already bound to class %s", vs.Names[0].Name, prevClass)
			return
		}
		x.classVal[class] = val
		x.classConst[class] = vs.Names[0].Name
		x.modeClass[val] = class
	case "matrix":
		if len(dir.args) != 1 {
			x.reportf(dir.pos, RuleExtract, "//comm:matrix wants exactly one spec-file argument")
			return
		}
		if len(vs.Values) != 1 {
			x.reportf(dir.pos, RuleExtract, "//comm:matrix must annotate a single matrix literal")
			return
		}
		lit, ok := vs.Values[0].(*ast.CompositeLit)
		if !ok {
			x.reportf(dir.pos, RuleExtract, "//comm:matrix value must be a map composite literal")
			return
		}
		x.matrices = append(x.matrices, matrixDecl{
			pkg: pkg, file: dir.args[0], lit: lit,
			pos: pkg.Fset.Position(vs.Pos()),
		})
	case "ignore":
		x.registerIgnore(dir)
	default:
		x.reportf(dir.pos, RuleExtract, "//comm:%s does not belong on a declaration (want mode or matrix)", dir.verb)
	}
}

// registerIgnore records a reasoned suppression covering its own and the
// next line; a reasonless ignore is itself a finding.
func (x *extractor) registerIgnore(dir directive) {
	if dir.rest == "" {
		x.reportf(dir.pos, RuleExtract, "//comm:ignore needs a reason")
		return
	}
	lines := x.ignored[dir.pos.Filename]
	if lines == nil {
		lines = map[int]bool{}
		x.ignored[dir.pos.Filename] = lines
	}
	lines[dir.pos.Line] = true
	lines[dir.pos.Line+1] = true
}

// classes returns the annotated class names, sorted.
func (x *extractor) classes() []string {
	out := make([]string, 0, len(x.classVal))
	for c := range x.classVal {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// checkMatrix derives the reference matrix from the annotated spec file
// and compares the Go literal against it, ordered entry by ordered entry.
func (x *extractor) checkMatrix(md matrixDecl, classes []string, rep *Report) *DerivedMatrix {
	src, err := os.ReadFile(filepath.Join(md.pkg.Dir, filepath.FromSlash(md.file)))
	if err != nil {
		x.reportf(md.pos, RuleExtract, "//comm:matrix spec unreadable: %v", err)
		return nil
	}
	derived, err := Derive(string(src), classes)
	if err != nil {
		x.reportf(md.pos, RuleExtract, "//comm:matrix spec %s: %v", md.file, err)
		return nil
	}
	gm, ok := x.goMatrix(md)
	if !ok {
		return derived
	}
	for _, a := range classes {
		for _, b := range classes {
			rep.Entries++
			g := gm[x.classVal[a]][x.classVal[b]]
			e := derived.Compatible[a][b]
			switch {
			case g && !e:
				x.reportf(md.pos, RuleMatrix,
					"matrix marks (%s, %s) compatible but %s has no discharged Safe theorem for the pair",
					a, b, md.file)
			case !g && e:
				x.reportf(md.pos, RuleMatrix,
					"matrix marks (%s, %s) conflicting but %s discharges Safe%s%s",
					a, b, md.file, a, b)
			}
		}
	}
	return derived
}

// goMatrix evaluates the matrix composite literal into mode-value form.
func (x *extractor) goMatrix(md matrixDecl) (map[int64]map[int64]bool, bool) {
	out := map[int64]map[int64]bool{}
	for _, elt := range md.lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			x.reportf(md.pos, RuleExtract, "matrix literal entry is not key: value")
			return nil, false
		}
		key, ok := x.constInt(md.pkg, kv.Key)
		if !ok {
			x.reportf(md.pkg.Fset.Position(kv.Key.Pos()), RuleExtract, "matrix key is not a constant mode")
			return nil, false
		}
		if _, bound := x.modeClass[key]; !bound {
			x.reportf(md.pkg.Fset.Position(kv.Key.Pos()), RuleExtract, "matrix key has no //comm:mode binding")
			return nil, false
		}
		row, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			x.reportf(md.pkg.Fset.Position(kv.Value.Pos()), RuleExtract, "matrix row is not a map literal")
			return nil, false
		}
		if out[key] == nil {
			out[key] = map[int64]bool{}
		}
		for _, relt := range row.Elts {
			rkv, ok := relt.(*ast.KeyValueExpr)
			if !ok {
				x.reportf(md.pkg.Fset.Position(relt.Pos()), RuleExtract, "matrix row entry is not key: value")
				return nil, false
			}
			rkey, ok := x.constInt(md.pkg, rkv.Key)
			if !ok {
				x.reportf(md.pkg.Fset.Position(rkv.Key.Pos()), RuleExtract, "matrix row key is not a constant mode")
				return nil, false
			}
			if _, bound := x.modeClass[rkey]; !bound {
				x.reportf(md.pkg.Fset.Position(rkv.Key.Pos()), RuleExtract, "matrix row key has no //comm:mode binding")
				return nil, false
			}
			tv, defined := md.pkg.Info.Types[rkv.Value]
			if !defined || tv.Value == nil || tv.Value.Kind() != constant.Bool {
				x.reportf(md.pkg.Fset.Position(rkv.Value.Pos()), RuleExtract, "matrix entry is not a boolean constant")
				return nil, false
			}
			out[key][rkey] = constant.BoolVal(tv.Value)
		}
	}
	return out, true
}

// constInt resolves an expression to its integer constant value.
func (x *extractor) constInt(pkg *analysis.Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// checkOp walks one annotated op function and checks every
// locking.Manager.Acquire call's mode against the op's class.
func (x *extractor) checkOp(op opDecl, derived *DerivedMatrix, classes []string, rep *Report) {
	if op.fn.Body == nil {
		return
	}
	required := x.classVal[op.class]
	ast.Inspect(op.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !x.isAcquire(op.pkg, call) {
			return true
		}
		rep.AcquireSites++
		pos := op.pkg.Fset.Position(call.Pos())
		mode, isConst := x.constInt(op.pkg, call.Args[2])
		if !isConst {
			x.reportf(pos, RuleExtract,
				"non-constant lock mode in %s-class op %s; commcheck cannot verify it", op.class, op.name)
			return true
		}
		if mode == required {
			return true
		}
		modeClass, bound := x.modeClass[mode]
		if !bound {
			x.reportf(pos, RuleExtract,
				"%s acquires a mode with no //comm:mode binding", op.name)
			return true
		}
		if derived == nil {
			x.reportf(pos, RuleExtract,
				"%s acquires %s for class %s but no //comm:matrix spec is available to judge it",
				op.name, x.classConst[modeClass], op.class)
			return true
		}
		if derived.protects(modeClass, op.class, classes) {
			x.reportf(pos, RuleOverlock,
				"%s-class op %s acquires %s; the discharged matrix licenses %s (overlocking forfeits the proved commutativity)",
				op.class, op.name, x.classConst[modeClass], x.classConst[op.class])
			return true
		}
		witness := ""
		for _, d := range classes {
			if derived.Compatible[modeClass][d] && !derived.Compatible[op.class][d] {
				witness = d
				break
			}
		}
		x.reportf(pos, RuleUnderlock,
			"%s-class op %s acquires %s, which admits concurrent %s-class holders that do not commute with %s",
			op.class, op.name, x.classConst[modeClass], witness, op.class)
		return true
	})
}

// isAcquire recognizes calls to locking.Manager.Acquire (by type, so
// embedding and fixture aliases resolve correctly).
func (x *extractor) isAcquire(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" || len(call.Args) != 4 {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/locking")
}
