package commcheck

import (
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// loadRepo loads this repository's internal tree.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoIsCommClean is the acceptance criterion: the repository's own
// lock matrix matches the prover-discharged spec and every annotated
// KV operation acquires the mode its commutativity class requires — and
// the analysis demonstrably covered them (five bound classes, a compared
// matrix with discharged proofs, annotated ops with real Acquire sites;
// a clean run over nothing would prove nothing).
func TestRepoIsCommClean(t *testing.T) {
	rep, diags := Run(loadRepo(t))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	for class, wantConst := range map[string]string{
		"read":   "Read",
		"write":  "Write",
		"inc":    "IncMode",
		"append": "AppendMode",
		"setins": "SetInsMode",
	} {
		if got := rep.Classes[class]; got != wantConst {
			t.Errorf("class %s bound to %q, want %q", class, got, wantConst)
		}
	}
	if len(rep.Matrices) != 1 || rep.Matrices[0] != "comm.sw" {
		t.Errorf("Matrices = %v, want exactly the locking matrix", rep.Matrices)
	}
	if rep.Proofs != 4 {
		t.Errorf("Proofs = %d, want 4 discharged obligations", rep.Proofs)
	}
	if rep.Entries != 25 {
		t.Errorf("Entries = %d, want the full 5x5 matrix compared", rep.Entries)
	}
	for op, wantClass := range map[string]string{
		"Store.Get":       "read",
		"Store.Put":       "write",
		"Store.Increment": "inc",
		"Store.Append":    "append",
		"Store.SetInsert": "setins",
	} {
		if got := rep.Ops[op]; got != wantClass {
			t.Errorf("op %s bound to class %q, want %q", op, got, wantClass)
		}
	}
	if rep.AcquireSites < 5 {
		t.Errorf("AcquireSites = %d, want at least one checked site per annotated op", rep.AcquireSites)
	}
}

// TestCommCleanFixture pins that a fully well-formed package produces
// zero findings, with the coverage counters proving the analysis ran:
// three bound classes, a compared 3x3 matrix backed by two discharged
// proofs, four annotated ops, and a reasoned suppression on the
// deliberate recovery overlock.
func TestCommCleanFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "commclean")
	rep, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if len(rep.Classes) != 3 {
		t.Errorf("Classes = %v, want the fixture's three", rep.Classes)
	}
	if rep.Proofs != 2 || rep.Entries != 9 {
		t.Errorf("Proofs = %d, Entries = %d, want 2 and 9", rep.Proofs, rep.Entries)
	}
	if len(rep.Ops) != 4 {
		t.Errorf("Ops = %v, want the fixture's four annotated ops", rep.Ops)
	}
	if rep.AcquireSites != 4 {
		t.Errorf("AcquireSites = %d, want 4", rep.AcquireSites)
	}
}

// TestCommBadFixture pins one finding per seeded mutation class.
func TestCommBadFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "commbad")
	_, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	if counts[RuleMatrix] != 2 {
		t.Errorf("comm-matrix findings = %d, want 2 (one flip per direction)", counts[RuleMatrix])
	}
	if counts[RuleOverlock] != 2 {
		t.Errorf("comm-overlock findings = %d, want 2 (plain, and behind the reasonless ignore)", counts[RuleOverlock])
	}
	if counts[RuleUnderlock] != 1 {
		t.Errorf("comm-underlock findings = %d, want 1", counts[RuleUnderlock])
	}
	if counts[RuleExtract] != 6 {
		t.Errorf("comm-extract findings = %d, want 6 (unattached mode, unknown verb, unknown class, reasonless ignore, non-constant mode, unbound mode)", counts[RuleExtract])
	}
}

// TestDeriveRejectsUndeclaredClass pins the guard that a caller class
// with no constant in the spec fails derivation instead of silently
// deriving an all-conflicting row.
func TestDeriveRejectsUndeclaredClass(t *testing.T) {
	src := `S = spec
sort Classes
op read : Classes
endspec
`
	if _, err := Derive(src, []string{"read", "mystery"}); err == nil {
		t.Fatal("Derive accepted a class the spec never declares")
	}
}
