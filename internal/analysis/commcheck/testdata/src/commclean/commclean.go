// Package commclean exercises every commcheck annotation in its
// well-formed shape: mode constants bound to the fixture spec's classes,
// a matrix literal matching the spec's discharged theorems exactly, one
// correctly-locked op per class, and a reasoned //comm:ignore on a
// deliberate recovery-path overlock. A clean fixture must produce zero
// findings.
package commclean

import "speccat/internal/locking"

// Lock-mode aliases bound to the fixture spec's commutativity classes.
const (
	readLock  = locking.Read    //comm:mode read
	writeLock = locking.Write   //comm:mode write
	incLock   = locking.IncMode //comm:mode inc
)

// compat mirrors the fixture spec: the two discharged diagonal pairs are
// compatible, everything touching write conflicts.
//
//comm:matrix comm.sw
var compat = map[locking.Mode]map[locking.Mode]bool{
	readLock:  {readLock: true},
	writeLock: {},
	incLock:   {incLock: true},
}

// Compatible consults the matrix (keeps compat referenced).
func Compatible(a, b locking.Mode) bool { return compat[a][b] }

// Store is a toy store guarding a counter map with the lock manager.
type Store struct {
	locks *locking.Manager
	data  map[string]int
}

// Get reads a key under the shared read lock.
//
//comm:op read
func (s *Store) Get(txn, key string) int {
	s.locks.Acquire(txn, key, readLock, nil)
	return s.data[key]
}

// Put overwrites a key under the exclusive lock.
//
//comm:op write
func (s *Store) Put(txn, key string, v int) {
	s.locks.Acquire(txn, key, writeLock, nil)
	s.data[key] = v
}

// Inc adds a delta under the increment lock its class licenses.
//
//comm:op inc
func (s *Store) Inc(txn, key string, d int) {
	s.locks.Acquire(txn, key, incLock, nil)
	s.data[key] += d
}

// Rebuild replays an increment during recovery under the exclusive lock:
// a deliberate overlock, suppressed with a reason.
//
//comm:op inc
func (s *Store) Rebuild(txn, key string, d int) {
	//comm:ignore recovery replay deliberately serializes under the exclusive lock
	s.locks.Acquire(txn, key, writeLock, nil)
	s.data[key] += d
}
