// Package commbad seeds one violation per commcheck mutation class: a
// matrix entry flipped compatible without a discharged theorem, a
// discharged pair flipped conflicting, an overlocked increment, an
// underlocked write, and the comm-extract variants (unattached mode,
// unknown verb, unknown class, reasonless ignore, non-constant mode,
// unbound mode).
package commbad

import "speccat/internal/locking"

// Lock-mode aliases bound to the fixture spec's commutativity classes.
const (
	readLock  = locking.Read    //comm:mode read
	writeLock = locking.Write   //comm:mode write
	incLock   = locking.IncMode //comm:mode inc
)

//comm:mode append // want `comm-extract: unattached /+comm:mode directive`

//comm:bogus nonsense // want `comm-extract: unknown directive /+comm:bogus`

// compat diverges from the spec in both directions: (inc, write) is
// marked compatible with no commutativity argument behind it, and the
// discharged (read, read) pair is marked conflicting.
//
//comm:matrix comm.sw
var compat = map[locking.Mode]map[locking.Mode]bool{ // want `comm-matrix: matrix marks \(inc, write\) compatible but comm.sw has no discharged Safe theorem` `comm-matrix: matrix marks \(read, read\) conflicting but comm.sw discharges Safereadread`
	readLock:  {},
	writeLock: {},
	incLock:   {incLock: true, writeLock: true},
}

// Compatible consults the matrix (keeps compat referenced).
func Compatible(a, b locking.Mode) bool { return compat[a][b] }

// Store is a toy store guarding a counter map with the lock manager.
type Store struct {
	locks *locking.Manager
	data  map[string]int
}

// IncOver overlocks: the exclusive lock is safe for an increment but
// forfeits the concurrency the discharged Safeincinc proof licenses.
//
//comm:op inc
func (s *Store) IncOver(txn, key string, d int) {
	s.locks.Acquire(txn, key, writeLock, nil) // want `comm-overlock: inc-class op Store\.IncOver acquires writeLock`
	s.data[key] += d
}

// PutUnder underlocks: the increment mode admits concurrent increments
// that do not commute with an absolute overwrite.
//
//comm:op write
func (s *Store) PutUnder(txn, key string, v int) {
	s.locks.Acquire(txn, key, incLock, nil) // want `comm-underlock: write-class op Store\.PutUnder acquires incLock, which admits concurrent inc-class holders`
	s.data[key] = v
}

// Scan claims a class no //comm:mode binds.
//
//comm:op scan
func (s *Store) Scan(txn, key string) int { // want `comm-extract: //comm:op names unknown class "scan"`
	s.locks.Acquire(txn, key, readLock, nil)
	return s.data[key]
}

// IncVar passes a computed mode commcheck cannot judge statically.
//
//comm:op inc
func (s *Store) IncVar(txn, key string, d int, m locking.Mode) {
	s.locks.Acquire(txn, key, m, nil) // want `comm-extract: non-constant lock mode in inc-class op Store\.IncVar`
	s.data[key] += d
}

// IncForeign acquires a real mode the fixture never bound to a class.
//
//comm:op inc
func (s *Store) IncForeign(txn, key string, d int) {
	s.locks.Acquire(txn, key, locking.AppendMode, nil) // want `comm-extract: Store\.IncForeign acquires a mode with no //comm:mode binding`
	s.data[key] += d
}

// IncSilenced tries to suppress its overlock without giving a reason;
// the reasonless ignore is itself a finding and suppresses nothing.
//
//comm:op inc
func (s *Store) IncSilenced(txn, key string, d int) {
	//comm:ignore // want `comm-extract: /+comm:ignore needs a reason`
	s.locks.Acquire(txn, key, writeLock, nil) // want `comm-overlock: inc-class op Store\.IncSilenced acquires writeLock`
	s.data[key] += d
}
