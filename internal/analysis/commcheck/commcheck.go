// Package commcheck is the sixth static-analysis layer of speccatlint: a
// commutativity-conformance check over the lock modes of
// internal/locking. The compatibility matrix the runtime grants locks by
// is not a free design choice — every compatible pair must be backed by a
// commutativity argument ("Limits of Commutativity on Abstract Data
// Types"), stated in the paper's own idiom as a speclang spec whose
// prove obligations the resolution prover discharges (comm.sw). commcheck
// closes the loop mechanically: it re-derives the matrix from the
// discharged spec and compares the Go literal against it entry for entry,
// and it checks every lock acquisition in an annotated operation against
// the mode its commutativity class requires.
//
// Annotation grammar:
//
//	//comm:op <class>      in a function's doc: the function implements
//	                       operations of the named commutativity class;
//	                       its locking.Manager.Acquire calls are checked
//	                       against the class's //comm:mode-bound mode
//	//comm:mode <class>    trailing a Mode constant declaration: binds the
//	                       constant to a commutativity class of the spec
//	//comm:matrix <file>   in the compatibility-matrix var's doc: the map
//	                       literal is compared against the matrix derived
//	                       from the prover-discharged spec at <file>
//	                       (relative to the package directory)
//	//comm:ignore <reason> suppresses comm findings on its own and the
//	                       next line; reason mandatory
//
// Rules reported: comm-matrix (a Go matrix entry that disagrees with the
// prover-discharged spec — a pair marked compatible without a discharged
// Safe theorem, or one marked conflicting despite it), comm-overlock (an
// annotated op acquires a strictly stronger mode than its class requires
// — safe, but it forfeits exactly the concurrency the discharged proofs
// license), comm-underlock (an annotated op acquires a mode that admits
// concurrent operations not commuting with it — the unsafe direction),
// and comm-extract (malformed or unattached directives, unknown classes,
// non-constant lock modes in annotated ops, unreadable or undischargeable
// specs).
//
// Static findings are cross-validated dynamically: experiment E18 runs
// the commutative workload mix under the fault-schedule explorer, where
// the serializability oracle holds with the derived modes and fails on a
// seeded comm-underlock ablation (kvstore.Store.PutUnderlocked).
package commcheck

import (
	"fmt"
	"go/token"
	"sort"

	"speccat/internal/analysis"
)

// Rule names reported by this layer.
const (
	RuleMatrix    = "comm-matrix"
	RuleOverlock  = "comm-overlock"
	RuleUnderlock = "comm-underlock"
	RuleExtract   = "comm-extract"
)

// Report describes what the analysis covered, so tests can pin coverage
// (a clean run that bound no modes and checked no matrix would be
// vacuous, not clean).
type Report struct {
	// Classes maps each commutativity class to its bound mode constant
	// name (//comm:mode).
	Classes map[string]string
	// Ops maps annotated operation functions ("Type.Func" or "Func") to
	// their class (//comm:op).
	Ops map[string]string
	// Matrices lists the spec files (//comm:matrix arguments) whose
	// derived matrices were compared, in source order.
	Matrices []string
	// Proofs counts the prover-discharged obligations backing the
	// compared matrices.
	Proofs int
	// Entries counts the ordered matrix entries compared against the
	// derived relation.
	Entries int
	// AcquireSites counts the locking.Manager.Acquire call sites checked
	// inside annotated ops.
	AcquireSites int
}

// Run analyzes the loaded packages and returns the coverage report and
// the surviving diagnostics (with //comm:ignore suppressions applied),
// sorted by position. Deriving the reference matrix elaborates the spec
// with the real prover, so a clean run certifies both that the proofs
// discharge and that the Go matrix matches them.
func Run(pkgs []*analysis.Package) (*Report, []analysis.Diagnostic) {
	x := newExtractor(pkgs)
	rep := x.extract()
	diags := x.suppress(x.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep, diags
}

// suppress drops diagnostics covered by a reasoned //comm:ignore on the
// same or the preceding line; reasonless ignores are themselves findings
// (already reported during extraction).
func (x *extractor) suppress(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if lines := x.ignored[d.Pos.Filename]; lines[d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// reportf records one finding.
func (x *extractor) reportf(pos token.Position, rule, format string, args ...any) {
	x.diags = append(x.diags, analysis.Diagnostic{Pos: pos, Rule: rule, Message: fmt.Sprintf(format, args...)})
}
