package commcheck

import (
	"fmt"
	"sort"

	"speccat/internal/core/speclang"
)

// DerivedMatrix is the compatibility relation re-derived from a
// commutativity spec: the set of class pairs backed by a
// prover-discharged Safe theorem, plus how many obligations were
// discharged deriving it.
type DerivedMatrix struct {
	// Compatible[a][b] reports a discharged commutativity argument for
	// the ordered pair; the relation is symmetric by construction.
	Compatible map[string]map[string]bool
	// Proofs counts the discharged prove statements.
	Proofs int
	// Classes are the class constants declared in the spec, sorted.
	Classes []string
}

// Derive parses and elaborates a commutativity spec and returns the
// compatibility relation it supports. classes are the commutativity
// classes the caller knows about (from //comm:mode annotations); the
// derived relation marks (a, b) compatible exactly when the spec contains
// a prove statement for theorem Safe<a><b> (or Safe<b><a>) — and
// elaboration runs those proofs, so a theorem the prover cannot discharge
// fails the derivation rather than silently weakening the matrix.
func Derive(src string, classes []string) (*DerivedMatrix, error) {
	file, err := speclang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("commcheck: parse spec: %w", err)
	}
	// Elaboration discharges every prove statement with the default
	// resolution prover; any failed obligation surfaces here.
	env, err := speclang.Eval(file, speclang.Options{})
	if err != nil {
		return nil, fmt.Errorf("commcheck: discharge spec obligations: %w", err)
	}
	d := &DerivedMatrix{Compatible: map[string]map[string]bool{}}
	declared := map[string]bool{}
	proved := map[string]bool{}
	for _, stmt := range file.Stmts {
		switch e := stmt.Expr.(type) {
		case *speclang.SpecExpr:
			for _, op := range e.Ops {
				if len(op.Args) == 0 {
					declared[op.Name] = true
				}
			}
		case *speclang.ProveExpr:
			v, ok := env.Lookup(stmt.Name)
			if !ok || v.Kind != speclang.KindProof {
				return nil, fmt.Errorf("commcheck: obligation %s did not produce a proof", stmt.Name)
			}
			proved[e.Theorem] = true
			d.Proofs++
		}
	}
	for c := range declared {
		d.Classes = append(d.Classes, c)
	}
	sort.Strings(d.Classes)
	for _, c := range classes {
		if !declared[c] {
			return nil, fmt.Errorf("commcheck: class %s is not declared as a constant in the spec", c)
		}
	}
	for _, a := range classes {
		for _, b := range classes {
			if proved["Safe"+a+b] || proved["Safe"+b+a] {
				if d.Compatible[a] == nil {
					d.Compatible[a] = map[string]bool{}
				}
				d.Compatible[a][b] = true
			}
		}
	}
	return d, nil
}

// protects reports whether acquiring mode class cm is safe for an
// operation of class c: every class the lock manager would admit
// concurrently under cm must commute with c. cm == c is trivially safe
// when the derived matrix is consistent; a strictly stronger mode is safe
// but overlocked (see RuleOverlock).
func (d *DerivedMatrix) protects(cm, c string, classes []string) bool {
	for _, other := range classes {
		if d.Compatible[cm][other] && !d.Compatible[c][other] {
			return false
		}
	}
	return true
}
