package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanic flags panic calls in non-test code that are reachable from the
// package's exported API (DESIGN.md: "no panics across package
// boundaries"). Reachability is computed over the intra-package call
// graph: exported functions and methods, main and init are roots; an edge
// exists for every reference to a package-level function or method
// (calls and function values alike), so callback registration counts.
var NoPanic = &Analyzer{ //lint:allow noglobalstate analyzer singleton, assigned once and never mutated
	Name: "nopanic",
	Doc:  "no panic reachable from exported API in non-test code",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	// Map each declared function object to its declaration.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Build the reference graph and find the roots.
	edges := map[*types.Func][]*types.Func{}
	var roots []*types.Func
	for obj, fd := range decls {
		name := fd.Name.Name
		isRoot := ast.IsExported(name) || name == "init" ||
			(name == "main" && pass.Pkg.Types.Name() == "main")
		if isRoot {
			roots = append(roots, obj)
		}
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.Pkg.Info.Uses[id].(*types.Func); ok {
				if _, local := decls[callee]; local {
					edges[obj] = append(edges[obj], callee)
				}
			}
			return true
		})
	}

	// BFS from the roots, remembering a witness root for the message.
	via := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, seen := via[r]; !seen {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range edges[cur] {
			if _, seen := via[next]; !seen {
				via[next] = via[cur]
				queue = append(queue, next)
			}
		}
	}

	// Report reachable panic sites.
	for obj, fd := range decls {
		root, reachable := via[obj]
		if !reachable || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pass.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			pass.Reportf(call.Pos(), "panic reachable from exported %s; return a wrapped error instead", root.Name())
			return true
		})
	}
}
