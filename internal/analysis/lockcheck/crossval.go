package lockcheck

import (
	"fmt"

	"speccat/internal/analysis"
	"speccat/internal/explore"
)

// CrossValidation is the dynamic witness for one static lock-order
// finding: a concrete replayable schedule on which the sharded engine,
// trusting its per-shard deadlock detectors, stalls forever — plus the
// control showing the canonical acquisition order survives the identical
// staging.
type CrossValidation struct {
	// Rule is the static rule being witnessed (always lock-order).
	Rule string
	// Seed is the probe seed that produced the witness.
	Seed int64
	// Schedule is the stalling run (replayable with cmd/tpcexplore): the
	// opposed workload over per-shard lock managers with lock waiting on
	// and canonical ordering off — the configuration the finding convicts.
	Schedule explore.Schedule
	// Violated are the oracle names the witness run fails; the conviction
	// is the fault-free progress oracle (undecided transactions with no
	// crash to excuse them: the cross-manager waits-for cycle neither
	// per-shard detector can see).
	Violated []string
	// CanonicalClean records that the repaired arm — the identical
	// schedule with CanonicalLockOrder set — violated nothing, isolating
	// the acquisition order as the failure's single cause.
	CanonicalClean bool
}

// OpposedSchedule is the staging both arms of the cross-validation (and
// experiment E20) share: a 3PC cluster whose stores are split over two
// shard-local lock managers, running the opposed workload (transaction
// pairs touching the same two cross-shard keys in opposite orders) with
// lock waiting instead of conflict aborts. The horizon bounds the run
// because a cross-manager deadlock, by construction, never quiesces.
func OpposedSchedule(seed int64) explore.Schedule {
	return explore.Schedule{
		Protocol: explore.Proto3PC,
		Seed:     seed,
		Sites:    3,
		Accounts: 8,
		Txns:     3,
		Shards:   2,
		Workload: explore.WorkloadOpposed,
		LockWait: true,
		Horizon:  6000,
	}
}

// CrossValidate turns a static lock-order finding into a dynamic
// counterexample. Per seed it runs the opposed-workload schedule twice:
// the ablated arm (iteration-order acquisition across two shard-local
// managers — the shape the finding convicts) must stall into a fault-free
// progress violation, and the repaired arm (identical schedule with
// CanonicalLockOrder) must finish clean. The first seed whose two arms
// split that way is returned as the witness.
//
// It returns nil when no seed yields one — the expected outcome when the
// engine under test already acquires in canonical order (the negative
// control of the cross-validation tests).
func CrossValidate(finding analysis.Diagnostic, seeds []int64) (*CrossValidation, error) {
	if finding.Rule != RuleOrder {
		return nil, fmt.Errorf("lockcheck: cross-validation witnesses %s findings, got %s", RuleOrder, finding.Rule)
	}
	for _, seed := range seeds {
		cv, err := crossValidateSeed(seed)
		if err != nil {
			return nil, err
		}
		if cv != nil {
			cv.Rule = finding.Rule
			return cv, nil
		}
	}
	return nil, nil
}

func crossValidateSeed(seed int64) (*CrossValidation, error) {
	ablated := OpposedSchedule(seed)
	res, err := explore.Run(ablated)
	if err != nil {
		return nil, fmt.Errorf("lockcheck: cross-validation ablated arm: %w", err)
	}
	violated := res.ViolatedOracles()
	stalled := false
	for _, oracle := range violated {
		if oracle == "progress" {
			stalled = true
		}
	}
	if !stalled {
		return nil, nil
	}

	repaired := ablated
	repaired.CanonicalLockOrder = true
	ctrl, err := explore.Run(repaired)
	if err != nil {
		return nil, fmt.Errorf("lockcheck: cross-validation repaired arm: %w", err)
	}
	return &CrossValidation{
		Seed:           seed,
		Schedule:       ablated,
		Violated:       violated,
		CanonicalClean: len(ctrl.ViolatedOracles()) == 0,
	}, nil
}
