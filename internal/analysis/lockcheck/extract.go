package lockcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// extractor accumulates the lock-discipline facts of one load.
type extractor struct {
	pkgs  []*analysis.Package
	diags []analysis.Diagnostic

	// ignored maps filename -> suppressed lines (//lock:ignore, all rules);
	// orderIgnored the //lock:ordered lines (lock-order only).
	ignored      map[string]map[int]bool
	orderIgnored map[string]map[int]bool
	// bindable records every well-formed binding directive by comment
	// position; bound marks the ones a later pass attached to a
	// declaration. The difference is reported as lock-extract.
	bindable map[string]directive
	bound    map[string]bool

	// funcs indexes every function declaration of the load.
	funcs map[types.Object]*funcInfo
	// callees caches interface-bridged call resolution per callee object.
	callees map[types.Object][]*funcInfo

	rep *Report
}

// funcInfo is the per-function fact sheet the flow analysis consumes.
type funcInfo struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
	obj  types.Object
	// name is the display name, receiver-qualified for methods.
	name string

	// isRoot marks analysis roots (//fsm:handler, //dur:handler, //comm:op
	// or //lock:handler docs).
	isRoot bool
	// directAcquire / directRelease: the body itself calls
	// locking.Manager.Acquire / Release / ReleaseAll; directReleaseAll
	// narrows to ReleaseAll (the lock-leak eligibility pair).
	directAcquire    bool
	directRelease    bool
	directReleaseAll bool
	// deferredRelease holds the transaction expressions ReleaseAll'd in
	// defer statements — those paths are release-covered at every return.
	deferredRelease map[string]bool
	// walTxns holds the transaction expressions whose wal.Log.Commit/Abort
	// decision record this body writes (the lock-hold(b) scope).
	walTxns map[string]bool
	// reachesAcquire: directAcquire, or calls (statically or through an
	// interface) a function that reaches an acquire.
	reachesAcquire bool
	// routedAcquire: the body contains a shard-routed acquire-reaching call
	// (see isRoutedCall), or calls a function that does.
	routedAcquire bool
	// syncWrapIdx is the flattened parameter index this function forwards
	// as the continuation to stable.Store.SyncThen; -1 otherwise.
	syncWrapIdx int
	// paramIdx maps the function's named parameters to their flattened
	// argument positions.
	paramIdx map[types.Object]int
}

func newExtractor(pkgs []*analysis.Package) *extractor {
	return &extractor{
		pkgs:         pkgs,
		ignored:      map[string]map[int]bool{},
		orderIgnored: map[string]map[int]bool{},
		bindable:     map[string]directive{},
		bound:        map[string]bool{},
		funcs:        map[types.Object]*funcInfo{},
		callees:      map[types.Object][]*funcInfo{},
		rep:          &Report{},
	}
}

func (x *extractor) reportf(pkg *analysis.Package, pos token.Pos, rule, format string, args ...any) {
	x.diags = append(x.diags, analysis.Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// extract runs the full pipeline: directive scan, binding, per-function
// fact computation, the two reachability closures, and the flow analysis
// of every function in scope.
func (x *extractor) extract() *Report {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanComments(pkg, f)
		}
	}
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanFuncs(pkg, f)
		}
	}
	x.computeFacts()
	analyzed := x.analysisSet()
	x.countCoverage(analyzed)
	for _, fi := range analyzed {
		newFlow(x, fi).run()
	}
	x.rep.Analyzed = len(analyzed)
	x.reportUnbound()
	sort.Strings(x.rep.Roots)
	return x.rep
}

// scanComments validates every //lock: directive and registers
// suppressions.
func (x *extractor) scanComments(pkg *analysis.Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.scanDirective(pkg, c, d)
			}
		}
	}
}

func (x *extractor) scanDirective(pkg *analysis.Package, c *ast.Comment, d directive) {
	switch d.verb {
	case "handler":
		if len(d.args) != 0 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //lock:handler: want no arguments, got %d", len(d.args))
			return
		}
	case "ignore", "ordered":
		if d.rest == "" {
			x.reportf(pkg, c.Pos(), RuleExtract, "//lock:%s requires a reason", d.verb)
			return
		}
		lines := x.ignored
		if d.verb == "ordered" {
			lines = x.orderIgnored
		}
		m := lines[d.pos.Filename]
		if m == nil {
			m = map[int]bool{}
			lines[d.pos.Filename] = m
		}
		m[d.pos.Line] = true
		m[d.pos.Line+1] = true
		return
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "unknown directive //lock:%s", d.verb)
		return
	}
	x.bindable[posKey(d.pos)] = d
}

// scanFuncs indexes every function declaration, marking roots: the sibling
// layers' //fsm:handler, //dur:handler and //comm:op doc directives plus
// this layer's own //lock:handler.
func (x *extractor) scanFuncs(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		obj := pkg.Info.Defs[fn.Name]
		if obj == nil {
			continue
		}
		fi := &funcInfo{
			pkg:             pkg,
			decl:            fn,
			obj:             obj,
			name:            funcDisplayName(fn),
			syncWrapIdx:     -1,
			deferredRelease: map[string]bool{},
			walTxns:         map[string]bool{},
			paramIdx:        map[types.Object]int{},
		}
		idx := 0
		if fn.Type.Params != nil {
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					if po := pkg.Info.Defs[name]; po != nil {
						fi.paramIdx[po] = idx
					}
					idx++
				}
			}
		}
		x.funcs[obj] = fi
		if fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(body, "fsm:handler") || strings.HasPrefix(body, "dur:handler") ||
				strings.HasPrefix(body, "comm:op") {
				fi.isRoot = true
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.bindFuncDirective(pkg, fi, c, d)
			}
		}
		if fi.isRoot {
			x.rep.Roots = append(x.rep.Roots, fi.name)
		}
	}
}

func (x *extractor) bindFuncDirective(pkg *analysis.Package, fi *funcInfo, c *ast.Comment, d directive) {
	if _, ok := x.bindable[posKey(d.pos)]; !ok {
		return // malformed; already reported
	}
	switch d.verb {
	case "handler":
		x.bound[posKey(d.pos)] = true
		fi.isRoot = true
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "directive //lock:%s cannot bind to a function", d.verb)
		x.bound[posKey(d.pos)] = true
	}
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// computeFacts fills the per-function classification fields: direct lock
// events, deferred releases, wal decision writes, SyncThen forwarding —
// then runs the two reachability closures (reachesAcquire, routedAcquire)
// to a fixpoint over static and interface-bridged calls.
func (x *extractor) computeFacts() {
	for _, fi := range x.funcs {
		x.computeFuncFacts(fi)
	}
	// One propagation pass for wrappers of syncThen wrappers.
	for _, fi := range x.funcs {
		if fi.syncWrapIdx >= 0 {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := x.funcs[calleeObjOf(fi.pkg, call.Fun)]
			if callee == nil || callee.syncWrapIdx < 0 || callee.syncWrapIdx >= len(call.Args) {
				return true
			}
			if id, ok := unparen(call.Args[callee.syncWrapIdx]).(*ast.Ident); ok {
				if po := fi.pkg.Info.Uses[id]; po != nil {
					if pidx, isParam := fi.paramIdx[po]; isParam {
						fi.syncWrapIdx = pidx
					}
				}
			}
			return true
		})
	}
	// reachesAcquire closure.
	for _, fi := range x.funcs {
		fi.reachesAcquire = fi.directAcquire
	}
	x.closure(func(fi *funcInfo) bool { return fi.reachesAcquire },
		func(fi *funcInfo) { fi.reachesAcquire = true })
	// routedAcquire closure: seed with bodies containing a base routed
	// call, then propagate through callers.
	for _, fi := range x.funcs {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && x.isRoutedCall(fi.pkg, call) {
				fi.routedAcquire = true
			}
			return true
		})
	}
	x.closure(func(fi *funcInfo) bool { return fi.routedAcquire },
		func(fi *funcInfo) { fi.routedAcquire = true })
}

// closure propagates a boolean function property backwards over the call
// graph (static and interface-bridged calls) until no function changes.
func (x *extractor) closure(has func(*funcInfo) bool, set func(*funcInfo)) {
	for changed := true; changed; {
		changed = false
		for _, fi := range x.funcs {
			if has(fi) {
				continue
			}
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, callee := range x.resolveCallees(fi.pkg, call) {
					if has(callee) {
						set(fi)
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
}

func (x *extractor) computeFuncFacts(fi *funcInfo) {
	pkg := fi.pkg
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			obj := calleeObjOf(pkg, v.Call.Fun)
			if isManagerMethod(obj, "ReleaseAll") && len(v.Call.Args) > 0 {
				fi.deferredRelease[types.ExprString(unparen(v.Call.Args[0]))] = true
			}
		case *ast.CallExpr:
			obj := calleeObjOf(pkg, v.Fun)
			switch {
			case isManagerMethod(obj, "Acquire"):
				fi.directAcquire = true
			case isManagerMethod(obj, "ReleaseAll"):
				fi.directRelease = true
				fi.directReleaseAll = true
			case isManagerMethod(obj, "Release"):
				fi.directRelease = true
			case isWalDecision(obj):
				if len(v.Args) > 0 {
					fi.walTxns[types.ExprString(unparen(v.Args[0]))] = true
				}
			case isSyncThen(obj):
				if len(v.Args) > 0 {
					if id, ok := unparen(v.Args[0]).(*ast.Ident); ok {
						if po := pkg.Info.Uses[id]; po != nil {
							if pidx, isParam := fi.paramIdx[po]; isParam {
								fi.syncWrapIdx = pidx
							}
						}
					}
				}
			}
		}
		return true
	})
}

// resolveCallees resolves a call to the function declarations it may reach
// in this load: the static callee when it is declared here, or — for a
// call through an interface method — every declared method of a concrete
// type implementing that interface. The result is cached per callee
// object (interface resolution is call-site independent).
func (x *extractor) resolveCallees(pkg *analysis.Package, call *ast.CallExpr) []*funcInfo {
	obj := calleeObjOf(pkg, call.Fun)
	if obj == nil {
		return nil
	}
	if fi := x.funcs[obj]; fi != nil {
		return []*funcInfo{fi}
	}
	if out, ok := x.callees[obj]; ok {
		return out
	}
	iface := interfaceRecv(obj)
	if iface == nil {
		x.callees[obj] = nil
		return nil
	}
	fn := obj.(*types.Func)
	var out []*funcInfo
	for _, fi := range sortedFuncs(x.funcs) {
		if fi.decl.Name.Name != fn.Name() {
			continue
		}
		named := recvNamed(fi)
		if named == nil {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out = append(out, fi)
		}
	}
	x.callees[obj] = out
	return out
}

// isRoutedCall reports whether a call can acquire locks through
// shard-routed managers: a direct Acquire whose manager expression indexes
// a collection with a non-constant index, a method on a multi-manager type
// that reaches an acquire, or an interface-method call with such an
// implementation in the load.
func (x *extractor) isRoutedCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	obj := calleeObjOf(pkg, call.Fun)
	if obj == nil {
		return false
	}
	if isManagerMethod(obj, "Acquire") {
		ie := managerIndexExpr(call)
		if ie == nil {
			return false
		}
		_, isConst := constIndex(pkg, ie)
		return !isConst
	}
	for _, fi := range x.resolveCallees(pkg, call) {
		named := recvNamed(fi)
		if named != nil && fi.reachesAcquire && multiManager(named) {
			return true
		}
	}
	return false
}

// analysisSet is the functions the flow analysis walks: everything
// reachable from an analysis root through static and interface-bridged
// calls.
func (x *extractor) analysisSet() []*funcInfo {
	visited := map[*funcInfo]bool{}
	var queue []*funcInfo
	for _, fi := range sortedFuncs(x.funcs) {
		if fi.isRoot {
			visited[fi] = true
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range x.resolveCallees(fi.pkg, call) {
				if !visited[callee] {
					visited[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	out := make([]*funcInfo, 0, len(visited))
	for _, fi := range sortedFuncs(x.funcs) {
		if visited[fi] {
			out = append(out, fi)
		}
	}
	return out
}

// countCoverage fills the non-vacuity counters over the analyzed set.
func (x *extractor) countCoverage(analyzed []*funcInfo) {
	for _, fi := range analyzed {
		pkg := fi.pkg
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObjOf(pkg, call.Fun)
			switch {
			case isManagerMethod(obj, "Acquire"):
				x.rep.AcquireSites++
			case isManagerMethod(obj, "Release", "ReleaseAll"):
				x.rep.ReleaseSites++
			}
			if x.isRoutedCall(pkg, call) {
				x.rep.RoutedCalls++
			}
			if conts := x.syncThenConts(pkg, fi, call); len(conts) > 0 {
				x.rep.SyncThenSites += len(conts)
			}
			return true
		})
	}
}

// syncThenConts returns the continuation function literals a call hands to
// stable.Store.SyncThen, directly or through a wrapper. Calls that forward
// this function's own continuation parameter contribute nothing — their
// call sites carry the literal.
func (x *extractor) syncThenConts(pkg *analysis.Package, fi *funcInfo, call *ast.CallExpr) []*ast.FuncLit {
	idx := -1
	obj := calleeObjOf(pkg, call.Fun)
	if isSyncThen(obj) {
		idx = 0
	} else if callee := x.funcs[obj]; callee != nil && callee.syncWrapIdx >= 0 {
		idx = callee.syncWrapIdx
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	if lit, ok := unparen(call.Args[idx]).(*ast.FuncLit); ok {
		return []*ast.FuncLit{lit}
	}
	return nil
}

// sortedFuncs orders functions by position for deterministic output.
func sortedFuncs(m map[types.Object]*funcInfo) []*funcInfo {
	out := make([]*funcInfo, 0, len(m))
	for _, fi := range m {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		a := out[i].pkg.Fset.Position(out[i].decl.Pos())
		b := out[j].pkg.Fset.Position(out[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// reportUnbound flags directives that never attached to a declaration.
func (x *extractor) reportUnbound() {
	var keys []string
	for key := range x.bindable {
		if !x.bound[key] {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		d := x.bindable[key]
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     d.pos,
			Rule:    RuleExtract,
			Message: fmt.Sprintf("//lock:%s is not attached to a declaration", d.verb),
		})
	}
}

// --- object and type classification helpers --------------------------------

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObjOf resolves a call's function expression to its object.
func calleeObjOf(pkg *analysis.Package, fun ast.Expr) types.Object {
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	}
	return nil
}

// isMethodOn reports whether obj is one of the named methods on the named
// type of a package whose import path ends in pkgSuffix. Interface methods
// match too: an interface method's receiver type is the named interface.
func isMethodOn(obj types.Object, pkgSuffix, typeName string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != typeName || tn.Pkg() == nil || !strings.HasSuffix(tn.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// isManagerMethod recognizes the locking.Manager lock-event API.
func isManagerMethod(obj types.Object, names ...string) bool {
	return isMethodOn(obj, "internal/locking", "Manager", names...)
}

// isWalDecision recognizes the wal.Log decision records — the durable
// point strictness must reach before ReleaseAll.
func isWalDecision(obj types.Object) bool {
	return isMethodOn(obj, "internal/wal", "Log", "Commit", "Abort")
}

// isSyncThen recognizes the stable.Store durability-wait primitive.
func isSyncThen(obj types.Object) bool {
	return isMethodOn(obj, "internal/stable", "Store", "SyncThen")
}

// interfaceRecv returns the interface type obj is a method of, nil for
// concrete methods and non-methods.
func interfaceRecv(obj types.Object) *types.Interface {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// recvNamed returns the named receiver type of a method's funcInfo
// (pointer receivers dereferenced), nil for plain functions.
func recvNamed(fi *funcInfo) *types.Named {
	fn, ok := fi.obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ownsManager reports whether t (a named struct, possibly behind a
// pointer) embeds its own locking.Manager — the single-manager shape.
func ownsManager(t types.Type) bool {
	st := underlyingStruct(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if p, ok := ft.(*types.Pointer); ok {
			ft = p.Elem()
		}
		if named, ok := ft.(*types.Named); ok {
			tn := named.Obj()
			if tn.Name() == "Manager" && tn.Pkg() != nil && strings.HasSuffix(tn.Pkg().Path(), "internal/locking") {
				return true
			}
		}
	}
	return false
}

// multiManager reports whether t routes between several lock managers: a
// struct with a slice, array or map of manager-owning elements. This is
// the shape whose per-element deadlock detectors are mutually blind.
func multiManager(t types.Type) bool {
	st := underlyingStruct(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		var elem types.Type
		switch ft := st.Field(i).Type().Underlying().(type) {
		case *types.Slice:
			elem = ft.Elem()
		case *types.Array:
			elem = ft.Elem()
		case *types.Map:
			elem = ft.Elem()
		default:
			continue
		}
		if p, ok := elem.(*types.Pointer); ok {
			elem = p.Elem()
		}
		if ownsManager(elem) {
			return true
		}
	}
	return false
}

func underlyingStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// managerIndexExpr walks the selector chain of a manager-method call's
// receiver expression and returns the first index expression in it
// (s.shards[i].locks → s.shards[i]), nil when the chain has none.
func managerIndexExpr(call *ast.CallExpr) *ast.IndexExpr {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	e := sel.X
	for {
		switch v := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			return v
		case *ast.CallExpr:
			return managerIndexExpr(v)
		default:
			return nil
		}
	}
}

// constIndex evaluates an index expression's index to a constant int.
func constIndex(pkg *analysis.Package, ie *ast.IndexExpr) (int, bool) {
	tv, ok := pkg.Info.Types[ie.Index]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return int(v), exact
}
