package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// lockState is the lock information at one program point, tracked per
// transaction expression (the rendered first argument of the manager
// calls, e.g. "txn" — syntactic identity is what one function's call
// sites share).
type lockState struct {
	// acquired maps "txn\x00key" to the acquire position — MAY analysis
	// (union at joins): a lock held on any path into a return is a leak.
	acquired map[string]token.Pos
	// released maps a transaction to its release position — MUST analysis
	// (intersection): growing is only convicted after a release that
	// happened on every path.
	released map[string]token.Pos
	// durable marks transactions whose wal decision record was written —
	// MUST analysis, consumed by the release-before-durable rule.
	durable map[string]bool
	// lastShard tracks the last constant shard index a transaction
	// acquired through — kept at joins only when all live branches agree.
	lastShard  map[string]shardAt
	terminated bool
}

type shardAt struct {
	idx int
	pos token.Pos
}

func newLockState() *lockState {
	return &lockState{
		acquired:  map[string]token.Pos{},
		released:  map[string]token.Pos{},
		durable:   map[string]bool{},
		lastShard: map[string]shardAt{},
	}
}

func (s *lockState) clone() *lockState {
	c := &lockState{
		acquired:   make(map[string]token.Pos, len(s.acquired)),
		released:   make(map[string]token.Pos, len(s.released)),
		durable:    make(map[string]bool, len(s.durable)),
		lastShard:  make(map[string]shardAt, len(s.lastShard)),
		terminated: s.terminated,
	}
	for k, v := range s.acquired {
		c.acquired[k] = v
	}
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.durable {
		c.durable[k] = v
	}
	for k, v := range s.lastShard {
		c.lastShard[k] = v
	}
	return c
}

// join folds branch out-states back into s: may-union for acquired,
// must-intersection for released/durable/lastShard over the branches that
// did not terminate. No live branch means all paths returned.
func (s *lockState) join(branches []*lockState) {
	var live []*lockState
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		s.terminated = true
		return
	}
	acquired := map[string]token.Pos{}
	for _, b := range live {
		for k, p := range b.acquired {
			if _, ok := acquired[k]; !ok {
				acquired[k] = p
			}
		}
	}
	released := map[string]token.Pos{}
	for k, p := range live[0].released {
		all := true
		for _, b := range live[1:] {
			if _, ok := b.released[k]; !ok {
				all = false
				break
			}
		}
		if all {
			released[k] = p
		}
	}
	durable := map[string]bool{}
	for k := range live[0].durable {
		all := true
		for _, b := range live[1:] {
			if !b.durable[k] {
				all = false
				break
			}
		}
		if all {
			durable[k] = true
		}
	}
	lastShard := map[string]shardAt{}
	for k, v := range live[0].lastShard {
		all := true
		for _, b := range live[1:] {
			if o, ok := b.lastShard[k]; !ok || o.idx != v.idx {
				all = false
				break
			}
		}
		if all {
			lastShard[k] = v
		}
	}
	s.acquired = acquired
	s.released = released
	s.durable = durable
	s.lastShard = lastShard
}

// flow walks one function. Each function is analyzed once from an empty
// in-state: a caller's releases do not excuse acquisitions inside the
// callee (the callee may be entered on a path without them).
type flow struct {
	x   *extractor
	pkg *analysis.Package
	fi  *funcInfo
	// litDepth > 0 while walking a function literal's body: leak checks
	// apply only to the enclosing function's own returns (a closure
	// returning while the outer function still holds locks is not an exit
	// of the transaction).
	litDepth int
}

func newFlow(x *extractor, fi *funcInfo) *flow {
	return &flow{x: x, pkg: fi.pkg, fi: fi}
}

func (a *flow) run() {
	s := newLockState()
	a.block(a.fi.decl.Body.List, s)
	if !s.terminated {
		a.checkLeak(s, a.fi.decl.Body.Rbrace)
	}
}

func (a *flow) block(list []ast.Stmt, s *lockState) {
	for _, st := range list {
		a.stmt(st, s)
	}
}

func (a *flow) stmt(st ast.Stmt, s *lockState) {
	switch v := st.(type) {
	case nil:
	case *ast.BlockStmt:
		a.block(v.List, s)
	case *ast.ExprStmt:
		a.expr(v.X, s)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			a.expr(rhs, s)
		}
	case *ast.IncDecStmt:
		a.expr(v.X, s)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.expr(val, s)
					}
				}
			}
		}
	case *ast.IfStmt:
		a.stmt(v.Init, s)
		a.expr(v.Cond, s)
		then := s.clone()
		a.stmt(v.Body, then)
		els := s.clone()
		if v.Else != nil {
			a.stmt(v.Else, els)
		}
		s.join([]*lockState{then, els})
	case *ast.SwitchStmt:
		a.stmt(v.Init, s)
		a.expr(v.Tag, s)
		a.caseBranches(v.Body, s)
	case *ast.TypeSwitchStmt:
		a.stmt(v.Init, s)
		a.stmt(v.Assign, s)
		a.caseBranches(v.Body, s)
	case *ast.SelectStmt:
		var branches []*lockState
		for _, cl := range v.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			b := s.clone()
			a.stmt(cc.Comm, b)
			a.block(cc.Body, b)
			branches = append(branches, b)
		}
		if len(branches) > 0 {
			s.join(branches)
		}
	case *ast.ForStmt:
		a.stmt(v.Init, s)
		a.expr(v.Cond, s)
		a.checkLoopOrder(v, v.Body, nil, nil, false)
		body := s.clone()
		a.block(v.Body.List, body)
		a.stmt(v.Post, body)
		// The loop may run zero times: the out-state is the in-state.
	case *ast.RangeStmt:
		a.expr(v.X, s)
		keyObj, sliceRange := a.rangeKey(v)
		a.checkLoopOrder(v, v.Body, keyObj, v.X, sliceRange)
		body := s.clone()
		a.block(v.Body.List, body)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			a.expr(r, s)
		}
		a.checkLeak(s, v.Pos())
		s.terminated = true
	case *ast.BranchStmt:
		s.terminated = true
	case *ast.DeferStmt:
		// Runs at return; deferred releases are credited via the
		// deferredRelease fact, not the flow state.
		a.expr(v.Call, s.clone())
	case *ast.GoStmt:
		a.expr(v.Call, s.clone())
	case *ast.SendStmt:
		a.expr(v.Chan, s)
		a.expr(v.Value, s)
	case *ast.LabeledStmt:
		a.stmt(v.Stmt, s)
	}
}

// caseBranches joins the clauses of a switch or type switch; a missing
// default adds an implicit pass-through branch.
func (a *flow) caseBranches(body *ast.BlockStmt, s *lockState) {
	var branches []*lockState
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b := s.clone()
		for _, e := range cc.List {
			a.expr(e, b)
		}
		a.block(cc.Body, b)
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, s.clone())
	}
	if len(branches) > 0 {
		s.join(branches)
	}
}

// expr walks an expression, handling calls and function literals (a
// literal's body is analyzed against a snapshot: it may run later, and
// its lock events must not flow into the registration point).
func (a *flow) expr(e ast.Expr, s *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			a.litDepth++
			a.block(v.Body.List, s.clone())
			a.litDepth--
			return false
		case *ast.CallExpr:
			a.handleCall(v, s)
		}
		return true
	})
}

// handleCall classifies one call: a lock event (acquire / release), a
// durable decision record, or a durability wait carrying a continuation.
func (a *flow) handleCall(c *ast.CallExpr, s *lockState) {
	obj := calleeObjOf(a.pkg, c.Fun)
	if obj == nil {
		return
	}
	switch {
	case isManagerMethod(obj, "Acquire") && len(c.Args) >= 2:
		txn := types.ExprString(unparen(c.Args[0]))
		key := types.ExprString(unparen(c.Args[1]))
		if relPos, ok := s.released[txn]; ok {
			a.x.reportf(a.pkg, c.Pos(), RuleTwoPhase,
				"acquires %s for %s after its locks were released at %s; two-phase locking forbids growing after shrinking",
				key, txn, a.shortPos(relPos))
		}
		s.acquired[txn+"\x00"+key] = c.Pos()
		if ie := managerIndexExpr(c); ie != nil {
			if idx, ok := constIndex(a.pkg, ie); ok {
				if last, held := s.lastShard[txn]; held && idx < last.idx {
					a.x.reportf(a.pkg, c.Pos(), RuleOrder,
						"acquires shard %d for %s after shard %d (%s); cross-shard acquisitions must follow ascending shard-index order, or a detector-blind waits-for cycle can close across managers",
						idx, txn, last.idx, a.shortPos(last.pos))
				}
				s.lastShard[txn] = shardAt{idx: idx, pos: c.Pos()}
			}
		}
	case isManagerMethod(obj, "ReleaseAll") && len(c.Args) >= 1:
		txn := types.ExprString(unparen(c.Args[0]))
		if a.fi.walTxns[txn] && !s.durable[txn] {
			a.x.reportf(a.pkg, c.Pos(), RuleHold,
				"releases %s's locks before its durable decision record; the wal commit/abort must land first (strictness protects recovery)",
				txn)
		}
		prefix := txn + "\x00"
		for k := range s.acquired {
			if strings.HasPrefix(k, prefix) {
				delete(s.acquired, k)
			}
		}
		delete(s.lastShard, txn)
		s.released[txn] = c.Pos()
	case isManagerMethod(obj, "Release") && len(c.Args) >= 2:
		txn := types.ExprString(unparen(c.Args[0]))
		key := types.ExprString(unparen(c.Args[1]))
		delete(s.acquired, txn+"\x00"+key)
		s.released[txn] = c.Pos()
	case isWalDecision(obj) && len(c.Args) >= 1:
		s.durable[types.ExprString(unparen(c.Args[0]))] = true
	default:
		for _, lit := range a.x.syncThenConts(a.pkg, a.fi, c) {
			a.checkContinuation(lit)
		}
	}
}

// checkContinuation scans a stable.SyncThen continuation for lock
// acquisitions: the continuation runs after the durability wait settles,
// so an acquire inside it extends the growing phase past an fsync
// boundary while every already-held lock stays pinned — serialized lock
// waits behind storage latency the 2PL argument never priced in.
func (a *flow) checkContinuation(lit *ast.FuncLit) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObjOf(a.pkg, call.Fun)
		if isManagerMethod(obj, "Acquire") {
			a.x.reportf(a.pkg, call.Pos(), RuleHold,
				"acquires a lock inside a stable.SyncThen continuation; the growing phase must complete before the durability wait")
			reported = true
			return false
		}
		for _, callee := range a.x.resolveCallees(a.pkg, call) {
			if callee.reachesAcquire {
				a.x.reportf(a.pkg, call.Pos(), RuleHold,
					"calls %s, which acquires locks, inside a stable.SyncThen continuation; the growing phase must complete before the durability wait",
					callee.name)
				reported = true
				return false
			}
		}
		return true
	})
}

// rangeKey resolves a range statement's key variable and whether the
// ranged expression is a slice or array (index order ascending — a map
// range would visit shards in randomized order).
func (a *flow) rangeKey(v *ast.RangeStmt) (types.Object, bool) {
	id, ok := unparen(v.Key).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	if obj == nil {
		return nil, false
	}
	tv, ok := a.pkg.Info.Types[v.X]
	if !ok {
		return obj, false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return obj, true
	}
	if p, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		if _, isArr := p.Elem().Underlying().(*types.Array); isArr {
			return obj, true
		}
	}
	return obj, false
}

// checkLoopOrder convicts loops whose bodies acquire locks through
// shard-routed managers in iteration order — the static shape of the
// cross-manager deadlock: two such loops iterating opposite key orders
// close a waits-for cycle neither per-shard detector sees. The one
// exempt shape is ranging over the manager collection itself by ascending
// slice index (s.shards[i] with i the range key over s.shards). Nested
// loops are skipped — they are checked as their own loops.
func (a *flow) checkLoopOrder(loop ast.Stmt, body *ast.BlockStmt, keyObj types.Object, rangeX ast.Expr, sliceRange bool) {
	reported := false
	for _, st := range body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			if reported {
				return false
			}
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			routed, name := a.routedCallee(call)
			if !routed {
				return true
			}
			if sliceRange && keyObj != nil && a.indexedByKey(call, keyObj, rangeX) {
				return true
			}
			a.x.reportf(a.pkg, loop.Pos(), RuleOrder,
				"loop body acquires locks through %s with iteration-dependent shard routing; acquisitions must follow ascending shard-index order (sort the iteration by shard first, or annotate //lock:ordered with the reason no cross-manager cycle can form)",
				name)
			reported = true
			return false
		})
		if reported {
			return
		}
	}
}

// routedCallee reports whether a call can acquire through shard-routed
// managers (directly or transitively) and names the offender.
func (a *flow) routedCallee(call *ast.CallExpr) (bool, string) {
	if a.x.isRoutedCall(a.pkg, call) {
		if obj := calleeObjOf(a.pkg, call.Fun); obj != nil {
			return true, obj.Name()
		}
		return true, "a shard-routed call"
	}
	for _, callee := range a.x.resolveCallees(a.pkg, call) {
		if callee.routedAcquire {
			return true, callee.name
		}
	}
	return false, ""
}

// indexedByKey reports whether the call's receiver chain indexes the
// ranged collection by the loop's own key variable (s.shards[i].… inside
// `for i := range s.shards`) — ascending slice order by construction.
func (a *flow) indexedByKey(call *ast.CallExpr, keyObj types.Object, rangeX ast.Expr) bool {
	ie := managerIndexExpr(call)
	if ie == nil {
		return false
	}
	id, ok := unparen(ie.Index).(*ast.Ident)
	if !ok || a.pkg.Info.Uses[id] != keyObj {
		return false
	}
	return types.ExprString(unparen(ie.X)) == types.ExprString(unparen(rangeX))
}

// checkLeak convicts a return path on which an acquired lock survives.
// Only lock-managing functions — both a direct Acquire and a direct
// ReleaseAll in the body — are eligible: a store operation that acquires
// and leaves release to Commit/Abort is the normal strict-2PL split, not
// a leak.
func (a *flow) checkLeak(s *lockState, pos token.Pos) {
	if a.litDepth > 0 || !a.fi.directAcquire || !a.fi.directReleaseAll {
		return
	}
	keys := make([]string, 0, len(s.acquired))
	for k := range s.acquired {
		txn, _, _ := strings.Cut(k, "\x00")
		if a.fi.deferredRelease[txn] {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	txn, key, _ := strings.Cut(keys[0], "\x00")
	a.x.reportf(a.pkg, pos, RuleLeak,
		"returns while %s may still hold %s (acquired at %s) with no ReleaseAll on this path; strict 2PL releases every lock at transaction end",
		txn, key, a.shortPos(s.acquired[keys[0]]))
}

func (a *flow) shortPos(p token.Pos) string {
	pos := a.pkg.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
