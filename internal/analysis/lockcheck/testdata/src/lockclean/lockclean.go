// Package lockclean is a zero-finding lockcheck fixture: a miniature
// sharded transaction engine exercising every clean shape the analysis
// must accept — a lock-managing operation releasing on every path, a
// defer-covered release, cross-shard acquisitions in ascending constant
// order, the exempt ascending range over the shard slice itself, a
// shard-routed loop excused by a reasoned //lock:ordered, a SyncThen
// continuation that only publishes state, a decision record written
// before ReleaseAll, and a //lock:handler opt-in root.
package lockclean

import (
	"errors"

	"speccat/internal/locking"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

var errConflict = errors.New("lockclean: conflict")

// shard is one lock-partitioned slice of the store.
type shard struct {
	locks *locking.Manager
}

// store routes keys to per-shard lock managers (the multi-manager shape
// the lock-order rule watches).
type store struct {
	shards []*shard
}

// route hashes a key to its shard index.
func (s *store) route(key string) int {
	return len(key) % len(s.shards)
}

// get acquires the key's lock on whichever shard owns it — the routed
// acquire at the core of every lock-order conviction.
func (s *store) get(txn, key string) error {
	granted, err := s.shards[s.route(key)].locks.Acquire(txn, key, locking.Read, nil)
	if err != nil {
		return err
	}
	if !granted {
		return errConflict
	}
	return nil
}

// engine is the toy transaction engine.
type engine struct {
	st    *store
	locks *locking.Manager
	wlog  *wal.Log
	disk  *stable.Store
}

// transfer acquires both accounts and releases everything on every path:
// the conflict exit releases before returning, the success path releases
// at the end — strict 2PL with no leak and no growth after shrinking.
//
//lock:handler
func (e *engine) transfer(txn string) error {
	if _, err := e.locks.Acquire(txn, "src", locking.Write, nil); err != nil {
		e.locks.ReleaseAll(txn)
		return err
	}
	granted, err := e.locks.Acquire(txn, "dst", locking.Write, nil)
	if err != nil || !granted {
		e.locks.ReleaseAll(txn)
		return errConflict
	}
	e.locks.ReleaseAll(txn)
	return nil
}

// audit covers every return path with one deferred ReleaseAll.
//
//lock:handler
func (e *engine) audit(txn string, keys []string) error {
	defer e.locks.ReleaseAll(txn)
	for _, key := range keys {
		if _, err := e.locks.Acquire(txn, key, locking.Read, nil); err != nil {
			return err
		}
	}
	return nil
}

// pair acquires across two shards in ascending constant index order —
// the canonical order under which cross-manager cycles cannot form.
//
//lock:handler
func (e *engine) pair(txn string) {
	e.st.shards[0].locks.Acquire(txn, "a", locking.Write, nil)
	e.st.shards[1].locks.Acquire(txn, "b", locking.Write, nil)
	e.st.shards[0].locks.ReleaseAll(txn)
	e.st.shards[1].locks.ReleaseAll(txn)
}

// sweep ranges over the shard slice by index — ascending shard order by
// construction, the one loop shape the lock-order rule exempts.
//
//lock:handler
func (e *engine) sweep(txn string) {
	for i := range e.st.shards {
		e.st.shards[i].locks.Acquire(txn, "sweep", locking.Read, nil)
	}
	for i := range e.st.shards {
		e.st.shards[i].locks.ReleaseAll(txn)
	}
}

// scan acquires in key order through the shard-routed store — statically
// indistinguishable from the deadlock shape, excused here because the
// fixture's policy sorts keys by shard before calling.
//
//lock:handler
func (e *engine) scan(txn string, keys []string) error {
	//lock:ordered keys arrive pre-sorted by shard index (see route), so iteration order is ascending shard order
	for _, key := range keys {
		if err := e.st.get(txn, key); err != nil {
			return err
		}
	}
	return nil
}

// commit writes the durable decision record first and releases only
// after it — strictness with the wal ordering intact — then publishes
// the outcome from a SyncThen continuation that touches no locks.
//
//lock:handler
func (e *engine) commit(txn string, done func(string)) error {
	if err := e.wlog.Commit(txn); err != nil {
		return err
	}
	e.locks.ReleaseAll(txn)
	e.disk.SyncThen(func() {
		done(txn)
	})
	return nil
}
