// Package lockbad seeds one mutation per lockcheck rule class, each
// carrying its expected finding:
//
//   - growAfterShrink: an Acquire after a Release of the same transaction
//     (lock-twophase)
//   - leaky: an early return holding an acquired lock (lock-leak)
//   - descending: cross-shard acquisition in descending constant index
//     order (lock-order)
//   - opposedScan: a loop acquiring through the shard-routed store in
//     iteration order (lock-order, reported at the loop)
//   - holdAcross: an Acquire inside a stable.SyncThen continuation
//     (lock-hold)
//   - releaseBeforeDecision: ReleaseAll ahead of the transaction's wal
//     decision record (lock-hold)
//   - plus the malformed, unknown, reasonless and unbound //lock:*
//     directives (lock-extract)
package lockbad

import (
	"errors"

	"speccat/internal/locking"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

var errEarly = errors.New("lockbad: early")

// shard is one lock-partitioned slice of the store.
type shard struct {
	locks *locking.Manager
}

// store routes keys to per-shard lock managers.
type store struct {
	shards []*shard
}

func (s *store) route(key string) int {
	return len(key) % len(s.shards)
}

// get acquires the key's lock on whichever shard owns it.
func (s *store) get(txn, key string) error {
	granted, err := s.shards[s.route(key)].locks.Acquire(txn, key, locking.Read, nil)
	if err != nil {
		return err
	}
	if !granted {
		return errEarly
	}
	return nil
}

// engine is the toy transaction engine.
type engine struct {
	st    *store
	locks *locking.Manager
	wlog  *wal.Log
	disk  *stable.Store
}

// growAfterShrink releases one key early and then acquires another for
// the same transaction — growing after shrinking.
//
//lock:handler
func (e *engine) growAfterShrink(txn string) {
	e.locks.Acquire(txn, "a", locking.Write, nil)
	e.locks.Release(txn, "a")
	e.locks.Acquire(txn, "b", locking.Write, nil) // want `lock-twophase: acquires "b" for txn after its locks were released`
	e.locks.ReleaseAll(txn)
}

// leaky returns early with the lock still held.
//
//lock:handler
func (e *engine) leaky(txn string, fail bool) error {
	e.locks.Acquire(txn, "k", locking.Write, nil)
	if fail {
		return errEarly // want `lock-leak: returns while txn may still hold "k"`
	}
	e.locks.ReleaseAll(txn)
	return nil
}

// descending acquires shard 1 before shard 0 — the opposite of the
// canonical ascending order.
//
//lock:handler
func (e *engine) descending(txn string) {
	e.st.shards[1].locks.Acquire(txn, "a", locking.Write, nil)
	e.st.shards[0].locks.Acquire(txn, "b", locking.Write, nil) // want `lock-order: acquires shard 0 for txn after shard 1`
	e.st.shards[0].locks.ReleaseAll(txn)
	e.st.shards[1].locks.ReleaseAll(txn)
}

// opposedScan acquires through the shard-routed store in whatever order
// the keys arrive — two of these with opposite key orders close a
// cross-manager waits-for cycle.
//
//lock:handler
func (e *engine) opposedScan(txn string, keys []string) error {
	for _, key := range keys { // want `lock-order: loop body acquires locks through get`
		if err := e.st.get(txn, key); err != nil {
			return err
		}
	}
	e.st.shards[0].locks.ReleaseAll(txn)
	e.st.shards[1].locks.ReleaseAll(txn)
	return nil
}

// holdAcross grows the lock set from inside a durability wait.
//
//lock:handler
func (e *engine) holdAcross(txn string) {
	e.disk.SyncThen(func() {
		e.locks.Acquire(txn, "late", locking.Write, nil) // want `lock-hold: acquires a lock inside a stable.SyncThen continuation`
	})
}

// releaseBeforeDecision lets the locks go before the decision record is
// durable.
//
//lock:handler
func (e *engine) releaseBeforeDecision(txn string) {
	e.locks.Acquire(txn, "k", locking.Write, nil)
	e.locks.ReleaseAll(txn) // want `lock-hold: releases txn's locks before its durable decision record`
	_ = e.wlog.Commit(txn)
}

//lock:handler extra argument // want `lock-extract: malformed .*handler: want no arguments, got 2`
func orphanArgs() {}

//lock:frobnicate retry // want `lock-extract: unknown directive .*frobnicate`
func orphanVerb() {}

// badSuppressions carries the reasonless and unbound directives.
//
//lock:handler
func badSuppressions(txn string) {
	//lock:ignore // want `lock-extract: .*ignore requires a reason`
	_ = txn
	//lock:handler // want `lock-extract: .*handler is not attached to a declaration`
	_ = txn
}
