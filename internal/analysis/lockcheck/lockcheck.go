// Package lockcheck is the seventh static-analysis layer of speccatlint: a
// two-phase-locking and cross-shard lock-order dataflow analysis over the
// transaction engines. The serializability argument (Section 3.5.1's strict
// 2PL building block) needs more than a correct lock manager — it needs
// every CALLER of the manager to follow the discipline: grow-then-shrink
// (no acquisition after any release of the same transaction), release
// everything at transaction end on every path, and — once the store is
// hash-sharded — acquire across shards in one canonical order, because each
// shard's deadlock detector sees only its own waits-for graph and a cycle
// split across two managers is invisible to both (the blind spot pinned by
// kvstore's TestCrossShardDeadlockBlindSpot and witnessed end-to-end by
// experiment E20).
//
// Analysis roots are the //fsm:handler and //dur:handler dispatch
// functions, the //comm:op-annotated store operations, and //lock:handler
// opt-ins; from each root the same-module call graph is followed, bridging
// kvstore.DB-style interface calls to every implementation in the load.
// Lock events are locking.Manager.Acquire / Release / ReleaseAll calls;
// durable decision points are wal.Log.Commit / Abort; durability waits are
// stable.Store.SyncThen and same-module wrappers that forward a
// continuation parameter to it.
//
// Annotation grammar:
//
//	//lock:handler          in a function's doc: analysis root that is not
//	                        already a handler or annotated store op
//	//lock:ordered <reason> suppresses lock-order findings on its own and
//	                        the next line; reason mandatory
//	//lock:ignore <reason>  suppresses all lock findings on its own and the
//	                        next line; reason mandatory
//
// Rules reported:
//
//   - lock-twophase: an Acquire for a transaction whose locks were already
//     released on this path — growing after shrinking, the direct negation
//     of two-phase locking.
//   - lock-leak: a return path of a lock-managing function (one that both
//     acquires and releases directly) on which an acquired lock is not
//     released — strictness demands ReleaseAll on every exit.
//   - lock-order: cross-shard acquisitions out of canonical ascending
//     shard-index order — either consecutive acquisitions with descending
//     constant indices, or a loop whose body acquires through shard-routed
//     managers in iteration order. Either pattern can close a waits-for
//     cycle across managers that no per-shard detector sees.
//   - lock-hold: an acquisition inside a stable.SyncThen continuation (the
//     growing phase must not extend past a durability wait), or a
//     ReleaseAll before the same transaction's wal commit/abort record in a
//     function that writes one (the decision must be durable before
//     strictness lets the locks go).
//   - lock-extract: malformed, unknown or unbound //lock:* directives, and
//     reasonless suppressions.
//
// A lock-order finding is cross-validated dynamically: CrossValidate
// compiles it into a tpcexplore schedule whose opposed workload stalls the
// sharded engine forever under lock-waiting (the fault-free progress
// oracle convicts the run) while the canonical-order engine survives the
// identical staging — see crossval.go and experiment E20.
package lockcheck

import (
	"go/token"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// Rule names reported by this layer.
const (
	RuleTwoPhase = "lock-twophase"
	RuleLeak     = "lock-leak"
	RuleOrder    = "lock-order"
	RuleHold     = "lock-hold"
	RuleExtract  = "lock-extract"
)

// Report describes what the analysis covered, so tests can pin coverage
// (a clean run over zero acquire sites would be vacuous, not clean).
type Report struct {
	// Roots are the analysis roots (//fsm:handler, //dur:handler, //comm:op
	// and //lock:handler functions), as "Type.Func" names, sorted.
	Roots []string
	// Analyzed counts the functions the flow analysis walked.
	Analyzed int
	// AcquireSites counts the direct locking.Manager.Acquire call sites in
	// analyzed functions; ReleaseSites the Release/ReleaseAll sites.
	AcquireSites int
	ReleaseSites int
	// RoutedCalls counts the shard-routed acquire-reaching call sites the
	// lock-order rule examined (calls dispatching through a multi-manager
	// type or an interface with a multi-manager implementation).
	RoutedCalls int
	// SyncThenSites counts the stable.Store.SyncThen continuations (direct
	// or via wrappers) whose bodies the lock-hold rule scanned.
	SyncThenSites int
}

// directive is one parsed //lock:<verb> annotation.
type directive struct {
	verb string
	args []string
	// rest is the raw argument text (reason-bearing verbs keep spaces).
	rest string
	pos  token.Position
}

// parseDirectives extracts the lock: directives of one comment. Like the
// sibling layers, the comment must BEGIN with a directive, but the leading
// directive may belong to a sibling layer: function docs carry
// "//comm:op write" or "//fsm:handler ..." that double as lockcheck roots,
// each layer reading its own segments and skipping the others'.
func parseDirectives(text string, pos token.Position) []directive {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "lock:") && !strings.HasPrefix(body, "fsm:") &&
		!strings.HasPrefix(body, "dur:") && !strings.HasPrefix(body, "comm:") {
		return nil
	}
	var out []directive
	for _, seg := range strings.Split(body, "//") {
		seg = strings.TrimSpace(seg)
		rest, ok := strings.CutPrefix(seg, "lock:")
		if !ok {
			continue
		}
		verb, args, _ := strings.Cut(rest, " ")
		args = strings.TrimSpace(args)
		out = append(out, directive{
			verb: verb,
			args: strings.Fields(args),
			rest: args,
			pos:  pos,
		})
	}
	return out
}

// Run analyzes the loaded packages and returns the coverage report and the
// surviving diagnostics (with //lock:ignore and //lock:ordered
// suppressions applied), sorted by position. The run is purely static; see
// CrossValidate for the dynamic confirmation of lock-order findings.
func Run(pkgs []*analysis.Package) (*Report, []analysis.Diagnostic) {
	x := newExtractor(pkgs)
	rep := x.extract()
	diags := x.suppress(x.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep, diags
}

// suppress drops diagnostics covered by a reasoned //lock:ignore (any
// rule) or //lock:ordered (lock-order only) on the same or the preceding
// line; reasonless suppressions are themselves findings (already reported
// during extraction).
func (x *extractor) suppress(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if lines := x.ignored[d.Pos.Filename]; lines[d.Pos.Line] {
			continue
		}
		if d.Rule == RuleOrder {
			if lines := x.orderIgnored[d.Pos.Filename]; lines[d.Pos.Line] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
