package lockcheck

import (
	"strings"
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// loadRepo loads this repository's internal tree.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoIsLockClean is the acceptance criterion: the repository's own
// engines follow the lock discipline (with reasoned suppressions where a
// policy argument replaces the static one), and the analysis demonstrably
// covered them — roots found, acquire/release sites counted, routed calls
// and SyncThen continuations examined. A clean run over zero lock events
// would be vacuous, not clean.
func TestRepoIsLockClean(t *testing.T) {
	rep, diags := Run(loadRepo(t))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	roots := strings.Join(rep.Roots, " ")
	for _, want := range []string{
		"Store.Get", "Store.Put", "Store.Increment", // //comm:op store operations
		"Master.handle", "Site.handle", // //fsm:handler engines
		"Site.applyDecision", // the //lock:handler-opted commit-path callback
		"Cohort.HandleMessage", "Coordinator.HandleMessage",
	} {
		if !strings.Contains(roots, want) {
			t.Errorf("analysis roots missing %s (got %s)", want, roots)
		}
	}
	if rep.Analyzed < 15 {
		t.Errorf("Analyzed = %d, want >= 15 (coverage collapsed)", rep.Analyzed)
	}
	if rep.AcquireSites < 6 {
		t.Errorf("AcquireSites = %d, want >= 6 (one per store operation)", rep.AcquireSites)
	}
	if rep.ReleaseSites < 2 {
		t.Errorf("ReleaseSites = %d, want >= 2 (Commit and Abort)", rep.ReleaseSites)
	}
	if rep.RoutedCalls < 6 {
		t.Errorf("RoutedCalls = %d, want >= 6 (the shard-routed DB dispatches)", rep.RoutedCalls)
	}
	if rep.SyncThenSites < 3 {
		t.Errorf("SyncThenSites = %d, want >= 3 (the durability-wait continuations)", rep.SyncThenSites)
	}
}

// TestLockCleanFixture: every clean shape is accepted, and the fixture
// exercised the analysis for real (acquire sites seen, a routed loop
// examined, a continuation scanned).
func TestLockCleanFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "lockclean")
	rep, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if rep.AcquireSites == 0 || rep.RoutedCalls == 0 || rep.SyncThenSites == 0 {
		t.Errorf("vacuous fixture coverage: %+v", rep)
	}
}

// TestLockBadFixture: exactly one finding per seeded mutation class, each
// on its seeded line.
func TestLockBadFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "lockbad")
	_, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
}

var crossValSeeds = []int64{1, 2, 3}

// TestCrossValidateConfirmsFinding closes the static→dynamic loop: the
// lockbad fixture's lock-order finding compiles into an opposed-workload
// schedule whose sharded, lock-waiting run stalls into a fault-free
// progress violation (the cross-manager deadlock neither per-shard
// detector sees), while the identical schedule under canonical lock order
// finishes clean — isolating the acquisition order as the cause.
func TestCrossValidateConfirmsFinding(t *testing.T) {
	dir := analysistest.FixtureDir(t, "lockbad")
	_, diags := Run(analysistest.Load(t, dir))
	var finding *analysis.Diagnostic
	for i := range diags {
		if diags[i].Rule == RuleOrder {
			finding = &diags[i]
			break
		}
	}
	if finding == nil {
		t.Fatal("lockbad fixture yielded no lock-order finding to cross-validate")
	}
	cv, err := CrossValidate(*finding, crossValSeeds)
	if err != nil {
		t.Fatal(err)
	}
	if cv == nil {
		t.Fatal("no dynamic witness for the lock-order finding")
	}
	stalled := false
	for _, oracle := range cv.Violated {
		if oracle == "progress" {
			stalled = true
		}
	}
	if !stalled {
		t.Errorf("witness violated %v, want the progress oracle", cv.Violated)
	}
	if !cv.CanonicalClean {
		t.Error("canonical-order control arm was not clean; the witness does not isolate acquisition order")
	}
	if cv.Schedule.Shards < 2 || !cv.Schedule.LockWait || cv.Schedule.CanonicalLockOrder {
		t.Errorf("witness schedule is not the sharded lock-waiting ablation: %+v", cv.Schedule)
	}
}

// TestCrossValidateRejectsOtherRules: only lock-order findings have a
// dynamic twin; handing any other rule over is a caller bug.
func TestCrossValidateRejectsOtherRules(t *testing.T) {
	_, err := CrossValidate(analysis.Diagnostic{Rule: RuleLeak}, crossValSeeds)
	if err == nil {
		t.Fatal("CrossValidate accepted a non-lock-order finding")
	}
}
