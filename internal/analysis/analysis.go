// Package analysis is a vet-style multi-analyzer framework over the
// standard library's go/ast, go/parser and go/types packages. It encodes
// the repository's DESIGN.md design rules — no panics reachable from
// exported API, no wall-clock time outside the simulator, no global
// math/rand source, no package-level mutable state, %w error wrapping —
// as mechanical checks, in the same spirit as the paper's thesis that
// composition errors should be caught by cheap static well-formedness
// checks before any prover (or reviewer) runs.
//
// Findings can be suppressed at the site with a reason:
//
//	//lint:allow <rule> <reason...>
//
// placed either at the end of the offending line or on the line
// immediately above it. A suppression without a reason is itself a
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named design-rule check.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-line description of the rule.
	Doc string
	// Run reports findings on one package through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule set in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoPanic,
		NoWallClock,
		NoRand,
		NoGlobalState,
		ErrWrap,
	}
}

// ByName returns the named analyzer, if registered.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies the analyzers to the packages and returns surviving
// diagnostics (suppressions applied), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		diags = append(diags, applySuppressions(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos    token.Position
	rule   string
	reason string
}

// allowDirectives extracts the //lint:allow comments of one file.
func allowDirectives(fset *token.FileSet, f *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
			rule, reason, _ := strings.Cut(rest, " ")
			out = append(out, allowDirective{
				pos:    fset.Position(c.Pos()),
				rule:   rule,
				reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by a //lint:allow directive
// for the same rule on the same or preceding line, and reports malformed
// directives (missing rule or reason).
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> rule -> set of lines at which the rule is allowed.
	allowed := map[string]map[string]map[int]bool{}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range allowDirectives(pkg.Fset, f) {
			if d.rule == "" || d.reason == "" {
				out = append(out, Diagnostic{
					Pos:     d.pos,
					Rule:    "lint-allow",
					Message: "malformed suppression: want //lint:allow <rule> <reason>",
				})
				continue
			}
			byRule := allowed[d.pos.Filename]
			if byRule == nil {
				byRule = map[string]map[int]bool{}
				allowed[d.pos.Filename] = byRule
			}
			lines := byRule[d.rule]
			if lines == nil {
				lines = map[int]bool{}
				byRule[d.rule] = lines
			}
			// The directive covers its own line (end-of-line comment) and
			// the next line (comment placed above the offending line).
			lines[d.pos.Line] = true
			lines[d.pos.Line+1] = true
		}
	}
	for _, d := range diags {
		if lines := allowed[d.Pos.Filename][d.Rule]; lines[d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
