package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ErrWrap flags fmt.Errorf calls that forward an error value through %v
// or %s instead of %w (DESIGN.md: errors wrapped with %w so errors.Is /
// errors.As keep working through package boundaries).
var ErrWrap = &Analyzer{ //lint:allow noglobalstate analyzer singleton, assigned once and never mutated
	Name: "errwrap",
	Doc:  "error-forwarding fmt.Errorf must use %w, not %v/%s",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[base].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "fmt" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				if i >= len(verbs) {
					break
				}
				v := verbs[i]
				if v != 'v' && v != 's' {
					continue
				}
				tv, ok := pass.Pkg.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errType) {
					pass.Reportf(arg.Pos(), "error argument formatted with %%%c; use %%w so the cause stays unwrappable", v)
				}
			}
			return true
		})
	}
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format string. Width/precision stars and
// explicit argument indexes are ignored: the mapping is positional,
// which matches every call site in this codebase.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			// Skip flags, width, precision and index digits.
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || c == '*' || c == '[' || c == ']' ||
				(c >= '1' && c <= '9') {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
