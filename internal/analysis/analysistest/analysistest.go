// Package analysistest is the shared fixture harness for the repository's
// static-analysis layers (the design-rule analyzers of internal/analysis
// and the protocol extraction of internal/analysis/fsmcheck). A fixture is
// a directory holding one Go package whose sources carry expectation
// comments:
//
//	badCall() // want `rule: message regexp`
//
// Each backquoted chunk after "want" is a regular expression matched
// against the "rule: message" rendering of a diagnostic reported on that
// line. Check fails on both unexpected diagnostics and unmatched
// expectations, so fixtures pin analyzer output exactly.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"speccat/internal/analysis"
)

// Expectation is one `// want` annotation in a fixture file.
type Expectation struct {
	// File is the absolute path of the fixture file.
	File string
	// Line is the 1-based line the diagnostic must land on.
	Line int
	// Re is matched against "rule: message".
	Re *regexp.Regexp
}

// FixtureDir resolves a fixture name to the absolute path of
// testdata/src/<name> under the calling test's package directory.
func FixtureDir(t testing.TB, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Load parses and type-checks the single fixture package rooted at dir
// with the source-based loader.
func Load(t testing.TB, dir string) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// Expectations scans dir's .go files for want comments.
func Expectations(t testing.TB, dir string) []Expectation {
	t.Helper()
	wantRE := regexp.MustCompile("//\\s*want\\s+(.*)$")
	chunkRE := regexp.MustCompile("`([^`]+)`")
	var out []Expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			chunks := chunkRE.FindAllStringSubmatch(m[1], -1)
			if len(chunks) == 0 {
				t.Fatalf("%s:%d: malformed want comment (use backquoted regexps)", path, i+1)
			}
			for _, c := range chunks {
				re, err := regexp.Compile(c[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				out = append(out, Expectation{File: path, Line: i + 1, Re: re})
			}
		}
	}
	return out
}

// Check asserts that diags and dir's want comments match one-to-one: every
// diagnostic is expected on its line, and every expectation is hit.
func Check(t testing.TB, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := Expectations(t, dir)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.File != d.Pos.Filename || w.Line != d.Pos.Line {
				continue
			}
			if w.Re.MatchString(d.Rule + ": " + d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.File, w.Line, w.Re)
		}
	}
}
