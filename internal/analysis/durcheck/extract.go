package durcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// extractor accumulates the durability facts of one load.
type extractor struct {
	pkgs  []*analysis.Package
	diags []analysis.Diagnostic

	// ignored maps filename -> set of suppressed lines (//dur:ignore).
	ignored map[string]map[int]bool
	// bindable records every well-formed non-ignore directive by comment
	// position; bound marks the ones a later pass attached to a
	// declaration. The difference is reported as dur-extract.
	bindable map[string]directive
	bound    map[string]bool

	// requires maps a wire-kind constant to the durable-write class its
	// sends demand; kindName / kindVal carry its name and wire value.
	requires map[types.Object]string
	kindName map[types.Object]string
	kindVal  map[types.Object]string
	// pkgRequires marks packages declaring at least one //dur:requires;
	// only there is an unresolvable send kind worth a finding.
	pkgRequires map[*types.Package]bool

	// volatiles are //dur:volatile-annotated fields and vars.
	volatiles map[types.Object]string

	// funcs indexes every function declaration of the load.
	funcs map[types.Object]*funcInfo

	rep *Report
}

// funcInfo is the per-function fact sheet the flow analysis consumes.
type funcInfo struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
	obj  types.Object
	// name is the display name, receiver-qualified for methods.
	name string

	// isRoot marks analysis roots (//fsm:handler or //dur:handler).
	isRoot bool
	// writes holds the //dur:writes classes; annotated distinguishes an
	// empty list from "no annotation".
	writes    []string
	annotated bool
	// appliesParam is the //dur:applies map parameter, if any.
	appliesParam types.Object
	appliesName  string

	// directDurable: the body itself mutates stable storage (stable.Store
	// mutator, wal.Log mutator, or wal.Resolve).
	directDurable bool
	// reachesDurable: directDurable, or calls a callee that is annotated
	// or directDurable (the "one level of call summaries" rule).
	reachesDurable bool
	// sendWrapKindIdx is the flattened parameter index this function
	// forwards as a message kind to Network.Send/Broadcast; -1 otherwise.
	sendWrapKindIdx int
	// mutatesVolatile: the body index-assigns or deletes through a
	// //dur:volatile object or this function's //dur:applies parameter.
	mutatesVolatile bool
	// paramIdx maps the function's named parameters to their flattened
	// argument positions.
	paramIdx map[types.Object]int
}

func newExtractor(pkgs []*analysis.Package) *extractor {
	return &extractor{
		pkgs:        pkgs,
		ignored:     map[string]map[int]bool{},
		bindable:    map[string]directive{},
		bound:       map[string]bool{},
		requires:    map[types.Object]string{},
		kindName:    map[types.Object]string{},
		kindVal:     map[types.Object]string{},
		pkgRequires: map[*types.Package]bool{},
		volatiles:   map[types.Object]string{},
		funcs:       map[types.Object]*funcInfo{},
		rep: &Report{
			Requires:  map[string]string{},
			KindValue: map[string]string{},
			Writes:    map[string][]string{},
		},
	}
}

func (x *extractor) reportf(pkg *analysis.Package, pos token.Pos, rule, format string, args ...any) {
	x.diags = append(x.diags, analysis.Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// extract runs the full pipeline: directive scan, binding, per-function
// fact computation, reachability, and the flow analysis of every function
// in scope.
func (x *extractor) extract() *Report {
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanComments(pkg, f)
		}
	}
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanConsts(pkg, f)
			x.scanVolatiles(pkg, f)
		}
	}
	for _, pkg := range x.pkgs {
		for _, f := range pkg.Files {
			x.scanFuncs(pkg, f)
		}
	}
	x.computeFacts()
	x.validateWrites()
	analyzed := x.analysisSet()
	for _, fi := range analyzed {
		newFlow(x, fi).run()
	}
	x.rep.Analyzed = len(analyzed)
	x.reportUnbound()
	sort.Strings(x.rep.Roots)
	sort.Strings(x.rep.Volatiles)
	return x.rep
}

// scanComments validates every //dur: directive and registers suppressions.
func (x *extractor) scanComments(pkg *analysis.Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.scanDirective(pkg, c, d)
			}
		}
	}
}

func (x *extractor) scanDirective(pkg *analysis.Package, c *ast.Comment, d directive) {
	switch d.verb {
	case "requires", "applies":
		if len(d.args) != 1 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //dur:%s: want exactly one argument, got %d", d.verb, len(d.args))
			return
		}
	case "writes":
		if len(d.args) == 0 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //dur:writes: want at least one class")
			return
		}
	case "handler", "volatile":
		if len(d.args) != 0 {
			x.reportf(pkg, c.Pos(), RuleExtract, "malformed //dur:%s: want no arguments", d.verb)
			return
		}
	case "ignore":
		if d.rest == "" {
			x.reportf(pkg, c.Pos(), RuleExtract, "//dur:ignore requires a reason")
			return
		}
		lines := x.ignored[d.pos.Filename]
		if lines == nil {
			lines = map[int]bool{}
			x.ignored[d.pos.Filename] = lines
		}
		lines[d.pos.Line] = true
		lines[d.pos.Line+1] = true
		return
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "unknown directive //dur:%s", d.verb)
		return
	}
	x.bindable[posKey(d.pos)] = d
}

// scanConsts binds //dur:requires directives trailing wire-kind constants.
func (x *extractor) scanConsts(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || vs.Comment == nil {
				continue
			}
			for _, c := range vs.Comment.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, d := range parseDirectives(c.Text, pos) {
					x.bindConstDirective(pkg, vs, c, d)
				}
			}
		}
	}
}

func (x *extractor) bindConstDirective(pkg *analysis.Package, spec *ast.ValueSpec, c *ast.Comment, d directive) {
	if _, ok := x.bindable[posKey(d.pos)]; !ok {
		return // malformed; already reported
	}
	if d.verb != "requires" {
		x.reportf(pkg, c.Pos(), RuleExtract, "directive //dur:%s cannot bind to a constant", d.verb)
		x.bound[posKey(d.pos)] = true
		return
	}
	if len(spec.Names) != 1 {
		x.reportf(pkg, c.Pos(), RuleExtract, "//dur:requires must annotate a single constant")
		x.bound[posKey(d.pos)] = true
		return
	}
	obj := pkg.Info.Defs[spec.Names[0]]
	cnst, ok := obj.(*types.Const)
	if !ok || cnst.Val().Kind() != constant.String {
		x.reportf(pkg, c.Pos(), RuleExtract, "//dur:requires must annotate a string constant")
		x.bound[posKey(d.pos)] = true
		return
	}
	x.bound[posKey(d.pos)] = true
	x.requires[obj] = d.args[0]
	x.kindName[obj] = spec.Names[0].Name
	x.kindVal[obj] = constant.StringVal(cnst.Val())
	x.pkgRequires[pkg.Types] = true
	x.rep.Requires[spec.Names[0].Name] = d.args[0]
	x.rep.KindValue[spec.Names[0].Name] = constant.StringVal(cnst.Val())
}

// scanVolatiles binds //dur:volatile directives trailing struct fields and
// package-level var declarations.
func (x *extractor) scanVolatiles(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		switch gd.Tok {
		case token.VAR:
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Comment == nil {
					continue
				}
				for _, c := range vs.Comment.List {
					for _, name := range vs.Names {
						x.bindVolatile(pkg, c, pkg.Info.Defs[name], name.Name)
					}
				}
			}
		case token.TYPE:
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if field.Comment == nil {
						continue
					}
					for _, c := range field.Comment.List {
						for _, name := range field.Names {
							x.bindVolatile(pkg, c, pkg.Info.Defs[name], ts.Name.Name+"."+name.Name)
						}
					}
				}
			}
		}
	}
}

func (x *extractor) bindVolatile(pkg *analysis.Package, c *ast.Comment, obj types.Object, name string) {
	pos := pkg.Fset.Position(c.Pos())
	for _, d := range parseDirectives(c.Text, pos) {
		if _, ok := x.bindable[posKey(d.pos)]; !ok {
			return
		}
		if d.verb != "volatile" {
			x.reportf(pkg, c.Pos(), RuleExtract, "directive //dur:%s cannot bind to a field or variable", d.verb)
			x.bound[posKey(d.pos)] = true
			return
		}
		x.bound[posKey(d.pos)] = true
		if obj == nil {
			return
		}
		x.volatiles[obj] = name
		x.rep.Volatiles = append(x.rep.Volatiles, name)
	}
}

// scanFuncs indexes every function declaration and binds the doc-comment
// directives //dur:handler, //dur:writes and //dur:applies; //fsm:handler
// docs also mark analysis roots.
func (x *extractor) scanFuncs(pkg *analysis.Package, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		obj := pkg.Info.Defs[fn.Name]
		if obj == nil {
			continue
		}
		fi := &funcInfo{
			pkg:             pkg,
			decl:            fn,
			obj:             obj,
			name:            funcDisplayName(fn),
			sendWrapKindIdx: -1,
			paramIdx:        map[types.Object]int{},
		}
		idx := 0
		if fn.Type.Params != nil {
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					if po := pkg.Info.Defs[name]; po != nil {
						fi.paramIdx[po] = idx
					}
					idx++
				}
			}
		}
		x.funcs[obj] = fi
		if fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(body, "fsm:handler") {
				fi.isRoot = true
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, d := range parseDirectives(c.Text, pos) {
				x.bindFuncDirective(pkg, fi, c, d)
			}
		}
		if fi.isRoot {
			x.rep.Roots = append(x.rep.Roots, fi.name)
		}
	}
}

func (x *extractor) bindFuncDirective(pkg *analysis.Package, fi *funcInfo, c *ast.Comment, d directive) {
	if _, ok := x.bindable[posKey(d.pos)]; !ok {
		return
	}
	switch d.verb {
	case "handler":
		x.bound[posKey(d.pos)] = true
		fi.isRoot = true
	case "writes":
		x.bound[posKey(d.pos)] = true
		fi.annotated = true
		fi.writes = append(fi.writes, d.args...)
		x.rep.Writes[fi.name] = append(x.rep.Writes[fi.name], d.args...)
	case "applies":
		x.bound[posKey(d.pos)] = true
		for po := range fi.paramIdx {
			if po.Name() == d.args[0] {
				fi.appliesParam = po
				fi.appliesName = d.args[0]
			}
		}
		if fi.appliesParam == nil {
			x.reportf(pkg, c.Pos(), RuleExtract, "//dur:applies names unknown parameter %q of %s", d.args[0], fi.name)
		}
	default:
		x.reportf(pkg, c.Pos(), RuleExtract, "directive //dur:%s cannot bind to a function", d.verb)
		x.bound[posKey(d.pos)] = true
	}
}

func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// computeFacts fills the per-function classification fields that depend on
// the whole load: direct durable writes, send wrappers, volatile mutation.
func (x *extractor) computeFacts() {
	for _, fi := range x.funcs {
		x.computeFuncFacts(fi)
	}
	// Second pass: one level of call summaries.
	for _, fi := range x.funcs {
		fi.reachesDurable = fi.directDurable
		if fi.reachesDurable {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := x.funcs[calleeObjOf(fi.pkg, call.Fun)]; callee != nil {
				if callee.annotated || callee.directDurable {
					fi.reachesDurable = true
				}
			}
			return true
		})
	}
}

func (x *extractor) computeFuncFacts(fi *funcInfo) {
	pkg := fi.pkg
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			obj := calleeObjOf(pkg, v.Fun)
			if isStableMutator(obj) || isWalMutator(obj) {
				fi.directDurable = true
			}
			if idx, isSend := sendKindIndex(obj); isSend && idx < len(v.Args) {
				if id, ok := unparen(v.Args[idx]).(*ast.Ident); ok {
					if po := pkg.Info.Uses[id]; po != nil {
						if pidx, isParam := fi.paramIdx[po]; isParam {
							fi.sendWrapKindIdx = pidx
						}
					}
				}
			}
			if isDeleteBuiltin(pkg, v.Fun) && len(v.Args) > 0 {
				if x.volatileTarget(pkg, fi, v.Args[0]) != "" {
					fi.mutatesVolatile = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ie, ok := lhs.(*ast.IndexExpr); ok {
					if x.volatileTarget(pkg, fi, ie.X) != "" {
						fi.mutatesVolatile = true
					}
				}
			}
		}
		return true
	})
}

// volatileTarget names the //dur:volatile object (or //dur:applies
// parameter) an expression resolves to, or "" when it is none.
func (x *extractor) volatileTarget(pkg *analysis.Package, fi *funcInfo, e ast.Expr) string {
	var obj types.Object
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[v]
		if obj == nil {
			obj = pkg.Info.Defs[v]
		}
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[v.Sel]
	}
	if obj == nil {
		return ""
	}
	if name, ok := x.volatiles[obj]; ok {
		return name
	}
	if fi.appliesParam != nil && obj == fi.appliesParam {
		return "parameter " + fi.appliesName
	}
	return ""
}

// validateWrites reports stale //dur:writes annotations: an asserted
// durable-write summary on a function that never reaches stable storage
// (directly or via one level of callees) is a lie the analysis would
// silently trust.
func (x *extractor) validateWrites() {
	for _, fi := range sortedFuncs(x.funcs) {
		if fi.annotated && !fi.reachesDurable {
			x.reportf(fi.pkg, fi.decl.Name.Pos(), RuleSummary,
				"function %s declares //dur:writes %s but never reaches stable storage",
				fi.name, strings.Join(fi.writes, " "))
		}
	}
}

// analysisSet is the functions the flow analysis walks: everything
// reachable from an analysis root through static calls, plus every
// function that mutates volatile state (the write-ahead rule holds even in
// packages with no handlers, e.g. internal/wal).
func (x *extractor) analysisSet() []*funcInfo {
	visited := map[*funcInfo]bool{}
	var queue []*funcInfo
	for _, fi := range sortedFuncs(x.funcs) {
		if fi.isRoot {
			visited[fi] = true
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := x.funcs[calleeObjOf(fi.pkg, call.Fun)]; callee != nil && !visited[callee] {
				visited[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	for _, fi := range sortedFuncs(x.funcs) {
		if !visited[fi] && (fi.mutatesVolatile || fi.appliesParam != nil) {
			visited[fi] = true
		}
	}
	out := make([]*funcInfo, 0, len(visited))
	for _, fi := range sortedFuncs(x.funcs) {
		if visited[fi] {
			out = append(out, fi)
		}
	}
	return out
}

// sortedFuncs orders functions by position for deterministic output.
func sortedFuncs(m map[types.Object]*funcInfo) []*funcInfo {
	out := make([]*funcInfo, 0, len(m))
	for _, fi := range m {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		a := out[i].pkg.Fset.Position(out[i].decl.Pos())
		b := out[j].pkg.Fset.Position(out[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// reportUnbound flags directives that never attached to a declaration.
func (x *extractor) reportUnbound() {
	var keys []string
	for key := range x.bindable {
		if !x.bound[key] {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		d := x.bindable[key]
		x.diags = append(x.diags, analysis.Diagnostic{
			Pos:     d.pos,
			Rule:    RuleExtract,
			Message: fmt.Sprintf("//dur:%s is not attached to a declaration", d.verb),
		})
	}
}

// --- object classification helpers -----------------------------------------

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObjOf resolves a call's function expression to its object.
func calleeObjOf(pkg *analysis.Package, fun ast.Expr) types.Object {
	switch v := unparen(fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	}
	return nil
}

// constObjOf resolves an expression to the constant object it names.
func constObjOf(pkg *analysis.Package, e ast.Expr) types.Object {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[v]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[v.Sel]
	}
	return nil
}

// isMethodOn reports whether obj is one of the named methods on the named
// type of a package whose import path ends in pkgSuffix.
func isMethodOn(obj types.Object, pkgSuffix, typeName string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Name() != typeName || tn.Pkg() == nil || !strings.HasSuffix(tn.Pkg().Path(), pkgSuffix) {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// isStableMutator recognizes the stable.Store mutation API.
func isStableMutator(obj types.Object) bool {
	return isMethodOn(obj, "internal/stable", "Store", "Put", "Delete", "Append", "TruncateLog")
}

// isWalMutator recognizes wal.Log mutators and the package-level
// wal.Resolve — durable writes of class "log".
func isWalMutator(obj types.Object) bool {
	if isMethodOn(obj, "internal/wal", "Log", "Begin", "LoggedUpdate", "LoggedApply", "Commit", "Abort") {
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Resolve" || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && strings.HasSuffix(fn.Pkg().Path(), "internal/wal")
}

// sendKindIndex reports whether obj is an externally visible send
// primitive and, if so, which argument carries the message kind. Both
// faces of the runtime boundary count: the simulator's concrete
// simnet.Network (harness code) and the rt.Transport interface the
// ported engines call through — without the latter the repo-wide dur
// run would go vacuous after the rt port.
func sendKindIndex(obj types.Object) (int, bool) {
	if isMethodOn(obj, "internal/simnet", "Network", "Send") ||
		isMethodOn(obj, "internal/rt", "Transport", "Send") {
		return 2, true
	}
	if isMethodOn(obj, "internal/simnet", "Network", "Broadcast") ||
		isMethodOn(obj, "internal/rt", "Transport", "Broadcast") {
		return 1, true
	}
	return 0, false
}

// isDeleteBuiltin reports whether fun names the delete builtin.
func isDeleteBuiltin(pkg *analysis.Package, fun ast.Expr) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
