package durcheck

import (
	"fmt"

	"speccat/internal/explore"
	"speccat/internal/simnet"
)

// wire value of the 3PC prepare fan-out, used to stage the coordinator
// crash that forces the cohorts into the termination protocol.
const prepareKind = "tpc.prepare"

// CrossValidation is the dynamic witness for one static finding: a
// concrete replayable schedule whose run violates the atomicity or
// durability oracle because a send of Kind escaped before its required
// durable write.
type CrossValidation struct {
	// Kind is the wire value of the offending message kind.
	Kind string
	// Seed is the probe seed that produced the witness.
	Seed int64
	// Schedule is the replayable witness (runnable with cmd/tpcexplore).
	Schedule explore.Schedule
	// Violated are the oracle names the witness run fails.
	Violated []string
}

// CrossValidate turns a static dur-send finding into a dynamic
// counterexample: it stages, per seed, a schedule that (1) drops one
// prepare of a fan-out and crashes the coordinator — wedging one cohort a
// phase behind and forcing the survivors into the termination protocol —
// then (2) crashes the terminating cohort between the first and second
// send of its decision dissemination of kindValue, and recovers it later.
// If that dissemination is not write-ahead of the decision (what the
// static finding claims), the recovered cohort re-decides from its stale
// durable state while a peer already acted on the escaped message, and the
// atomicity or durability oracle fails.
//
// It returns the first witness found, or nil when no seed yields one —
// which is the expected outcome for an engine that persists before
// sending (the negative control of the cross-validation tests).
func CrossValidate(kindValue, protocol string, seeds []int64) (*CrossValidation, error) {
	for _, seed := range seeds {
		cv, err := crossValidateSeed(kindValue, protocol, seed)
		if err != nil {
			return nil, err
		}
		if cv != nil {
			return cv, nil
		}
	}
	return nil, nil
}

func crossValidateSeed(kindValue, protocol string, seed int64) (*CrossValidation, error) {
	base := explore.Schedule{Protocol: protocol, Seed: seed}

	// Stage 1: fault-free probe for the time/send coordinates of the run.
	probe, probeLog, err := explore.RunLogged(base)
	if err != nil {
		return nil, fmt.Errorf("durcheck: cross-validation probe: %w", err)
	}
	horizon := probe.Stats.End + 3000

	// Stage 2: the first post-setup prepare fan-out locates the coordinator
	// and a victim cohort. Dropping one prepare leaves that cohort a phase
	// behind; crashing the coordinator right after hands the decision to
	// the cohorts' termination protocol.
	prep := consecutiveGroup(probeLog, prepareKind, probe.Stats.SetupSends, 0)
	if len(prep) < 2 {
		return nil, nil
	}
	coord := prep[0].From
	staged := base
	staged.Horizon = horizon
	staged.Faults = []explore.Fault{
		{Kind: explore.FaultDropSend, Seq: prep[0].Seq},
		{Kind: explore.FaultCrashAtTime, Site: coord, At: prep[0].At + 1},
	}

	// Stage 3: find the terminating cohort's dissemination of kindValue —
	// a consecutive multi-target fan-out not sent by the coordinator.
	_, stagedLog, err := explore.RunLogged(staged)
	if err != nil {
		return nil, fmt.Errorf("durcheck: cross-validation staging: %w", err)
	}
	diss := consecutiveGroup(stagedLog, kindValue, prep[0].Seq, coord)
	if len(diss) < 2 {
		return nil, nil
	}

	// Stage 4: crash the disseminating cohort between its first and second
	// send, recover it later, and check the oracles. A write-ahead engine
	// re-decides identically after recovery; one that sends first splits
	// the decision.
	recoverAt := diss[0].At + 400
	final := staged
	if recoverAt+400 > final.Horizon {
		final.Horizon = recoverAt + 400
	}
	final.Faults = append(append([]explore.Fault{}, staged.Faults...),
		explore.Fault{Kind: explore.FaultCrashAtSend, Site: diss[0].From, Seq: diss[1].Seq},
		explore.Fault{Kind: explore.FaultRecoverAtTime, Site: diss[0].From, At: recoverAt},
	)
	res, err := explore.Run(final)
	if err != nil {
		return nil, fmt.Errorf("durcheck: cross-validation run: %w", err)
	}
	for _, oracle := range res.ViolatedOracles() {
		if oracle == "atomicity" || oracle == "durability" {
			return &CrossValidation{
				Kind:     kindValue,
				Seed:     seed,
				Schedule: final,
				Violated: res.ViolatedOracles(),
			}, nil
		}
	}
	return nil, nil
}

// consecutiveGroup returns the first run of at least two consecutive
// sends of kind in the log with the same sender and timestamp, starting at
// or after minSeq and not sent by exclude (pass 0 to exclude nobody —
// node IDs are 1-based).
func consecutiveGroup(log []explore.SendInfo, kind string, minSeq uint64, exclude simnet.NodeID) []explore.SendInfo {
	var group []explore.SendInfo
	for _, s := range log {
		if s.Seq < minSeq || s.Kind != kind || s.From == exclude {
			if len(group) >= 2 {
				return group
			}
			group = nil
			continue
		}
		if len(group) > 0 && (group[0].From != s.From || group[0].At != s.At) {
			if len(group) >= 2 {
				return group
			}
			group = nil
		}
		group = append(group, s)
	}
	if len(group) >= 2 {
		return group
	}
	return nil
}
