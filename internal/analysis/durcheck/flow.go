package durcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// flowState is the must-available durable-write information at one program
// point: avail[class] holds when a durable write of class dominates the
// point on every path. The pseudo-class "" means "some durable write"
// (what the volatile rule needs); "fn:<name>" marks an unannotated
// durable-write callee (what dur-summary reports at requiring sends).
type flowState struct {
	avail map[string]bool
	// killedAt remembers, per class, the branch that lost it at a join —
	// the position findings blame when the write exists on another path.
	killedAt   map[string]token.Pos
	terminated bool
}

func newFlowState() *flowState {
	return &flowState{avail: map[string]bool{}, killedAt: map[string]token.Pos{}}
}

func (s *flowState) clone() *flowState {
	c := &flowState{
		avail:      make(map[string]bool, len(s.avail)),
		killedAt:   make(map[string]token.Pos, len(s.killedAt)),
		terminated: s.terminated,
	}
	for k, v := range s.avail {
		c.avail[k] = v
	}
	for k, v := range s.killedAt {
		c.killedAt[k] = v
	}
	return c
}

func (s *flowState) gen(classes ...string) {
	for _, cls := range classes {
		s.avail[cls] = true
		delete(s.killedAt, cls)
	}
}

// join folds branch out-states back into s: the intersection of the
// non-terminated branches, recording which branch killed each class that
// only some paths provide. No live branch means all paths returned.
func (s *flowState) join(branches []*flowState, poss []token.Pos) {
	var live []*flowState
	var livePos []token.Pos
	for i, b := range branches {
		if !b.terminated {
			live = append(live, b)
			livePos = append(livePos, poss[i])
		}
	}
	if len(live) == 0 {
		s.terminated = true
		return
	}
	inter := map[string]bool{}
	for cls := range live[0].avail {
		all := true
		for _, b := range live[1:] {
			if !b.avail[cls] {
				all = false
				break
			}
		}
		if all {
			inter[cls] = true
		}
	}
	killed := map[string]token.Pos{}
	for _, b := range live {
		for cls, p := range b.killedAt {
			if _, ok := killed[cls]; !ok {
				killed[cls] = p
			}
		}
	}
	for _, b := range live {
		for cls := range b.avail {
			if inter[cls] {
				continue
			}
			if _, ok := killed[cls]; ok {
				continue
			}
			for j, ob := range live {
				if !ob.avail[cls] {
					killed[cls] = livePos[j]
					break
				}
			}
		}
	}
	for cls := range inter {
		delete(killed, cls)
	}
	s.avail = inter
	s.killedAt = killed
}

// flow walks one function with must-available durable-write states,
// checking requiring sends and volatile writes as it goes. Each function
// is analyzed once from an empty in-state: durable writes performed by a
// caller before the call do not excuse ordering inside the callee (the
// callee may also be entered from a path without them).
type flow struct {
	x   *extractor
	pkg *analysis.Package
	fi  *funcInfo
	// varKinds maps a local variable to every string constant assigned to
	// it anywhere in the function; a send through the variable must satisfy
	// the requirements of all of them.
	varKinds map[types.Object][]types.Object
}

func newFlow(x *extractor, fi *funcInfo) *flow {
	return &flow{x: x, pkg: fi.pkg, fi: fi, varKinds: map[types.Object][]types.Object{}}
}

func (a *flow) run() {
	a.collectVarKinds()
	s := newFlowState()
	a.block(a.fi.decl.Body.List, s)
}

// collectVarKinds is a pre-pass: every assignment of a string constant to
// a local variable is recorded, so a send of a variable kind is checked
// against every constant the variable may hold (flow-insensitively —
// conservative for requiring kinds).
func (a *flow) collectVarKinds() {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lobj := a.pkg.Info.Defs[id]
		if lobj == nil {
			lobj = a.pkg.Info.Uses[id]
		}
		if lobj == nil {
			return
		}
		cobj, ok := constObjOf(a.pkg, rhs).(*types.Const)
		if !ok || cobj.Val().Kind() != constant.String {
			return
		}
		a.varKinds[lobj] = append(a.varKinds[lobj], cobj)
	}
	ast.Inspect(a.fi.decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					record(v.Lhs[i], v.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) == len(v.Values) {
				for i := range v.Names {
					record(v.Names[i], v.Values[i])
				}
			}
		}
		return true
	})
}

func (a *flow) block(list []ast.Stmt, s *flowState) {
	for _, st := range list {
		a.stmt(st, s)
	}
}

func (a *flow) stmt(st ast.Stmt, s *flowState) {
	switch v := st.(type) {
	case nil:
	case *ast.BlockStmt:
		a.block(v.List, s)
	case *ast.ExprStmt:
		a.expr(v.X, s)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			a.expr(rhs, s)
		}
		for _, lhs := range v.Lhs {
			if ie, ok := lhs.(*ast.IndexExpr); ok {
				a.expr(ie.Index, s)
				a.checkMutation(ie.X, ie.Pos(), s)
			}
		}
	case *ast.IncDecStmt:
		if ie, ok := v.X.(*ast.IndexExpr); ok {
			a.expr(ie.Index, s)
			a.checkMutation(ie.X, ie.Pos(), s)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.expr(val, s)
					}
				}
			}
		}
	case *ast.IfStmt:
		a.stmt(v.Init, s)
		a.expr(v.Cond, s)
		then := s.clone()
		a.stmt(v.Body, then)
		els := s.clone()
		elsPos := v.Pos()
		if v.Else != nil {
			elsPos = v.Else.Pos()
			a.stmt(v.Else, els)
		}
		s.join([]*flowState{then, els}, []token.Pos{v.Body.Pos(), elsPos})
	case *ast.SwitchStmt:
		a.stmt(v.Init, s)
		a.expr(v.Tag, s)
		a.caseBranches(v.Body, v.Pos(), s)
	case *ast.TypeSwitchStmt:
		a.stmt(v.Init, s)
		a.stmt(v.Assign, s)
		a.caseBranches(v.Body, v.Pos(), s)
	case *ast.SelectStmt:
		var branches []*flowState
		var poss []token.Pos
		for _, cl := range v.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			b := s.clone()
			a.stmt(cc.Comm, b)
			a.block(cc.Body, b)
			branches = append(branches, b)
			poss = append(poss, cc.Pos())
		}
		if len(branches) > 0 {
			s.join(branches, poss)
		}
	case *ast.ForStmt:
		a.stmt(v.Init, s)
		a.expr(v.Cond, s)
		body := s.clone()
		a.block(v.Body.List, body)
		a.stmt(v.Post, body)
		// The loop may run zero times: the out-state is the in-state;
		// statements inside were checked against the evolving body state.
	case *ast.RangeStmt:
		a.expr(v.X, s)
		body := s.clone()
		a.block(v.Body.List, body)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			a.expr(r, s)
		}
		s.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough: conservatively treat the path as
		// leaving the current region — its writes never reach the join.
		s.terminated = true
	case *ast.DeferStmt:
		// Runs at return; its sends must stand on their own.
		a.expr(v.Call, s.clone())
	case *ast.GoStmt:
		a.expr(v.Call, s.clone())
	case *ast.SendStmt:
		a.expr(v.Chan, s)
		a.expr(v.Value, s)
	case *ast.LabeledStmt:
		a.stmt(v.Stmt, s)
	}
}

// caseBranches joins the clauses of a switch or type switch; a missing
// default adds an implicit pass-through branch.
func (a *flow) caseBranches(body *ast.BlockStmt, pos token.Pos, s *flowState) {
	var branches []*flowState
	var poss []token.Pos
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b := s.clone()
		for _, e := range cc.List {
			a.expr(e, b)
		}
		a.block(cc.Body, b)
		branches = append(branches, b)
		poss = append(poss, cc.Pos())
	}
	if !hasDefault {
		branches = append(branches, s.clone())
		poss = append(poss, pos)
	}
	if len(branches) > 0 {
		s.join(branches, poss)
	}
}

// expr walks an expression, handling calls (gens and checks) and function
// literals (analyzed against a snapshot: a deferred closure cannot count
// on writes that happen after its registration).
func (a *flow) expr(e ast.Expr, s *flowState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			a.block(v.Body.List, s.clone())
			return false
		case *ast.CallExpr:
			a.handleCall(v, s)
		}
		return true
	})
}

// handleCall classifies one call: volatile delete, externally visible
// send (direct or via a wrapper), durable write (annotated summary,
// one-level summary, or direct stable/wal mutation).
func (a *flow) handleCall(c *ast.CallExpr, s *flowState) {
	if isDeleteBuiltin(a.pkg, c.Fun) {
		if len(c.Args) > 0 {
			a.checkMutation(c.Args[0], c.Pos(), s)
		}
		return
	}
	obj := calleeObjOf(a.pkg, c.Fun)
	if obj == nil {
		return
	}
	if idx, isSend := sendKindIndex(obj); isSend {
		if idx < len(c.Args) {
			a.checkSend(c, c.Args[idx], s)
		}
		return
	}
	if fi2 := a.x.funcs[obj]; fi2 != nil {
		if fi2.sendWrapKindIdx >= 0 && fi2.sendWrapKindIdx < len(c.Args) {
			a.checkSend(c, c.Args[fi2.sendWrapKindIdx], s)
		}
		switch {
		case fi2.annotated:
			s.gen(fi2.writes...)
			s.gen("")
		case fi2.reachesDurable:
			s.gen("fn:"+fi2.name, "")
		}
		return
	}
	if isStableMutator(obj) {
		s.gen("")
		return
	}
	if isWalMutator(obj) {
		s.gen("log", "")
	}
}

// checkMutation enforces the write-ahead rule on volatile writes.
func (a *flow) checkMutation(target ast.Expr, pos token.Pos, s *flowState) {
	name := a.x.volatileTarget(a.pkg, a.fi, target)
	if name == "" || s.avail[""] {
		return
	}
	if killPos, ok := s.killedAt[""]; ok {
		a.x.reportf(a.pkg, pos, RuleVolatile,
			"write to volatile %s is not dominated by a durable write; the branch at %s skips it",
			name, a.shortPos(killPos))
		return
	}
	a.x.reportf(a.pkg, pos, RuleVolatile,
		"write to volatile %s is not dominated by a durable write", name)
}

// checkSend enforces //dur:requires at an externally visible send.
func (a *flow) checkSend(c *ast.CallExpr, kindExpr ast.Expr, s *flowState) {
	ke := unparen(kindExpr)
	var objs []types.Object
	switch v := ke.(type) {
	case *ast.Ident:
		obj := a.pkg.Info.Uses[v]
		if obj == nil {
			break
		}
		if _, isParam := a.fi.paramIdx[obj]; isParam {
			// This function is itself a send wrapper; its call sites carry
			// the actual kind and are checked there.
			return
		}
		if _, ok := obj.(*types.Const); ok {
			objs = []types.Object{obj}
		} else {
			objs = a.varKinds[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := a.pkg.Info.Uses[v.Sel].(*types.Const); ok {
			objs = []types.Object{obj}
		}
	case *ast.BasicLit:
		// A literal kind cannot carry a //dur:requires annotation; treat it
		// as requirement-free rather than unresolvable.
		return
	}
	if len(objs) == 0 {
		if a.x.pkgRequires[a.pkg.Types] {
			a.x.reportf(a.pkg, c.Pos(), RuleExtract,
				"cannot statically resolve the message kind of this send")
		}
		return
	}
	seen := map[string]bool{}
	for _, obj := range objs {
		class, ok := a.x.requires[obj]
		if !ok || seen[class] {
			continue
		}
		seen[class] = true
		if s.avail[class] {
			continue
		}
		kind := a.x.kindName[obj]
		if unnamed := unclassifiedWrites(s); len(unnamed) > 0 {
			a.x.reportf(a.pkg, c.Pos(), RuleSummary,
				"send of %s is dominated only by unannotated durable write %s; annotate it with //dur:writes",
				kind, unnamed[0])
			continue
		}
		if killPos, ok := s.killedAt[class]; ok {
			a.x.reportf(a.pkg, c.Pos(), RuleSend,
				"send of %s is not dominated by a durable %q write; the branch at %s skips it",
				kind, class, a.shortPos(killPos))
			continue
		}
		a.x.reportf(a.pkg, c.Pos(), RuleSend,
			"send of %s requires a durable %q write that no path provides", kind, class)
	}
}

// unclassifiedWrites lists the available durable writes that only a
// missing //dur:writes annotation keeps from satisfying a class, sorted.
func unclassifiedWrites(s *flowState) []string {
	var out []string
	for cls := range s.avail {
		if rest, ok := strings.CutPrefix(cls, "fn:"); ok {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

func (a *flow) shortPos(p token.Pos) string {
	pos := a.pkg.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
