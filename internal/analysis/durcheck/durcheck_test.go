package durcheck

import (
	"regexp"
	"strings"
	"testing"

	"speccat/internal/analysis"
	"speccat/internal/analysis/analysistest"
)

// loadRepo loads this repository's internal tree.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestRepoIsDurClean is the acceptance criterion: the repository's own
// protocol engines satisfy the write-ahead / durability-ordering
// discipline, and the analysis demonstrably covered them (roots,
// requiring kinds, write summaries and volatile objects all extracted —
// a clean run over nothing would prove nothing).
func TestRepoIsDurClean(t *testing.T) {
	rep, diags := Run(loadRepo(t))
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	roots := strings.Join(rep.Roots, " ")
	for _, want := range []string{
		"Cohort.HandleMessage", "Coordinator.HandleMessage",
		"Coordinator.Begin", "Cohort.RecoverAll", "Coordinator.RecoverAll",
		"Node.HandleMessage", // checkpoint
	} {
		if !strings.Contains(roots, want) {
			t.Errorf("analysis roots missing %s (got %s)", want, roots)
		}
	}
	for kind, class := range map[string]string{
		"KindCommitReq": "state",
		"KindVoteYes":   "state",
		"KindPrepare":   "state",
		"KindAck":       "state",
		"KindCommit":    "decision",
		"KindAbort":     "decision",
		"kindAck":       "checkpoint",
	} {
		if rep.Requires[kind] != class {
			t.Errorf("Requires[%s] = %q, want %q", kind, rep.Requires[kind], class)
		}
	}
	if rep.KindValue["KindCommit"] != "tpc.commit" {
		t.Errorf("KindValue[KindCommit] = %q, want tpc.commit", rep.KindValue["KindCommit"])
	}
	for _, fn := range []string{"Cohort.decide", "Cohort.persist", "Coordinator.persistDecision", "Log.append", "Node.saveTentative"} {
		if len(rep.Writes[fn]) == 0 {
			t.Errorf("no //dur:writes summary extracted for %s", fn)
		}
	}
	if len(rep.Volatiles) == 0 || !strings.Contains(strings.Join(rep.Volatiles, " "), "Store.data") {
		t.Errorf("volatile objects = %v, want kvstore Store.data", rep.Volatiles)
	}
	if rep.Analyzed < 20 {
		t.Errorf("flow analysis covered only %d functions; coverage collapsed", rep.Analyzed)
	}
}

// TestDurCleanFixture pins that a fully annotated engine that persists
// before sending produces zero findings — including the wrapper send, the
// variable kind, the if-init durable write and the reasoned ignore.
func TestDurCleanFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "durclean")
	rep, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if len(rep.Roots) != 2 {
		t.Errorf("roots = %v, want the fsm:handler and dur:handler pair", rep.Roots)
	}
	if len(rep.Requires) != 3 {
		t.Errorf("requires = %v, want 3 annotated kinds", rep.Requires)
	}
}

// TestDurBadFixture pins that every seeded mutation class — hoisted send,
// one-branch write, volatile-before-log, missing and stale //dur:writes,
// malformed/unattached directives, unresolvable kind — is caught, each
// exactly where its want comment says.
func TestDurBadFixture(t *testing.T) {
	dir := analysistest.FixtureDir(t, "durbad")
	_, diags := Run(analysistest.Load(t, dir))
	analysistest.Check(t, dir, diags)
	if len(diags) < 7 {
		t.Fatalf("durbad fixture produced %d diagnostics, want the full mutation set", len(diags))
	}
}

// crossValSeeds is the probe seed set shared by the positive and negative
// cross-validation tests.
var crossValSeeds = []int64{1, 2, 3}

// TestCrossValidateConfirmsFinding closes the static→dynamic loop: the
// durbad fixture's dur-send finding names a kind whose wire value is the
// real engine's commit message, and CrossValidate turns it into a
// replayable schedule that makes the unsafe-termination engine violate
// the atomicity or durability oracle.
func TestCrossValidateConfirmsFinding(t *testing.T) {
	dir := analysistest.FixtureDir(t, "durbad")
	rep, diags := Run(analysistest.Load(t, dir))
	kindRE := regexp.MustCompile(`send of (\w+) requires a durable`)
	kindValue := ""
	for _, d := range diags {
		if d.Rule != RuleSend {
			continue
		}
		if m := kindRE.FindStringSubmatch(d.Message); m != nil {
			kindValue = rep.KindValue[m[1]]
			break
		}
	}
	if kindValue != "tpc.commit" {
		t.Fatalf("no dur-send finding mapping to the engine's commit kind (got %q)", kindValue)
	}
	cv, err := CrossValidate(kindValue, "3pc-unsafe-term", crossValSeeds)
	if err != nil {
		t.Fatal(err)
	}
	if cv == nil {
		t.Fatal("no dynamic witness: the unsafe-termination engine should violate atomicity or durability under the staged crash")
	}
	violated := strings.Join(cv.Violated, " ")
	if !strings.Contains(violated, "atomicity") && !strings.Contains(violated, "durability") {
		t.Fatalf("witness violates %v, want atomicity or durability", cv.Violated)
	}
	if len(cv.Schedule.Faults) != 4 {
		t.Errorf("witness schedule has %d faults, want drop+crash+crash-at-send+recover", len(cv.Schedule.Faults))
	}
}

// TestCrossValidateNegativeControl pins the other direction: the same
// staging against the write-ahead engine finds nothing — the fixed
// ordering really is what makes the schedule harmless.
func TestCrossValidateNegativeControl(t *testing.T) {
	cv, err := CrossValidate("tpc.commit", "3pc", crossValSeeds)
	if err != nil {
		t.Fatal(err)
	}
	if cv != nil {
		t.Fatalf("unexpected witness against the write-ahead engine: seed %d violates %v", cv.Seed, cv.Violated)
	}
}
