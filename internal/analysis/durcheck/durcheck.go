// Package durcheck is the fourth static-analysis layer of speccatlint: a
// write-ahead / durability-ordering dataflow analysis over the protocol
// engines. The thesis's recovery argument (Global Property 3, the undo/redo
// building block of Section 3.5.1) rests on one operational discipline —
// state is forced to stable storage *before* any externally visible action
// depends on it. durcheck makes that discipline a static invariant: it
// walks every protocol handler, classifies statements as durable writes,
// volatile writes, and externally visible sends, and checks dominance on
// all paths.
//
// Analysis roots are the //fsm:handler-annotated dispatch functions plus
// //dur:handler opt-ins; from each root the same-module static call graph
// is followed. A call counts as a durable write of some class when it
// reaches a stable.Store mutation (Put/Delete/Append/TruncateLog), a
// wal.Log mutator (Begin/LoggedUpdate/Commit/Abort) or wal.Resolve — either
// directly, via one level of call summaries, or via an asserted
// //dur:writes annotation. Sends are simnet.Network.Send / Broadcast calls
// and same-package wrappers that forward a kind parameter to one.
//
// Annotation grammar:
//
//	//dur:requires <class>     trailing a wire-kind string constant: every
//	                           send of this kind must be dominated by a
//	                           durable write of <class> on all paths
//	//dur:writes <class...>    in a function's doc: calling it is a durable
//	                           write of those classes (checked to actually
//	                           reach stable storage)
//	//dur:handler              in a function's doc: analysis root that is
//	                           not message dispatch (Begin, RecoverAll)
//	//dur:volatile             trailing a field or var declaration: writes
//	                           to it must be dominated by a durable write
//	//dur:applies <param>      in a function's doc: assignments through the
//	                           named map parameter are the volatile applies
//	                           its own log write must dominate (wal)
//	//dur:ignore <reason>      suppresses dur findings on its own and the
//	                           next line; reason mandatory
//
// Rules reported: dur-send (a requiring send not dominated by the matching
// durable write — the message carries the branch that skips the write when
// one exists on another path), dur-volatile (volatile write not dominated
// by any durable write), dur-summary (a requiring send dominated only by an
// unannotated durable write, or a //dur:writes annotation on a function
// that never reaches stable storage), dur-extract (malformed or unbound
// directives, unresolvable send kinds in packages that declare
// requirements).
//
// Static findings are cross-validated dynamically: CrossValidate stages a
// tpcexplore crash-at-send schedule around a send of the offending kind
// and checks that the atomicity or durability oracle fails — see
// crossval.go and experiment E15.
package durcheck

import (
	"go/token"
	"sort"
	"strings"

	"speccat/internal/analysis"
)

// Rule names reported by this layer.
const (
	RuleSend     = "dur-send"
	RuleVolatile = "dur-volatile"
	RuleSummary  = "dur-summary"
	RuleExtract  = "dur-extract"
)

// Report describes what the analysis covered, so tests can pin coverage
// (a clean run over zero handlers would be vacuous, not clean).
type Report struct {
	// Roots are the analysis roots (//fsm:handler + //dur:handler), as
	// "Type.Func" names, sorted.
	Roots []string
	// Analyzed counts the functions the flow analysis walked.
	Analyzed int
	// Requires maps annotated kind-constant names to their required class.
	Requires map[string]string
	// KindValue maps annotated kind-constant names to their wire values
	// (what a schedule's send log records).
	KindValue map[string]string
	// Writes maps //dur:writes-annotated function names to their classes.
	Writes map[string][]string
	// Volatiles lists the //dur:volatile-annotated objects.
	Volatiles []string
}

// directive is one parsed //dur:<verb> annotation.
type directive struct {
	verb string
	args []string
	// rest is the raw argument text (reason-bearing verbs keep spaces).
	rest string
	pos  token.Position
}

// parseDirectives extracts the dur: directives of one comment. Like
// fsmcheck, the comment must BEGIN with a directive, but the leading
// directive may belong to either layer: kind constants carry
// "//fsm:msg ... //dur:requires ..." in one trailing comment, each layer
// reading its own segments and skipping the other's.
func parseDirectives(text string, pos token.Position) []directive {
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "dur:") && !strings.HasPrefix(body, "fsm:") {
		return nil
	}
	var out []directive
	for _, seg := range strings.Split(body, "//") {
		seg = strings.TrimSpace(seg)
		rest, ok := strings.CutPrefix(seg, "dur:")
		if !ok {
			continue
		}
		verb, args, _ := strings.Cut(rest, " ")
		args = strings.TrimSpace(args)
		out = append(out, directive{
			verb: verb,
			args: strings.Fields(args),
			rest: args,
			pos:  pos,
		})
	}
	return out
}

// Run analyzes the loaded packages and returns the coverage report and the
// surviving diagnostics (with //dur:ignore suppressions applied), sorted
// by position. The run is purely static; see CrossValidate for the
// dynamic confirmation of findings.
func Run(pkgs []*analysis.Package) (*Report, []analysis.Diagnostic) {
	x := newExtractor(pkgs)
	rep := x.extract()
	diags := x.suppress(x.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep, diags
}

// suppress drops diagnostics covered by a reasoned //dur:ignore on the
// same or the preceding line; reasonless ignores are themselves findings
// (already reported during extraction).
func (x *extractor) suppress(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if lines := x.ignored[d.Pos.Filename]; lines[d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
