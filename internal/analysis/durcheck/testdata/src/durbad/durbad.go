// Package durbad seeds one instance of every durcheck mutation class
// against the durclean engine: a decision send hoisted above its durable
// write, a durable write on only one branch, a volatile apply before the
// write-ahead record, a durable-write helper missing its //dur:writes
// annotation, a stale //dur:writes on a function that never reaches
// stable storage, a malformed and an unattached directive, and a send
// whose kind the analysis cannot resolve. Each carries a want comment
// pinning the exact finding.
package durbad

import (
	"speccat/internal/simnet"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// Wire kinds; kindCommit reuses the real engine's wire value so the test
// can hand this fixture's finding to the dynamic cross-validation.
const (
	kindDo     = "bad.do"
	kindVote   = "bad.vote"   //dur:requires state
	kindCommit = "tpc.commit" //dur:requires decision
	kindBad    = "bad.kind"   //dur:requires // want `dur-extract: malformed .?.?dur:requires: want exactly one argument, got 0`
)

// Node is the mutated toy engine.
type Node struct {
	net *simnet.Network
	id  simnet.NodeID
	st  *stable.Store
	log *wal.Log
	// cache is the volatile database guarded by the write-ahead log.
	cache map[string]string //dur:volatile
	mem   string
}

// send forwards to the network; durcheck checks its call sites against
// the forwarded kind parameter.
func (n *Node) send(to simnet.NodeID, kind string, payload any) {
	_ = n.net.Send(n.id, to, kind, payload)
}

// persist records the protocol state durably.
//
//dur:writes state
func (n *Node) persist(v string) {
	n.st.Put("state", []byte(v))
}

// persistDecision reaches stable storage but lacks its //dur:writes
// annotation — the missing-summary mutation.
func (n *Node) persistDecision(v string) {
	n.st.Put("decision", []byte(v))
}

// noteDecision claims a durable write it never performs — the stale
// summary mutation.
//
//dur:writes decision
func (n *Node) noteDecision(v string) { // want `dur-summary: function Node\.noteDecision declares //dur:writes decision but never reaches stable storage`
	n.mem = v
}

// HandleMessage dispatches one case per send-ordering mutation.
//
//dur:handler
func (n *Node) HandleMessage(m simnet.Message) bool {
	switch m.Kind {
	case kindDo:
		n.send(m.From, kindCommit, nil) // want `dur-send: send of kindCommit requires a durable "decision" write that no path provides`
		n.persist("c")
	case kindVote:
		if m.Payload != nil {
			n.persist("w")
		}
		n.send(m.From, kindVote, nil) // want `dur-send: send of kindVote is not dominated by a durable "state" write; the branch at durbad\.go:\d+ skips it`
	case kindCommit:
		n.persistDecision("c")
		n.send(m.From, kindCommit, nil) // want `dur-summary: send of kindCommit is dominated only by unannotated durable write Node\.persistDecision; annotate it with //dur:writes`
	case kindBad:
		n.noteDecision("c")
		n.echo(m.From)
	}
	return true
}

// echo sends a computed kind the analysis cannot resolve statically.
func (n *Node) echo(to simnet.NodeID) {
	k := "echo." + n.mem
	_ = n.net.Send(n.id, to, k, nil) // want `dur-extract: cannot statically resolve the message kind of this send`
}

// applyBad writes the volatile cache before the write-ahead record.
func (n *Node) applyBad(k, v string) {
	n.cache[k] = v // want `dur-volatile: write to volatile Node\.cache is not dominated by a durable write`
	_ = n.log.LoggedUpdate("t1", n.cache, k, v)
}

// misc hosts the unattached-directive mutation.
func (n *Node) misc() {
	//dur:volatile // want `dur-extract: .?.?dur:volatile is not attached to a declaration`
	n.mem = ""
}
