// Package durclean is a zero-finding durcheck fixture: a miniature
// commit engine exercising every annotation and every analysis feature —
// a requiring kind satisfied through a send wrapper, an asserted
// //dur:writes summary one call away from stable storage, a variable
// message kind resolved to all its constants, a durable write genned in
// an if-init statement, a //dur:volatile map applied under the
// write-ahead rule, and a reasoned //dur:ignore on a send justified by a
// state-machine invariant the dataflow cannot see.
package durclean

import (
	"speccat/internal/simnet"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// Wire kinds of the toy engine.
const (
	kindDo     = "clean.do"
	kindVote   = "clean.vote"   //dur:requires state
	kindCommit = "clean.commit" //dur:requires decision
	kindAbort  = "clean.abort"  //dur:requires decision
)

// Node is the toy engine.
type Node struct {
	net *simnet.Network
	id  simnet.NodeID
	st  *stable.Store
	log *wal.Log
	// cache is the volatile database guarded by the write-ahead log.
	cache map[string]string //dur:volatile
}

// send forwards to the network; durcheck checks its call sites against
// the forwarded kind parameter.
func (n *Node) send(to simnet.NodeID, kind string, payload any) {
	_ = n.net.Send(n.id, to, kind, payload)
}

// persist records the protocol state durably.
//
//dur:writes state
func (n *Node) persist(v string) {
	n.st.Put("state", []byte(v))
}

// persistDecision records the decision durably, one summary level above
// the stable store.
//
//dur:writes state decision
func (n *Node) persistDecision(v string) {
	n.persist(v)
}

// HandleMessage dispatches the toy engine.
//
//fsm:handler toy node
func (n *Node) HandleMessage(m simnet.Message) bool {
	switch m.Kind {
	case kindDo:
		if err := n.apply("x", "1"); err != nil {
			return true
		}
		n.persist("w")
		n.send(m.From, kindVote, nil)
	case kindVote:
		kind := kindAbort
		if m.Payload != nil {
			kind = kindCommit
		}
		n.persistDecision("decided")
		for _, p := range n.net.Nodes() {
			n.send(p, kind, nil)
		}
	}
	return true
}

// Replay answers a state query after the fact; entering the decided state
// is only possible through persistDecision, which the dataflow cannot see
// across handler invocations.
//
//dur:handler
func (n *Node) Replay(to simnet.NodeID) {
	n.send(to, kindCommit, nil) //dur:ignore the decided state is only entered after persistDecision
}

// apply performs one logged update: the undo/redo record reaches stable
// storage in the if-init call before the volatile map changes.
func (n *Node) apply(k, v string) error {
	if err := n.log.LoggedUpdate("t1", n.cache, k, v); err != nil {
		return err
	}
	delete(n.cache, k+".old")
	return nil
}
