package txn

import (
	"reflect"
	"testing"

	"speccat/internal/rt"
	"speccat/internal/rt/tcp"
	"speccat/internal/tpc"
)

// TestRegisterWireRoundTrip round-trips a representative payload for
// every txn message kind through a real wire codec and frame encoding.
func TestRegisterWireRoundTrip(t *testing.T) {
	codec := tcp.NewCodec()
	if err := RegisterWire(codec); err != nil {
		t.Fatalf("RegisterWire: %v", err)
	}

	payloads := map[string]any{
		kindWork: workMsg{Txn: "t1", Ops: []Op{
			{Site: 2, Key: "a", Value: "1", IsWrite: true},
			{Site: 3, Key: "b"},
		}},
		kindWorkDone: doneMsg{Txn: "t2", Reads: map[string]string{"2/a": "1"}},
		kindWorkFail: doneMsg{Txn: "t3"},
	}

	kinds := codec.Kinds()
	if len(kinds) != len(payloads) {
		t.Fatalf("registered %d kinds %v, want %d", len(kinds), kinds, len(payloads))
	}
	for kind, payload := range payloads {
		msg := rt.Message{From: 1, To: 2, Kind: kind, Payload: payload}
		frame, err := tcp.EncodeFrame(codec, msg)
		if err != nil {
			t.Errorf("%s: EncodeFrame: %v", kind, err)
			continue
		}
		got, _, err := tcp.DecodeFrame(codec, frame)
		if err != nil {
			t.Errorf("%s: DecodeFrame: %v", kind, err)
			continue
		}
		if !reflect.DeepEqual(got.Payload, payload) {
			t.Errorf("%s: round trip = %#v, want %#v", kind, got.Payload, payload)
		}
	}
}

// TestRegisterWireComposesWithTPC pins the deployment pattern: both
// engine layers register into one codec without kind collisions.
func TestRegisterWireComposesWithTPC(t *testing.T) {
	codec := tcp.NewCodec()
	if err := RegisterWire(codec); err != nil {
		t.Fatalf("txn RegisterWire: %v", err)
	}
	if err := tpc.RegisterWire(codec); err != nil {
		t.Fatalf("tpc RegisterWire on same codec: %v", err)
	}
	if got := len(codec.Kinds()); got != 12 {
		t.Fatalf("combined codec has %d kinds %v, want 12", got, codec.Kinds())
	}
}

// TestSiteForPackageLevel pins the exported placement hash: every front
// end (simulator cluster, tpcserve's client port, tpcload) must agree on
// it, so its behavior is frozen here.
func TestSiteForPackageLevel(t *testing.T) {
	sites := []rt.NodeID{2, 3, 4}
	for key, want := range map[string]rt.NodeID{
		"a":    SiteFor(sites, "a"),
		"acct": SiteFor(sites, "acct"),
	} {
		for i := 0; i < 100; i++ {
			if got := SiteFor(sites, key); got != want {
				t.Fatalf("SiteFor(%q) unstable: %d then %d", key, want, got)
			}
		}
	}
	// The hash spreads: three distinct single-letter keys do not all land
	// on one site.
	seen := map[rt.NodeID]bool{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		seen[SiteFor(sites, k)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("SiteFor sends every key to one site: %v", seen)
	}
}
