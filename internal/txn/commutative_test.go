package txn

import (
	"testing"

	"speccat/internal/kvstore"
	"speccat/internal/tpc"
)

// TestCommutativeOpsRoundTrip pins the classed-operation path end to
// end: increments, appends and set-inserts flow master → cohort →
// kvstore under their derived lock modes and commit with the canonical
// encodings.
func TestCommutativeOpsRoundTrip(t *testing.T) {
	c, err := NewCluster(11, 2, tpc.Config{})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	res := submitAndRun(t, c, "t1", []Op{
		{Site: s2, Key: "ctr", Value: "5", Class: ClassInc},
		{Site: s2, Key: "lst", Value: "b", Class: ClassAppend},
		{Site: s3, Key: "set", Value: "a", Class: ClassSetInsert},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	res = submitAndRun(t, c, "t2", []Op{
		{Site: s2, Key: "ctr", Value: "-2", Class: ClassInc},
		{Site: s2, Key: "lst", Value: "a", Class: ClassAppend},
		{Site: s3, Key: "set", Value: "a", Class: ClassSetInsert},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	if got := c.Sites[s2].Store.Read("ctr"); got != "3" {
		t.Fatalf("ctr = %q, want 3", got)
	}
	if got := c.Sites[s2].Store.Read("lst"); got != "a,b" {
		t.Fatalf("lst = %q, want a,b", got)
	}
	if got := c.Sites[s3].Store.Read("set"); got != "a" {
		t.Fatalf("set = %q, want a", got)
	}
}

// TestConcurrentIncrementsCommitTogether pins lock sharing across
// transactions at the cluster level: two transactions incrementing one
// key are both in flight before the scheduler runs, neither hits
// ErrConflict, and both commit.
func TestConcurrentIncrementsCommitTogether(t *testing.T) {
	c, err := NewCluster(12, 1, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	var r1, r2 *Result
	mustOK(t, c.Master.Submit("t1", []Op{{Site: s2, Key: "ctr", Value: "10", Class: ClassInc}}, func(r *Result) { r1 = r }))
	mustOK(t, c.Master.Submit("t2", []Op{{Site: s2, Key: "ctr", Value: "100", Class: ClassInc}}, func(r *Result) { r2 = r }))
	c.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("transactions never completed")
	}
	if r1.Decision != tpc.DecisionCommit || r2.Decision != tpc.DecisionCommit {
		t.Fatalf("decisions = %s, %s; commuting increments must not conflict", r1.Decision, r2.Decision)
	}
	if got := c.Sites[s2].Store.Read("ctr"); got != "110" {
		t.Fatalf("ctr = %q, want 110", got)
	}
}

// TestUnknownClassVotesNo pins the failure path: a bogus class fails the
// work phase, so the protocol decides abort uniformly.
func TestUnknownClassVotesNo(t *testing.T) {
	c, err := NewCluster(13, 1, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	res := submitAndRun(t, c, "t1", []Op{{Site: s2, Key: "x", Value: "1", Class: "bogus"}})
	if res.Decision != tpc.DecisionAbort {
		t.Fatalf("decision = %s, want abort", res.Decision)
	}
	if c.Sites[s2].Store.OpenTxns() != 0 {
		t.Fatal("failed branch left open")
	}
}

// TestUnsafeWriteLocksAdmitsIncrementRace pins the E18 ablation wiring:
// with UnsafeWriteLocks set, an absolute write and a concurrent
// increment on one key are both granted (the comm-underlock admission)
// instead of one of them conflicting.
func TestUnsafeWriteLocksAdmitsIncrementRace(t *testing.T) {
	c, err := NewCluster(14, 1, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	c.Sites[s2].UnsafeWriteLocks = true
	var r1, r2 *Result
	mustOK(t, c.Master.Submit("w", []Op{{Site: s2, Key: "x", Value: "50", IsWrite: true}}, func(r *Result) { r1 = r }))
	mustOK(t, c.Master.Submit("i", []Op{{Site: s2, Key: "x", Value: "7", Class: ClassInc}}, func(r *Result) { r2 = r }))
	c.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("transactions never completed")
	}
	if r1.Decision != tpc.DecisionCommit || r2.Decision != tpc.DecisionCommit {
		t.Fatalf("decisions = %s, %s; the underlock ablation must admit the race", r1.Decision, r2.Decision)
	}
}

// TestClassedOpsSurviveCrashRecovery pins logical redo through the full
// stack: a committed increment survives a site crash via the WAL's
// operation fold.
func TestClassedOpsSurviveCrashRecovery(t *testing.T) {
	c, err := NewCluster(15, 1, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	submitAndRun(t, c, "t1", []Op{{Site: s2, Key: "ctr", Value: "42", Class: ClassInc}})
	st, err := c.Net.Store(s2)
	mustOK(t, err)
	store, err := kvstore.Open(st)
	mustOK(t, err)
	if got := store.Read("ctr"); got != "42" {
		t.Fatalf("recovered ctr = %q, want 42", got)
	}
}
