package txn

// The Cluster harness is the deterministic-simulator face of a
// distributed-transaction deployment: it owns the concrete
// simnet.Network so tests, explorers and experiments can crash sites,
// inject faults and drive the scheduler. The engines it wires (Master,
// Site) are runtime-agnostic; only this file touches the simulator,
// under reasoned rt-boundary suppressions.

import (
	"speccat/internal/sim"    //lint:allow rt-boundary sim-harness constructor: the engines speak rt.Transport, this file owns the simulator wiring
	"speccat/internal/simnet" //lint:allow rt-boundary sim-harness constructor: the engines speak rt.Transport, this file owns the simulator wiring
	"speccat/internal/tpc"
)

// Cluster is a wired deployment: one master site plus data sites.
type Cluster struct {
	Net      *simnet.Network
	Master   *Master
	Sites    map[simnet.NodeID]*Site
	MasterID simnet.NodeID
	SiteIDs  []simnet.NodeID
	cfg      tpc.Config
}

// NewCluster builds a master and n data sites over a fresh network.
func NewCluster(seed int64, n int, cfg tpc.Config) (*Cluster, error) {
	sched := sim.NewScheduler(seed)
	return NewClusterOn(simnet.New(sched, simnet.DefaultOptions()), n, cfg)
}

// NewClusterOn wires a cluster onto an existing (empty) network, letting
// callers customize network options and install failure-injection hooks.
// Crash recovery is wired: when simnet recovers a site, the site reopens
// its store from stable storage and replays the commit protocol's failure
// transitions; a recovered master replays the coordinator's.
func NewClusterOn(net *simnet.Network, n int, cfg tpc.Config) (*Cluster, error) {
	return newClusterOn(net, n, cfg, 0)
}

// NewShardedClusterOn is NewClusterOn with every site's database
// hash-partitioned into nshards independent shards over the site's one
// stable store (see kvstore.OpenShards). nshards < 2 degrades to the
// single-partition store.
func NewShardedClusterOn(net *simnet.Network, n int, cfg tpc.Config, nshards int) (*Cluster, error) {
	if nshards < 2 {
		nshards = 0
	}
	return newClusterOn(net, n, cfg, nshards)
}

func newClusterOn(net *simnet.Network, n int, cfg tpc.Config, nshards int) (*Cluster, error) {
	masterID := simnet.NodeID(1)
	net.AddNode(masterID, nil)
	var siteIDs []simnet.NodeID
	for i := 2; i <= n+1; i++ {
		id := simnet.NodeID(i)
		siteIDs = append(siteIDs, id)
		net.AddNode(id, nil)
	}
	c := &Cluster{Net: net, MasterID: masterID, SiteIDs: siteIDs, Sites: map[simnet.NodeID]*Site{}, cfg: cfg}

	master, err := NewMasterOn(net, masterID, siteIDs, cfg)
	if err != nil {
		return nil, err
	}
	c.Master = master

	for _, id := range siteIDs {
		site, err := newSiteOn(net, id, masterID, siteIDs, cfg, nshards)
		if err != nil {
			return nil, err
		}
		c.Sites[id] = site
	}
	return c, nil
}

// SiteFor maps a key to its home site by stable hashing (the package
// placement function, shared with the serving path).
func (c *Cluster) SiteFor(key string) simnet.NodeID {
	return SiteFor(c.SiteIDs, key)
}

// Run drives the scheduler until quiescence.
func (c *Cluster) Run() { c.Net.Scheduler().Run(0) }

// TotalOf sums integer values under keys across all sites' committed
// state (the bank-invariant helper).
func (c *Cluster) TotalOf(keys []string) int {
	total := 0
	for _, k := range keys {
		site := c.Sites[c.SiteFor(k)]
		total += atoi(site.Store.Read(k))
	}
	return total
}

func atoi(s string) int {
	n := 0
	neg := false
	for i, ch := range s {
		if i == 0 && ch == '-' {
			neg = true
			continue
		}
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int(ch-'0')
	}
	if neg {
		return -n
	}
	return n
}
