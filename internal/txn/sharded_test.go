package txn

import (
	"fmt"
	"testing"

	"speccat/internal/kvstore"
	"speccat/internal/sim"
	"speccat/internal/simnet"
	"speccat/internal/tpc"
)

// shardedCluster builds a cluster whose sites are 4-way hash-sharded with
// scoped participants and group-committed stores — the full serving-path
// configuration, in the simulator.
func shardedCluster(t *testing.T, seed int64, n int) *Cluster {
	t.Helper()
	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	c, err := NewShardedClusterOn(net, n, tpc.Config{Protocol: tpc.ThreePhase, ScopedParticipants: true}, 4)
	mustOK(t, err)
	for _, id := range append([]simnet.NodeID{c.MasterID}, c.SiteIDs...) {
		st, err := net.Store(id)
		mustOK(t, err)
		st.SetGroupCommit(true)
	}
	return c
}

// TestShardedScopedCommit: a cross-site transaction through sharded,
// group-committed sites commits and its writes land, while a site the
// transaction never touched sees no protocol state for it — the scoped
// prepare fan-out spans only touched sites.
func TestShardedScopedCommit(t *testing.T) {
	c := shardedCluster(t, 1, 3)
	s2, s3, s4 := c.SiteIDs[0], c.SiteIDs[1], c.SiteIDs[2]
	res := submitAndRun(t, c, "t1", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	if c.Sites[s2].Store.Read("x") != "1" || c.Sites[s3].Store.Read("y") != "2" {
		t.Fatal("committed values not visible")
	}
	if st := c.Sites[s4].StateOf("t1"); st != tpc.StateInitial {
		t.Fatalf("untouched site drawn into the protocol: state %v", st)
	}
}

// TestShardedMultiShardTxnSpansShards: one transaction whose keys hash to
// several shards of one site commits atomically across them, and the
// site-level abort of a later conflicting transaction undoes only its own
// branches.
func TestShardedMultiShardTxnSpansShards(t *testing.T) {
	c := shardedCluster(t, 2, 2)
	s2 := c.SiteIDs[0]
	// Enough distinct keys to touch several of the 4 shards.
	var ops []Op
	shards := map[int]bool{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%02d", i)
		shards[kvstore.ShardOf(k, 4)] = true
		ops = append(ops, Op{Site: s2, Key: k, Value: fmt.Sprintf("v%d", i), IsWrite: true})
	}
	if len(shards) < 2 {
		t.Fatalf("test keys all hash to one shard; want spread, got %v", shards)
	}
	res := submitAndRun(t, c, "wide", ops)
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%02d", i)
		if got := c.Sites[s2].Store.Read(k); got != fmt.Sprintf("v%d", i) {
			t.Errorf("key %s = %q after commit", k, got)
		}
	}
	if c.Sites[s2].Store.OpenTxns() != 0 {
		t.Fatal("branches left open after commit")
	}
}

// TestShardedCrashRecoveryReplaysAllShards: a site crash after a committed
// multi-shard transaction (with group commit on, so the tail may sit in a
// batch window) must recover every shard's committed state from the one
// shared stable log.
func TestShardedCrashRecoveryReplaysAllShards(t *testing.T) {
	c := shardedCluster(t, 3, 2)
	s2 := c.SiteIDs[0]
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, Op{Site: s2, Key: fmt.Sprintf("key%02d", i), Value: "1", IsWrite: true})
	}
	res := submitAndRun(t, c, "wide", ops)
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	mustOK(t, c.Net.Crash(s2))
	mustOK(t, c.Net.Recover(s2))
	c.Run()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%02d", i)
		if got := c.Sites[s2].Store.Read(k); got != "1" {
			t.Errorf("key %s = %q after crash recovery", k, got)
		}
	}
	// The reopened store must still be the sharded layout.
	if sh, ok := c.Sites[s2].Store.(*kvstore.Shards); !ok || sh.NumShards() != 4 {
		t.Fatalf("recovered store lost its sharded layout: %T", c.Sites[s2].Store)
	}
}

// TestShardedConservationUnderConcurrency: concurrent increment-transfers
// across sites and shards conserve the total — the commutative path
// through per-shard lock managers and WALs stays sound.
func TestShardedConservationUnderConcurrency(t *testing.T) {
	c := shardedCluster(t, 4, 3)
	keys := []string{"a1", "a2", "a3", "a4", "a5", "a6"}
	var seed []Op
	for _, k := range keys {
		seed = append(seed, Op{Site: c.SiteFor(k), Key: k, Value: "100", IsWrite: true})
	}
	if res := submitAndRun(t, c, "seed", seed); res.Decision != tpc.DecisionCommit {
		t.Fatalf("seed decision = %s", res.Decision)
	}
	done := 0
	for i := 0; i < 12; i++ {
		src, dst := keys[i%len(keys)], keys[(i+3)%len(keys)]
		name := fmt.Sprintf("mv%02d", i)
		mustOK(t, c.Master.Submit(name, []Op{
			{Site: c.SiteFor(src), Key: src, Value: "-5", Class: ClassInc},
			{Site: c.SiteFor(dst), Key: dst, Value: "5", Class: ClassInc},
		}, func(r *Result) {
			if r.Decision == tpc.DecisionCommit {
				done++
			}
		}))
	}
	c.Run()
	if done == 0 {
		t.Fatal("no transfer committed")
	}
	if total := c.TotalOf(keys); total != 600 {
		t.Fatalf("total = %d after %d transfers, want 600", total, done)
	}
}
