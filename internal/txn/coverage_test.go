package txn

import (
	"testing"

	"speccat/internal/tpc"
)

func TestReadResultsReported(t *testing.T) {
	c, err := NewCluster(10, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	submitAndRun(t, c, "seed", []Op{{Site: s2, Key: "x", Value: "hello", IsWrite: true}})
	res := submitAndRun(t, c, "read", []Op{{Site: s2, Key: "x"}})
	want := map[string]string{}
	for k, v := range res.Reads {
		want[k] = v
	}
	if len(res.Reads) != 1 {
		t.Fatalf("reads = %v", res.Reads)
	}
	for _, v := range res.Reads {
		if v != "hello" {
			t.Fatalf("read value = %q", v)
		}
	}
}

func TestDuplicateSubmitRejected(t *testing.T) {
	c, err := NewCluster(11, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	ops := []Op{{Site: s2, Key: "x", Value: "1", IsWrite: true}}
	mustOK(t, c.Master.Submit("dup", ops, nil))
	if err := c.Master.Submit("dup", ops, nil); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestEmptyTransactionCommits(t *testing.T) {
	c, err := NewCluster(12, 2, tpc.Config{})
	mustOK(t, err)
	res := submitAndRun(t, c, "empty", nil)
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("empty txn = %s", res.Decision)
	}
}

func TestMasterDecisionAccessor(t *testing.T) {
	c, err := NewCluster(13, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	submitAndRun(t, c, "t", []Op{{Site: s2, Key: "x", Value: "1", IsWrite: true}})
	if c.Master.Decision("t") != tpc.DecisionCommit {
		t.Fatalf("Decision = %s", c.Master.Decision("t"))
	}
	if c.Master.Decision("ghost") != tpc.DecisionNone {
		t.Fatal("ghost decision")
	}
}

func TestLockConflictAcrossTransactions(t *testing.T) {
	// Two transactions writing the same key back-to-back within one
	// scheduler run: the second site-branch hits the still-held lock of
	// the first (decisions propagate with delay), fails its work, and the
	// whole transaction aborts — then succeeds on retry after quiescence.
	c, err := NewCluster(14, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	var d1, d2 tpc.Decision
	mustOK(t, c.Master.Submit("w1", []Op{{Site: s2, Key: "hot", Value: "1", IsWrite: true}},
		func(r *Result) { d1 = r.Decision }))
	mustOK(t, c.Master.Submit("w2", []Op{{Site: s2, Key: "hot", Value: "2", IsWrite: true}},
		func(r *Result) { d2 = r.Decision }))
	c.Run()
	if d1 == tpc.DecisionNone || d2 == tpc.DecisionNone {
		t.Fatal("transactions unresolved")
	}
	// At least one commits; both may, if the first released in time.
	if d1 != tpc.DecisionCommit && d2 != tpc.DecisionCommit {
		t.Fatalf("both failed: %s, %s", d1, d2)
	}
	// No locks leak either way.
	if c.Sites[s2].Store.OpenTxns() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestTotalOfIgnoresGarbage(t *testing.T) {
	if atoi("12") != 12 || atoi("-3") != -3 || atoi("x") != 0 || atoi("") != 0 {
		t.Fatal("atoi helper broken")
	}
}

func TestWorkTimeoutWhenSiteSilent(t *testing.T) {
	// A partitioned site never answers its work message: the master's
	// work timeout forces the protocol to run and abort.
	c, err := NewCluster(15, 3, tpc.Config{})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	c.Net.Partition(c.MasterID, s3)
	res := submitAndRun(t, c, "t", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	})
	if res.Decision != tpc.DecisionAbort {
		t.Fatalf("decision = %s, want abort (work timeout)", res.Decision)
	}
	if c.Sites[s2].Store.Read("x") != "" {
		t.Fatal("partial write leaked")
	}
}
