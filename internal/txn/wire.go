package txn

import (
	"encoding/json"
	"fmt"

	"speccat/internal/rt"
)

// RegisterWire registers an encode/decode pair for every message kind
// the transaction layer sends (startwork and its acknowledgements), into
// a wire codec (rt.PayloadRegistry). The commit protocol's own kinds are
// tpc.RegisterWire's; a real deployment registers both into one codec.
// Decoders return the unexported concrete payload types the handlers
// assert, keeping wire and in-memory deliveries indistinguishable.
func RegisterWire(reg rt.PayloadRegistry) error {
	if err := reg.Register(kindWork, encodeWorkMsg, decodeWorkMsg); err != nil {
		return fmt.Errorf("txn: register wire %s: %w", kindWork, err)
	}
	for _, kind := range []string{kindWorkDone, kindWorkFail} {
		if err := reg.Register(kind, encodeDoneMsg, decodeDoneMsg); err != nil {
			return fmt.Errorf("txn: register wire %s: %w", kind, err)
		}
	}
	return nil
}

func encodeWorkMsg(p any) ([]byte, error) {
	m, ok := p.(workMsg)
	if !ok {
		return nil, fmt.Errorf("txn: wire payload %T, want workMsg", p)
	}
	return json.Marshal(m)
}

func decodeWorkMsg(data []byte) (any, error) {
	var m workMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("txn: wire workMsg: %w", err)
	}
	return m, nil
}

func encodeDoneMsg(p any) ([]byte, error) {
	m, ok := p.(doneMsg)
	if !ok {
		return nil, fmt.Errorf("txn: wire payload %T, want doneMsg", p)
	}
	return json.Marshal(m)
}

func decodeDoneMsg(data []byte) (any, error) {
	var m doneMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("txn: wire doneMsg: %w", err)
	}
	return m, nil
}
