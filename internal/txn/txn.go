// Package txn implements the distributed transaction execution model of
// the paper's Fig. 3.1: a master process at the submission site sends
// startwork messages to cohort processes at the sites holding the data;
// cohorts execute reads and writes against their local kvstore (strict 2PL
// + undo/redo WAL) and answer workdone; when all work is done the master
// runs the commit protocol (3PC by default, 2PC for the baseline) so all
// sites reach a uniform decision, which each site then applies to its
// local store.
//
// The engines (Master, Site) speak the rt runtime boundary; the
// deterministic-simulator harness lives in cluster.go.
//
//rt:engine
package txn

import (
	"errors"
	"fmt"
	"sort"

	"speccat/internal/kvstore"
	"speccat/internal/rt"
	"speccat/internal/tpc"
	"speccat/internal/wal"
)

// Wire kinds. Work flows master->site; completion reports flow back.
// None carries a //dur:requires class: work assignment and completion
// reports announce volatile progress only — durability enters with the
// commit protocol (tpc kinds), whose sends these handlers delegate. The
// txn handlers still participate in the durcheck analysis as roots (via
// //fsm:handler), so any stable write or requiring send added here later
// falls under the dominance checks automatically.
const (
	kindWork     = "txn.startwork" //fsm:msg txn site
	kindWorkDone = "txn.workdone"  //fsm:msg txn master
	kindWorkFail = "txn.workfail"  //fsm:msg txn master
)

// Operation classes for Op.Class. They mirror the commutativity classes
// of locking/comm.sw; an empty Class means the legacy read/write pair
// selected by IsWrite.
const (
	ClassInc       = wal.OpInc
	ClassAppend    = wal.OpAppend
	ClassSetInsert = wal.OpSetInsert
)

// Op is one data operation of a transaction.
type Op struct {
	// Site is the node holding the datum.
	Site rt.NodeID
	// Key names the datum.
	Key string
	// Value is written when IsWrite, or is the operand of a classed
	// operation (the increment delta / appended element).
	Value string
	// IsWrite selects write vs read when Class is empty.
	IsWrite bool
	// Class selects a commutative operation (ClassInc, ClassAppend,
	// ClassSetInsert) executed under its derived lock mode; empty means
	// read/write per IsWrite.
	Class string `json:",omitempty"`
}

// Mutates reports whether the operation changes state (everything but a
// plain read).
func (o Op) Mutates() bool { return o.IsWrite || o.Class != "" }

// workMsg carries a site's slice of a transaction.
type workMsg struct {
	Txn string
	Ops []Op
}

// doneMsg acknowledges completed work, carrying read results back to the
// master keyed "site/key".
type doneMsg struct {
	Txn   string
	Reads map[string]string
}

// ErrUnknownSite is returned for operations on unregistered sites.
var ErrUnknownSite = errors.New("txn: unknown site")

// Result is the final outcome of a distributed transaction.
type Result struct {
	Txn      string
	Decision tpc.Decision
	// Reads holds the values observed by read operations, keyed by
	// "site/key" (populated as workdone messages arrive).
	Reads map[string]string
}

// pending is the master's per-transaction state.
type pending struct {
	ops     map[rt.NodeID][]Op
	done    map[rt.NodeID]bool
	failed  bool
	started bool
	result  *Result
	onDone  func(*Result)
}

// Master coordinates distributed transactions from one site.
type Master struct {
	net     rt.Transport
	id      rt.NodeID
	coord   *tpc.Coordinator
	pending map[string]*pending
	// scoped makes the commit protocol span only the sites a transaction
	// actually touched (tpc.Config.ScopedParticipants).
	scoped bool
	// NoWorkTimeout disables the work-phase abort timer: the master waits
	// for workdone/workfail indefinitely, trusting each site's lock manager
	// to convict stuck transactions via its deadlock detector. It is half
	// of the E20 lock-wait ablation (txn.Site.LockWait is the other half):
	// per-shard detectors only see their own waits-for graph, so a cycle
	// spanning two shards' managers stalls forever — exactly the blind spot
	// speccatlint's lock-order rule gates statically.
	NoWorkTimeout bool
	// OnUnhandled, when non-nil, observes messages the master dropped —
	// unknown kinds and undecodable payloads. They are counted either way
	// (see Unhandled); before this hook existed both cases were a silent
	// bare return.
	OnUnhandled func(m rt.Message)
	unhandled   int
}

// noteUnhandled accounts for a message the master could not dispatch.
func (m *Master) noteUnhandled(msg rt.Message) {
	m.unhandled++
	if m.OnUnhandled != nil {
		m.OnUnhandled(msg)
	}
}

// Unhandled reports how many messages the master dropped (unknown kind or
// undecodable payload).
func (m *Master) Unhandled() int { return m.unhandled }

// Site hosts a cohort process plus the local store.
type Site struct {
	net rt.Transport
	id  rt.NodeID
	// Store is the site's transactional database: a single-partition
	// kvstore.Store, or a hash-sharded kvstore.Shards when the site was
	// built with NewShardedSiteOn.
	Store    kvstore.DB
	cohort   *tpc.Cohort
	masterID rt.NodeID
	// shards > 0 records the partition count so crash recovery reopens
	// the store with the identical layout.
	shards int
	// failed marks local branches that could not complete their work: the
	// site votes no for them. Sites with no branch for a transaction vote
	// yes trivially (they have nothing to make durable).
	failed map[string]bool
	// OnOp, when non-nil, observes every data operation this site executes,
	// in execution order (= lock acquisition order under strict 2PL). Fault
	// explorers derive the serializability conflict graph from it.
	OnOp func(txn string, op Op)
	// UnsafeWriteLocks routes absolute writes through the seeded
	// comm-underlock ablation (kvstore.PutUnderlocked): the write takes
	// only the increment lock, admitting concurrent non-commuting
	// increments. Experiment E18 flips it to show the serializability
	// oracle catching dynamically what commcheck's comm-underlock rule
	// flags statically. The flag survives Recover (it describes the code
	// under test, not volatile state).
	UnsafeWriteLocks bool
	// LockWait makes the site wait for contended locks instead of failing
	// the work phase: on kvstore.ErrConflict the remaining operations are
	// retried after a network delta (the conflicting request stays queued in
	// the shard's FIFO lock queue, so a later grant lets the retry proceed).
	// Pair it with Master.NoWorkTimeout so nothing aborts stuck work — the
	// configuration under which a cross-shard lock cycle, invisible to every
	// per-shard wouldDeadlock, stalls a transaction forever. Experiment E20
	// flips it to witness dynamically what lockcheck's lock-order rule flags
	// statically.
	LockWait bool
	// CanonicalLockOrder sorts each work message's operations into ascending
	// shard-index order before execution — the canonical acquisition order
	// that makes cross-shard cycles impossible (every transaction climbs the
	// shard lattice in one direction). It is E20's repaired arm: the same
	// opposed workload that deadlocks under LockWait alone runs to
	// completion when acquisition order is canonicalized.
	CanonicalLockOrder bool
	// OnApply, when non-nil, observes every commit-protocol decision applied
	// to the local store (the moment a local branch's effects become
	// committed or are rolled back).
	OnApply func(txn string, d tpc.Decision)
	// OnUnhandled, when non-nil, observes messages the site dropped —
	// unknown kinds and undecodable payloads. They are counted either way
	// (see Unhandled); before this hook existed both cases were a silent
	// bare return.
	OnUnhandled func(m rt.Message)
	unhandled   int
}

// noteUnhandled accounts for a message the site could not dispatch.
func (s *Site) noteUnhandled(msg rt.Message) {
	s.unhandled++
	if s.OnUnhandled != nil {
		s.OnUnhandled(msg)
	}
}

// Unhandled reports how many messages the site dropped (unknown kind or
// undecodable payload).
func (s *Site) Unhandled() int { return s.unhandled }

// Submit starts a distributed transaction; onDone fires with the outcome.
func (m *Master) Submit(txn string, ops []Op, onDone func(*Result)) error {
	if _, dup := m.pending[txn]; dup {
		return fmt.Errorf("txn: %s already submitted", txn)
	}
	p := &pending{
		ops:    map[rt.NodeID][]Op{},
		done:   map[rt.NodeID]bool{},
		result: &Result{Txn: txn, Reads: map[string]string{}},
		onDone: onDone,
	}
	for _, op := range ops {
		p.ops[op.Site] = append(p.ops[op.Site], op)
	}
	m.pending[txn] = p
	// Fig. 3.1: startwork to every involved cohort, in parallel. Sites are
	// contacted in ID order so the global send sequence — the coordinate
	// system fault schedules target — is identical across replays.
	sites := make([]rt.NodeID, 0, len(p.ops))
	for site := range p.ops {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		if err := m.net.Send(m.id, site, kindWork, workMsg{Txn: txn, Ops: p.ops[site]}); err != nil {
			return fmt.Errorf("txn: submit %s: %w", txn, err)
		}
	}
	// A transaction touching no data commits trivially via the protocol.
	if len(p.ops) == 0 {
		return m.startCommit(txn, p)
	}
	if m.NoWorkTimeout {
		return nil
	}
	// Work timeout: if some site never answers, abort via the protocol.
	m.net.After(m.id, 8*m.net.Delta(), func() {
		if !p.started {
			p.failed = true
			_ = m.startCommit(txn, p)
		}
	})
	return nil
}

// handle demultiplexes master-side traffic: commit protocol first, then
// the work protocol. It is the terminal handler for its node, so anything
// it does not dispatch is accounted through noteUnhandled rather than
// silently dropped.
//
//fsm:handler txn master
func (m *Master) handle(msg rt.Message) {
	if m.coord.HandleMessage(msg) {
		return
	}
	switch msg.Kind {
	case kindWorkDone:
		d, ok := msg.Payload.(doneMsg)
		if !ok {
			m.noteUnhandled(msg)
			return
		}
		p, ok := m.pending[d.Txn]
		if !ok || p.started {
			return
		}
		p.done[msg.From] = true
		for k, v := range d.Reads {
			p.result.Reads[k] = v
		}
		if len(p.done) == len(p.ops) {
			_ = m.startCommit(d.Txn, p)
		}
	case kindWorkFail:
		d, ok := msg.Payload.(doneMsg)
		if !ok {
			m.noteUnhandled(msg)
			return
		}
		p, ok := m.pending[d.Txn]
		if !ok || p.started {
			return
		}
		p.failed = true
		_ = m.startCommit(d.Txn, p)
	default:
		m.noteUnhandled(msg)
	}
}

// startCommit launches the atomic commitment protocol. A failed work phase
// still runs the protocol (the failing site votes no), keeping the
// decision path uniform. Under scoped participation the protocol spans
// exactly the sites the transaction sent work to — untouched sites never
// see a commit request, and a dataless transaction commits immediately.
func (m *Master) startCommit(txn string, p *pending) error {
	if p.started {
		return nil
	}
	p.started = true
	if !m.scoped {
		return m.coord.Begin(txn)
	}
	sites := make([]rt.NodeID, 0, len(p.ops))
	for site := range p.ops {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return m.coord.BeginWith(txn, sites)
}

func (m *Master) onDecide(txn string, d tpc.Decision) {
	p, ok := m.pending[txn]
	if !ok {
		return
	}
	p.result.Decision = d
	if p.onDone != nil {
		p.onDone(p.result)
	}
}

// Decision returns the master's decision for txn.
func (m *Master) Decision(txn string) tpc.Decision { return m.coord.Decision(txn) }

// RecoverCoordinator replays the commit engine's failure transitions after
// the master site recovers from a crash (Fig. 3.2 coordinator recovery):
// transactions logged in w1 abort, p1 commits, decided outcomes are
// re-announced. Submitted transactions whose commit protocol never began
// have no persisted coordinator state; the master restarts the protocol
// for them (treating its submission queue as durable — a real deployment
// would log submissions) so cohort branches don't hold locks forever.
func (m *Master) RecoverCoordinator() {
	recovered := m.coord.RecoverAll()
	var unstarted []string
	for txn, p := range m.pending {
		if _, done := recovered[txn]; done {
			continue
		}
		if !p.started {
			unstarted = append(unstarted, txn)
		}
	}
	sort.Strings(unstarted) // deterministic send order across replays
	for _, txn := range unstarted {
		_ = m.startCommit(txn, m.pending[txn])
	}
}

// handle demultiplexes site-side traffic: commit protocol first, then the
// work protocol. Like the master's handler it is terminal for its node, so
// undispatched traffic is accounted rather than silently dropped.
//
//fsm:handler txn site
func (s *Site) handle(msg rt.Message) {
	if s.cohort.HandleMessage(msg) {
		return
	}
	if msg.Kind != kindWork {
		s.noteUnhandled(msg)
		return
	}
	w, ok := msg.Payload.(workMsg)
	if !ok {
		s.noteUnhandled(msg)
		return
	}
	s.startWork(w)
}

// startWork opens the local branch and begins executing the work message's
// operations. Under CanonicalLockOrder the operations are first sorted into
// ascending shard-index order, the canonical acquisition order.
func (s *Site) startWork(w workMsg) {
	if err := s.Store.Begin(w.Txn); err != nil {
		s.failWork(w.Txn)
		return
	}
	ops := w.Ops
	if s.CanonicalLockOrder && s.shards > 0 {
		ops = canonicalOrder(ops, s.shards)
	}
	s.runOps(w.Txn, ops, 0, map[string]string{})
}

// failWork reports a local work failure (conflict/deadlock) and rolls the
// branch back so the vote becomes no.
func (s *Site) failWork(txn string) {
	s.failed[txn] = true
	if s.Store.Prepared(txn) {
		_ = s.Store.Abort(txn)
	}
	_ = s.net.Send(s.id, s.masterID, kindWorkFail, doneMsg{Txn: txn})
}

// runOps executes ops[from:] against the local store, reporting workdone on
// completion. Under LockWait a lock conflict suspends the transaction at the
// blocked operation and re-enters here after a network delta — the blocked
// request stays queued at the shard's lock manager, so a later FIFO grant
// makes the retry's acquire succeed (locking.Covers) and execution resumes
// exactly where it stopped. Operations already executed are never re-run
// (re-applying an increment would double it).
func (s *Site) runOps(txn string, ops []Op, from int, reads map[string]string) {
	//lock:ordered submission-order acquisition is safe under the default abort-on-conflict policy (no waiting, no cycle); under LockWait the risk is real — E20 witnesses the cross-manager stall — and CanonicalLockOrder presorts ops ascending by shard to remove it
	for i := from; i < len(ops); i++ {
		op := ops[i]
		if err := s.applyOp(txn, op, reads); err != nil {
			if s.LockWait && errors.Is(err, kvstore.ErrConflict) {
				next := i
				s.net.After(s.id, s.net.Delta(), func() {
					// The branch may have been settled meanwhile (a decision
					// applied, or a recovery); a retry then has nothing to do.
					if s.failed[txn] || !s.Store.Prepared(txn) {
						return
					}
					s.runOps(txn, ops, next, reads)
				})
				return
			}
			s.failWork(txn)
			return
		}
		if s.OnOp != nil {
			s.OnOp(txn, op)
		}
	}
	_ = s.net.Send(s.id, s.masterID, kindWorkDone, doneMsg{Txn: txn, Reads: reads})
}

// applyOp dispatches one operation to the store.
func (s *Site) applyOp(txn string, op Op, reads map[string]string) error {
	switch {
	case op.Class == ClassInc:
		return s.Store.Increment(txn, op.Key, op.Value)
	case op.Class == ClassAppend:
		return s.Store.Append(txn, op.Key, op.Value)
	case op.Class == ClassSetInsert:
		return s.Store.SetInsert(txn, op.Key, op.Value)
	case op.Class != "":
		return fmt.Errorf("txn: unknown op class %q", op.Class)
	case op.IsWrite && s.UnsafeWriteLocks:
		return s.Store.PutUnderlocked(txn, op.Key, op.Value)
	case op.IsWrite:
		return s.Store.Put(txn, op.Key, op.Value)
	default:
		v, err := s.Store.Get(txn, op.Key)
		if err != nil {
			return err
		}
		reads[fmt.Sprintf("%d/%s", s.id, op.Key)] = v
		return nil
	}
}

// canonicalOrder returns ops stably sorted by ascending shard index (ties
// keep submission order): every transaction then climbs the shard lattice
// in one direction, so no two transactions can acquire a pair of shards'
// locks in opposite orders and close a cross-manager waits-for cycle.
func canonicalOrder(ops []Op, shards int) []Op {
	out := append([]Op{}, ops...)
	sort.SliceStable(out, func(i, j int) bool {
		return kvstore.ShardOf(out[i].Key, shards) < kvstore.ShardOf(out[j].Key, shards)
	})
	return out
}

// applyDecision applies the commit protocol's outcome to the local store.
// It is wired as the cohort's OnDecide callback (deploy.go), which the
// call-graph walk cannot see through — the //lock:handler opt-in makes it
// an analysis root so the commit path's ReleaseAll ordering is covered.
//
//lock:handler
func (s *Site) applyDecision(txn string, d tpc.Decision) {
	if !s.Store.Prepared(txn) {
		return // no local branch (not involved, or already applied)
	}
	if d == tpc.DecisionCommit {
		_ = s.Store.Commit(txn)
	} else {
		_ = s.Store.Abort(txn)
	}
	if s.OnApply != nil {
		s.OnApply(txn, d)
	}
}

// Recover rebuilds the site after a crash, from stable storage alone: the
// commit protocol's failure transitions settle every branch with a
// persisted FSM state (a branch persisted in p2 commits, q2/w2 aborts,
// decided states are kept); branches whose yes-vote never reached stable
// storage cannot have been decided commit anywhere (the vote is written
// ahead of its send), so they resolve to abort; then the store reopens,
// replaying the WAL over the resolved log. simnet invokes this via the
// RecoverFunc wired by NewClusterOn.
func (s *Site) Recover() error {
	st, err := s.net.Store(s.id)
	if err != nil {
		return fmt.Errorf("txn: recover site %d: %w", s.id, err)
	}
	// Failure transitions (Fig. 3.2). For branches the pre-crash Store
	// object still had open this appends the commit/abort record via
	// applyDecision; the volatile half of that object is discarded below.
	decisions := s.cohort.RecoverAll()
	// Settle any branch still in doubt on the log.
	active, err := wal.Active(st)
	if err != nil {
		return fmt.Errorf("txn: recover site %d: %w", s.id, err)
	}
	for _, txn := range active {
		d, ok := decisions[txn]
		if !ok {
			d = s.cohort.Decision(txn)
		}
		if d != tpc.DecisionCommit {
			d = tpc.DecisionAbort
		}
		if err := wal.Resolve(st, txn, d == tpc.DecisionCommit); err != nil {
			return fmt.Errorf("txn: recover site %d: %w", s.id, err)
		}
		if s.OnApply != nil {
			s.OnApply(txn, d)
		}
	}
	var store kvstore.DB
	if s.shards > 0 {
		store, err = kvstore.OpenShards(st, s.shards)
	} else {
		store, err = kvstore.Open(st)
	}
	if err != nil {
		return fmt.Errorf("txn: recover site %d: %w", s.id, err)
	}
	s.Store = store
	s.failed = map[string]bool{}
	return nil
}

// ID returns the site's node ID.
func (s *Site) ID() rt.NodeID { return s.id }

// Decision reports this site's commit-protocol outcome for txn.
func (s *Site) Decision(txn string) tpc.Decision { return s.cohort.Decision(txn) }

// StateOf reports this site's commit-protocol FSM state for txn.
func (s *Site) StateOf(txn string) tpc.State { return s.cohort.StateOf(txn) }

// Blocked reports whether this (2PC) site is blocked on txn, and since
// when — the uncertainty window the paper's introduction describes.
func (s *Site) Blocked(txn string) (bool, rt.Time) { return s.cohort.Blocked(txn) }

// SetOnBlocked installs the blocked-cohort observer.
func (s *Site) SetOnBlocked(f func(txn string)) { s.cohort.OnBlocked = f }
