package txn

import (
	"fmt"
	"testing"

	"speccat/internal/kvstore"
	"speccat/internal/simnet"
	"speccat/internal/tpc"
)

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// submitAndRun drives one transaction to completion.
func submitAndRun(t *testing.T, c *Cluster, name string, ops []Op) *Result {
	t.Helper()
	var got *Result
	mustOK(t, c.Master.Submit(name, ops, func(r *Result) { got = r }))
	c.Run()
	if got == nil {
		t.Fatalf("transaction %s never completed", name)
	}
	return got
}

func TestDistributedCommit(t *testing.T) {
	c, err := NewCluster(1, 3, tpc.Config{})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	res := submitAndRun(t, c, "t1", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("decision = %s", res.Decision)
	}
	if c.Sites[s2].Store.Read("x") != "1" || c.Sites[s3].Store.Read("y") != "2" {
		t.Fatal("committed values not visible")
	}
}

func TestReadOnlyTransaction(t *testing.T) {
	c, err := NewCluster(2, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	submitAndRun(t, c, "seed", []Op{{Site: s2, Key: "x", Value: "42", IsWrite: true}})
	res := submitAndRun(t, c, "read", []Op{{Site: s2, Key: "x"}})
	if res.Decision != tpc.DecisionCommit {
		t.Fatalf("read txn decision = %s", res.Decision)
	}
}

func TestSiteCrashDuringWorkAborts(t *testing.T) {
	c, err := NewCluster(3, 3, tpc.Config{})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	// Crash a participant before its work arrives.
	mustOK(t, c.Net.Crash(s3))
	res := submitAndRun(t, c, "t1", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	})
	if res.Decision != tpc.DecisionAbort {
		t.Fatalf("decision = %s, want abort", res.Decision)
	}
	// The surviving site must have rolled its branch back.
	if c.Sites[s2].Store.Read("x") != "" {
		t.Fatalf("partial commit leaked: x=%q", c.Sites[s2].Store.Read("x"))
	}
	if c.Sites[s2].Store.OpenTxns() != 0 {
		t.Fatal("branch left open (locks held)")
	}
}

func TestMultiSiteTransferMovesMoney(t *testing.T) {
	c, err := NewCluster(4, 3, tpc.Config{})
	mustOK(t, err)
	sa, sb := c.SiteIDs[0], c.SiteIDs[1]
	res := submitAndRun(t, c, "seed", []Op{
		{Site: sa, Key: "src", Value: "100", IsWrite: true},
		{Site: sb, Key: "dst", Value: "100", IsWrite: true},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatal("seed aborted")
	}
	res = submitAndRun(t, c, "move", []Op{
		{Site: sa, Key: "src"},
		{Site: sb, Key: "dst"},
		{Site: sa, Key: "src", Value: "90", IsWrite: true},
		{Site: sb, Key: "dst", Value: "110", IsWrite: true},
	})
	if res.Decision != tpc.DecisionCommit {
		t.Fatal("transfer aborted")
	}
	got := fmt.Sprintf("%s/%s", c.Sites[sa].Store.Read("src"), c.Sites[sb].Store.Read("dst"))
	if got != "90/110" {
		t.Fatalf("balances = %s", got)
	}
}

func TestMasterCrashNonBlocking3PC(t *testing.T) {
	// The headline behaviour end-to-end: master crashes mid-commit; under
	// 3PC the sites terminate and release their locks.
	c, err := NewCluster(5, 3, tpc.Config{})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	mustOK(t, c.Master.Submit("t1", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	}, nil))
	// Let the work phase finish and the commit protocol start, then kill
	// the master mid-protocol.
	sched := c.Net.Scheduler()
	for i := 0; i < 100000; i++ {
		if !sched.Step() {
			break
		}
		if c.Sites[s2].cohort.StateOf("t1") == tpc.StateWait {
			mustOK(t, c.Net.Crash(c.MasterID))
			break
		}
	}
	sched.Run(0)
	for _, id := range []simnet.NodeID{s2, s3} {
		if c.Sites[id].cohort.Decision("t1") == tpc.DecisionNone {
			t.Fatalf("site %d blocked after master crash", id)
		}
		if c.Sites[id].Store.OpenTxns() != 0 {
			t.Fatalf("site %d still holds locks", id)
		}
	}
	// All sites agreed.
	d := c.Sites[s2].cohort.Decision("t1")
	if c.Sites[s3].cohort.Decision("t1") != d {
		t.Fatal("sites disagree after termination")
	}
}

func TestMasterCrash2PCBlocksLocks(t *testing.T) {
	// The same scenario under 2PC: sites stay uncertain, branches stay
	// open, locks stay held — the paper's "cascading blocking".
	c, err := NewCluster(6, 3, tpc.Config{Protocol: tpc.TwoPhase})
	mustOK(t, err)
	s2, s3 := c.SiteIDs[0], c.SiteIDs[1]
	mustOK(t, c.Master.Submit("t1", []Op{
		{Site: s2, Key: "x", Value: "1", IsWrite: true},
		{Site: s3, Key: "y", Value: "2", IsWrite: true},
	}, nil))
	sched := c.Net.Scheduler()
	for i := 0; i < 100000; i++ {
		if !sched.Step() {
			break
		}
		if c.Sites[s2].cohort.StateOf("t1") == tpc.StateWait &&
			c.Sites[s3].cohort.StateOf("t1") == tpc.StateWait {
			mustOK(t, c.Net.Crash(c.MasterID))
			break
		}
	}
	sched.RunUntil(sched.Now() + 2000)
	for _, id := range []simnet.NodeID{s2, s3} {
		if c.Sites[id].cohort.Decision("t1") != tpc.DecisionNone {
			t.Fatalf("2PC site %d decided without coordinator", id)
		}
		if c.Sites[id].Store.OpenTxns() == 0 {
			t.Fatalf("2PC site %d released locks while uncertain", id)
		}
	}
}

func TestSiteForStable(t *testing.T) {
	c, err := NewCluster(7, 3, tpc.Config{})
	mustOK(t, err)
	if c.SiteFor("acct001") != c.SiteFor("acct001") {
		t.Fatal("placement unstable")
	}
	spread := map[simnet.NodeID]bool{}
	for i := 0; i < 50; i++ {
		spread[c.SiteFor(fmt.Sprintf("acct%03d", i))] = true
	}
	if len(spread) < 2 {
		t.Fatal("placement does not spread keys")
	}
}

func TestCrashedSiteRecoversCommittedData(t *testing.T) {
	c, err := NewCluster(8, 2, tpc.Config{})
	mustOK(t, err)
	s2 := c.SiteIDs[0]
	res := submitAndRun(t, c, "t1", []Op{{Site: s2, Key: "x", Value: "keep", IsWrite: true}})
	if res.Decision != tpc.DecisionCommit {
		t.Fatal("setup aborted")
	}
	mustOK(t, c.Net.Crash(s2))
	mustOK(t, c.Net.Recover(s2))
	// Reopen the store from the (surviving) stable storage.
	st, err := c.Net.Store(s2)
	mustOK(t, err)
	reopened, err := kvstore.Open(st)
	mustOK(t, err)
	if reopened.Read("x") != "keep" {
		t.Fatalf("recovered value = %q", reopened.Read("x"))
	}
}
