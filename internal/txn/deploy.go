package txn

// Runtime-agnostic deployment: one engine per call, on any rt.Transport.
// The simulator harness (cluster.go) wires a whole cluster in one
// process; a real deployment (cmd/tpcserve) runs one process per node,
// so it needs to construct exactly its own role — NewMasterOn for the
// coordinator process, NewSiteOn for each cohort process. Both install
// the engine's handler and recovery callback on the transport, so after
// the call the node is live.

import (
	"fmt"

	"speccat/internal/kvstore"
	"speccat/internal/rt"
	"speccat/internal/tpc"
)

// NewMasterOn builds the master engine (transaction coordinator side) on
// net. The master node must already be registered on the transport
// (AddNode); siteIDs are the data sites, which may live in other
// processes.
func NewMasterOn(net rt.Transport, masterID rt.NodeID, siteIDs []rt.NodeID, cfg tpc.Config) (*Master, error) {
	m := &Master{
		net: net, id: masterID,
		coord:   tpc.NewCoordinator(net, masterID, siteIDs, cfg),
		pending: map[string]*pending{},
		scoped:  cfg.ScopedParticipants,
	}
	m.coord.OnDecide = m.onDecide
	if err := net.SetHandler(masterID, m.handle); err != nil {
		return nil, fmt.Errorf("txn: wire master %d: %w", masterID, err)
	}
	if err := net.SetRecover(masterID, m.RecoverCoordinator); err != nil {
		return nil, fmt.Errorf("txn: wire master %d: %w", masterID, err)
	}
	return m, nil
}

// NewSiteOn builds one data-site engine (cohort plus local kvstore) on
// net. The site node must already be registered on the transport; its
// stable store backs the kvstore's WAL, so a site built over a
// file-journaled store recovers its committed state across real process
// restarts.
func NewSiteOn(net rt.Transport, id, masterID rt.NodeID, siteIDs []rt.NodeID, cfg tpc.Config) (*Site, error) {
	return newSiteOn(net, id, masterID, siteIDs, cfg, 0)
}

// NewShardedSiteOn is NewSiteOn with the site's database hash-partitioned
// into nshards independent shards (own lock manager and WAL session each)
// over the site's one stable store. Crash recovery reopens the same
// layout. nshards < 2 degrades to the single-partition store.
func NewShardedSiteOn(net rt.Transport, id, masterID rt.NodeID, siteIDs []rt.NodeID, cfg tpc.Config, nshards int) (*Site, error) {
	if nshards < 2 {
		nshards = 0
	}
	return newSiteOn(net, id, masterID, siteIDs, cfg, nshards)
}

func newSiteOn(net rt.Transport, id, masterID rt.NodeID, siteIDs []rt.NodeID, cfg tpc.Config, nshards int) (*Site, error) {
	st, err := net.Store(id)
	if err != nil {
		return nil, fmt.Errorf("txn: wire site %d: %w", id, err)
	}
	var store kvstore.DB
	if nshards > 0 {
		store, err = kvstore.OpenShards(st, nshards)
	} else {
		store, err = kvstore.Open(st)
	}
	if err != nil {
		return nil, fmt.Errorf("txn: wire site %d: %w", id, err)
	}
	site := &Site{net: net, id: id, Store: store, masterID: masterID, failed: map[string]bool{}, shards: nshards}
	site.cohort = tpc.NewCohort(net, id, masterID, siteIDs, cfg)
	site.cohort.Vote = func(txn string) bool { return !site.failed[txn] }
	site.cohort.OnDecide = site.applyDecision
	if err := net.SetHandler(id, site.handle); err != nil {
		return nil, fmt.Errorf("txn: wire site %d: %w", id, err)
	}
	if err := net.SetRecover(id, func() { _ = site.Recover() }); err != nil {
		return nil, fmt.Errorf("txn: wire site %d: %w", id, err)
	}
	return site, nil
}

// SiteFor maps a key to its home site by stable hashing over the sorted
// site list — the placement function every front end (simulator cluster,
// tpcserve's client port, tpcload's generator) must share so the same key
// always lands on the same site.
func SiteFor(siteIDs []rt.NodeID, key string) rt.NodeID {
	h := 0
	for _, ch := range key {
		h = h*31 + int(ch)
	}
	if h < 0 {
		h = -h
	}
	return siteIDs[h%len(siteIDs)]
}
