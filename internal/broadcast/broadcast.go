// Package broadcast implements the reliable/atomic broadcast protocol of
// Section 3.5.1 (building block 1.1): to A-broadcast m, a process
// R-broadcasts m (sends it to every site, with receivers relaying the
// first copy so a mid-broadcast sender crash cannot partition delivery);
// on first receipt a process schedules A-delivery at local time T + Δ with
// Δ = (f+1)·δ, which yields the Termination, Validity, Integrity, Uniform
// Agreement and Timeliness properties the paper lists.
//
//rt:engine
package broadcast

import (
	"fmt"

	"speccat/internal/rt"
)

// msgKind tags broadcast relay messages on the wire.
const msgKind = "broadcast.relay" //fsm:msg broadcast endpoint

// payload carries one broadcast instance.
type payload struct {
	ID     string
	Origin rt.NodeID
	Body   any
	SentAt rt.Time
}

// Delivery is one A-delivered message.
type Delivery struct {
	ID          string
	Origin      rt.NodeID
	Body        any
	BroadcastAt rt.Time
	DeliveredAt rt.Time
}

// Endpoint is the per-site broadcast engine. Wire its HandleMessage into
// the site's demultiplexer and call Broadcast to A-broadcast.
type Endpoint struct {
	net     rt.Transport
	id      rt.NodeID
	f       int
	nextSeq int
	// seen marks R-delivered broadcast IDs (integrity: at most once).
	seen map[string]bool
	// Deliver is invoked exactly once per broadcast at A-delivery time.
	Deliver func(d Delivery)
	// delivered records deliveries for inspection by tests.
	delivered []Delivery
}

// New creates a broadcast endpoint for site id tolerating f crash faults.
func New(net rt.Transport, id rt.NodeID, f int) *Endpoint {
	return &Endpoint{net: net, id: id, f: f, seen: map[string]bool{}}
}

// Delta returns the A-delivery delay Δ = (f+1)·δ.
func (e *Endpoint) Delta() rt.Time {
	return rt.Time(e.f+1) * e.net.Delta()
}

// Broadcast A-broadcasts body to every site (including the sender).
func (e *Endpoint) Broadcast(body any) (string, error) {
	e.nextSeq++
	id := fmt.Sprintf("b%d.%d", e.id, e.nextSeq)
	p := payload{ID: id, Origin: e.id, Body: body, SentAt: e.net.Now()}
	if err := e.net.Broadcast(e.id, msgKind, p); err != nil {
		return "", fmt.Errorf("broadcast %s: %w", id, err)
	}
	return id, nil
}

// Kind returns the wire kind this endpoint consumes.
func Kind() string { return msgKind }

// HandleMessage processes an incoming relay; returns true when consumed.
//
//fsm:handler broadcast endpoint
func (e *Endpoint) HandleMessage(m rt.Message) bool {
	if m.Kind != msgKind {
		return false
	}
	p, ok := m.Payload.(payload)
	if !ok {
		//fsm:ignore demux handler declines an undecodable relay so the site's terminal handler accounts for it
		return false
	}
	if e.seen[p.ID] {
		return true // integrity: no duplicate delivery
	}
	e.seen[p.ID] = true
	// Relay the first copy so delivery survives an origin crash
	// (uniform agreement). Relaying to self is suppressed by `seen`.
	if p.Origin != e.id {
		// Best effort: if this site crashed mid-handling the network
		// rejects the send; that is the crash semantics we want.
		_ = e.net.Broadcast(e.id, msgKind, p)
	}
	// Schedule A-delivery at T + Δ (timeliness bound).
	deliverAt := p.SentAt + e.Delta()
	e.net.After(e.id, maxTime(0, deliverAt-e.net.Now()), func() {
		d := Delivery{
			ID: p.ID, Origin: p.Origin, Body: p.Body,
			BroadcastAt: p.SentAt, DeliveredAt: e.net.Now(),
		}
		e.delivered = append(e.delivered, d)
		if e.Deliver != nil {
			e.Deliver(d)
		}
	})
	return true
}

// Delivered returns the deliveries so far (test inspection).
func (e *Endpoint) Delivered() []Delivery {
	return append([]Delivery{}, e.delivered...)
}

func maxTime(a, b rt.Time) rt.Time {
	if a > b {
		return a
	}
	return b
}

// Group wires one endpoint per node of a network and returns them keyed by
// node ID; it installs a shared demultiplexing handler per node.
func Group(net rt.Transport, f int) map[rt.NodeID]*Endpoint {
	eps := map[rt.NodeID]*Endpoint{}
	for _, id := range net.Nodes() {
		eps[id] = New(net, id, f)
	}
	for id, ep := range eps {
		ep := ep
		// Preserve existing handlers by chaining.
		if err := net.SetHandler(id, func(m rt.Message) { ep.HandleMessage(m) }); err != nil {
			//lint:allow nopanic nodes came from net.Nodes() so SetHandler cannot fail; a panic here is a wiring bug in this package
			panic(err)
		}
	}
	return eps
}
