package broadcast

import (
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

func setup(seed int64, n, f int) (*simnet.Network, map[simnet.NodeID]*Endpoint) {
	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	for i := 1; i <= n; i++ {
		net.AddNode(simnet.NodeID(i), nil)
	}
	return net, Group(net, f)
}

func TestValidityAllCorrectDeliver(t *testing.T) {
	net, eps := setup(1, 4, 1)
	if _, err := eps[1].Broadcast("hello"); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	for id, ep := range eps {
		ds := ep.Delivered()
		if len(ds) != 1 {
			t.Fatalf("node %d delivered %d messages", id, len(ds))
		}
		if ds[0].Body.(string) != "hello" || ds[0].Origin != 1 {
			t.Fatalf("node %d delivery = %+v", id, ds[0])
		}
	}
}

func TestIntegrityNoDuplicates(t *testing.T) {
	net, eps := setup(2, 4, 1)
	// Two broadcasts from different nodes; relays must not duplicate.
	if _, err := eps[1].Broadcast("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := eps[2].Broadcast("b"); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	for id, ep := range eps {
		if got := len(ep.Delivered()); got != 2 {
			t.Fatalf("node %d delivered %d, want 2", id, got)
		}
	}
}

func TestTimelinessBound(t *testing.T) {
	net, eps := setup(3, 5, 2)
	if _, err := eps[1].Broadcast("x"); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	delta := eps[1].Delta()
	for id, ep := range eps {
		for _, d := range ep.Delivered() {
			lat := d.DeliveredAt - d.BroadcastAt
			// The A-delivery timer fires at exactly T+Δ or the relay
			// arrival, whichever is later; with FIFO pushback allow a
			// small number of extra ticks.
			if lat > delta+sim.Time(5) {
				t.Fatalf("node %d latency %d exceeds Δ=%d", id, lat, delta)
			}
		}
	}
}

func TestUniformAgreementUnderSenderCrash(t *testing.T) {
	// Sender crashes immediately after its sends are queued; relays must
	// still deliver everywhere (f=1 tolerated crash).
	net, eps := setup(4, 4, 1)
	if _, err := eps[1].Broadcast("survive"); err != nil {
		t.Fatal(err)
	}
	if err := net.Crash(1); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	for _, id := range []simnet.NodeID{2, 3, 4} {
		if got := len(eps[id].Delivered()); got != 1 {
			t.Fatalf("correct node %d delivered %d, want 1", id, got)
		}
	}
}

func TestAgreementIfAnyCorrectDelivers(t *testing.T) {
	// Crash node 2 after the relays are in flight: every *correct* node
	// must still agree (deliver the same set).
	net, eps := setup(5, 5, 1)
	if _, err := eps[3].Broadcast("m"); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().RunUntil(2)
	if err := net.Crash(2); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	want := -1
	for _, id := range []simnet.NodeID{1, 3, 4, 5} {
		got := len(eps[id].Delivered())
		if want == -1 {
			want = got
		}
		if got != want || got != 1 {
			t.Fatalf("agreement violated: node %d delivered %d, want %d", id, got, want)
		}
	}
}

func TestDeliverCallbackFires(t *testing.T) {
	net, eps := setup(6, 3, 1)
	var got []Delivery
	eps[2].Deliver = func(d Delivery) { got = append(got, d) }
	if _, err := eps[1].Broadcast("cb"); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	if len(got) != 1 || got[0].Body.(string) != "cb" {
		t.Fatalf("callback deliveries = %v", got)
	}
}

func TestManyBroadcastsAllDelivered(t *testing.T) {
	net, eps := setup(7, 4, 1)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		origin := simnet.NodeID(1 + i%4)
		if _, err := eps[origin].Broadcast(i); err != nil {
			t.Fatal(err)
		}
	}
	net.Scheduler().Run(0)
	for id, ep := range eps {
		if got := len(ep.Delivered()); got != rounds {
			t.Fatalf("node %d delivered %d, want %d", id, got, rounds)
		}
	}
}
