// Logical-record semantics: the canonical value encodings of the
// commutative operation classes and the Apply/Undo functions recovery
// folds the log with. The encodings are interleaving-independent —
// increments sum, appends build a sorted multiset, set-inserts a sorted
// set — so any serial replay order of commuting records yields the same
// bytes, which is what lets the explorer's oracles compare states across
// schedules.

package wal

import (
	"sort"
	"strconv"
	"strings"
)

// Apply computes the result of one logical operation against the
// canonical encoding of cur:
//
//	OpInc       cur is a decimal integer ("" = 0); the result is cur+arg
//	OpAppend    cur is a sorted multiset joined with ","; arg is added
//	OpSetInsert cur is a sorted set joined with ","; arg is added if absent
//
// Unknown operations return cur unchanged (a corrupt record must not
// invent state during recovery).
func Apply(op, cur, arg string) string {
	switch op {
	case OpInc:
		return strconv.FormatInt(parseInt(cur)+parseInt(arg), 10)
	case OpAppend:
		return joinSorted(append(splitList(cur), arg))
	case OpSetInsert:
		elems := splitList(cur)
		for _, e := range elems {
			if e == arg {
				return cur
			}
		}
		return joinSorted(append(elems, arg))
	default:
		return cur
	}
}

// Undo inverts one update record against the current value: physical
// records restore the before-image, logical records apply the inverse
// operation so concurrent commuting updates survive. A set-insert whose
// element already existed (visible in the record's before-image) undoes
// to a no-op — re-inserting is the part that never happened.
func Undo(r Record, cur string) string {
	switch r.Op {
	case "":
		return r.Old
	case OpInc:
		return strconv.FormatInt(parseInt(cur)-parseInt(r.Arg), 10)
	case OpAppend:
		return removeOne(cur, r.Arg)
	case OpSetInsert:
		for _, e := range splitList(r.Old) {
			if e == r.Arg {
				return cur
			}
		}
		return removeOne(cur, r.Arg)
	default:
		return cur
	}
}

// parseInt reads the canonical integer encoding ("" = 0; garbage = 0,
// keeping recovery total).
func parseInt(s string) int64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// splitList decodes the canonical list encoding.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// joinSorted encodes a list canonically: sorted, ","-joined.
func joinSorted(elems []string) string {
	sort.Strings(elems)
	return strings.Join(elems, ",")
}

// removeOne drops one occurrence of arg from the canonical list cur.
func removeOne(cur, arg string) string {
	elems := splitList(cur)
	for i, e := range elems {
		if e == arg {
			return joinSorted(append(elems[:i], elems[i+1:]...))
		}
	}
	return cur
}
