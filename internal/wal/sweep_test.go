package wal

import (
	"reflect"
	"testing"

	"speccat/internal/stable"
)

// buildSweepLog produces a representative log: two committed transactions,
// one aborted, one left in doubt, with interleaving and key overlap.
func buildSweepLog(t *testing.T) [][]byte {
	t.Helper()
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "1"))
	mustOK(t, l.Begin("t2"))
	mustOK(t, l.LoggedUpdate("t2", db, "y", "2"))
	mustOK(t, l.LoggedUpdate("t1", db, "y", "1"))
	mustOK(t, l.Commit("t1"))
	mustOK(t, l.LoggedUpdate("t2", db, "x", "2"))
	mustOK(t, l.Abort("t2"))
	mustOK(t, l.Begin("t3"))
	mustOK(t, l.LoggedUpdate("t3", db, "x", "3"))
	mustOK(t, l.LoggedUpdate("t3", db, "z", "3"))
	mustOK(t, l.Commit("t3"))
	mustOK(t, l.Begin("t4"))
	mustOK(t, l.LoggedUpdate("t4", db, "z", "4")) // in doubt forever
	_, log := st.Snapshot()
	return log
}

// prefixStore materializes the crash point: a store holding only the first
// k log records, exactly what stable storage contains if the site dies
// between record k and record k+1.
func prefixStore(log [][]byte, k int) *stable.Store {
	st := stable.NewStore()
	for _, rec := range log[:k] {
		st.Append(rec)
	}
	return st
}

// specState recomputes the expected recovered state straight from the
// record semantics: redo updates of transactions with a commit record in
// the prefix, in log order; everything else never applies.
func specState(t *testing.T, st *stable.Store) map[string]string {
	t.Helper()
	recs, err := Records(st)
	mustOK(t, err)
	committed := map[string]bool{}
	for _, r := range recs {
		if r.Kind == RecCommit {
			committed[r.Txn] = true
		}
	}
	want := map[string]string{}
	for _, r := range recs {
		if r.Kind == RecUpdate && committed[r.Txn] {
			want[r.Key] = r.New
		}
	}
	return want
}

// TestRecoverySweepAtEveryRecordBoundary crashes the site at every record
// boundary of a mixed log and checks, at each crash point, that recovery
// (a) reconstructs exactly the committed prefix state, (b) is idempotent —
// a second recovery, i.e. a crash during or right after the first, yields
// the identical state — and (c) leaves in-doubt transactions invisible.
func TestRecoverySweepAtEveryRecordBoundary(t *testing.T) {
	log := buildSweepLog(t)
	for k := 0; k <= len(log); k++ {
		st := prefixStore(log, k)
		want := specState(t, st)

		got1, _, err := Recover(st)
		mustOK(t, err)
		got2, _, err := Recover(st) // second crash, second recovery
		mustOK(t, err)
		if !reflect.DeepEqual(got1, want) {
			t.Fatalf("crash point %d: recovered %v, want %v", k, got1, want)
		}
		if !reflect.DeepEqual(got1, got2) {
			t.Fatalf("crash point %d: recovery not idempotent: %v vs %v", k, got1, got2)
		}
	}
}

// TestRecoverySweepSettlingInDoubt extends the sweep with the recovery
// manager's settling step: aborting every in-doubt transaction via Resolve
// must never change the recovered data state, at any crash point — and a
// crash halfway through settling (some branches resolved, some not) must
// land in the same state as settling in one go.
func TestRecoverySweepSettlingInDoubt(t *testing.T) {
	log := buildSweepLog(t)
	for k := 0; k <= len(log); k++ {
		st := prefixStore(log, k)
		want := specState(t, st)

		active, err := Active(st)
		mustOK(t, err)
		// Crash mid-settling: resolve only the first half, recover...
		for _, txn := range active[:len(active)/2] {
			mustOK(t, Resolve(st, txn, false))
		}
		mid, _, err := Recover(st)
		mustOK(t, err)
		if !reflect.DeepEqual(mid, want) {
			t.Fatalf("crash point %d: state changed after partial settling: %v, want %v", k, mid, want)
		}
		// ...then finish the job after the second restart.
		rest, err := Active(st)
		mustOK(t, err)
		for _, txn := range rest {
			mustOK(t, Resolve(st, txn, false))
		}
		final, _, err := Recover(st)
		mustOK(t, err)
		if !reflect.DeepEqual(final, want) {
			t.Fatalf("crash point %d: state changed after settling: %v, want %v", k, final, want)
		}
		left, err := Active(st)
		mustOK(t, err)
		if len(left) != 0 {
			t.Fatalf("crash point %d: %v still in doubt after settling", k, left)
		}
	}
}

// TestRecoverySweepLateCommit checks the other settling direction: when
// the commit protocol's persisted decision says an in-doubt branch
// committed (a cohort that crashed in p2), Resolve(commit) makes its
// updates durable from the log alone.
func TestRecoverySweepLateCommit(t *testing.T) {
	log := buildSweepLog(t)
	st := prefixStore(log, len(log))
	mustOK(t, Resolve(st, "t4", true))
	got, _, err := Recover(st)
	mustOK(t, err)
	if got["z"] != "4" {
		t.Fatalf("late-committed t4's write lost: z=%q", got["z"])
	}
	// And it stays stable across another crash+recovery.
	again, _, err := Recover(st)
	mustOK(t, err)
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("late commit not idempotent: %v vs %v", got, again)
	}
}
