package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"speccat/internal/stable"
)

func TestCommitIsDurable(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "5"))
	mustOK(t, l.LoggedUpdate("t1", db, "y", "7"))
	mustOK(t, l.Commit("t1"))

	// Crash: volatile db is lost; recover from the log alone.
	rec, outcomes, err := Recover(st)
	mustOK(t, err)
	if rec["x"] != "5" || rec["y"] != "7" {
		t.Fatalf("recovered db = %v", rec)
	}
	if len(outcomes) != 1 || !outcomes[0].Committed {
		t.Fatalf("outcomes = %v", outcomes)
	}
}

func TestUncommittedIsUndone(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "5"))
	// Crash before commit.
	rec, outcomes, err := Recover(st)
	mustOK(t, err)
	if _, ok := rec["x"]; ok {
		t.Fatalf("uncommitted update survived: %v", rec)
	}
	if len(outcomes) != 1 || outcomes[0].Committed {
		t.Fatalf("outcomes = %v", outcomes)
	}
}

func TestAbortUndo(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{"x": "old"}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "new"))
	mustOK(t, l.Abort("t1"))
	mustOK(t, l.UndoInto("t1", db))
	if db["x"] != "old" {
		t.Fatalf("undo failed: %v", db)
	}
	rec, _, err := Recover(st)
	mustOK(t, err)
	if rec["x"] != "" {
		t.Fatalf("aborted txn redone: %v", rec)
	}
}

func TestWriteAheadOrdering(t *testing.T) {
	// The log record must be on stable storage before the db mutation:
	// after LoggedUpdate, the last log record describes the new value.
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "5"))
	recs, err := Records(st)
	mustOK(t, err)
	last := recs[len(recs)-1]
	if last.Kind != RecUpdate || last.New != "5" || last.Old != "" {
		t.Fatalf("last record = %+v", last)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "1"))
	mustOK(t, l.Commit("t1"))
	mustOK(t, l.Begin("t2"))
	mustOK(t, l.LoggedUpdate("t2", db, "x", "2"))
	// t2 unresolved at crash.
	r1, _, err := Recover(st)
	mustOK(t, err)
	r2, _, err := Recover(st) // second crash during recovery: recover again
	mustOK(t, err)
	if r1["x"] != "1" || r2["x"] != "1" {
		t.Fatalf("recoveries disagree: %v vs %v", r1, r2)
	}
}

func TestInterleavedTransactions(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("a"))
	mustOK(t, l.Begin("b"))
	mustOK(t, l.LoggedUpdate("a", db, "x", "ax"))
	mustOK(t, l.LoggedUpdate("b", db, "y", "by"))
	mustOK(t, l.LoggedUpdate("a", db, "z", "az"))
	mustOK(t, l.Commit("a"))
	// b crashes uncommitted.
	rec, _, err := Recover(st)
	mustOK(t, err)
	if rec["x"] != "ax" || rec["z"] != "az" {
		t.Fatalf("committed txn lost: %v", rec)
	}
	if _, ok := rec["y"]; ok {
		t.Fatalf("uncommitted txn leaked: %v", rec)
	}
}

func TestActive(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("a"))
	mustOK(t, l.Begin("b"))
	mustOK(t, l.Begin("c"))
	mustOK(t, l.LoggedUpdate("a", db, "x", "1"))
	mustOK(t, l.Commit("a"))
	mustOK(t, l.Abort("b"))
	active, err := Active(st)
	mustOK(t, err)
	if len(active) != 1 || active[0] != "c" {
		t.Fatalf("active = %v", active)
	}
}

func TestStateErrors(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	if err := l.Commit("ghost"); !errors.Is(err, ErrTxnState) {
		t.Fatal(err)
	}
	if err := l.LoggedUpdate("ghost", db, "x", "1"); !errors.Is(err, ErrTxnState) {
		t.Fatal(err)
	}
	mustOK(t, l.Begin("t"))
	if err := l.Begin("t"); !errors.Is(err, ErrTxnState) {
		t.Fatal(err)
	}
	mustOK(t, l.Abort("t"))
	if err := l.Abort("t"); !errors.Is(err, ErrTxnState) {
		t.Fatal(err)
	}
}

func TestCorruptLog(t *testing.T) {
	st := stable.NewStore()
	st.Append([]byte("{not json"))
	if _, _, err := Recover(st); !errors.Is(err, ErrCorrupt) {
		t.Fatal(err)
	}
}

// Property: atomicity under crash at an arbitrary point. Run a scripted
// sequence of transactions; crash after a random number of log records
// (simulated by truncating the log); recovery must show each transaction
// either fully applied or fully absent.
func TestCrashAtomicityProperty(t *testing.T) {
	prop := func(seed int64, nTxn uint8, cut uint8) bool {
		r := rand.New(rand.NewSource(seed))
		st := stable.NewStore()
		l := New(st)
		db := map[string]string{}
		total := int(nTxn%8) + 1
		expect := map[string]map[string]string{} // txn -> its writes
		for i := 0; i < total; i++ {
			txn := fmt.Sprintf("t%d", i)
			if err := l.Begin(txn); err != nil {
				return false
			}
			writes := map[string]string{}
			for j := 0; j <= r.Intn(3); j++ {
				k := fmt.Sprintf("k%d", r.Intn(5))
				v := fmt.Sprintf("%s-%d", txn, j)
				if err := l.LoggedUpdate(txn, db, k, v); err != nil {
					return false
				}
				writes[k] = v
			}
			if err := l.Commit(txn); err != nil {
				return false
			}
			expect[txn] = writes
		}
		// Crash: keep only a prefix of the log.
		keep := int(cut) % (st.LogLen() + 1)
		if err := st.TruncateLog(keep); err != nil {
			return false
		}
		rec, outcomes, err := Recover(st)
		if err != nil {
			return false
		}
		// Each surviving-committed transaction's final writes must be
		// consistent: a key's recovered value must be the value written by
		// the LAST committed transaction (in log order) that wrote it.
		committed := map[string]bool{}
		for _, o := range outcomes {
			committed[o.Txn] = o.Committed
		}
		want := map[string]string{}
		recs, err := Records(st)
		if err != nil {
			return false
		}
		for _, rcd := range recs {
			if rcd.Kind == RecUpdate && committed[rcd.Txn] {
				want[rcd.Key] = rcd.New
			}
		}
		if len(want) != len(rec) {
			return false
		}
		for k, v := range want {
			if rec[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
