// Package wal implements the undo/redo logging protocol (building block 3,
// Section 3.5.1): every data modification writes an undo/redo record to
// stable storage *before* the volatile update (write-ahead rule), commit
// and abort are durable log records, and recovery replays the log — redoing
// committed transactions and undoing uncommitted ones — idempotently, so a
// second crash during recovery is harmless.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"

	"speccat/internal/stable"
)

// Sentinel errors.
var (
	// ErrTxnState is returned for operations in the wrong transaction state.
	ErrTxnState = errors.New("wal: invalid transaction state")
	// ErrCorrupt is wrapped when a log record fails to decode.
	ErrCorrupt = errors.New("wal: corrupt log record")
	// ErrEncode is wrapped when a log record fails to serialize before the
	// write-ahead append.
	ErrEncode = errors.New("wal: encode log record")
)

// RecordKind enumerates log record types.
type RecordKind int

// Record kinds.
const (
	RecBegin RecordKind = iota + 1
	RecUpdate
	RecCommit
	RecAbort
	RecEnd // written after undo/redo completion during recovery
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecBegin:
		return "begin"
	case RecUpdate:
		return "update"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Logical operation names for Record.Op. They match the commutativity
// classes of internal/locking/comm.sw: each names a class of updates
// that commute with themselves, which is exactly why their records must
// be replayed as operations (folded) rather than as absolute values —
// two interleaved increments have no single "after" image that survives
// the other one aborting.
const (
	OpInc       = "inc"
	OpAppend    = "append"
	OpSetInsert = "setins"
)

// Record is one log entry, in the [t, X, v] form of the paper: transaction
// t wrote value New (undoing to Old) into data item Key. A logical record
// (Op != "") additionally carries the operation and its argument, so redo
// can re-apply the operation and undo can apply its inverse instead of
// restoring absolute images that would clobber concurrent commuting
// updates.
type Record struct {
	Kind RecordKind `json:"k"`
	Txn  string     `json:"t"`
	Key  string     `json:"x,omitempty"`
	Old  string     `json:"o,omitempty"`
	New  string     `json:"n,omitempty"`
	Op   string     `json:"p,omitempty"`
	Arg  string     `json:"a,omitempty"`
}

// Log is an undo/redo write-ahead log over one site's stable store. The
// volatile database it guards is any map[string]string maintained by the
// caller; Log enforces the write-ahead discipline via LoggedUpdate.
type Log struct {
	store *stable.Store
	// active tracks transactions that have begun but not ended.
	active map[string]bool
}

// New opens (or reopens) the log on a stable store.
func New(store *stable.Store) *Log {
	return &Log{store: store, active: map[string]bool{}}
}

// Begin writes a begin record.
func (l *Log) Begin(txn string) error {
	if l.active[txn] {
		return fmt.Errorf("%w: %s already active", ErrTxnState, txn)
	}
	l.active[txn] = true
	return l.append(Record{Kind: RecBegin, Txn: txn})
}

// LoggedUpdate applies an update with write-ahead logging: the undo/redo
// record hits stable storage strictly before db is modified. The
// //dur:applies annotation tells durcheck that assignments into db are
// the volatile applies the log write must dominate.
//
//dur:applies db
func (l *Log) LoggedUpdate(txn string, db map[string]string, key, value string) error {
	if !l.active[txn] {
		return fmt.Errorf("%w: %s not active", ErrTxnState, txn)
	}
	old := db[key]
	if err := l.append(Record{Kind: RecUpdate, Txn: txn, Key: key, Old: old, New: value}); err != nil {
		return err
	}
	db[key] = value
	return nil
}

// LoggedApply applies a logical (commutative) operation with write-ahead
// logging: the record — operation, argument, and the before/after images
// — hits stable storage strictly before db is modified. The images are
// informational; recovery folds the operation itself (see Apply), which
// is what keeps concurrent commuting updates correct when one of them
// aborts.
//
//dur:applies db
func (l *Log) LoggedApply(txn string, db map[string]string, key, op, arg string) error {
	if !l.active[txn] {
		return fmt.Errorf("%w: %s not active", ErrTxnState, txn)
	}
	old := db[key]
	next := Apply(op, old, arg)
	if err := l.append(Record{Kind: RecUpdate, Txn: txn, Key: key, Old: old, New: next, Op: op, Arg: arg}); err != nil {
		return err
	}
	db[key] = next
	return nil
}

// Commit writes the commit record; after it returns, the transaction's
// effects are durable (redo-able).
func (l *Log) Commit(txn string) error {
	if !l.active[txn] {
		return fmt.Errorf("%w: %s not active", ErrTxnState, txn)
	}
	delete(l.active, txn)
	return l.append(Record{Kind: RecCommit, Txn: txn})
}

// Abort writes the abort record; recovery (or the caller via UndoInto)
// removes the transaction's effects.
func (l *Log) Abort(txn string) error {
	if !l.active[txn] {
		return fmt.Errorf("%w: %s not active", ErrTxnState, txn)
	}
	delete(l.active, txn)
	return l.append(Record{Kind: RecAbort, Txn: txn})
}

// UndoInto rolls a just-aborted transaction's updates back out of db
// (reverse order), without writing further log records. Physical updates
// restore their before-image; logical updates apply the inverse
// operation, so commuting updates of concurrent transactions that
// applied after the aborted ones are preserved rather than clobbered.
func (l *Log) UndoInto(txn string, db map[string]string) error {
	return l.UndoOwnedInto(txn, db, nil)
}

// UndoOwnedInto is UndoInto restricted to the keys owns reports true for.
// Sharded stores share one stable log per site, so each shard's abort
// must undo only its own partition's updates — a nil owns undoes
// everything (the unsharded case).
func (l *Log) UndoOwnedInto(txn string, db map[string]string, owns func(key string) bool) error {
	recs, err := Records(l.store)
	if err != nil {
		return err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Kind == RecUpdate && r.Txn == txn && (owns == nil || owns(r.Key)) {
			db[r.Key] = Undo(r, db[r.Key])
		}
	}
	return nil
}

// append forces one record to the stable log.
//
//dur:writes log
func (l *Log) append(r Record) error {
	data, err := json.Marshal(r)
	if err != nil {
		// Record is a plain struct of strings, so this is unreachable today;
		// still surfaced as an error because a silent write-ahead failure
		// would break the recovery protocol's durability assumption.
		return fmt.Errorf("%w: %w", ErrEncode, err)
	}
	l.store.Append(data)
	return nil
}

// Resolve appends a commit or abort record for an in-doubt transaction
// directly on stable storage, without an open Log session. Recovery
// managers use it after a crash to settle branches whose fate the commit
// protocol decided (from the persisted FSM state) while the local Log
// object was lost with the volatile state.
func Resolve(store *stable.Store, txn string, commit bool) error {
	kind := RecAbort
	if commit {
		kind = RecCommit
	}
	data, err := json.Marshal(Record{Kind: kind, Txn: txn})
	if err != nil {
		return fmt.Errorf("%w: %w", ErrEncode, err)
	}
	store.Append(data)
	return nil
}

// Records decodes the full log from a stable store.
func Records(store *stable.Store) ([]Record, error) {
	raw := store.ReadLog(0)
	out := make([]Record, 0, len(raw))
	for i, b := range raw {
		var r Record
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("%w: record %d: %w", ErrCorrupt, i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Outcome summarizes recovery for one transaction.
type Outcome struct {
	Txn       string
	Committed bool
}

// Recover reconstructs the database state from the log alone: committed
// transactions' updates are redone, updates of uncommitted or aborted
// transactions are undone (they never apply). It returns the recovered
// database and per-transaction outcomes, and is idempotent — recovering
// twice, or crashing mid-recovery and recovering again, yields the same
// state, the paper's "undo and redo must function even if there is a
// second crash during recovery".
func Recover(store *stable.Store) (map[string]string, []Outcome, error) {
	recs, err := Records(store)
	if err != nil {
		return nil, nil, err
	}
	committed := map[string]bool{}
	seen := map[string]bool{}
	var order []string
	for _, r := range recs {
		if !seen[r.Txn] && r.Txn != "" {
			seen[r.Txn] = true
			order = append(order, r.Txn)
		}
		if r.Kind == RecCommit {
			committed[r.Txn] = true
		}
	}
	db := map[string]string{}
	// Redo pass: apply updates of committed transactions in log order.
	// Uncommitted/aborted updates are skipped, which equals undoing them
	// from an initially-empty volatile state. Physical records install
	// their after-image; logical records re-apply the operation — folding,
	// not copying, because a logical record's absolute image bakes in
	// updates of concurrent transactions whose fate may differ.
	for _, r := range recs {
		if r.Kind != RecUpdate || !committed[r.Txn] {
			continue
		}
		if r.Op == "" {
			db[r.Key] = r.New
		} else {
			db[r.Key] = Apply(r.Op, db[r.Key], r.Arg)
		}
	}
	outcomes := make([]Outcome, 0, len(order))
	for _, txn := range order {
		outcomes = append(outcomes, Outcome{Txn: txn, Committed: committed[txn]})
	}
	return db, outcomes, nil
}

// Active returns the names of transactions that are begun but not yet
// committed or aborted, per the log on stable storage (used by recovery
// managers to decide who needs the termination protocol).
func Active(store *stable.Store) ([]string, error) {
	recs, err := Records(store)
	if err != nil {
		return nil, err
	}
	state := map[string]bool{}
	var order []string
	for _, r := range recs {
		switch r.Kind {
		case RecBegin:
			if !state[r.Txn] {
				state[r.Txn] = true
				order = append(order, r.Txn)
			}
		case RecCommit, RecAbort:
			state[r.Txn] = false
		}
	}
	var out []string
	for _, txn := range order {
		if state[txn] {
			out = append(out, txn)
		}
	}
	return out, nil
}
