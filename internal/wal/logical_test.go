package wal

import (
	"testing"

	"speccat/internal/stable"
)

// TestApplyCanonical pins the canonical encodings of the three logical
// operations: increments sum decimal strings, appends keep a sorted
// multiset, set-inserts a sorted duplicate-free set.
func TestApplyCanonical(t *testing.T) {
	cases := []struct {
		op, cur, arg, want string
	}{
		{OpInc, "", "5", "5"},
		{OpInc, "5", "-2", "3"},
		{OpInc, "-3", "-4", "-7"},
		{OpAppend, "", "b", "b"},
		{OpAppend, "b", "a", "a,b"},
		{OpAppend, "a,b", "a", "a,a,b"},
		{OpSetInsert, "", "b", "b"},
		{OpSetInsert, "b", "a", "a,b"},
		{OpSetInsert, "a,b", "a", "a,b"},
		{"bogus", "x", "y", "x"},
	}
	for _, tc := range cases {
		if got := Apply(tc.op, tc.cur, tc.arg); got != tc.want {
			t.Errorf("Apply(%s, %q, %q) = %q, want %q", tc.op, tc.cur, tc.arg, got, tc.want)
		}
	}
}

// TestApplyOrderIndependent pins the property the lock matrix rests on:
// folding two operations of one commuting class in either order yields
// identical bytes.
func TestApplyOrderIndependent(t *testing.T) {
	cases := []struct {
		op, cur, x, y string
	}{
		{OpInc, "10", "3", "-7"},
		{OpAppend, "m", "a", "z"},
		{OpAppend, "", "a", "a"},
		{OpSetInsert, "m", "a", "a"},
		{OpSetInsert, "a", "b", "a"},
	}
	for _, tc := range cases {
		xy := Apply(tc.op, Apply(tc.op, tc.cur, tc.x), tc.y)
		yx := Apply(tc.op, Apply(tc.op, tc.cur, tc.y), tc.x)
		if xy != yx {
			t.Errorf("%s from %q: x-then-y = %q but y-then-x = %q", tc.op, tc.cur, xy, yx)
		}
	}
}

// TestLoggedApplyWriteAhead pins the write-ahead rule for logical
// records: after LoggedApply, the last stable record carries the
// operation, argument, and both images, and db holds the folded value.
func TestLoggedApplyWriteAhead(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{"x": "5"}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedApply("t1", db, "x", OpInc, "3"))
	if db["x"] != "8" {
		t.Fatalf("db[x] = %q, want 8", db["x"])
	}
	recs, err := Records(st)
	mustOK(t, err)
	last := recs[len(recs)-1]
	if last.Kind != RecUpdate || last.Op != OpInc || last.Arg != "3" || last.Old != "5" || last.New != "8" {
		t.Fatalf("last record = %+v", last)
	}
}

// TestRecoverFoldsLogicalRecords pins redo-as-fold: with one of two
// concurrent increments aborted, recovery must produce the committed
// delta alone — replaying the committed record's absolute after-image
// would resurrect the aborted increment it was computed on top of.
func TestRecoverFoldsLogicalRecords(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.Begin("t2"))
	mustOK(t, l.LoggedApply("t1", db, "x", OpInc, "10"))
	mustOK(t, l.LoggedApply("t2", db, "x", OpInc, "100")) // logged New is 110
	mustOK(t, l.Abort("t1"))
	mustOK(t, l.Commit("t2"))
	rec, _, err := Recover(st)
	mustOK(t, err)
	if rec["x"] != "100" {
		t.Fatalf("recovered x = %q, want 100 (t2's delta alone)", rec["x"])
	}
}

// TestUndoIntoInvertsLogicalRecords pins undo-as-inverse on the live db:
// rolling back one of two interleaved increments preserves the
// survivor's delta, and a set-insert of an element that already existed
// undoes to a no-op.
func TestUndoIntoInvertsLogicalRecords(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{"s": "a"}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.Begin("t2"))
	mustOK(t, l.LoggedApply("t1", db, "x", OpInc, "10"))
	mustOK(t, l.LoggedApply("t2", db, "x", OpInc, "100"))
	mustOK(t, l.LoggedApply("t1", db, "s", OpSetInsert, "a")) // pre-existing element
	mustOK(t, l.LoggedApply("t1", db, "s", OpSetInsert, "b"))
	mustOK(t, l.Abort("t1"))
	mustOK(t, l.UndoInto("t1", db))
	if db["x"] != "100" {
		t.Fatalf("db[x] = %q after undo, want 100 (t2's delta preserved)", db["x"])
	}
	if db["s"] != "a" {
		t.Fatalf("db[s] = %q after undo, want a (pre-existing element kept)", db["s"])
	}
	mustOK(t, l.Commit("t2"))
	rec, _, err := Recover(st)
	mustOK(t, err)
	if rec["x"] != "100" {
		t.Fatalf("recovered x = %q, want 100", rec["x"])
	}
}

// TestAppendUndoRemovesOneOccurrence pins multiset undo: only the
// aborted transaction's own copy leaves the list.
func TestAppendUndoRemovesOneOccurrence(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.Begin("t2"))
	mustOK(t, l.LoggedApply("t1", db, "lst", OpAppend, "a"))
	mustOK(t, l.LoggedApply("t2", db, "lst", OpAppend, "a"))
	mustOK(t, l.Abort("t1"))
	mustOK(t, l.UndoInto("t1", db))
	if db["lst"] != "a" {
		t.Fatalf("db[lst] = %q after undo, want one surviving copy", db["lst"])
	}
}

// TestLogicalRecordsRoundTripJSON pins the wire encoding: Op/Arg are
// omitempty, so physical records serialize exactly as before the logical
// extension (golden logs and cross-version recovery stay byte-stable).
func TestLogicalRecordsRoundTripJSON(t *testing.T) {
	st := stable.NewStore()
	l := New(st)
	db := map[string]string{}
	mustOK(t, l.Begin("t1"))
	mustOK(t, l.LoggedUpdate("t1", db, "x", "1"))
	raw := st.ReadLog(0)
	if got := string(raw[len(raw)-1]); got != `{"k":2,"t":"t1","x":"x","n":"1"}` {
		t.Fatalf("physical record encoding changed: %s", got)
	}
}
