package wal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"speccat/internal/stable"
)

// TestWriteAheadProperty is a randomized property test of the write-ahead
// discipline: across seeded interleavings of Begin/LoggedUpdate/Commit/
// Abort over several concurrent transactions, (1) immediately after every
// LoggedUpdate the *stable* log's last record is the full undo/redo record
// of that update and the volatile map reflects the new value — i.e. the
// record cannot lag the apply; and (2) at random points, recovering from a
// snapshot of the stable log yields exactly the committed transactions'
// effects, regardless of what the volatile map says.
func TestWriteAheadProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := stable.NewStore()
			log := New(store)
			db := map[string]string{}

			// The recovery mirror replays the test's own record of updates
			// exactly as Recover does — committed transactions' updates in
			// log order — so any divergence is the implementation's.
			type update struct{ txn, key, value string }
			var allUpdates []update
			committed := map[string]bool{}
			active := map[string]bool{}
			nextTxn := 0

			checkRecovery := func() {
				t.Helper()
				_, logSnap := store.Snapshot()
				snapStore := stable.NewStore()
				for _, rec := range logSnap {
					snapStore.Append(rec)
				}
				got, _, err := Recover(snapStore)
				if err != nil {
					t.Fatal(err)
				}
				want := map[string]string{}
				for _, u := range allUpdates {
					if committed[u.txn] {
						want[u.key] = u.value
					}
				}
				if len(got) != len(want) {
					t.Fatalf("recovered %d keys, want %d (committed effects exactly)", len(got), len(want))
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("recovered %s=%q, want %q", k, got[k], v)
					}
				}
			}

			for step := 0; step < 300; step++ {
				var names []string
				for n := range active {
					names = append(names, n)
				}
				sort.Strings(names)
				switch op := rng.Intn(10); {
				case op < 3 || len(names) == 0:
					// Begin a new transaction.
					name := fmt.Sprintf("t%d", nextTxn)
					nextTxn++
					if err := log.Begin(name); err != nil {
						t.Fatal(err)
					}
					active[name] = true
				case op < 8:
					// LoggedUpdate on a random active transaction.
					name := names[rng.Intn(len(names))]
					key := fmt.Sprintf("k%d", rng.Intn(5))
					value := fmt.Sprintf("%s.v%d", name, step)
					old := db[key]
					if err := log.LoggedUpdate(name, db, key, value); err != nil {
						t.Fatal(err)
					}
					// The write-ahead property proper: the stable log's last
					// record already carries the full undo/redo information,
					// and the volatile map reflects the update.
					raw := store.ReadLog(store.LogLen() - 1)
					if len(raw) != 1 {
						t.Fatal("no last log record after LoggedUpdate")
					}
					var rec Record
					if err := json.Unmarshal(raw[0], &rec); err != nil {
						t.Fatal(err)
					}
					want := Record{Kind: RecUpdate, Txn: name, Key: key, Old: old, New: value}
					if rec != want {
						t.Fatalf("last stable record = %+v, want %+v", rec, want)
					}
					if db[key] != value {
						t.Fatalf("volatile db[%s] = %q, want %q", key, db[key], value)
					}
					allUpdates = append(allUpdates, update{name, key, value})
				case op < 9:
					// Commit a random active transaction.
					name := names[rng.Intn(len(names))]
					if err := log.Commit(name); err != nil {
						t.Fatal(err)
					}
					delete(active, name)
					committed[name] = true
				default:
					// Abort a random active transaction and undo its effects.
					name := names[rng.Intn(len(names))]
					if err := log.Abort(name); err != nil {
						t.Fatal(err)
					}
					if err := log.UndoInto(name, db); err != nil {
						t.Fatal(err)
					}
					delete(active, name)
				}
				if rng.Intn(20) == 0 {
					checkRecovery()
				}
			}
			checkRecovery()
		})
	}
}
