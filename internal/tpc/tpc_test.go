package tpc

import (
	"fmt"
	"math/rand"
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

func TestAllYesCommits(t *testing.T) {
	g := mustGroup(t, 1, 3, Config{})
	if err := g.Run("t1"); err != nil {
		t.Fatal(err)
	}
	o := g.Outcome("t1")
	if o.Coordinator != DecisionCommit {
		t.Fatalf("coordinator = %s", o.Coordinator)
	}
	for id, d := range o.Cohorts {
		if d != DecisionCommit {
			t.Fatalf("cohort %d = %s", id, d)
		}
	}
}

func TestAnyNoAborts(t *testing.T) {
	g := mustGroup(t, 2, 3, Config{})
	g.Cohorts[3].Vote = func(string) bool { return false }
	if err := g.Run("t1"); err != nil {
		t.Fatal(err)
	}
	o := g.Outcome("t1")
	if o.Coordinator != DecisionAbort {
		t.Fatalf("coordinator = %s", o.Coordinator)
	}
	for id, d := range o.Cohorts {
		if d != DecisionAbort {
			t.Fatalf("cohort %d = %s", id, d)
		}
	}
}

func TestCohortCrashBeforeVoteAborts(t *testing.T) {
	g := mustGroup(t, 3, 3, Config{})
	if err := g.Net.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := g.Run("t1"); err != nil {
		t.Fatal(err)
	}
	o := g.Outcome("t1")
	if o.Coordinator != DecisionAbort {
		t.Fatalf("coordinator = %s, want abort on vote timeout", o.Coordinator)
	}
	if !o.Atomic() {
		t.Fatalf("atomicity violated: %+v", o)
	}
	for _, id := range []simnet.NodeID{2, 4} {
		if o.Cohorts[id] != DecisionAbort {
			t.Fatalf("operational cohort %d = %s", id, o.Cohorts[id])
		}
	}
}

func TestCoordinatorCrashInW1CohortsTerminate(t *testing.T) {
	// Coordinator crashes right after the commit requests go out: cohorts
	// time out in w2 and the termination protocol aborts everywhere —
	// non-blocking.
	g := mustGroup(t, 4, 3, Config{})
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().RunUntil(1)
	if err := g.Net.Crash(g.CoordID); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().Run(0)
	for id, h := range g.Cohorts {
		if h.Decision("t1") != DecisionAbort {
			t.Fatalf("cohort %d = %s, want abort", id, h.Decision("t1"))
		}
	}
	// Coordinator recovers later and must agree (failure transition w1→a).
	if err := g.Net.Recover(g.CoordID); err != nil {
		t.Fatal(err)
	}
	got := g.Coordinator.RecoverAll()
	if got["t1"] != DecisionAbort {
		t.Fatalf("recovered coordinator decided %s", got["t1"])
	}
}

func TestCoordinatorCrashAfterPrepareCohortsCommit(t *testing.T) {
	// Crash the coordinator after every cohort acked (it is in p1 about
	// to commit): cohorts are all in p2; termination must COMMIT, and the
	// recovering coordinator (failure transition p1→commit) agrees.
	g := mustGroup(t, 5, 3, Config{})
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	// Let phase 1 and the prepare fan-out complete; crash before the
	// commit fan-out by intercepting the moment the coordinator state
	// becomes prepared and acks are about to arrive.
	sched := g.Net.Scheduler()
	crashed := false
	for i := 0; i < 100000 && !crashed; i++ {
		if !sched.Step() {
			break
		}
		if g.Coordinator.StateOf("t1") == StatePrepared {
			allPrepared := true
			for _, h := range g.Cohorts {
				if h.StateOf("t1") != StatePrepared {
					allPrepared = false
				}
			}
			if allPrepared {
				if err := g.Net.Crash(g.CoordID); err != nil {
					t.Fatal(err)
				}
				crashed = true
			}
		}
	}
	if !crashed {
		t.Fatal("never reached the all-prepared point")
	}
	sched.Run(0)
	for id, h := range g.Cohorts {
		if h.Decision("t1") != DecisionCommit {
			t.Fatalf("cohort %d = %s, want commit", id, h.Decision("t1"))
		}
	}
	if err := g.Net.Recover(g.CoordID); err != nil {
		t.Fatal(err)
	}
	got := g.Coordinator.RecoverAll()
	if got["t1"] != DecisionCommit {
		t.Fatalf("recovered coordinator decided %s, want commit", got["t1"])
	}
}

func TestCohortCrashAfterVoteThenRecovers(t *testing.T) {
	// A cohort crashes in w2 (after voting yes, before prepare arrives);
	// the coordinator times out in p1 and aborts; the crashed cohort's
	// failure transition from w2 also aborts on recovery: consistent.
	g := mustGroup(t, 6, 3, Config{})
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	sched := g.Net.Scheduler()
	crashed := false
	for i := 0; i < 100000 && !crashed; i++ {
		if !sched.Step() {
			break
		}
		if g.Cohorts[3].StateOf("t1") == StateWait {
			if err := g.Net.Crash(3); err != nil {
				t.Fatal(err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("cohort never reached w2")
	}
	sched.Run(0)
	o := g.Outcome("t1")
	if !o.Atomic() {
		t.Fatalf("atomicity violated: %+v", o)
	}
	if err := g.Net.Recover(3); err != nil {
		t.Fatal(err)
	}
	rec := g.Cohorts[3].RecoverAll()
	if rec["t1"] == DecisionNone {
		t.Fatal("recovered cohort undecided")
	}
	// All decided outcomes across the group must agree.
	o = g.Outcome("t1")
	if !o.Atomic() {
		t.Fatalf("post-recovery atomicity violated: %+v", o)
	}
}

func TestNonBlockingSingleFailureAlwaysDecides(t *testing.T) {
	// Sweep the crash time of the coordinator across the whole protocol
	// run; in every case all operational sites must decide (non-blocking)
	// and agree (atomicity). This is the heart of E7's dynamic check.
	for crashAt := sim.Time(0); crashAt <= 120; crashAt += 3 {
		g := mustGroup(t, 7, 3, Config{})
		if err := g.Coordinator.Begin("t1"); err != nil {
			t.Fatal(err)
		}
		g.Net.Scheduler().RunUntil(crashAt)
		_ = g.Net.Crash(g.CoordID)
		g.Net.Scheduler().Run(0)
		if !g.AllDecided("t1", map[simnet.NodeID]bool{g.CoordID: true}) {
			t.Fatalf("crashAt=%d: some operational cohort is blocked", crashAt)
		}
		o := g.Outcome("t1")
		if !o.Atomic() {
			t.Fatalf("crashAt=%d: atomicity violated: %+v", crashAt, o)
		}
		// The recovered coordinator must agree with the cohorts.
		_ = g.Net.Recover(g.CoordID)
		g.Coordinator.RecoverAll()
		g.Net.Scheduler().Run(0)
		o = g.Outcome("t1")
		if !o.Atomic() {
			t.Fatalf("crashAt=%d: post-recovery atomicity violated: %+v", crashAt, o)
		}
	}
}

func TestTwoPCBlocksOnCoordinatorCrash(t *testing.T) {
	// The comparison experiment: under 2PC, cohorts that voted yes are
	// stuck once the coordinator dies — they never decide until it
	// recovers.
	g := mustGroup(t, 8, 3, Config{Protocol: TwoPhase})
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	sched := g.Net.Scheduler()
	// Crash the coordinator once every cohort has voted (cohorts in w2).
	crashed := false
	for i := 0; i < 100000 && !crashed; i++ {
		if !sched.Step() {
			break
		}
		allWait := true
		for _, h := range g.Cohorts {
			if h.StateOf("t1") != StateWait {
				allWait = false
			}
		}
		if allWait {
			if err := g.Net.Crash(g.CoordID); err != nil {
				t.Fatal(err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("never reached all-voted point")
	}
	sched.RunUntil(sched.Now() + 500)
	blockedCount := 0
	for id, h := range g.Cohorts {
		if h.Decision("t1") != DecisionNone {
			t.Fatalf("2PC cohort %d decided %s without coordinator", id, h.Decision("t1"))
		}
		if b, _ := h.Blocked("t1"); b {
			blockedCount++
		}
	}
	if blockedCount == 0 {
		t.Fatal("no cohort reported blocking")
	}
	// Coordinator recovery unblocks everyone with a consistent outcome.
	if err := g.Net.Recover(g.CoordID); err != nil {
		t.Fatal(err)
	}
	g.Coordinator.RecoverAll()
	sched.Run(0)
	o := g.Outcome("t1")
	if !o.Atomic() {
		t.Fatalf("2PC post-recovery atomicity violated: %+v", o)
	}
	for id, h := range g.Cohorts {
		if h.Decision("t1") == DecisionNone {
			t.Fatalf("cohort %d still undecided after recovery", id)
		}
	}
}

func TestThreePCNeverBlocksWhereTwoPCBlocks(t *testing.T) {
	// Same crash point, both protocols: 3PC decides, 2PC does not.
	run := func(p Protocol) (decided bool) {
		g := mustGroup(t, 9, 3, Config{Protocol: p})
		if err := g.Coordinator.Begin("t1"); err != nil {
			t.Fatal(err)
		}
		sched := g.Net.Scheduler()
		for i := 0; i < 100000; i++ {
			if !sched.Step() {
				break
			}
			allWait := true
			for _, h := range g.Cohorts {
				if h.StateOf("t1") != StateWait {
					allWait = false
				}
			}
			if allWait {
				_ = g.Net.Crash(g.CoordID)
				break
			}
		}
		sched.RunUntil(sched.Now() + 1000)
		return g.AllDecided("t1", map[simnet.NodeID]bool{g.CoordID: true})
	}
	if !run(ThreePhase) {
		t.Fatal("3PC blocked")
	}
	if run(TwoPhase) {
		t.Fatal("2PC unexpectedly decided")
	}
}

func TestMultipleConcurrentTransactions(t *testing.T) {
	g := mustGroup(t, 10, 3, Config{})
	g.Cohorts[2].Vote = func(txn string) bool { return txn != "tB" }
	for _, txn := range []string{"tA", "tB", "tC"} {
		if err := g.Coordinator.Begin(txn); err != nil {
			t.Fatal(err)
		}
	}
	g.Net.Scheduler().Run(0)
	if d := g.Coordinator.Decision("tA"); d != DecisionCommit {
		t.Fatalf("tA = %s", d)
	}
	if d := g.Coordinator.Decision("tB"); d != DecisionAbort {
		t.Fatalf("tB = %s", d)
	}
	if d := g.Coordinator.Decision("tC"); d != DecisionCommit {
		t.Fatalf("tC = %s", d)
	}
	for _, txn := range []string{"tA", "tB", "tC"} {
		if o := g.Outcome(txn); !o.Atomic() {
			t.Fatalf("%s not atomic: %+v", txn, o)
		}
	}
}

// TestRandomCrashScheduleProperty sweeps random single-site crash plans:
// atomicity must hold in every run, and with at most one failure every
// operational site must decide.
func TestRandomCrashScheduleProperty(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		g := mustGroup(t, seed, n, Config{})
		victimIdx := r.Intn(n + 1)
		victim := g.CoordID
		if victimIdx > 0 {
			victim = g.CohortIDs[victimIdx-1]
		}
		crashAt := sim.Time(r.Intn(150))
		if err := g.Coordinator.Begin("t"); err != nil {
			t.Fatal(err)
		}
		g.Net.Scheduler().At(crashAt, func() { _ = g.Net.Crash(victim) })
		g.Net.Scheduler().Run(0)

		o := g.Outcome("t")
		if !o.Atomic() {
			t.Fatalf("seed %d: atomicity violated (victim %d at %d): %+v", seed, victim, crashAt, o)
		}
		if !g.AllDecided("t", map[simnet.NodeID]bool{victim: true}) {
			t.Fatalf("seed %d: blocking with single failure (victim %d at %d)", seed, victim, crashAt)
		}
		// Recover the victim; its independent-recovery decision must not
		// break atomicity.
		_ = g.Net.Recover(victim)
		if victim == g.CoordID {
			g.Coordinator.RecoverAll()
		} else {
			g.Cohorts[victim].RecoverAll()
		}
		g.Net.Scheduler().Run(0)
		o = g.Outcome("t")
		if !o.Atomic() {
			t.Fatalf("seed %d: post-recovery atomicity violated: %+v", seed, o)
		}
	}
}

func TestStateStringsAndHelpers(t *testing.T) {
	if StateInitial.String() != "q" || StatePrepared.String() != "p" {
		t.Fatal("state strings wrong")
	}
	if !StatePrepared.Committable() || StateWait.Committable() {
		t.Fatal("committable classification wrong")
	}
	if DecisionCommit.String() != "commit" || DecisionNone.String() != "none" {
		t.Fatal("decision strings wrong")
	}
	if ThreePhase.String() != "3PC" || TwoPhase.String() != "2PC" {
		t.Fatal("protocol strings wrong")
	}
	if txn, ok := txnOfStateKey("tpc/t1/state"); !ok || txn != "t1" {
		t.Fatal("txnOfStateKey failed")
	}
	if _, ok := txnOfStateKey("other/key"); ok {
		t.Fatal("txnOfStateKey accepted junk")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Coordinator: DecisionCommit, Cohorts: map[simnet.NodeID]Decision{2: DecisionCommit}}
	if !o.Atomic() {
		t.Fatal("commit-only outcome must be atomic")
	}
	o.Cohorts[3] = DecisionAbort
	if o.Atomic() {
		t.Fatal("mixed outcome must not be atomic")
	}
	_ = fmt.Sprintf("%+v", o)
}
