package tpc

import (
	"errors"
	"testing"

	"speccat/internal/simnet"
)

// TestCoordinatorSendErrorsCounted pins the send-error accounting on the
// coordinator: when the coordinator crashes at the first send of its
// commit fan-out, every send of the fan-out fails with ErrNodeDown, each
// failure increments SendErrors, and the OnSendError hook observes each
// one with its kind and error.
func TestCoordinatorSendErrorsCounted(t *testing.T) {
	g, err := NewGroup(1, 3, Config{Protocol: TwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	var hookErrs []error
	g.Coordinator.OnSendError = func(to simnet.NodeID, kind string, err error) {
		if kind != KindCommit {
			t.Errorf("OnSendError kind = %s, want %s", kind, KindCommit)
		}
		hookErrs = append(hookErrs, err)
	}
	crashed := false
	g.Net.OnSend = func(seq uint64, m simnet.Message) simnet.SendFault {
		if !crashed && m.Kind == KindCommit {
			crashed = true
			return simnet.SendFault{CrashSender: true}
		}
		return simnet.SendFault{}
	}
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().RunUntil(5000)

	if got := g.Coordinator.SendErrors(); got != len(g.CohortIDs) {
		t.Errorf("SendErrors = %d, want %d (whole commit fan-out fails after the crash)", got, len(g.CohortIDs))
	}
	if len(hookErrs) != g.Coordinator.SendErrors() {
		t.Errorf("hook observed %d errors, counter says %d", len(hookErrs), g.Coordinator.SendErrors())
	}
	for _, err := range hookErrs {
		if !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("hook error = %v, want ErrNodeDown", err)
		}
	}
}

// TestCohortSendErrorsCounted pins the same accounting on a cohort: the
// coordinator crashes at its prepare fan-out, the cohorts run the
// termination protocol, and the first cohort to fan out StateReq queries
// is crashed at its first send — its failed queries land in SendErrors
// and the hook.
func TestCohortSendErrorsCounted(t *testing.T) {
	g, err := NewGroup(1, 3, Config{Protocol: ThreePhase})
	if err != nil {
		t.Fatal(err)
	}
	hookErrs := map[simnet.NodeID][]error{}
	for id, h := range g.Cohorts {
		id, h := id, h
		h.OnSendError = func(to simnet.NodeID, kind string, err error) {
			hookErrs[id] = append(hookErrs[id], err)
		}
	}
	var sender simnet.NodeID
	prepCrashed, stateCrashed := false, false
	g.Net.OnSend = func(seq uint64, m simnet.Message) simnet.SendFault {
		if !prepCrashed && m.Kind == KindPrepare {
			prepCrashed = true
			return simnet.SendFault{CrashSender: true}
		}
		if !stateCrashed && m.Kind == KindStateReq {
			stateCrashed = true
			sender = m.From
			return simnet.SendFault{CrashSender: true}
		}
		return simnet.SendFault{}
	}
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().RunUntil(5000)

	if !stateCrashed {
		t.Fatal("no StateReq fan-out observed; termination protocol never ran")
	}
	h := g.Cohorts[sender]
	if h == nil {
		t.Fatalf("StateReq sender %d is not a cohort", sender)
	}
	if h.SendErrors() == 0 {
		t.Errorf("cohort %d SendErrors = 0, want its failed StateReq sends counted", sender)
	}
	if len(hookErrs[sender]) != h.SendErrors() {
		t.Errorf("hook observed %d errors, counter says %d", len(hookErrs[sender]), h.SendErrors())
	}
	for _, err := range hookErrs[sender] {
		if !errors.Is(err, simnet.ErrNodeDown) {
			t.Errorf("hook error = %v, want ErrNodeDown", err)
		}
	}
}
