package tpc

import (
	"errors"
	"fmt"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

// Group is a wired commit-protocol deployment: one coordinator site and a
// set of cohort sites on a shared simulated network.
type Group struct {
	Net         *simnet.Network
	Coordinator *Coordinator
	Cohorts     map[simnet.NodeID]*Cohort
	CoordID     simnet.NodeID
	CohortIDs   []simnet.NodeID
}

// ErrWire is wrapped when a group's message handlers cannot be installed.
var ErrWire = errors.New("tpc: wire handler")

// NewGroup builds a network with one coordinator and n cohorts and wires
// all message handlers.
func NewGroup(seed int64, n int, cfg Config) (*Group, error) {
	sched := sim.NewScheduler(seed)
	return NewGroupOn(simnet.New(sched, simnet.DefaultOptions()), n, cfg)
}

// NewGroupOn wires a commit group onto an existing (empty) network,
// letting callers customize network options for failure injection.
func NewGroupOn(net *simnet.Network, n int, cfg Config) (*Group, error) {
	coordID := simnet.NodeID(1)
	net.AddNode(coordID, nil)
	var cohortIDs []simnet.NodeID
	for i := 2; i <= n+1; i++ {
		id := simnet.NodeID(i)
		cohortIDs = append(cohortIDs, id)
		net.AddNode(id, nil)
	}
	g := &Group{Net: net, CoordID: coordID, CohortIDs: cohortIDs, Cohorts: map[simnet.NodeID]*Cohort{}}
	g.Coordinator = NewCoordinator(net, coordID, cohortIDs, cfg)
	if err := net.SetHandler(coordID, func(m simnet.Message) { g.Coordinator.HandleMessage(m) }); err != nil {
		return nil, fmt.Errorf("%w: coordinator %d: %w", ErrWire, coordID, err)
	}
	for _, id := range cohortIDs {
		h := NewCohort(net, id, coordID, cohortIDs, cfg)
		g.Cohorts[id] = h
		if err := net.SetHandler(id, func(m simnet.Message) { h.HandleMessage(m) }); err != nil {
			return nil, fmt.Errorf("%w: cohort %d: %w", ErrWire, id, err)
		}
	}
	return g, nil
}

// Run starts txn and drives the simulation to quiescence.
func (g *Group) Run(txn string) error {
	if err := g.Coordinator.Begin(txn); err != nil {
		return err
	}
	g.Net.Scheduler().Run(0)
	return nil
}

// Outcome summarizes one transaction across the group.
type Outcome struct {
	Coordinator Decision
	Cohorts     map[simnet.NodeID]Decision
}

// Outcome collects the group's decisions for txn.
func (g *Group) Outcome(txn string) Outcome {
	o := Outcome{Coordinator: g.Coordinator.Decision(txn), Cohorts: map[simnet.NodeID]Decision{}}
	for id, h := range g.Cohorts {
		o.Cohorts[id] = h.Decision(txn)
	}
	return o
}

// Atomic reports whether the outcome satisfies the atomic-commitment
// safety property over *decided* sites: no site committed while another
// aborted. Undecided (crashed/blocked) sites do not violate atomicity.
func (o Outcome) Atomic() bool {
	commit, abort := o.Coordinator == DecisionCommit, o.Coordinator == DecisionAbort
	for _, d := range o.Cohorts {
		switch d {
		case DecisionCommit:
			commit = true
		case DecisionAbort:
			abort = true
		}
	}
	return !(commit && abort)
}

// AllDecided reports whether every operational site reached a decision
// (the liveness half of non-blocking; callers exclude crashed sites).
func (g *Group) AllDecided(txn string, exclude map[simnet.NodeID]bool) bool {
	if !exclude[g.CoordID] && g.Net.Up(g.CoordID) && g.Coordinator.Decision(txn) == DecisionNone {
		return false
	}
	for id, h := range g.Cohorts {
		if exclude[id] || !g.Net.Up(id) {
			continue
		}
		if h.Decision(txn) == DecisionNone {
			return false
		}
	}
	return true
}
