package tpc

// The Group harness is the deterministic-simulator face of a commit
// deployment: it owns the concrete simnet.Network so tests, explorers
// and CLIs can crash sites, inject faults and drive the scheduler. The
// engines it wires are runtime-agnostic (see Deploy); only this file
// touches the simulator, under reasoned rt-boundary suppressions.

import (
	"speccat/internal/sim"    //lint:allow rt-boundary sim-harness constructor: the engines speak rt.Transport, this file owns the simulator wiring
	"speccat/internal/simnet" //lint:allow rt-boundary sim-harness constructor: the engines speak rt.Transport, this file owns the simulator wiring
)

// Group is a wired commit-protocol deployment on the deterministic
// simulator: one coordinator site and a set of cohort sites on a shared
// simulated network.
type Group struct {
	Net         *simnet.Network
	Coordinator *Coordinator
	Cohorts     map[simnet.NodeID]*Cohort
	CoordID     simnet.NodeID
	CohortIDs   []simnet.NodeID
}

// NewGroup builds a network with one coordinator and n cohorts and wires
// all message handlers.
func NewGroup(seed int64, n int, cfg Config) (*Group, error) {
	sched := sim.NewScheduler(seed)
	return NewGroupOn(simnet.New(sched, simnet.DefaultOptions()), n, cfg)
}

// NewGroupOn wires a commit group onto an existing (empty) network,
// letting callers customize network options for failure injection.
func NewGroupOn(net *simnet.Network, n int, cfg Config) (*Group, error) {
	d, err := Deploy(net, n, cfg)
	if err != nil {
		return nil, err
	}
	return &Group{
		Net: net, Coordinator: d.Coordinator, Cohorts: d.Cohorts,
		CoordID: d.CoordID, CohortIDs: d.CohortIDs,
	}, nil
}

// Run starts txn and drives the simulation to quiescence.
func (g *Group) Run(txn string) error {
	if err := g.Coordinator.Begin(txn); err != nil {
		return err
	}
	g.Net.Scheduler().Run(0)
	return nil
}

// Outcome summarizes one transaction across the group.
type Outcome struct {
	Coordinator Decision
	Cohorts     map[simnet.NodeID]Decision
}

// Outcome collects the group's decisions for txn.
func (g *Group) Outcome(txn string) Outcome {
	o := Outcome{Coordinator: g.Coordinator.Decision(txn), Cohorts: map[simnet.NodeID]Decision{}}
	for id, h := range g.Cohorts {
		o.Cohorts[id] = h.Decision(txn)
	}
	return o
}

// Atomic reports whether the outcome satisfies the atomic-commitment
// safety property over *decided* sites: no site committed while another
// aborted. Undecided (crashed/blocked) sites do not violate atomicity.
func (o Outcome) Atomic() bool {
	commit, abort := o.Coordinator == DecisionCommit, o.Coordinator == DecisionAbort
	for _, d := range o.Cohorts {
		switch d {
		case DecisionCommit:
			commit = true
		case DecisionAbort:
			abort = true
		}
	}
	return !(commit && abort)
}

// AllDecided reports whether every operational site reached a decision
// (the liveness half of non-blocking; callers exclude crashed sites).
func (g *Group) AllDecided(txn string, exclude map[simnet.NodeID]bool) bool {
	if !exclude[g.CoordID] && g.Net.Up(g.CoordID) && g.Coordinator.Decision(txn) == DecisionNone {
		return false
	}
	for id, h := range g.Cohorts {
		if exclude[id] || !g.Net.Up(id) {
			continue
		}
		if h.Decision(txn) == DecisionNone {
			return false
		}
	}
	return true
}
