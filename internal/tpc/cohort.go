package tpc

import (
	"sort"

	"speccat/internal/rt"
)

// cohortTxn is the cohort's per-transaction state.
type cohortTxn struct {
	state State
	timer rt.Timer
	// blockedSince is set when a 2PC cohort becomes uncertain with a dead
	// coordinator — the blocking window the paper's intro describes.
	blockedSince rt.Time
	blocked      bool
	// termination-protocol bookkeeping (when this cohort is the backup).
	gathering  bool
	stateResps map[rt.NodeID]State
	// peers is this transaction's scoped participant set, learned from
	// the commit request; nil means the cohort's full static peer list.
	// Termination (backup election, state gathering, dissemination) runs
	// over exactly this set, so a scoped transaction never waits on
	// sites it did not touch.
	peers []rt.NodeID
}

// Cohort is the paper's participant process. Vote decides phase-1 votes;
// by default every transaction is voteable (yes).
type Cohort struct {
	net   rt.Transport
	id    rt.NodeID
	coord rt.NodeID
	peers []rt.NodeID // all cohorts, including self
	cfg   Config
	txns  map[string]*cohortTxn
	// Vote returns the phase-1 vote for a transaction (nil: always yes).
	Vote func(txn string) bool
	// OnDecide fires with the final local outcome.
	OnDecide func(txn string, d Decision)
	// OnBlocked fires when a 2PC cohort becomes blocked (uncertain, dead
	// coordinator). Used by experiment E8.
	OnBlocked func(txn string)
	// Trace, when non-nil, observes every FSM transition (Fig. 3.2).
	Trace TraceFunc
	// OnMalformed, when non-nil, observes protocol messages whose payload
	// failed to decode. They are counted either way; see Malformed.
	OnMalformed func(m rt.Message)
	// OnSendError, when non-nil, observes every protocol send that the
	// network refused (dead peer, crashed self). Failed sends are counted
	// either way; see SendErrors.
	OnSendError func(to rt.NodeID, kind string, err error)
	decisions   map[string]Decision
	malformed   int
	sendErrors  int
}

// NewCohort creates a cohort on site id for the given coordinator; peers
// lists all cohort sites (for the termination protocol).
func NewCohort(net rt.Transport, id, coord rt.NodeID, peers []rt.NodeID, cfg Config) *Cohort {
	if cfg.Protocol == 0 {
		cfg.Protocol = ThreePhase
	}
	if cfg.PhaseTimeout == 0 {
		cfg.PhaseTimeout = 4 * net.Delta()
	}
	return &Cohort{
		net: net, id: id, coord: coord, peers: append([]rt.NodeID{}, peers...),
		cfg: cfg, txns: map[string]*cohortTxn{}, decisions: map[string]Decision{},
	}
}

func (h *Cohort) txn(name string) *cohortTxn {
	t, ok := h.txns[name]
	if !ok {
		t = &cohortTxn{state: StateInitial, stateResps: map[rt.NodeID]State{}}
		h.txns[name] = t
	}
	return t
}

// HandleMessage consumes cohort-side protocol traffic.
//
//fsm:handler tpc cohort
func (h *Cohort) HandleMessage(m rt.Message) bool {
	switch m.Kind {
	case KindCommitReq:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return h.badPayload(m)
		}
		h.onCommitReq(p.Txn, p.Participants)
		return true
	case KindPrepare:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return h.badPayload(m)
		}
		h.onPrepare(p.Txn, m.From)
		return true
	case KindCommit:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return h.badPayload(m)
		}
		h.decide(p.Txn, DecisionCommit, CauseMessage)
		return true
	case KindAbort:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return h.badPayload(m)
		}
		h.decide(p.Txn, DecisionAbort, CauseMessage)
		return true
	case KindStateReq:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return h.badPayload(m)
		}
		t := h.txn(p.Txn)
		// A decided cohort answers a state request with the decision
		// itself, so a requester that missed the original dissemination
		// (message loss) still converges. The decided guards below are why
		// the durability checker stands down: a cohort only ever enters
		// StateCommitted/StateAborted through decide(), which persists the
		// outcome first.
		switch t.state {
		case StateCommitted:
			h.send(m.From, KindCommit, txnMsg{Txn: p.Txn}) //dur:ignore StateCommitted is only entered via decide(), which persisted the decision
		case StateAborted:
			h.send(m.From, KindAbort, txnMsg{Txn: p.Txn}) //dur:ignore StateAborted is only entered via decide(), which persisted the decision
		default:
			h.send(m.From, KindStateResp, stateResp{Txn: p.Txn, State: t.state})
		}
		return true
	case KindStateResp:
		p, ok := m.Payload.(stateResp)
		if !ok {
			return h.badPayload(m)
		}
		h.onStateResp(p.Txn, m.From, p.State)
		return true
	default:
		return false
	}
}

// badPayload accounts for a cohort-consumed kind whose payload failed to
// decode, then declines the message.
func (h *Cohort) badPayload(m rt.Message) bool {
	h.malformed++
	if h.OnMalformed != nil {
		h.OnMalformed(m)
	}
	return false
}

// Malformed reports how many protocol messages this cohort rejected
// because their payload did not decode.
func (h *Cohort) Malformed() int { return h.malformed }

// SendErrors reports how many protocol sends the network refused.
func (h *Cohort) SendErrors() int { return h.sendErrors }

// sync forces the site's pending stable writes to disk in one batch — a
// no-op outside group-commit mode, where every persist is already durable
// on return. See the call sites for the divergence argument placing each.
func (h *Cohort) sync() {
	st, err := h.net.Store(h.id)
	if err != nil {
		return
	}
	_ = st.Sync()
}

// syncThen runs fn once the site's pending stable writes are durable: on
// the caller's stack under the simulator (and outside group-commit mode,
// where persists are already durable), or re-enqueued on this node's
// event loop by the store's pipelined group commit on the live serving
// path — the loop keeps absorbing concurrent transactions while the
// batched fsync settles, instead of stalling behind it.
func (h *Cohort) syncThen(fn func()) {
	st, err := h.net.Store(h.id)
	if err != nil {
		fn()
		return
	}
	st.SyncThen(fn)
}

// send transmits one protocol message, routing refusals through the
// send-error accounting (SendErrors, OnSendError) instead of dropping
// them silently: the protocol cannot act on a failed send (timeouts and
// the termination protocol own that recovery), but observers can.
func (h *Cohort) send(to rt.NodeID, kind string, payload any) {
	if err := h.net.Send(h.id, to, kind, payload); err != nil {
		h.sendErrors++
		if h.OnSendError != nil {
			h.OnSendError(to, kind, err)
		}
	}
}

// onCommitReq is the q2 transition: vote and move to w2 (yes) or a2 (no).
// A scoped commit request names the participant set the transaction's
// termination protocol runs over.
func (h *Cohort) onCommitReq(txn string, participants []rt.NodeID) {
	t := h.txn(txn)
	if t.state != StateInitial {
		return
	}
	if len(participants) > 0 {
		t.peers = append([]rt.NodeID{}, participants...)
	}
	yes := h.Vote == nil || h.Vote(txn)
	if !yes {
		h.send(h.coord, KindVoteNo, txnMsg{Txn: txn})
		h.decide(txn, DecisionAbort, CauseMessage)
		return
	}
	h.emit(txn, t.state, StateWait, CauseMessage)
	t.state = StateWait
	h.persist(txn, StateWait)
	// The w2 record — and with it every WAL update of the local branch —
	// MUST be on disk before the yes-vote leaves. A voter that crashes
	// with an unsynced w recovers to q knowing nothing: it answers the
	// termination protocol with q instead of the recovered-abort a durable
	// w produces, and a peer recovering independently from its own synced
	// p commits — against a branch this site no longer has. One batched
	// fsync here covers the vote, the branch's WAL records, and every
	// concurrent committer in the window; the vote (and the phase timer it
	// starts) waits on the batch, the event loop does not.
	h.syncThen(func() {
		h.send(h.coord, KindVoteYes, txnMsg{Txn: txn})
		// Timeout waiting for prepare: coordinator failed in w1.
		t.timer = h.net.After(h.id, h.cfg.PhaseTimeout, func() {
			if t.state == StateWait {
				h.onCoordinatorSilent(txn, t)
			}
		})
	})
}

// onPrepare is the w2 transition: acknowledge and move to p2.
func (h *Cohort) onPrepare(txn string, from rt.NodeID) {
	t := h.txn(txn)
	if t.state != StateWait {
		return
	}
	if t.timer != nil {
		t.timer.Cancel()
	}
	h.emit(txn, t.state, StatePrepared, CauseMessage)
	t.state = StatePrepared
	h.persist(txn, StatePrepared)
	// The p2 record must be durable before the ack: an acked-but-unsynced
	// p crashes back to w, which recovers to abort — while the
	// coordinator, holding every ack, commits.
	h.syncThen(func() {
		h.send(from, KindAck, txnMsg{Txn: txn})
		// Timeout waiting for commit: coordinator failed in p1.
		t.timer = h.net.After(h.id, h.cfg.PhaseTimeout, func() {
			if t.state == StatePrepared {
				h.onCoordinatorSilent(txn, t)
			}
		})
	})
}

// onCoordinatorSilent handles phase timeouts: either the naive Fig. 3.2
// transitions, 2PC blocking, or the 3PC termination protocol.
func (h *Cohort) onCoordinatorSilent(txn string, t *cohortTxn) {
	switch {
	case h.cfg.Protocol == TwoPhase:
		if t.state == StateWait {
			// 2PC uncertainty window: the cohort voted yes and cannot
			// decide unilaterally — it blocks holding its locks.
			if !t.blocked {
				t.blocked = true
				t.blockedSince = h.net.Now()
				if h.OnBlocked != nil {
					h.OnBlocked(txn)
				}
			}
			// Keep waiting for the coordinator to come back.
			t.timer = h.net.After(h.id, h.cfg.PhaseTimeout, func() {
				if t.state == StateWait {
					h.onCoordinatorSilent(txn, t)
				}
			})
		}
	case h.cfg.NaiveTimeouts:
		// Bare Fig. 3.2 timeout transitions (unsafe across a mid-prepare
		// coordinator crash; kept for the E7 ablation).
		if t.state == StateWait {
			h.decide(txn, DecisionAbort, CauseTimeout)
		} else if t.state == StatePrepared {
			h.decide(txn, DecisionCommit, CauseTimeout)
		}
	default:
		h.startTermination(txn, t)
	}
}

// startTermination runs the termination protocol: the lowest-numbered
// operational cohort acts as backup coordinator (the voting protocol in
// miniature — every cohort computes the same backup deterministically),
// gathers the local states of operational cohorts, applies the
// non-blocking rules, and disseminates the decision.
func (h *Cohort) startTermination(txn string, t *cohortTxn) {
	backup := h.backup(t)
	if backup != h.id {
		// Ask the backup directly (it replies with its state, or with the
		// decision if it already has one), then retry if still undecided —
		// this makes termination converge under message loss too.
		h.send(backup, KindStateReq, txnMsg{Txn: txn})
		t.timer = h.net.After(h.id, 2*h.cfg.PhaseTimeout, func() {
			if t.state == StateWait || t.state == StatePrepared {
				h.startTermination(txn, t)
			}
		})
		return
	}
	if t.gathering {
		return
	}
	t.gathering = true
	t.stateResps = map[rt.NodeID]State{h.id: t.state}
	for _, p := range h.peersFor(t) {
		if p == h.id {
			continue
		}
		h.send(p, KindStateReq, txnMsg{Txn: txn})
	}
	h.net.After(h.id, 2*h.net.Delta()+2, func() { h.terminationDecide(txn, t) })
}

// peersFor returns the participant set termination runs over for one
// transaction: its scoped set when the commit request carried one, the
// full static peer list otherwise (a fresh copy, per rt confinement).
func (h *Cohort) peersFor(t *cohortTxn) []rt.NodeID {
	if len(t.peers) > 0 {
		return append([]rt.NodeID{}, t.peers...)
	}
	return append([]rt.NodeID{}, h.peers...)
}

// backup returns the lowest operational participant, the deterministic
// election the thesis's voting protocol provides.
func (h *Cohort) backup(t *cohortTxn) rt.NodeID {
	ids := append([]rt.NodeID{}, h.peersFor(t)...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if h.net.Up(id) {
			return id
		}
	}
	return h.id
}

func (h *Cohort) onStateResp(txn string, from rt.NodeID, s State) {
	t := h.txn(txn)
	if t.gathering {
		t.stateResps[from] = s
	}
}

// terminationDecide applies the non-blocking theorem rules to the gathered
// states: commit when any operational site has committed or is prepared
// (its concurrency set contains commit and no operational site aborted);
// abort otherwise.
func (h *Cohort) terminationDecide(txn string, t *cohortTxn) {
	t.gathering = false
	if t.state == StateCommitted || t.state == StateAborted {
		return
	}
	anyCommittable := false
	anyAborted := false
	for _, s := range t.stateResps {
		if s.Committable() {
			anyCommittable = true
		}
		if s == StateAborted {
			anyAborted = true
		}
	}
	d := DecisionAbort
	if anyCommittable && !anyAborted {
		d = DecisionCommit
	}
	kind := KindAbort
	if d == DecisionCommit {
		kind = KindCommit
	}
	if h.cfg.UnsafeTermination {
		// Pre-durcheck ordering, kept for the E15 ablation: disseminate
		// before persisting. If the backup crashes between two of these
		// sends, one peer holds a durable outcome the backup's own stable
		// storage never recorded — on recovery the backup decides from w,
		// aborts, and atomicity splits. durcheck flags this shape as
		// dur-send; the suppressions below keep the ablation compiling
		// against a clean lint run.
		for _, p := range h.peersFor(t) {
			if p != h.id {
				//lint:allow rt-sendorder E15 ablation deliberately disseminates before the decide transition; the conformance runs never enable UnsafeTermination
				h.send(p, kind, txnMsg{Txn: txn}) //dur:ignore E15 ablation deliberately preserves the unsafe disseminate-before-persist ordering behind Config.UnsafeTermination
			}
		}
		h.decide(txn, d, CauseTerminate)
		return
	}
	// Write-ahead rule: persist the decision locally (decide) BEFORE any
	// peer can learn it. The original ordering disseminated first — the
	// violation durcheck was built to catch (see Config.UnsafeTermination).
	h.decide(txn, d, CauseTerminate)
	for _, p := range h.peersFor(t) {
		if p != h.id {
			h.send(p, kind, txnMsg{Txn: txn})
		}
	}
}

// decide finalizes the local outcome: it persists the decided state and
// the decision before any observer (OnDecide, subsequent sends) can act
// on them.
//
//dur:writes state decision
func (h *Cohort) decide(txn string, d Decision, cause Cause) {
	t := h.txn(txn)
	if t.state == StateCommitted || t.state == StateAborted {
		return
	}
	if t.timer != nil {
		t.timer.Cancel()
	}
	from := t.state
	if d == DecisionCommit {
		t.state = StateCommitted
	} else {
		t.state = StateAborted
	}
	// The q->c edge below is outside the abstract model's relation: under
	// message loss a cohort that never saw the commit request can still
	// receive the disseminated commit, which the model's reliable channels
	// exclude. fsmcheck requires that justification to stay checked in.
	//fsm:model-extra tpc cohort q->c decision dissemination can reach a cohort that never received the commit request when messages are dropped; the mc model assumes reliable channels
	h.emit(txn, from, t.state, cause) //fsm:from q,w,p //fsm:to a,c
	h.persist(txn, t.state)
	h.persistDecision(txn, d)
	h.decisions[txn] = d
	if h.OnDecide != nil {
		h.OnDecide(txn, d)
	}
	// Divergence rule for the batched fsync: recovery re-derives commit
	// from a durable p and abort from w/q, so only an outcome that
	// CONTRADICTS what recovery would conclude must be forced down —
	// commit decided anywhere below p, or abort decided at p (a backup's
	// termination can abort a prepared cohort when a peer aborted). The
	// sync sits after OnDecide so the one batch also covers the WAL
	// commit/abort record the decision application just appended, and
	// before decide's callers disseminate the outcome to any peer.
	if (d == DecisionCommit && from != StatePrepared) || (d == DecisionAbort && from == StatePrepared) {
		h.sync()
	}
}

// emit reports a transition to the trace hook. Call sites are the edges
// fsmcheck extracts for the cohort machine.
//
//fsm:emit tpc cohort
func (h *Cohort) emit(txn string, from, to State, cause Cause) {
	if h.Trace != nil && from != to {
		h.Trace(txn, Transition{Role: RoleCohort, From: from, To: to, Cause: cause})
	}
}

// Decision reports this cohort's outcome for txn.
func (h *Cohort) Decision(txn string) Decision { return h.decisions[txn] }

// StateOf reports this cohort's FSM state for txn.
func (h *Cohort) StateOf(txn string) State { return h.txn(txn).state }

// Blocked reports whether this (2PC) cohort is currently blocked on txn,
// and since when.
func (h *Cohort) Blocked(txn string) (bool, rt.Time) {
	t := h.txn(txn)
	return t.blocked && t.state == StateWait, t.blockedSince
}

// persist forces the protocol state for txn to stable storage.
//
//dur:writes state
func (h *Cohort) persist(txn string, s State) {
	st, err := h.net.Store(h.id)
	if err != nil {
		return
	}
	st.Put(stateKey(txn), []byte(s.String()))
}

// persistDecision forces the final outcome for txn to stable storage.
//
//dur:writes decision
func (h *Cohort) persistDecision(txn string, d Decision) {
	st, err := h.net.Store(h.id)
	if err != nil {
		return
	}
	st.Put(decisionKey(txn), []byte(d.String()))
}

// RecoverAll applies the cohort failure transitions on restart from
// stable storage alone (independent recovery): q2/w2 abort, p2 commits,
// decided states are kept. It returns the decisions taken.
//
//dur:handler
func (h *Cohort) RecoverAll() map[string]Decision {
	st, err := h.net.Store(h.id)
	if err != nil {
		return nil
	}
	out := map[string]Decision{}
	for _, key := range st.Keys() {
		txn, ok := txnOfStateKey(key)
		if !ok {
			continue
		}
		raw, _ := st.Get(key)
		t := h.txn(txn)
		switch string(raw) {
		case "q", "w":
			// Failure transition from w2: abort upon recovery.
			h.decide(txn, DecisionAbort, CauseFailure)
			out[txn] = DecisionAbort
		case "p":
			// Independent recovery from p2: commit (consistent with the
			// p2 timeout transition).
			h.decide(txn, DecisionCommit, CauseFailure)
			out[txn] = DecisionCommit
		case "a":
			t.state = StateAborted
			h.decisions[txn] = DecisionAbort
			out[txn] = DecisionAbort
		case "c":
			t.state = StateCommitted
			h.decisions[txn] = DecisionCommit
			out[txn] = DecisionCommit
		}
	}
	return out
}

// txnOfStateKey extracts the transaction from "tpc/<txn>/state".
func txnOfStateKey(key string) (string, bool) {
	const prefix, suffix = "tpc/", "/state"
	if len(key) <= len(prefix)+len(suffix) || key[:len(prefix)] != prefix || key[len(key)-len(suffix):] != suffix {
		return "", false
	}
	return key[len(prefix) : len(key)-len(suffix)], true
}
