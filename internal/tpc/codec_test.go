package tpc

import (
	"errors"
	"testing"

	"speccat/internal/stable"
)

// Every State constant must round-trip through its stable-storage
// encoding. The loop runs over the integer range so a newly added
// constant cannot dodge the test by being left out of a hand-written
// list.
func TestStateRoundTrip(t *testing.T) {
	states := []State{StateInitial, StateWait, StatePrepared, StateAborted, StateCommitted}
	if len(states) != int(StateCommitted) {
		t.Fatalf("state list covers %d constants, want %d — update this test with the new constant", len(states), int(StateCommitted))
	}
	for _, s := range states {
		got, err := ParseState(s.String())
		if err != nil {
			t.Errorf("ParseState(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
}

// Every Decision constant must round-trip likewise.
func TestDecisionRoundTrip(t *testing.T) {
	decisions := []Decision{DecisionNone, DecisionCommit, DecisionAbort}
	if len(decisions) != int(DecisionAbort)+1 {
		t.Fatalf("decision list covers %d constants, want %d — update this test with the new constant", len(decisions), int(DecisionAbort)+1)
	}
	for _, d := range decisions {
		got, err := ParseDecision(d.String())
		if err != nil {
			t.Errorf("ParseDecision(%q): %v", d.String(), err)
			continue
		}
		if got != d {
			t.Errorf("round trip %v -> %q -> %v", d, d.String(), got)
		}
	}
}

// Unknown encodings must surface ErrCorrupt instead of silently decoding
// to the zero-ish defaults (the pre-PR behaviour this bugfix removes).
func TestParseCorruptIsError(t *testing.T) {
	if _, err := ParseState("x"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ParseState(corrupt) err = %v, want ErrCorrupt", err)
	}
	if _, err := ParseDecision("maybe"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ParseDecision(corrupt) err = %v, want ErrCorrupt", err)
	}
}

// DurableState/DurableDecision distinguish "no record" (zero value, nil
// error) from "corrupt record" (wrapped ErrCorrupt).
func TestDurableCorruptStore(t *testing.T) {
	st := stable.NewStore()

	if d, err := DurableDecision(st, "t1"); err != nil || d != DecisionNone {
		t.Fatalf("missing record: got (%v, %v), want (none, nil)", d, err)
	}
	if s, err := DurableState(st, "t1"); err != nil || s != StateInitial {
		t.Fatalf("missing record: got (%v, %v), want (q, nil)", s, err)
	}

	st.Put(decisionKey("t1"), []byte("garbage"))
	st.Put(stateKey("t1"), []byte("z"))
	if _, err := DurableDecision(st, "t1"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt decision err = %v, want ErrCorrupt", err)
	}
	if _, err := DurableState(st, "t1"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt state err = %v, want ErrCorrupt", err)
	}

	st.Put(decisionKey("t2"), []byte("commit"))
	st.Put(stateKey("t2"), []byte("p"))
	if d, err := DurableDecision(st, "t2"); err != nil || d != DecisionCommit {
		t.Errorf("valid decision: got (%v, %v), want (commit, nil)", d, err)
	}
	if s, err := DurableState(st, "t2"); err != nil || s != StatePrepared {
		t.Errorf("valid state: got (%v, %v), want (p, nil)", s, err)
	}
}
