package tpc

import (
	"reflect"
	"testing"

	"speccat/internal/rt"
	"speccat/internal/rt/tcp"
)

// TestRegisterWireRoundTrip round-trips a representative payload for
// every tpc message kind through a real wire codec and frame encoding,
// asserting the decoded payload is byte-for-byte the concrete type and
// value the handlers assert on. A kind added to the protocol without a
// codec case makes the totality check below fail.
func TestRegisterWireRoundTrip(t *testing.T) {
	codec := tcp.NewCodec()
	if err := RegisterWire(codec); err != nil {
		t.Fatalf("RegisterWire: %v", err)
	}

	payloads := map[string]any{
		KindCommitReq: txnMsg{Txn: "t1"},
		KindVoteYes:   txnMsg{Txn: "t2"},
		KindVoteNo:    txnMsg{Txn: "t3"},
		KindPrepare:   txnMsg{Txn: "t4"},
		KindAck:       txnMsg{Txn: "t5"},
		KindCommit:    txnMsg{Txn: "t6"},
		KindAbort:     txnMsg{Txn: "t7"},
		KindStateReq:  txnMsg{Txn: "t8"},
		KindStateResp: stateResp{Txn: "t9", State: StatePrepared},
	}

	// Totality: the registered kind set is exactly the protocol's.
	kinds := codec.Kinds()
	if len(kinds) != len(payloads) {
		t.Fatalf("registered %d kinds %v, want %d", len(kinds), kinds, len(payloads))
	}
	for _, k := range kinds {
		if _, ok := payloads[k]; !ok {
			t.Fatalf("registered kind %s has no round-trip case", k)
		}
	}

	for kind, payload := range payloads {
		msg := rt.Message{From: 1, To: 2, Kind: kind, Payload: payload, SentAt: 5}
		frame, err := tcp.EncodeFrame(codec, msg)
		if err != nil {
			t.Errorf("%s: EncodeFrame: %v", kind, err)
			continue
		}
		got, _, err := tcp.DecodeFrame(codec, frame)
		if err != nil {
			t.Errorf("%s: DecodeFrame: %v", kind, err)
			continue
		}
		if !reflect.DeepEqual(got.Payload, payload) {
			t.Errorf("%s: round trip = %#v, want %#v", kind, got.Payload, payload)
		}
	}
}

// TestRegisterWireRejectsWrongPayloadType pins that encoders refuse a
// payload of the wrong concrete type instead of serializing garbage.
func TestRegisterWireRejectsWrongPayloadType(t *testing.T) {
	codec := tcp.NewCodec()
	if err := RegisterWire(codec); err != nil {
		t.Fatalf("RegisterWire: %v", err)
	}
	if _, err := codec.Encode(KindCommitReq, "not a txnMsg"); err == nil {
		t.Error("Encode with wrong payload type succeeded; want error")
	}
	if _, err := codec.Encode(KindStateResp, txnMsg{Txn: "t"}); err == nil {
		t.Error("Encode stateResp kind with txnMsg succeeded; want error")
	}
}

// TestRegisterWireDuplicate pins that double registration fails loudly.
func TestRegisterWireDuplicate(t *testing.T) {
	codec := tcp.NewCodec()
	if err := RegisterWire(codec); err != nil {
		t.Fatalf("RegisterWire: %v", err)
	}
	if err := RegisterWire(codec); err == nil {
		t.Error("second RegisterWire succeeded; want duplicate-kind error")
	}
}
