package tpc

import (
	"errors"
	"fmt"

	"speccat/internal/rt"
)

// Deployment is the runtime-agnostic wiring of one commit group: the
// coordinator and cohort engines installed over any rt.Transport. The
// deterministic simulator harness (Group, harness.go) and the
// real-goroutine conformance runs (internal/conformance, E16) both build
// on it — the same engine code, two runtimes, which is the point of the
// rt boundary.
type Deployment struct {
	Net         rt.Transport
	Coordinator *Coordinator
	Cohorts     map[rt.NodeID]*Cohort
	CoordID     rt.NodeID
	CohortIDs   []rt.NodeID
}

// ErrWire is wrapped when a group's message handlers cannot be installed.
var ErrWire = errors.New("tpc: wire handler")

// Deploy registers one coordinator node and n cohort nodes on net and
// wires all message handlers. Node IDs are 1 (coordinator) and 2..n+1
// (cohorts), the layout every harness and fault schedule in this
// repository assumes.
// DeployCoordinator registers and wires only the coordinator engine —
// the per-process deployment a distributed runtime needs, where each
// transport hosts exactly one node (internal/rt/tcp) and the cohorts
// live in other processes.
func DeployCoordinator(net rt.Transport, coordID rt.NodeID, cohortIDs []rt.NodeID, cfg Config) (*Coordinator, error) {
	net.AddNode(coordID, nil)
	c := NewCoordinator(net, coordID, cohortIDs, cfg)
	if err := net.SetHandler(coordID, func(m rt.Message) { c.HandleMessage(m) }); err != nil {
		return nil, fmt.Errorf("%w: coordinator %d: %w", ErrWire, coordID, err)
	}
	return c, nil
}

// DeployCohort registers and wires only one cohort engine (see
// DeployCoordinator).
func DeployCohort(net rt.Transport, id, coordID rt.NodeID, cohortIDs []rt.NodeID, cfg Config) (*Cohort, error) {
	net.AddNode(id, nil)
	h := NewCohort(net, id, coordID, cohortIDs, cfg)
	if err := net.SetHandler(id, func(m rt.Message) { h.HandleMessage(m) }); err != nil {
		return nil, fmt.Errorf("%w: cohort %d: %w", ErrWire, id, err)
	}
	return h, nil
}

func Deploy(net rt.Transport, n int, cfg Config) (*Deployment, error) {
	coordID := rt.NodeID(1)
	net.AddNode(coordID, nil)
	var cohortIDs []rt.NodeID
	for i := 2; i <= n+1; i++ {
		id := rt.NodeID(i)
		cohortIDs = append(cohortIDs, id)
		net.AddNode(id, nil)
	}
	d := &Deployment{Net: net, CoordID: coordID, CohortIDs: cohortIDs, Cohorts: map[rt.NodeID]*Cohort{}}
	d.Coordinator = NewCoordinator(net, coordID, cohortIDs, cfg)
	if err := net.SetHandler(coordID, func(m rt.Message) { d.Coordinator.HandleMessage(m) }); err != nil {
		return nil, fmt.Errorf("%w: coordinator %d: %w", ErrWire, coordID, err)
	}
	for _, id := range cohortIDs {
		h := NewCohort(net, id, coordID, cohortIDs, cfg)
		d.Cohorts[id] = h
		if err := net.SetHandler(id, func(m rt.Message) { h.HandleMessage(m) }); err != nil {
			return nil, fmt.Errorf("%w: cohort %d: %w", ErrWire, id, err)
		}
	}
	return d, nil
}
