// Package tpc implements the paper's case-study protocol: the centralized
// non-blocking three-phase commit (3PC) of Fig. 3.2, with the coordinator
// FSM (q1, w1, p1, a1, c1), the cohort FSM (q2, w2, p2, a2, c2), timeout
// and failure transitions, the termination protocol (backup-coordinator
// election plus the non-blocking decision rules), and independent recovery
// from stable storage. A two-phase commit (2PC) baseline — identical
// machinery minus the prepared state — exhibits the blocking behaviour 3PC
// exists to avoid; the difference is measured in experiments E7/E8.
package tpc

import (
	"fmt"

	"speccat/internal/sim"
	"speccat/internal/stable"
)

// State is an FSM state shared by coordinator and cohort (the paper's
// q/w/p/a/c with site-role suffixes implied by context).
type State int

// FSM states.
const (
	StateInitial   State = iota + 1 // q
	StateWait                       // w
	StatePrepared                   // p
	StateAborted                    // a
	StateCommitted                  // c
)

// String renders the state in the paper's notation.
func (s State) String() string {
	switch s {
	case StateInitial:
		return "q"
	case StateWait:
		return "w"
	case StatePrepared:
		return "p"
	case StateAborted:
		return "a"
	case StateCommitted:
		return "c"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Committable reports whether a site in this state may still commit
// without further information (p and c are "committable" in the paper's
// non-blocking theorem; q, w are not).
func (s State) Committable() bool {
	return s == StatePrepared || s == StateCommitted
}

// Decision is a transaction outcome.
type Decision int

// Outcomes.
const (
	DecisionNone Decision = iota
	DecisionCommit
	DecisionAbort
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return "none"
	}
}

// Wire kinds for the commit protocols.
const (
	KindCommitReq = "tpc.commitreq" // phase 1: coordinator -> cohorts
	KindVoteYes   = "tpc.voteyes"   // phase 1: cohort -> coordinator ("agreed")
	KindVoteNo    = "tpc.voteno"    // phase 1: cohort -> coordinator ("abort")
	KindPrepare   = "tpc.prepare"   // phase 2: coordinator -> cohorts
	KindAck       = "tpc.ack"       // phase 2: cohort -> coordinator
	KindCommit    = "tpc.commit"    // phase 3: coordinator -> cohorts
	KindAbort     = "tpc.abort"     // any phase: coordinator -> cohorts

	// Termination protocol.
	KindStateReq  = "tpc.term.statereq"  // backup -> cohorts
	KindStateResp = "tpc.term.stateresp" // cohort -> backup
)

// txnMsg is the common payload: every protocol message names its
// transaction.
type txnMsg struct {
	Txn string
}

// stateResp answers a termination-protocol state request.
type stateResp struct {
	Txn   string
	State State
}

// Protocol selects 3PC or the 2PC baseline.
type Protocol int

// Protocols.
const (
	ThreePhase Protocol = iota + 1
	TwoPhase
)

// String names the protocol.
func (p Protocol) String() string {
	if p == TwoPhase {
		return "2PC"
	}
	return "3PC"
}

// Config tunes the engines.
type Config struct {
	// Protocol selects 3PC (default) or 2PC.
	Protocol Protocol
	// PhaseTimeout is the per-phase timeout; zero derives 4δ from the
	// network at engine construction.
	PhaseTimeout sim.Time
	// NaiveTimeouts, when true, uses the bare Fig. 3.2 timeout
	// transitions (w2→abort, p2→commit) instead of running the
	// termination protocol. The model checker shows this is unsafe when
	// the coordinator fails between prepare sends; it exists for the
	// E7 ablation.
	NaiveTimeouts bool
}

// stable-storage key for a transaction's persisted state.
func stateKey(txn string) string { return "tpc/" + txn + "/state" }

// decisionKey persists final outcomes.
func decisionKey(txn string) string { return "tpc/" + txn + "/decision" }

// DurableDecision reads the outcome a site persisted for txn from its
// stable store — what the site would decide on recovery, independent of
// any volatile state. Fault explorers use it as the ground truth for
// cross-site atomicity checks that span crashes.
func DurableDecision(st *stable.Store, txn string) Decision {
	raw, ok := st.Get(decisionKey(txn))
	if !ok {
		return DecisionNone
	}
	switch string(raw) {
	case "commit":
		return DecisionCommit
	case "abort":
		return DecisionAbort
	default:
		return DecisionNone
	}
}

// DurableState reads the FSM state a site persisted for txn (StateInitial
// when none was written).
func DurableState(st *stable.Store, txn string) State {
	raw, ok := st.Get(stateKey(txn))
	if !ok {
		return StateInitial
	}
	switch string(raw) {
	case "q":
		return StateInitial
	case "w":
		return StateWait
	case "p":
		return StatePrepared
	case "a":
		return StateAborted
	case "c":
		return StateCommitted
	default:
		return StateInitial
	}
}
