// Package tpc implements the paper's case-study protocol: the centralized
// non-blocking three-phase commit (3PC) of Fig. 3.2, with the coordinator
// FSM (q1, w1, p1, a1, c1), the cohort FSM (q2, w2, p2, a2, c2), timeout
// and failure transitions, the termination protocol (backup-coordinator
// election plus the non-blocking decision rules), and independent recovery
// from stable storage. A two-phase commit (2PC) baseline — identical
// machinery minus the prepared state — exhibits the blocking behaviour 3PC
// exists to avoid; the difference is measured in experiments E7/E8.
//
// The engines run against the rt runtime boundary (rt.Transport /
// rt.Timer), so the same handler code serves the deterministic simulator
// and the real-goroutine adapter; portcheck enforces the boundary.
//
//rt:engine
package tpc

import (
	"errors"
	"fmt"

	"speccat/internal/rt"
	"speccat/internal/stable"
)

// State is an FSM state shared by coordinator and cohort (the paper's
// q/w/p/a/c with site-role suffixes implied by context). The //fsm:state
// annotations bind each constant to its letter in the abstract model of
// internal/mc — the alias map fsmcheck's cross-validation resolves
// extracted edges through.
type State int

// FSM states.
const (
	StateInitial   State = iota + 1 //fsm:state tpc q
	StateWait                       //fsm:state tpc w
	StatePrepared                   //fsm:state tpc p
	StateAborted                    //fsm:state tpc a
	StateCommitted                  //fsm:state tpc c
)

// String renders the state in the paper's notation. It is also the
// stable-storage encoding persist writes; ParseState is its inverse, and
// fsmcheck's codec-totality check keeps the pair in sync with the
// constant set.
//
//fsm:encode tpc
func (s State) String() string {
	switch s {
	case StateInitial:
		return "q"
	case StateWait:
		return "w"
	case StatePrepared:
		return "p"
	case StateAborted:
		return "a"
	case StateCommitted:
		return "c"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Committable reports whether a site in this state may still commit
// without further information (p and c are "committable" in the paper's
// non-blocking theorem; q, w are not).
func (s State) Committable() bool {
	return s == StatePrepared || s == StateCommitted
}

// Decision is a transaction outcome.
type Decision int

// Outcomes.
const (
	DecisionNone Decision = iota
	DecisionCommit
	DecisionAbort
)

// String renders the decision; it doubles as the stable-storage encoding
// (see ParseDecision).
//
//fsm:encode tpc
func (d Decision) String() string {
	switch d {
	case DecisionNone:
		return "none"
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return "none"
	}
}

// ErrCorrupt is wrapped by the stable-storage decoders when a persisted
// byte sequence matches no known encoding. Before this sentinel existed,
// an unknown byte silently decoded to StateInitial/DecisionNone — exactly
// the kind of drift fsmcheck's codec-totality check now forbids.
var ErrCorrupt = errors.New("tpc: corrupt persisted record")

// ParseState decodes a persisted FSM state. Every encoding State.String
// produces must decode; anything else is a wrapped ErrCorrupt.
//
//fsm:decode tpc
func ParseState(raw string) (State, error) {
	switch raw {
	case "q":
		return StateInitial, nil
	case "w":
		return StateWait, nil
	case "p":
		return StatePrepared, nil
	case "a":
		return StateAborted, nil
	case "c":
		return StateCommitted, nil
	default:
		return 0, fmt.Errorf("%w: unknown state encoding %q", ErrCorrupt, raw)
	}
}

// ParseDecision decodes a persisted outcome; unknown bytes are a wrapped
// ErrCorrupt rather than a silent DecisionNone.
//
//fsm:decode tpc
func ParseDecision(raw string) (Decision, error) {
	switch raw {
	case "none":
		return DecisionNone, nil
	case "commit":
		return DecisionCommit, nil
	case "abort":
		return DecisionAbort, nil
	default:
		return 0, fmt.Errorf("%w: unknown decision encoding %q", ErrCorrupt, raw)
	}
}

// Wire kinds for the commit protocols. The //fsm:msg annotation names the
// machine and the role whose handler must consume the kind (phase 1 flows
// cohort->coordinator, so its votes are coordinator-consumed, etc.).
//
// The //dur:requires annotations declare the write-ahead rule per kind: a
// send of the kind must be dominated by a durable write of the named class
// ("state" = the sender persisted the protocol state it is announcing,
// "decision" = the sender persisted the final outcome it is announcing).
// KindVoteNo carries no requirement: presumed abort means a no-vote is
// safe to lose and safe to send from any state. KindStateReq and
// KindStateResp only query and report state, they announce nothing new.
const (
	KindCommitReq = "tpc.commitreq" //fsm:msg tpc cohort //dur:requires state
	KindVoteYes   = "tpc.voteyes"   //fsm:msg tpc coordinator //dur:requires state
	KindVoteNo    = "tpc.voteno"    //fsm:msg tpc coordinator
	KindPrepare   = "tpc.prepare"   //fsm:msg tpc cohort //dur:requires state
	KindAck       = "tpc.ack"       //fsm:msg tpc coordinator //dur:requires state
	KindCommit    = "tpc.commit"    //fsm:msg tpc cohort //dur:requires decision
	KindAbort     = "tpc.abort"     //fsm:msg tpc cohort //dur:requires decision

	// Termination protocol (backup <-> cohorts).
	KindStateReq  = "tpc.term.statereq"  //fsm:msg tpc cohort
	KindStateResp = "tpc.term.stateresp" //fsm:msg tpc cohort
)

// txnMsg is the common payload: every protocol message names its
// transaction. Participants rides only on scoped commit requests (see
// Config.ScopedParticipants): it tells each cohort which sites this
// transaction's termination protocol runs over. Absent (nil) means the
// cohort's full static peer set, which keeps the wire encoding of
// unscoped runs byte-identical to before the field existed.
type txnMsg struct {
	Txn          string
	Participants []rt.NodeID `json:",omitempty"`
}

// stateResp answers a termination-protocol state request.
type stateResp struct {
	Txn   string
	State State
}

// Protocol selects 3PC or the 2PC baseline.
type Protocol int

// Protocols.
const (
	ThreePhase Protocol = iota + 1
	TwoPhase
)

// String names the protocol.
func (p Protocol) String() string {
	if p == TwoPhase {
		return "2PC"
	}
	return "3PC"
}

// Config tunes the engines.
type Config struct {
	// Protocol selects 3PC (default) or 2PC.
	Protocol Protocol
	// PhaseTimeout is the per-phase timeout; zero derives 4δ from the
	// network at engine construction.
	PhaseTimeout rt.Time
	// NaiveTimeouts, when true, uses the bare Fig. 3.2 timeout
	// transitions (w2→abort, p2→commit) instead of running the
	// termination protocol. The model checker shows this is unsafe when
	// the coordinator fails between prepare sends; it exists for the
	// E7 ablation.
	NaiveTimeouts bool
	// UnsafeTermination, when true, restores the pre-durcheck backup
	// ordering: the termination decision is disseminated to the peers
	// BEFORE it is persisted locally. A backup that crashes between two
	// dissemination sends has then told one peer an outcome its own
	// stable storage never recorded — the write-ahead violation durcheck
	// flags statically and the E15 cross-validation exhibits dynamically
	// as an atomicity split. It exists for that ablation only.
	UnsafeTermination bool
	// ScopedParticipants, when true, makes the master hand the
	// coordinator the exact site set each transaction touched
	// (Coordinator.BeginWith): the commit protocol's fan-out — commit
	// requests, prepares, decisions, and the cohorts' termination
	// protocol — spans only those participants instead of every cohort
	// in the cluster. A transaction touching no site commits
	// immediately. Off by default: the unscoped all-cohorts fan-out is
	// the coordinate system existing fault schedules (and their golden
	// counterexamples) address sends by.
	ScopedParticipants bool
}

// stable-storage key for a transaction's persisted state.
func stateKey(txn string) string { return "tpc/" + txn + "/state" }

// decisionKey persists final outcomes.
func decisionKey(txn string) string { return "tpc/" + txn + "/decision" }

// DurableDecision reads the outcome a site persisted for txn from its
// stable store — what the site would decide on recovery, independent of
// any volatile state. Fault explorers use it as the ground truth for
// cross-site atomicity checks that span crashes. A missing record is
// (DecisionNone, nil); a record that decodes to nothing known is a
// wrapped ErrCorrupt, never a silent DecisionNone.
func DurableDecision(st *stable.Store, txn string) (Decision, error) {
	raw, ok := st.Get(decisionKey(txn))
	if !ok {
		return DecisionNone, nil
	}
	d, err := ParseDecision(string(raw))
	if err != nil {
		return DecisionNone, fmt.Errorf("tpc: durable decision of %s: %w", txn, err)
	}
	return d, nil
}

// DurableState reads the FSM state a site persisted for txn (StateInitial
// when none was written; a wrapped ErrCorrupt when the record exists but
// decodes to no known state).
func DurableState(st *stable.Store, txn string) (State, error) {
	raw, ok := st.Get(stateKey(txn))
	if !ok {
		return StateInitial, nil
	}
	s, err := ParseState(string(raw))
	if err != nil {
		return StateInitial, fmt.Errorf("tpc: durable state of %s: %w", txn, err)
	}
	return s, nil
}
