package tpc

import (
	"math/rand"
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

func TestFig32TableSelfConsistent(t *testing.T) {
	table := Fig32Table()
	if len(table) < 20 {
		t.Fatalf("table has %d entries", len(table))
	}
	seen := map[Transition]bool{}
	for _, tr := range table {
		if seen[tr] {
			t.Errorf("duplicate table entry %+v", tr)
		}
		seen[tr] = true
		if !Allowed(tr) {
			t.Errorf("Allowed rejects its own table entry %+v", tr)
		}
	}
	// Decided states are absorbing: no transitions out of a or c.
	for _, tr := range table {
		if tr.From == StateAborted || tr.From == StateCommitted {
			t.Errorf("transition out of a decided state: %+v", tr)
		}
	}
	if Allowed(Transition{RoleCohort, StateCommitted, StateAborted, CauseMessage}) {
		t.Error("commit→abort must never be allowed")
	}
}

// traceCollector gathers transitions from a whole group.
type traceCollector struct {
	got []Transition
}

func (tc *traceCollector) hook() TraceFunc {
	return func(txn string, tr Transition) { tc.got = append(tc.got, tr) }
}

// TestEngineRefinesFig32 drives randomized runs — happy paths, no-votes,
// crashes of every site at random times, recoveries — and checks that
// every transition the engines take is an arrow of Fig. 3.2.
func TestEngineRefinesFig32(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		naive := r.Intn(3) == 0
		g := mustGroup(t, seed, n, Config{NaiveTimeouts: naive})
		tc := &traceCollector{}
		g.Coordinator.Trace = tc.hook()
		for _, h := range g.Cohorts {
			h.Trace = tc.hook()
		}
		// Random no-voter sometimes.
		if r.Intn(4) == 0 {
			veto := g.CohortIDs[r.Intn(n)]
			g.Cohorts[veto].Vote = func(string) bool { return false }
		}
		// Random single crash, sometimes with recovery.
		victim := simnet.NodeID(0)
		if r.Intn(3) != 0 {
			idx := r.Intn(n + 1)
			victim = g.CoordID
			if idx > 0 {
				victim = g.CohortIDs[idx-1]
			}
			at := sim.Time(r.Intn(140))
			g.Net.Scheduler().At(at, func() { _ = g.Net.Crash(victim) })
		}
		if err := g.Coordinator.Begin("t"); err != nil {
			t.Fatal(err)
		}
		g.Net.Scheduler().Run(0)
		if victim != 0 && r.Intn(2) == 0 {
			_ = g.Net.Recover(victim)
			if victim == g.CoordID {
				g.Coordinator.RecoverAll()
			} else {
				g.Cohorts[victim].RecoverAll()
			}
			g.Net.Scheduler().Run(0)
		}
		for _, tr := range tc.got {
			if !Allowed(tr) {
				t.Fatalf("seed %d: engine took a transition outside Fig. 3.2: %s %s→%s (%s)",
					seed, tr.Role, tr.From, tr.To, tr.Cause)
			}
		}
		if len(tc.got) == 0 {
			t.Fatalf("seed %d: no transitions observed", seed)
		}
	}
}

// TestTraceCausesMeaningful: a clean commit run uses only message-cause
// transitions; a coordinator-crash run includes termination or timeout
// causes.
func TestTraceCausesMeaningful(t *testing.T) {
	g := mustGroup(t, 99, 3, Config{})
	tc := &traceCollector{}
	g.Coordinator.Trace = tc.hook()
	for _, h := range g.Cohorts {
		h.Trace = tc.hook()
	}
	if err := g.Coordinator.Begin("t"); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().Run(0)
	for _, tr := range tc.got {
		if tr.Cause != CauseMessage {
			t.Fatalf("clean run used %s transition %+v", tr.Cause, tr)
		}
	}

	g2 := mustGroup(t, 100, 3, Config{})
	tc2 := &traceCollector{}
	for _, h := range g2.Cohorts {
		h.Trace = tc2.hook()
	}
	if err := g2.Coordinator.Begin("t"); err != nil {
		t.Fatal(err)
	}
	g2.Net.Scheduler().RunUntil(1)
	_ = g2.Net.Crash(g2.CoordID)
	g2.Net.Scheduler().Run(0)
	sawTermination := false
	for _, tr := range tc2.got {
		if tr.Cause == CauseTerminate {
			sawTermination = true
		}
	}
	if !sawTermination {
		t.Fatal("coordinator-crash run shows no termination transitions")
	}
}
