package tpc

import (
	"encoding/json"
	"fmt"

	"speccat/internal/rt"
)

// RegisterWire registers an encode/decode pair for every message kind
// the tpc engines send, into a wire codec (rt.PayloadRegistry — in
// practice internal/rt/tcp's Codec). The decoders return exactly the
// unexported concrete payload types the handlers assert, so a message
// that crossed a real wire is indistinguishable to the engine from one
// that crossed the simulator's in-memory fabric. Registration is total
// over the protocol: a kind added to the engine without a codec here
// fails at the sender's EncodeFrame, not as a silent drop on a peer.
func RegisterWire(reg rt.PayloadRegistry) error {
	for _, kind := range []string{
		KindCommitReq, KindVoteYes, KindVoteNo, KindPrepare,
		KindAck, KindCommit, KindAbort, KindStateReq,
	} {
		if err := reg.Register(kind, encodeTxnMsg, decodeTxnMsg); err != nil {
			return fmt.Errorf("tpc: register wire %s: %w", kind, err)
		}
	}
	if err := reg.Register(KindStateResp, encodeStateResp, decodeStateResp); err != nil {
		return fmt.Errorf("tpc: register wire %s: %w", KindStateResp, err)
	}
	return nil
}

func encodeTxnMsg(p any) ([]byte, error) {
	m, ok := p.(txnMsg)
	if !ok {
		return nil, fmt.Errorf("tpc: wire payload %T, want txnMsg", p)
	}
	return json.Marshal(m)
}

func decodeTxnMsg(data []byte) (any, error) {
	var m txnMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tpc: wire txnMsg: %w", err)
	}
	return m, nil
}

func encodeStateResp(p any) ([]byte, error) {
	m, ok := p.(stateResp)
	if !ok {
		return nil, fmt.Errorf("tpc: wire payload %T, want stateResp", p)
	}
	return json.Marshal(m)
}

func decodeStateResp(data []byte) (any, error) {
	var m stateResp
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tpc: wire stateResp: %w", err)
	}
	return m, nil
}
