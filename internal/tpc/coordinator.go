package tpc

import (
	"fmt"

	"speccat/internal/rt"
)

// coordTxn is the coordinator's per-transaction state.
type coordTxn struct {
	state State
	votes map[rt.NodeID]bool // yes-votes received
	acks  map[rt.NodeID]bool
	timer rt.Timer
	// participants is the scoped site set this transaction's fan-out
	// spans (BeginWith); nil means every cohort the coordinator manages.
	participants []rt.NodeID
}

// Coordinator drives commit processing for transactions whose master runs
// on this site (the paper's Fig. 3.1 master process).
type Coordinator struct {
	net     rt.Transport
	id      rt.NodeID
	cohorts []rt.NodeID
	cfg     Config
	txns    map[string]*coordTxn
	// OnDecide fires once per transaction with the final outcome.
	OnDecide func(txn string, d Decision)
	// Trace, when non-nil, observes every FSM transition (Fig. 3.2).
	Trace TraceFunc
	// OnMalformed, when non-nil, observes protocol messages whose payload
	// failed to decode (a peer speaking the right kind with the wrong
	// body). They are counted either way; see Malformed.
	OnMalformed func(m rt.Message)
	// OnSendError, when non-nil, observes every protocol send the network
	// refused (dead cohort, crashed self). Failed sends are counted either
	// way; see SendErrors.
	OnSendError func(to rt.NodeID, kind string, err error)
	// decisions records outcomes for inspection.
	decisions  map[string]Decision
	malformed  int
	sendErrors int
}

// NewCoordinator creates a coordinator on site id managing the given
// cohort sites.
func NewCoordinator(net rt.Transport, id rt.NodeID, cohorts []rt.NodeID, cfg Config) *Coordinator {
	if cfg.Protocol == 0 {
		cfg.Protocol = ThreePhase
	}
	if cfg.PhaseTimeout == 0 {
		cfg.PhaseTimeout = 4 * net.Delta()
	}
	return &Coordinator{
		net: net, id: id, cohorts: append([]rt.NodeID{}, cohorts...), cfg: cfg,
		txns: map[string]*coordTxn{}, decisions: map[string]Decision{},
	}
}

// Begin starts the commit protocol for txn with the full cohort set.
func (c *Coordinator) Begin(txn string) error { return c.BeginWith(txn, nil) }

// BeginWith starts the commit protocol for txn over exactly the given
// participant sites: the coordinator moves q1→w1 and multicasts the
// commit request to them (nil means all cohorts — the unscoped Begin).
// An empty non-nil set means the transaction touched no data site: there
// is nothing to prepare and nobody to wait for, so it commits
// immediately. It is not message dispatch, so it opts into the
// durability analysis explicitly.
//
// The w1 record is deliberately not forced to disk before the commit
// requests leave (group commit): a coordinator that crashes with an
// unsynced w recovers to q, decides nothing, and the cohorts' termination
// protocol aborts — the same outcome recovery-from-w would reach.
//
//dur:handler
func (c *Coordinator) BeginWith(txn string, participants []rt.NodeID) error {
	if _, dup := c.txns[txn]; dup {
		return fmt.Errorf("tpc: transaction %s already begun", txn)
	}
	ct := &coordTxn{state: StateWait, votes: map[rt.NodeID]bool{}, acks: map[rt.NodeID]bool{}}
	if participants != nil {
		ct.participants = append([]rt.NodeID{}, participants...)
	}
	c.txns[txn] = ct
	c.emit(txn, StateInitial, StateWait, CauseMessage)
	c.persist(txn, StateWait)
	parts := c.parts(ct)
	if participants != nil && len(parts) == 0 {
		c.commit(txn, ct, CauseMessage)
		return nil
	}
	for _, ch := range parts {
		if err := c.net.Send(c.id, ch, KindCommitReq, txnMsg{Txn: txn, Participants: ct.participants}); err != nil {
			return fmt.Errorf("tpc: begin %s: %w", txn, err)
		}
	}
	// Timeout waiting for votes: abort (w1 timeout transition).
	ct.timer = c.net.After(c.id, c.cfg.PhaseTimeout, func() {
		if ct.state == StateWait {
			c.abort(txn, ct, CauseTimeout)
		}
	})
	return nil
}

// parts returns the transaction's fan-out set: its scoped participants,
// or every cohort when unscoped (a fresh copy, per rt confinement).
func (c *Coordinator) parts(ct *coordTxn) []rt.NodeID {
	if ct.participants != nil {
		return append([]rt.NodeID{}, ct.participants...)
	}
	return append([]rt.NodeID{}, c.cohorts...)
}

// sync forces the site's pending stable writes to disk in one batch. A
// no-op outside group-commit mode, where every persist is already
// durable on return; under group commit it is placed exactly where an
// unsynced record would diverge from what independent recovery re-derives
// (see the comments at each call site).
func (c *Coordinator) sync() {
	st, err := c.net.Store(c.id)
	if err != nil {
		return
	}
	_ = st.Sync()
}

// syncThen runs fn once the site's pending stable writes are durable —
// inline under the simulator and outside group-commit mode, re-enqueued
// on this node's event loop by the store's pipelined group commit on the
// live serving path, so the loop keeps absorbing concurrent transactions
// while the batched fsync settles.
func (c *Coordinator) syncThen(fn func()) {
	st, err := c.net.Store(c.id)
	if err != nil {
		fn()
		return
	}
	st.SyncThen(fn)
}

// HandleMessage consumes coordinator-side protocol traffic.
//
//fsm:handler tpc coordinator
func (c *Coordinator) HandleMessage(m rt.Message) bool {
	switch m.Kind {
	case KindVoteYes:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return c.badPayload(m)
		}
		c.onVote(p.Txn, m.From, true)
		return true
	case KindVoteNo:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return c.badPayload(m)
		}
		c.onVote(p.Txn, m.From, false)
		return true
	case KindAck:
		p, ok := m.Payload.(txnMsg)
		if !ok {
			return c.badPayload(m)
		}
		c.onAck(p.Txn, m.From)
		return true
	default:
		return false
	}
}

// badPayload accounts for a message of a coordinator-consumed kind whose
// payload failed to decode, then declines it so a later handler (or the
// site's terminal drop accounting) sees it.
func (c *Coordinator) badPayload(m rt.Message) bool {
	c.malformed++
	if c.OnMalformed != nil {
		c.OnMalformed(m)
	}
	return false
}

// Malformed reports how many protocol messages this coordinator rejected
// because their payload did not decode.
func (c *Coordinator) Malformed() int { return c.malformed }

// SendErrors reports how many protocol sends the network refused.
func (c *Coordinator) SendErrors() int { return c.sendErrors }

// send transmits one protocol message, routing refusals through the
// send-error accounting (SendErrors, OnSendError) instead of dropping
// them silently. Begin keeps its direct error-returning sends: a commit
// request that cannot even leave the coordinator fails the whole Begin.
func (c *Coordinator) send(to rt.NodeID, kind string, payload any) {
	if err := c.net.Send(c.id, to, kind, payload); err != nil {
		c.sendErrors++
		if c.OnSendError != nil {
			c.OnSendError(to, kind, err)
		}
	}
}

func (c *Coordinator) onVote(txn string, from rt.NodeID, yes bool) {
	ct, ok := c.txns[txn]
	if !ok || ct.state != StateWait {
		return
	}
	if !yes {
		c.abort(txn, ct, CauseMessage)
		return
	}
	ct.votes[from] = true
	if len(ct.votes) < len(c.parts(ct)) {
		return
	}
	// All agreed.
	if ct.timer != nil {
		ct.timer.Cancel()
	}
	if c.cfg.Protocol == TwoPhase {
		// 2PC has no prepared phase: commit directly.
		c.commit(txn, ct, CauseMessage)
		return
	}
	// Second phase: prepare.
	c.emit(txn, ct.state, StatePrepared, CauseMessage)
	ct.state = StatePrepared
	c.persist(txn, StatePrepared)
	// The p1 record MUST be on disk before any prepare leaves: an
	// unsynced p crashes back to w, which recovers to abort — while a
	// cohort that ran termination over the prepares commits. The one
	// batched fsync here covers the whole fan-out (and, pipelined, every
	// concurrent transaction's sync point in the same window).
	c.syncThen(func() {
		for _, ch := range c.parts(ct) {
			c.send(ch, KindPrepare, txnMsg{Txn: txn})
		}
		ct.timer = c.net.After(c.id, c.cfg.PhaseTimeout, func() {
			if ct.state == StatePrepared {
				// p1 timeout transition (a cohort failed before acking):
				// abort and notify everyone, per the paper's narrative.
				c.abort(txn, ct, CauseTimeout)
			}
		})
	})
}

func (c *Coordinator) onAck(txn string, from rt.NodeID) {
	ct, ok := c.txns[txn]
	if !ok || ct.state != StatePrepared {
		return
	}
	ct.acks[from] = true
	if len(ct.acks) < len(c.parts(ct)) {
		return
	}
	if ct.timer != nil {
		ct.timer.Cancel()
	}
	c.commit(txn, ct, CauseMessage)
}

func (c *Coordinator) commit(txn string, ct *coordTxn, cause Cause) {
	from := ct.state
	if ct.state != StateCommitted {
		c.emit(txn, ct.state, StateCommitted, cause) //fsm:from w,p
	}
	ct.state = StateCommitted
	c.persist(txn, StateCommitted)
	c.persistDecision(txn, DecisionCommit)
	// Divergence rule: independent recovery re-derives commit from a
	// durable p, so committing from p needs no fsync before the decision
	// leaves. Committing from anywhere else (2PC's w, a re-announce)
	// would recover to abort, so the decision must hit the disk first.
	if from != StatePrepared {
		c.sync()
	}
	for _, ch := range c.parts(ct) {
		c.send(ch, KindCommit, txnMsg{Txn: txn})
	}
	c.finish(txn, DecisionCommit)
}

func (c *Coordinator) abort(txn string, ct *coordTxn, cause Cause) {
	if ct.timer != nil {
		ct.timer.Cancel()
	}
	from := ct.state
	if ct.state != StateAborted {
		c.emit(txn, ct.state, StateAborted, cause) //fsm:from q,w,p
	}
	ct.state = StateAborted
	c.persist(txn, StateAborted)
	c.persistDecision(txn, DecisionAbort)
	// Mirror of commit's divergence rule: recovery from w (or q) already
	// aborts, so only an abort decided from p — where recovery would
	// commit instead — must be forced down before it is announced.
	if from == StatePrepared {
		c.sync()
	}
	for _, ch := range c.parts(ct) {
		c.send(ch, KindAbort, txnMsg{Txn: txn})
	}
	c.finish(txn, DecisionAbort)
}

func (c *Coordinator) finish(txn string, d Decision) {
	if _, done := c.decisions[txn]; done {
		return
	}
	c.decisions[txn] = d
	if c.OnDecide != nil {
		c.OnDecide(txn, d)
	}
}

// emit reports a transition to the trace hook. Call sites are the edges
// fsmcheck extracts for the coordinator machine.
//
//fsm:emit tpc coordinator
func (c *Coordinator) emit(txn string, from, to State, cause Cause) {
	if c.Trace != nil && from != to {
		c.Trace(txn, Transition{Role: RoleCoordinator, From: from, To: to, Cause: cause})
	}
}

// Decision reports the coordinator's outcome for txn.
func (c *Coordinator) Decision(txn string) Decision { return c.decisions[txn] }

// StateOf reports the coordinator's FSM state for txn.
func (c *Coordinator) StateOf(txn string) State {
	ct, ok := c.txns[txn]
	if !ok {
		return StateInitial
	}
	return ct.state
}

// persist writes the FSM state to stable storage (write-ahead of the
// corresponding sends, per assumption 4).
//
//dur:writes state
func (c *Coordinator) persist(txn string, s State) {
	st, err := c.net.Store(c.id)
	if err != nil {
		return
	}
	st.Put(stateKey(txn), []byte(s.String()))
}

// persistDecision forces the final outcome for txn to stable storage.
//
//dur:writes decision
func (c *Coordinator) persistDecision(txn string, d Decision) {
	st, err := c.net.Store(c.id)
	if err != nil {
		return
	}
	st.Put(decisionKey(txn), []byte(d.String()))
}

// RecoverAll applies the coordinator failure transitions of Fig. 3.2 on
// restart, using only stable storage (independent recovery, assumption 8):
// a transaction logged in w1 aborts; one logged in p1 commits; decided
// transactions re-announce their outcome. It returns the decisions taken.
//
//dur:handler
func (c *Coordinator) RecoverAll() map[string]Decision {
	st, err := c.net.Store(c.id)
	if err != nil {
		return nil
	}
	out := map[string]Decision{}
	for _, key := range st.Keys() {
		var txn string
		if _, err := fmt.Sscanf(key, "tpc/%s", &txn); err != nil {
			continue
		}
		const suffix = "/state"
		if len(txn) <= len(suffix) || txn[len(txn)-len(suffix):] != suffix {
			continue
		}
		txn = txn[:len(txn)-len(suffix)]
		raw, _ := st.Get(stateKey(txn))
		ct, ok := c.txns[txn]
		if !ok {
			ct = &coordTxn{votes: map[rt.NodeID]bool{}, acks: map[rt.NodeID]bool{}}
			c.txns[txn] = ct
		}
		switch string(raw) {
		case "w":
			// Failure transition from w1: abort upon recovery.
			ct.state = StateWait
			c.abort(txn, ct, CauseFailure)
			out[txn] = DecisionAbort
		case "p":
			// Failure transition from p1: commit upon recovery.
			ct.state = StatePrepared
			c.commit(txn, ct, CauseFailure)
			out[txn] = DecisionCommit
		case "a":
			// Re-announce so cohorts blocked on the decision learn it.
			ct.state = StateAborted
			c.abort(txn, ct, CauseFailure)
			out[txn] = DecisionAbort
		case "c":
			ct.state = StateCommitted
			c.commit(txn, ct, CauseFailure)
			out[txn] = DecisionCommit
		}
	}
	return out
}
