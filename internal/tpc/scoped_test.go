package tpc

import (
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet" //lint:allow rt-boundary test drives the simulator harness directly
)

// scopedGroup builds a group with ScopedParticipants on.
func scopedGroup(t *testing.T, n int) *Group {
	t.Helper()
	g, err := NewGroup(1, n, Config{Protocol: ThreePhase, ScopedParticipants: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestScopedCommitSpansOnlyParticipants: a BeginWith over two of four
// cohorts commits on those two while the untouched cohorts never hear of
// the transaction (their FSMs stay in q with no decision).
func TestScopedCommitSpansOnlyParticipants(t *testing.T) {
	g := scopedGroup(t, 4)
	in := g.CohortIDs[:2]
	out := g.CohortIDs[2:]
	if err := g.Coordinator.BeginWith("t1", in); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().Run(0)
	if d := g.Coordinator.Decision("t1"); d != DecisionCommit {
		t.Fatalf("coordinator decision = %v, want commit", d)
	}
	for _, id := range in {
		if d := g.Cohorts[id].Decision("t1"); d != DecisionCommit {
			t.Errorf("participant %d decision = %v, want commit", id, d)
		}
	}
	for _, id := range out {
		if d := g.Cohorts[id].Decision("t1"); d != DecisionNone {
			t.Errorf("non-participant %d decision = %v, want none", id, d)
		}
		if s := g.Cohorts[id].StateOf("t1"); s != StateInitial {
			t.Errorf("non-participant %d state = %v, want q", id, s)
		}
	}
}

// TestScopedEmptyParticipantsCommitsImmediately: a transaction that
// touched no site commits without any protocol traffic.
func TestScopedEmptyParticipantsCommitsImmediately(t *testing.T) {
	g := scopedGroup(t, 3)
	if err := g.Coordinator.BeginWith("t1", []simnet.NodeID{}); err != nil {
		t.Fatal(err)
	}
	if d := g.Coordinator.Decision("t1"); d != DecisionCommit {
		t.Fatalf("empty-participant decision = %v, want immediate commit", d)
	}
	for id, h := range g.Cohorts {
		if d := h.Decision("t1"); d != DecisionNone {
			t.Errorf("cohort %d decision = %v, want none", id, d)
		}
	}
}

// TestScopedTerminationRunsOverParticipants: the coordinator crashes
// mid-prepare; the scoped participants' termination protocol must reach a
// consistent decision among themselves, without waiting on (or consulting)
// the untouched cohorts.
func TestScopedTerminationRunsOverParticipants(t *testing.T) {
	sched := sim.NewScheduler(7)
	net := simnet.New(sched, simnet.DefaultOptions())
	g, err := NewGroupOn(net, 4, Config{Protocol: ThreePhase, ScopedParticipants: true})
	if err != nil {
		t.Fatal(err)
	}
	in := g.CohortIDs[:3]
	if err := g.Coordinator.BeginWith("t1", in); err != nil {
		t.Fatal(err)
	}
	// Crash the coordinator as soon as it has sent the prepares (its FSM
	// reached p), forcing the cohorts into the termination protocol.
	sched.After(1, func() {
		var crash func()
		crash = func() {
			if g.Coordinator.StateOf("t1") == StatePrepared {
				g.Net.Crash(g.CoordID)
				return
			}
			sched.After(1, crash)
		}
		crash()
	})
	sched.Run(0)

	decided := map[Decision]bool{}
	for _, id := range in {
		d := g.Cohorts[id].Decision("t1")
		if d == DecisionNone {
			t.Errorf("participant %d never decided (termination stalled)", id)
		}
		decided[d] = true
	}
	if decided[DecisionCommit] && decided[DecisionAbort] {
		t.Error("scoped termination split the decision")
	}
	if d := g.Cohorts[g.CohortIDs[3]].Decision("t1"); d != DecisionNone {
		t.Errorf("non-participant decided %v, want none", d)
	}
}

// TestGroupCommitSyncPoints pins the divergence-rule fsync placement on
// the happy 3PC path with group commit enabled on every site: the
// coordinator syncs exactly once (at p1, before the prepares), each
// cohort exactly twice (w2 before its vote, p2 before its ack) — and the
// commit dissemination itself rides on recovery-from-p, costing nothing.
func TestGroupCommitSyncPoints(t *testing.T) {
	g, err := NewGroup(3, 3, Config{Protocol: ThreePhase})
	if err != nil {
		t.Fatal(err)
	}
	stores := map[simnet.NodeID]int{}
	for _, id := range append([]simnet.NodeID{g.CoordID}, g.CohortIDs...) {
		st, err := g.Net.Store(id)
		if err != nil {
			t.Fatal(err)
		}
		st.SetGroupCommit(true)
		stores[id] = 0
	}
	if err := g.Run("t1"); err != nil {
		t.Fatal(err)
	}
	if d := g.Coordinator.Decision("t1"); d != DecisionCommit {
		t.Fatalf("decision = %v, want commit", d)
	}
	for id := range stores {
		st, _ := g.Net.Store(id)
		want := 2
		if id == g.CoordID {
			want = 1
		}
		if got := st.Syncs(); got != want {
			t.Errorf("site %d syncs = %d, want %d", id, got, want)
		}
	}
}

// TestGroupCommitCoordinatorCrashUnsyncedPrepared is the divergence the
// mandatory p1 sync prevents, run as a what-if: with group commit ON the
// coordinator's p record is synced before any prepare leaves, so crashing
// it right after the prepares and recovering must re-derive COMMIT — the
// same outcome the cohorts' termination protocol reaches.
func TestGroupCommitCoordinatorCrashUnsyncedPrepared(t *testing.T) {
	sched := sim.NewScheduler(11)
	net := simnet.New(sched, simnet.DefaultOptions())
	g, err := NewGroupOn(net, 3, Config{Protocol: ThreePhase})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range append([]simnet.NodeID{g.CoordID}, g.CohortIDs...) {
		st, err := net.Store(id)
		if err != nil {
			t.Fatal(err)
		}
		st.SetGroupCommit(true)
	}
	if err := g.Coordinator.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	var crash func()
	crash = func() {
		if g.Coordinator.StateOf("t1") == StatePrepared {
			net.Crash(g.CoordID)
			// Recover well after the cohorts' termination settled.
			sched.After(200, func() {
				_ = net.Recover(g.CoordID)
				g.Coordinator.RecoverAll()
			})
			return
		}
		sched.After(1, crash)
	}
	sched.After(1, crash)
	sched.Run(0)

	// The crash destroyed the coordinator's unsynced batch window — but p
	// was forced before the prepares, so recovery commits.
	if d := g.Coordinator.Decision("t1"); d != DecisionCommit {
		t.Fatalf("recovered coordinator decision = %v, want commit", d)
	}
	o := g.Outcome("t1")
	if !o.Atomic() {
		t.Fatalf("atomicity split: %+v", o)
	}
	for id, d := range o.Cohorts {
		if d != DecisionCommit {
			t.Errorf("cohort %d = %v, want commit", id, d)
		}
	}
}
