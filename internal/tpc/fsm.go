package tpc

// This file makes the paper's Fig. 3.2 an explicit artifact: the allowed
// transitions of the coordinator and cohort FSMs — message, timeout, and
// failure transitions — as data. The engines expose a Trace hook, and the
// tests drive randomized runs (including crashes and recoveries) checking
// that every observed transition is in the table, i.e. the executable
// engine is a refinement of the published automaton.

// Role distinguishes the two automata of Fig. 3.2.
type Role int

// Roles.
const (
	RoleCoordinator Role = iota + 1
	RoleCohort
)

// String names the role.
func (r Role) String() string {
	if r == RoleCoordinator {
		return "coordinator"
	}
	return "cohort"
}

// Cause classifies what fired a transition.
type Cause string

// Causes.
const (
	CauseMessage   Cause = "message"     // solid arrows in Fig. 3.2
	CauseTimeout   Cause = "timeout"     // timeout transitions
	CauseFailure   Cause = "failure"     // failure (recovery) transitions
	CauseTerminate Cause = "termination" // termination-protocol decision
)

// Transition is one arrow of Fig. 3.2.
type Transition struct {
	Role  Role
	From  State
	To    State
	Cause Cause
}

// TraceFunc observes engine transitions.
type TraceFunc func(txn string, tr Transition)

// Fig32Table returns the full transition relation of the paper's Fig. 3.2
// (with the termination protocol's decisions subsuming the cohort timeout
// arrows — the bare timeout transitions are the NaiveTimeouts special
// case and map to the same pairs).
func Fig32Table() []Transition {
	c, h := RoleCoordinator, RoleCohort
	return []Transition{
		// Coordinator, message-driven path: q1 → w1 → p1 → c1, aborts.
		{c, StateInitial, StateWait, CauseMessage},       // send commit requests
		{c, StateWait, StatePrepared, CauseMessage},      // all agreed → prepare
		{c, StateWait, StateAborted, CauseMessage},       // a cohort voted abort
		{c, StatePrepared, StateCommitted, CauseMessage}, // all acks → commit
		// Coordinator timeouts.
		{c, StateWait, StateAborted, CauseTimeout},     // missing votes
		{c, StatePrepared, StateAborted, CauseTimeout}, // missing acks
		// Coordinator failure transitions (on recovery).
		{c, StateInitial, StateAborted, CauseFailure},
		{c, StateWait, StateAborted, CauseFailure},
		{c, StatePrepared, StateCommitted, CauseFailure},

		// Cohort, message-driven path: q2 → w2 → p2 → c2, aborts.
		{h, StateInitial, StateWait, CauseMessage},       // voted yes
		{h, StateInitial, StateAborted, CauseMessage},    // voted no
		{h, StateWait, StatePrepared, CauseMessage},      // prepare received
		{h, StateWait, StateAborted, CauseMessage},       // abort received
		{h, StatePrepared, StateCommitted, CauseMessage}, // commit received
		{h, StatePrepared, StateAborted, CauseMessage},   // abort received in p2
		// Cohort timeout transitions (naive) / termination decisions.
		{h, StateInitial, StateAborted, CauseTimeout},
		{h, StateWait, StateAborted, CauseTimeout},
		{h, StatePrepared, StateCommitted, CauseTimeout},
		{h, StateInitial, StateAborted, CauseTerminate},
		{h, StateWait, StateAborted, CauseTerminate},
		{h, StateWait, StateCommitted, CauseTerminate},
		{h, StatePrepared, StateCommitted, CauseTerminate},
		{h, StatePrepared, StateAborted, CauseTerminate},
		// Cohort failure transitions (on recovery).
		{h, StateInitial, StateAborted, CauseFailure},
		{h, StateWait, StateAborted, CauseFailure},
		{h, StatePrepared, StateCommitted, CauseFailure},
	}
}

// Allowed reports whether tr appears in Fig. 3.2.
func Allowed(tr Transition) bool {
	for _, t := range Fig32Table() {
		if t == tr {
			return true
		}
	}
	return false
}
