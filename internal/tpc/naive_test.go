package tpc

import (
	"testing"

	"speccat/internal/sim"
)

// TestNaiveTimeoutsAbortInW2 exercises the bare Fig. 3.2 timeout
// transitions in the executable engine: a coordinator crash in w1 makes
// every cohort abort via the w2 timeout transition, no termination
// protocol involved.
func TestNaiveTimeoutsAbortInW2(t *testing.T) {
	g := mustGroup(t, 21, 3, Config{NaiveTimeouts: true})
	if err := g.Coordinator.Begin("t"); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().RunUntil(1)
	if err := g.Net.Crash(g.CoordID); err != nil {
		t.Fatal(err)
	}
	g.Net.Scheduler().Run(0)
	for id, h := range g.Cohorts {
		if h.Decision("t") != DecisionAbort {
			t.Fatalf("cohort %d = %s, want abort", id, h.Decision("t"))
		}
	}
}

// TestNaiveTimeoutsCommitInP2: crash the coordinator after all cohorts
// prepared — p2 timeout transitions commit, consistent with the
// coordinator's p1 failure transition.
func TestNaiveTimeoutsCommitInP2(t *testing.T) {
	g := mustGroup(t, 22, 3, Config{NaiveTimeouts: true})
	if err := g.Coordinator.Begin("t"); err != nil {
		t.Fatal(err)
	}
	sched := g.Net.Scheduler()
	crashed := false
	for i := 0; i < 100000 && !crashed; i++ {
		if !sched.Step() {
			break
		}
		all := true
		for _, h := range g.Cohorts {
			if h.StateOf("t") != StatePrepared {
				all = false
			}
		}
		if all {
			if err := g.Net.Crash(g.CoordID); err != nil {
				t.Fatal(err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("never reached all-prepared")
	}
	sched.Run(0)
	for id, h := range g.Cohorts {
		if h.Decision("t") != DecisionCommit {
			t.Fatalf("cohort %d = %s, want commit", id, h.Decision("t"))
		}
	}
	if err := g.Net.Recover(g.CoordID); err != nil {
		t.Fatal(err)
	}
	if got := g.Coordinator.RecoverAll(); got["t"] != DecisionCommit {
		t.Fatalf("recovered coordinator = %s", got["t"])
	}
}

// TestNaiveTimeoutsSweepStaysAtomicInEngine: in the executable engine a
// site's message fan-out is one atomic event (the thesis's assumption 3),
// so — matching the model checker's lockstep verdict — the naive
// transitions never violate atomicity here, at any crash point.
func TestNaiveTimeoutsSweepStaysAtomicInEngine(t *testing.T) {
	for crashAt := sim.Time(0); crashAt <= 120; crashAt += 5 {
		g := mustGroup(t, 23, 3, Config{NaiveTimeouts: true})
		if err := g.Coordinator.Begin("t"); err != nil {
			t.Fatal(err)
		}
		g.Net.Scheduler().RunUntil(crashAt)
		_ = g.Net.Crash(g.CoordID)
		g.Net.Scheduler().Run(0)
		o := g.Outcome("t")
		if !o.Atomic() {
			t.Fatalf("crashAt=%d: naive engine violated atomicity: %+v", crashAt, o)
		}
	}
}
