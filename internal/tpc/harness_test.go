package tpc

import "testing"

// mustGroup is the test-side shim for NewGroup's error return.
func mustGroup(t testing.TB, seed int64, n int, cfg Config) *Group {
	t.Helper()
	g, err := NewGroup(seed, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
