package snapshot

import (
	"strconv"
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

// tokenApp is a toy application: nodes pass tokens around; the global
// token count is invariant, so a consistent snapshot must account for
// every token either in a local state or on a channel.
type tokenApp struct {
	net    *simnet.Network
	id     simnet.NodeID
	tokens int
	snap   *Node
}

const kindToken = "app.token"

func (a *tokenApp) handler(m simnet.Message) {
	// Snapshot control traffic first.
	if a.snap.HandleMessage(m) {
		return
	}
	if m.Kind == kindToken {
		cnt := m.Payload.(int)
		// Record in-flight payloads for open channel recordings.
		a.snap.Intercept(m.From, strconv.Itoa(cnt))
		a.tokens += cnt
	}
}

func (a *tokenApp) sendToken(to simnet.NodeID) {
	if a.tokens <= 0 {
		return
	}
	a.tokens--
	_ = a.net.Send(a.id, to, kindToken, 1)
}

func setupTokens(seed int64, n, tokensEach int) (*simnet.Network, map[simnet.NodeID]*tokenApp) {
	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, simnet.DefaultOptions())
	apps := map[simnet.NodeID]*tokenApp{}
	for i := 1; i <= n; i++ {
		id := simnet.NodeID(i)
		app := &tokenApp{net: net, id: id, tokens: tokensEach}
		apps[id] = app
		net.AddNode(id, nil)
	}
	for id, app := range apps {
		app.snap = New(net, id, func() string { return strconv.Itoa(app.tokens) })
		app := app
		if err := net.SetHandler(id, app.handler); err != nil {
			panic(err)
		}
	}
	return net, apps
}

func snapshotTotal(gs *GlobalState) int {
	total := 0
	for _, s := range gs.States {
		n, _ := strconv.Atoi(s)
		total += n
	}
	for _, tos := range gs.Channels {
		for _, msgs := range tos {
			for _, m := range msgs {
				n, _ := strconv.Atoi(m)
				total += n
			}
		}
	}
	return total
}

func TestSnapshotQuiescent(t *testing.T) {
	net, apps := setupTokens(1, 3, 5)
	var got *GlobalState
	apps[1].snap.OnComplete = func(gs *GlobalState) { got = gs }
	if _, err := apps[1].snap.Start(); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	if got == nil {
		t.Fatal("snapshot did not complete")
	}
	if len(got.States) != 3 {
		t.Fatalf("states = %v", got.States)
	}
	if total := snapshotTotal(got); total != 15 {
		t.Fatalf("token total = %d, want 15", total)
	}
}

func TestSnapshotConservationUnderTraffic(t *testing.T) {
	// Tokens move while the snapshot runs; the recorded global state must
	// still conserve the total (consistency: sends recorded for all
	// recorded receipts).
	for seed := int64(0); seed < 20; seed++ {
		net, apps := setupTokens(seed, 4, 10)
		sched := net.Scheduler()
		r := sched.Rand()
		// Continuous traffic: each tick, a random node sends a token.
		var pump func()
		stop := false
		pump = func() {
			if stop {
				return
			}
			from := simnet.NodeID(1 + r.Intn(4))
			to := simnet.NodeID(1 + r.Intn(4))
			if from != to {
				apps[from].sendToken(to)
			}
			sched.After(2, pump)
		}
		sched.After(0, pump)

		var got *GlobalState
		apps[2].snap.OnComplete = func(gs *GlobalState) { got = gs }
		sched.At(25, func() {
			if _, err := apps[2].snap.Start(); err != nil {
				t.Error(err)
			}
		})
		sched.At(500, func() { stop = true })
		sched.Run(0)
		if got == nil {
			t.Fatalf("seed %d: snapshot incomplete", seed)
		}
		if total := snapshotTotal(got); total != 40 {
			t.Fatalf("seed %d: snapshot total = %d, want 40", seed, total)
		}
	}
}

func TestSnapshotStateVectorRules(t *testing.T) {
	// The decision-making check: a vector with commit and abort is
	// flagged; commit-only is fine.
	gs := &GlobalState{States: map[simnet.NodeID]string{1: "commit", 2: "abort", 3: "wait"}}
	if !gs.HasBoth("commit", "abort") {
		t.Fatal("commit+abort not flagged")
	}
	gs2 := &GlobalState{States: map[simnet.NodeID]string{1: "commit", 2: "commit"}}
	if gs2.HasBoth("commit", "abort") {
		t.Fatal("false flag")
	}
}

func TestSnapshotLocalStatesSorted(t *testing.T) {
	gs := &GlobalState{States: map[simnet.NodeID]string{3: "c", 1: "a", 2: "b"}}
	ls := gs.LocalStates()
	if len(ls) != 3 || ls[0] != "a" || ls[1] != "b" || ls[2] != "c" {
		t.Fatalf("LocalStates = %v", ls)
	}
}

func TestTwoConcurrentSnapshots(t *testing.T) {
	net, apps := setupTokens(7, 3, 5)
	var got1, got2 *GlobalState
	apps[1].snap.OnComplete = func(gs *GlobalState) { got1 = gs }
	apps[3].snap.OnComplete = func(gs *GlobalState) { got2 = gs }
	if _, err := apps[1].snap.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := apps[3].snap.Start(); err != nil {
		t.Fatal(err)
	}
	net.Scheduler().Run(0)
	if got1 == nil || got2 == nil {
		t.Fatal("snapshots incomplete")
	}
	if snapshotTotal(got1) != 15 || snapshotTotal(got2) != 15 {
		t.Fatalf("totals = %d, %d", snapshotTotal(got1), snapshotTotal(got2))
	}
}
