// Package snapshot implements the snapshot protocol of Section 3.5.1
// (building block 7): assembling a consistent global state — the vector of
// all local states plus in-flight channel contents — using the classic
// Chandy-Lamport marker algorithm over the network's FIFO channels. The
// resulting global state is what the decision-making protocol inspects for
// the non-blocking rules ("its state vector doesn't have both a commit
// state and an abort state"), and consistency here is exactly the paper's
// definition: every received message recorded in the state also has its
// send recorded.
package snapshot

import (
	"fmt"
	"sort"

	"speccat/internal/simnet"
)

// Wire kinds.
const (
	kindMarker = "snapshot.marker"
	kindReport = "snapshot.report"
)

// marker starts/ends channel recording.
type marker struct {
	ID        string
	Initiator simnet.NodeID
}

// report carries one node's recorded slice of the global state back to
// the initiator.
type report struct {
	ID    string
	Node  simnet.NodeID
	State string
	// Channels maps source node -> messages recorded in flight on the
	// channel source→this node.
	Channels map[simnet.NodeID][]string
}

// GlobalState is an assembled snapshot.
type GlobalState struct {
	ID     string
	States map[simnet.NodeID]string
	// Channels maps [from][to] -> in-flight message payloads.
	Channels map[simnet.NodeID]map[simnet.NodeID][]string
}

// LocalStates returns the state vector sorted by node ID.
func (g *GlobalState) LocalStates() []string {
	ids := make([]int, 0, len(g.States))
	for id := range g.States {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.States[simnet.NodeID(id)]
	}
	return out
}

// HasBoth reports whether the state vector contains both of the given
// states — the decision-making protocol's forbidden configuration when
// called with ("commit", "abort").
func (g *GlobalState) HasBoth(a, b string) bool {
	hasA, hasB := false, false
	for _, s := range g.States {
		if s == a {
			hasA = true
		}
		if s == b {
			hasB = true
		}
	}
	return hasA && hasB
}

// snapState is per-snapshot bookkeeping on one node.
type snapState struct {
	recorded    bool
	state       string
	initiator   simnet.NodeID
	recording   map[simnet.NodeID]bool
	chanMsgs    map[simnet.NodeID][]string
	markersFrom map[simnet.NodeID]bool
	reported    bool
}

// Node is one site's snapshot engine.
type Node struct {
	net *simnet.Network
	id  simnet.NodeID
	// State returns the node's current local state encoding; the protocol
	// calls it at recording time.
	State func() string
	snaps map[string]*snapState
	// collection on the initiator:
	pending map[string]*GlobalState
	// OnComplete fires on the initiator when all reports are in.
	OnComplete func(gs *GlobalState)
	nextSeq    int
}

// New creates a snapshot node. state supplies the local state encoding.
func New(net *simnet.Network, id simnet.NodeID, state func() string) *Node {
	return &Node{
		net: net, id: id, State: state,
		snaps:   map[string]*snapState{},
		pending: map[string]*GlobalState{},
	}
}

// Start initiates a snapshot and returns its ID.
func (n *Node) Start() (string, error) {
	n.nextSeq++
	id := fmt.Sprintf("snap%d.%d", n.id, n.nextSeq)
	n.pending[id] = &GlobalState{
		ID:       id,
		States:   map[simnet.NodeID]string{},
		Channels: map[simnet.NodeID]map[simnet.NodeID][]string{},
	}
	if err := n.record(id, n.id); err != nil {
		return "", err
	}
	return id, nil
}

// record captures the local state and emits markers (first marker rule).
func (n *Node) record(id string, initiator simnet.NodeID) error {
	ss := n.snap(id)
	if ss.recorded {
		return nil
	}
	ss.recorded = true
	ss.initiator = initiator
	ss.state = n.State()
	// Begin recording every incoming channel (except self).
	for _, peer := range n.net.Nodes() {
		if peer == n.id {
			continue
		}
		ss.recording[peer] = true
	}
	// Send markers on all outgoing channels.
	for _, peer := range n.net.Nodes() {
		if peer == n.id {
			continue
		}
		if err := n.net.Send(n.id, peer, kindMarker, marker{ID: id, Initiator: initiator}); err != nil {
			return fmt.Errorf("snapshot %s: %w", id, err)
		}
	}
	n.maybeFinish(id)
	return nil
}

func (n *Node) snap(id string) *snapState {
	ss, ok := n.snaps[id]
	if !ok {
		ss = &snapState{
			recording:   map[simnet.NodeID]bool{},
			chanMsgs:    map[simnet.NodeID][]string{},
			markersFrom: map[simnet.NodeID]bool{},
		}
		n.snaps[id] = ss
	}
	return ss
}

// Intercept must be called for every application message the node
// receives; it records in-flight payloads for channels still being
// recorded. payload is the message's state-relevant encoding.
func (n *Node) Intercept(from simnet.NodeID, payload string) {
	for _, ss := range n.snaps {
		if ss.recorded && ss.recording[from] {
			ss.chanMsgs[from] = append(ss.chanMsgs[from], payload)
		}
	}
}

// HandleMessage consumes snapshot traffic; returns true when consumed.
func (n *Node) HandleMessage(m simnet.Message) bool {
	switch m.Kind {
	case kindMarker:
		mk, ok := m.Payload.(marker)
		if !ok {
			return false
		}
		ss := n.snap(mk.ID)
		if !ss.recorded {
			// First marker: record state; the channel it arrived on is
			// empty (FIFO: everything before the marker was delivered).
			if err := n.record(mk.ID, mk.Initiator); err != nil {
				return true
			}
		}
		// Marker closes recording of the channel it arrived on.
		ss.recording[m.From] = false
		ss.markersFrom[m.From] = true
		n.maybeFinish(mk.ID)
		return true
	case kindReport:
		rp, ok := m.Payload.(report)
		if !ok {
			return false
		}
		gs, ok := n.pending[rp.ID]
		if !ok {
			return true
		}
		n.merge(gs, rp)
		return true
	default:
		return false
	}
}

// maybeFinish sends the node's report once markers arrived on every
// incoming channel.
func (n *Node) maybeFinish(id string) {
	ss := n.snap(id)
	if !ss.recorded || ss.reported {
		return
	}
	for _, peer := range n.net.Nodes() {
		if peer == n.id {
			continue
		}
		if !ss.markersFrom[peer] && n.net.Up(peer) {
			return
		}
	}
	ss.reported = true
	rp := report{ID: id, Node: n.id, State: ss.state, Channels: ss.chanMsgs}
	if ss.initiator == n.id {
		if gs, ok := n.pending[id]; ok {
			n.merge(gs, rp)
		}
		return
	}
	_ = n.net.Send(n.id, ss.initiator, kindReport, rp)
}

// merge folds one report into the assembling global state; completion
// fires when every operational node has reported.
func (n *Node) merge(gs *GlobalState, rp report) {
	gs.States[rp.Node] = rp.State
	for from, msgs := range rp.Channels {
		if gs.Channels[from] == nil {
			gs.Channels[from] = map[simnet.NodeID][]string{}
		}
		gs.Channels[from][rp.Node] = append(gs.Channels[from][rp.Node], msgs...)
	}
	for _, peer := range n.net.Nodes() {
		if _, ok := gs.States[peer]; !ok && n.net.Up(peer) {
			return
		}
	}
	delete(n.pending, gs.ID)
	if n.OnComplete != nil {
		n.OnComplete(gs)
	}
}

// Group builds one snapshot node per network node with the given state
// providers, and installs handlers.
func Group(net *simnet.Network, states map[simnet.NodeID]func() string) map[simnet.NodeID]*Node {
	ns := map[simnet.NodeID]*Node{}
	for _, id := range net.Nodes() {
		ns[id] = New(net, id, states[id])
	}
	for id, nd := range ns {
		nd := nd
		if err := net.SetHandler(id, func(m simnet.Message) { nd.HandleMessage(m) }); err != nil {
			//lint:allow nopanic nodes came from net.Nodes() so SetHandler cannot fail; a panic here is a wiring bug in this package
			panic(fmt.Sprintf("snapshot: %v", err))
		}
	}
	return ns
}
