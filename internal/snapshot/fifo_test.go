package snapshot

import (
	"strconv"
	"testing"

	"speccat/internal/sim"
	"speccat/internal/simnet"
)

// setupTokensWith is setupTokens with custom network options.
func setupTokensWith(seed int64, n, tokensEach int, opts simnet.Options) (*simnet.Network, map[simnet.NodeID]*tokenApp) {
	sched := sim.NewScheduler(seed)
	net := simnet.New(sched, opts)
	apps := map[simnet.NodeID]*tokenApp{}
	for i := 1; i <= n; i++ {
		id := simnet.NodeID(i)
		app := &tokenApp{net: net, id: id, tokens: tokensEach}
		apps[id] = app
		net.AddNode(id, nil)
	}
	for id, app := range apps {
		app.snap = New(net, id, func() string { return strconv.Itoa(app.tokens) })
		app := app
		if err := net.SetHandler(id, app.handler); err != nil {
			panic(err)
		}
	}
	return net, apps
}

// TestSnapshotRequiresFIFO violates the FIFO assumption (the Chandy-
// Lamport marker algorithm's prerequisite, the paper's assumption 1) and
// shows the recorded global state can lose or duplicate tokens: a token
// sent *before* the marker on a channel can overtake it and be excluded
// from both the sender's and the channel's recorded state. This is the
// E10 evidence that assumption 1 is load-bearing for the snapshot block.
func TestSnapshotRequiresFIFO(t *testing.T) {
	const total = 4 * 10
	violated := false
	for seed := int64(0); seed < 60 && !violated; seed++ {
		net, apps := setupTokensWith(seed, 4, 10,
			simnet.Options{MinDelay: 1, MaxDelay: 40, FIFO: false})
		sched := net.Scheduler()
		r := sched.Rand()
		stop := false
		var pump func()
		pump = func() {
			if stop {
				return
			}
			from := simnet.NodeID(1 + r.Intn(4))
			to := simnet.NodeID(1 + r.Intn(4))
			if from != to {
				apps[from].sendToken(to)
			}
			sched.After(1, pump)
		}
		sched.After(0, pump)

		var got *GlobalState
		apps[2].snap.OnComplete = func(gs *GlobalState) { got = gs }
		sched.At(20, func() {
			if _, err := apps[2].snap.Start(); err != nil {
				t.Error(err)
			}
		})
		sched.At(600, func() { stop = true })
		sched.Run(0)
		if got != nil && snapshotTotal(got) != total {
			violated = true
		}
	}
	if !violated {
		t.Fatal("no seed violated conservation without FIFO — the test has lost its bite")
	}
}
