package kvstore

import (
	"errors"
	"testing"

	"speccat/internal/stable"
)

func open(t *testing.T) (*Store, *stable.Store) {
	t.Helper()
	st := stable.NewStore()
	s, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

func TestBasicTransaction(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Put("t1", "x", "1"))
	v, err := s.Get("t1", "x")
	mustOK(t, err)
	if v != "1" {
		t.Fatalf("Get = %q", v)
	}
	mustOK(t, s.Commit("t1"))
	if s.Read("x") != "1" {
		t.Fatalf("committed read = %q", s.Read("x"))
	}
	if s.OpenTxns() != 0 {
		t.Fatal("transaction still open")
	}
}

func TestAbortRollsBack(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t0"))
	mustOK(t, s.Put("t0", "x", "init"))
	mustOK(t, s.Commit("t0"))
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Put("t1", "x", "dirty"))
	mustOK(t, s.Abort("t1"))
	if s.Read("x") != "init" {
		t.Fatalf("abort did not roll back: %q", s.Read("x"))
	}
}

func TestConflictDetected(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("a"))
	mustOK(t, s.Begin("b"))
	mustOK(t, s.Put("a", "x", "1"))
	if _, err := s.Get("b", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// After a commits, b can proceed... but queued request was registered;
	// b retries.
	mustOK(t, s.Commit("a"))
}

func TestSharedReadsOK(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("a"))
	mustOK(t, s.Begin("b"))
	if _, err := s.Get("a", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "x"); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryKeepsCommitted(t *testing.T) {
	s, st := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Put("t1", "x", "durable"))
	mustOK(t, s.Commit("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.Put("t2", "x", "volatile"))
	// Crash: reopen from the same stable store.
	s2, err := Open(st)
	mustOK(t, err)
	if s2.Read("x") != "durable" {
		t.Fatalf("recovered = %q", s2.Read("x"))
	}
}

func TestUnknownTxnErrors(t *testing.T) {
	s, _ := open(t)
	if _, err := s.Get("ghost", "x"); !errors.Is(err, ErrNoTxn) {
		t.Fatal(err)
	}
	if err := s.Put("ghost", "x", "1"); !errors.Is(err, ErrNoTxn) {
		t.Fatal(err)
	}
	if err := s.Commit("ghost"); !errors.Is(err, ErrNoTxn) {
		t.Fatal(err)
	}
	if err := s.Abort("ghost"); !errors.Is(err, ErrNoTxn) {
		t.Fatal(err)
	}
}

func TestSnapshotExport(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t"))
	mustOK(t, s.Put("t", "a", "1"))
	mustOK(t, s.Commit("t"))
	snap := s.Snapshot()
	if snap["a"] != "1" {
		t.Fatalf("snapshot = %v", snap)
	}
	snap["a"] = "tampered"
	if s.Read("a") != "1" {
		t.Fatal("snapshot aliases store")
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
