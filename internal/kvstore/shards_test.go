package kvstore

import (
	"fmt"
	"testing"

	"speccat/internal/stable"
)

func openShards(t *testing.T, n int) (*Shards, *stable.Store) {
	t.Helper()
	st := stable.NewStore()
	s, err := OpenShards(st, n)
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

// keysAcrossShards returns keys guaranteed to land on distinct shards of
// an n-way store (skipped if n=1 cannot be spread, which never happens
// for the counts used here).
func keysAcrossShards(t *testing.T, n, want int) []string {
	t.Helper()
	seen := map[int]string{}
	for i := 0; len(seen) < want && i < 10000; i++ {
		k := fmt.Sprintf("key%04d", i)
		sh := ShardOf(k, n)
		if _, ok := seen[sh]; !ok {
			seen[sh] = k
		}
	}
	if len(seen) < want {
		t.Fatalf("could not spread %d keys over %d shards", want, n)
	}
	out := make([]string, 0, want)
	for sh := 0; sh < n && len(out) < want; sh++ {
		if k, ok := seen[sh]; ok {
			out = append(out, k)
		}
	}
	return out
}

func TestShardOfStableAndInRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("acct%03d", i)
			got := ShardOf(k, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", k, n, got)
			}
			if again := ShardOf(k, n); again != got {
				t.Fatalf("ShardOf(%q,%d) unstable: %d then %d", k, n, got, again)
			}
		}
	}
}

func TestShardsCrossShardCommit(t *testing.T) {
	s, _ := openShards(t, 4)
	keys := keysAcrossShards(t, 4, 3)
	mustOK(t, s.Begin("t1"))
	for i, k := range keys {
		mustOK(t, s.Put("t1", k, fmt.Sprintf("v%d", i)))
	}
	if got := len(s.TouchedShards("t1")); got != 3 {
		t.Fatalf("touched %d shards, want 3", got)
	}
	mustOK(t, s.Commit("t1"))
	for i, k := range keys {
		if got := s.Read(k); got != fmt.Sprintf("v%d", i) {
			t.Errorf("Read(%q) = %q", k, got)
		}
	}
	if s.OpenTxns() != 0 {
		t.Error("transaction still open after commit")
	}
}

// TestShardsAbortUndoesOnlyOwnPartition is the UndoOwnedInto pin: two
// transactions on different shards of one shared log; aborting one must
// not clobber the other shard's committed update, and each shard's undo
// must skip foreign keys in the shared record stream.
func TestShardsAbortUndoesOnlyOwnPartition(t *testing.T) {
	s, _ := openShards(t, 4)
	keys := keysAcrossShards(t, 4, 2)
	a, b := keys[0], keys[1]

	mustOK(t, s.Begin("keep"))
	mustOK(t, s.Put("keep", a, "committed"))
	mustOK(t, s.Commit("keep"))

	mustOK(t, s.Begin("drop"))
	mustOK(t, s.Put("drop", b, "dirty"))
	mustOK(t, s.Put("drop", a, "overwrite"))
	mustOK(t, s.Abort("drop"))

	if got := s.Read(a); got != "committed" {
		t.Errorf("Read(%q) = %q, want pre-abort committed value", a, got)
	}
	if got := s.Read(b); got != "" {
		t.Errorf("Read(%q) = %q, want empty after abort", b, got)
	}
}

// TestShardsRecoverFromSharedLog proves each shard re-adopts exactly its
// partition from the one shared stable store after a crash: committed
// updates reappear in their owning shard, in-flight updates vanish.
func TestShardsRecoverFromSharedLog(t *testing.T) {
	s, st := openShards(t, 4)
	keys := keysAcrossShards(t, 4, 4)

	mustOK(t, s.Begin("done"))
	for _, k := range keys {
		mustOK(t, s.Put("done", k, "durable"))
	}
	mustOK(t, s.Commit("done"))
	mustOK(t, s.Begin("torn"))
	mustOK(t, s.Put("torn", keys[0], "lost"))
	// crash: volatile Shards dropped, stable store survives

	r, err := OpenShards(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got := r.Read(k); got != "durable" {
			t.Errorf("recovered Read(%q) = %q, want %q", k, got, "durable")
		}
		sh := r.Shard(ShardOf(k, 4))
		if got := sh.Read(k); got != "durable" {
			t.Errorf("owning shard lost %q: %q", k, got)
		}
		for i := 0; i < 4; i++ {
			if i != ShardOf(k, 4) && r.Shard(i).Read(k) != "" {
				t.Errorf("shard %d adopted foreign key %q", i, k)
			}
		}
	}
	snap := r.Snapshot()
	if len(snap) != len(keys) {
		t.Errorf("merged snapshot has %d keys, want %d", len(snap), len(keys))
	}
}

// TestShardsLockIndependence: conflicting ops on different shards never
// block each other; the same key on the same shard still conflicts.
func TestShardsLockIndependence(t *testing.T) {
	s, _ := openShards(t, 4)
	keys := keysAcrossShards(t, 4, 2)
	mustOK(t, s.Begin("a"))
	mustOK(t, s.Begin("b"))
	mustOK(t, s.Put("a", keys[0], "1"))
	mustOK(t, s.Put("b", keys[1], "2")) // different shard: no conflict
	if err := s.Put("b", keys[0], "3"); err == nil {
		t.Error("same-shard same-key write did not conflict")
	}
	mustOK(t, s.Commit("a"))
	mustOK(t, s.Commit("b"))
}

// TestShardsCommutativeOps routes the typed commutative verbs through
// the shard layer (they batch best under group commit, so the routing
// must preserve their logical WAL records).
func TestShardsCommutativeOps(t *testing.T) {
	s, st := openShards(t, 2)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Increment("t1", "ctr", "5"))
	mustOK(t, s.Increment("t1", "ctr", "-2"))
	mustOK(t, s.Append("t1", "bag", "x"))
	mustOK(t, s.SetInsert("t1", "set", "m"))
	mustOK(t, s.Commit("t1"))
	if got := s.Read("ctr"); got != "3" {
		t.Errorf("ctr = %q, want 3", got)
	}
	r, err := OpenShards(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Read("ctr"); got != "3" {
		t.Errorf("recovered ctr = %q, want 3", got)
	}
}

// TestShardsLazyBegin: a transaction that only reads one shard leaves the
// other shards' WAL untouched and commit fans out over just that shard.
func TestShardsLazyBegin(t *testing.T) {
	s, _ := openShards(t, 8)
	mustOK(t, s.Begin("t1"))
	if got := len(s.TouchedShards("t1")); got != 0 {
		t.Fatalf("begin touched %d shards, want 0", got)
	}
	mustOK(t, s.Put("t1", "only", "1"))
	if got := len(s.TouchedShards("t1")); got != 1 {
		t.Fatalf("one-key txn touched %d shards, want 1", got)
	}
	mustOK(t, s.Commit("t1"))

	// A zero-op transaction commits without any WAL traffic.
	mustOK(t, s.Begin("empty"))
	if !s.Prepared("empty") {
		t.Error("open empty txn not prepared")
	}
	mustOK(t, s.Commit("empty"))
	if s.Prepared("empty") {
		t.Error("committed txn still prepared")
	}
}
