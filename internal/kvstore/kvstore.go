// Package kvstore is the per-site database each transaction cohort
// manages: a string key-value store guarded by strict two-phase locking
// and undo/redo write-ahead logging, with crash recovery rebuilding the
// store from stable storage. It is the "data" layer under the distributed
// transaction execution of the paper's Fig. 3.1.
//
//rt:engine
package kvstore

import (
	"errors"
	"fmt"

	"speccat/internal/locking"
	"speccat/internal/recovery"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// Sentinel errors.
var (
	// ErrConflict is returned when a lock cannot be granted immediately
	// (the caller may retry or abort; the simulated sites do not block
	// goroutines).
	ErrConflict = errors.New("kvstore: lock conflict")
	// ErrNoTxn is returned for operations outside a transaction.
	ErrNoTxn = errors.New("kvstore: unknown transaction")
)

// DB is the transactional surface the txn layer drives: one key-value
// database with strict 2PL branches. Both the single-partition Store and
// the hash-partitioned Shards implement it, so a site picks its layout at
// deploy time without the execution layer noticing.
type DB interface {
	Begin(txn string) error
	Get(txn, key string) (string, error)
	Put(txn, key, value string) error
	Increment(txn, key, delta string) error
	Append(txn, key, elem string) error
	SetInsert(txn, key, elem string) error
	PutUnderlocked(txn, key, value string) error
	Commit(txn string) error
	Abort(txn string) error
	Prepared(txn string) bool
	Read(key string) string
	Snapshot() recovery.State
	OpenTxns() int
}

// Store is one site's transactional KV store (or, with owns set, one
// shard of it).
type Store struct {
	// data is the volatile database the WAL guards: every post-open
	// mutation must flow through the write-ahead log (//dur:volatile).
	data  map[string]string //dur:volatile
	locks *locking.Manager
	log   *wal.Log
	st    *stable.Store
	open  map[string]bool
	// owns restricts the store to its partition of a shared stable store:
	// recovery keeps only owned keys and undo skips other shards' updates
	// in the shared log. nil means the store owns every key.
	owns func(key string) bool
}

// Open creates (or reopens after crash) a store on stable storage,
// recovering committed state from the log and checkpoints.
func Open(st *stable.Store) (*Store, error) {
	return OpenShard(st, nil)
}

// OpenShard is Open restricted to the partition owns reports true for —
// the per-shard constructor used by Shards, where every shard recovers
// from the same site-wide stable store but must adopt only its own keys.
func OpenShard(st *stable.Store, owns func(key string) bool) (*Store, error) {
	state, _, err := recovery.Recover(st)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open: %w", err)
	}
	data := map[string]string(state)
	if owns != nil {
		for k := range data {
			if !owns(k) {
				delete(data, k)
			}
		}
	}
	return &Store{
		data:  data,
		locks: locking.NewManager(),
		log:   wal.New(st),
		st:    st,
		open:  map[string]bool{},
		owns:  owns,
	}, nil
}

// Begin starts a local transaction branch.
func (s *Store) Begin(txn string) error {
	if s.open[txn] {
		return fmt.Errorf("kvstore: %w: %s already open", wal.ErrTxnState, txn)
	}
	if err := s.log.Begin(txn); err != nil {
		return err
	}
	s.open[txn] = true
	return nil
}

// Get reads key under a read lock. Lock conflicts surface as ErrConflict.
//
//comm:op read
func (s *Store) Get(txn, key string) (string, error) {
	if !s.open[txn] {
		return "", fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.Read, nil)
	if err != nil {
		return "", fmt.Errorf("kvstore: get %s: %w", key, err)
	}
	if !granted {
		return "", fmt.Errorf("%w: read %s for %s", ErrConflict, key, txn)
	}
	return s.data[key], nil
}

// Put writes key under a write lock with write-ahead logging.
//
//comm:op write
func (s *Store) Put(txn, key, value string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.Write, nil)
	if err != nil {
		return fmt.Errorf("kvstore: put %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: write %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedUpdate(txn, s.data, key, value)
}

// Increment adds a signed decimal delta to key's canonical integer
// encoding under the increment lock: concurrent increments of other
// transactions proceed in parallel because increments commute
// (Safeincinc in locking/comm.sw).
//
//comm:op inc
func (s *Store) Increment(txn, key, delta string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.IncMode, nil)
	if err != nil {
		return fmt.Errorf("kvstore: increment %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: increment %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedApply(txn, s.data, key, wal.OpInc, delta)
}

// Append adds an element to key's canonical multiset encoding under the
// append lock (Safeappendappend).
//
//comm:op append
func (s *Store) Append(txn, key, elem string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.AppendMode, nil)
	if err != nil {
		return fmt.Errorf("kvstore: append %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: append %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedApply(txn, s.data, key, wal.OpAppend, elem)
}

// SetInsert adds an element to key's canonical set encoding under the
// set-insert lock (Safesetinssetins; inserting an existing element is a
// logged no-op).
//
//comm:op setins
func (s *Store) SetInsert(txn, key, elem string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.SetInsMode, nil)
	if err != nil {
		return fmt.Errorf("kvstore: setinsert %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: setinsert %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedApply(txn, s.data, key, wal.OpSetInsert, elem)
}

// PutUnderlocked is the seeded comm-underlock ablation for experiment
// E18: an absolute overwrite acquiring only the increment lock, so
// concurrent increments are admitted against a non-commuting write. It
// exists to show the serializability oracle failing where commcheck's
// static comm-underlock rule points; nothing on the serving path calls
// it.
//
//comm:op write
func (s *Store) PutUnderlocked(txn, key, value string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	//comm:ignore deliberate E18 underlock ablation; the dynamic oracle catches what the static rule flags
	granted, err := s.locks.Acquire(txn, key, locking.IncMode, nil)
	if err != nil {
		return fmt.Errorf("kvstore: put %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: write %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedUpdate(txn, s.data, key, value)
}

// Commit makes the branch durable and releases its locks.
func (s *Store) Commit(txn string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	if err := s.log.Commit(txn); err != nil {
		return err
	}
	delete(s.open, txn)
	s.locks.ReleaseAll(txn)
	return nil
}

// Abort rolls the branch back (undo) and releases its locks.
func (s *Store) Abort(txn string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	if err := s.log.Abort(txn); err != nil {
		return err
	}
	if err := s.log.UndoOwnedInto(txn, s.data, s.owns); err != nil {
		return err
	}
	delete(s.open, txn)
	s.locks.ReleaseAll(txn)
	return nil
}

// Prepared reports whether the branch can promise to commit (it is open
// and all its work is logged — the phase-1 "agreed" vote).
func (s *Store) Prepared(txn string) bool { return s.open[txn] }

// Read returns the committed value outside any transaction (dirty reads of
// open transactions' writes are visible only through Get).
func (s *Store) Read(key string) string { return s.data[key] }

// Snapshot exports the current volatile state (for checkpointing).
func (s *Store) Snapshot() recovery.State {
	out := recovery.State{}
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Stable exposes the underlying stable store.
func (s *Store) Stable() *stable.Store { return s.st }

// OpenTxns returns the number of open local branches.
func (s *Store) OpenTxns() int { return len(s.open) }
