// Package kvstore is the per-site database each transaction cohort
// manages: a string key-value store guarded by strict two-phase locking
// and undo/redo write-ahead logging, with crash recovery rebuilding the
// store from stable storage. It is the "data" layer under the distributed
// transaction execution of the paper's Fig. 3.1.
//
//rt:engine
package kvstore

import (
	"errors"
	"fmt"

	"speccat/internal/locking"
	"speccat/internal/recovery"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// Sentinel errors.
var (
	// ErrConflict is returned when a lock cannot be granted immediately
	// (the caller may retry or abort; the simulated sites do not block
	// goroutines).
	ErrConflict = errors.New("kvstore: lock conflict")
	// ErrNoTxn is returned for operations outside a transaction.
	ErrNoTxn = errors.New("kvstore: unknown transaction")
)

// Store is one site's transactional KV store.
type Store struct {
	// data is the volatile database the WAL guards: every post-open
	// mutation must flow through the write-ahead log (//dur:volatile).
	data  map[string]string //dur:volatile
	locks *locking.Manager
	log   *wal.Log
	st    *stable.Store
	open  map[string]bool
}

// Open creates (or reopens after crash) a store on stable storage,
// recovering committed state from the log and checkpoints.
func Open(st *stable.Store) (*Store, error) {
	state, _, err := recovery.Recover(st)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open: %w", err)
	}
	return &Store{
		data:  map[string]string(state),
		locks: locking.NewManager(),
		log:   wal.New(st),
		st:    st,
		open:  map[string]bool{},
	}, nil
}

// Begin starts a local transaction branch.
func (s *Store) Begin(txn string) error {
	if s.open[txn] {
		return fmt.Errorf("kvstore: %w: %s already open", wal.ErrTxnState, txn)
	}
	if err := s.log.Begin(txn); err != nil {
		return err
	}
	s.open[txn] = true
	return nil
}

// Get reads key under a read lock. Lock conflicts surface as ErrConflict.
func (s *Store) Get(txn, key string) (string, error) {
	if !s.open[txn] {
		return "", fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.Read, nil)
	if err != nil {
		return "", fmt.Errorf("kvstore: get %s: %w", key, err)
	}
	if !granted {
		return "", fmt.Errorf("%w: read %s for %s", ErrConflict, key, txn)
	}
	return s.data[key], nil
}

// Put writes key under a write lock with write-ahead logging.
func (s *Store) Put(txn, key, value string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	granted, err := s.locks.Acquire(txn, key, locking.Write, nil)
	if err != nil {
		return fmt.Errorf("kvstore: put %s: %w", key, err)
	}
	if !granted {
		return fmt.Errorf("%w: write %s for %s", ErrConflict, key, txn)
	}
	return s.log.LoggedUpdate(txn, s.data, key, value)
}

// Commit makes the branch durable and releases its locks.
func (s *Store) Commit(txn string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	if err := s.log.Commit(txn); err != nil {
		return err
	}
	delete(s.open, txn)
	s.locks.ReleaseAll(txn)
	return nil
}

// Abort rolls the branch back (undo) and releases its locks.
func (s *Store) Abort(txn string) error {
	if !s.open[txn] {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	if err := s.log.Abort(txn); err != nil {
		return err
	}
	if err := s.log.UndoInto(txn, s.data); err != nil {
		return err
	}
	delete(s.open, txn)
	s.locks.ReleaseAll(txn)
	return nil
}

// Prepared reports whether the branch can promise to commit (it is open
// and all its work is logged — the phase-1 "agreed" vote).
func (s *Store) Prepared(txn string) bool { return s.open[txn] }

// Read returns the committed value outside any transaction (dirty reads of
// open transactions' writes are visible only through Get).
func (s *Store) Read(key string) string { return s.data[key] }

// Snapshot exports the current volatile state (for checkpointing).
func (s *Store) Snapshot() recovery.State {
	out := recovery.State{}
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Stable exposes the underlying stable store.
func (s *Store) Stable() *stable.Store { return s.st }

// OpenTxns returns the number of open local branches.
func (s *Store) OpenTxns() int { return len(s.open) }
