package kvstore

import (
	"errors"
	"testing"

	"speccat/internal/locking"
	"speccat/internal/stable"
)

// shardedKeys returns one key per shard of a 2-way split, ascending by
// shard index, scanning a deterministic namespace.
func shardedKeys(t *testing.T) (k0, k1 string) {
	t.Helper()
	keys := [2]string{}
	for _, cand := range []string{"a", "b", "c", "d", "e", "f"} {
		keys[ShardOf(cand, 2)] = cand
	}
	if keys[0] == "" || keys[1] == "" {
		t.Fatal("no key pair hashing to distinct shards")
	}
	return keys[0], keys[1]
}

// TestCrossShardDeadlockBlindSpot pins the runtime gap that motivates the
// static lock-order rule (speccatlint -lock): each shard's
// locking.Manager runs wouldDeadlock over its OWN waits-for graph only, so
// two transactions acquiring two shards' locks in opposite orders close a
// cycle neither manager can see. Both requests queue as ordinary conflicts
// — ErrConflict semantics from the store, zero deadlock convictions at
// either manager — and under a wait-for-grant execution policy the pair
// would stall forever. The single-manager control below shows the same
// access pattern IS convicted when both keys share one waits-for graph;
// lockcheck's lock-order rule is what closes the cross-manager gap, by
// rejecting acquisition orders that can form such cycles at all.
func TestCrossShardDeadlockBlindSpot(t *testing.T) {
	st := stable.NewStore()
	s, err := OpenShards(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := shardedKeys(t)

	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	// t1 takes shard 0's lock, t2 shard 1's.
	mustOK(t, s.Put("t1", k0, "x"))
	mustOK(t, s.Put("t2", k1, "y"))
	// Now each requests the other's lock: a waits-for cycle split across
	// the two managers. Both surface as plain conflicts...
	if err := s.Put("t1", k1, "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("t1 cross acquire: err = %v, want ErrConflict", err)
	}
	if err := s.Put("t2", k0, "y"); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2 cross acquire: err = %v, want ErrConflict", err)
	}
	// ...and neither shard's detector convicted anything: the cycle is
	// invisible because each manager sees one holder and one waiter.
	for i := 0; i < 2; i++ {
		if _, _, deadlocks := s.Shard(i).locks.Stats(); deadlocks != 0 {
			t.Fatalf("shard %d reported %d deadlocks; the blind spot should report none", i, deadlocks)
		}
	}
	// Both requests are still queued — the permanent stall in waiting form.
	if q := s.Shard(ShardOf(k1, 2)).locks.QueueLen(k1); q != 1 {
		t.Fatalf("queue on %s = %d, want 1", k1, q)
	}
	if q := s.Shard(ShardOf(k0, 2)).locks.QueueLen(k0); q != 1 {
		t.Fatalf("queue on %s = %d, want 1", k0, q)
	}

	// Control: the identical interleaving against one unsharded store puts
	// both keys in one waits-for graph, and the second cross-acquisition is
	// convicted as a deadlock, not a conflict.
	u, err := Open(stable.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	mustOK(t, u.Begin("t1"))
	mustOK(t, u.Begin("t2"))
	mustOK(t, u.Put("t1", k0, "x"))
	mustOK(t, u.Put("t2", k1, "y"))
	if err := u.Put("t1", k1, "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("t1 cross acquire (single manager): err = %v, want ErrConflict", err)
	}
	if err := u.Put("t2", k0, "y"); !errors.Is(err, locking.ErrDeadlock) {
		t.Fatalf("t2 cross acquire (single manager): err = %v, want ErrDeadlock", err)
	}
	if _, _, deadlocks := u.locks.Stats(); deadlocks != 1 {
		t.Fatalf("single manager deadlocks = %d, want 1", deadlocks)
	}
}
