package kvstore

import (
	"errors"
	"testing"
)

// TestConcurrentIncrementsShareLock pins the point of the derived
// modes: two open transactions increment one key at the same time —
// under Put they would conflict — and both deltas survive commit.
func TestConcurrentIncrementsShareLock(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.Increment("t1", "x", "10"))
	mustOK(t, s.Increment("t2", "x", "100"))
	mustOK(t, s.Commit("t1"))
	mustOK(t, s.Commit("t2"))
	if got := s.Read("x"); got != "110" {
		t.Fatalf("x = %q, want 110", got)
	}
}

// TestIncrementAbortPreservesConcurrentDelta pins logical undo through
// the store: aborting one of two concurrent increments leaves the
// other's delta intact, both in the live store and after crash recovery.
func TestIncrementAbortPreservesConcurrentDelta(t *testing.T) {
	s, st := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.Increment("t1", "x", "10"))
	mustOK(t, s.Increment("t2", "x", "100"))
	mustOK(t, s.Abort("t1"))
	if got := s.Read("x"); got != "100" {
		t.Fatalf("x = %q after abort, want 100", got)
	}
	mustOK(t, s.Commit("t2"))
	r, err := Open(st)
	mustOK(t, err)
	if got := r.Read("x"); got != "100" {
		t.Fatalf("recovered x = %q, want 100", got)
	}
}

// TestAppendAndSetInsertShare pins the other two commuting classes at
// the store level, with their canonical encodings.
func TestAppendAndSetInsertShare(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.Append("t1", "lst", "b"))
	mustOK(t, s.Append("t2", "lst", "a"))
	mustOK(t, s.SetInsert("t1", "set", "b"))
	mustOK(t, s.SetInsert("t2", "set", "b"))
	mustOK(t, s.Commit("t1"))
	mustOK(t, s.Commit("t2"))
	if got := s.Read("lst"); got != "a,b" {
		t.Fatalf("lst = %q, want a,b", got)
	}
	if got := s.Read("set"); got != "b" {
		t.Fatalf("set = %q, want b", got)
	}
}

// TestIncrementConflictsWithWrite pins the off-diagonal of the matrix at
// the store level: an increment does not commute with an absolute write
// (either order), so each direction surfaces ErrConflict.
func TestIncrementConflictsWithWrite(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.Increment("t1", "x", "1"))
	if err := s.Put("t2", "x", "9"); !errors.Is(err, ErrConflict) {
		t.Fatalf("Put after concurrent Increment: err = %v, want ErrConflict", err)
	}
	if _, err := s.Get("t2", "x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("Get after concurrent Increment: err = %v, want ErrConflict", err)
	}
	mustOK(t, s.Commit("t1"))
}

// TestPutUnderlockedAdmitsTheRace pins the E18 ablation: the underlocked
// write and a concurrent increment are BOTH granted — the unsafe
// admission the serializability oracle (and commcheck's comm-underlock
// rule) exists to catch.
func TestPutUnderlockedAdmitsTheRace(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	mustOK(t, s.Begin("t2"))
	mustOK(t, s.PutUnderlocked("t1", "x", "50"))
	if err := s.Increment("t2", "x", "7"); err != nil {
		t.Fatalf("concurrent increment was refused, so the ablation seeds nothing: %v", err)
	}
	mustOK(t, s.Commit("t1"))
	mustOK(t, s.Commit("t2"))
}

// TestSameTxnMixesClassesViaUpgrade pins Join's escalation: one
// transaction reading then incrementing a key upgrades its own lock
// rather than deadlocking with itself.
func TestSameTxnMixesClassesViaUpgrade(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t1"))
	if _, err := s.Get("t1", "x"); err != nil {
		t.Fatal(err)
	}
	mustOK(t, s.Increment("t1", "x", "5"))
	mustOK(t, s.Put("t1", "x", "9"))
	mustOK(t, s.Commit("t1"))
	if got := s.Read("x"); got != "9" {
		t.Fatalf("x = %q, want 9", got)
	}
}
