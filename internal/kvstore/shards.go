// Hash-sharded partitioning: one site's database split into n independent
// partitions, each with its own lock manager and WAL session over the
// site's single shared stable store. A multi-key transaction touches only
// the shards its keys hash to — its begin records are lazy (written on
// first touch) and its commit/abort fans out over exactly the touched
// set, which is what lets the group-commit batch on the shared stable
// store absorb many shards' records into one fsync. This is the paper's
// composition story applied at runtime: a site-local multi-shard commit
// is a composition of per-shard commit instances over one durable medium.
package kvstore

import (
	"fmt"
	"hash/fnv"
	"sort"

	"speccat/internal/recovery"
	"speccat/internal/stable"
	"speccat/internal/wal"
)

// ShardOf routes key to one of n partitions by FNV-1a hash. Every layer
// that needs the routing (deploy, serving path, benches) must use this
// one function: two routings of the same key disagreeing would send a
// transaction's work to a shard that does not own the data.
func ShardOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Shards is a hash-partitioned DB over one stable store. It implements
// the same DB surface as Store, so the txn execution layer is oblivious
// to the partitioning.
type Shards struct {
	shards []*Store
	st     *stable.Store
	// touched maps an open transaction to the shard indices holding one of
	// its branches, in first-touch order. A transaction that never touched
	// a shard never pays that shard's begin/commit records.
	touched map[string][]int
}

// OpenShards creates (or reopens after crash) an n-way sharded store on
// one stable store. Each shard recovers independently from the shared log
// and keeps only the keys it owns.
func OpenShards(st *stable.Store, n int) (*Shards, error) {
	if n < 1 {
		return nil, fmt.Errorf("kvstore: open shards: n=%d", n)
	}
	shards := make([]*Store, n)
	for i := range shards {
		i := i
		owns := func(key string) bool { return ShardOf(key, n) == i }
		s, err := OpenShard(st, owns)
		if err != nil {
			return nil, fmt.Errorf("kvstore: open shard %d/%d: %w", i, n, err)
		}
		shards[i] = s
	}
	return &Shards{shards: shards, st: st, touched: map[string][]int{}}, nil
}

// NumShards returns the partition count.
func (s *Shards) NumShards() int { return len(s.shards) }

// Shard exposes partition i (tests and audits).
func (s *Shards) Shard(i int) *Store { return s.shards[i] }

// Begin opens the transaction without touching any shard: per-shard
// branches (and their WAL begin records) are created lazily on first use.
func (s *Shards) Begin(txn string) error {
	if _, open := s.touched[txn]; open {
		return fmt.Errorf("kvstore: %w: %s already open", wal.ErrTxnState, txn)
	}
	s.touched[txn] = []int{}
	return nil
}

// branch routes key to its shard, lazily opening the transaction's branch
// there on first touch.
func (s *Shards) branch(txn, key string) (*Store, error) {
	touched, open := s.touched[txn]
	if !open {
		return nil, fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	i := ShardOf(key, len(s.shards))
	for _, t := range touched {
		if t == i {
			return s.shards[i], nil
		}
	}
	if err := s.shards[i].Begin(txn); err != nil {
		return nil, err
	}
	s.touched[txn] = append(touched, i)
	return s.shards[i], nil
}

// Get reads key in its shard under that shard's read lock.
func (s *Shards) Get(txn, key string) (string, error) {
	sh, err := s.branch(txn, key)
	if err != nil {
		return "", err
	}
	return sh.Get(txn, key)
}

// Put writes key in its shard under that shard's write lock.
func (s *Shards) Put(txn, key, value string) error {
	sh, err := s.branch(txn, key)
	if err != nil {
		return err
	}
	return sh.Put(txn, key, value)
}

// Increment applies a commutative increment in key's shard.
func (s *Shards) Increment(txn, key, delta string) error {
	sh, err := s.branch(txn, key)
	if err != nil {
		return err
	}
	return sh.Increment(txn, key, delta)
}

// Append applies a commutative multiset append in key's shard.
func (s *Shards) Append(txn, key, elem string) error {
	sh, err := s.branch(txn, key)
	if err != nil {
		return err
	}
	return sh.Append(txn, key, elem)
}

// SetInsert applies a commutative set insert in key's shard.
func (s *Shards) SetInsert(txn, key, elem string) error {
	sh, err := s.branch(txn, key)
	if err != nil {
		return err
	}
	return sh.SetInsert(txn, key, elem)
}

// PutUnderlocked routes the E18 underlock ablation to key's shard.
func (s *Shards) PutUnderlocked(txn, key, value string) error {
	sh, err := s.branch(txn, key)
	if err != nil {
		return err
	}
	return sh.PutUnderlocked(txn, key, value)
}

// Commit commits every touched shard's branch. The commit records all
// land in the shared stable log, so under group commit the whole fan-out
// is covered by the next single fsync.
func (s *Shards) Commit(txn string) error {
	touched, open := s.touched[txn]
	if !open {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	for _, i := range touched {
		if err := s.shards[i].Commit(txn); err != nil {
			return err
		}
	}
	delete(s.touched, txn)
	return nil
}

// Abort rolls back every touched shard's branch; each shard undoes only
// its own partition's updates out of the shared log.
func (s *Shards) Abort(txn string) error {
	touched, open := s.touched[txn]
	if !open {
		return fmt.Errorf("%w: %s", ErrNoTxn, txn)
	}
	for _, i := range touched {
		if err := s.shards[i].Abort(txn); err != nil {
			return err
		}
	}
	delete(s.touched, txn)
	return nil
}

// Prepared reports whether the transaction is open (all touched branches
// are logged and lock-holding — the phase-1 "agreed" vote).
func (s *Shards) Prepared(txn string) bool {
	_, open := s.touched[txn]
	return open
}

// Read returns key's committed value from its shard, outside any
// transaction.
func (s *Shards) Read(key string) string {
	return s.shards[ShardOf(key, len(s.shards))].Read(key)
}

// Snapshot merges every shard's committed state (shards partition the
// keyspace, so the union is disjoint).
func (s *Shards) Snapshot() recovery.State {
	out := recovery.State{}
	for _, sh := range s.shards {
		for k, v := range sh.Snapshot() {
			out[k] = v
		}
	}
	return out
}

// Stable exposes the shared underlying stable store.
func (s *Shards) Stable() *stable.Store { return s.st }

// OpenTxns returns the number of open transactions across all shards.
func (s *Shards) OpenTxns() int { return len(s.touched) }

// TouchedShards returns the shard indices holding branches of txn, sorted
// (tests and the prepare fan-out instrumentation).
func (s *Shards) TouchedShards(txn string) []int {
	out := append([]int{}, s.touched[txn]...)
	sort.Ints(out)
	return out
}
