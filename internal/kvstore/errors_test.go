package kvstore

import (
	"errors"
	"testing"

	"speccat/internal/locking"
	"speccat/internal/stable"
)

func TestOpenCorruptLog(t *testing.T) {
	st := stable.NewStore()
	st.Append([]byte("{corrupt"))
	if _, err := Open(st); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestDoubleBegin(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("t"))
	if err := s.Begin("t"); err == nil {
		t.Fatal("double begin accepted")
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	s, _ := open(t)
	mustOK(t, s.Begin("a"))
	mustOK(t, s.Begin("b"))
	mustOK(t, s.Put("a", "x", "1"))
	mustOK(t, s.Put("b", "y", "1"))
	// a queues on y...
	if _, err := s.Get("a", "y"); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// ...and b closing the cycle on x must surface the deadlock.
	err := s.Put("b", "x", "2")
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !errors.Is(err, locking.ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Aborting b resolves everything.
	mustOK(t, s.Abort("b"))
	mustOK(t, s.Abort("a"))
	if s.OpenTxns() != 0 {
		t.Fatal("locks leaked after deadlock resolution")
	}
}
